(* Chaos hardening of the real multi-domain runtime (lib/par): seeded
   fault plans, the pay-for-use guarantee (an empty plan is counter-
   bit-identical to no plan at all), fault visibility through the
   event stream, the typed Injected raise, and cooperative
   cancellation through the session-wide token.

   Like suite_par, nothing here gates on host core counts: timing
   faults only stretch wall-clock, and every assertion is about
   counters, results, or typed exceptions. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Plan generation and per-worker state. *)

let test_plan_deterministic () =
  let a = Par.Chaos.random_plan ~seed:42 ~domains:4 () in
  let b = Par.Chaos.random_plan ~seed:42 ~domains:4 () in
  check "same seed, same plan" true (a = b);
  let c = Par.Chaos.random_plan ~seed:43 ~domains:4 () in
  check "different seed, different plan" true (a <> c);
  check "at least one fault" true (List.length a.faults >= 1);
  let d = Par.Chaos.random_plan ~raises:false ~seed:42 ~domains:8 () in
  check "raises:false draws no Raise" false (Par.Chaos.has_raise d)

let test_state_pay_for_use () =
  check "empty plan targets nobody" true
    (Par.Chaos.state_for Par.Chaos.empty ~domain:0 ~heart_s:1e-4 = None);
  let plan =
    {
      Par.Chaos.seed = 1;
      faults = [ { Par.Chaos.domain = 1; at_beat = 0; kind = Stall 2 } ];
    }
  in
  check "untargeted worker stays stateless" true
    (Par.Chaos.state_for plan ~domain:0 ~heart_s:1e-4 = None);
  check "targeted worker gets state" true
    (Par.Chaos.state_for plan ~domain:1 ~heart_s:1e-4 <> None)

let test_on_beat_mechanics () =
  let plan =
    {
      Par.Chaos.seed = 1;
      faults =
        [
          { Par.Chaos.domain = 0; at_beat = 0; kind = Stall 3 };
          { Par.Chaos.domain = 0; at_beat = 1; kind = Drop 2 };
        ];
    }
  in
  let st =
    match Par.Chaos.state_for plan ~domain:0 ~heart_s:1e-3 with
    | Some st -> st
    | None -> Alcotest.fail "targeted worker got no state"
  in
  (* beat 0: the stall fires, paying 3 beat periods *)
  let d0 = Par.Chaos.on_beat st in
  check_int "stall fires alone" 1 (List.length d0.fired);
  check "stall pause = 3 beats" true (abs_float (d0.pause_s -. 3e-3) < 1e-9);
  check "stall does not drop" false d0.drop;
  (* beat 1: the drop window opens and swallows this beat *)
  let d1 = Par.Chaos.on_beat st in
  check_int "drop fires" 1 (List.length d1.fired);
  check "beat 1 dropped" true d1.drop;
  (* beat 2: still inside the window, but nothing re-fires *)
  let d2 = Par.Chaos.on_beat st in
  check_int "window continuation fires nothing" 0 (List.length d2.fired);
  check "beat 2 dropped" true d2.drop;
  (* beat 3: window exhausted *)
  let d3 = Par.Chaos.on_beat st in
  check "beat 3 clean" false d3.drop;
  check "no pause left" true (d3.pause_s = 0.)

(* ------------------------------------------------------------------ *)
(* Whole-session properties. *)

let config ?chaos ?on_event ~domains () =
  {
    Par.Runtime.default_config with
    domains;
    heart_us = 0.;
    (* a beat at every poll: deterministic single-domain counters, and
       beat-indexed faults land immediately *)
    source = `Polling;
    poll_stride = 1;
    chaos;
    on_event;
  }

(* a deterministic kernel: fill-and-fold through par_for, checked
   against its closed form *)
let kernel_n = 4096
let kernel_expected = kernel_n * (kernel_n - 1) / 2

let kernel () : int =
  let a = Array.make kernel_n 0 in
  Par.Runtime.par_for ~lo:0 ~hi:kernel_n (fun i -> a.(i) <- i);
  Array.fold_left ( + ) 0 a

let test_empty_plan_bit_identical () =
  (* the pay-for-use gate: chaos = Some empty must take the exact
     no-chaos hot path, so every worker counter comes out identical *)
  let run chaos =
    let v, st = Par.Runtime.run ~config:(config ?chaos ~domains:1 ()) kernel in
    check_int "kernel checksum" kernel_expected v;
    (* wall-clock fields can differ between runs; every counter may
       not *)
    { st.Par.Runtime.total with idle_ns = 0 }
  in
  let none = run None in
  let empty = run (Some Par.Chaos.empty) in
  check "counters bit-identical under empty plan" true (none = empty);
  check_int "no faults injected" 0 none.faults_injected;
  check_int "no cancels observed" 0 none.cancels

let test_timing_faults_keep_results () =
  (* stall + slow + drop pinned to the very first beats of BOTH
     domains: faults fire only from polls inside task bodies, and the
     main task may be stolen by either worker, so targeting a single
     domain would race against idle workers that never poll.  At least
     one domain runs the bulk of the kernel (thousands of strip polls),
     so at least its three faults fire; results must be untouched and
     every activation must surface as a Fault event *)
  let faults_for d =
    [
      { Par.Chaos.domain = d; at_beat = 0; kind = Par.Chaos.Stall 2 };
      { Par.Chaos.domain = d; at_beat = 2; kind = Par.Chaos.Drop 3 };
      {
        Par.Chaos.domain = d;
        at_beat = 0;
        kind = Par.Chaos.Slow { factor = 2.0; beats = 4 };
      };
    ]
  in
  let plan = { Par.Chaos.seed = 7; faults = faults_for 0 @ faults_for 1 } in
  let seen = Atomic.make 0 in
  let on_event ~worker:_ = function
    | Par.Runtime.Fault _ -> Atomic.incr seen
    | _ -> ()
  in
  let v, st =
    Par.Runtime.run
      ~config:(config ~chaos:plan ~on_event ~domains:2 ())
      kernel
  in
  check_int "checksum survives timing faults" kernel_expected v;
  let injected = st.Par.Runtime.total.faults_injected in
  check "the working domain's faults fired" true (injected >= 3);
  check_int "every fault visible as an event" injected (Atomic.get seen)

let test_raise_is_typed_and_survivable () =
  (* Raise on both domains at beat 0: whichever worker wins the race
     for the main task raises at its first strip poll (injection only
     happens inside task bodies, so the idle worker never fires) *)
  let plan =
    {
      Par.Chaos.seed = 9;
      faults =
        [
          { Par.Chaos.domain = 0; at_beat = 0; kind = Par.Chaos.Raise };
          { Par.Chaos.domain = 1; at_beat = 0; kind = Par.Chaos.Raise };
        ];
    }
  in
  (match Par.Runtime.run ~config:(config ~chaos:plan ~domains:2 ()) kernel with
  | _ -> Alcotest.fail "Raise plan completed without raising"
  | exception Par.Chaos.Injected { domain; _ } ->
      check "typed fault names a real domain" true (domain = 0 || domain = 1));
  (* the runtime is not poisoned: a fresh chaos-free session works *)
  let v, _ = Par.Runtime.run ~config:(config ~domains:2 ()) kernel in
  check_int "fresh session after injected raise" kernel_expected v

let test_cancel_pre_set () =
  (* a token cancelled before the work starts unwinds at the first
     poll, with the typed reason *)
  let tok = Par.Runtime.cancel_token () in
  Par.Runtime.cancel tok `Explicit;
  check "first reason wins" true (Par.Runtime.cancel_requested tok);
  Par.Runtime.cancel tok `Lease;
  check "reason is immutable" true
    (Par.Runtime.cancel_reason_of tok = Some `Explicit);
  match
    Par.Runtime.run ~config:(config ~domains:1 ()) (fun () ->
        Par.Runtime.set_cancel (Some tok);
        kernel ())
  with
  | _ -> Alcotest.fail "cancelled session completed"
  | exception Par.Runtime.Cancelled `Explicit -> ()

let test_cancel_cross_thread () =
  (* the watchdog shape: another thread cancels a session mid-flight;
     the polling loop unwinds with the typed reason and the runtime
     stays usable *)
  let tok = Par.Runtime.cancel_token () in
  let canceller =
    Thread.create
      (fun () ->
        Thread.delay 0.02;
        Par.Runtime.cancel tok `Deadline)
      ()
  in
  (match
     Par.Runtime.run ~config:(config ~domains:1 ()) (fun () ->
         Par.Runtime.set_cancel (Some tok);
         (* bounded spin: ~1 s worst case, normally unwound in ~20 ms *)
         for _ = 1 to 1000 do
           Unix.sleepf 0.001;
           Par.Runtime.poll ()
         done;
         Alcotest.fail "cancellation never observed")
   with
  | _ -> Alcotest.fail "cancelled session completed"
  | exception Par.Runtime.Cancelled `Deadline -> ());
  Thread.join canceller;
  let v, st = Par.Runtime.run ~config:(config ~domains:1 ()) kernel in
  check_int "fresh session after cancellation" kernel_expected v;
  check_int "fresh session saw no cancels" 0 st.Par.Runtime.total.cancels

let test_cancel_unwinds_par_for () =
  (* cancellation raised from inside a strip-mined par_for must unwind
     the whole tree (join-aware: promoted children drain first) and
     reach the caller as the same typed exception *)
  let tok = Par.Runtime.cancel_token () in
  let seen = Atomic.make 0 in
  match
    Par.Runtime.run ~config:(config ~domains:2 ()) (fun () ->
        Par.Runtime.set_cancel (Some tok);
        Par.Runtime.par_for ~lo:0 ~hi:1_000_000 (fun i ->
            Atomic.incr seen;
            if i = 100 then Par.Runtime.cancel tok `Explicit))
  with
  | _ -> Alcotest.fail "cancelled par_for ran to completion"
  | exception Par.Runtime.Cancelled `Explicit ->
      check "loop stopped early" true (Atomic.get seen < 1_000_000)

let suite =
  ( "chaos",
    [
      Alcotest.test_case "plans are seed-deterministic" `Quick
        test_plan_deterministic;
      Alcotest.test_case "untargeted workers stay stateless" `Quick
        test_state_pay_for_use;
      Alcotest.test_case "on_beat stall/drop mechanics" `Quick
        test_on_beat_mechanics;
      Alcotest.test_case "empty plan is counter-bit-identical" `Quick
        test_empty_plan_bit_identical;
      Alcotest.test_case "timing faults keep results, emit events" `Quick
        test_timing_faults_keep_results;
      Alcotest.test_case "Raise surfaces typed and non-poisoning" `Quick
        test_raise_is_typed_and_survivable;
      Alcotest.test_case "pre-set cancel unwinds at first poll" `Quick
        test_cancel_pre_set;
      Alcotest.test_case "cross-thread cancel, typed reason" `Quick
        test_cancel_cross_thread;
      Alcotest.test_case "cancel unwinds a live par_for" `Quick
        test_cancel_unwinds_par_for;
    ] )
