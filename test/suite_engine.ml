(* Tests for the Par_ir, task frames (Runnable) and the discrete-event
   engine: conservation of work, scheduling modes, joins/barriers,
   heartbeat promotion, the bandwidth model. *)

open Sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Par_ir --- *)

let test_work_computation () =
  check_int "leaf" 7 (Par_ir.work (Par_ir.leaf 7));
  check_int "seq" 10 (Par_ir.work (Par_ir.seq [ Par_ir.leaf 4; Par_ir.leaf 6 ]));
  check_int "for const" 50 (Par_ir.work (Par_ir.for_const ~n:10 ~cycles:5));
  check_int "for fn" 45 (Par_ir.work (Par_ir.for_fn ~n:10 (fun i -> i)));
  check_int "nested" 100
    (Par_ir.work (Par_ir.for_nested ~n:10 (fun _ -> Par_ir.leaf 10)));
  check_int "spawn"
    (3 + 4)
    (Par_ir.work
       (Par_ir.spawn2 (fun () -> Par_ir.leaf 3) (fun () -> Par_ir.leaf 4)))

let test_span_computation () =
  check_int "for span = max iteration" 9
    (Par_ir.span (Par_ir.for_fn ~n:10 (fun i -> i)));
  check_int "spawn span = max branch" 4
    (Par_ir.span
       (Par_ir.spawn2 (fun () -> Par_ir.leaf 3) (fun () -> Par_ir.leaf 4)));
  check "parallelism > 1 on a loop" true
    (Par_ir.parallelism (Par_ir.for_const ~n:100 ~cycles:5) > 50.)

let test_work_deep_spawn_tree () =
  (* a 2^16-leaf spawn tree must not overflow the traversal *)
  let rec tree d : Par_ir.t =
    if d = 0 then Par_ir.leaf 1
    else Par_ir.spawn2 (fun () -> tree (d - 1)) (fun () -> tree (d - 1))
  in
  check_int "full tree work" 65536 (Par_ir.work (tree 16))

(* --- Runnable: serial execution conserves work --- *)

let params p = { Params.default with procs = p }

let run ?(mode = Runnable.Serial) ?(mech = Interrupts.Off) ?(procs = 1)
    ?(dilation = 100) ?(bw_cap = infinity) ?(promote = true) ir =
  let cfg = Runnable.make_cfg ~dilation_pct:dilation mode (params procs) in
  let config = Engine.make_config ~mech ~promote ~bw_cap cfg in
  Engine.run config ir

let sample_irs =
  [
    ("flat loop", Par_ir.for_const ~n:10_000 ~cycles:13);
    ("irregular loop", Par_ir.for_fn ~n:5_000 (fun i -> 1 + (i mod 37)));
    ( "nested loop",
      Par_ir.for_nested ~n:100 (fun i ->
          Par_ir.for_const ~n:50 ~cycles:(3 + (i mod 5))) );
    ( "spawn tree",
      let rec t d : Par_ir.t =
        if d = 0 then Par_ir.leaf 100
        else Par_ir.spawn2 (fun () -> t (d - 1)) (fun () -> t (d - 1))
      in
      t 8 );
    ( "mixed",
      Par_ir.seq
        [
          Par_ir.leaf 500;
          Par_ir.spawn2
            (fun () -> Par_ir.for_const ~n:300 ~cycles:7)
            (fun () -> Par_ir.leaf 900);
          Par_ir.for_nested ~n:20 (fun _ -> Par_ir.leaf 33);
        ] );
  ]

let test_serial_makespan_equals_work () =
  List.iter
    (fun (name, ir) ->
      let m = run ir in
      (* serial: no spawns, no dilation; makespan = work (±1 for the
         final event granularity) *)
      check (name ^ ": work conserved") true
        (abs (m.makespan - Par_ir.work ir) <= 1);
      check_int (name ^ ": no tasks") 0 m.tasks_created)
    sample_irs

let test_all_modes_conserve_work () =
  (* the algorithm work retired is identical in every mode (overheads
     are accounted separately) *)
  List.iter
    (fun (name, ir) ->
      let w = Par_ir.work ir in
      List.iter
        (fun (mname, mode, mech, procs) ->
          let m = run ~mode ~mech ~procs ir in
          check_int
            (Printf.sprintf "%s/%s work" name mname)
            w m.work)
        [
          ("serial", Runnable.Serial, Interrupts.Off, 1);
          ("cilk1", Runnable.Cilk, Interrupts.Off, 1);
          ("cilk8", Runnable.Cilk, Interrupts.Off, 8);
          ("tpal1", Runnable.Tpal, Interrupts.Nautilus_ipi, 1);
          ("tpal8", Runnable.Tpal, Interrupts.Nautilus_ipi, 8);
          ("tpal-ping8", Runnable.Tpal, Interrupts.Ping_thread, 8);
        ])
    sample_irs

let test_cilk_decomposes_loops () =
  let ir = Par_ir.for_const ~n:100_000 ~cycles:10 in
  let m = run ~mode:Runnable.Cilk ~procs:15 ir in
  (* grain = min(2048, 100000/120) = 833 -> ~120 tasks *)
  check "cilk created loop tasks" true (m.tasks_created > 60);
  check "cilk spent overhead" true (m.overhead > 0);
  check "cilk parallel speedup" true
    (float_of_int (Par_ir.work ir) /. float_of_int m.makespan > 8.)

let test_cilk_eager_spawns () =
  let rec t d : Par_ir.t =
    if d = 0 then Par_ir.leaf 50
    else Par_ir.spawn2 (fun () -> t (d - 1)) (fun () -> t (d - 1))
  in
  let m = run ~mode:Runnable.Cilk ~procs:1 (t 10) in
  (* every internal node spawns: 2^10 - 1 tasks even on one core *)
  check_int "eager task per spawn" 1023 m.tasks_created

let test_tpal_serial_without_beats () =
  let ir = Par_ir.for_const ~n:50_000 ~cycles:10 in
  let m = run ~mode:Runnable.Tpal ~mech:Interrupts.Off ~procs:15 ir in
  check_int "no promotions without beats" 0 m.promotions;
  (* the other 14 cores never get work *)
  check "makespan ~ serial" true (m.makespan >= Par_ir.work ir)

let test_tpal_promotes_on_beats () =
  let ir = Par_ir.for_const ~n:2_000_000 ~cycles:10 in
  let m = run ~mode:Runnable.Tpal ~mech:Interrupts.Nautilus_ipi ~procs:15 ir in
  check "promotions happened" true (m.promotions > 5);
  check_int "every promotion creates a task" m.promotions m.tasks_created;
  check "beats delivered" true (m.beats_delivered > 0);
  check "parallel speedup" true
    (float_of_int (Par_ir.work ir) /. float_of_int m.makespan > 4.)

let test_tpal_interrupts_only_no_promotions () =
  let ir = Par_ir.for_const ~n:500_000 ~cycles:10 in
  let m =
    run ~mode:Runnable.Tpal ~mech:Interrupts.Nautilus_ipi ~procs:1
      ~promote:false ir
  in
  check_int "no promotions" 0 m.promotions;
  check "beats still delivered and charged" true
    (m.beats_delivered > 0 && m.overhead > 0)

let test_join_barrier_blocks_phases () =
  (* two sequential phases: the second must not start before the first
     completes, even when the first is split across cores — makespan
     is at least the sum of the two per-phase lower bounds *)
  let phase = Par_ir.for_const ~n:10_000 ~cycles:10 in
  let ir = Par_ir.seq [ phase; phase ] in
  let m = run ~mode:Runnable.Cilk ~procs:4 ir in
  let per_phase_lb = Par_ir.work phase / 4 in
  check "barrier respected" true (m.makespan >= 2 * per_phase_lb)

let test_dilation_slows_execution () =
  let ir = Par_ir.for_const ~n:10_000 ~cycles:10 in
  let m1 = run ~mode:Runnable.Tpal ~mech:Interrupts.Off ~dilation:100 ir in
  let m2 = run ~mode:Runnable.Tpal ~mech:Interrupts.Off ~dilation:200 ir in
  check "2x dilation ~ 2x time" true
    (float_of_int m2.makespan /. float_of_int m1.makespan > 1.9);
  (* serial mode ignores dilation *)
  let m3 = run ~mode:Runnable.Serial ~dilation:200 ir in
  check "serial undilated" true (abs (m3.makespan - Par_ir.work ir) <= 1)

let test_bandwidth_cap_binds () =
  let ir = Par_ir.for_const ~n:1_000_000 ~cycles:8 in
  let m = run ~mode:Runnable.Cilk ~procs:15 ~bw_cap:3.0 ir in
  let speedup = float_of_int (Par_ir.work ir) /. float_of_int m.makespan in
  check "speedup capped near 3" true (speedup <= 3.2);
  check "but still parallel" true (speedup > 2.0)

let test_bandwidth_cap_ignores_single_core () =
  let ir = Par_ir.for_const ~n:100_000 ~cycles:8 in
  let m = run ~mode:Runnable.Cilk ~procs:1 ~bw_cap:3.0 ir in
  check "1 core unaffected by cap" true
    (float_of_int m.makespan /. float_of_int (Par_ir.work ir) < 1.1)

let test_promote_innermost_ablation () =
  let ir =
    Par_ir.for_nested ~n:1_000 (fun _ -> Par_ir.for_const ~n:500 ~cycles:10)
  in
  let speedup_of innermost =
    let cfg =
      Runnable.make_cfg ~promote_innermost:innermost Runnable.Tpal (params 15)
    in
    let config = Engine.make_config ~mech:Interrupts.Nautilus_ipi cfg in
    let m = Engine.run config ir in
    float_of_int (Par_ir.work ir) /. float_of_int m.makespan
  in
  (* innermost-first promotes tiny inner slices: strictly worse *)
  check "outermost-first wins" true
    (speedup_of false > speedup_of true)

let test_determinism () =
  let ir =
    Par_ir.for_nested ~n:500 (fun i -> Par_ir.leaf (100 + (i mod 77)))
  in
  let m1 = run ~mode:Runnable.Tpal ~mech:Interrupts.Ping_thread ~procs:7 ir in
  let m2 = run ~mode:Runnable.Tpal ~mech:Interrupts.Ping_thread ~procs:7 ir in
  check_int "same makespan" m1.makespan m2.makespan;
  check_int "same promotions" m1.promotions m2.promotions;
  check_int "same steals" m1.steals m2.steals

let test_empty_program () =
  let m = run (Par_ir.seq []) in
  check_int "zero work" 0 m.work;
  check "finishes" true (m.makespan <= 1)

let prop_modes_agree_on_work =
  QCheck.Test.make ~name:"work identical across modes (random loops)"
    ~count:40
    QCheck.(pair (int_range 1 2_000) (int_range 1 40))
    (fun (n, c) ->
      let ir = Par_ir.for_const ~n ~cycles:c in
      let w = Par_ir.work ir in
      let ms = run ~mode:Runnable.Serial ir in
      let mc = run ~mode:Runnable.Cilk ~procs:4 ir in
      let mt = run ~mode:Runnable.Tpal ~mech:Interrupts.Nautilus_ipi ~procs:4 ir in
      ms.work = w && mc.work = w && mt.work = w)

let prop_parallel_not_slower_than_bound =
  QCheck.Test.make ~name:"makespan >= work / procs (no free lunch)" ~count:40
    QCheck.(pair (int_range 1_000 100_000) (int_range 1 15))
    (fun (n, procs) ->
      let ir = Par_ir.for_const ~n ~cycles:10 in
      let m = run ~mode:Runnable.Cilk ~procs ir in
      m.makespan >= Par_ir.work ir / procs)

(* --- Sim_trace: the observability layer --- *)

let run_traced ?(mode = Runnable.Tpal) ?(mech = Interrupts.Off) ?(procs = 1)
    ?(dilation = 100) ?(bw_cap = infinity) ?(promote = true) ir =
  let cfg = Runnable.make_cfg ~dilation_pct:dilation mode (params procs) in
  let config = Engine.make_config ~mech ~promote ~bw_cap cfg in
  let trace = Sim_trace.create () in
  let m = Engine.run ~trace config ir in
  (m, trace)

let traced_configs =
  [
    ("serial", Runnable.Serial, Interrupts.Off, 1, infinity);
    ("cilk8", Runnable.Cilk, Interrupts.Off, 8, infinity);
    ("cilk-bw", Runnable.Cilk, Interrupts.Off, 15, 3.0);
    ("tpal-naut8", Runnable.Tpal, Interrupts.Nautilus_ipi, 8, infinity);
    ("tpal-ping7", Runnable.Tpal, Interrupts.Ping_thread, 7, infinity);
    ("tpal-papi4", Runnable.Tpal, Interrupts.Papi, 4, infinity);
  ]

let test_trace_reconciles_exactly () =
  (* the tentpole invariant: summed traced segment cycles equal the
     engine's Metrics to the cycle, per class, on every config *)
  List.iter
    (fun (name, ir) ->
      List.iter
        (fun (cname, mode, mech, procs, bw_cap) ->
          let m, tr = run_traced ~mode ~mech ~procs ~bw_cap ir in
          let tot = Sim_trace.totals tr in
          let label what = Printf.sprintf "%s/%s %s" name cname what in
          check_int (label "work") m.work tot.Sim_trace.work;
          check_int (label "overhead") m.overhead tot.Sim_trace.overhead;
          check_int (label "idle") m.idle tot.Sim_trace.idle;
          check_int (label "beats") m.beats_delivered (Sim_trace.beats tr);
          check_int (label "lost") m.beats_lost (Sim_trace.beats_lost tr);
          check_int (label "steals") m.steals (Sim_trace.steals tr);
          check_int (label "promotions") m.promotions
            (Sim_trace.promotions tr))
        traced_configs)
    sample_irs

let assert_no_run_segment_spans_beat (name : string) (tr : Sim_trace.t) :
    unit =
  let nprocs = Sim_trace.procs tr in
  for c = 0 to nprocs - 1 do
    let beats =
      List.filter_map
        (fun (e : Sim_trace.event) ->
          match e.kind with
          | Sim_trace.Beat_delivered _ when e.core = c -> Some e.at
          | _ -> None)
        (Sim_trace.events tr)
    in
    List.iter
      (fun (cls, start, stop, _, _, _) ->
        if cls = Sim_trace.Run then
          List.iter
            (fun b ->
              if b > start && b < stop then
                Alcotest.failf
                  "%s: core %d run segment [%d,%d) spans beat at %d" name c
                  start stop b)
            beats)
      (Sim_trace.segments_of_core tr c)
  done

let test_trace_no_segment_spans_beat () =
  (* the engine's event-ordering invariant: effective beat deliveries
     only land at segment boundaries (promotion-ready points) *)
  let big = Par_ir.for_const ~n:1_000_000 ~cycles:13 in
  List.iter
    (fun (cname, mech, procs) ->
      let _, tr = run_traced ~mode:Runnable.Tpal ~mech ~procs big in
      check (cname ^ ": beats present") true (Sim_trace.beats tr > 0);
      assert_no_run_segment_spans_beat cname tr)
    [
      ("nautilus-8", Interrupts.Nautilus_ipi, 8);
      ("ping-7", Interrupts.Ping_thread, 7);
      ("papi-4", Interrupts.Papi, 4);
      ("nautilus-1", Interrupts.Nautilus_ipi, 1);
    ]

let test_trace_steal_probes_never_self () =
  let rec t d : Par_ir.t =
    if d = 0 then Par_ir.leaf 400
    else Par_ir.spawn2 (fun () -> t (d - 1)) (fun () -> t (d - 1))
  in
  let procs = 8 in
  let _, tr = run_traced ~mode:Runnable.Cilk ~procs (t 9) in
  let attempts = ref 0 in
  Sim_trace.iter
    (fun (e : Sim_trace.event) ->
      match e.kind with
      | Sim_trace.Steal_attempt { victim } ->
          incr attempts;
          check "victim in range" true (victim >= 0 && victim < procs);
          if victim = e.core then
            Alcotest.failf "core %d probed itself" e.core
      | _ -> ())
    tr;
  check "steal scan exercised" true (!attempts > 0)

let test_beats_target_uses_final_makespan () =
  let ir = Par_ir.for_const ~n:300_000 ~cycles:10 in
  let procs = 4 in
  let m = run ~mode:Runnable.Tpal ~mech:Interrupts.Nautilus_ipi ~procs ir in
  let heart = Params.heart_cycles (params procs) in
  check_int "target = procs * (makespan / heart)"
    (procs * (m.makespan / heart))
    m.beats_target;
  let m_off = run ~mode:Runnable.Tpal ~mech:Interrupts.Off ~procs ir in
  check_int "no mechanism, no target" 0 m_off.beats_target

let test_trace_task_ids_and_determinism () =
  let ir =
    Par_ir.for_nested ~n:500 (fun i -> Par_ir.leaf (100 + (i mod 77)))
  in
  let go () =
    run_traced ~mode:Runnable.Tpal ~mech:Interrupts.Ping_thread ~procs:7 ir
  in
  let m1, tr1 = go () in
  let _, tr2 = go () in
  check "trace deterministic" true
    (Sim_trace.events tr1 = Sim_trace.events tr2);
  (* ids are reset per run: every run segment names a task in
     [0, tasks_created] (id 0 is the root) *)
  Sim_trace.iter
    (fun (e : Sim_trace.event) ->
      match e.kind with
      | Sim_trace.Seg_start Sim_trace.Run ->
          check "run segment has a task id" true
            (e.task >= 0 && e.task <= m1.tasks_created)
      | _ -> ())
    tr1

let test_trace_chrome_export_valid () =
  let ir = Par_ir.for_const ~n:200_000 ~cycles:9 in
  let _, tr =
    run_traced ~mode:Runnable.Tpal ~mech:Interrupts.Ping_thread ~procs:4 ir
  in
  let json = Sim_trace.to_chrome_string tr in
  check "chrome export is valid JSON" true (Suite_stats.json_is_valid json);
  check "report renders" true (String.length (Sim_trace.report tr) > 0)

let prop_trace_reconciles_random =
  QCheck.Test.make
    ~name:"random IR/config: trace reconciles, mechanism counters agree"
    ~count:30
    QCheck.(
      quad (int_range 100 60_000) (int_range 1 25) (int_range 1 8)
        (int_range 0 3))
    (fun (n, c, procs, mech_i) ->
      let mech =
        match mech_i with
        | 0 -> Interrupts.Off
        | 1 -> Interrupts.Ping_thread
        | 2 -> Interrupts.Papi
        | _ -> Interrupts.Nautilus_ipi
      in
      let ir = Par_ir.for_const ~n ~cycles:c in
      let m, tr = run_traced ~mode:Runnable.Tpal ~mech ~procs ir in
      let tot = Sim_trace.totals tr in
      tot.Sim_trace.work = m.work
      && tot.Sim_trace.overhead = m.overhead
      && tot.Sim_trace.idle = m.idle
      && Sim_trace.beats tr = m.beats_delivered
      && Sim_trace.beats_lost tr = m.beats_lost
      (* the mechanism generated every delivered beat, plus at most the
         one left in flight when the run ended *)
      && m.beats_emitted - m.beats_delivered >= 0
      && m.beats_emitted - m.beats_delivered <= 1)

let suite =
  ( "engine",
    [
      Alcotest.test_case "Par_ir work" `Quick test_work_computation;
      Alcotest.test_case "Par_ir span" `Quick test_span_computation;
      Alcotest.test_case "deep spawn tree traversal" `Quick
        test_work_deep_spawn_tree;
      Alcotest.test_case "serial conserves work" `Quick
        test_serial_makespan_equals_work;
      Alcotest.test_case "all modes conserve work" `Quick
        test_all_modes_conserve_work;
      Alcotest.test_case "cilk loop decomposition" `Quick
        test_cilk_decomposes_loops;
      Alcotest.test_case "cilk eager spawns" `Quick test_cilk_eager_spawns;
      Alcotest.test_case "tpal serial without beats" `Quick
        test_tpal_serial_without_beats;
      Alcotest.test_case "tpal promotes on beats" `Quick
        test_tpal_promotes_on_beats;
      Alcotest.test_case "interrupts-only config" `Quick
        test_tpal_interrupts_only_no_promotions;
      Alcotest.test_case "join barriers between phases" `Quick
        test_join_barrier_blocks_phases;
      Alcotest.test_case "dilation model" `Quick test_dilation_slows_execution;
      Alcotest.test_case "bandwidth cap binds" `Quick test_bandwidth_cap_binds;
      Alcotest.test_case "bandwidth cap on one core" `Quick
        test_bandwidth_cap_ignores_single_core;
      Alcotest.test_case "promotion-policy ablation" `Quick
        test_promote_innermost_ablation;
      Alcotest.test_case "simulation determinism" `Quick test_determinism;
      Alcotest.test_case "empty program" `Quick test_empty_program;
      QCheck_alcotest.to_alcotest prop_modes_agree_on_work;
      QCheck_alcotest.to_alcotest prop_parallel_not_slower_than_bound;
      Alcotest.test_case "trace reconciles with Metrics" `Quick
        test_trace_reconciles_exactly;
      Alcotest.test_case "no run segment spans a beat" `Quick
        test_trace_no_segment_spans_beat;
      Alcotest.test_case "steal probes never target self" `Quick
        test_trace_steal_probes_never_self;
      Alcotest.test_case "beats target formula" `Quick
        test_beats_target_uses_final_makespan;
      Alcotest.test_case "trace task ids & determinism" `Quick
        test_trace_task_ids_and_determinism;
      Alcotest.test_case "chrome export valid JSON" `Quick
        test_trace_chrome_export_valid;
      QCheck_alcotest.to_alcotest prop_trace_reconciles_random;
    ] )
