(* Tests for the simulator substrate: PRNG, event queue, work-stealing
   deque, interrupt mechanisms. *)

open Sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    check_int "same stream" (Prng.int a 1_000_000) (Prng.int b 1_000_000)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let da = List.init 20 (fun _ -> Prng.int a 1000) in
  let db = List.init 20 (fun _ -> Prng.int b 1000) in
  check "different seeds differ" true (da <> db)

let prop_prng_bounds =
  QCheck.Test.make ~name:"Prng.int within bounds" ~count:500
    QCheck.(pair (int_range 1 1_000_000) small_int)
    (fun (bound, seed) ->
      let rng = Prng.create ~seed in
      let x = Prng.int rng bound in
      x >= 0 && x < bound)

let prop_prng_float_unit =
  QCheck.Test.make ~name:"Prng.float in [0,1)" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed in
      let x = Prng.float rng in
      x >= 0. && x < 1.)

let test_prng_float_mean () =
  let rng = Prng.create ~seed:7 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.float rng
  done;
  let mean = !sum /. float_of_int n in
  check "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_prng_exponential_mean () =
  let rng = Prng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential rng ~mean:10.
  done;
  let mean = !sum /. float_of_int n in
  check "exponential mean near 10" true (abs_float (mean -. 10.) < 0.5)

(* Pearson chi-square statistic for [draws] samples over [buckets]
   equiprobable cells. With df = buckets-1 the statistic concentrates
   around df ± a few sqrt(2·df); the bounds below are ~5 sigma. *)
let chi_square ~buckets ~draws sample =
  let counts = Array.make buckets 0 in
  for _ = 1 to draws do
    let b = sample () in
    counts.(b) <- counts.(b) + 1
  done;
  let expected = float_of_int draws /. float_of_int buckets in
  Array.fold_left
    (fun acc c ->
      let d = float_of_int c -. expected in
      acc +. (d *. d /. expected))
    0. counts

let test_prng_chi_square () =
  let rng = Prng.create ~seed:0xC0FFEE in
  let buckets = 64 in
  let stat = chi_square ~buckets ~draws:65_536 (fun () -> Prng.int rng buckets) in
  (* df = 63: mean 63, sigma ~11.2 *)
  check "chi-square plausible" true (stat > 20. && stat < 130.)

let test_prng_split_independent () =
  let parent = Prng.create ~seed:42 in
  let child = Prng.split parent in
  (* the old split bug: child replayed the parent's exact future *)
  let cs = List.init 32 (fun _ -> Prng.int child 1_000_000) in
  let ps = List.init 32 (fun _ -> Prng.int parent 1_000_000) in
  check "child does not replay parent" true (cs <> ps);
  let overlap = List.filter (fun x -> List.mem x ps) cs in
  check "sequences essentially disjoint" true (List.length overlap <= 2);
  (* successive splits from the same parent are distinct streams *)
  let p2 = Prng.create ~seed:42 in
  let c1 = Prng.split p2 and c2 = Prng.split p2 in
  let xs = List.init 32 (fun _ -> Prng.int c1 1_000_000) in
  let ys = List.init 32 (fun _ -> Prng.int c2 1_000_000) in
  check "sibling streams differ" true (xs <> ys)

let test_prng_split_chi_square () =
  (* first output of each of 16k children must itself be uniform *)
  let parent = Prng.create ~seed:7 in
  let buckets = 64 in
  let stat =
    chi_square ~buckets ~draws:16_384 (fun () ->
        Prng.int (Prng.split parent) buckets)
  in
  check "split chi-square plausible" true (stat > 20. && stat < 130.)

let test_prng_split_preserves_default_stream () =
  (* splitting must advance the parent deterministically, and creating
     a stream must reproduce the exact pre-split sequence (the whole
     test suite depends on seeded sequences staying bit-identical) *)
  let a = Prng.create ~seed:9 and b = Prng.create ~seed:9 in
  let _ = Prng.split a and _ = Prng.split b in
  for _ = 1 to 50 do
    check_int "parents agree after split" (Prng.int a 1_000_000)
      (Prng.int b 1_000_000)
  done

let test_zipf_head_heavy () =
  let rng = Prng.create ~seed:3 in
  let n = 10_000 in
  let ones = ref 0 in
  for _ = 1 to n do
    if Prng.zipf rng ~n:1000 ~s:1.5 = 1 then incr ones
  done;
  (* rank 1 should dominate under a Zipf law *)
  check "head heavy" true (!ones > n / 10)

(* --- Eventq --- *)

let test_eventq_orders_by_time () =
  let q = Eventq.create ~dummy:(-1) in
  List.iter (fun t -> Eventq.add q ~time:t t) [ 5; 1; 9; 3; 7; 2; 8 ];
  let out = ref [] in
  let rec drain () =
    match Eventq.pop q with
    | Some (_, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  check "sorted" true (List.rev !out = [ 1; 2; 3; 5; 7; 8; 9 ])

let test_eventq_fifo_on_ties () =
  let q = Eventq.create ~dummy:(-1) in
  List.iter (fun v -> Eventq.add q ~time:10 v) [ 1; 2; 3; 4 ];
  let next () = snd (Option.get (Eventq.pop q)) in
  check "insertion order on equal times" true
    (List.init 4 (fun _ -> next ()) = [ 1; 2; 3; 4 ])

let prop_eventq_sorted =
  QCheck.Test.make ~name:"event queue pops in nondecreasing time order"
    ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_bound 200) (int_bound 100_000))
    (fun times ->
      let q = Eventq.create ~dummy:0 in
      List.iter (fun t -> Eventq.add q ~time:t t) times;
      let rec drain last =
        match Eventq.pop q with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain min_int)

let test_eventq_interleaved () =
  let q = Eventq.create ~dummy:0 in
  Eventq.add q ~time:10 10;
  Eventq.add q ~time:5 5;
  check "pop min" true (Eventq.pop q = Some (5, 5));
  Eventq.add q ~time:1 1;
  check "pop new min" true (Eventq.pop q = Some (1, 1));
  check "peek" true (Eventq.peek_time q = Some 10);
  check_int "length" 1 (Eventq.length q)

(* --- Wsdeque --- *)

let test_deque_lifo_owner () =
  let d = Wsdeque.create () in
  List.iter (Wsdeque.push_bottom d) [ 1; 2; 3 ];
  check "owner pops newest" true (Wsdeque.pop_bottom d = Some 3);
  check "then next" true (Wsdeque.pop_bottom d = Some 2)

let test_deque_fifo_thief () =
  let d = Wsdeque.create () in
  List.iter (Wsdeque.push_bottom d) [ 1; 2; 3 ];
  check "thief steals oldest" true (Wsdeque.steal_top d = Some 1);
  check "owner unaffected" true (Wsdeque.pop_bottom d = Some 3);
  check "thief again" true (Wsdeque.steal_top d = Some 2);
  check "empty" true (Wsdeque.pop_bottom d = None)

let prop_deque_model =
  (* model: a list; push_bottom appends, pop_bottom takes last,
     steal_top takes first *)
  QCheck.Test.make ~name:"deque matches list model" ~count:300
    QCheck.(list (int_bound 2))
    (fun ops ->
      let d = Wsdeque.create () in
      let model = ref [] in
      let counter = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
              incr counter;
              Wsdeque.push_bottom d !counter;
              model := !model @ [ !counter ];
              true
          | 1 -> (
              let got = Wsdeque.pop_bottom d in
              match List.rev !model with
              | [] -> got = None
              | x :: rest ->
                  model := List.rev rest;
                  got = Some x)
          | _ -> (
              let got = Wsdeque.steal_top d in
              match !model with
              | [] -> got = None
              | x :: rest ->
                  model := rest;
                  got = Some x))
        ops
      && Wsdeque.length d = List.length !model)

let test_deque_stress_no_loss_no_dup () =
  (* long random op sequence with unique task ids: every pushed id is
     observed exactly once, either popped/stolen during the run or
     still resident at the end *)
  let rng = Prng.create ~seed:0xDE0E in
  let d = Wsdeque.create () in
  let next_id = ref 0 in
  let pushed = Hashtbl.create 1024 in
  let seen = Hashtbl.create 1024 in
  let observe id =
    check "no duplicate delivery" false (Hashtbl.mem seen id);
    check "delivered id was pushed" true (Hashtbl.mem pushed id);
    Hashtbl.replace seen id ()
  in
  for _ = 1 to 20_000 do
    match Prng.int rng 3 with
    | 0 ->
        incr next_id;
        Hashtbl.replace pushed !next_id ();
        Wsdeque.push_bottom d !next_id
    | 1 -> Option.iter observe (Wsdeque.pop_bottom d)
    | _ -> Option.iter observe (Wsdeque.steal_top d)
  done;
  let rec drain () =
    match Wsdeque.steal_top d with
    | Some id ->
        observe id;
        drain ()
    | None -> ()
  in
  drain ();
  check_int "all pushed ids accounted for" (Hashtbl.length pushed)
    (Hashtbl.length seen)

let test_deque_stress_order_invariants () =
  (* thief always sees the oldest resident task, owner the newest —
     checked against a list model over a random interleaving *)
  let rng = Prng.create ~seed:0xFACE in
  let d = Wsdeque.create () in
  let model = ref [] in
  let next_id = ref 0 in
  for _ = 1 to 10_000 do
    match Prng.int rng 4 with
    | 0 | 1 ->
        incr next_id;
        Wsdeque.push_bottom d !next_id;
        model := !model @ [ !next_id ]
    | 2 -> (
        match (Wsdeque.pop_bottom d, List.rev !model) with
        | None, [] -> ()
        | Some got, newest :: rest ->
            check_int "owner pops newest" newest got;
            model := List.rev rest
        | got, _ ->
            Alcotest.failf "owner/model mismatch: got %s"
              (match got with Some x -> string_of_int x | None -> "None"))
    | _ -> (
        match (Wsdeque.steal_top d, !model) with
        | None, [] -> ()
        | Some got, oldest :: rest ->
            check_int "thief steals oldest" oldest got;
            model := rest
        | got, _ ->
            Alcotest.failf "thief/model mismatch: got %s"
              (match got with Some x -> string_of_int x | None -> "None"))
  done;
  check_int "final length agrees" (List.length !model) (Wsdeque.length d)

let test_eventq_stress_stable_ties () =
  (* random times drawn from a small range to force many collisions;
     dequeue order must be nondecreasing in time and, within a time,
     must preserve insertion order (seq tie-break) *)
  let rng = Prng.create ~seed:0xBEA7 in
  let q = Eventq.create ~dummy:(0, 0) in
  let n = 5_000 in
  for i = 1 to n do
    let t = Prng.int rng 50 in
    Eventq.add q ~time:t (t, i)
  done;
  let last_time = ref min_int and last_seq = ref 0 and popped = ref 0 in
  let rec drain () =
    match Eventq.pop q with
    | None -> ()
    | Some (t, (t', i)) ->
        incr popped;
        check_int "payload time matches key" t t';
        check "nondecreasing time" true (t >= !last_time);
        if t = !last_time then
          check "stable tie-break (insertion order)" true (i > !last_seq);
        last_time := t;
        last_seq := i;
        drain ()
  in
  drain ();
  check_int "all events popped" n !popped

(* --- Interrupts --- *)

let params heart_us = { Params.default with heart_us }

let drain_deliveries t n =
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      match Interrupts.next t with
      | None -> List.rev acc
      | Some d -> go (d :: acc) (k - 1)
  in
  go [] n

let test_interrupts_off () =
  let t = Interrupts.create (params 100.) Interrupts.Off ~mem_intensity:0. in
  check "no deliveries" true (Interrupts.next t = None)

let test_nautilus_hits_target () =
  let p = params 100. in
  let t = Interrupts.create p Interrupts.Nautilus_ipi ~mem_intensity:0.9 in
  let ds = drain_deliveries t (15 * 20) in
  check_int "no losses" 0 (Interrupts.lost t);
  (* every core beats once per period *)
  let per_core = Array.make 15 0 in
  List.iter (fun (d : Interrupts.delivery) -> per_core.(d.core) <- per_core.(d.core) + 1) ds;
  Array.iter (fun c -> check_int "even distribution" 20 c) per_core;
  (* deliveries in each period land at nominal + latency *)
  let d0 = List.hd ds in
  check_int "first delivery time" (Params.heart_cycles p + p.ipi_latency) d0.at

let test_ping_thread_loses_signals () =
  let t =
    Interrupts.create (params 100.) Interrupts.Ping_thread ~mem_intensity:0.8
  in
  let ds = drain_deliveries t 1_000 in
  check "some signals lost" true (Interrupts.lost t > 0);
  check "some delivered" true (List.length ds = 1_000)

let test_ping_thread_saturates_at_20us () =
  (* at 20 µs the 15-worker sweep (15 × signal_send) exceeds ♥, so
     the achieved inter-sweep gap is sweep-bound, not ♥-bound *)
  let p = params 20. in
  let t = Interrupts.create p Interrupts.Ping_thread ~mem_intensity:0. in
  let ds = drain_deliveries t 3_000 in
  let horizon = (List.nth ds 2_999).at in
  let rate_per_cycle = 3_000. /. float_of_int horizon in
  let target_per_cycle = 15. /. float_of_int (Params.heart_cycles p) in
  check "achieved below 60% of target" true
    (rate_per_cycle < 0.6 *. target_per_cycle)

let test_nautilus_no_saturation_at_20us () =
  let p = params 20. in
  let t = Interrupts.create p Interrupts.Nautilus_ipi ~mem_intensity:0.9 in
  let ds = drain_deliveries t 3_000 in
  let horizon = (List.nth ds 2_999).at in
  let rate_per_cycle = 3_000. /. float_of_int horizon in
  let target_per_cycle = 15. /. float_of_int (Params.heart_cycles p) in
  check "achieves >= 95% of target" true
    (rate_per_cycle >= 0.95 *. target_per_cycle)

let test_papi_costlier_handler () =
  let p = params 100. in
  let tp = Interrupts.create p Interrupts.Papi ~mem_intensity:0. in
  let tn = Interrupts.create p Interrupts.Nautilus_ipi ~mem_intensity:0. in
  let dp = Option.get (Interrupts.next tp) in
  let dn = Option.get (Interrupts.next tn) in
  check "PAPI handler costlier" true (dp.handler_cost > dn.handler_cost)

let test_deliveries_monotone () =
  List.iter
    (fun mech ->
      let t = Interrupts.create (params 50.) mech ~mem_intensity:0.4 in
      let ds = drain_deliveries t 500 in
      let rec mono last = function
        | [] -> true
        | (d : Interrupts.delivery) :: rest ->
            (* ping-thread jitter may reorder within a sweep by up to
               the jitter bound *)
            d.at + Params.default.signal_jitter >= last && mono d.at rest
      in
      check "monotone-ish" true (mono 0 ds))
    [ Interrupts.Ping_thread; Interrupts.Papi; Interrupts.Nautilus_ipi ]

let test_fault_drop_counts () =
  let f = { Interrupts.no_faults with drop = 0.5 } in
  let t =
    Interrupts.create ~faults:f (params 100.) Interrupts.Nautilus_ipi
      ~mem_intensity:0.
  in
  let ds = drain_deliveries t 500 in
  check_int "500 delivered" 500 (List.length ds);
  check "injected drops counted" true (Interrupts.dropped t > 100);
  check_int "drops are the only losses on nautilus" (Interrupts.dropped t)
    (Interrupts.lost t);
  check_int "delivered counter matches returns" 500 (Interrupts.delivered t)

let test_fault_dup_counts () =
  let f = { Interrupts.no_faults with dup = 0.5 } in
  let t =
    Interrupts.create ~faults:f (params 100.) Interrupts.Nautilus_ipi
      ~mem_intensity:0.
  in
  let ds = drain_deliveries t 600 in
  check_int "600 delivered" 600 (List.length ds);
  check "duplicates injected" true (Interrupts.duplicated t > 100);
  check_int "no losses" 0 (Interrupts.lost t)

let test_faults_off_stream_unchanged () =
  (* the fault layer with no_faults must be byte-identical to the
     native stream — enabling the plumbing cannot shift any test *)
  let a = Interrupts.create (params 100.) Interrupts.Ping_thread ~mem_intensity:0.5 in
  let b =
    Interrupts.create ~faults:Interrupts.no_faults (params 100.)
      Interrupts.Ping_thread ~mem_intensity:0.5
  in
  let da = drain_deliveries a 300 and db = drain_deliveries b 300 in
  check "identical streams" true (da = db)

let suite =
  ( "substrate",
    [
      Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
      Alcotest.test_case "prng seed sensitivity" `Quick
        test_prng_seed_sensitivity;
      QCheck_alcotest.to_alcotest prop_prng_bounds;
      QCheck_alcotest.to_alcotest prop_prng_float_unit;
      Alcotest.test_case "prng uniform mean" `Quick test_prng_float_mean;
      Alcotest.test_case "prng exponential mean" `Quick
        test_prng_exponential_mean;
      Alcotest.test_case "prng chi-square" `Quick test_prng_chi_square;
      Alcotest.test_case "prng split independence" `Quick
        test_prng_split_independent;
      Alcotest.test_case "prng split chi-square" `Quick
        test_prng_split_chi_square;
      Alcotest.test_case "prng split keeps default stream" `Quick
        test_prng_split_preserves_default_stream;
      Alcotest.test_case "zipf head-heaviness" `Quick test_zipf_head_heavy;
      Alcotest.test_case "eventq time order" `Quick test_eventq_orders_by_time;
      Alcotest.test_case "eventq tie-break order" `Quick
        test_eventq_fifo_on_ties;
      QCheck_alcotest.to_alcotest prop_eventq_sorted;
      Alcotest.test_case "eventq interleaved" `Quick test_eventq_interleaved;
      Alcotest.test_case "deque owner LIFO" `Quick test_deque_lifo_owner;
      Alcotest.test_case "deque thief FIFO" `Quick test_deque_fifo_thief;
      QCheck_alcotest.to_alcotest prop_deque_model;
      Alcotest.test_case "deque stress: no loss, no dup" `Quick
        test_deque_stress_no_loss_no_dup;
      Alcotest.test_case "deque stress: order invariants" `Quick
        test_deque_stress_order_invariants;
      Alcotest.test_case "eventq stress: stable ties" `Quick
        test_eventq_stress_stable_ties;
      Alcotest.test_case "interrupts off" `Quick test_interrupts_off;
      Alcotest.test_case "nautilus hits target" `Quick test_nautilus_hits_target;
      Alcotest.test_case "ping thread loses signals" `Quick
        test_ping_thread_loses_signals;
      Alcotest.test_case "ping thread saturates at 20us" `Quick
        test_ping_thread_saturates_at_20us;
      Alcotest.test_case "nautilus meets 20us" `Quick
        test_nautilus_no_saturation_at_20us;
      Alcotest.test_case "PAPI handler cost" `Quick test_papi_costlier_handler;
      Alcotest.test_case "delivery monotonicity" `Quick test_deliveries_monotone;
      Alcotest.test_case "fault drops counted" `Quick test_fault_drop_counts;
      Alcotest.test_case "fault duplicates counted" `Quick
        test_fault_dup_counts;
      Alcotest.test_case "no_faults stream unchanged" `Quick
        test_faults_off_stream_unchanged;
    ] )
