(* Tests for the statistics helpers and the table renderer. *)

let checkf = Alcotest.(check (float 1e-9))
let check = Alcotest.(check bool)

let test_mean_geomean () =
  checkf "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  checkf "geomean" 2. (Stats.geomean [ 1.; 4. ]);
  checkf "geomean of equal values" 7. (Stats.geomean [ 7.; 7.; 7. ]);
  check "geomean rejects nonpositive" true
    (Float.is_nan (Stats.geomean [ 1.; 0. ]));
  check "empty mean is nan" true (Float.is_nan (Stats.mean []))

let test_speedup_normalized () =
  checkf "speedup" 4. (Stats.speedup ~baseline:8. 2.);
  checkf "normalized" 2. (Stats.normalized ~baseline:4. 8.);
  checkf "percent change" 50. (Stats.percent_change ~from_:2. 3.)

let test_stddev () =
  checkf "constant series" 0. (Stats.stddev [ 5.; 5.; 5. ]);
  checkf "known value" (sqrt 2.) (Stats.stddev [ 1.; 3. ] *. 1.0)

let prop_geomean_between_min_max =
  QCheck.Test.make ~name:"geomean between min and max" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range 0.01 100.))
    (fun xs ->
      let g = Stats.geomean xs in
      g >= Stats.min_l xs -. 1e-9 && g <= Stats.max_l xs +. 1e-9)

let prop_geomean_le_mean =
  QCheck.Test.make ~name:"AM-GM inequality" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range 0.01 100.))
    (fun xs -> Stats.geomean xs <= Stats.mean xs +. 1e-9)

let test_table_render () =
  let t =
    Stats.Table.make ~title:"T" ~header:[ "name"; "v" ]
      [ [ "a"; "1.00" ]; [ "long-name"; "2.50" ] ]
  in
  let s = Stats.Table.render t in
  check "contains title" true (String.length s > 0 && String.sub s 0 1 = "T");
  check "contains rows" true
    (List.exists
       (fun line -> String.length line > 0 && String.contains line 'a')
       (String.split_on_char '\n' s))

let test_table_csv () =
  let t =
    Stats.Table.make ~title:"T" ~header:[ "a"; "b" ]
      [ [ "x,y"; "1" ]; [ "plain"; "2" ] ]
  in
  let csv = Stats.Table.to_csv t in
  check "quotes commas" true
    (List.exists
       (fun l -> l = "\"x,y\",1")
       (String.split_on_char '\n' csv))

let test_grouped_ints () =
  Alcotest.(check string) "grouping" "1,234,567" (Stats.Table.fmt_int_grouped 1_234_567);
  Alcotest.(check string) "small" "42" (Stats.Table.fmt_int_grouped 42);
  Alcotest.(check string) "negative" "-1,000" (Stats.Table.fmt_int_grouped (-1000))

let test_fmt_float_nan () =
  Alcotest.(check string) "nan renders as dash" "-" (Stats.Table.fmt_float nan)

let test_empty_extrema () =
  (* all four summary helpers agree on empty input: nan, never ±inf *)
  check "empty mean is nan" true (Float.is_nan (Stats.mean []));
  check "empty geomean is nan" true (Float.is_nan (Stats.geomean []));
  check "empty min is nan" true (Float.is_nan (Stats.min_l []));
  check "empty max is nan" true (Float.is_nan (Stats.max_l []));
  (* and still behave on non-empty samples *)
  checkf "min" 1. (Stats.min_l [ 3.; 1.; 2. ]);
  checkf "max" 3. (Stats.max_l [ 3.; 1.; 2. ])

(* --- Chrome trace-event JSON --- *)

(* A minimal recursive-descent JSON validator — enough to certify that
   the emitter's output is well-formed without a JSON dependency.
   Exposed for the engine suite's trace-export test. *)
let json_is_valid (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let fail = ref false in
  let expect c =
    if peek () = Some c then advance () else fail := true
  in
  let rec value () =
    if !fail then ()
    else begin
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> string_lit ()
      | Some ('-' | '0' .. '9') -> number ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | _ -> fail := true
    end
  and literal lit =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then pos := !pos + String.length lit
    else fail := true
  and number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail := true
  and string_lit () =
    expect '"';
    let closed = ref false in
    while (not !closed) && not !fail do
      match peek () with
      | None -> fail := true
      | Some '"' ->
          advance ();
          closed := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail := true
              done
          | _ -> fail := true)
      | Some c when Char.code c < 0x20 -> fail := true
      | Some _ -> advance ()
    done
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      let again = ref true in
      while !again && not !fail do
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some '}' ->
            advance ();
            again := false
        | _ ->
            fail := true;
            again := false
      done
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      let again = ref true in
      while !again && not !fail do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some ']' ->
            advance ();
            again := false
        | _ ->
            fail := true;
            again := false
      done
    end
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

let test_json_validator () =
  check "object" true (json_is_valid {|{"a":1,"b":[true,null,"x"]}|});
  check "nested" true (json_is_valid {|[{"k":-1.5e3},{}]|});
  check "trailing garbage" false (json_is_valid "{}x");
  check "unterminated" false (json_is_valid {|{"a":1|});
  check "bare word" false (json_is_valid "hello")

let test_chrome_trace_emitter () =
  let module C = Stats.Chrome_trace in
  let events =
    [
      C.process_name ~pid:0 "p";
      C.thread_name ~pid:0 ~tid:3 "core 3";
      C.complete ~cat:"segment"
        ~args:[ ("work", C.Int 7); ("f", C.Float 1.25) ]
        ~name:"run" ~pid:0 ~tid:3 ~ts:1.5 ~dur:2.5 ();
      C.instant ~name:"beat \"x\"\n" ~pid:0 ~tid:3 ~ts:4.0 ();
      C.counter ~name:"util" ~pid:0 ~ts:5.0 [ ("u", 0.5) ];
    ]
  in
  let s = C.to_string events in
  check "valid JSON" true (json_is_valid s);
  check "escapes quotes and newlines" true
    (json_is_valid s
    && not
         (String.exists (fun c -> c = '\n') s));
  (* non-finite numbers must not leak into the document *)
  let s2 =
    C.to_string [ C.instant ~name:"x" ~pid:0 ~tid:0 ~ts:Float.nan () ]
  in
  check "nan clamped" true (json_is_valid s2)

let suite =
  ( "stats",
    [
      Alcotest.test_case "mean & geomean" `Quick test_mean_geomean;
      Alcotest.test_case "speedup helpers" `Quick test_speedup_normalized;
      Alcotest.test_case "stddev" `Quick test_stddev;
      QCheck_alcotest.to_alcotest prop_geomean_between_min_max;
      QCheck_alcotest.to_alcotest prop_geomean_le_mean;
      Alcotest.test_case "table rendering" `Quick test_table_render;
      Alcotest.test_case "csv escaping" `Quick test_table_csv;
      Alcotest.test_case "grouped integers" `Quick test_grouped_ints;
      Alcotest.test_case "nan formatting" `Quick test_fmt_float_nan;
      Alcotest.test_case "empty-sample extrema are nan" `Quick
        test_empty_extrema;
      Alcotest.test_case "json validator" `Quick test_json_validator;
      Alcotest.test_case "chrome trace emitter" `Quick
        test_chrome_trace_emitter;
    ] )
