(* Test runner: every suite of the reproduction — the TPAL abstract
   machine and toolchain, the simulated testbed substrate, the
   benchmark kernels, the effects-based heartbeat runtime, and the
   experiment harness. *)

let () =
  Alcotest.run "tpal-repro"
    [
      Suite_value.suite;
      Suite_machine.suite;
      Suite_step.suite;
      Suite_eval.suite;
      Suite_cost.suite;
      Suite_syntax.suite;
      Suite_trace.suite;
      Suite_rollforward.suite;
      Suite_assets.suite;
      Suite_substrate.suite;
      Suite_engine.suite;
      Suite_faults.suite;
      Suite_workloads.suite;
      Suite_heartbeat.suite;
      Suite_par.suite;
      Suite_chaos.suite;
      Suite_fuzz.suite;
      Suite_serve.suite;
      Suite_net.suite;
      Suite_obs.suite;
      Suite_stats.suite;
      Suite_repro.suite;
    ]
