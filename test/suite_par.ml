(* The multi-domain runtime (lib/par): the concurrent Chase–Lev deque
   under real contention, and the scheduler's correctness properties —
   exactly-once loop coverage, fork trees, join resolution across
   domains, kernel equality against the serial executor, session
   reuse, and exception propagation.

   Everything here gates on nothing: the runtime must be correct at
   any domain count on any host, including domain counts above the
   core count (oversubscription just means more preemption).  Only
   SPEEDUP claims depend on real cores, and those live in the bench
   pipeline (BENCH_par.json), not in tier-1. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Ws_deque, single-threaded: LIFO at the bottom, FIFO at the top. *)

let test_deque_lifo () =
  let d = Par.Ws_deque.create () in
  check "fresh empty" true (Par.Ws_deque.is_empty d);
  for i = 1 to 100 do
    Par.Ws_deque.push_bottom d i
  done;
  check_int "length" 100 (Par.Ws_deque.length d);
  for i = 100 downto 1 do
    check_int "pop order" i
      (match Par.Ws_deque.pop_bottom d with Some v -> v | None -> -1)
  done;
  check "drained" true (Par.Ws_deque.is_empty d);
  check "pop on empty" true (Par.Ws_deque.pop_bottom d = None)

let test_deque_fifo_steal () =
  let d = Par.Ws_deque.create () in
  for i = 1 to 50 do
    Par.Ws_deque.push_bottom d i
  done;
  (* thieves see the oldest end *)
  for i = 1 to 25 do
    check_int "steal order" i
      (match Par.Ws_deque.steal_top d with Some v -> v | None -> -1)
  done;
  (* the owner still sees LIFO on what remains *)
  for i = 50 downto 26 do
    check_int "pop after steals" i
      (match Par.Ws_deque.pop_bottom d with Some v -> v | None -> -1)
  done;
  check "steal on empty" true (Par.Ws_deque.steal_top d = None)

let test_deque_grow () =
  (* push far past the initial capacity, interleaving pops *)
  let d = Par.Ws_deque.create () in
  let next = ref 0 in
  let popped = ref [] in
  for _ = 1 to 2000 do
    Par.Ws_deque.push_bottom d !next;
    incr next;
    if !next mod 3 = 0 then
      match Par.Ws_deque.pop_bottom d with
      | Some v -> popped := v :: !popped
      | None -> Alcotest.fail "pop on non-empty"
  done;
  let rec drain acc =
    match Par.Ws_deque.pop_bottom d with
    | Some v -> drain (v :: acc)
    | None -> acc
  in
  let all = List.sort compare (!popped @ drain []) in
  check_int "no lost or duplicated elements" 2000 (List.length all);
  List.iteri (fun i v -> if i <> v then Alcotest.failf "hole at %d: %d" i v) all

(* ------------------------------------------------------------------ *)
(* Ws_deque under real contention: one owner domain doing push/pop,
   several thief domains stealing, ≥1e5 operations.  Checks: the
   multiset of popped+stolen elements is exactly the pushed multiset
   (nothing lost, nothing duplicated), and each thief observes
   strictly increasing elements (single-deque steals are FIFO). *)

let test_deque_stress () =
  let d = Par.Ws_deque.create () in
  let total = 120_000 in
  let n_thieves = 3 in
  let stop = Atomic.make false in
  let stolen = Array.init n_thieves (fun _ -> ref []) in
  let thieves =
    Array.init n_thieves (fun t ->
        Domain.spawn (fun () ->
            let mine = stolen.(t) in
            while not (Atomic.get stop) do
              match Par.Ws_deque.steal_top d with
              | Some v -> mine := v :: !mine
              | None -> Domain.cpu_relax ()
            done;
            (* final sweep so nothing is stranded *)
            let rec sweep () =
              match Par.Ws_deque.steal_top d with
              | Some v ->
                  mine := v :: !mine;
                  sweep ()
              | None -> ()
            in
            sweep ()))
  in
  let popped = ref [] in
  let next = ref 0 in
  let rng = ref 42 in
  let rand () =
    rng := (!rng * 1103515245) + 12345;
    (!rng lsr 16) land 0xFF
  in
  while !next < total do
    (* bursts of pushes, then a few pops: keeps the deque crossing the
       empty/one-element boundary where the races live *)
    let burst = 1 + (rand () mod 8) in
    for _ = 1 to burst do
      if !next < total then begin
        Par.Ws_deque.push_bottom d !next;
        incr next
      end
    done;
    let pops = rand () mod 4 in
    for _ = 1 to pops do
      match Par.Ws_deque.pop_bottom d with
      | Some v -> popped := v :: !popped
      | None -> ()
    done
  done;
  Atomic.set stop true;
  Array.iter Domain.join thieves;
  (* drain what the owner still holds *)
  let rec drain () =
    match Par.Ws_deque.pop_bottom d with
    | Some v ->
        popped := v :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  (* per-thief FIFO: steals from one deque arrive oldest-first *)
  Array.iteri
    (fun t mine ->
      let in_order = List.rev !mine in
      let rec mono = function
        | a :: (b :: _ as rest) ->
            if a >= b then
              Alcotest.failf "thief %d saw %d before %d (not FIFO)" t a b;
            mono rest
        | _ -> ()
      in
      mono in_order)
    stolen;
  (* conservation: pushed = popped ⊎ stolen *)
  let all =
    List.sort compare
      (!popped @ Array.fold_left (fun acc r -> !r @ acc) [] stolen)
  in
  check_int "conservation (no lost/duplicated)" total (List.length all);
  List.iteri
    (fun i v -> if i <> v then Alcotest.failf "element %d missing (saw %d)" i v)
    all

let cfg ?(domains = 3) ?(heart_us = 25.) () =
  { Par.Runtime.default_config with domains; heart_us }

(* ------------------------------------------------------------------ *)
(* Ws_deque growth racing live thieves: the owner repeatedly pushes
   bursts far past the current capacity (forcing [grow] — initial
   capacity is 16, so a 700-element burst grows several times) while
   thief domains steal concurrently, so steals are in flight across
   the old-table/new-table hand-over.  Checks conservation and
   per-thief FIFO, same as the general stress test, but the schedule
   is shaped to keep every grow under contention. *)

let test_deque_grow_under_steal () =
  let d = Par.Ws_deque.create () in
  let bursts = 40 in
  let burst_len = 700 in
  let total = bursts * burst_len in
  let n_thieves = 2 in
  let stop = Atomic.make false in
  let stolen = Array.init n_thieves (fun _ -> ref []) in
  let thieves =
    Array.init n_thieves (fun t ->
        Domain.spawn (fun () ->
            let mine = stolen.(t) in
            while not (Atomic.get stop) do
              match Par.Ws_deque.steal_top d with
              | Some v -> mine := v :: !mine
              | None -> Domain.cpu_relax ()
            done;
            let rec sweep () =
              match Par.Ws_deque.steal_top d with
              | Some v ->
                  mine := v :: !mine;
                  sweep ()
              | None -> ()
            in
            sweep ()))
  in
  let popped = ref [] in
  let next = ref 0 in
  for _ = 1 to bursts do
    (* each burst crosses several grow boundaries while thieves run *)
    for _ = 1 to burst_len do
      Par.Ws_deque.push_bottom d !next;
      incr next
    done;
    (* a few owner pops to exercise the shrunken-window paths *)
    for _ = 1 to 5 do
      match Par.Ws_deque.pop_bottom d with
      | Some v -> popped := v :: !popped
      | None -> ()
    done
  done;
  Atomic.set stop true;
  Array.iter Domain.join thieves;
  let rec drain () =
    match Par.Ws_deque.pop_bottom d with
    | Some v ->
        popped := v :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Array.iteri
    (fun t mine ->
      let rec mono = function
        | a :: (b :: _ as rest) ->
            if a >= b then
              Alcotest.failf "thief %d saw %d before %d (not FIFO)" t a b;
            mono rest
        | _ -> ()
      in
      mono (List.rev !mine))
    stolen;
  let all =
    List.sort compare
      (!popped @ Array.fold_left (fun acc r -> !r @ acc) [] stolen)
  in
  check_int "conservation across grows" total (List.length all);
  List.iteri
    (fun i v -> if i <> v then Alcotest.failf "element %d missing (saw %d)" i v)
    all

(* ------------------------------------------------------------------ *)
(* Victim selection must be total, never self, and in range for ANY
   rng draw — including draws near [max_int], where the pre-fix
   arithmetic ([1 + ((r + k) mod (n - 1))]) overflowed [r + k]
   negative and produced negative or self victim indices. *)

let test_steal_victim_no_overflow () =
  List.iter
    (fun r ->
      List.iter
        (fun n ->
          List.iter
            (fun self ->
              let seen = Array.make n false in
              for k = 0 to n - 2 do
                let v = Par.Runtime.steal_victim ~r ~self ~n k in
                if v < 0 || v >= n then
                  Alcotest.failf
                    "r=%d n=%d self=%d k=%d: victim %d out of range" r n self
                    k v;
                if v = self then
                  Alcotest.failf "r=%d n=%d self=%d k=%d: self-steal" r n self
                    k;
                if seen.(v) then
                  Alcotest.failf
                    "r=%d n=%d self=%d k=%d: victim %d repeated in one sweep"
                    r n self k v;
                seen.(v) <- true
              done;
              (* a full sweep covers every other worker exactly once *)
              Array.iteri
                (fun i hit ->
                  if i <> self && not hit then
                    Alcotest.failf "r=%d n=%d self=%d: worker %d never swept"
                      r n self i)
                seen)
            [ 0; n - 1 ])
        [ 2; 3; 4; 8 ])
    [ 0; 1; 12345; max_int - 1; max_int ]

(* ------------------------------------------------------------------ *)
(* The monotonic clock behind the [`Polling] beat source. *)

let test_mclock_monotone () =
  let last = ref (Mclock.now_ns ()) in
  for _ = 1 to 200_000 do
    let now = Mclock.now_ns () in
    if now < !last then
      Alcotest.failf "clock went backwards: %d after %d" now !last;
    last := now
  done;
  let t0 = Mclock.now_ns () in
  Unix.sleepf 0.005;
  let dt = Mclock.now_ns () - t0 in
  (* a 5 ms sleep must register as real elapsed time (generous floor:
     sleepf never returns early by more than scheduler jitter) *)
  check "sleep advances the clock" true (dt >= 2_000_000)

(* [`Polling] beat cadence: a tiny heart period fires beats during a
   polling loop; an unreachable one never does.  (The pre-fix
   gettimeofday source also passes the first half — the regression it
   guards is the init-time fix: [last_beat] armed when the worker
   loop starts, not at pool construction.) *)
let test_polling_cadence () =
  let spin_polling ms =
    (* ~ms of work hitting a poll point each iteration, with no latent
       parallelism advertised (beat cadence in isolation) *)
    let t_end = Mclock.now_s () +. (float_of_int ms /. 1000.) in
    while Mclock.now_s () < t_end do
      Par.Runtime.poll ()
    done
  in
  let config heart_us =
    { (cfg ~domains:1 ~heart_us ()) with source = `Polling }
  in
  let (), st =
    Par.Runtime.run ~config:(config 100.) (fun () -> spin_polling 20)
  in
  check "tiny heart period fires beats" true (st.total.beats > 0);
  let (), st =
    Par.Runtime.run ~config:(config 1e12) (fun () -> spin_polling 5)
  in
  check_int "unreachable heart period never fires" 0 st.total.beats

(* ------------------------------------------------------------------ *)
(* Strip-mining under forced promotion: with [heart_us = 0.] every
   strip-boundary poll is due, so the advertised range is split at
   every opportunity — maximum pressure on the claim-up-front
   invariant (a promotion must only ever hand out iterations the
   running strip has not claimed). *)

let test_strip_boundaries_exactly_once () =
  List.iter
    (fun domains ->
      let n = 10_000 in
      let hits = Array.make n 0 in
      let config =
        { (cfg ~domains ~heart_us:0. ()) with
          source = `Polling;
          poll_stride = 8;
        }
      in
      let (), st =
        Par.Runtime.run ~config (fun () ->
            Par.Runtime.par_for ~lo:0 ~hi:n (fun i ->
                hits.(i) <- hits.(i) + 1))
      in
      check
        (Printf.sprintf "forced promotion actually promotes at %d domains"
           domains)
        true
        (st.total.promotions > 0);
      Array.iteri
        (fun i h ->
          if h <> 1 then
            Alcotest.failf "domains=%d: index %d ran %d times" domains i h)
        hits)
    [ 1; 2; 4 ];
  (* nested loops under the same forcing *)
  let n = 60 in
  let grid = Array.make (n * n) 0 in
  let config =
    { (cfg ~domains:3 ~heart_us:0. ()) with
      source = `Polling;
      poll_stride = 8;
    }
  in
  let (), _ =
    Par.Runtime.run ~config (fun () ->
        Par.Runtime.par_for ~lo:0 ~hi:n (fun r ->
            Par.Runtime.par_for ~lo:0 ~hi:n (fun c ->
                grid.((r * n) + c) <- grid.((r * n) + c) + 1)))
  in
  Array.iteri
    (fun i h -> if h <> 1 then Alcotest.failf "cell %d ran %d times" i h)
    grid

(* ------------------------------------------------------------------ *)
(* Idle backoff policy: pure-function bounds — no nap while spinning,
   naps monotone nondecreasing, capped at [max_nap_s] — so a fully
   backed-off thief re-sweeps within one capped nap of work appearing;
   plus an end-to-end check that a session with a long serial phase
   (which drives every other worker to the nap cap) still promotes
   and completes. *)

let test_backoff_bounded () =
  for f = 1 to Par.Runtime.spin_limit do
    check (Printf.sprintf "failure %d spins, no nap" f) true
      (Par.Runtime.nap_s ~failures:f = 0.)
  done;
  let prev = ref 0. in
  for f = Par.Runtime.spin_limit + 1 to Par.Runtime.spin_limit + 64 do
    let nap = Par.Runtime.nap_s ~failures:f in
    check (Printf.sprintf "failure %d naps" f) true (nap > 0.);
    check
      (Printf.sprintf "failure %d nondecreasing" f)
      true (nap >= !prev);
    check
      (Printf.sprintf "failure %d capped" f)
      true
      (nap <= Par.Runtime.max_nap_s);
    prev := nap
  done;
  check "ladder reaches the cap" true (!prev = Par.Runtime.max_nap_s);
  (* very large failure counts must not overflow the shift *)
  check "huge failure count still capped" true
    (Par.Runtime.nap_s ~failures:max_int = Par.Runtime.max_nap_s);
  (* end-to-end: ~30 ms of serial work sends the 3 idle workers far
     past the spin limit, then a promotable loop must still get
     promoted and finish correctly *)
  let n = 20_000 in
  let hits = Array.make n 0 in
  let (), st =
    Par.Runtime.run ~config:(cfg ~domains:4 ~heart_us:25. ()) (fun () ->
        let t_end = Mclock.now_s () +. 0.03 in
        while Mclock.now_s () < t_end do
          Sys.opaque_identity () |> ignore
        done;
        Par.Runtime.par_for ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1))
  in
  Array.iteri
    (fun i h ->
      if h <> 1 then Alcotest.failf "index %d ran %d times" i h)
    hits;
  check "work still promoted after the idle phase" true
    (st.total.promotions > 0)

(* ------------------------------------------------------------------ *)
(* Runtime properties. *)

let test_par_for_exactly_once () =
  List.iter
    (fun domains ->
      let n = 50_000 in
      let hits = Array.make n 0 in
      let (), _ =
        Par.Runtime.run ~config:(cfg ~domains ())
          (fun () ->
            Par.Runtime.par_for ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1))
      in
      Array.iteri
        (fun i h ->
          if h <> 1 then
            Alcotest.failf "domains=%d: index %d ran %d times" domains i h)
        hits)
    [ 1; 2; 4 ]

let test_fork_tree () =
  (* a fib-shaped fork tree: deeply nested fork2 with joins resolved
     across domains *)
  let rec fib n =
    if n < 2 then n
    else begin
      let a = ref 0 and b = ref 0 in
      Par.Runtime.fork2
        (fun () -> a := fib (n - 1))
        (fun () -> b := fib (n - 2));
      !a + !b
    end
  in
  List.iter
    (fun domains ->
      let r, st =
        Par.Runtime.run ~config:(cfg ~domains ~heart_us:10. ()) (fun () ->
            fib 20)
      in
      check_int (Printf.sprintf "fib 20 at %d domains" domains) 6765 r;
      (* resumes and joins must balance: every parked parent is woken
         exactly once *)
      check_int
        (Printf.sprintf "joins = resumes at %d domains" domains)
        st.total.joins st.total.resumes)
    [ 1; 2; 3 ]

let test_nested_par_for () =
  let n = 120 in
  let grid = Array.make (n * n) 0 in
  let (), _ =
    Par.Runtime.run ~config:(cfg ()) (fun () ->
        Par.Runtime.par_for ~lo:0 ~hi:n (fun r ->
            Par.Runtime.par_for ~lo:0 ~hi:n (fun c ->
                grid.((r * n) + c) <- grid.((r * n) + c) + 1)))
  in
  Array.iteri
    (fun i h -> if h <> 1 then Alcotest.failf "cell %d ran %d times" i h)
    grid

let test_kernel_equality () =
  (* every registry kernel, bit-identical to serial at 2 and 3 domains *)
  List.iter
    (fun (b : Workloads.Real_bench.t) ->
      let serial = Workloads.Real_bench.run_serial b ~scale:1 in
      List.iter
        (fun domains ->
          let par, _ =
            Par.Runtime.run ~config:(cfg ~domains ()) (fun () ->
                b.run (module Par.Runtime.Exec) ~scale:1)
          in
          check_int
            (Printf.sprintf "%s at %d domains" b.name domains)
            serial par)
        [ 2; 3 ])
    Workloads.Real_bench.all

let test_session_reuse () =
  (* repeated sessions in one process: no leaked domains, no poisoned
     global state (the teardown path joins everything it spawned) *)
  for i = 1 to 5 do
    let r, _ =
      Par.Runtime.run ~config:(cfg ()) (fun () ->
          let acc = Atomic.make 0 in
          Par.Runtime.par_for ~lo:0 ~hi:1000 (fun j ->
              ignore (Atomic.fetch_and_add acc j));
          Atomic.get acc)
    in
    check_int (Printf.sprintf "session %d" i) (999 * 1000 / 2) r
  done

let test_no_nesting () =
  let raised = ref false in
  let (), _ =
    Par.Runtime.run ~config:(cfg ~domains:1 ()) (fun () ->
        match Par.Runtime.run (fun () -> ()) with
        | exception Invalid_argument _ -> raised := true
        | _ -> ())
  in
  check "nested run rejected" true !raised

let test_outside_run () =
  match Par.Runtime.par_for ~lo:0 ~hi:1 (fun _ -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "par_for outside run should raise"

let test_exception_propagation () =
  List.iter
    (fun domains ->
      (match
         Par.Runtime.run ~config:(cfg ~domains ()) (fun () ->
             Par.Runtime.par_for ~lo:0 ~hi:10_000 (fun i ->
                 if i = 8191 then failwith "kaboom"))
       with
      | exception Failure m ->
          Alcotest.(check string)
            (Printf.sprintf "message survives at %d domains" domains)
            "kaboom" m
      | _ -> Alcotest.fail "exception swallowed");
      (* and the pool is reusable afterwards *)
      let r, _ =
        Par.Runtime.run ~config:(cfg ~domains ()) (fun () -> 11)
      in
      check_int "session works after failure" 11 r)
    [ 1; 3 ]

let test_stats_accounting () =
  let events = Atomic.make 0 in
  let config =
    { (cfg ~domains:2 ~heart_us:15. ()) with
      on_event = Some (fun ~worker:_ _ -> ignore (Atomic.fetch_and_add events 1))
    }
  in
  let (), st =
    Par.Runtime.run ~config (fun () ->
        Par.Runtime.par_for ~lo:0 ~hi:100_000 (fun i -> Sys.opaque_identity i |> ignore))
  in
  check "some events fired" true (Atomic.get events > 0);
  check "promotions split into loop+branch" true
    (st.total.promotions
    = st.total.loop_promotions + st.total.branch_promotions);
  check "per-worker sums to total" true
    (Array.fold_left (fun a (w : Par.Runtime.worker_stats) -> a + w.tasks_run)
       0 st.per_worker
    = st.total.tasks_run);
  check_int "domains recorded" 2 st.domains;
  check "elapsed measured" true (st.elapsed_s > 0.)

(* The urgency hook (the serving layer's deadline-aware promotion
   hint): with an astronomically long heart period no beat ever fires
   naturally, so promotions stay at zero; raising the urgency shifts
   the effective period down until every poll beats.  Also pins the
   clamp and the outside-session rejection. *)
let test_urgency_promotes () =
  let config =
    { (cfg ~domains:1 ~heart_us:1e12 ()) with
      source = `Polling;
      poll_stride = 1;
    }
  in
  let work () =
    let a = Array.make 4096 0 in
    Par.Runtime.par_for ~lo:0 ~hi:4096 (fun i -> a.(i) <- i)
  in
  let (), st0 = Par.Runtime.run ~config (fun () -> work ()) in
  check_int "no promotions at base cadence" 0 st0.total.promotions;
  let (), st1 =
    Par.Runtime.run ~config (fun () ->
        Par.Runtime.set_urgency 9999;
        check_int "urgency clamped" Par.Runtime.max_urgency
          (Par.Runtime.urgency ());
        Par.Runtime.set_urgency (-3);
        check_int "urgency floored" 0 (Par.Runtime.urgency ());
        Par.Runtime.set_urgency Par.Runtime.max_urgency;
        work ();
        Par.Runtime.set_urgency 0)
  in
  check "max urgency forces promotions" true (st1.total.promotions > 0);
  match Par.Runtime.set_urgency 1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "set_urgency outside run should raise"

let test_knapsack_incumbent_monotone () =
  (* the CAS-max incumbent: the parallel optimum equals the DP optimum
     on every schedule (regression for the read-check-write race) *)
  let rng = Sim.Prng.create ~seed:77 in
  let inst = Workloads.Knapsack.instance ~rng ~n:20 in
  let expect = Workloads.Knapsack.dp_optimum inst in
  List.iter
    (fun domains ->
      let (r : Workloads.Knapsack.result), _ =
        Par.Runtime.run ~config:(cfg ~domains ~heart_us:10. ()) (fun () ->
            Workloads.Knapsack.search (module Par.Runtime.Exec) inst)
      in
      check_int (Printf.sprintf "optimum at %d domains" domains) expect r.best)
    [ 1; 2; 4 ]

let suite =
  ( "par",
    [
      Alcotest.test_case "deque: LIFO bottom" `Quick test_deque_lifo;
      Alcotest.test_case "deque: FIFO steals" `Quick test_deque_fifo_steal;
      Alcotest.test_case "deque: grow conserves" `Quick test_deque_grow;
      Alcotest.test_case "deque: multi-domain stress, 120k ops" `Quick
        test_deque_stress;
      Alcotest.test_case "deque: grow under live steals" `Quick
        test_deque_grow_under_steal;
      Alcotest.test_case "steal victim: no overflow at max_int rng" `Quick
        test_steal_victim_no_overflow;
      Alcotest.test_case "mclock is monotonic" `Quick test_mclock_monotone;
      Alcotest.test_case "polling beat cadence" `Quick test_polling_cadence;
      Alcotest.test_case "strip boundaries exactly once under forced beats"
        `Quick test_strip_boundaries_exactly_once;
      Alcotest.test_case "idle backoff is bounded" `Quick test_backoff_bounded;
      Alcotest.test_case "par_for covers exactly once" `Quick
        test_par_for_exactly_once;
      Alcotest.test_case "fork tree joins across domains" `Quick
        test_fork_tree;
      Alcotest.test_case "nested par_for" `Quick test_nested_par_for;
      Alcotest.test_case "kernels equal serial at 2-3 domains" `Quick
        test_kernel_equality;
      Alcotest.test_case "session reuse" `Quick test_session_reuse;
      Alcotest.test_case "nested run rejected" `Quick test_no_nesting;
      Alcotest.test_case "api outside run rejected" `Quick test_outside_run;
      Alcotest.test_case "exceptions propagate and abort" `Quick
        test_exception_propagation;
      Alcotest.test_case "stats and events account" `Quick
        test_stats_accounting;
      Alcotest.test_case "urgency hint forces promotions" `Quick
        test_urgency_promotes;
      Alcotest.test_case "knapsack incumbent is monotone" `Quick
        test_knapsack_incumbent_monotone;
    ] )
