(* The multi-domain runtime (lib/par): the concurrent Chase–Lev deque
   under real contention, and the scheduler's correctness properties —
   exactly-once loop coverage, fork trees, join resolution across
   domains, kernel equality against the serial executor, session
   reuse, and exception propagation.

   Everything here gates on nothing: the runtime must be correct at
   any domain count on any host, including domain counts above the
   core count (oversubscription just means more preemption).  Only
   SPEEDUP claims depend on real cores, and those live in the bench
   pipeline (BENCH_par.json), not in tier-1. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Ws_deque, single-threaded: LIFO at the bottom, FIFO at the top. *)

let test_deque_lifo () =
  let d = Par.Ws_deque.create () in
  check "fresh empty" true (Par.Ws_deque.is_empty d);
  for i = 1 to 100 do
    Par.Ws_deque.push_bottom d i
  done;
  check_int "length" 100 (Par.Ws_deque.length d);
  for i = 100 downto 1 do
    check_int "pop order" i
      (match Par.Ws_deque.pop_bottom d with Some v -> v | None -> -1)
  done;
  check "drained" true (Par.Ws_deque.is_empty d);
  check "pop on empty" true (Par.Ws_deque.pop_bottom d = None)

let test_deque_fifo_steal () =
  let d = Par.Ws_deque.create () in
  for i = 1 to 50 do
    Par.Ws_deque.push_bottom d i
  done;
  (* thieves see the oldest end *)
  for i = 1 to 25 do
    check_int "steal order" i
      (match Par.Ws_deque.steal_top d with Some v -> v | None -> -1)
  done;
  (* the owner still sees LIFO on what remains *)
  for i = 50 downto 26 do
    check_int "pop after steals" i
      (match Par.Ws_deque.pop_bottom d with Some v -> v | None -> -1)
  done;
  check "steal on empty" true (Par.Ws_deque.steal_top d = None)

let test_deque_grow () =
  (* push far past the initial capacity, interleaving pops *)
  let d = Par.Ws_deque.create () in
  let next = ref 0 in
  let popped = ref [] in
  for _ = 1 to 2000 do
    Par.Ws_deque.push_bottom d !next;
    incr next;
    if !next mod 3 = 0 then
      match Par.Ws_deque.pop_bottom d with
      | Some v -> popped := v :: !popped
      | None -> Alcotest.fail "pop on non-empty"
  done;
  let rec drain acc =
    match Par.Ws_deque.pop_bottom d with
    | Some v -> drain (v :: acc)
    | None -> acc
  in
  let all = List.sort compare (!popped @ drain []) in
  check_int "no lost or duplicated elements" 2000 (List.length all);
  List.iteri (fun i v -> if i <> v then Alcotest.failf "hole at %d: %d" i v) all

(* ------------------------------------------------------------------ *)
(* Ws_deque under real contention: one owner domain doing push/pop,
   several thief domains stealing, ≥1e5 operations.  Checks: the
   multiset of popped+stolen elements is exactly the pushed multiset
   (nothing lost, nothing duplicated), and each thief observes
   strictly increasing elements (single-deque steals are FIFO). *)

let test_deque_stress () =
  let d = Par.Ws_deque.create () in
  let total = 120_000 in
  let n_thieves = 3 in
  let stop = Atomic.make false in
  let stolen = Array.init n_thieves (fun _ -> ref []) in
  let thieves =
    Array.init n_thieves (fun t ->
        Domain.spawn (fun () ->
            let mine = stolen.(t) in
            while not (Atomic.get stop) do
              match Par.Ws_deque.steal_top d with
              | Some v -> mine := v :: !mine
              | None -> Domain.cpu_relax ()
            done;
            (* final sweep so nothing is stranded *)
            let rec sweep () =
              match Par.Ws_deque.steal_top d with
              | Some v ->
                  mine := v :: !mine;
                  sweep ()
              | None -> ()
            in
            sweep ()))
  in
  let popped = ref [] in
  let next = ref 0 in
  let rng = ref 42 in
  let rand () =
    rng := (!rng * 1103515245) + 12345;
    (!rng lsr 16) land 0xFF
  in
  while !next < total do
    (* bursts of pushes, then a few pops: keeps the deque crossing the
       empty/one-element boundary where the races live *)
    let burst = 1 + (rand () mod 8) in
    for _ = 1 to burst do
      if !next < total then begin
        Par.Ws_deque.push_bottom d !next;
        incr next
      end
    done;
    let pops = rand () mod 4 in
    for _ = 1 to pops do
      match Par.Ws_deque.pop_bottom d with
      | Some v -> popped := v :: !popped
      | None -> ()
    done
  done;
  Atomic.set stop true;
  Array.iter Domain.join thieves;
  (* drain what the owner still holds *)
  let rec drain () =
    match Par.Ws_deque.pop_bottom d with
    | Some v ->
        popped := v :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  (* per-thief FIFO: steals from one deque arrive oldest-first *)
  Array.iteri
    (fun t mine ->
      let in_order = List.rev !mine in
      let rec mono = function
        | a :: (b :: _ as rest) ->
            if a >= b then
              Alcotest.failf "thief %d saw %d before %d (not FIFO)" t a b;
            mono rest
        | _ -> ()
      in
      mono in_order)
    stolen;
  (* conservation: pushed = popped ⊎ stolen *)
  let all =
    List.sort compare
      (!popped @ Array.fold_left (fun acc r -> !r @ acc) [] stolen)
  in
  check_int "conservation (no lost/duplicated)" total (List.length all);
  List.iteri
    (fun i v -> if i <> v then Alcotest.failf "element %d missing (saw %d)" i v)
    all

(* ------------------------------------------------------------------ *)
(* Runtime properties. *)

let cfg ?(domains = 3) ?(heart_us = 25.) () =
  { Par.Runtime.default_config with domains; heart_us }

let test_par_for_exactly_once () =
  List.iter
    (fun domains ->
      let n = 50_000 in
      let hits = Array.make n 0 in
      let (), _ =
        Par.Runtime.run ~config:(cfg ~domains ())
          (fun () ->
            Par.Runtime.par_for ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1))
      in
      Array.iteri
        (fun i h ->
          if h <> 1 then
            Alcotest.failf "domains=%d: index %d ran %d times" domains i h)
        hits)
    [ 1; 2; 4 ]

let test_fork_tree () =
  (* a fib-shaped fork tree: deeply nested fork2 with joins resolved
     across domains *)
  let rec fib n =
    if n < 2 then n
    else begin
      let a = ref 0 and b = ref 0 in
      Par.Runtime.fork2
        (fun () -> a := fib (n - 1))
        (fun () -> b := fib (n - 2));
      !a + !b
    end
  in
  List.iter
    (fun domains ->
      let r, st =
        Par.Runtime.run ~config:(cfg ~domains ~heart_us:10. ()) (fun () ->
            fib 20)
      in
      check_int (Printf.sprintf "fib 20 at %d domains" domains) 6765 r;
      (* resumes and joins must balance: every parked parent is woken
         exactly once *)
      check_int
        (Printf.sprintf "joins = resumes at %d domains" domains)
        st.total.joins st.total.resumes)
    [ 1; 2; 3 ]

let test_nested_par_for () =
  let n = 120 in
  let grid = Array.make (n * n) 0 in
  let (), _ =
    Par.Runtime.run ~config:(cfg ()) (fun () ->
        Par.Runtime.par_for ~lo:0 ~hi:n (fun r ->
            Par.Runtime.par_for ~lo:0 ~hi:n (fun c ->
                grid.((r * n) + c) <- grid.((r * n) + c) + 1)))
  in
  Array.iteri
    (fun i h -> if h <> 1 then Alcotest.failf "cell %d ran %d times" i h)
    grid

let test_kernel_equality () =
  (* every registry kernel, bit-identical to serial at 2 and 3 domains *)
  List.iter
    (fun (b : Workloads.Real_bench.t) ->
      let serial = Workloads.Real_bench.run_serial b ~scale:1 in
      List.iter
        (fun domains ->
          let par, _ =
            Par.Runtime.run ~config:(cfg ~domains ()) (fun () ->
                b.run (module Par.Runtime.Exec) ~scale:1)
          in
          check_int
            (Printf.sprintf "%s at %d domains" b.name domains)
            serial par)
        [ 2; 3 ])
    Workloads.Real_bench.all

let test_session_reuse () =
  (* repeated sessions in one process: no leaked domains, no poisoned
     global state (the teardown path joins everything it spawned) *)
  for i = 1 to 5 do
    let r, _ =
      Par.Runtime.run ~config:(cfg ()) (fun () ->
          let acc = Atomic.make 0 in
          Par.Runtime.par_for ~lo:0 ~hi:1000 (fun j ->
              ignore (Atomic.fetch_and_add acc j));
          Atomic.get acc)
    in
    check_int (Printf.sprintf "session %d" i) (999 * 1000 / 2) r
  done

let test_no_nesting () =
  let raised = ref false in
  let (), _ =
    Par.Runtime.run ~config:(cfg ~domains:1 ()) (fun () ->
        match Par.Runtime.run (fun () -> ()) with
        | exception Invalid_argument _ -> raised := true
        | _ -> ())
  in
  check "nested run rejected" true !raised

let test_outside_run () =
  match Par.Runtime.par_for ~lo:0 ~hi:1 (fun _ -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "par_for outside run should raise"

let test_exception_propagation () =
  List.iter
    (fun domains ->
      (match
         Par.Runtime.run ~config:(cfg ~domains ()) (fun () ->
             Par.Runtime.par_for ~lo:0 ~hi:10_000 (fun i ->
                 if i = 8191 then failwith "kaboom"))
       with
      | exception Failure m ->
          Alcotest.(check string)
            (Printf.sprintf "message survives at %d domains" domains)
            "kaboom" m
      | _ -> Alcotest.fail "exception swallowed");
      (* and the pool is reusable afterwards *)
      let r, _ =
        Par.Runtime.run ~config:(cfg ~domains ()) (fun () -> 11)
      in
      check_int "session works after failure" 11 r)
    [ 1; 3 ]

let test_stats_accounting () =
  let events = Atomic.make 0 in
  let config =
    { (cfg ~domains:2 ~heart_us:15. ()) with
      on_event = Some (fun ~worker:_ _ -> ignore (Atomic.fetch_and_add events 1))
    }
  in
  let (), st =
    Par.Runtime.run ~config (fun () ->
        Par.Runtime.par_for ~lo:0 ~hi:100_000 (fun i -> Sys.opaque_identity i |> ignore))
  in
  check "some events fired" true (Atomic.get events > 0);
  check "promotions split into loop+branch" true
    (st.total.promotions
    = st.total.loop_promotions + st.total.branch_promotions);
  check "per-worker sums to total" true
    (Array.fold_left (fun a (w : Par.Runtime.worker_stats) -> a + w.tasks_run)
       0 st.per_worker
    = st.total.tasks_run);
  check_int "domains recorded" 2 st.domains;
  check "elapsed measured" true (st.elapsed_s > 0.)

let test_knapsack_incumbent_monotone () =
  (* the CAS-max incumbent: the parallel optimum equals the DP optimum
     on every schedule (regression for the read-check-write race) *)
  let rng = Sim.Prng.create ~seed:77 in
  let inst = Workloads.Knapsack.instance ~rng ~n:20 in
  let expect = Workloads.Knapsack.dp_optimum inst in
  List.iter
    (fun domains ->
      let (r : Workloads.Knapsack.result), _ =
        Par.Runtime.run ~config:(cfg ~domains ~heart_us:10. ()) (fun () ->
            Workloads.Knapsack.search (module Par.Runtime.Exec) inst)
      in
      check_int (Printf.sprintf "optimum at %d domains" domains) expect r.best)
    [ 1; 2; 4 ]

let suite =
  ( "par",
    [
      Alcotest.test_case "deque: LIFO bottom" `Quick test_deque_lifo;
      Alcotest.test_case "deque: FIFO steals" `Quick test_deque_fifo_steal;
      Alcotest.test_case "deque: grow conserves" `Quick test_deque_grow;
      Alcotest.test_case "deque: multi-domain stress, 120k ops" `Quick
        test_deque_stress;
      Alcotest.test_case "par_for covers exactly once" `Quick
        test_par_for_exactly_once;
      Alcotest.test_case "fork tree joins across domains" `Quick
        test_fork_tree;
      Alcotest.test_case "nested par_for" `Quick test_nested_par_for;
      Alcotest.test_case "kernels equal serial at 2-3 domains" `Quick
        test_kernel_equality;
      Alcotest.test_case "session reuse" `Quick test_session_reuse;
      Alcotest.test_case "nested run rejected" `Quick test_no_nesting;
      Alcotest.test_case "api outside run rejected" `Quick test_outside_run;
      Alcotest.test_case "exceptions propagate and abort" `Quick
        test_exception_propagation;
      Alcotest.test_case "stats and events account" `Quick
        test_stats_accounting;
      Alcotest.test_case "knapsack incumbent is monotone" `Quick
        test_knapsack_incumbent_monotone;
    ] )
