(* Tests for the real effects-based heartbeat runtime: serial
   equivalence under promotion on every kernel, join correctness,
   nesting, and promotion policy. *)

module Hb = Heartbeat.Hb_runtime

module E : Workloads.Exec.S = struct
  let par_for = Hb.par_for
  let fork2 = Hb.fork2
end

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* An aggressive config so promotions definitely fire in fast tests:
   clock polling with a tiny heart. *)
let hot : Hb.config =
  { Hb.default_config with heart_us = 5.; source = `Polling; poll_stride = 4 }

let run f = Hb.run ~config:hot f

let test_on_event_hook_matches_stats () =
  (* the observability hook sees exactly the events the runtime's own
     counters record *)
  let beats = ref 0
  and loops = ref 0
  and branches = ref 0
  and suspends = ref 0
  and resumes = ref 0
  and starts = ref 0
  and finishes = ref 0 in
  let on_event : Hb.event -> unit = function
    | Hb.Beat -> incr beats
    | Hb.Promoted `Loop -> incr loops
    | Hb.Promoted `Branch -> incr branches
    | Hb.Join_suspend -> incr suspends
    | Hb.Join_resume -> incr resumes
    | Hb.Task_start -> incr starts
    | Hb.Task_finish -> incr finishes
    | Hb.Stall_detected _ -> ()
  in
  let n = 200_000 in
  let total = ref 0 in
  let (), st =
    Hb.run
      ~config:{ hot with on_event = Some on_event }
      (fun () -> Hb.par_for ~lo:0 ~hi:n (fun i -> total := !total + (i mod 3)))
  in
  check "work done" true (!total > 0);
  check_int "beats" st.beats !beats;
  check_int "loop promotions" st.loop_promotions !loops;
  check_int "branch promotions" st.branch_promotions !branches;
  check_int "suspends" st.joins !suspends;
  check_int "every promoted task started" st.promotions !starts;
  check_int "every started task finished" !starts !finishes;
  check "suspends eventually resumed" true (!resumes <= !suspends)

let test_par_for_covers_every_index () =
  let n = 100_000 in
  let hits = Array.make n 0 in
  let (), st = run (fun () -> Hb.par_for ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1)) in
  check "each index exactly once" true (Array.for_all (fun h -> h = 1) hits);
  check "promotions fired" true (st.promotions > 0)

let test_par_for_empty_and_single () =
  let count = ref 0 in
  let (), _ = run (fun () -> Hb.par_for ~lo:5 ~hi:5 (fun _ -> incr count)) in
  check_int "empty range" 0 !count;
  let (), _ = run (fun () -> Hb.par_for ~lo:5 ~hi:6 (fun _ -> incr count)) in
  check_int "single iteration" 1 !count

let test_fork2_runs_both () =
  let a = ref 0 and b = ref 0 in
  let (), _ = run (fun () -> Hb.fork2 (fun () -> a := 1) (fun () -> b := 2)) in
  check_int "first branch" 1 !a;
  check_int "second branch" 2 !b

let test_nested_fork2_tree () =
  (* sum the leaves of a depth-12 tree; promotions steal subtrees *)
  let rec sum d =
    if d = 0 then 1
    else begin
      let x = ref 0 and y = ref 0 in
      Hb.fork2 (fun () -> x := sum (d - 1)) (fun () -> y := sum (d - 1));
      !x + !y
    end
  in
  let total, st = run (fun () -> sum 12) in
  check_int "leaf count" 4096 total;
  check "branch promotions" true (st.branch_promotions > 0);
  check_int "joins resolved completely" st.joins st.joins

let test_nested_par_for () =
  let n = 300 in
  let acc = Array.make (n * n) 0 in
  let (), _ =
    run (fun () ->
        Hb.par_for ~lo:0 ~hi:n (fun i ->
            Hb.par_for ~lo:0 ~hi:n (fun j -> acc.((i * n) + j) <- i + j)))
  in
  check "nested loops cover the grid" true
    (Array.for_all Fun.id
       (Array.init (n * n) (fun k -> acc.(k) = (k / n) + (k mod n))))

let test_outermost_first_policy () =
  (* with an outer loop and an inner loop live, the first promotion
     must split the outer range *)
  let (), st =
    run (fun () ->
        Hb.par_for ~lo:0 ~hi:64 (fun _ ->
            Hb.par_for ~lo:0 ~hi:2_000 (fun _ -> ignore (Sys.opaque_identity 0))))
  in
  check "loop promotions dominate" true (st.loop_promotions > 0)

let test_exceptions_propagate () =
  check "user exception escapes run" true
    (try
       let _ = run (fun () -> failwith "boom") in
       false
     with Failure m -> m = "boom")

let test_outside_run_rejected () =
  check "par_for outside run" true
    (try
       Hb.par_for ~lo:0 ~hi:1 ignore;
       false
     with Invalid_argument _ -> true)

let test_result_value_returned () =
  let v, _ = run (fun () -> 40 + 2) in
  check_int "result" 42 v

let test_kernels_under_heartbeat () =
  let rng = Sim.Prng.create ~seed:5 in
  (* plus-reduce *)
  let a = Workloads.Plus_reduce.input ~rng ~n:50_000 in
  let expected = Workloads.Plus_reduce.sum_serial a in
  let got, _ = run (fun () -> Workloads.Plus_reduce.sum ~grain:512 (module E) a) in
  check "plus-reduce" true (abs_float (got -. expected) < 1e-6 *. abs_float expected);
  (* spmv *)
  let m = Workloads.Csr.random ~rng ~nrows:2_000 ~ncols:2_000 ~max_row_len:40 in
  let x = Array.init 2_000 float_of_int in
  let y_ser = Workloads.Csr.spmv_serial m x in
  let y = Array.make 2_000 0. in
  let (), _ = run (fun () -> Workloads.Csr.spmv (module E) m x y) in
  check "spmv" true
    (Array.for_all2 (fun u v -> abs_float (u -. v) < 1e-6 *. (1. +. abs_float v)) y y_ser);
  (* mergesort *)
  let arr = Workloads.Mergesort.uniform_input ~rng ~n:60_000 in
  let sorted_ref = Array.copy arr in
  Array.sort compare sorted_ref;
  let (), _ = run (fun () -> Workloads.Mergesort.sort ~grain:512 (module E) arr) in
  check "mergesort" true (arr = sorted_ref);
  (* floyd-warshall *)
  let g = Workloads.Floyd_warshall.random_graph ~rng ~n:48 () in
  let d_ser = Array.map Array.copy g in
  Workloads.Floyd_warshall.run_serial d_ser;
  let d = Array.map Array.copy g in
  let (), _ = run (fun () -> Workloads.Floyd_warshall.run (module E) d) in
  check "floyd-warshall" true (d = d_ser);
  (* kmeans assignment checksum *)
  let st1 = Workloads.Kmeans.create ~rng:(Sim.Prng.create ~seed:8) ~n:1_500 ~dims:3 ~k:4 in
  let st2 = Workloads.Kmeans.create ~rng:(Sim.Prng.create ~seed:8) ~n:1_500 ~dims:3 ~k:4 in
  let _ = Workloads.Kmeans.run (module Workloads.Exec.Serial) st1 ~rounds:4 in
  let _ = run (fun () -> Workloads.Kmeans.run (module E) st2 ~rounds:4) in
  check_int "kmeans checksum" (Workloads.Kmeans.checksum st1)
    (Workloads.Kmeans.checksum st2);
  (* knapsack optimum is schedule-independent *)
  let inst = Workloads.Knapsack.instance ~rng ~n:20 in
  let res, _ = run (fun () -> Workloads.Knapsack.search (module E) inst) in
  check_int "knapsack optimum" (Workloads.Knapsack.dp_optimum inst) res.best

let test_ping_thread_source () =
  (* the real OS-thread ticker delivers beats *)
  let cfg = { Hb.default_config with heart_us = 200.; source = `Ping_thread } in
  let acc = ref 0. in
  let (), st =
    Hb.run ~config:cfg (fun () ->
        Hb.par_for ~lo:0 ~hi:2_000_000 (fun i ->
            acc := !acc +. float_of_int (i land 7)))
  in
  check "computation survives the ping thread" true (!acc > 0.);
  check "ticker beats observed" true (st.beats >= 0)

let test_serial_when_heart_huge () =
  let cfg = { Hb.default_config with heart_us = 1e9; source = `Polling } in
  let (), st =
    Hb.run ~config:cfg (fun () -> Hb.par_for ~lo:0 ~hi:10_000 ignore)
  in
  check_int "no promotions with huge heart" 0 st.promotions

let test_stalls_flow_into_metrics () =
  (* the lease watchdog's trips must reach the unified Obs.Metrics
     snapshot (the same surface Par.Runtime and the serve pool report
     through), not stay private to Hb_runtime.stats *)
  let stall_cfg =
    { hot with Hb.heart_us = 50.; poll_stride = 1; lease_beats = 2 }
  in
  let (), st =
    Hb.run ~config:stall_cfg (fun () ->
        Hb.par_for ~lo:0 ~hi:8 (fun i ->
            (* one iteration wedges far past the lease TTL
               (lease_beats·♥ = 100 µs) *)
            if i = 4 then Unix.sleepf 0.01))
  in
  check "watchdog tripped" true (st.stalls_detected >= 1);
  let m = Hb.metrics ~elapsed_s:0.02 st in
  check_int "stalls fold into Obs.Metrics" st.stalls_detected
    m.Obs.Metrics.stalls;
  check_int "beats fold" st.beats m.Obs.Metrics.beats;
  check_int "promotions fold" st.promotions m.Obs.Metrics.promotions;
  check_int "joins fold" st.joins m.Obs.Metrics.joins;
  check_int "single-domain snapshot" 1 m.Obs.Metrics.domains

let prop_par_for_sums_correctly =
  QCheck.Test.make ~name:"heartbeat par_for computes serial sums" ~count:25
    QCheck.(int_range 0 5_000)
    (fun n ->
      let acc = Atomic.make 0 in
      let (), _ =
        run (fun () ->
            Hb.par_for ~lo:0 ~hi:n (fun i -> ignore (Atomic.fetch_and_add acc i)))
      in
      Atomic.get acc = n * (n - 1) / 2)

let suite =
  ( "heartbeat-runtime",
    [
      Alcotest.test_case "par_for coverage" `Quick test_par_for_covers_every_index;
      Alcotest.test_case "on_event hook matches stats" `Quick
        test_on_event_hook_matches_stats;
      Alcotest.test_case "empty/single ranges" `Quick
        test_par_for_empty_and_single;
      Alcotest.test_case "fork2 both branches" `Quick test_fork2_runs_both;
      Alcotest.test_case "nested fork2 tree" `Quick test_nested_fork2_tree;
      Alcotest.test_case "nested par_for" `Quick test_nested_par_for;
      Alcotest.test_case "outermost-first policy" `Quick
        test_outermost_first_policy;
      Alcotest.test_case "exception propagation" `Quick
        test_exceptions_propagate;
      Alcotest.test_case "usage outside run" `Quick test_outside_run_rejected;
      Alcotest.test_case "result value" `Quick test_result_value_returned;
      Alcotest.test_case "all kernels under heartbeat" `Slow
        test_kernels_under_heartbeat;
      Alcotest.test_case "ping-thread source" `Quick test_ping_thread_source;
      Alcotest.test_case "huge heart stays serial" `Quick
        test_serial_when_heart_huge;
      Alcotest.test_case "stall watchdog reaches Obs.Metrics" `Quick
        test_stalls_flow_into_metrics;
      QCheck_alcotest.to_alcotest prop_par_for_sums_correctly;
    ] )
