(* Tests for the lexer, parser, printer (round-trip) and static
   checker. *)

open Tpal

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parses_to (src : string) (expected : Ast.program) =
  match Parser.parse_result src with
  | Ok p -> check "parses to expected" true (Ast.equal_program p expected)
  | Error e -> Alcotest.failf "parse error: %s" e

let test_minimal_program () =
  parses_to "main: [.]\n  halt\n"
    (Builder.program_unchecked ~entry:"main" [ Builder.block "main" [] Ast.Halt ])

let test_instructions_parse () =
  let src =
    {|m: [.]
  a := 5
  b := a + 1
  c := a - -2
  t := a < b
  if-jump t, m
  jr := jralloc k
  fork jr, m
  sp := snew
  salloc sp, 3
  mem[sp + 0] := b
  x := mem[sp + 0]
  prmpush mem[sp + 1]
  prmpop mem[sp + 1]
  e := prmempty sp
  prmsplit sp, off
  sfree sp, 3
  jump m
k: [jtppt assoc; {a -> a2, b -> b2}; m]
  join jr
|}
  in
  match Parser.parse_result src with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok p ->
      check_int "two blocks" 2 (List.length p.blocks);
      let m = List.assoc "m" p.blocks in
      check_int "16 instructions" 16 (List.length m.body);
      check "terminator" true (m.term = Ast.Jump (Ast.Lab "m"));
      let k = List.assoc "k" p.blocks in
      check "jtppt parsed" true
        (k.annot
        = Ast.Jtppt (Ast.Assoc, [ ("a", "a2"); ("b", "b2") ], "m"))

let test_semicolon_separators () =
  parses_to "m: [.]\n  a := 1; b := 2; halt\n"
    (Builder.program_unchecked ~entry:"m"
       [
         Builder.block "m"
           [ Builder.mov "a" (Builder.int 1); Builder.mov "b" (Builder.int 2) ]
           Ast.Halt;
       ])

let test_comments_and_blank_lines () =
  parses_to
    "// leading comment\n\nm: [.] // annotation comment\n  a := 1\n\n  halt\n"
    (Builder.program_unchecked ~entry:"m"
       [ Builder.block "m" [ Builder.mov "a" (Builder.int 1) ] Ast.Halt ])

let test_hyphenated_identifiers () =
  (* loop-try-promote is one identifier; a - 1 is subtraction *)
  let src =
    "loop-x: [prppt loop-try-promote]\n  a := a - 1\n  jump loop-x\nloop-try-promote: [.]\n  halt\n"
  in
  match Parser.parse_result src with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok p ->
      check "prppt target" true
        ((List.assoc "loop-x" p.blocks).annot = Ast.Prppt "loop-try-promote");
      check "subtraction" true
        ((List.assoc "loop-x" p.blocks).body
        = [ Ast.Binop ("a", Ast.Sub, Ast.Reg "a", Ast.Int 1) ])

let test_label_resolution () =
  (* identifiers naming blocks become labels; others stay registers *)
  let src = "m: [.]\n  x := k\n  y := z\n  jump k\nk: [.]\n  halt\n" in
  match Parser.parse_result src with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok p ->
      let m = List.assoc "m" p.blocks in
      check "block name -> label" true
        (List.nth m.body 0 = Ast.Mov ("x", Ast.Lab "k"));
      check "other name -> register" true
        (List.nth m.body 1 = Ast.Mov ("y", Ast.Reg "z"))

let test_parse_errors () =
  let fails src =
    check ("rejects: " ^ src) true (Result.is_error (Parser.parse_result src))
  in
  fails "";
  fails "m: [.]\n  a := \n  halt\n";
  fails "m: [.]\n  jump\n";
  fails "m: [.]\n  a := 1\n";
  (* no terminator *)
  fails "m [.]\n  halt\n";
  (* missing colon *)
  fails "m: [wrong]\n  halt\n";
  fails "m: [.]\n  halt\n  a := 1\n";
  (* instruction after terminator *)
  fails "m: [jtppt assoc {a -> b}; k]\n  halt\n" (* missing ';' *)

let test_lexer_errors () =
  check "bad character" true
    (Result.is_error (Parser.parse_result "m: [.]\n  a := $\n  halt\n"))

(* round-trips of all canned programs *)
let test_round_trip_canned () =
  List.iter
    (fun (name, p) ->
      let src = Printer.program_to_string p in
      match Parser.parse_result src with
      | Ok p' ->
          check (name ^ " round-trips") true (Ast.equal_program p p')
      | Error e -> Alcotest.failf "%s reparse: %s" name e)
    [ ("prod", Programs.prod); ("pow", Programs.pow); ("fib", Programs.fib) ]

(* property: printer/parser round trip over generated programs *)
let gen_program : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  (* register names deliberately include instruction keywords ([mem],
     [fork], [jralloc]) — the parser disambiguates them by lookahead;
     only [snew] is genuinely reserved ([r := snew] is ambiguous) *)
  let reg = oneofl [ "a"; "b"; "c"; "t"; "mem"; "fork"; "jralloc" ] in
  let labels = [ "m"; "l0"; "l1"; "k" ] in
  let label = oneofl labels in
  let operand =
    oneof [ map (fun r -> Ast.Reg r) reg; map (fun l -> Ast.Lab l) label;
            map (fun n -> Ast.Int n) (int_range (-50) 50) ]
  in
  let binop =
    oneofl
      [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Lt; Ast.Le; Ast.Eq;
        Ast.Ne; Ast.Gt; Ast.Ge; Ast.And; Ast.Or; Ast.Xor; Ast.Shl; Ast.Shr ]
  in
  let instr =
    oneof
      [
        map2 (fun r v -> Ast.Mov (r, v)) reg operand;
        map3 (fun r op (v1, v2) -> Ast.Binop (r, op, v1, v2)) reg binop
          (pair operand operand);
        map2 (fun r v -> Ast.If_jump (r, v)) reg operand;
        map2 (fun r l -> Ast.Jralloc (r, l)) reg label;
        map2 (fun r v -> Ast.Fork (r, v)) reg operand;
        map (fun r -> Ast.Snew r) reg;
        map2 (fun r n -> Ast.Salloc (r, n)) reg (int_bound 9);
        map2 (fun r n -> Ast.Sfree (r, n)) reg (int_bound 9);
        map3 (fun rd r n -> Ast.Load (rd, r, n)) reg reg (int_bound 9);
        map3 (fun r n v -> Ast.Store (r, n, v)) reg (int_bound 9) operand;
        map2 (fun r n -> Ast.Prmpush (r, n)) reg (int_bound 9);
        map2 (fun r n -> Ast.Prmpop (r, n)) reg (int_bound 9);
        map2 (fun rd r -> Ast.Prmempty (rd, r)) reg reg;
        map2 (fun rs rp -> Ast.Prmsplit (rs, rp)) reg reg;
      ]
  in
  let terminator =
    oneof
      [ map (fun l -> Ast.Jump (Ast.Lab l)) label; return Ast.Halt;
        map (fun r -> Ast.Join r) reg ]
  in
  let annot =
    oneof
      [ return Ast.Plain; map (fun l -> Ast.Prppt l) label;
        map3
          (fun jp pairs l -> Ast.Jtppt (jp, pairs, l))
          (oneofl [ Ast.Assoc; Ast.Assoc_comm ])
          (list_size (int_bound 2) (pair reg (oneofl [ "u"; "v" ])))
          label ]
  in
  let block =
    map3
      (fun annot body term -> { Ast.annot; body; term })
      annot
      (list_size (int_bound 6) instr)
      terminator
  in
  map
    (fun blocks ->
      { Ast.entry = "m";
        blocks = List.map2 (fun l b -> (l, b)) labels blocks })
    (list_repeat 4 block)

let prop_round_trip =
  QCheck.Test.make ~name:"print∘parse = id on generated programs" ~count:300
    (QCheck.make gen_program)
    (fun p ->
      match Parser.parse_result (Printer.program_to_string p) with
      | Ok p' -> Ast.equal_program p p'
      | Error _ -> false)

(* --- checker --- *)

let has_error diags = List.exists Check.is_error diags

let test_checker_accepts_canned () =
  List.iter
    (fun (name, p) ->
      check (name ^ " clean") false (has_error (Check.check p)))
    [ ("prod", Programs.prod); ("pow", Programs.pow); ("fib", Programs.fib) ]

let test_checker_unknown_label () =
  let p =
    Builder.program_unchecked ~entry:"m"
      [ Builder.block "m" [] (Ast.Jump (Ast.Lab "ghost")) ]
  in
  check "unknown jump target" true (has_error (Check.check p))

let test_checker_missing_entry () =
  let p =
    Builder.program_unchecked ~entry:"nope"
      [ Builder.block "m" [] Ast.Halt ]
  in
  check "missing entry" true (has_error (Check.check p))

let test_checker_duplicate_blocks () =
  let p =
    Builder.program_unchecked ~entry:"m"
      [ Builder.block "m" [] Ast.Halt; Builder.block "m" [] Ast.Halt ]
  in
  check "duplicate labels" true (has_error (Check.check p))

let test_checker_jralloc_needs_jtppt () =
  let p =
    Builder.program_unchecked ~entry:"m"
      [
        Builder.block "m" [ Builder.jralloc "jr" "k" ] Ast.Halt;
        Builder.block "k" [] Ast.Halt;
      ]
  in
  check "jralloc to plain block" true (has_error (Check.check p))

let test_checker_prppt_handler_exists () =
  let p =
    Builder.program_unchecked ~entry:"m"
      [ Builder.block "m" ~annot:(Builder.prppt "ghost") [] Ast.Halt ]
  in
  check "missing handler" true (has_error (Check.check p))

let test_checker_duplicate_renaming_target () =
  let p =
    Builder.program_unchecked ~entry:"m"
      [
        Builder.block "m"
          ~annot:(Builder.jtppt [ ("a", "t"); ("b", "t") ] "m")
          [] Ast.Halt;
      ]
  in
  check "duplicate ΔR target" true (has_error (Check.check p))

let test_checker_unreachable_warning () =
  let p =
    Builder.program_unchecked ~entry:"m"
      [ Builder.block "m" [] Ast.Halt; Builder.block "dead" [] Ast.Halt ]
  in
  let diags = Check.check p in
  check "no errors" false (has_error diags);
  check "unreachable warning" true
    (List.exists (fun d -> not (Check.is_error d)) diags)

let test_check_exn () =
  check "check_exn raises" true
    (try
       ignore
         (Check.check_exn
            (Builder.program_unchecked ~entry:"x"
               [ Builder.block "m" [] Ast.Halt ]));
       false
     with Invalid_argument _ -> true)

let suite =
  ( "syntax",
    [
      Alcotest.test_case "minimal program" `Quick test_minimal_program;
      Alcotest.test_case "all instruction forms" `Quick test_instructions_parse;
      Alcotest.test_case "semicolon separators" `Quick test_semicolon_separators;
      Alcotest.test_case "comments and blanks" `Quick
        test_comments_and_blank_lines;
      Alcotest.test_case "hyphenated identifiers" `Quick
        test_hyphenated_identifiers;
      Alcotest.test_case "register/label resolution" `Quick
        test_label_resolution;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
      Alcotest.test_case "canned programs round-trip" `Quick
        test_round_trip_canned;
      QCheck_alcotest.to_alcotest prop_round_trip;
      Alcotest.test_case "checker accepts canned programs" `Quick
        test_checker_accepts_canned;
      Alcotest.test_case "checker: unknown label" `Quick
        test_checker_unknown_label;
      Alcotest.test_case "checker: missing entry" `Quick
        test_checker_missing_entry;
      Alcotest.test_case "checker: duplicate blocks" `Quick
        test_checker_duplicate_blocks;
      Alcotest.test_case "checker: jralloc target" `Quick
        test_checker_jralloc_needs_jtppt;
      Alcotest.test_case "checker: prppt handler" `Quick
        test_checker_prppt_handler_exists;
      Alcotest.test_case "checker: ΔR duplicate target" `Quick
        test_checker_duplicate_renaming_target;
      Alcotest.test_case "checker: unreachable warning" `Quick
        test_checker_unreachable_warning;
      Alcotest.test_case "check_exn" `Quick test_check_exn;
    ] )
