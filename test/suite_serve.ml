(* The serving layer (lib/serve): the deterministic scheduling core on
   a virtual clock — admission backpressure, DRR fairness, EDF
   ordering, deadline accounting, promotion hints — plus the
   concurrent pool itself: warm-session execution, exactly-once under
   concurrent submission, the typed Pool_closed teardown, and the
   lease-watchdog degradation path.

   Every Sched test drives explicit [now] literals (no wall clock, no
   domains), so the policy checks are bit-reproducible on a 1-core CI
   host; the pool tests use a single-domain polling session plus
   control gates (atomics the test flips), never sleeps-as-
   synchronisation.  Awaits carry timeouts so a scheduler regression
   fails the test rather than hanging CI. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* a request with only the fields the policy looks at *)
let req ?(size = 1) ?(enq = 0.) ~id ~tenant ~deadline () : unit Serve.Sched.req
    =
  { Serve.Sched.id; tenant; deadline; size; enqueued = enq; payload = () }

let sched ?(cap = 512) ?(quantum = 1) ?(panic = 0.) () : unit Serve.Sched.t =
  Serve.Sched.create
    ~config:{ Serve.Sched.cap; quantum; panic_slack = panic }
    ()

let admit_ok s r =
  match Serve.Sched.admit s r with
  | Ok () -> ()
  | Error `Queue_full -> Alcotest.fail "unexpected Queue_full"

let next_id s ~now =
  match Serve.Sched.next s ~now with
  | Some r -> r.Serve.Sched.id
  | None -> Alcotest.fail "next on non-empty scheduler returned None"

(* ------------------------------------------------------------------ *)
(* Admission control: cap reached -> reject; drain -> re-admit. *)

let test_admission_cap () =
  let s = sched ~cap:4 () in
  for i = 1 to 4 do
    admit_ok s (req ~id:i ~tenant:"a" ~deadline:1e9 ())
  done;
  check "cap reached rejects" true
    (Serve.Sched.admit s (req ~id:5 ~tenant:"a" ~deadline:1e9 ())
    = Error `Queue_full);
  (* a different tenant shares the same global cap *)
  check "cap is global across tenants" true
    (Serve.Sched.admit s (req ~id:6 ~tenant:"b" ~deadline:1e9 ())
    = Error `Queue_full);
  (* drain one -> admission re-opens *)
  let _ = next_id s ~now:0. in
  admit_ok s (req ~id:7 ~tenant:"a" ~deadline:1e9 ());
  check_int "queued at cap again" 4 (Serve.Sched.length s);
  let st = Serve.Sched.stats s in
  check_int "admitted" 5 st.admitted;
  check_int "rejected" 2 st.rejected

(* ------------------------------------------------------------------ *)
(* DRR fairness: 10:1 offered load, ~1:1 served share while both
   tenants stay backlogged.  Fails if the dequeue is FIFO (tenant a
   would take the first 100 slots) or tenant-blind. *)

let test_drr_fairness () =
  let s = sched () in
  let id = ref 0 in
  let admit tenant =
    incr id;
    admit_ok s (req ~id:!id ~tenant ~deadline:1e9 ())
  in
  for _ = 1 to 100 do
    admit "a"
  done;
  for _ = 1 to 10 do
    admit "b"
  done;
  (* serve 20 while both are backlogged: DRR alternates, so b gets
     ~10 of the first 20 despite offering 10x less *)
  let served_a = ref 0 and served_b = ref 0 in
  for _ = 1 to 20 do
    let r =
      match Serve.Sched.next s ~now:0. with
      | Some r -> r
      | None -> Alcotest.fail "ran dry"
    in
    if r.Serve.Sched.tenant = "a" then incr served_a else incr served_b
  done;
  check
    (Printf.sprintf "served share within tolerance (a=%d b=%d)" !served_a
       !served_b)
    true
    (abs (!served_a - !served_b) <= 2);
  check "b not starved" true (!served_b >= 8);
  (* once b drains, a gets full service *)
  let remaining = ref 0 in
  let rec drain () =
    match Serve.Sched.next s ~now:0. with
    | Some _ ->
        incr remaining;
        drain ()
    | None -> ()
  in
  drain ();
  check_int "nothing lost" 110 (20 + !remaining)

(* Size-weighted DRR: with equal offered requests but 4x sizes, the
   small-request tenant is served ~4x as often (byte-fairness, not
   request-fairness). *)
let test_drr_size_weighting () =
  let s = sched ~quantum:1 () in
  let id = ref 0 in
  let admit tenant size =
    incr id;
    admit_ok s (req ~size ~id:!id ~tenant ~deadline:1e9 ())
  in
  for _ = 1 to 40 do
    admit "big" 4;
    admit "small" 1
  done;
  let served_big = ref 0 and served_small = ref 0 in
  for _ = 1 to 25 do
    let r =
      match Serve.Sched.next s ~now:0. with
      | Some r -> r
      | None -> Alcotest.fail "ran dry"
    in
    if r.Serve.Sched.tenant = "big" then incr served_big else incr served_small
  done;
  check
    (Printf.sprintf "size-units balanced (big=%d small=%d)" !served_big
       !served_small)
    true
    (!served_small >= 3 * !served_big)

(* ------------------------------------------------------------------ *)
(* EDF: a tight-deadline request overtakes FIFO order within its
   tenant.  Fails if the per-tenant queue is FIFO. *)

let test_edf_order () =
  let s = sched () in
  admit_ok s (req ~id:1 ~tenant:"a" ~deadline:10. ());
  admit_ok s (req ~id:2 ~tenant:"a" ~deadline:1. ());
  admit_ok s (req ~id:3 ~tenant:"a" ~deadline:5. ());
  check_int "earliest deadline first" 2 (next_id s ~now:0.);
  check_int "then the middle one" 3 (next_id s ~now:0.);
  check_int "FIFO-earliest last" 1 (next_id s ~now:0.);
  (* deadline ties break FIFO by id *)
  admit_ok s (req ~id:4 ~tenant:"a" ~deadline:7. ());
  admit_ok s (req ~id:5 ~tenant:"a" ~deadline:7. ());
  check_int "tie breaks FIFO" 4 (next_id s ~now:0.);
  check_int "tie breaks FIFO (2)" 5 (next_id s ~now:0.)

(* Panic override: an imminent deadline bypasses the round-robin turn
   (its tenant still pays deficit), then normal DRR resumes. *)
let test_edf_panic_override () =
  let s = sched ~panic:0.5 () in
  for i = 1 to 5 do
    admit_ok s (req ~id:i ~tenant:"a" ~deadline:1e9 ())
  done;
  admit_ok s (req ~id:10 ~tenant:"b" ~deadline:2.0 ());
  (* b joined the ring last, but its head is within panic slack of
     now=1.6 (slack 0.4 <= 0.5) *)
  check_int "imminent deadline overrides DRR" 10 (next_id s ~now:1.6);
  check "then back to a" true (next_id s ~now:1.6 < 10)

(* ------------------------------------------------------------------ *)
(* Deadline-miss accounting. *)

let test_deadline_accounting () =
  let s = sched () in
  let r1 = req ~id:1 ~tenant:"a" ~deadline:10. () in
  let r2 = req ~id:2 ~tenant:"a" ~deadline:10. () in
  admit_ok s r1;
  admit_ok s r2;
  let _ = next_id s ~now:0. and _ = next_id s ~now:0. in
  check "on time" true (Serve.Sched.complete s ~now:9.9 r1 = `Met);
  check "late" true (Serve.Sched.complete s ~now:10.1 r2 = `Missed);
  let st = Serve.Sched.stats s in
  check_int "met" 1 st.met;
  check_int "missed" 1 st.missed;
  check_int "served" 2 st.served

(* ------------------------------------------------------------------ *)
(* Promotion hint: 0 with plentiful slack, rising as the remaining
   budget fraction halves, capped at 6, monotone in elapsed time. *)

let test_promotion_hint () =
  let r = req ~id:1 ~tenant:"a" ~enq:0. ~deadline:100. () in
  let hint now = Serve.Sched.promotion_hint ~now r in
  check_int "fresh request" 0 (hint 0.);
  check_int "3/4 budget left" 0 (hint 25.);
  check_int "half budget left" 1 (hint 50.);
  check_int "1/10 budget left" 3 (hint 90.);
  check_int "overdue" 6 (hint 101.);
  let prev = ref (-1) in
  for t = 0 to 120 do
    let h = hint (float_of_int t) in
    check (Printf.sprintf "monotone at t=%d" t) true (h >= !prev);
    check (Printf.sprintf "clamped at t=%d" t) true (h >= 0 && h <= 6);
    prev := h
  done

(* ------------------------------------------------------------------ *)
(* The pool: warm single-domain session, submit/await round trips. *)

let pool_config ?(cap = 512) ?(lease_s = 0.) ?(domains = 1) () :
    Serve.Pool.config =
  {
    Serve.Pool.default_config with
    runtime =
      {
        Par.Runtime.default_config with
        domains;
        heart_us = 100.;
        source = `Polling;
      };
    sched = { Serve.Sched.default_config with cap };
    lease_s;
  }

let test_pool_basic () =
  let pool = Serve.Pool.create ~config:(pool_config ()) () in
  let tickets =
    List.init 20 (fun i ->
        let work =
          Serve.Pool.Thunk
            (fun (module E : Workloads.Exec.S) ->
              let acc = Array.make 64 0 in
              E.par_for ~lo:0 ~hi:64 (fun j -> acc.(j) <- (i * 64) + j);
              Array.fold_left ( + ) 0 acc)
        in
        match Serve.Pool.submit pool ~tenant:(Printf.sprintf "t%d" (i mod 3))
                work
        with
        | Ok t -> (i, t)
        | Error _ -> Alcotest.failf "submit %d rejected" i)
  in
  List.iter
    (fun (i, t) ->
      match Serve.Pool.await ~timeout_s:30. pool t with
      | Ok { outcome = Serve.Pool.Checksum c; _ } ->
          let expected = (64 * 64 * i) + (63 * 64 / 2) in
          check_int (Printf.sprintf "checksum %d" i) expected c
      | Ok _ -> Alcotest.fail "unexpected outcome kind"
      | Error _ -> Alcotest.failf "request %d errored" i)
    tickets;
  let st = Serve.Pool.close pool in
  check_int "all served" 20 st.served;
  check_int "none queued" 0 st.queued;
  check_int "deadline classification total" 20 (st.met + st.missed);
  check "runtime stats surfaced at close" true (st.runtime <> None)

(* A registry kernel through the pool equals its serial checksum. *)
let test_pool_kernel () =
  let b =
    match Workloads.Real_bench.find "plus_reduce" with
    | Some b -> b
    | None -> Alcotest.fail "plus_reduce missing from the registry"
  in
  let expected = Workloads.Real_bench.run_serial b ~scale:1 in
  let pool = Serve.Pool.create ~config:(pool_config ()) () in
  let t =
    match
      Serve.Pool.submit pool ~tenant:"k"
        (Serve.Pool.Kernel { bench = b; scale = 1 })
    with
    | Ok t -> t
    | Error _ -> Alcotest.fail "kernel submit rejected"
  in
  (match Serve.Pool.await ~timeout_s:60. pool t with
  | Ok { outcome = Serve.Pool.Checksum c; _ } ->
      check_int "kernel checksum matches serial" expected c
  | Ok _ -> Alcotest.fail "unexpected outcome kind"
  | Error _ -> Alcotest.fail "kernel request errored");
  ignore (Serve.Pool.close pool)

(* The Serve_exec oracle in tier-1: seeded TPAL programs through the
   whole serving path are bit-identical to the sequential evaluator. *)
let test_serve_exec_oracle () =
  for seed = 1 to 5 do
    let g = Fuzz.Gen.generate ~seed in
    match Serve.Serve_exec.check ~domains:[ 1; 2 ] g.prog ~outputs:g.outputs
    with
    | [] -> ()
    | ds ->
        Alcotest.failf "seed %d: %s" seed
          (String.concat "; "
             (List.map
                (fun (d : Fuzz.Diff.divergence) ->
                  "[" ^ d.oracle ^ "] " ^ d.detail)
                ds))
  done

(* ------------------------------------------------------------------ *)
(* Backpressure at the pool boundary: fill the queue behind a gated
   request, observe the typed rejection, drain, re-admit. *)

let spin_until ?(timeout_s = 30.) (what : string) (p : unit -> bool) : unit =
  let t0 = Mclock.now_s () in
  let rec go () =
    if p () then ()
    else if Mclock.now_s () -. t0 > timeout_s then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.001;
      go ()
    end
  in
  go ()

let gated () =
  let gate = Atomic.make false in
  let started = Atomic.make false in
  let work =
    Serve.Pool.Thunk
      (fun (module E : Workloads.Exec.S) ->
        Atomic.set started true;
        while not (Atomic.get gate) do
          Unix.sleepf 0.001
        done;
        42)
  in
  (gate, started, work)

let quick_thunk v = Serve.Pool.Thunk (fun _ -> v)

let test_pool_backpressure () =
  let pool = Serve.Pool.create ~config:(pool_config ~cap:2 ()) () in
  let gate, started, work = gated () in
  let t1 =
    match Serve.Pool.submit pool ~tenant:"a" work with
    | Ok t -> t
    | Error _ -> Alcotest.fail "gated submit rejected"
  in
  (* wait until the gated request is IN FLIGHT (out of the queue), so
     the cap below is exercised deterministically *)
  spin_until "gated request to start" (fun () -> Atomic.get started);
  let t2 = Serve.Pool.submit pool ~tenant:"a" (quick_thunk 2) in
  let t3 = Serve.Pool.submit pool ~tenant:"b" (quick_thunk 3) in
  check "queue holds cap requests" true
    (match (t2, t3) with Ok _, Ok _ -> true | _ -> false);
  (match Serve.Pool.submit pool ~tenant:"a" (quick_thunk 4) with
  | Error (Serve.Pool.Rejected `Queue_full) -> ()
  | Ok _ -> Alcotest.fail "cap+1 submit was admitted"
  | Error _ -> Alcotest.fail "cap+1 submit failed with the wrong error");
  Atomic.set gate true;
  (match Serve.Pool.await ~timeout_s:30. pool t1 with
  | Ok { outcome = Serve.Pool.Checksum 42; _ } -> ()
  | _ -> Alcotest.fail "gated request did not complete");
  List.iter
    (fun t ->
      match t with
      | Ok t -> (
          match Serve.Pool.await ~timeout_s:30. pool t with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "queued request errored")
      | Error _ -> ())
    [ t2; t3 ];
  (* drained: admission re-opens *)
  (match Serve.Pool.submit pool ~tenant:"a" (quick_thunk 5) with
  | Ok t -> (
      match Serve.Pool.await ~timeout_s:30. pool t with
      | Ok { outcome = Serve.Pool.Checksum 5; _ } -> ()
      | _ -> Alcotest.fail "re-admitted request did not complete")
  | Error _ -> Alcotest.fail "re-admission after drain rejected");
  let st = Serve.Pool.close pool in
  check_int "one backpressure rejection" 1 st.sched.rejected

(* ------------------------------------------------------------------ *)
(* The Pool_closed regression: closing with requests still queued
   resolves them with the typed error — the in-flight one finishes,
   nothing hangs, nothing races domain teardown. *)

let test_pool_closed_typed () =
  let pool = Serve.Pool.create ~config:(pool_config ()) () in
  let gate, started, work = gated () in
  let t1 =
    match Serve.Pool.submit pool ~tenant:"a" work with
    | Ok t -> t
    | Error _ -> Alcotest.fail "gated submit rejected"
  in
  spin_until "gated request to start" (fun () -> Atomic.get started);
  let t2 =
    match Serve.Pool.submit pool ~tenant:"a" (quick_thunk 2) with
    | Ok t -> t
    | Error _ -> Alcotest.fail "queued submit rejected"
  in
  let t3 =
    match Serve.Pool.submit pool ~tenant:"b" (quick_thunk 3) with
    | Ok t -> t
    | Error _ -> Alcotest.fail "queued submit rejected"
  in
  (* release the gate shortly after close starts waiting on the
     in-flight request *)
  let releaser =
    Thread.create
      (fun () ->
        Thread.delay 0.05;
        Atomic.set gate true)
      ()
  in
  let st = Serve.Pool.close pool in
  Thread.join releaser;
  (* the in-flight request finished; the queued ones were resolved
     with the typed error, not executed, not leaked *)
  (match Serve.Pool.await pool t1 with
  | Ok { outcome = Serve.Pool.Checksum 42; _ } -> ()
  | _ -> Alcotest.fail "in-flight request did not finish across close");
  List.iter
    (fun t ->
      match Serve.Pool.await pool t with
      | Error Serve.Pool.Pool_closed -> ()
      | Ok _ -> Alcotest.fail "queued request executed after close"
      | Error _ -> Alcotest.fail "queued request got the wrong error")
    [ t2; t3 ];
  check_int "cancelled count" 2 st.cancelled;
  check_int "served count" 1 st.served;
  (* submissions after close get the typed error too *)
  match Serve.Pool.submit pool ~tenant:"a" (quick_thunk 9) with
  | Error Serve.Pool.Pool_closed -> ()
  | _ -> Alcotest.fail "submit after close was not Pool_closed"

(* ------------------------------------------------------------------ *)
(* Concurrent-submit stress: N submitter threads x M requests against
   one pool; every request executes exactly once (per-request
   counters), all checksums verify, and the pool quiesces with empty
   queues.  Awaits are bounded so a scheduler regression fails here
   instead of hanging CI. *)

(* The pool's own latency histograms: every completion lands in the
   all-tenants histogram and its tenant's, the percentile digest is
   ordered, and the load report carries both through. *)
let test_latency_histograms () =
  let pool = Serve.Pool.create ~config:(pool_config ()) () in
  let spec =
    {
      Serve.Load.default_spec with
      requests = 300;
      tenants = 3;
      rate_rps = 0.;
      (* submit as fast as possible: keep the test quick *)
    }
  in
  let report = Serve.Load.run pool spec in
  ignore (Serve.Pool.close pool);
  check_int "audit clean" 0
    (report.lost + report.duplicated + report.mismatched);
  let lat = report.pool_latency in
  check_int "histogram saw every completion" report.completed lat.count;
  check "digest ordered" true
    (lat.p50_ms <= lat.p95_ms && lat.p95_ms <= lat.p99_ms
   && lat.p99_ms <= lat.max_ms);
  check "positive latency" true (lat.p50_ms > 0.);
  check "per-tenant histograms present" true
    (List.length report.latency_per_tenant > 0);
  let tenant_total =
    List.fold_left
      (fun acc ((_, s) : string * Obs.Hist.summary) -> acc + s.count)
      0 report.latency_per_tenant
  in
  check_int "tenant histograms partition completions" report.completed
    tenant_total;
  List.iter
    (fun ((_, s) : string * Obs.Hist.summary) ->
      check "tenant digest ordered" true
        (s.p50_ms <= s.p99_ms && s.p99_ms <= s.max_ms))
    report.latency_per_tenant

let test_concurrent_stress () =
  let n_threads = 4 and per_thread = 100 in
  let total = n_threads * per_thread in
  let pool = Serve.Pool.create ~config:(pool_config ~cap:(2 * total) ()) () in
  let exec_counts = Array.init total (fun _ -> Atomic.make 0) in
  let tickets = Array.make total None in
  let submitters =
    Array.init n_threads (fun tid ->
        Thread.create
          (fun () ->
            for j = 0 to per_thread - 1 do
              let idx = (tid * per_thread) + j in
              let counter = exec_counts.(idx) in
              let work =
                Serve.Pool.Thunk
                  (fun _ ->
                    Atomic.incr counter;
                    idx)
              in
              match
                Serve.Pool.submit pool
                  ~tenant:(Printf.sprintf "t%d" tid)
                  work
              with
              | Ok t -> tickets.(idx) <- Some t
              | Error _ -> () (* cap is 2x total: must not happen *)
            done)
          ())
  in
  Array.iter Thread.join submitters;
  Array.iteri
    (fun idx ticket ->
      match ticket with
      | None -> Alcotest.failf "request %d was rejected under the cap" idx
      | Some t -> (
          match Serve.Pool.await ~timeout_s:60. pool t with
          | Ok { outcome = Serve.Pool.Checksum c; _ } ->
              check_int (Printf.sprintf "checksum %d" idx) idx c
          | Ok _ -> Alcotest.fail "unexpected outcome kind"
          | Error Serve.Pool.Timed_out ->
              Alcotest.failf "request %d stuck: scheduler regression" idx
          | Error _ -> Alcotest.failf "request %d errored" idx))
    tickets;
  Array.iteri
    (fun idx c ->
      check_int
        (Printf.sprintf "request %d executed exactly once" idx)
        1 (Atomic.get c))
    exec_counts;
  let st = Serve.Pool.close pool in
  check_int "all served" total st.served;
  check_int "quiesced: empty queues" 0 st.queued;
  check_int "no cancellations" 0 st.cancelled;
  check_int "no failures" 0 st.failures

(* ------------------------------------------------------------------ *)
(* The lease watchdog: a wedged request degrades the pool (typed
   shedding), the stall is counted, and completion clears the
   degradation. *)

let test_watchdog_degradation () =
  let pool =
    Serve.Pool.create ~config:(pool_config ~lease_s:0.05 ()) ()
  in
  let gate, started, work = gated () in
  let t1 =
    match Serve.Pool.submit pool ~tenant:"a" work with
    | Ok t -> t
    | Error _ -> Alcotest.fail "gated submit rejected"
  in
  spin_until "gated request to start" (fun () -> Atomic.get started);
  spin_until "watchdog to flag the stall" (fun () ->
      (Serve.Pool.stats pool).stalls_detected >= 1);
  check "pool degraded while wedged" true (Serve.Pool.stats pool).degraded;
  (match Serve.Pool.submit pool ~tenant:"b" (quick_thunk 1) with
  | Error (Serve.Pool.Rejected `Shedding) -> ()
  | Ok _ -> Alcotest.fail "degraded pool admitted new work"
  | Error _ -> Alcotest.fail "degraded pool rejected with the wrong error");
  Atomic.set gate true;
  (match Serve.Pool.await ~timeout_s:30. pool t1 with
  | Ok { outcome = Serve.Pool.Checksum 42; _ } -> ()
  | _ -> Alcotest.fail "wedged request did not recover");
  spin_until "degradation to clear" (fun () ->
      not (Serve.Pool.stats pool).degraded);
  (match Serve.Pool.submit pool ~tenant:"b" (quick_thunk 2) with
  | Ok t -> (
      match Serve.Pool.await ~timeout_s:30. pool t with
      | Ok { outcome = Serve.Pool.Checksum 2; _ } -> ()
      | _ -> Alcotest.fail "post-recovery request did not complete")
  | Error _ -> Alcotest.fail "recovered pool still shedding");
  let st = Serve.Pool.close pool in
  check "stall stayed on the books" true (st.stalls_detected >= 1);
  check "not degraded at close" false st.degraded

(* ------------------------------------------------------------------ *)
(* Cancellation, retry and warm-restart: the chaos-hardening PR's
   serving-layer edges. *)

(* Sched.cancel as a pure policy operation: surgical removal, heap
   rebuilt, unknown ids refused. *)
let test_sched_cancel () =
  let s = sched () in
  admit_ok s (req ~id:1 ~tenant:"a" ~deadline:1e9 ());
  admit_ok s (req ~id:2 ~tenant:"a" ~deadline:1e9 ());
  admit_ok s (req ~id:3 ~tenant:"b" ~deadline:1e9 ());
  (match Serve.Sched.cancel s ~id:2 with
  | Some r -> check_int "cancel returns the victim" 2 r.Serve.Sched.id
  | None -> Alcotest.fail "queued request not found by cancel");
  check_int "length shrinks" 2 (Serve.Sched.length s);
  check "unknown id refused" true (Serve.Sched.cancel s ~id:99 = None);
  check "cancelled id not re-cancellable" true
    (Serve.Sched.cancel s ~id:2 = None);
  (* the survivors still dispatch, and 2 never does *)
  let a = next_id s ~now:0. in
  let b = next_id s ~now:0. in
  check "victim never dispatches" true
    (a <> 2 && b <> 2 && List.sort compare [ a; b ] = [ 1; 3 ]);
  check "drained" true (Serve.Sched.next s ~now:0. = None)

(* Deterministic exponential backoff with jitter: pure, seeded,
   monotone in attempt, clamped. *)
let test_backoff () =
  let b ~attempt =
    Serve.Sched.backoff_s ~base_s:0.001 ~max_s:10. ~seed:7 ~id:3 ~attempt
  in
  check "deterministic" true (b ~attempt:1 = b ~attempt:1);
  check "different attempts differ" true (b ~attempt:1 <> b ~attempt:2);
  (* jitter multiplier lives in [0.5, 1.0]: attempt n is bounded by
     base·2^(n-1), and 3 doublings always dominate one halving *)
  for n = 1 to 8 do
    let v = b ~attempt:n in
    let expo = 0.001 *. (2. ** float_of_int (n - 1)) in
    check (Printf.sprintf "attempt %d in [expo/2, expo]" n) true
      (v >= (expo /. 2.) -. 1e-12 && v <= expo +. 1e-12)
  done;
  check "monotone across 3 doublings" true (b ~attempt:4 > b ~attempt:1);
  check "clamped to max_s" true
    (Serve.Sched.backoff_s ~base_s:1. ~max_s:0.05 ~seed:0 ~id:0 ~attempt:30
    = 0.05)

(* Cancel while queued: the victim resolves with the typed error
   without ever executing; the pool keeps serving. *)
let test_cancel_queued () =
  let pool = Serve.Pool.create ~config:(pool_config ()) () in
  let gate, started, work = gated () in
  let t1 =
    match Serve.Pool.submit pool ~tenant:"a" work with
    | Ok t -> t
    | Error _ -> Alcotest.fail "gated submit rejected"
  in
  spin_until "gated request to start" (fun () -> Atomic.get started);
  let ran = Atomic.make false in
  let t2 =
    match
      Serve.Pool.submit pool ~tenant:"a"
        (Serve.Pool.Thunk
           (fun _ ->
             Atomic.set ran true;
             2))
    with
    | Ok t -> t
    | Error _ -> Alcotest.fail "queued submit rejected"
  in
  check "queued cancel lands" true (Serve.Pool.cancel pool t2);
  check "second cancel is a no-op" false (Serve.Pool.cancel pool t2);
  (match Serve.Pool.await pool t2 with
  | Error (Serve.Pool.Cancelled `Explicit) -> ()
  | Ok _ -> Alcotest.fail "cancelled request completed"
  | Error _ -> Alcotest.fail "cancelled request got the wrong error");
  Atomic.set gate true;
  (match Serve.Pool.await ~timeout_s:30. pool t1 with
  | Ok { outcome = Serve.Pool.Checksum 42; _ } -> ()
  | _ -> Alcotest.fail "gated request did not complete");
  check "victim never executed" false (Atomic.get ran);
  let st = Serve.Pool.close pool in
  check_int "one cooperative cancel" 1 st.cancels;
  check_int "one served" 1 st.served

(* Cancel mid-strip: a cooperatively-polling request (par_for through
   the session) unwinds at a beat boundary with the typed reason. *)
let test_cancel_in_flight () =
  let pool = Serve.Pool.create ~config:(pool_config ()) () in
  let started = Atomic.make false in
  let work =
    Serve.Pool.Thunk
      (fun (module E : Workloads.Exec.S) ->
        Atomic.set started true;
        (* ~100 s of strip-mined work: cancellation must cut it short
           at a poll, or the bounded await below fails the test *)
        E.par_for ~lo:0 ~hi:1_000_000 (fun _ -> Unix.sleepf 0.0001);
        0)
  in
  let t =
    match Serve.Pool.submit pool ~tenant:"a" work with
    | Ok t -> t
    | Error _ -> Alcotest.fail "submit rejected"
  in
  spin_until "request to start" (fun () -> Atomic.get started);
  check "in-flight cancel lands" true (Serve.Pool.cancel pool t);
  (match Serve.Pool.await ~timeout_s:30. pool t with
  | Error (Serve.Pool.Cancelled `Explicit) -> ()
  | Ok _ -> Alcotest.fail "cancelled loop ran to completion"
  | Error _ -> Alcotest.fail "cancelled loop got the wrong error");
  (* the session survived the unwinding *)
  (match Serve.Pool.submit pool ~tenant:"a" (quick_thunk 7) with
  | Ok t -> (
      match Serve.Pool.await ~timeout_s:30. pool t with
      | Ok { outcome = Serve.Pool.Checksum 7; _ } -> ()
      | _ -> Alcotest.fail "post-cancel request did not complete")
  | Error _ -> Alcotest.fail "post-cancel submit rejected");
  let st = Serve.Pool.close pool in
  check_int "one cancel on the books" 1 st.cancels

(* A timeout racing completion, both directions: an await that expires
   leaves the ticket open for a later await to win. *)
let test_timeout_races_completion () =
  let pool = Serve.Pool.create ~config:(pool_config ()) () in
  let gate, started, work = gated () in
  let t =
    match Serve.Pool.submit pool ~tenant:"a" work with
    | Ok t -> t
    | Error _ -> Alcotest.fail "submit rejected"
  in
  spin_until "request to start" (fun () -> Atomic.get started);
  (match Serve.Pool.await ~timeout_s:0.05 pool t with
  | Error Serve.Pool.Timed_out -> ()
  | Ok _ -> Alcotest.fail "gated request completed early"
  | Error _ -> Alcotest.fail "expired await got the wrong error");
  Atomic.set gate true;
  (match Serve.Pool.await ~timeout_s:30. pool t with
  | Ok { outcome = Serve.Pool.Checksum 42; _ } -> ()
  | _ -> Alcotest.fail "second await did not see the completion");
  (* completion first: a generous timeout returns Ok, not Timed_out *)
  (match Serve.Pool.submit pool ~tenant:"a" (quick_thunk 5) with
  | Ok t -> (
      match Serve.Pool.await ~timeout_s:30. pool t with
      | Ok { outcome = Serve.Pool.Checksum 5; _ } -> ()
      | _ -> Alcotest.fail "quick request lost to its timeout")
  | Error _ -> Alcotest.fail "quick submit rejected");
  ignore (Serve.Pool.close pool)

let retry_config ~retries () =
  { (pool_config ()) with Serve.Pool.retries = retries }

(* A transient injected fault with budget left: the request is
   re-admitted under the same ticket (idempotent), backs off, and the
   second attempt resolves it — exactly-once for the awaiter. *)
let test_retry_recovers () =
  let pool = Serve.Pool.create ~config:(retry_config ~retries:2 ()) () in
  let attempts = Atomic.make 0 in
  let work =
    Serve.Pool.Thunk
      (fun _ ->
        if Atomic.fetch_and_add attempts 1 = 0 then
          raise (Par.Chaos.Injected { domain = 0; beat = 0 });
        17)
  in
  let t =
    match Serve.Pool.submit pool ~tenant:"a" work with
    | Ok t -> t
    | Error _ -> Alcotest.fail "submit rejected"
  in
  (match Serve.Pool.await ~timeout_s:30. pool t with
  | Ok { outcome = Serve.Pool.Checksum 17; _ } -> ()
  | Ok _ -> Alcotest.fail "unexpected outcome kind"
  | Error _ -> Alcotest.fail "retried request did not recover");
  check_int "two attempts ran" 2 (Atomic.get attempts);
  let st = Serve.Pool.close pool in
  check_int "one retry on the books" 1 st.retried;
  check_int "no failures" 0 st.failures;
  (* sched-level [served] counts dispatches (it feeds the DRR share
     accounting), so the retried attempt shows up there — while the
     awaiter above saw exactly one resolution *)
  check_int "both attempts dispatched" 2 st.served

(* Budget exhaustion: a permanently-failing request burns the tenant's
   budget and resolves with the typed Retry_exhausted, not a hang. *)
let test_retry_budget_exhaustion () =
  let pool = Serve.Pool.create ~config:(retry_config ~retries:1 ()) () in
  let attempts = Atomic.make 0 in
  let work =
    Serve.Pool.Thunk
      (fun _ ->
        Atomic.incr attempts;
        raise (Par.Chaos.Injected { domain = 0; beat = 0 }))
  in
  let t =
    match Serve.Pool.submit pool ~tenant:"a" work with
    | Ok t -> t
    | Error _ -> Alcotest.fail "submit rejected"
  in
  (match Serve.Pool.await ~timeout_s:30. pool t with
  | Error (Serve.Pool.Retry_exhausted { attempts = n }) ->
      check_int "typed rejection counts the attempts" 2 n
  | Ok _ -> Alcotest.fail "doomed request completed"
  | Error _ -> Alcotest.fail "doomed request got the wrong error");
  check_int "budget bounded the attempts" 2 (Atomic.get attempts);
  let st = Serve.Pool.close pool in
  check_int "one retry spent" 1 st.retried;
  check_int "one failure" 1 st.failures

(* Lease-based recovery, the full loop: a Machine_fault kills the warm
   session; the pool resolves the victim with the typed error,
   warm-restarts, and serves queued work on the fresh session. *)
let test_warm_restart () =
  let pool = Serve.Pool.create ~config:(pool_config ()) () in
  let boom = Par.Runtime.Machine_fault (Tpal.Machine_error.Halted) in
  let t1 =
    match
      Serve.Pool.submit pool ~tenant:"a"
        (Serve.Pool.Thunk (fun _ -> raise boom))
    with
    | Ok t -> t
    | Error _ -> Alcotest.fail "submit rejected"
  in
  (match Serve.Pool.await ~timeout_s:30. pool t1 with
  | Error (Serve.Pool.Failed (Par.Runtime.Machine_fault _)) -> ()
  | Ok _ -> Alcotest.fail "faulting request completed"
  | Error _ -> Alcotest.fail "faulting request got the wrong error");
  (* the restarted session serves — repeatedly, to show it is warm *)
  for i = 1 to 3 do
    match Serve.Pool.submit pool ~tenant:"b" (quick_thunk i) with
    | Ok t -> (
        match Serve.Pool.await ~timeout_s:30. pool t with
        | Ok { outcome = Serve.Pool.Checksum c; _ } ->
            check_int "post-restart checksum" i c
        | _ -> Alcotest.fail "post-restart request did not complete")
    | Error _ -> Alcotest.fail "post-restart submit rejected"
  done;
  let st = Serve.Pool.close pool in
  check_int "one warm restart" 1 st.restarts;
  check_int "one failure (the victim)" 1 st.failures;
  (* dispatch count survives the restart: the victim plus the three
     post-restart requests *)
  check_int "dispatches include the victim" 4 st.served

let suite =
  ( "serve",
    [
      Alcotest.test_case "admission: cap, reject, re-admit" `Quick
        test_admission_cap;
      Alcotest.test_case "DRR fairness at 10:1 offered load" `Quick
        test_drr_fairness;
      Alcotest.test_case "DRR size weighting" `Quick test_drr_size_weighting;
      Alcotest.test_case "EDF overtakes FIFO order" `Quick test_edf_order;
      Alcotest.test_case "EDF panic override across tenants" `Quick
        test_edf_panic_override;
      Alcotest.test_case "deadline-miss accounting" `Quick
        test_deadline_accounting;
      Alcotest.test_case "promotion hint: monotone, clamped" `Quick
        test_promotion_hint;
      Alcotest.test_case "pool: warm session round trips" `Quick
        test_pool_basic;
      Alcotest.test_case "pool: registry kernel checksum" `Quick
        test_pool_kernel;
      Alcotest.test_case "pool: Serve_exec TPAL oracle, 5 seeds" `Quick
        test_serve_exec_oracle;
      Alcotest.test_case "pool: backpressure + re-admission" `Quick
        test_pool_backpressure;
      Alcotest.test_case "pool: typed Pool_closed teardown" `Quick
        test_pool_closed_typed;
      Alcotest.test_case "pool: latency histograms and percentiles" `Quick
        test_latency_histograms;
      Alcotest.test_case "pool: concurrent-submit exactly-once stress" `Quick
        test_concurrent_stress;
      Alcotest.test_case "pool: lease watchdog degradation" `Quick
        test_watchdog_degradation;
      Alcotest.test_case "sched: surgical cancel" `Quick test_sched_cancel;
      Alcotest.test_case "sched: deterministic backoff" `Quick test_backoff;
      Alcotest.test_case "pool: cancel while queued" `Quick test_cancel_queued;
      Alcotest.test_case "pool: cancel mid-strip" `Quick test_cancel_in_flight;
      Alcotest.test_case "pool: timeout races completion" `Quick
        test_timeout_races_completion;
      Alcotest.test_case "pool: retry recovers a transient fault" `Quick
        test_retry_recovers;
      Alcotest.test_case "pool: retry budget exhausts typed" `Quick
        test_retry_budget_exhaustion;
      Alcotest.test_case "pool: warm restart after Machine_fault" `Quick
        test_warm_restart;
    ] )
