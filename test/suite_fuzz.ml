(* Differential fuzzing in tier-1: bounded batteries of the lib/fuzz
   harness (the unbounded version is bin/tpal_fuzz.ml), sanity
   properties of the generator and shrinker, and replay of the
   committed shrunk reproducers under test/corpus. *)

open Fuzz

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pp_divs ds =
  String.concat "; "
    (List.map
       (fun (d : Diff.divergence) -> "[" ^ d.oracle ^ "] " ^ d.detail)
       ds)

(* a trimmed battery for per-commit latency: one mechanism, two core
   counts, faults, the real heartbeat runtime, and one multi-domain
   configuration still on *)
let quick_cfg =
  {
    Diff.cores = [ 1; 4 ];
    mechs = [ Sim.Interrupts.Nautilus_ipi ];
    faults = true;
    chaos = false;
    hb = true;
    par = [ 2 ];
    chaos_par = false;
  }

(* a smaller slice with the crash-schedule battery switched on, so the
   recovery oracles run on every commit too *)
let chaos_cfg = { quick_cfg with Diff.chaos = true }

(* the real-runtime fault-injection slice: every oracle off except the
   chaos-par battery itself (the plain batteries above already cover
   the rest), at 1 and 2 domains *)
let chaos_par_cfg =
  {
    quick_cfg with
    Diff.faults = false;
    hb = false;
    par = [ 1; 2 ];
    chaos_par = true;
  }

let test_battery_chaos_par () =
  for seed = 1 to 15 do
    let g = Gen.generate ~seed in
    match Diff.check_gen ~cfg:chaos_par_cfg g with
    | [] -> ()
    | ds -> Alcotest.failf "seed %d: %s" seed (pp_divs ds)
  done

let test_battery_chaos () =
  for seed = 1 to 10 do
    let g = Gen.generate ~seed in
    match Diff.check_gen ~cfg:chaos_cfg g with
    | [] -> ()
    | ds -> Alcotest.failf "seed %d: %s" seed (pp_divs ds)
  done

let test_battery_quick () =
  for seed = 1 to 30 do
    let g = Gen.generate ~seed in
    match Diff.check_gen ~cfg:quick_cfg g with
    | [] -> ()
    | ds -> Alcotest.failf "seed %d: %s" seed (pp_divs ds)
  done

let test_battery_full_cfg () =
  (* a handful of seeds through the full default battery: all three
     interrupt mechanisms, P ∈ {1, 4, 15}, fault injection, heartbeat
     runtime *)
  for seed = 1000 to 1004 do
    let g = Gen.generate ~seed in
    match Diff.check_gen g with
    | [] -> ()
    | ds -> Alcotest.failf "seed %d: %s" seed (pp_divs ds)
  done

let test_generator_deterministic () =
  List.iter
    (fun seed ->
      let a = Gen.generate ~seed and b = Gen.generate ~seed in
      check
        (Printf.sprintf "seed %d reproduces" seed)
        true
        (Tpal.Ast.equal_program a.prog b.prog);
      check (Printf.sprintf "seed %d outputs" seed) true
        (a.outputs = b.outputs))
    [ 1; 7; 42; 1234; 99991 ]

let prop_generated_valid =
  QCheck.Test.make ~name:"generated programs are well-formed and halt"
    ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
      let g = Gen.generate ~seed in
      Tpal.Check.errors g.prog = []
      &&
      match
        Tpal.Eval.run
          ~options:
            { Tpal.Eval.default_options with heart = None; fuel = 5_000_000 }
          g.prog
      with
      | Ok { stop = Tpal.Eval.Halted; _ } -> true
      | Ok _ | Error _ -> false)

(* --- shrinker --- *)

let test_shrinker_minimizes () =
  let g = Gen.generate ~seed:5 in
  (* an always-true predicate shrinks as far as admissibility allows *)
  let small = Shrink.minimize ~still_fails:(fun _ -> true) g.prog in
  check "strictly smaller" true (Shrink.size small < Shrink.size g.prog);
  check "still admissible" true (Shrink.admissible small)

let test_shrinker_respects_predicate () =
  let g = Gen.generate ~seed:5 in
  let feature (p : Tpal.Ast.program) = List.length p.blocks >= 2 in
  let small = Shrink.minimize ~still_fails:feature g.prog in
  check "feature preserved" true (feature small);
  check "admissible" true (Shrink.admissible small);
  (* when the predicate does not hold, minimize is the identity *)
  let id = Shrink.minimize ~still_fails:(fun _ -> false) g.prog in
  check "no-op on passing program" true
    (Tpal.Ast.equal_program id g.prog)

(* --- corpus --- *)

(* The test binary runs from its build directory; locate the corpus
   relative to the dune workspace root (same idiom as suite_assets). *)
let corpus_dir () : string option =
  List.find_opt Sys.file_exists
    [
      "corpus";
      "test/corpus";
      "../test/corpus";
      "../../../test/corpus";
      "../../../../test/corpus";
    ]

let test_corpus_replay () =
  match corpus_dir () with
  | None -> () (* corpus not visible from this cwd: skip silently *)
  | Some dir ->
      let entries = Corpus.load_dir dir in
      check "at least 5 committed reproducers" true
        (List.length entries >= 5);
      List.iter
        (fun (path, e) ->
          match e with
          | Error msg -> Alcotest.failf "%s: %s" path msg
          | Ok (e : Corpus.entry) -> (
              check (path ^ " checks") true (Tpal.Check.errors e.prog = []);
              (* chaos-oracle reproducers replay with the crash-schedule
                 battery switched on, so they guard the recovery layer *)
              let has_prefix p o =
                String.length o >= String.length p
                && String.sub o 0 (String.length p) = p
              in
              let cfg =
                if has_prefix "chaos-par" e.oracle then chaos_par_cfg
                else if has_prefix "chaos" e.oracle then chaos_cfg
                else quick_cfg
              in
              (* ~seed pins the chaos-par fault plan to the one the
                 reproducer was shrunk under *)
              match Diff.check ~cfg ~seed:e.seed e.prog ~outputs:e.outputs with
              | [] -> ()
              | ds ->
                  Alcotest.failf "%s (guards oracle %s): %s" path e.oracle
                    (pp_divs ds)))
        entries

let test_corpus_round_trip () =
  let g = Gen.generate ~seed:11 in
  let e =
    { Corpus.seed = 11; oracle = "eval-heart"; outputs = g.outputs;
      prog = g.prog }
  in
  match Corpus.load_string (Corpus.render e) with
  | Error msg -> Alcotest.failf "reload: %s" msg
  | Ok e' ->
      check_int "seed survives" e.seed e'.seed;
      Alcotest.(check string) "oracle survives" e.oracle e'.oracle;
      check "outputs survive" true (e.outputs = e'.outputs);
      check "program survives" true (Tpal.Ast.equal_program e.prog e'.prog)

let suite =
  ( "fuzz",
    [
      Alcotest.test_case "differential battery, 30 seeds" `Quick
        test_battery_quick;
      Alcotest.test_case "full battery, 5 seeds" `Quick test_battery_full_cfg;
      Alcotest.test_case "chaos battery, 10 seeds" `Quick test_battery_chaos;
      Alcotest.test_case "chaos-par battery, 15 seeds" `Quick
        test_battery_chaos_par;
      Alcotest.test_case "generator is seed-deterministic" `Quick
        test_generator_deterministic;
      QCheck_alcotest.to_alcotest prop_generated_valid;
      Alcotest.test_case "shrinker minimizes" `Quick test_shrinker_minimizes;
      Alcotest.test_case "shrinker respects predicate" `Quick
        test_shrinker_respects_predicate;
      Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
      Alcotest.test_case "corpus metadata round-trip" `Quick
        test_corpus_round_trip;
    ] )
