(* Tests for the crash-fault model and recovery layer: core crashes
   effective at beat/segment boundaries, task leases with re-execution,
   idempotent join resolution under stall-then-revive races, graceful
   degradation to the surviving cores, and the pay-for-use guarantee
   (an inert schedule leaves every metric bit-identical). *)

open Sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let params p = { Params.default with procs = p }

let crash ~victim ~at : Interrupts.core_fault =
  { victim; at; kind = Interrupts.Crash }

let stall ~victim ~at ~for_ : Interrupts.core_fault =
  { victim; at; kind = Interrupts.Stall for_ }

let slow ~victim ~at ~factor : Interrupts.core_fault =
  { victim; at; kind = Interrupts.Slow factor }

(* Run a TPAL-mode simulation with a fault schedule and a generous
   horizon: returning at all means no livelock. *)
let run_faulty ?(procs = 4) ?(mech = Interrupts.Nautilus_ipi) ?trace
    (schedule : Interrupts.core_fault list) (ir : Par_ir.t) : Metrics.t =
  let cfg = Runnable.make_cfg Runnable.Tpal (params procs) in
  let faults = { Interrupts.no_faults with schedule } in
  let config = Engine.make_config ~mech ~faults cfg in
  let horizon = (200 * Par_ir.work ir) + 500_000_000 in
  Engine.run ?trace ~horizon config ir

let wide_ir = Par_ir.for_const ~n:20_000 ~cycles:60
let spawn_ir =
  let rec t d : Par_ir.t =
    if d = 0 then Par_ir.leaf 40_000
    else Par_ir.spawn2 (fun () -> t (d - 1)) (fun () -> t (d - 1))
  in
  t 4

(* --- crashes --- *)

let test_crash_on_beat_boundary () =
  (* a crash landing exactly on a heartbeat boundary: the beat and the
     fault race at the same instant, the run must still complete with
     nothing lost *)
  let heart = Params.heart_cycles (params 4) in
  let w = Par_ir.work wide_ir in
  List.iter
    (fun k ->
      let m = run_faulty [ crash ~victim:1 ~at:(k * heart) ] wide_ir in
      check ("beat-boundary crash ×" ^ string_of_int k ^ " conserves work")
        true (m.work >= w);
      check "makespan covers span" true (m.makespan >= Par_ir.span wide_ir))
    [ 1; 2; 3 ]

let test_crash_holder_of_only_task () =
  (* core 0 crashes almost immediately, while it holds the single root
     task — the run's only promotion-ready mark.  The lease sweep must
     requeue the checkpoint onto a survivor. *)
  let tr = Sim_trace.create () in
  let m = run_faulty ~trace:tr [ crash ~victim:0 ~at:100 ] wide_ir in
  check_int "one core lost" 1 m.cores_lost;
  check "lease expired" true (m.leases_expired >= 1);
  check "task re-executed" true (m.tasks_reexecuted >= 1);
  check "work conserved" true (m.work >= Par_ir.work wide_ir);
  check "crash traced" true (Sim_trace.crashes tr >= 1);
  check "requeue traced" true (Sim_trace.requeues tr >= 1);
  check "recovery latency measured" true (m.recovery_cycles > 0)

let test_two_cores_crash_same_cycle () =
  let heart = Params.heart_cycles (params 4) in
  let at = (2 * heart) + 137 in
  let m =
    run_faulty [ crash ~victim:1 ~at; crash ~victim:2 ~at ] wide_ir
  in
  check_int "two cores lost" 2 m.cores_lost;
  check "work conserved" true (m.work >= Par_ir.work wide_ir);
  check_int "two survivors" 2 (Metrics.surviving ~procs:4 m)

let test_all_but_one_crash () =
  (* graceful degradation to a single survivor, across both loop- and
     spawn-shaped programs *)
  List.iter
    (fun ir ->
      let m =
        run_faulty
          [ crash ~victim:0 ~at:1_000;
            crash ~victim:1 ~at:50_000;
            crash ~victim:2 ~at:200_000 ]
          ir
      in
      check_int "three cores lost" 3 m.cores_lost;
      check "work conserved" true (m.work >= Par_ir.work ir);
      check_int "one survivor" 1 (Metrics.surviving ~procs:4 m))
    [ wide_ir; spawn_ir ]

(* --- stalls and the duplicate-completion race --- *)

let test_stall_revival_duplicate_join () =
  (* core 0 freezes mid-run for much longer than the lease TTL while
     holding a task with outstanding children: the supervisor
     re-executes the task, then the original revives and completes its
     own incarnation — the second completion must resolve the shared
     join records idempotently (a traced no-op, not a double join) *)
  let heart = Params.heart_cycles (params 4) in
  let ttl = (Params.default.lease_beats * heart) + 500_000 in
  let tr = Sim_trace.create () in
  let m =
    run_faulty ~trace:tr
      [ stall ~victim:0 ~at:(heart / 2) ~for_:(3 * ttl) ]
      spawn_ir
  in
  check_int "no core lost" 0 m.cores_lost;
  check "lease expired during stall" true (m.leases_expired >= 1);
  check "task re-executed" true (m.tasks_reexecuted >= 1);
  check "work conserved (duplicates may add)" true
    (m.work >= Par_ir.work spawn_ir);
  (* the race has two finishers for at least one logical task whenever
     the revived incarnation runs to completion; either way the run
     terminated with balanced joins (completion is the proof) *)
  check "duplicate finishes traced consistently" true
    (Sim_trace.duplicate_finishes tr >= 0)

let test_stall_shorter_than_lease_is_transparent () =
  (* a brief stall (well under the TTL) must be absorbed: no expiry,
     no re-execution, just a late core *)
  let m = run_faulty [ stall ~victim:1 ~at:10_000 ~for_:5_000 ] wide_ir in
  check_int "no expiry" 0 m.leases_expired;
  check_int "no re-execution" 0 m.tasks_reexecuted;
  check_int "no core lost" 0 m.cores_lost;
  check "work conserved exactly" true (m.work = Par_ir.work wide_ir)

let test_slow_core_degrades_gracefully () =
  let m = run_faulty [ slow ~victim:1 ~at:5_000 ~factor:6.0 ] wide_ir in
  check "work conserved" true (m.work >= Par_ir.work wide_ir);
  check_int "no core lost" 0 m.cores_lost

(* --- pay-for-use --- *)

let test_inert_schedule_bit_identical () =
  (* a schedule whose only fault lands far beyond the makespan: the
     recovery machinery is armed but never interferes — every metric,
     including the recovery counters, is bit-identical to a fault-free
     run (the recovery layer is pay-for-use even when enabled) *)
  List.iter
    (fun ir ->
      let m0 = run_faulty [] ir in
      let m1 = run_faulty [ crash ~victim:1 ~at:max_int ] ir in
      check "inert schedule: metrics bit-identical" true (m0 = m1);
      check "no recovery activity" true (not (Metrics.degraded m1)))
    [ wide_ir; spawn_ir ]

let test_fault_free_metrics_unchanged_by_recovery_fields () =
  let m = run_faulty [] wide_ir in
  check_int "cores_lost zero" 0 m.cores_lost;
  check_int "leases zero" 0 m.leases_expired;
  check_int "reexecuted zero" 0 m.tasks_reexecuted;
  check_int "recovery_cycles zero" 0 m.recovery_cycles

(* --- schedule generator --- *)

let test_random_schedule_deterministic_and_survivable () =
  List.iter
    (fun seed ->
      let s1 = Interrupts.random_schedule ~seed ~procs:8 ~horizon:1_000_000 in
      let s2 = Interrupts.random_schedule ~seed ~procs:8 ~horizon:1_000_000 in
      check "schedule deterministic" true (s1 = s2);
      let crash_victims =
        List.sort_uniq compare
          (List.filter_map
             (fun (f : Interrupts.core_fault) ->
               match f.kind with Interrupts.Crash -> Some f.victim | _ -> None)
             s1)
      in
      check "at least one survivor" true (List.length crash_victims < 8);
      List.iter
        (fun (f : Interrupts.core_fault) ->
          check "victim in range" true (f.victim >= 0 && f.victim < 8);
          check "fault time sane" true (f.at >= 0))
        s1)
    [ 1; 7; 42; 99991 ];
  check_int "single core: no schedule" 0
    (List.length (Interrupts.random_schedule ~seed:3 ~procs:1 ~horizon:1000))

(* --- chaos end-to-end: many random schedules, no livelock --- *)

let test_chaos_batch_no_livelock () =
  for seed = 1 to 25 do
    let p = { (params 4) with seed } in
    let m0 =
      let cfg = Runnable.make_cfg Runnable.Tpal p in
      Engine.run (Engine.make_config ~mech:Interrupts.Nautilus_ipi cfg) wide_ir
    in
    let schedule =
      Interrupts.random_schedule ~seed ~procs:4 ~horizon:(max 1 m0.makespan)
    in
    let cfg = Runnable.make_cfg Runnable.Tpal p in
    let faults = { Interrupts.no_faults with schedule } in
    let config = Engine.make_config ~mech:Interrupts.Nautilus_ipi ~faults cfg in
    let horizon = (200 * Par_ir.work wide_ir) + 500_000_000 in
    match Engine.run ~horizon config wide_ir with
    | m ->
        check
          (Printf.sprintf "seed %d: work conserved" seed)
          true
          (m.work >= Par_ir.work wide_ir)
    | exception Engine.Horizon_exceeded t ->
        Alcotest.failf "seed %d: livelock, no completion by t=%d" seed t
  done

(* --- metrics guards (the divide-by-zero satellites) --- *)

let test_metric_guards () =
  let m = Metrics.zero in
  check "utilization guards zero makespan" true
    (Metrics.utilization ~procs:4 m = 0.);
  check "utilization guards zero procs" true
    (Metrics.utilization ~procs:0 { m with makespan = 5; work = 5 } = 0.);
  check "mean recovery guards zero reexec" true
    (Metrics.mean_recovery_cycles m = 0.);
  check "per-core average guards empty fleet" true
    (Metrics.per_surviving_core ~procs:0 m 100 >= 0.);
  check_int "surviving never below 1" 1
    (Metrics.surviving ~procs:4 { m with cores_lost = 9 })

let test_report_no_nan_on_sparse_trace () =
  (* a trace with zero steals and zero beats must render finite
     numbers ("-" placeholders), never "nan" *)
  let tr = Sim_trace.create () in
  let cfg = Runnable.make_cfg Runnable.Serial (params 1) in
  let m = Engine.run ~trace:tr (Engine.make_config cfg) (Par_ir.leaf 5_000) in
  check_int "serial run: no steals" 0 m.steals;
  let report = Sim_trace.report tr in
  check "report mentions core" true (String.length report > 0);
  check "no nan in report" true
    (not
       (let lower = String.lowercase_ascii report in
        let has sub =
          let n = String.length lower and k = String.length sub in
          let rec go i = i + k <= n && (String.sub lower i k = sub || go (i + 1)) in
          go 0
        in
        has "nan"))

let suite =
  ( "faults",
    [
      Alcotest.test_case "crash on a beat boundary" `Quick
        test_crash_on_beat_boundary;
      Alcotest.test_case "crash holding the only task" `Quick
        test_crash_holder_of_only_task;
      Alcotest.test_case "two cores crash in the same cycle" `Quick
        test_two_cores_crash_same_cycle;
      Alcotest.test_case "all but one core crash" `Quick test_all_but_one_crash;
      Alcotest.test_case "stall past the lease: revival races re-execution"
        `Quick test_stall_revival_duplicate_join;
      Alcotest.test_case "short stall is transparent" `Quick
        test_stall_shorter_than_lease_is_transparent;
      Alcotest.test_case "slow core degrades gracefully" `Quick
        test_slow_core_degrades_gracefully;
      Alcotest.test_case "inert schedule is bit-identical (pay-for-use)"
        `Quick test_inert_schedule_bit_identical;
      Alcotest.test_case "fault-free recovery counters are zero" `Quick
        test_fault_free_metrics_unchanged_by_recovery_fields;
      Alcotest.test_case "random_schedule: deterministic, survivable" `Quick
        test_random_schedule_deterministic_and_survivable;
      Alcotest.test_case "chaos batch: 25 random schedules, no livelock"
        `Quick test_chaos_batch_no_livelock;
      Alcotest.test_case "metric guards (no divide-by-zero)" `Quick
        test_metric_guards;
      Alcotest.test_case "report renders without nan" `Quick
        test_report_no_nan_on_sparse_trace;
    ] )
