(* The observability subsystem (lib/obs): ring-buffer drop accounting,
   the event codec, latency histograms, and the what-if profiler's
   reconciliation against the evaluator's own cost semantics — plus
   the event-stream invariants of the REAL runtime: every worker's
   Task_start/Task_finish events strictly alternate, a steal never
   names the thief as its own victim, and a raising user callback
   cannot kill a worker domain. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Ring: fixed-capacity, drop-oldest, single-writer. *)

let test_ring_basics () =
  let r = Obs.Ring.create ~capacity:16 () in
  check_int "capacity" 16 (Obs.Ring.capacity r);
  check_int "fresh length" 0 (Obs.Ring.length r);
  for i = 0 to 9 do
    Obs.Ring.emit r ~code:1 ~at_ns:(100 * i) ~a:i ~b:(-i)
  done;
  check_int "written" 10 (Obs.Ring.written r);
  check_int "length" 10 (Obs.Ring.length r);
  check_int "no drops" 0 (Obs.Ring.dropped r);
  let seen = ref [] in
  Obs.Ring.iter r ~f:(fun ~code ~at_ns ~a ~b ->
      seen := (code, at_ns, a, b) :: !seen);
  let seen = List.rev !seen in
  check_int "iter count" 10 (List.length seen);
  List.iteri
    (fun i (code, at_ns, a, b) ->
      check_int "code" 1 code;
      check_int "timestamp order" (100 * i) at_ns;
      check_int "payload a" i a;
      check_int "payload b" (-i) b)
    seen

let test_ring_overflow () =
  let r = Obs.Ring.create ~capacity:16 () in
  for i = 0 to 99 do
    Obs.Ring.emit r ~code:2 ~at_ns:i ~a:i ~b:0
  done;
  (* written = length + dropped, always *)
  check_int "written" 100 (Obs.Ring.written r);
  check_int "length is capacity" 16 (Obs.Ring.length r);
  check_int "dropped" 84 (Obs.Ring.dropped r);
  (* the retained window is the newest [capacity] events, oldest
     first *)
  let seen = ref [] in
  Obs.Ring.iter r ~f:(fun ~code:_ ~at_ns:_ ~a ~b:_ -> seen := a :: !seen);
  let seen = List.rev !seen in
  check "drop-oldest window" true (seen = List.init 16 (fun i -> 84 + i))

let test_ring_capacity_rounding () =
  (* capacities round up to a power of two, floor 16 *)
  check_int "floor" 16 (Obs.Ring.capacity (Obs.Ring.create ~capacity:3 ()));
  check_int "round up" 32 (Obs.Ring.capacity (Obs.Ring.create ~capacity:17 ()))

(* ------------------------------------------------------------------ *)
(* Event codec: every variant survives the 3-int ring encoding. *)

let test_event_roundtrip () =
  let cases : Obs.Event.t list =
    [
      Beat;
      Promote { kind = `Loop };
      Promote { kind = `Branch };
      Steal { ok = true; victim = 3 };
      Steal { ok = false; victim = 0 };
      Join_suspend;
      Join_resume;
      Task_start { region = 7 };
      Task_finish { region = 7 };
      Nap { ns = 123_456 };
      Callback_error;
      Admit { tenant = 2 };
      Reject { shed = true };
      Reject { shed = false };
      Dispatch { tenant = 1; urgency = 4 };
      Complete { tenant = 5; outcome = `Met; sojourn_ns = 42 };
      Complete { tenant = 5; outcome = `Missed; sojourn_ns = 42 };
      Complete { tenant = 5; outcome = `Failed; sojourn_ns = 42 };
      Complete { tenant = 5; outcome = `Cancelled; sojourn_ns = 42 };
      Degraded { on = true };
      Degraded { on = false };
      Chaos { kind = `Stall; arg = 3 };
      Chaos { kind = `Slow; arg = 8 };
      Chaos { kind = `Drop; arg = 1 };
      Chaos { kind = `Raise; arg = 0 };
      Cancel { reason = `Explicit };
      Cancel { reason = `Deadline };
      Cancel { reason = `Lease };
      Retry { tenant = 3; attempt = 2 };
      Restart { attempt = 1 };
      Conn { up = true };
      Conn { up = false };
      Frame { rx = true; kind = 3; bytes = 96 };
      Frame { rx = false; kind = 5; bytes = 28 };
      Route { shard = 2; size = 16 };
      Batch { n = 8; wait_us = 150 };
      Drain { pending = 12 };
    ]
  in
  List.iter
    (fun e ->
      let code, a, b = Obs.Event.encode e in
      match Obs.Event.decode ~code ~a ~b with
      | Some e' ->
          check (Obs.Event.name e ^ " roundtrips") true (e = e')
      | None -> Alcotest.failf "decode failed for %s" (Obs.Event.name e))
    cases;
  check "unknown code decodes to None" true
    (Obs.Event.decode ~code:9999 ~a:0 ~b:0 = None)

(* ------------------------------------------------------------------ *)
(* Histograms: log2 buckets, interpolated percentiles. *)

let test_hist_percentiles () =
  let h = Obs.Hist.create () in
  for i = 1 to 1000 do
    Obs.Hist.add_ns h (i * 1000)
  done;
  check_int "count" 1000 (Obs.Hist.count h);
  let p50 = Obs.Hist.percentile_ns h 50. in
  let p95 = Obs.Hist.percentile_ns h 95. in
  let p99 = Obs.Hist.percentile_ns h 99. in
  check "p50 <= p95" true (p50 <= p95);
  check "p95 <= p99" true (p95 <= p99);
  check "p99 <= max" true (p99 <= 1_000_000.);
  check "p50 in range" true (p50 >= 1000. && p50 <= 1_000_000.);
  (* log2 buckets: the interpolated p50 of a uniform 1..1000 us stream
     is within a bucket (factor 2) of the true median *)
  check "p50 near median" true (p50 > 250_000. && p50 < 1_000_000.);
  let s = Obs.Hist.summary h in
  check "summary count" true (s.count = 1000);
  check "summary ordering" true
    (s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms && s.p99_ms <= s.max_ms);
  check "summary json valid" true
    (Suite_stats.json_is_valid (Obs.Hist.summary_json s))

let test_hist_empty_and_merge () =
  let e = Obs.Hist.summary (Obs.Hist.create ()) in
  check_int "empty count" 0 e.count;
  check "empty json valid (NaN clamped)" true
    (Suite_stats.json_is_valid (Obs.Hist.summary_json e));
  let a = Obs.Hist.create () and b = Obs.Hist.create () in
  Obs.Hist.add_s a 0.001;
  Obs.Hist.add_s b 0.004;
  Obs.Hist.merge_into ~into:a b;
  check_int "merged count" 2 (Obs.Hist.count a)

(* ------------------------------------------------------------------ *)
(* Labels and trace-level drop accounting. *)

let test_labels () =
  let l = Obs.Labels.create () in
  let a = Obs.Labels.intern l "alpha" in
  let b = Obs.Labels.intern l "beta" in
  check "distinct ids" true (a <> b);
  check_int "intern is idempotent" a (Obs.Labels.intern l "alpha");
  check_string "name roundtrip" "beta" (Obs.Labels.name l b);
  check_string "unknown id" "?99" (Obs.Labels.name l 99)

let test_trace_drop_accounting () =
  let tr = Obs.Trace.create ~capacity:16 () in
  let ring = Obs.Trace.track tr "w" in
  for _ = 1 to 100 do
    Obs.Trace.emit tr ring Obs.Event.Beat
  done;
  check_int "total written" 100 (Obs.Trace.total_written tr);
  check_int "total dropped" 84 (Obs.Trace.total_dropped tr);
  match Obs.Trace.events tr with
  | [ (name, evs) ] ->
      check_string "track name" "w" name;
      check_int "retained events" 16 (List.length evs)
  | tracks -> Alcotest.failf "expected 1 track, got %d" (List.length tracks)

(* ------------------------------------------------------------------ *)
(* Real-runtime event-stream invariants.  The kernel below forks both
   ways the runtime promotes: a par_for (loop promotion) and a fork2
   tree (branch promotion + joins across domains). *)

let kernel () : int =
  let n = 100_000 in
  let a = Array.make n 0 in
  Par.Runtime.Exec.par_for ~lo:0 ~hi:n (fun i -> a.(i) <- (i * 7) land 1023);
  let rec fib k =
    if k < 2 then k
    else begin
      let x = ref 0 and y = ref 0 in
      Par.Runtime.Exec.fork2
        (fun () -> x := fib (k - 1))
        (fun () -> y := fib (k - 2));
      !x + !y
    end
  in
  Array.fold_left ( + ) 0 a + fib 16

let serial_kernel () : int =
  let n = 100_000 in
  let a = Array.make n 0 in
  for i = 0 to n - 1 do
    a.(i) <- (i * 7) land 1023
  done;
  let rec fib k = if k < 2 then k else fib (k - 1) + fib (k - 2) in
  Array.fold_left ( + ) 0 a + fib 16

let test_on_event_invariants () =
  let domains = 4 in
  (* each slot is appended to only by its own worker domain *)
  let evs = Array.init domains (fun _ -> ref []) in
  let config =
    {
      Par.Runtime.default_config with
      domains;
      heart_us = 30.;
      source = `Polling;
      on_event =
        Some (fun ~worker ev -> evs.(worker) := ev :: !(evs.(worker)));
    }
  in
  let sum, (st : Par.Runtime.stats) = Par.Runtime.run ~config kernel in
  check_int "checksum" (serial_kernel ()) sum;
  check "beats observed" true (st.total.beats > 0);
  Array.iteri
    (fun w events ->
      let events = List.rev !events in
      let depth = ref 0 in
      List.iter
        (fun (ev : Par.Runtime.event) ->
          match ev with
          | Task_start ->
              incr depth;
              (* run_task never nests on one worker: suspension ends
                 the bracket, resumption opens a fresh one *)
              check "starts do not nest" true (!depth = 1)
          | Task_finish ->
              decr depth;
              check "finish matches a start" true (!depth >= 0)
          | Steal { victim } | Steal_fail { victim } ->
              check "victim is not the thief" true (victim <> w);
              check "victim in range" true (victim >= 0 && victim < domains)
          | Nap { ns } -> check "nap duration positive" true (ns > 0)
          | _ -> ())
        events;
      check_int
        (Printf.sprintf "worker %d start/finish balance" w)
        0 !depth)
    evs

let test_ring_invariants_and_export () =
  let domains = 4 in
  let tr = Obs.Trace.create () in
  let config =
    {
      Par.Runtime.default_config with
      domains;
      heart_us = 30.;
      source = `Polling;
      tracer = Some tr;
    }
  in
  let sum, (st : Par.Runtime.stats) = Par.Runtime.run ~config kernel in
  check_int "checksum" (serial_kernel ()) sum;
  let tracks = Obs.Trace.events tr in
  check_int "one track per worker" domains (List.length tracks);
  List.iteri
    (fun w (name, events) ->
      check_string "track name" (Printf.sprintf "worker %d" w) name;
      let depth = ref 0 and beats = ref 0 and last_ts = ref 0 in
      List.iter
        (fun ((at_ns, ev) : int * Obs.Event.t) ->
          check "timestamps monotone per ring" true (at_ns >= !last_ts);
          last_ts := at_ns;
          match ev with
          | Beat -> incr beats
          | Task_start { region } ->
              incr depth;
              check "region label resolves" true
                (Obs.Trace.label tr region <> Printf.sprintf "?%d" region)
          | Task_finish _ -> decr depth
          | Steal { victim; _ } ->
              check "ring steal victim is not the thief" true (victim <> w)
          | _ -> ())
        events;
      check_int
        (Printf.sprintf "worker %d ring start/finish balance" w)
        0 !depth;
      ignore !beats)
    tracks;
  check "rings saw the whole stream" true (Obs.Trace.total_dropped tr = 0);
  (* the metrics fold sees the same session *)
  let m = Par.Runtime.metrics ~tracer:tr st in
  check_int "metrics domains" domains m.domains;
  check "metrics beats" true (m.beats > 0);
  check "metrics traced" true (m.traced = Obs.Trace.total_written tr);
  check "metrics json valid" true
    (Suite_stats.json_is_valid (Obs.Metrics.to_json m));
  (* and the Chrome export is loadable: valid JSON naming every worker
     track and the heartbeat events *)
  let json = Obs.Export.to_chrome_string tr in
  check "chrome export is valid JSON" true (Suite_stats.json_is_valid json);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  for w = 0 to domains - 1 do
    check
      (Printf.sprintf "export names worker %d" w)
      true
      (contains json (Printf.sprintf "worker %d" w))
  done;
  check "export has beat instants" true (contains json "\"beat\"")

let test_with_region () =
  let tr = Obs.Trace.create () in
  let config =
    {
      Par.Runtime.default_config with
      domains = 2;
      heart_us = 20.;
      source = `Polling;
      tracer = Some tr;
    }
  in
  let sum, (st : Par.Runtime.stats) =
    Par.Runtime.run ~config (fun () ->
        Par.Runtime.with_region "phase-a" (fun () ->
            let n = 400_000 in
            let a = Array.make n 0 in
            Par.Runtime.Exec.par_for ~lo:0 ~hi:n (fun i ->
                a.(i) <- (i * 3) land 255);
            Array.fold_left ( + ) 0 a))
  in
  check "kernel ran" true (sum > 0);
  check "promotions happened" true (st.total.promotions > 0);
  (* tasks promoted inside the region carry its label into the rings *)
  let labelled = ref false in
  List.iter
    (fun (_, events) ->
      List.iter
        (fun ((_, ev) : int * Obs.Event.t) ->
          match ev with
          | Task_start { region } ->
              if Obs.Trace.label tr region = "phase-a" then labelled := true
          | _ -> ())
        events)
    (Obs.Trace.events tr);
  check "a promoted task carries the region label" true !labelled

let test_callback_error_containment () =
  (* a user callback that raises on every beat must not kill the
     worker domain or corrupt the run: the error is counted and the
     checksum still agrees *)
  let config =
    {
      Par.Runtime.default_config with
      domains = 2;
      heart_us = 30.;
      source = `Polling;
      on_event =
        Some
          (fun ~worker:_ ev ->
            match (ev : Par.Runtime.event) with
            | Beat -> failwith "observer bug"
            | _ -> ());
    }
  in
  let sum, (st : Par.Runtime.stats) = Par.Runtime.run ~config kernel in
  check_int "checksum despite raising callback" (serial_kernel ()) sum;
  check "errors were counted" true (st.total.callback_errors > 0);
  check "errors surface in metrics" true
    ((Par.Runtime.metrics st).callback_errors > 0)

let test_tiny_rings_under_load () =
  (* tiny rings under a real multi-domain run: drops must be accounted,
     never crash, and the retained tail must still decode *)
  let tr = Obs.Trace.create ~capacity:16 () in
  let config =
    {
      Par.Runtime.default_config with
      domains = 4;
      heart_us = 20.;
      source = `Polling;
      tracer = Some tr;
    }
  in
  let sum, _ = Par.Runtime.run ~config kernel in
  check_int "checksum" (serial_kernel ()) sum;
  check "events were dropped" true (Obs.Trace.total_dropped tr > 0);
  let retained =
    List.fold_left
      (fun acc (_, evs) -> acc + List.length evs)
      0 (Obs.Trace.events tr)
  in
  check_int "written = retained + dropped"
    (Obs.Trace.total_written tr)
    (retained + Obs.Trace.total_dropped tr);
  check "retained window fits the rings" true (retained <= 4 * 16)

(* ------------------------------------------------------------------ *)
(* The what-if profiler, source 1: reconciliation against the
   evaluator's own Figure-28 cost summary on fuzz-generated programs —
   the profiler rebuilds the series-parallel derivation from the hook
   stream, so its totals must equal Eval's to the instruction, and the
   per-region maps must partition them exactly. *)

let profile_reconciles ~(seed : int) () =
  let gen = Fuzz.Gen.generate ~seed in
  match Obs.Profile.of_eval gen.prog with
  | Error e ->
      Alcotest.failf "seed %d: machine error %s" seed
        (Format.asprintf "%a" Tpal.Machine_error.pp e)
  | Ok (prof, fin) ->
      check_int "work reconciles" fin.cost.work prof.total_work;
      check_int "span reconciles" fin.cost.span prof.total_span;
      check_int "forks reconcile" fin.cost.forks prof.forks;
      let sum_work =
        List.fold_left (fun acc (r : Obs.Profile.region) -> acc + r.work) 0
          prof.regions
      in
      let sum_span =
        List.fold_left (fun acc (r : Obs.Profile.region) -> acc + r.span) 0
          prof.regions
      in
      check_int "regions partition work" prof.total_work sum_work;
      check_int "regions partition span" prof.total_span sum_span;
      check "work >= span" true (prof.total_work >= prof.total_span)

let test_profile_reconciliation () =
  (* a spread of fuzz seeds: straight-line, forking and blocking
     programs all reconcile *)
  List.iter (fun seed -> profile_reconciles ~seed ()) [ 1; 7; 42; 1337; 9001 ]

let test_profile_what_if () =
  let gen = Fuzz.Gen.generate ~seed:42 in
  match Obs.Profile.of_eval gen.prog with
  | Error _ -> Alcotest.fail "seed 42 should evaluate"
  | Ok (prof, _) ->
      (* factor 1 changes nothing *)
      List.iter
        (fun (pr : Obs.Profile.prediction) ->
          check "factor 1 is identity" true
            (abs_float (pr.predicted_speedup -. 1.) < 1e-9))
        (Obs.Profile.rank ~factor:1. prof);
      (* shrinking a span can only help, and the ranking is sorted *)
      let preds = Obs.Profile.rank ~factor:8. prof in
      let prev = ref infinity in
      List.iter
        (fun (pr : Obs.Profile.prediction) ->
          check "speedup >= 1" true (pr.predicted_speedup >= 1. -. 1e-9);
          check "ranked descending" true (pr.predicted_speedup <= !prev);
          check "span' <= span total" true
            (pr.predicted_span <= prof.total_span);
          prev := pr.predicted_speedup)
        preds;
      (* finite processors dilute the speedup: Brent's W/P term is
         unaffected by the what-if *)
      (match (Obs.Profile.rank ~factor:8. ~procs:2 prof, preds) with
      | p2 :: _, pinf :: _ ->
          check "P=2 speedup <= P=inf speedup" true
            (p2.predicted_speedup <= pinf.predicted_speedup +. 1e-9)
      | _ -> ());
      check "unknown region" true
        (Obs.Profile.what_if ~factor:8. prof "no-such-region" = None);
      check "report renders" true
        (String.length (Obs.Profile.report ~top:3 prof) > 0)

(* ------------------------------------------------------------------ *)
(* The what-if profiler, source 2: serialized-time attribution over a
   hand-built trace with known intervals.

     worker 0:  A [1000, 2000)   B [2000, 3000)
     worker 1:  A [1500, 2500)

   Work: A = 2000, B = 1000.  Serialized span: [1000,1500) only w0's A
   runs (A +500); [1500,2500) two tasks overlap (nobody); [2500,3000)
   only B runs (B +500).  Makespan 2000. *)

let test_profile_of_trace () =
  let tr = Obs.Trace.create ~capacity:64 () in
  let w0 = Obs.Trace.track tr "worker 0" in
  let w1 = Obs.Trace.track tr "worker 1" in
  let ra = Obs.Trace.intern tr "A" and rb = Obs.Trace.intern tr "B" in
  let emit ring ~at_ns e =
    let code, a, b = Obs.Event.encode e in
    Obs.Ring.emit ring ~code ~at_ns ~a ~b
  in
  emit w0 ~at_ns:1000 (Task_start { region = ra });
  emit w0 ~at_ns:2000 (Task_finish { region = ra });
  emit w0 ~at_ns:2000 (Task_start { region = rb });
  emit w0 ~at_ns:3000 (Task_finish { region = rb });
  emit w1 ~at_ns:1500 (Task_start { region = ra });
  emit w1 ~at_ns:2500 (Task_finish { region = ra });
  let prof = Obs.Profile.of_trace tr in
  check_string "source" "trace" prof.source;
  check_int "total work" 3000 prof.total_work;
  check_int "makespan" 2000 prof.total_span;
  let find name =
    List.find (fun (r : Obs.Profile.region) -> r.name = name) prof.regions
  in
  let a = find "A" and b = find "B" in
  check_int "A work" 2000 a.work;
  check_int "B work" 1000 b.work;
  check_int "A serialized span" 500 a.span;
  check_int "B serialized span" 500 b.span

(* ------------------------------------------------------------------ *)

let suite =
  ( "obs",
    [
      Alcotest.test_case "ring basics" `Quick test_ring_basics;
      Alcotest.test_case "ring overflow drops oldest" `Quick
        test_ring_overflow;
      Alcotest.test_case "ring capacity rounding" `Quick
        test_ring_capacity_rounding;
      Alcotest.test_case "event codec roundtrip" `Quick test_event_roundtrip;
      Alcotest.test_case "hist percentiles" `Quick test_hist_percentiles;
      Alcotest.test_case "hist empty and merge" `Quick
        test_hist_empty_and_merge;
      Alcotest.test_case "label interning" `Quick test_labels;
      Alcotest.test_case "trace drop accounting" `Quick
        test_trace_drop_accounting;
      Alcotest.test_case "runtime event invariants (callback)" `Quick
        test_on_event_invariants;
      Alcotest.test_case "runtime ring invariants and export" `Quick
        test_ring_invariants_and_export;
      Alcotest.test_case "with_region labels promoted tasks" `Quick
        test_with_region;
      Alcotest.test_case "raising callback is contained" `Quick
        test_callback_error_containment;
      Alcotest.test_case "tiny rings under load" `Quick
        test_tiny_rings_under_load;
      Alcotest.test_case "profile reconciles with eval cost" `Quick
        test_profile_reconciliation;
      Alcotest.test_case "profile what-if predictions" `Quick
        test_profile_what_if;
      Alcotest.test_case "profile from trace intervals" `Quick
        test_profile_of_trace;
    ] )
