(* Tests for rollforward compilation (§3.2) and the reduced block
   style of Appendix D.5. *)

open Tpal

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let opts heart = { Eval.default_options with heart; fuel = 5_000_000 }

let rf = Rollforward.transform Programs.prod

let test_two_versions_present () =
  check_int "block count doubles"
    (2 * List.length Programs.prod.blocks)
    (List.length rf.program.blocks);
  check_int "map covers every block"
    (List.length Programs.prod.blocks)
    (List.length rf.map);
  List.iter
    (fun (o, r) ->
      check "original exists" true (List.mem_assoc o rf.program.blocks);
      check "rollforward exists" true (List.mem_assoc r rf.program.blocks))
    rf.map

let test_versions_align () =
  (* "the original and rollforward instructions align perfectly up to
     instruction labels": same instruction counts and terminator
     kinds *)
  List.iter
    (fun (o, r) ->
      let bo = List.assoc o rf.program.blocks in
      let br = List.assoc r rf.program.blocks in
      check_int (o ^ " body length") (List.length bo.body)
        (List.length br.body);
      check (o ^ " terminator kind") true
        (match (bo.term, br.term) with
        | Ast.Jump _, Ast.Jump _ -> true
        | Ast.Halt, Ast.Halt -> true
        | Ast.Join _, Ast.Join _ -> true
        | _ -> false))
    rf.map

let test_rollforward_jumps_to_handlers () =
  (* rf$prod ends with `jump loop`; loop is promotion-ready, so the
     rollforward copy must jump to loop's handler instead *)
  let b = List.assoc "rf$prod" rf.program.blocks in
  check "redirected to handler" true
    (b.term = Ast.Jump (Ast.Lab "loop-try-promote"));
  (* non-prppt targets go to their rollforward copies *)
  let h = List.assoc "rf$loop-try-promote" rf.program.blocks in
  check "plain targets keep rolling" true
    (h.term = Ast.Jump (Ast.Lab "rf$loop-promote"))

let test_original_behaviour_unchanged () =
  (* the combined program entered at the original entry behaves
     exactly like the input *)
  match
    Eval.run_seeded ~options:(opts (Some 20)) rf.program
      [ ("a", Value.Vint 50); ("b", Value.Vint 3) ]
  with
  | Ok fin ->
      check "result" true
        (Regfile.find_opt "c" fin.task.regs = Some (Value.Vint 150))
  | Error e -> Alcotest.failf "combined program: %s" (Machine_error.show e)

let test_rollforward_triggers_promotion_without_beats () =
  (* entering the rollforward version with the heartbeat OFF must
     still reach a promotion handler at the next promotion-ready
     point — the whole point of the transformation *)
  let p = { rf.program with entry = "rf$prod" } in
  match
    Eval.run_seeded ~options:(opts None) p
      [ ("a", Value.Vint 40); ("b", Value.Vint 5) ]
  with
  | Ok fin ->
      check "correct result through handler path" true
        (Regfile.find_opt "c" fin.task.regs = Some (Value.Vint 200));
      check "a promotion fork happened with beats off" true
        (fin.stats.forks >= 1)
  | Error e -> Alcotest.failf "rollforward entry: %s" (Machine_error.show e)

let test_redirect_preserves_offset () =
  (* simulate a signal landing mid-block: redirect swaps the pc into
     the rollforward version at the same offset *)
  let task0 = Result.get_ok (Task.initial rf.program) in
  let task0 =
    { task0 with
      regs = Regfile.of_list [ ("a", Value.Vint 9); ("b", Value.Vint 2) ] }
  in
  (* step once into prod (offset 1 of 1-instruction body) *)
  let stepped =
    match Step.step task0 with
    | Ok (Step.Stepped t) -> t
    | _ -> Alcotest.fail "expected step"
  in
  let redirected = Result.get_ok (Rollforward.redirect rf stepped) in
  check_int "offset preserved" stepped.pc.offset redirected.pc.offset;
  Alcotest.(check string) "label swapped" "rf$prod" redirected.pc.label;
  (* resuming from the redirected counter completes correctly and
     promotes at the next promotion-ready point *)
  match Eval.run_task ~options:(opts None) Join.empty redirected with
  | Ok fin ->
      check "redirect resumes correctly" true
        (Regfile.find_opt "c" fin.task.regs = Some (Value.Vint 18));
      check "promotion forced" true (fin.stats.forks >= 1)
  | Error e -> Alcotest.failf "resume: %s" (Machine_error.show e)

let test_redirect_outside_map_is_identity () =
  let task0 = Result.get_ok (Task.initial rf.program) in
  let t = { task0 with pc = Task.pc "rf$loop" 0 } in
  let r = Result.get_ok (Rollforward.redirect rf t) in
  Alcotest.(check string) "unchanged" "rf$loop" r.pc.label

let prop_rollforward_preserves_results =
  QCheck.Test.make
    ~name:"rollforward entry computes the same products" ~count:40
    QCheck.(pair (int_bound 100) (int_bound 30))
    (fun (a, b) ->
      let p = { rf.program with entry = "rf$prod" } in
      match
        Eval.run_seeded ~options:(opts None) p
          [ ("a", Value.Vint a); ("b", Value.Vint b) ]
      with
      | Ok fin -> Regfile.find_opt "c" fin.task.regs = Some (Value.Vint (a * b))
      | Error _ -> false)

(* --- signal-timing edge cases --- *)

(* drive a task until its pc first reaches [target] *)
let rec step_until (task : Task.t) (target : Task.pc) (fuel : int) : Task.t =
  if fuel <= 0 then Alcotest.fail "step_until: target pc never reached"
  else if Task.equal_pc task.pc target then task
  else
    match Step.step task with
    | Ok (Step.Stepped t) -> step_until t target (fuel - 1)
    | Ok _ -> Alcotest.fail "step_until: unexpected machine request"
    | Error e -> Alcotest.failf "step_until: %s" (Machine_error.show e)

let seeded_task regs =
  let task0 = Result.get_ok (Task.initial rf.program) in
  { task0 with regs = Regfile.of_list regs }

let test_beat_exactly_on_prppt () =
  (* the signal lands when the pc is exactly at a promotion-ready
     point (offset 0 of the prppt block).  redirect must land on the
     rollforward copy — whose prppt annotation is dropped, promotion
     now being explicit in its control flow — and resuming must still
     divert into the handler and produce the right answer *)
  let t =
    step_until
      (seeded_task [ ("a", Value.Vint 10); ("b", Value.Vint 3) ])
      (Task.pc "loop" 0) 100
  in
  let r = Result.get_ok (Rollforward.redirect rf t) in
  Alcotest.(check string) "label swapped" "rf$loop" r.pc.label;
  check_int "offset still 0" 0 r.pc.offset;
  (match Heap.find_opt "rf$loop" r.heap with
  | Some b -> check "prppt annotation dropped" true (b.annot = Ast.Plain)
  | None -> Alcotest.fail "rf$loop missing");
  match Eval.run_task ~options:(opts None) Join.empty r with
  | Ok fin ->
      check "result" true
        (Regfile.find_opt "c" fin.task.regs = Some (Value.Vint 30));
      check "promotion forced with beats off" true (fin.stats.forks >= 1)
  | Error e -> Alcotest.failf "resume: %s" (Machine_error.show e)

let test_back_to_back_beats_one_block () =
  (* two beats land inside the same block before a promotion-ready
     point is reached.  the first redirect moves the pc into the
     rollforward version; the second must be the identity (the pc is
     already outside the mapped region), so the task rolls forward
     exactly once and still completes correctly *)
  let t =
    step_until
      (seeded_task [ ("a", Value.Vint 10); ("b", Value.Vint 3) ])
      (Task.pc "loop" 2) 100
  in
  let once = Result.get_ok (Rollforward.redirect rf t) in
  Alcotest.(check string) "first beat redirects" "rf$loop" once.pc.label;
  check_int "offset preserved mid-block" 2 once.pc.offset;
  let twice = Result.get_ok (Rollforward.redirect rf once) in
  check "second beat is a no-op" true (Task.equal_pc once.pc twice.pc);
  check "residual code unchanged" true
    (List.length once.code.rest = List.length twice.code.rest);
  match Eval.run_task ~options:(opts None) Join.empty twice with
  | Ok fin ->
      check "result" true
        (Regfile.find_opt "c" fin.task.regs = Some (Value.Vint 30));
      check "still exactly one diversion path" true (fin.stats.forks >= 1)
  | Error e -> Alcotest.failf "resume: %s" (Machine_error.show e)

let test_beat_during_join_resolution () =
  (* the signal lands while the task is running a combine block, i.e.
     mid join-resolution.  combine blocks are ordinary mapped blocks:
     redirect swaps to rf$comb, whose join terminator must resolve
     against the same record (join resolution is scheduler-level and
     shared between the two versions) *)
  let comb = List.assoc "rf$comb" rf.program.blocks in
  check "join terminator kept" true (comb.term = Ast.Join "jr");
  (match (List.assoc "rf$exit" rf.program.blocks).annot with
  | Ast.Jtppt (_, _, l) ->
      Alcotest.(check string) "join-target annotation shared" "comb" l
  | _ -> Alcotest.fail "rf$exit lost its join-target annotation");
  (* a closed record for jr whose continuation is the exit block: the
     state mid join-resolution after both sides of a fork finished *)
  let id, joins = Join.alloc "exit" Join.empty in
  let heap = Heap.of_program rf.program in
  let t =
    Task.enter "comb"
      (List.assoc "comb" rf.program.blocks)
      ~cycles:3 ~heap
      ~regs:
        (Regfile.of_list
           [ ("r", Value.Vint 5); ("r2", Value.Vint 7);
             ("jr", Value.Vjoin id) ])
  in
  let r = Result.get_ok (Rollforward.redirect rf t) in
  Alcotest.(check string) "redirected into rf$comb" "rf$comb" r.pc.label;
  check_int "offset preserved" 0 r.pc.offset;
  match Eval.run_task ~options:(opts None) joins r with
  | Ok fin ->
      check "join resolved from rollforward copy" true
        (fin.stop = Eval.Halted);
      check "combine result flows to continuation" true
        (Regfile.find_opt "c" fin.task.regs = Some (Value.Vint 12))
  | Error e -> Alcotest.failf "resume: %s" (Machine_error.show e)

(* --- reduced block style (Appendix D.5) --- *)

let test_reduced_style_correct () =
  List.iter
    (fun heart ->
      match Programs.run_prod_reduced ~options:(opts heart) ~a:120 ~b:4 () with
      | Ok (c, _) -> check_int "reduced prod" 480 c
      | Error e -> Alcotest.failf "reduced: %s" (Machine_error.show e))
    [ None; Some 5; Some 16; Some 100 ]

let test_reduced_pays_exit_branch () =
  (* in a purely serial run, the reduced style executes strictly more
     instructions than the expanded style: the sentinel init and the
     exit-branch dispatch (D.5's structural cost) *)
  let serial p seeds =
    match Eval.run_seeded ~options:(opts None) p seeds with
    | Ok fin -> fin.stats.instructions
    | Error e -> Alcotest.failf "serial: %s" (Machine_error.show e)
  in
  let seeds = [ ("a", Value.Vint 64); ("b", Value.Vint 2) ] in
  let expanded = serial Programs.prod seeds in
  let reduced = serial Programs.prod_reduced seeds in
  check "reduced costs extra serial instructions" true (reduced > expanded)

let prop_styles_agree =
  QCheck.Test.make ~name:"expanded and reduced styles agree" ~count:40
    QCheck.(triple (int_bound 80) (int_bound 20) (int_range 4 200))
    (fun (a, b, heart) ->
      let o = opts (Some heart) in
      let r1 =
        match Programs.run_prod ~options:o ~a ~b () with
        | Ok (c, _) -> Some c
        | Error _ -> None
      and r2 =
        match Programs.run_prod_reduced ~options:o ~a ~b () with
        | Ok (c, _) -> Some c
        | Error _ -> None
      in
      r1 = r2)

let suite =
  ( "rollforward",
    [
      Alcotest.test_case "two versions + map" `Quick test_two_versions_present;
      Alcotest.test_case "versions align" `Quick test_versions_align;
      Alcotest.test_case "handler redirection" `Quick
        test_rollforward_jumps_to_handlers;
      Alcotest.test_case "original unchanged" `Quick
        test_original_behaviour_unchanged;
      Alcotest.test_case "rollforward forces promotion" `Quick
        test_rollforward_triggers_promotion_without_beats;
      Alcotest.test_case "redirect mid-block" `Quick
        test_redirect_preserves_offset;
      Alcotest.test_case "redirect outside map" `Quick
        test_redirect_outside_map_is_identity;
      QCheck_alcotest.to_alcotest prop_rollforward_preserves_results;
      Alcotest.test_case "beat exactly on a prppt" `Quick
        test_beat_exactly_on_prppt;
      Alcotest.test_case "back-to-back beats in one block" `Quick
        test_back_to_back_beats_one_block;
      Alcotest.test_case "beat during join resolution" `Quick
        test_beat_during_join_resolution;
      Alcotest.test_case "reduced style correct" `Quick
        test_reduced_style_correct;
      Alcotest.test_case "reduced style structural cost" `Quick
        test_reduced_pays_exit_branch;
      QCheck_alcotest.to_alcotest prop_styles_agree;
    ] )
