(* The socket serving fabric (lib/net): the wire codec — roundtrip
   under arbitrary chunking, resync after malformed bodies, typed
   version-mismatch skips, latched death on oversized frames — the
   deterministic router policies (tenant-hash stability, JSQ
   tie-breaking, the size-aware small shard that never queues behind
   large work), the virtual-clock micro-batcher, the shard layer's
   exactly-once fan-in/fan-out, and a loopback server/client smoke
   with a full lost/duplicated/mismatched audit.

   Codec, router, and batch tests are pure (no sockets, no clocks);
   the shard and server tests use single-domain polling pools so they
   hold on a 1-core CI host. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Wire codec: generators. *)

let gen_string_n max =
  QCheck.Gen.(string_size ~gen:printable (int_bound max))

let gen_payload : Net.Wire.payload QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Net.Wire.Synth { n }) (int_bound 100_000);
        map2
          (fun name scale -> Net.Wire.Kernel { name; scale })
          (gen_string_n 24) (int_bound 1000);
        map (fun src -> Net.Wire.Prog { src }) (gen_string_n 2000);
      ])

let gen_status : Net.Wire.status QCheck.Gen.t =
  QCheck.Gen.oneofl
    [
      Net.Wire.Done { met = true };
      Net.Wire.Done { met = false };
      Net.Wire.Rejected_full;
      Net.Wire.Rejected_shed;
      Net.Wire.Rejected_draining;
      Net.Wire.Cancelled `Explicit;
      Net.Wire.Cancelled `Deadline;
      Net.Wire.Cancelled `Lease;
      Net.Wire.Failed;
      Net.Wire.Closed;
    ]

let gen_frame : Net.Wire.frame QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map (fun client -> Net.Wire.Hello { client }) (gen_string_n 40);
        map (fun shards -> Net.Wire.Hello_ok { shards }) (int_bound 64);
        map2
          (fun (ticket, tenant) (deadline_us, (size, payload)) ->
            Net.Wire.Submit { ticket; tenant; deadline_us; size; payload })
          (pair (int_bound 0xFFFFFF) (gen_string_n 16))
          (pair (int_bound 10_000_000) (pair (int_bound 0xFFFF) gen_payload));
        map (fun ticket -> Net.Wire.Cancel { ticket }) (int_bound 0xFFFFFF);
        map2
          (fun (ticket, status) (value, (sojourn_us, info)) ->
            Net.Wire.Response { ticket; status; value; sojourn_us; info })
          (pair (int_bound 0xFFFFFF) gen_status)
          (pair (int_bound max_int) (pair (int_bound 0xFFFFFF) (gen_string_n 60)));
        return Net.Wire.Metrics_request;
        map (fun body -> Net.Wire.Metrics { body }) (gen_string_n 400);
        map (fun pending -> Net.Wire.Drain { pending }) (int_bound 0xFFFF);
        return Net.Wire.Bye;
      ])

(* feed [s] to [dec] in chunks drawn from [rng] *)
let feed_chunked rng (dec : Net.Wire.Decoder.t) (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    let k = 1 + Random.State.int rng (min 7 (n - !pos)) in
    Net.Wire.Decoder.feed_string dec (String.sub s !pos k);
    pos := !pos + k
  done

let prop_roundtrip =
  QCheck.Test.make ~name:"wire roundtrip under arbitrary chunking" ~count:300
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 1 5) gen_frame) int))
    (fun (frames, salt) ->
      let rng = Random.State.make [| salt |] in
      let dec = Net.Wire.Decoder.create () in
      let image = String.concat "" (List.map Net.Wire.encode frames) in
      feed_chunked rng dec image;
      let rec pull acc =
        match Net.Wire.Decoder.next dec with
        | `Frame f -> pull (f :: acc)
        | `Await -> List.rev acc
        | `Skip _ | `Dead _ -> QCheck.Test.fail_report "skip/dead on valid stream"
      in
      pull [] = frames)

let test_roundtrip_every_split () =
  (* one representative frame, split at every byte boundary *)
  let f =
    Net.Wire.Submit
      {
        ticket = 42;
        tenant = "tenant-7";
        deadline_us = 125_000;
        size = 9;
        payload = Net.Wire.Kernel { name = "mergesort"; scale = 3 };
      }
  in
  let s = Net.Wire.encode f in
  for cut = 1 to String.length s - 1 do
    let dec = Net.Wire.Decoder.create () in
    Net.Wire.Decoder.feed_string dec (String.sub s 0 cut);
    check (Printf.sprintf "await at cut %d" cut) true
      (Net.Wire.Decoder.next dec = `Await);
    Net.Wire.Decoder.feed_string dec
      (String.sub s cut (String.length s - cut));
    check (Printf.sprintf "frame at cut %d" cut) true
      (Net.Wire.Decoder.next dec = `Frame f);
    check (Printf.sprintf "drained at cut %d" cut) true
      (Net.Wire.Decoder.next dec = `Await)
  done

let test_resync_after_bad_body () =
  (* hand-build a frame with an unknown tag, then a good frame: the
     decoder must skip the first (typed) and decode the second *)
  let good = Net.Wire.encode (Net.Wire.Cancel { ticket = 7 }) in
  let bad =
    let b = Buffer.create 16 in
    Buffer.add_int32_be b 6l;
    (* len: vers + tag + 4 body bytes *)
    Buffer.add_uint8 b Net.Wire.version;
    Buffer.add_uint8 b 250;
    (* unknown tag *)
    Buffer.add_string b "XYZW";
    Buffer.contents b
  in
  let dec = Net.Wire.Decoder.create () in
  Net.Wire.Decoder.feed_string dec (bad ^ good);
  (match Net.Wire.Decoder.next dec with
  | `Skip (Net.Wire.Bad_tag { tag }) -> check_int "skipped tag" 250 tag
  | _ -> Alcotest.fail "expected Skip Bad_tag");
  check "resynced to next frame" true
    (Net.Wire.Decoder.next dec = `Frame (Net.Wire.Cancel { ticket = 7 }));
  check_int "one skip counted" 1 (Net.Wire.Decoder.skipped dec)

let test_truncated_body_is_bad_body () =
  (* a Cancel frame whose body claims 6 bytes but carries garbage
     shorter than the ticket field: Bad_body, then resync *)
  let b = Buffer.create 16 in
  Buffer.add_int32_be b 4l;
  (* vers + tag + only 2 of the 4 ticket bytes *)
  Buffer.add_uint8 b Net.Wire.version;
  Buffer.add_uint8 b 4;
  Buffer.add_string b "\x00\x01";
  let good = Net.Wire.encode Net.Wire.Bye in
  let dec = Net.Wire.Decoder.create () in
  Net.Wire.Decoder.feed_string dec (Buffer.contents b ^ good);
  (match Net.Wire.Decoder.next dec with
  | `Skip (Net.Wire.Bad_body _) -> ()
  | _ -> Alcotest.fail "expected Skip Bad_body");
  check "stream continues" true (Net.Wire.Decoder.next dec = `Frame Net.Wire.Bye)

let test_trailing_bytes_rejected () =
  (* a well-formed Cancel body with 3 extra bytes inside the frame *)
  let b = Buffer.create 16 in
  Buffer.add_int32_be b 9l;
  Buffer.add_uint8 b Net.Wire.version;
  Buffer.add_uint8 b 4;
  Buffer.add_int32_be b 7l;
  Buffer.add_string b "pad";
  let dec = Net.Wire.Decoder.create () in
  Net.Wire.Decoder.feed_string dec (Buffer.contents b);
  match Net.Wire.Decoder.next dec with
  | `Skip (Net.Wire.Bad_body { reason; _ }) ->
      check "mentions trailing" true
        (String.length reason > 0
        && String.ends_with ~suffix:"trailing bytes" reason)
  | _ -> Alcotest.fail "expected Skip Bad_body on trailing bytes"

let test_version_mismatch_typed () =
  let s = Net.Wire.encode (Net.Wire.Hello { client = "old" }) in
  let bs = Bytes.of_string s in
  Bytes.set_uint8 bs 4 99;
  (* stamp a future version *)
  let good = Net.Wire.encode Net.Wire.Metrics_request in
  let dec = Net.Wire.Decoder.create () in
  Net.Wire.Decoder.feed_string dec (Bytes.to_string bs ^ good);
  (match Net.Wire.Decoder.next dec with
  | `Skip (Net.Wire.Bad_version { got }) -> check_int "typed version" 99 got
  | _ -> Alcotest.fail "expected Skip Bad_version");
  check "new-version frames still flow" true
    (Net.Wire.Decoder.next dec = `Frame Net.Wire.Metrics_request)

let test_oversized_frame_kills () =
  let dec = Net.Wire.Decoder.create ~max_frame:64 () in
  let b = Buffer.create 8 in
  Buffer.add_int32_be b 65l;
  Buffer.add_string b "~~~~";
  Net.Wire.Decoder.feed_string dec (Buffer.contents b);
  (match Net.Wire.Decoder.next dec with
  | `Dead (Net.Wire.Oversized { len; max }) ->
      check_int "len" 65 len;
      check_int "max" 64 max
  | _ -> Alcotest.fail "expected Dead Oversized");
  (* latched: even after feeding a valid frame, still dead *)
  Net.Wire.Decoder.feed_string dec (Net.Wire.encode Net.Wire.Bye);
  (match Net.Wire.Decoder.next dec with
  | `Dead _ -> ()
  | _ -> Alcotest.fail "Dead must latch");
  (* and encode refuses to build one *)
  check "encode refuses oversized" true
    (match
       Net.Wire.encode ~max_frame:8
         (Net.Wire.Metrics { body = String.make 64 'x' })
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Router policies: pure, deterministic, table-tested. *)

let test_tenant_hash_stable () =
  let depths = [| 5; 0; 9; 2 |] in
  for k = 0 to 99 do
    let tenant = Printf.sprintf "tenant-%d" k in
    let s1 = Net.Router.route Net.Router.Tenant_hash ~depths ~tenant ~size:1 in
    let s2 =
      Net.Router.route Net.Router.Tenant_hash ~depths:[| 0; 0; 0; 0 |] ~tenant
        ~size:999
    in
    check (Printf.sprintf "affinity %s" tenant) true (s1 = s2);
    check "in range" true (s1 >= 0 && s1 < 4)
  done;
  (* the hash actually spreads: 100 tenants over 4 shards must hit
     every shard (FNV-1a would have to be badly broken not to) *)
  let hit = Array.make 4 false in
  for k = 0 to 99 do
    hit.(Net.Router.route Net.Router.Tenant_hash ~depths
           ~tenant:(Printf.sprintf "tenant-%d" k) ~size:1)
    <- true
  done;
  check "spreads over all shards" true (Array.for_all Fun.id hit)

let test_jsq_argmin_and_ties () =
  let r depths = Net.Router.route Net.Router.Jsq ~depths ~tenant:"t" ~size:1 in
  check_int "picks the shortest" 2 (r [| 4; 3; 1; 3 |]);
  check_int "tie breaks to lowest index" 1 (r [| 4; 2; 2; 2 |]);
  check_int "all equal -> shard 0" 0 (r [| 7; 7; 7 |]);
  check_int "single shard" 0 (r [| 42 |])

let test_size_aware_small_never_blocked () =
  let policy = Net.Router.Size_aware { small_max = 4 } in
  (* virtual scenario: large requests have piled 100 deep everywhere
     except the small shard; a small request still goes to shard 0,
     and a large request never does, no matter how empty shard 0 is *)
  let depths = [| 0; 100; 100 |] in
  check_int "small -> small shard" 0
    (Net.Router.route policy ~depths ~tenant:"a" ~size:4);
  check_int "large avoids small shard even when empty" 1
    (Net.Router.route policy ~depths:[| 0; 3; 7 |] ~tenant:"a" ~size:5);
  (* large load balances over the non-small shards *)
  check_int "large JSQ over the rest" 2
    (Net.Router.route policy ~depths:[| 0; 9; 3 |] ~tenant:"a" ~size:100);
  (* simulate a stream: larges keep arriving, smalls interleave; no
     small request is ever placed behind the large backlog *)
  let depths = [| 0; 0; 0 |] in
  for i = 1 to 50 do
    let size = if i mod 3 = 0 then 1 else 64 in
    let s = Net.Router.route policy ~depths ~tenant:"t" ~size in
    depths.(s) <- depths.(s) + size;
    if size = 1 then check (Printf.sprintf "small %d isolated" i) true (s = 0)
    else check (Printf.sprintf "large %d off the small shard" i) true (s <> 0)
  done

let test_policy_parse () =
  check "hash" true (Net.Router.policy_of_string "hash" = Some Net.Router.Tenant_hash);
  check "jsq" true (Net.Router.policy_of_string "jsq" = Some Net.Router.Jsq);
  check "size" true
    (Net.Router.policy_of_string ~small_max:7 "size-aware"
    = Some (Net.Router.Size_aware { small_max = 7 }));
  check "garbage" true (Net.Router.policy_of_string "lifo" = None)

(* ------------------------------------------------------------------ *)
(* Micro-batcher: explicit clock, no threads. *)

let test_batch_count_flush () =
  let b = Net.Batch.create ~max:3 ~delay_s:1.0 in
  check "hold 1" true (Net.Batch.add b ~now:0.0 "a" = `Hold);
  check "hold 2" true (Net.Batch.add b ~now:0.1 "b" = `Hold);
  (match Net.Batch.add b ~now:0.2 "c" with
  | `Flush l -> check "arrival order" true (l = [ "a"; "b"; "c" ])
  | `Hold -> Alcotest.fail "expected count flush");
  check_int "empty after flush" 0 (Net.Batch.pending b);
  let st = Net.Batch.stats b in
  check_int "one flush" 1 st.flushes;
  check_int "three items" 3 st.flushed_items;
  check_int "count-triggered" 1 st.full_flushes

let test_batch_age_flush () =
  let b = Net.Batch.create ~max:100 ~delay_s:0.010 in
  ignore (Net.Batch.add b ~now:1.000 "x");
  ignore (Net.Batch.add b ~now:1.004 "y");
  check "not yet" true (Net.Batch.poll b ~now:1.009 = None);
  (match Net.Batch.poll b ~now:1.0101 with
  | Some l -> check "aged out in order" true (l = [ "x"; "y" ])
  | None -> Alcotest.fail "expected age flush");
  check "idle poll" true (Net.Batch.poll b ~now:9.9 = None)

let test_batch_remove_and_drain () =
  let b = Net.Batch.create ~max:10 ~delay_s:1.0 in
  List.iter (fun x -> ignore (Net.Batch.add b ~now:0. x)) [ 1; 2; 3; 4 ];
  check "removes first match" true (Net.Batch.remove b ~f:(fun x -> x mod 2 = 0) = Some 2);
  check "miss" true (Net.Batch.remove b ~f:(fun x -> x > 9) = None);
  check "drain keeps arrival order" true (Net.Batch.drain b = [ 1; 3; 4 ]);
  check "drain empty" true (Net.Batch.drain b = [])

(* ------------------------------------------------------------------ *)
(* Shard layer: fan-out, batching, exactly-once fan-in. *)

let pool_config ?(cap = 4096) () : Serve.Pool.config =
  {
    Serve.Pool.default_config with
    runtime =
      {
        Par.Runtime.default_config with
        domains = 1;
        heart_us = 100.;
        source = `Polling;
      };
    sched = { Serve.Sched.default_config with cap };
    lease_s = 0.;
    default_slo_s = 30.;
  }

let shard_config ?(shards = 2) ?(batch_max = 1) () : Net.Shard.config =
  {
    Net.Shard.default_config with
    shards;
    pool = pool_config ();
    policy = Net.Router.Size_aware { small_max = 4 };
    batch_max;
    batch_delay_us = 500.;
    batch_size_max = 4;
  }

let test_shard_roundtrip_mixed () =
  let t = Net.Shard.create ~config:(shard_config ~batch_max:8 ()) () in
  let expect_small = Serve.Load.expected_checksum 128 in
  let expect_large = Serve.Load.expected_checksum 8192 in
  let tickets =
    List.init 60 (fun i ->
        let small = i mod 3 <> 0 in
        let n = if small then 128 else 8192 in
        let size = if small then 1 else 16 in
        match
          Net.Shard.submit t ~tenant:(Printf.sprintf "t%d" (i mod 5)) ~size
            ~deadline_s:30.
            (Serve.Pool.Thunk (Serve.Load.kernel n))
        with
        | Ok tk -> (tk, small)
        | Error _ -> Alcotest.failf "submit %d rejected" i)
  in
  List.iter
    (fun (tk, small) ->
      match Net.Shard.await ~timeout_s:60. t tk with
      | Ok { Serve.Pool.outcome = Serve.Pool.Checksum c; _ } ->
          check_int "checksum" (if small then expect_small else expect_large) c
      | Ok _ -> Alcotest.fail "unexpected outcome shape"
      | Error e -> Alcotest.failf "await failed: %a" Serve.Pool.pp_error e)
    tickets;
  let st = Net.Shard.close t in
  check "some requests batched" true (st.batched_members > 0);
  check_int "all submitted" 60 st.submitted;
  (* small-shard isolation held: every large went to shard 1 *)
  check "large work avoided the small shard" true
    (Array.length st.per_shard = 2);
  let resolved_after = Net.Shard.submit t ~tenant:"late" (Serve.Pool.Thunk (fun _ -> 0)) in
  check "closed shard refuses" true (resolved_after = Error Serve.Pool.Pool_closed)

let test_shard_cancel_parked () =
  (* batch_max high + long delay: a submitted small request stays
     parked long enough to cancel deterministically *)
  let cfg =
    { (shard_config ~batch_max:64 ()) with batch_delay_us = 30_000_000. }
  in
  let t = Net.Shard.create ~config:cfg () in
  let resolved = ref None in
  let tk =
    match
      Net.Shard.submit t ~tenant:"a" ~size:1
        ~on_resolve:(fun r -> resolved := Some r)
        (Serve.Pool.Thunk (Serve.Load.kernel 64))
    with
    | Ok tk -> tk
    | Error _ -> Alcotest.fail "submit rejected"
  in
  check "cancel hits the parked member" true (Net.Shard.cancel t tk);
  (match !resolved with
  | Some (Error (Serve.Pool.Cancelled `Explicit)) -> ()
  | _ -> Alcotest.fail "expected a typed Cancelled resolution");
  check "second cancel misses" true (not (Net.Shard.cancel t tk));
  ignore (Net.Shard.close t)

let test_shard_close_drains_parked () =
  let cfg =
    { (shard_config ~batch_max:64 ()) with batch_delay_us = 30_000_000. }
  in
  let t = Net.Shard.create ~config:cfg () in
  let tks =
    List.init 5 (fun i ->
        match
          Net.Shard.submit t ~tenant:(Printf.sprintf "t%d" i) ~size:1
            (Serve.Pool.Thunk (Serve.Load.kernel 64))
        with
        | Ok tk -> tk
        | Error _ -> Alcotest.fail "submit rejected")
  in
  let st = Net.Shard.close t in
  (* parked members were flushed at close: they either executed
     (pool drained them) or resolved typed — never lost *)
  List.iter
    (fun tk ->
      match Net.Shard.try_result t tk with
      | Some (Ok _) | Some (Error Serve.Pool.Pool_closed) -> ()
      | Some (Error e) ->
          Alcotest.failf "unexpected error: %a" Serve.Pool.pp_error e
      | None -> Alcotest.fail "parked member lost at close")
    tks;
  check "close reports the policy" true (st.policy = "size-aware")

(* ------------------------------------------------------------------ *)
(* Loopback server: end-to-end smoke with the full audit. *)

let server_config ?(shards = 2) ?(batch_max = 4) () : Net.Server.config =
  {
    Net.Server.default_config with
    shard = shard_config ~shards ~batch_max ();
    drain_timeout_s = 30.;
  }

let test_server_loopback_audit () =
  let srv =
    Net.Server.create ~config:(server_config ())
      (Net.Server.Tcp { host = "127.0.0.1"; port = 0 })
      ()
  in
  let addr = Net.Server.bound_addr srv in
  let spec =
    {
      Net.Netload.default_spec with
      requests = 600;
      conns = 2;
      window = 32;
      sizes = [ (128, 0.8); (8192, 0.2) ];
      slo_s = 30.;
      tight_frac = 0.;
      drain_timeout_s = 60.;
    }
  in
  let r = Net.Netload.run addr spec in
  check_int "nothing lost" 0 r.lost;
  check_int "nothing duplicated" 0 r.duplicated;
  check_int "nothing corrupted" 0 r.mismatched;
  check_int "everything accounted" r.submitted
    (r.completed + r.rejected + r.cancelled + r.failed + r.closed);
  check "all completed under generous deadlines" true (r.completed = 600);
  let st = Net.Server.stop srv in
  check "server saw the submits" true (st.submits >= 600);
  check "responses flowed" true (st.responses >= 600);
  check_int "no framing deaths" 0 st.dead_conns

let test_server_hello_shards () =
  let srv =
    Net.Server.create ~config:(server_config ~shards:3 ())
      (Net.Server.Tcp { host = "127.0.0.1"; port = 0 })
      ()
  in
  let c = Net.Client.connect (Net.Server.bound_addr srv) in
  check_int "hello advertises shards" 3 (Net.Client.shards c);
  Net.Client.close c;
  ignore (Net.Server.stop srv)

let test_server_drain_rejects_new () =
  let srv =
    Net.Server.create ~config:(server_config ~shards:1 ~batch_max:1 ())
      (Net.Server.Tcp { host = "127.0.0.1"; port = 0 })
      ()
  in
  let addr = Net.Server.bound_addr srv in
  let c = Net.Client.connect addr in
  (* park a couple of requests, then stop the server while holding the
     connection open: stop must flush typed responses for everything *)
  let tks =
    List.init 8 (fun _ ->
        Net.Client.submit c ~tenant:"t" ~size:1 (Net.Wire.Synth { n = 2048 }))
  in
  let stopper = Thread.create (fun () -> ignore (Net.Server.stop srv)) () in
  List.iter
    (fun tk ->
      match Net.Client.await ~timeout_s:60. c tk with
      | Some _ -> ()  (* completed or typed-rejected; never silent *)
      | None -> Alcotest.fail "connection died with a response owed")
    tks;
  Thread.join stopper;
  Net.Client.close c

let suite =
  ( "net",
    [
      Alcotest.test_case "wire: split at every byte" `Quick
        test_roundtrip_every_split;
      Alcotest.test_case "wire: resync after unknown tag" `Quick
        test_resync_after_bad_body;
      Alcotest.test_case "wire: truncated body is typed" `Quick
        test_truncated_body_is_bad_body;
      Alcotest.test_case "wire: trailing bytes rejected" `Quick
        test_trailing_bytes_rejected;
      Alcotest.test_case "wire: version mismatch is a typed skip" `Quick
        test_version_mismatch_typed;
      Alcotest.test_case "wire: oversized frame latches dead" `Quick
        test_oversized_frame_kills;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      Alcotest.test_case "router: tenant-hash affinity is stable" `Quick
        test_tenant_hash_stable;
      Alcotest.test_case "router: jsq argmin with low-index ties" `Quick
        test_jsq_argmin_and_ties;
      Alcotest.test_case "router: small never queues behind large" `Quick
        test_size_aware_small_never_blocked;
      Alcotest.test_case "router: policy names parse" `Quick test_policy_parse;
      Alcotest.test_case "batch: count-bound flush" `Quick
        test_batch_count_flush;
      Alcotest.test_case "batch: age-bound flush on a virtual clock" `Quick
        test_batch_age_flush;
      Alcotest.test_case "batch: remove and drain" `Quick
        test_batch_remove_and_drain;
      Alcotest.test_case "shard: mixed sizes roundtrip exactly once" `Slow
        test_shard_roundtrip_mixed;
      Alcotest.test_case "shard: cancel a parked member" `Quick
        test_shard_cancel_parked;
      Alcotest.test_case "shard: close never loses parked work" `Slow
        test_shard_close_drains_parked;
      Alcotest.test_case "server: loopback audit" `Slow
        test_server_loopback_audit;
      Alcotest.test_case "server: hello advertises shards" `Quick
        test_server_hello_shards;
      Alcotest.test_case "server: drain flushes typed responses" `Slow
        test_server_drain_rejects_new;
    ] )
