(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Figures 6–15, the headline numbers, the tuner
   and the promotion-policy ablation) on the simulated testbed, then
   runs a Bechamel microbenchmark suite over the core primitives that
   those experiments exercise.

   Output shape: one aligned table + CSV block per figure, in paper
   order; see EXPERIMENTS.md for the measured-vs-paper discussion.

   Set REPRO_QUICK=1 to skip the (slow) full figure regeneration and
   run only the Bechamel suite.

   --par-bench switches to the multi-domain pipeline instead: every
   real kernel in Workloads.Real_bench runs serially and then under
   Par.Runtime at each requested domain count, checksums are compared,
   and wall-clock + speedup + scheduler counters are printed as a
   table and written as machine-readable JSON (--json PATH, or the
   BENCH_JSON environment variable; default BENCH_par.json). *)

let run_figures () =
  print_endline
    "=== TPAL reproduction: regenerating all evaluation figures ===";
  print_endline
    "(simulated 15-worker testbed; see DESIGN.md for the substitution \
     rationale)";
  let t0 = Unix.gettimeofday () in
  List.iter Repro.Figures.print_table (Repro.Figures.all ());
  Printf.printf "=== figures regenerated in %.1f s ===\n%!"
    (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: the primitive operations underlying the
   experiments — abstract-machine evaluation, promotion, simulator
   engine throughput, runtime substrate operations. *)

open Bechamel
open Toolkit

let test_prod_serial =
  Test.make ~name:"eval: prod a=200 serial (abstract machine)"
    (Staged.stage (fun () ->
         Tpal.Programs.run_prod
           ~options:{ Tpal.Eval.default_options with heart = None }
           ~a:200 ~b:3 ()
         |> ignore))

let test_prod_heartbeat =
  Test.make ~name:"eval: prod a=200 heart=20 (promotions+forks)"
    (Staged.stage (fun () ->
         Tpal.Programs.run_prod
           ~options:{ Tpal.Eval.default_options with heart = Some 20 }
           ~a:200 ~b:3 ()
         |> ignore))

let test_fib_heartbeat =
  Test.make ~name:"eval: fib n=12 heart=50 (stack promotions)"
    (Staged.stage (fun () ->
         Tpal.Programs.run_fib
           ~options:{ Tpal.Eval.default_options with heart = Some 50 }
           ~n:12 ()
         |> ignore))

let test_parse =
  let src = Tpal.Printer.program_to_string Tpal.Programs.pow in
  Test.make ~name:"parser: pow round-trip source"
    (Staged.stage (fun () -> Tpal.Parser.parse src |> ignore))

let small_ir = Sim.Par_ir.for_const ~n:100_000 ~cycles:10

let engine_test ~name mode mech =
  Test.make ~name
    (Staged.stage (fun () ->
         let params = { Sim.Params.default with procs = 15 } in
         let cfg = Sim.Runnable.make_cfg mode params in
         let config = Sim.Engine.make_config ~mech cfg in
         Sim.Engine.run config small_ir |> ignore))

let test_engine_serial =
  engine_test ~name:"engine: 1M-cycle loop, serial" Sim.Runnable.Serial
    Sim.Interrupts.Off

let test_engine_cilk =
  engine_test ~name:"engine: 1M-cycle loop, cilk 15 cores" Sim.Runnable.Cilk
    Sim.Interrupts.Off

let test_engine_tpal =
  engine_test ~name:"engine: 1M-cycle loop, tpal 15 cores + ping thread"
    Sim.Runnable.Tpal Sim.Interrupts.Ping_thread

let test_deque =
  Test.make ~name:"substrate: wsdeque push/pop x1000"
    (Staged.stage (fun () ->
         let d = Sim.Wsdeque.create () in
         for i = 0 to 999 do
           Sim.Wsdeque.push_bottom d i
         done;
         for _ = 0 to 999 do
           Sim.Wsdeque.pop_bottom d |> ignore
         done))

let test_eventq =
  Test.make ~name:"substrate: event queue add/pop x1000"
    (Staged.stage (fun () ->
         let q = Sim.Eventq.create ~dummy:0 in
         let rng = Sim.Prng.create ~seed:7 in
         for i = 0 to 999 do
           Sim.Eventq.add q ~time:(Sim.Prng.int rng 100_000) i
         done;
         while not (Sim.Eventq.is_empty q) do
           Sim.Eventq.pop q |> ignore
         done))

let benchmark () =
  let tests =
    [
      test_prod_serial;
      test_prod_heartbeat;
      test_fib_heartbeat;
      test_parse;
      test_engine_serial;
      test_engine_cilk;
      test_engine_tpal;
      test_deque;
      test_eventq;
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  print_endline "\n=== Bechamel microbenchmarks (core primitives) ===";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] -> Printf.printf "%-55s %12.1f ns/run\n%!" name t
          | _ -> Printf.printf "%-55s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* The multi-domain pipeline: real kernels on Par.Runtime, recording
   the speedup trajectory as JSON. *)

type par_row = {
  bench : string;
  domains : int;  (* 0 = the serial baseline row *)
  seconds : float;
  speedup : float;
  checksum : int;
  promotions : int;
  steals : int;
  joins : int;
  beats : int;
}

(* median-of-k wall-clock; k small because the kernels are sized to
   run for tens of milliseconds each *)
let time_median ~(repeat : int) (f : unit -> 'a) : float * 'a =
  let last = ref None in
  let times =
    List.init (max 1 repeat) (fun _ ->
        let t0 = Unix.gettimeofday () in
        let v = f () in
        last := Some v;
        Unix.gettimeofday () -. t0)
  in
  let sorted = List.sort compare times in
  (List.nth sorted (List.length sorted / 2), Option.get !last)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_par_json ~(path : string) ~(scale : int) (rows : par_row list) :
    unit =
  let oc = open_out path in
  let row_json (r : par_row) =
    Printf.sprintf
      "    {\"bench\": \"%s\", \"domains\": %d, \"seconds\": %.6f, \
       \"speedup\": %.3f, \"checksum\": %d, \"promotions\": %d, \"steals\": \
       %d, \"joins\": %d, \"beats\": %d}"
      (json_escape r.bench) r.domains r.seconds r.speedup r.checksum
      r.promotions r.steals r.joins r.beats
  in
  Printf.fprintf oc
    "{\n\
    \  \"suite\": \"par_bench\",\n\
    \  \"host_cores\": %d,\n\
    \  \"scale\": %d,\n\
    \  \"results\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (Domain.recommended_domain_count ())
    scale
    (String.concat ",\n" (List.map row_json rows));
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n%!" path (List.length rows)

let run_par_bench ~(domains : int list) ~(scale : int) ~(json : string option)
    ~(benches : string list option) : unit =
  let benches =
    match benches with
    | None -> Workloads.Real_bench.all
    | Some names ->
        List.map
          (fun n ->
            match Workloads.Real_bench.find n with
            | Some b -> b
            | None ->
                Printf.eprintf "unknown benchmark %S (have: %s)\n%!" n
                  (String.concat ", " Workloads.Real_bench.names);
                exit 2)
          names
  in
  Printf.printf
    "=== par bench: %d kernels, domains {%s}, scale %d, host cores %d ===\n%!"
    (List.length benches)
    (String.concat ", " (List.map string_of_int domains))
    scale
    (Domain.recommended_domain_count ());
  Printf.printf "%-16s %8s %10s %8s %10s %8s %8s %8s\n%!" "bench" "domains"
    "seconds" "speedup" "promos" "steals" "joins" "beats";
  let rows = ref [] in
  let emit r =
    rows := r :: !rows;
    Printf.printf "%-16s %8s %10.4f %7.2fx %10d %8d %8d %8d\n%!" r.bench
      (if r.domains = 0 then "serial" else string_of_int r.domains)
      r.seconds r.speedup r.promotions r.steals r.joins r.beats
  in
  List.iter
    (fun (b : Workloads.Real_bench.t) ->
      let serial_s, serial_sum =
        time_median ~repeat:3 (fun () ->
            Workloads.Real_bench.run_serial b ~scale)
      in
      emit
        {
          bench = b.name;
          domains = 0;
          seconds = serial_s;
          speedup = 1.0;
          checksum = serial_sum;
          promotions = 0;
          steals = 0;
          joins = 0;
          beats = 0;
        };
      List.iter
        (fun d ->
          let cfg = { Par.Runtime.default_config with domains = d } in
          let par_s, (par_sum, (st : Par.Runtime.stats)) =
            time_median ~repeat:3 (fun () ->
                Par.Runtime.run ~config:cfg (fun () ->
                    b.run (module Par.Runtime.Exec) ~scale))
          in
          if par_sum <> serial_sum then begin
            Printf.eprintf
              "FATAL: %s at %d domains diverged from serial (checksums %d vs \
               %d)\n\
               %!"
              b.name d par_sum serial_sum;
            exit 1
          end;
          emit
            {
              bench = b.name;
              domains = d;
              seconds = par_s;
              speedup = serial_s /. par_s;
              checksum = par_sum;
              promotions = st.total.promotions;
              steals = st.total.steals;
              joins = st.total.joins;
              beats = st.total.beats;
            })
        domains)
    benches;
  let json =
    match json with None -> Sys.getenv_opt "BENCH_JSON" | some -> some
  in
  match json with
  | None -> ()
  | Some path -> write_par_json ~path ~scale (List.rev !rows)

(* ------------------------------------------------------------------ *)

let parse_int_list (what : string) (s : string) : int list =
  String.split_on_char ',' s
  |> List.filter (fun s -> s <> "")
  |> List.map (fun s ->
         match int_of_string_opt (String.trim s) with
         | Some n when n > 0 -> n
         | _ ->
             Printf.eprintf "bad %s %S (want comma-separated ints)\n%!" what s;
             exit 2)

let usage () =
  print_endline
    "usage: bench [--par-bench] [--domains 1,2,4] [--scale N] [--json PATH]\n\
    \             [--benches a,b,c]\n\
     without --par-bench: regenerate the simulated figures (unless\n\
     REPRO_QUICK=1) and run the Bechamel microbenchmark suite.\n\
     With --par-bench: run the real kernels on the multi-domain runtime\n\
     and write BENCH_par.json (or --json PATH / $BENCH_JSON)."

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let par_bench = ref false in
  let domains = ref [ 1; 2; 4 ] in
  let scale = ref 1 in
  let json = ref None in
  let benches = ref None in
  let rec parse = function
    | [] -> ()
    | "--par-bench" :: rest ->
        par_bench := true;
        parse rest
    | "--domains" :: v :: rest ->
        domains := parse_int_list "--domains" v;
        parse rest
    | "--scale" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n > 0 -> scale := n
        | _ ->
            Printf.eprintf "bad --scale %S\n%!" v;
            exit 2);
        parse rest
    | "--json" :: v :: rest ->
        json := Some v;
        parse rest
    | "--benches" :: v :: rest ->
        benches :=
          Some (String.split_on_char ',' v |> List.filter (fun s -> s <> ""));
        parse rest
    | ("--help" | "-h") :: _ -> usage (); exit 0
    | arg :: _ ->
        Printf.eprintf "unknown argument %S\n%!" arg;
        usage ();
        exit 2
  in
  parse args;
  if !par_bench then
    run_par_bench ~domains:!domains ~scale:!scale ~json:!json
      ~benches:!benches
  else begin
    if Sys.getenv_opt "REPRO_QUICK" = None then run_figures ();
    benchmark ()
  end
