(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Figures 6–15, the headline numbers, the tuner
   and the promotion-policy ablation) on the simulated testbed, then
   runs a Bechamel microbenchmark suite over the core primitives that
   those experiments exercise.

   Output shape: one aligned table + CSV block per figure, in paper
   order; see EXPERIMENTS.md for the measured-vs-paper discussion.

   Set REPRO_QUICK=1 to skip the (slow) full figure regeneration and
   run only the Bechamel suite.

   --par-bench switches to the multi-domain pipeline instead: every
   real kernel in Workloads.Real_bench runs serially and then under
   Par.Runtime at each requested domain count, checksums are compared,
   and wall-clock + speedup + scheduler counters are printed as a
   table and written as machine-readable JSON (--json PATH, or the
   BENCH_JSON environment variable; default BENCH_par.json). *)

let run_figures () =
  print_endline
    "=== TPAL reproduction: regenerating all evaluation figures ===";
  print_endline
    "(simulated 15-worker testbed; see DESIGN.md for the substitution \
     rationale)";
  let t0 = Unix.gettimeofday () in
  List.iter Repro.Figures.print_table (Repro.Figures.all ());
  Printf.printf "=== figures regenerated in %.1f s ===\n%!"
    (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: the primitive operations underlying the
   experiments — abstract-machine evaluation, promotion, simulator
   engine throughput, runtime substrate operations. *)

open Bechamel
open Toolkit

let test_prod_serial =
  Test.make ~name:"eval: prod a=200 serial (abstract machine)"
    (Staged.stage (fun () ->
         Tpal.Programs.run_prod
           ~options:{ Tpal.Eval.default_options with heart = None }
           ~a:200 ~b:3 ()
         |> ignore))

let test_prod_heartbeat =
  Test.make ~name:"eval: prod a=200 heart=20 (promotions+forks)"
    (Staged.stage (fun () ->
         Tpal.Programs.run_prod
           ~options:{ Tpal.Eval.default_options with heart = Some 20 }
           ~a:200 ~b:3 ()
         |> ignore))

let test_fib_heartbeat =
  Test.make ~name:"eval: fib n=12 heart=50 (stack promotions)"
    (Staged.stage (fun () ->
         Tpal.Programs.run_fib
           ~options:{ Tpal.Eval.default_options with heart = Some 50 }
           ~n:12 ()
         |> ignore))

let test_parse =
  let src = Tpal.Printer.program_to_string Tpal.Programs.pow in
  Test.make ~name:"parser: pow round-trip source"
    (Staged.stage (fun () -> Tpal.Parser.parse src |> ignore))

let small_ir = Sim.Par_ir.for_const ~n:100_000 ~cycles:10

let engine_test ~name mode mech =
  Test.make ~name
    (Staged.stage (fun () ->
         let params = { Sim.Params.default with procs = 15 } in
         let cfg = Sim.Runnable.make_cfg mode params in
         let config = Sim.Engine.make_config ~mech cfg in
         Sim.Engine.run config small_ir |> ignore))

let test_engine_serial =
  engine_test ~name:"engine: 1M-cycle loop, serial" Sim.Runnable.Serial
    Sim.Interrupts.Off

let test_engine_cilk =
  engine_test ~name:"engine: 1M-cycle loop, cilk 15 cores" Sim.Runnable.Cilk
    Sim.Interrupts.Off

let test_engine_tpal =
  engine_test ~name:"engine: 1M-cycle loop, tpal 15 cores + ping thread"
    Sim.Runnable.Tpal Sim.Interrupts.Ping_thread

let test_deque =
  Test.make ~name:"substrate: wsdeque push/pop x1000"
    (Staged.stage (fun () ->
         let d = Sim.Wsdeque.create () in
         for i = 0 to 999 do
           Sim.Wsdeque.push_bottom d i
         done;
         for _ = 0 to 999 do
           Sim.Wsdeque.pop_bottom d |> ignore
         done))

let test_eventq =
  Test.make ~name:"substrate: event queue add/pop x1000"
    (Staged.stage (fun () ->
         let q = Sim.Eventq.create ~dummy:0 in
         let rng = Sim.Prng.create ~seed:7 in
         for i = 0 to 999 do
           Sim.Eventq.add q ~time:(Sim.Prng.int rng 100_000) i
         done;
         while not (Sim.Eventq.is_empty q) do
           Sim.Eventq.pop q |> ignore
         done))

let benchmark () =
  let tests =
    [
      test_prod_serial;
      test_prod_heartbeat;
      test_fib_heartbeat;
      test_parse;
      test_engine_serial;
      test_engine_cilk;
      test_engine_tpal;
      test_deque;
      test_eventq;
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  print_endline "\n=== Bechamel microbenchmarks (core primitives) ===";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] -> Printf.printf "%-55s %12.1f ns/run\n%!" name t
          | _ -> Printf.printf "%-55s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* The multi-domain pipeline: real kernels on Par.Runtime, recording
   the speedup trajectory as JSON. *)

type par_row = {
  bench : string;
  domains : int;  (* 0 = the serial baseline row *)
  seconds : float;
      (* kernel time: for par rows, measured INSIDE the session (from
         the first instruction of main), so domain spawn/join setup is
         excluded and the row measures the scheduler, not
         Domain.spawn — the committed knapsack 0.036x was entirely
         session setup around a 7 µs kernel *)
  session_seconds : float;
      (* wall-clock around the whole session, setup included (equals
         [seconds] for serial rows) *)
  speedup : float;  (* serial kernel seconds / kernel seconds *)
  checksum : int;
  promotions : int;
  steals : int;
  steal_attempts : int;
  joins : int;
  beats : int;
  max_deque : int;
  idle_ms : float;  (* total worker idle-backoff sleep *)
}

(* median-of-k; k small because the kernels are sized to run for tens
   of milliseconds each *)
let median_by (proj : 'a -> float) (xs : 'a list) : 'a =
  let sorted = List.sort (fun a b -> compare (proj a) (proj b)) xs in
  List.nth sorted (List.length sorted / 2)

let time_median ~(repeat : int) (f : unit -> 'a) : float * 'a =
  let samples =
    List.init (max 1 repeat) (fun _ ->
        let t0 = Mclock.now_s () in
        let v = f () in
        (Mclock.now_s () -. t0, v))
  in
  median_by fst samples

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ---- trajectory JSON ----------------------------------------------
   BENCH_par.json is an accumulating trajectory: one run object per
   `--par-bench` invocation (with `--append`), so before/after points
   of a perf change live side by side in the committed file:

     { "suite": "par_bench",
       "trajectory": [ { "label": ..., "host_cores": N, "scale": K,
                         "results": [ <rows> ] }, ... ] }

   Appending is textual (no JSON dependency): the previous runs are
   extracted as the raw inner text of the "trajectory" array; a legacy
   single-run file (top-level "results") is wrapped as the first
   trajectory entry so pre-existing data points survive the schema
   change. *)

let row_json (r : par_row) =
  Printf.sprintf
    "      {\"bench\": \"%s\", \"domains\": %d, \"seconds\": %.6f, \
     \"session_seconds\": %.6f, \"speedup\": %.3f, \"checksum\": %d, \
     \"promotions\": %d, \"steals\": %d, \"steal_attempts\": %d, \"joins\": \
     %d, \"beats\": %d, \"max_deque\": %d, \"idle_ms\": %.3f}"
    (json_escape r.bench) r.domains r.seconds r.session_seconds r.speedup
    r.checksum r.promotions r.steals r.steal_attempts r.joins r.beats
    r.max_deque r.idle_ms

let run_json ~(label : string) ~(scale : int) ~(beat_source : string)
    (rows : par_row list) : string =
  Printf.sprintf
    "    {\n\
    \      \"label\": \"%s\",\n\
    \      \"host_cores\": %d,\n\
    \      \"scale\": %d,\n\
    \      \"beat_source\": \"%s\",\n\
    \      \"results\": [\n\
     %s\n\
    \      ]\n\
    \    }"
    (json_escape label)
    (Domain.recommended_domain_count ())
    scale (json_escape beat_source)
    (String.concat ",\n" (List.map row_json rows))

(* The balanced [...] following "key": in [content], as raw inner
   text.  Sufficient for our own emitted JSON (no brackets inside
   strings). *)
let extract_array (content : string) (key : string) : string option =
  let needle = Printf.sprintf "\"%s\"" key in
  match
    let rec find i =
      if i + String.length needle > String.length content then None
      else if String.sub content i (String.length needle) = needle then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some at -> (
      match String.index_from_opt content at '[' with
      | None -> None
      | Some open_b ->
          let rec scan i depth =
            if i >= String.length content then None
            else
              match content.[i] with
              | '[' -> scan (i + 1) (depth + 1)
              | ']' ->
                  if depth = 1 then Some i else scan (i + 1) (depth - 1)
              | _ -> scan (i + 1) depth
          in
          scan open_b 0
          |> Option.map (fun close_b ->
                 String.sub content (open_b + 1) (close_b - open_b - 1)))

(* Value of a top-level "key": N int field, for legacy conversion. *)
let extract_int (content : string) (key : string) ~(default : int) : int =
  let needle = Printf.sprintf "\"%s\":" key in
  let rec find i =
    if i + String.length needle > String.length content then default
    else if String.sub content i (String.length needle) = needle then begin
      let rec skip j =
        if j < String.length content && content.[j] = ' ' then skip (j + 1)
        else j
      in
      let start = skip (i + String.length needle) in
      let rec grab j =
        if
          j < String.length content
          && (match content.[j] with '0' .. '9' | '-' -> true | _ -> false)
        then grab (j + 1)
        else j
      in
      let stop = grab start in
      if stop > start then
        match int_of_string_opt (String.sub content start (stop - start)) with
        | Some n -> n
        | None -> default
      else default
    end
    else find (i + 1)
  in
  find 0

let prior_runs (path : string) : string option =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ -> None
  | content -> (
      match extract_array content "trajectory" with
      | Some inner when String.trim inner <> "" -> Some (String.trim inner)
      | Some _ -> None
      | None -> (
          (* legacy single-run schema: wrap it as the first entry *)
          match extract_array content "results" with
          | None -> None
          | Some results ->
              Some
                (Printf.sprintf
                   "{\n\
                   \      \"label\": \"pre-trajectory (legacy)\",\n\
                   \      \"host_cores\": %d,\n\
                   \      \"scale\": %d,\n\
                   \      \"results\": [%s]\n\
                   \    }"
                   (extract_int content "host_cores" ~default:0)
                   (extract_int content "scale" ~default:1)
                   results)))

let write_par_json ~(path : string) ~(label : string) ~(scale : int)
    ~(beat_source : string) ~(append : bool) (rows : par_row list) : unit =
  let prior = if append then prior_runs path else None in
  let entries =
    match prior with
    | None -> run_json ~label ~scale ~beat_source rows
    | Some old -> old ^ ",\n" ^ run_json ~label ~scale ~beat_source rows
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"suite\": \"par_bench\",\n\
    \  \"trajectory\": [\n\
    \    %s\n\
    \  ]\n\
     }\n"
    (String.trim entries);
  close_out oc;
  Printf.printf "wrote %s (%d rows%s)\n%!" path (List.length rows)
    (if prior <> None then ", appended to prior trajectory" else "")

let geomean (xs : float list) : float =
  match xs with
  | [] -> nan
  | xs ->
      exp
        (List.fold_left (fun acc x -> acc +. log x) 0. xs
        /. float_of_int (List.length xs))

let run_par_bench ~(domains : int list) ~(scale : int) ~(json : string option)
    ~(benches : string list option) ~(append : bool) ~(label : string)
    ~(source : [ `Ping_domain | `Polling ])
    ~(assert_geomean : float option) ~(trace : string option) : unit =
  let source_name =
    match source with `Ping_domain -> "ping" | `Polling -> "polling"
  in
  let benches =
    match benches with
    | None -> Workloads.Real_bench.all
    | Some names ->
        List.map
          (fun n ->
            match Workloads.Real_bench.find n with
            | Some b -> b
            | None ->
                Printf.eprintf "unknown benchmark %S (have: %s)\n%!" n
                  (String.concat ", " Workloads.Real_bench.names);
                exit 2)
          names
  in
  Printf.printf
    "=== par bench: %d kernels, domains {%s}, scale %d, beat source %s, host \
     cores %d ===\n\
     %!"
    (List.length benches)
    (String.concat ", " (List.map string_of_int domains))
    scale source_name
    (Domain.recommended_domain_count ());
  Printf.printf "%-16s %8s %10s %10s %8s %10s %8s %8s %8s\n%!" "bench"
    "domains" "kernel_s" "session_s" "speedup" "promos" "steals" "joins"
    "beats";
  let rows = ref [] in
  let traces = ref [] in
  let emit r =
    rows := r :: !rows;
    Printf.printf "%-16s %8s %10.4f %10.4f %7.2fx %10d %8d %8d %8d\n%!"
      r.bench
      (if r.domains = 0 then "serial" else string_of_int r.domains)
      r.seconds r.session_seconds r.speedup r.promotions r.steals r.joins
      r.beats
  in
  List.iter
    (fun (b : Workloads.Real_bench.t) ->
      let serial_s, serial_sum =
        time_median ~repeat:3 (fun () ->
            Workloads.Real_bench.run_serial b ~scale)
      in
      emit
        {
          bench = b.name;
          domains = 0;
          seconds = serial_s;
          session_seconds = serial_s;
          speedup = 1.0;
          checksum = serial_sum;
          promotions = 0;
          steals = 0;
          steal_attempts = 0;
          joins = 0;
          beats = 0;
          max_deque = 0;
          idle_ms = 0.;
        };
      List.iter
        (fun d ->
          let cfg = { Par.Runtime.default_config with domains = d; source } in
          (* kernel time is clocked INSIDE the session so the row
             measures the scheduler, not Domain.spawn (the serial
             baseline has no session to set up) *)
          let samples =
            List.init 3 (fun _ ->
                let t0 = Mclock.now_s () in
                let (par_sum, kernel_s), st =
                  Par.Runtime.run ~config:cfg (fun () ->
                      let k0 = Mclock.now_s () in
                      let sum = b.run (module Par.Runtime.Exec) ~scale in
                      (sum, Mclock.now_s () -. k0))
                in
                let session_s = Mclock.now_s () -. t0 in
                (kernel_s, session_s, par_sum, st))
          in
          let kernel_s, session_s, par_sum, (st : Par.Runtime.stats) =
            median_by (fun (k, _, _, _) -> k) samples
          in
          if par_sum <> serial_sum then begin
            Printf.eprintf
              "FATAL: %s at %d domains diverged from serial (checksums %d vs \
               %d)\n\
               %!"
              b.name d par_sum serial_sum;
            exit 1
          end;
          emit
            {
              bench = b.name;
              domains = d;
              seconds = kernel_s;
              session_seconds = session_s;
              speedup = serial_s /. kernel_s;
              checksum = par_sum;
              promotions = st.total.promotions;
              steals = st.total.steals;
              steal_attempts = st.total.steal_attempts;
              joins = st.total.joins;
              beats = st.total.beats;
              max_deque = st.total.max_deque;
              idle_ms = float_of_int st.total.idle_ns /. 1e6;
            })
        domains;
      (* one extra run per kernel with the ring tracers attached, at
         the widest domain count, outside the timed battery so tracing
         cannot perturb the recorded rows *)
      match trace with
      | None -> ()
      | Some _ ->
          let d = List.fold_left max 1 domains in
          let tr = Obs.Trace.create () in
          let cfg =
            {
              Par.Runtime.default_config with
              domains = d;
              source;
              tracer = Some tr;
            }
          in
          let sum, _ =
            Par.Runtime.run ~config:cfg (fun () ->
                b.run (module Par.Runtime.Exec) ~scale)
          in
          if sum <> serial_sum then begin
            Printf.eprintf "FATAL: %s traced run diverged from serial\n%!"
              b.name;
            exit 1
          end;
          traces := (b.name, tr) :: !traces)
    benches;
  (match trace with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Obs.Export.many_to_chrome_string (List.rev !traces));
      close_out oc;
      Printf.printf "wrote %s (%d processes, %d events, %d dropped)\n%!" file
        (List.length !traces)
        (List.fold_left
           (fun acc (_, tr) -> acc + Obs.Trace.total_written tr)
           0 !traces)
        (List.fold_left
           (fun acc (_, tr) -> acc + Obs.Trace.total_dropped tr)
           0 !traces));
  let rows = List.rev !rows in
  (match json with
  | None -> (
      match Sys.getenv_opt "BENCH_JSON" with
      | None -> ()
      | Some path ->
          write_par_json ~path ~label ~scale ~beat_source:source_name ~append
            rows)
  | Some path ->
      write_par_json ~path ~label ~scale ~beat_source:source_name ~append rows);
  match assert_geomean with
  | None -> ()
  | Some floor ->
      let one_domain =
        List.filter_map
          (fun r -> if r.domains = 1 then Some r.speedup else None)
          rows
      in
      let g = geomean one_domain in
      Printf.printf
        "1-domain overhead: geomean %.3fx serial over %d kernels (floor \
         %.2fx)\n\
         %!"
        g (List.length one_domain) floor;
      if List.length one_domain = 0 then begin
        Printf.eprintf
          "--assert-geomean given but no 1-domain rows were measured\n%!";
        exit 1
      end;
      if g < floor then begin
        Printf.eprintf
          "FAIL: 1-domain geomean %.3fx is below the %.2fx overhead floor\n%!"
          g floor;
        exit 1
      end

(* ------------------------------------------------------------------ *)
(* The serving pipeline: seeded open-loop load against the multi-tenant
   execution pool, recording the latency/goodput trajectory as JSON
   (BENCH_serve.json; same accumulating shape as BENCH_par.json, so
   [prior_runs] reuses the textual appender). *)

let serve_run_json ~(label : string) ~(chaos_seed : int option)
    ~(retries : int) (r : Serve.Load.report) : string =
  let spec = r.spec in
  let latency_per_tenant =
    String.concat ", "
      (List.map
         (fun (tenant, s) ->
           Printf.sprintf "\"%s\": %s" (json_escape tenant)
             (Obs.Hist.summary_json s))
         r.latency_per_tenant)
  in
  Printf.sprintf
    "    {\n\
    \      \"label\": \"%s\",\n\
    \      \"host_cores\": %d,\n\
    \      \"requests\": %d,\n\
    \      \"tenants\": %d,\n\
    \      \"rate_rps\": %.0f,\n\
    \      \"seed\": %d,\n\
    \      \"slo_ms\": %.3f,\n\
    \      \"chaos_seed\": %s,\n\
    \      \"retry_budget\": %d,\n\
    \      \"results\": [\n\
    \        {\"offered\": %d, \"admitted\": %d, \"rejected_full\": %d, \
     \"rejected_shed\": %d, \"completed\": %d, \"failed\": %d, \
     \"cancelled\": %d, \"retried\": %d, \"restarts\": %d, \"lost\": %d, \
     \"duplicated\": %d, \"mismatched\": %d, \"met\": %d, \"missed\": %d, \
     \"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, \"mean_ms\": \
     %.4f, \"goodput_rps\": %.1f, \"throughput_rps\": %.1f, \
     \"reject_rate\": %.4f, \"elapsed_s\": \
     %.3f, \"pool_latency\": %s, \"latency_per_tenant\": {%s}}\n\
    \      ]\n\
    \    }"
    (json_escape label)
    (Domain.recommended_domain_count ())
    spec.requests spec.tenants spec.rate_rps spec.seed (1e3 *. spec.slo_s)
    (match chaos_seed with None -> "null" | Some n -> string_of_int n)
    retries r.offered r.admitted r.rejected_full r.rejected_shed r.completed
    r.failed r.cancelled r.retried r.restarts r.lost r.duplicated
    r.mismatched r.met r.missed r.p50_ms r.p95_ms r.p99_ms r.mean_ms
    r.goodput_rps r.throughput_rps r.reject_rate r.elapsed_s
    (Obs.Hist.summary_json r.pool_latency)
    latency_per_tenant

(* both the in-process serve rows and the loopback net rows land in the
   same accumulating trajectory file *)
let write_serve_entry ~(path : string) ~(append : bool) (entry : string) : unit
    =
  let prior = if append then prior_runs path else None in
  let entries =
    match prior with None -> entry | Some old -> old ^ ",\n" ^ entry
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"suite\": \"serve_bench\",\n\
    \  \"trajectory\": [\n\
    \    %s\n\
    \  ]\n\
     }\n"
    (String.trim entries);
  close_out oc;
  Printf.printf "wrote %s%s\n%!" path
    (if prior <> None then " (appended to prior trajectory)" else "")

let write_serve_json ~(path : string) ~(label : string) ~(append : bool)
    ~(chaos_seed : int option) ~(retries : int) (r : Serve.Load.report) : unit
    =
  write_serve_entry ~path ~append (serve_run_json ~label ~chaos_seed ~retries r)

let run_serve_bench ~(requests : int) ~(tenants : int) ~(rate : float)
    ~(seed : int) ~(domains : int) ~(cap : int) ~(slo_ms : float)
    ~(chaos_seed : int option) ~(retries : int) ~(json : string option)
    ~(append : bool) ~(label : string) : unit =
  Printf.printf
    "=== serve bench: %d requests, %d tenants, %.0f req/s offered, %d \
     domain(s), cap %d, SLO %.1f ms, seed %d%s, retries %d ===\n\
     %!"
    requests tenants rate domains cap slo_ms seed
    (match chaos_seed with
    | None -> ""
    | Some n -> Printf.sprintf ", chaos seed %d" n)
    retries;
  let chaos =
    (* timing-only faults: the bench's audit gate must stay meaningful
       (an injected raise without a retry budget is a guaranteed
       failure, not a robustness measurement) *)
    Option.map
      (fun cs -> Par.Chaos.random_plan ~raises:(retries > 0) ~seed:cs ~domains ())
      chaos_seed
  in
  let config =
    {
      Serve.Pool.default_config with
      runtime =
        {
          Par.Runtime.default_config with
          domains;
          heart_us = 30.;
          source = `Polling;
          chaos;
        };
      sched = { Serve.Sched.default_config with cap };
      default_slo_s = slo_ms /. 1e3;
      retries;
    }
  in
  let spec =
    {
      Serve.Load.default_spec with
      requests;
      tenants;
      rate_rps = rate;
      seed;
      slo_s = slo_ms /. 1e3;
    }
  in
  let pool = Serve.Pool.create ~config () in
  let report = Serve.Load.run pool spec in
  ignore (Serve.Pool.close pool);
  Format.printf "%a@." Serve.Load.pp_report report;
  (match json with
  | None -> ()
  | Some path -> write_serve_json ~path ~label ~append ~chaos_seed ~retries report);
  (* the exactly-once gate: a lost, duplicated or corrupted request is
     a correctness failure regardless of the latency numbers *)
  if report.lost > 0 || report.duplicated > 0 || report.mismatched > 0 then begin
    Printf.eprintf
      "FAIL: audit (lost %d, duplicated %d, mismatched %d)\n%!" report.lost
      report.duplicated report.mismatched;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* The network serving fabric: the same audit-gated load, but over a
   loopback socket through Net.Server — shards, router policies and
   micro-batching included.  One leg per placement policy, all in one
   process, so a single run yields the FIFO-vs-size-aware head-of-line
   comparison the trajectory tracks. *)

let net_run_json ~(label : string) ~(policy : string) ~(shards : int)
    ~(batch_max : int) ~(batch_us : float) ~(chaos_seed : int option)
    ~(retries : int) (r : Net.Netload.report) : string =
  let spec = r.spec in
  Printf.sprintf
    "    {\n\
    \      \"label\": \"%s\",\n\
    \      \"host_cores\": %d,\n\
    \      \"requests\": %d,\n\
    \      \"tenants\": %d,\n\
    \      \"seed\": %d,\n\
    \      \"slo_ms\": %.3f,\n\
    \      \"chaos_seed\": %s,\n\
    \      \"retry_budget\": %d,\n\
    \      \"net\": {\"policy\": \"%s\", \"shards\": %d, \"conns\": %d, \
     \"window\": %d, \"batch_max\": %d, \"batch_us\": %.0f},\n\
    \      \"results\": [\n\
    \        {\"submitted\": %d, \"completed\": %d, \"met\": %d, \"missed\": \
     %d, \"rejected\": %d, \"cancelled\": %d, \"failed\": %d, \"closed\": \
     %d, \"lost\": %d, \"duplicated\": %d, \"mismatched\": %d, \
     \"throughput_rps\": %.1f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, \
     \"p99_ms\": %.4f, \"small_p95_ms\": %.4f, \"small_p99_ms\": %.4f, \
     \"large_p95_ms\": %.4f, \"elapsed_s\": %.3f}\n\
    \      ]\n\
    \    }"
    (json_escape label)
    (Domain.recommended_domain_count ())
    spec.requests spec.tenants spec.seed (1e3 *. spec.slo_s)
    (match chaos_seed with None -> "null" | Some n -> string_of_int n)
    retries (json_escape policy) shards spec.conns spec.window batch_max
    batch_us r.submitted r.completed r.met r.missed r.rejected r.cancelled
    r.failed r.closed r.lost r.duplicated r.mismatched r.throughput_rps
    r.all.p50_ms r.all.p95_ms r.all.p99_ms r.small.p95_ms r.small.p99_ms
    r.large.p95_ms r.elapsed_s

let run_net_bench ~(requests : int) ~(tenants : int) ~(seed : int)
    ~(domains : int) ~(cap : int) ~(slo_ms : float)
    ~(chaos_seed : int option) ~(retries : int) ~(shards : int)
    ~(conns : int) ~(window : int) ~(batch_max : int) ~(batch_us : float)
    ~(small_max : int) ~(json : string option) ~(append : bool)
    ~(label : string) : unit =
  let legs =
    (* the FIFO baseline is one pool with no routing decision at all;
       the policy legs split the same domain budget across [shards] *)
    [
      ("fifo", 1, Net.Router.Jsq);
      ("hash", shards, Net.Router.Tenant_hash);
      ("jsq", shards, Net.Router.Jsq);
      ("size", shards, Net.Router.Size_aware { small_max });
    ]
  in
  let chaos () =
    Option.map
      (fun cs ->
        Par.Chaos.random_plan ~raises:(retries > 0) ~seed:cs ~domains ())
      chaos_seed
  in
  let spec =
    {
      Net.Netload.default_spec with
      requests;
      conns;
      tenants;
      seed;
      slo_s = slo_ms /. 1e3;
      tight_frac = 0.;
      (* a heavy large class so the single-pool baseline actually pays a
         head-of-line price that the size-aware split can remove *)
      sizes = [ (256, 0.85); (8192, 0.10); (262144, 0.05) ];
      small_max;
      window;
    }
  in
  let results =
    List.map
      (fun (name, shards, policy) ->
        Printf.printf
          "=== net bench [%s]: %d requests, %d conns, window %d, %d \
           shard(s) x %d domain(s), batch <=%d @ %.0f us, cap %d, SLO %.1f \
           ms%s ===\n\
           %!"
          name requests conns window shards domains batch_max batch_us cap
          slo_ms
          (match chaos_seed with
          | None -> ""
          | Some n -> Printf.sprintf ", chaos seed %d" n);
        let pool_cfg =
          {
            Serve.Pool.default_config with
            runtime =
              {
                Par.Runtime.default_config with
                domains;
                heart_us = 30.;
                source = `Polling;
                chaos = chaos ();
              };
            sched = { Serve.Sched.default_config with cap };
            default_slo_s = slo_ms /. 1e3;
            retries;
          }
        in
        let srv =
          Net.Server.create
            ~config:
              {
                Net.Server.default_config with
                shard =
                  {
                    Net.Shard.default_config with
                    shards;
                    pool = pool_cfg;
                    policy;
                    batch_max;
                    batch_delay_us = batch_us;
                    batch_size_max = small_max;
                  };
              }
            (Net.Server.Tcp { host = "127.0.0.1"; port = 0 })
            ()
        in
        let r = Net.Netload.run (Net.Server.bound_addr srv) spec in
        let st = Net.Server.stop srv in
        Format.printf "%a@." Net.Netload.pp_report r;
        Printf.printf "batched members: %d of %d routed\n%!"
          st.shard.batched_members st.shard.submitted;
        (name, shards, r))
      legs
  in
  (match json with
  | None -> ()
  | Some path ->
      List.iteri
        (fun i (name, shards, r) ->
          write_serve_entry ~path
            ~append:(append || i > 0)
            (net_run_json
               ~label:(Printf.sprintf "%s-net-%s" label name)
               ~policy:name ~shards ~batch_max ~batch_us ~chaos_seed ~retries
               r))
        results);
  (* the head-of-line contrast the size-aware policy exists for *)
  (match
     ( List.find_opt (fun (n, _, _) -> n = "fifo") results,
       List.find_opt (fun (n, _, _) -> n = "size") results )
   with
  | Some (_, _, fifo), Some (_, _, size) ->
      Printf.printf
        "small-request p95: fifo %.2f ms vs size-aware %.2f ms (%s)\n%!"
        fifo.small.p95_ms size.small.p95_ms
        (if size.small.p95_ms < fifo.small.p95_ms then
           "size-aware isolates the small class"
         else "no isolation win on this host")
  | _ -> ());
  (* the audit gate covers every leg *)
  List.iter
    (fun (name, _, (r : Net.Netload.report)) ->
      if not (Net.Netload.audit_ok r) then begin
        Printf.eprintf
          "FAIL: net audit [%s] (lost %d, duplicated %d, mismatched %d, \
           completed %d)\n\
           %!"
          name r.lost r.duplicated r.mismatched r.completed;
        exit 1
      end)
    results

let parse_int_list (what : string) (s : string) : int list =
  String.split_on_char ',' s
  |> List.filter (fun s -> s <> "")
  |> List.map (fun s ->
         match int_of_string_opt (String.trim s) with
         | Some n when n > 0 -> n
         | _ ->
             Printf.eprintf "bad %s %S (want comma-separated ints)\n%!" what s;
             exit 2)

let usage () =
  print_endline
    "usage: bench [--par-bench] [--domains 1,2,4] [--scale N] [--json PATH]\n\
    \             [--benches a,b,c] [--append] [--label NAME]\n\
    \             [--beat-source polling|ping] [--assert-geomean F]\n\
    \             [--trace FILE]\n\
     without --par-bench: regenerate the simulated figures (unless\n\
     REPRO_QUICK=1) and run the Bechamel microbenchmark suite.\n\
     With --par-bench: run the real kernels on the multi-domain runtime\n\
     and write BENCH_par.json (or --json PATH / $BENCH_JSON).\n\
     With --serve-bench: drive a seeded open-loop load (Poisson arrivals,\n\
     Zipf tenants, mixed kernel sizes) through the multi-tenant execution\n\
     server, audit exactly-once execution, and write the latency/goodput\n\
     trajectory (--json PATH; e.g. BENCH_serve.json).  Extra flags:\n\
    \  --requests N --tenants N --rate RPS --seed N --cap N --slo-ms F\n\
    \  --chaos-seed N --retries N\n\
    \  (--domains takes its first element for the pool's session)\n\
     With --serve-bench --net: the same audit-gated load over a loopback\n\
     socket through Net.Server — one leg per router policy (fifo 1-shard\n\
     baseline, tenant-hash, jsq, size-aware), each a labelled trajectory\n\
     row with req/s and client-side p50/p95/p99.  Extra flags:\n\
    \  --shards N --conns N --window N (per-conn in-flight bound)\n\
    \  --batch-max N --batch-us F (micro-batching) --small-max N\n\
    \  --append            add this run to the file's trajectory instead\n\
    \                      of overwriting (legacy single-run files are\n\
    \                      wrapped as the first trajectory entry)\n\
    \  --label NAME        label for this trajectory entry\n\
    \  --beat-source S     polling (default) or ping: drive beats from\n\
    \                      the workers' own polls on a monotonic clock,\n\
    \                      or from the dedicated ping domain (which\n\
    \                      costs a whole timer tick per beat when host\n\
    \                      cores are scarce)\n\
    \  --assert-geomean F  exit 1 unless the geomean 1-domain speedup\n\
    \                      over the measured kernels is >= F (the\n\
    \                      single-domain overhead floor in CI)\n\
    \  --trace FILE        with --par-bench: re-run each kernel once at\n\
    \                      the widest domain count with the per-domain\n\
    \                      ring tracers attached (outside the timed\n\
    \                      battery) and write one Perfetto-loadable\n\
    \                      Chrome trace, one process per kernel"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let par_bench = ref false in
  let serve_bench = ref false in
  let domains = ref [ 1; 2; 4 ] in
  let scale = ref 1 in
  let json = ref None in
  let benches = ref None in
  let append = ref false in
  let label = ref None in
  let source = ref `Polling in
  let assert_geomean = ref None in
  let trace = ref None in
  let requests = ref 10_000 in
  let tenants = ref 8 in
  let rate = ref 20_000. in
  let seed = ref 0x5E12E in
  let cap = ref 512 in
  let slo_ms = ref 50. in
  let chaos_seed = ref None in
  let retries = ref 0 in
  let net = ref false in
  let shards = ref 2 in
  let conns = ref 2 in
  let window = ref 64 in
  let batch_max = ref 8 in
  let batch_us = ref 200. in
  let small_max = ref 4 in
  let int_flag what v r rest parse =
    (match int_of_string_opt v with
    | Some n when n >= 0 -> r := n
    | _ ->
        Printf.eprintf "bad %s %S\n%!" what v;
        exit 2);
    parse rest
  in
  let rec parse = function
    | [] -> ()
    | "--par-bench" :: rest ->
        par_bench := true;
        parse rest
    | "--serve-bench" :: rest ->
        serve_bench := true;
        parse rest
    | "--net" :: rest ->
        net := true;
        parse rest
    | "--shards" :: v :: rest -> int_flag "--shards" v shards rest parse
    | "--conns" :: v :: rest -> int_flag "--conns" v conns rest parse
    | "--window" :: v :: rest -> int_flag "--window" v window rest parse
    | "--batch-max" :: v :: rest -> int_flag "--batch-max" v batch_max rest parse
    | "--small-max" :: v :: rest -> int_flag "--small-max" v small_max rest parse
    | "--batch-us" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0. -> batch_us := f
        | _ ->
            Printf.eprintf "bad --batch-us %S\n%!" v;
            exit 2);
        parse rest
    | "--requests" :: v :: rest -> int_flag "--requests" v requests rest parse
    | "--tenants" :: v :: rest -> int_flag "--tenants" v tenants rest parse
    | "--seed" :: v :: rest -> int_flag "--seed" v seed rest parse
    | "--cap" :: v :: rest -> int_flag "--cap" v cap rest parse
    | "--retries" :: v :: rest -> int_flag "--retries" v retries rest parse
    | "--chaos-seed" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n -> chaos_seed := Some n
        | None ->
            Printf.eprintf "bad --chaos-seed %S\n%!" v;
            exit 2);
        parse rest
    | "--rate" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0. -> rate := f
        | _ ->
            Printf.eprintf "bad --rate %S\n%!" v;
            exit 2);
        parse rest
    | "--slo-ms" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0. -> slo_ms := f
        | _ ->
            Printf.eprintf "bad --slo-ms %S\n%!" v;
            exit 2);
        parse rest
    | "--domains" :: v :: rest ->
        domains := parse_int_list "--domains" v;
        parse rest
    | "--scale" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n > 0 -> scale := n
        | _ ->
            Printf.eprintf "bad --scale %S\n%!" v;
            exit 2);
        parse rest
    | "--json" :: v :: rest ->
        json := Some v;
        parse rest
    | "--trace" :: v :: rest ->
        trace := Some v;
        parse rest
    | "--benches" :: v :: rest ->
        benches :=
          Some (String.split_on_char ',' v |> List.filter (fun s -> s <> ""));
        parse rest
    | "--append" :: rest ->
        append := true;
        parse rest
    | "--label" :: v :: rest ->
        label := Some v;
        parse rest
    | "--beat-source" :: v :: rest ->
        (match v with
        | "polling" -> source := `Polling
        | "ping" -> source := `Ping_domain
        | _ ->
            Printf.eprintf "bad --beat-source %S (want polling|ping)\n%!" v;
            exit 2);
        parse rest
    | "--assert-geomean" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0. -> assert_geomean := Some f
        | _ ->
            Printf.eprintf "bad --assert-geomean %S\n%!" v;
            exit 2);
        parse rest
    | ("--help" | "-h") :: _ -> usage (); exit 0
    | arg :: _ ->
        Printf.eprintf "unknown argument %S\n%!" arg;
        usage ();
        exit 2
  in
  parse args;
  if !serve_bench then begin
    let label =
      match !label with
      | Some l -> l
      | None -> Printf.sprintf "run-%.0f" (Unix.time ())
    in
    let domains = match !domains with d :: _ -> d | [] -> 1 in
    if !net then
      run_net_bench ~requests:!requests ~tenants:!tenants ~seed:!seed ~domains
        ~cap:!cap ~slo_ms:!slo_ms ~chaos_seed:!chaos_seed ~retries:!retries
        ~shards:!shards ~conns:!conns ~window:!window ~batch_max:!batch_max
        ~batch_us:!batch_us ~small_max:!small_max ~json:!json ~append:!append
        ~label
    else
      run_serve_bench ~requests:!requests ~tenants:!tenants ~rate:!rate
        ~seed:!seed ~domains ~cap:!cap ~slo_ms:!slo_ms ~chaos_seed:!chaos_seed
        ~retries:!retries ~json:!json ~append:!append ~label
  end
  else if !par_bench then begin
    let label =
      match !label with
      | Some l -> l
      | None -> Printf.sprintf "run-%.0f" (Unix.time ())
    in
    run_par_bench ~domains:!domains ~scale:!scale ~json:!json
      ~benches:!benches ~append:!append ~label ~source:!source
      ~assert_geomean:!assert_geomean ~trace:!trace
  end
  else begin
    if Sys.getenv_opt "REPRO_QUICK" = None then run_figures ();
    benchmark ()
  end
