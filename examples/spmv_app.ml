(* spmv: sparse matrix × dense vector on a power-law matrix — the
   paper's showcase of irregular nested parallelism.

   Three views of the same computation:
   1. the real kernel under the effects-based heartbeat runtime
      (actual promotions on a real power-law CSR matrix);
   2. correctness against the serial kernel;
   3. the simulated 15-core testbed: Cilk's eager decomposition vs
      TPAL's heartbeat, reproducing the Figure 7 shape.

   Run with:  dune exec examples/spmv_app.exe *)

module Hb : Workloads.Exec.S = struct
  let par_for = Heartbeat.Hb_runtime.par_for
  let fork2 = Heartbeat.Hb_runtime.fork2
end

let () =
  let rng = Sim.Prng.create ~seed:2024 in
  let n = 30_000 in
  let m =
    Workloads.Csr.powerlaw ~rng ~nrows:n ~ncols:n ~max_row_len:(n / 2) ()
  in
  Printf.printf "power-law matrix: %d rows, %d non-zeros, heaviest row %d\n"
    n
    (Workloads.Csr.nnz m)
    (let best = ref 0 in
     for r = 0 to n - 1 do
       best := max !best (Workloads.Csr.row_length m r)
     done;
     !best);

  let x = Array.init n (fun i -> 1. +. (float_of_int (i mod 13) /. 7.)) in
  let y_serial = Workloads.Csr.spmv_serial m x in

  (* Real heartbeat runtime: rows are a promotable parallel loop, long
     rows a promotable nested reduction.  The on_event hook watches the
     scheduler live — the same event stream Sim_trace records for the
     simulator. *)
  let y = Array.make n 0. in
  let ev_beats = ref 0
  and ev_loop = ref 0
  and ev_branch = ref 0
  and ev_suspends = ref 0
  and ev_tasks = ref 0 in
  let on_event : Heartbeat.Hb_runtime.event -> unit = function
    | Heartbeat.Hb_runtime.Beat -> incr ev_beats
    | Promoted `Loop -> incr ev_loop
    | Promoted `Branch -> incr ev_branch
    | Join_suspend -> incr ev_suspends
    | Task_start -> incr ev_tasks
    | Join_resume | Task_finish | Stall_detected _ -> ()
  in
  let (), st =
    Heartbeat.Hb_runtime.run
      ~config:
        { Heartbeat.Hb_runtime.default_config with
          heart_us = 100.;
          source = `Polling;
          on_event = Some on_event }
      (fun () -> Workloads.Csr.spmv ~row_grain:1024 (module Hb) m x y)
  in
  let ok =
    Array.for_all2
      (fun a b -> Float.abs (a -. b) <= 1e-9 *. (1. +. Float.abs b))
      y y_serial
  in
  Printf.printf
    "heartbeat runtime: result matches serial = %b | beats=%d promotions=%d \
     (loops=%d, branches=%d) joins=%d\n"
    ok st.beats st.promotions st.loop_promotions st.branch_promotions st.joins;
  Printf.printf
    "event hook agrees: beats=%b promotions=%b suspends=%b | promoted tasks \
     executed=%d\n"
    (!ev_beats = st.beats)
    (!ev_loop = st.loop_promotions && !ev_branch = st.branch_promotions)
    (!ev_suspends = st.joins) !ev_tasks;

  (* Simulated testbed, Figure 7 shape. *)
  let w = Option.get (Workloads.Workload.find "spmv-powerlaw") in
  Printf.printf "\nsimulated 15-core testbed (%s):\n" w.descr;
  Printf.printf "  Cilk/Linux     speedup: %5.2f\n"
    (Repro.Runner.speedup Repro.Runner.Cilk_sys w);
  Printf.printf "  TPAL/Linux     speedup: %5.2f\n"
    (Repro.Runner.speedup Repro.Runner.Tpal_linux w);
  Printf.printf "  TPAL/Nautilus  speedup: %5.2f\n"
    (Repro.Runner.speedup Repro.Runner.Tpal_nautilus w)
