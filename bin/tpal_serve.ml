(* Heartbeat-as-a-service driver: boot one warm multi-tenant execution
   pool and drive it, either with the seeded open-loop synthetic load
   (the default; same generator as `bench --serve-bench`) or with
   explicit requests — a registry kernel or a .tpal program.  With
   --listen it instead becomes the socket front-end: a sharded pool
   fabric behind the Net.Wire protocol; with --connect it is the
   matching load-generating client.

     tpal_serve --requests 10000 --tenants 4 --rate 20000
     tpal_serve --kernel plus_reduce --scale 2 --domains 4
     tpal_serve --tpal examples/asm/fib.tpal
     tpal_serve --listen 127.0.0.1:7411 --shards 2 --policy size --batch-us 200
     tpal_serve --connect 127.0.0.1:7411 --requests 100000 --conns 4

   SIGINT/SIGTERM are graceful everywhere: the in-process load stops
   submitting and drains; the server stops accepting, notifies
   clients, drains or typed-rejects queued requests, flushes metrics
   and trace output, and exits 0.

   Exits non-zero when the exactly-once audit fails (lost, duplicated
   or mismatched requests) or an explicit request errors. *)

(* a signal flag both the load loop and the server wait-loop poll;
   handlers only flip the atomic — nothing async-unsafe *)
let stop_requested = Atomic.make false

let install_signal_handlers () =
  let h = Sys.Signal_handle (fun _ -> Atomic.set stop_requested true) in
  (try Sys.set_signal Sys.sigint h with _ -> ());
  try Sys.set_signal Sys.sigterm h with _ -> ()

let pool_config ~domains ~heart_us ~cap ~quantum ~panic_ms ~slo_ms ~lease_s
    ~tracer ~chaos ~retries : Serve.Pool.config =
  {
    Serve.Pool.default_config with
    (* one tracer for both layers: the server's admission/dispatch track
       interleaves with the worker-domain tracks in the same trace *)
    tracer;
    runtime =
      {
        Par.Runtime.default_config with
        domains;
        heart_us;
        source = `Polling;
        tracer;
        chaos;
      };
    sched =
      {
        Serve.Sched.cap;
        quantum;
        panic_slack = panic_ms /. 1e3;
      };
    default_slo_s = slo_ms /. 1e3;
    lease_s;
    retries;
  }

let run_load pool ~requests ~tenants ~rate ~seed ~slo_ms ~tight_frac =
  let spec =
    {
      Serve.Load.default_spec with
      requests;
      tenants;
      rate_rps = rate;
      seed;
      slo_s = slo_ms /. 1e3;
      tight_frac;
    }
  in
  let report =
    Serve.Load.run ~interrupted:(fun () -> Atomic.get stop_requested) pool spec
  in
  Fmt.pr "%a@." Serve.Load.pp_report report;
  if report.lost > 0 || report.duplicated > 0 || report.mismatched > 0 then begin
    Fmt.epr
      "tpal_serve: audit FAILED (lost %d, duplicated %d, mismatched %d)@."
      report.lost report.duplicated report.mismatched;
    1
  end
  else 0


let run_kernel pool ~kernel ~scale =
  match Workloads.Real_bench.find kernel with
  | None ->
      Fmt.epr "tpal_serve: unknown kernel %S (known: %s)@." kernel
        (String.concat ", "
           (List.map
              (fun (b : Workloads.Real_bench.t) -> b.name)
              Workloads.Real_bench.all));
      2
  | Some bench -> (
      let expected = Workloads.Real_bench.run_serial bench ~scale in
      match
        Serve.Pool.submit pool ~tenant:"cli"
          (Serve.Pool.Kernel { bench; scale })
      with
      | Error e ->
          Fmt.epr "tpal_serve: submit rejected (%a)@." Serve.Pool.pp_error e;
          1
      | Ok ticket -> (
          match Serve.Pool.await pool ticket with
          | Ok { outcome = Serve.Pool.Checksum c; sojourn_s; met_deadline } ->
              Fmt.pr
                "%s scale %d: checksum %d (%s serial), %.3f ms, deadline %s@."
                kernel scale c
                (if c = expected then "matches" else "MISMATCHES")
                (1e3 *. sojourn_s)
                (if met_deadline then "met" else "missed");
              if c = expected then 0 else 1
          | Ok _ -> assert false
          | Error e ->
              Fmt.epr "tpal_serve: kernel request errored (%a)@."
                Serve.Pool.pp_error e;
              1))

let read_file (path : string) : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* seed registers by prepending moves to the entry block — requests
   carry whole programs, so arguments travel inside the program *)
let seed_program (prog : Tpal.Ast.program) (seeds : (string * int) list) :
    Tpal.Ast.program =
  if seeds = [] then prog
  else
    {
      prog with
      blocks =
        List.map
          (fun (label, (b : Tpal.Ast.block)) ->
            if label <> prog.entry then (label, b)
            else
              ( label,
                {
                  b with
                  body =
                    List.map
                      (fun (r, n) -> Tpal.Ast.Mov (r, Tpal.Ast.Int n))
                      seeds
                    @ b.body;
                } ))
          prog.blocks;
    }

let run_tpal pool ~path ~seeds =
  match Tpal.Parser.parse_result (read_file path) with
  | Error msg ->
      Fmt.epr "tpal_serve: %s@." msg;
      2
  | Ok prog -> (
      let prog = seed_program prog seeds in
      match
        Serve.Pool.submit pool ~tenant:"cli"
          (Serve.Pool.Tpal { prog; options = Tpal.Eval.default_options })
      with
      | Error e ->
          Fmt.epr "tpal_serve: submit rejected (%a)@." Serve.Pool.pp_error e;
          1
      | Ok ticket -> (
          match Serve.Pool.await pool ticket with
          | Ok { outcome = Serve.Pool.Tpal_result (Ok task); sojourn_s; _ } ->
              Fmt.pr "@[<v>%s: finished in %.3f ms@,%a@]@." path
                (1e3 *. sojourn_s) Tpal.Regfile.pp task.regs;
              0
          | Ok { outcome = Serve.Pool.Tpal_result (Error e); _ } ->
              Fmt.epr "tpal_serve: machine stuck: %a@." Tpal.Machine_error.pp
                e;
              1
          | Ok _ -> assert false
          | Error e ->
              Fmt.epr "tpal_serve: request errored (%a)@." Serve.Pool.pp_error
                e;
              1))

let write_trace ~(trace : string option) ~(tracer : Obs.Trace.t option) : unit
    =
  match (trace, tracer) with
  | Some file, Some tr -> (
      match open_out file with
      | exception Sys_error msg -> Fmt.epr "cannot write trace: %s@." msg
      | oc ->
          output_string oc
            (Obs.Export.to_chrome_string ~process:"tpal-serve" tr);
          close_out oc;
          Fmt.pr
            "wrote %s (%d events, %d dropped) — load it at \
             https://ui.perfetto.dev@."
            file
            (Obs.Trace.total_written tr)
            (Obs.Trace.total_dropped tr))
  | _ -> ()

(* --listen: the socket front-end.  Blocks until SIGINT/SIGTERM, then
   drains gracefully and exits 0. *)
let run_server ~listen ~domains ~heart_us ~cap ~quantum ~panic_ms ~slo_ms
    ~lease_s ~tracer ~chaos ~retries ~shards ~policy ~batch_us ~batch_max
    ~small_max ~metrics ~trace =
  match Net.Server.addr_of_string listen with
  | None ->
      Fmt.epr "tpal_serve: bad --listen address %S (want host:port or \
               unix:/path)@." listen;
      2
  | Some addr -> (
      match Net.Router.policy_of_string ~small_max policy with
      | None ->
          Fmt.epr
            "tpal_serve: unknown --policy %S (want hash | jsq | size)@." policy;
          2
      | Some policy ->
          install_signal_handlers ();
          let shard_cfg =
            {
              Net.Shard.default_config with
              shards;
              pool =
                pool_config ~domains ~heart_us ~cap ~quantum ~panic_ms ~slo_ms
                  ~lease_s ~tracer ~chaos ~retries;
              policy;
              batch_max;
              batch_delay_us = batch_us;
              batch_size_max = small_max;
            }
          in
          let srv =
            Net.Server.create
              ~config:
                { Net.Server.default_config with shard = shard_cfg; tracer }
              addr ()
          in
          Fmt.pr
            "listening on %s: %d shard(s) x %d domain(s), policy %s, batch \
             <=%d @@ %.0f us@."
            (Net.Server.addr_to_string (Net.Server.bound_addr srv))
            shards domains
            (Net.Router.policy_name policy)
            batch_max batch_us;
          while not (Atomic.get stop_requested) do
            Thread.delay 0.05
          done;
          Fmt.pr "draining...@.";
          let st = Net.Server.stop srv in
          Fmt.pr
            "server: %d conns, %d submits, %d responses, frames rx %d / tx \
             %d, %d skipped, %d dead conns@."
            st.conns st.submits st.responses st.frames_rx st.frames_tx
            st.skipped st.dead_conns;
          Array.iteri
            (fun i (ss : Net.Shard.shard_stats) ->
              Fmt.pr
                "shard %d: routed %d, submitted %d, served %d (met %d), \
                 batches %d@."
                i ss.routed ss.pool.submitted ss.pool.served ss.pool.met
                ss.batch.flushes)
            st.shard.per_shard;
          if metrics then
            Array.iteri
              (fun i (ss : Net.Shard.shard_stats) ->
                Fmt.pr "shard %d latency: %a@." i Obs.Hist.pp_summary
                  ss.pool.latency)
              st.shard.per_shard;
          write_trace ~trace ~tracer;
          0)

(* --connect: the load-generating client; the exactly-once audit is
   the exit code. *)
let run_client ~connect ~requests ~conns ~tenants ~seed ~slo_ms ~tight_frac
    ~window ~small_max =
  match Net.Server.addr_of_string connect with
  | None ->
      Fmt.epr "tpal_serve: bad --connect address %S@." connect;
      2
  | Some addr ->
      let spec =
        {
          Net.Netload.default_spec with
          requests;
          conns;
          tenants;
          seed;
          slo_s = slo_ms /. 1e3;
          tight_frac;
          small_max;
          window;
        }
      in
      let r = Net.Netload.run addr spec in
      Fmt.pr "%a@." Net.Netload.pp_report r;
      if Net.Netload.audit_ok r then 0
      else begin
        Fmt.epr
          "tpal_serve: audit FAILED (lost %d, duplicated %d, mismatched %d, \
           completed %d)@."
          r.lost r.duplicated r.mismatched r.completed;
        1
      end

let run ~requests ~tenants ~rate ~seed ~slo_ms ~tight_frac ~domains ~heart_us
    ~cap ~quantum ~panic_ms ~lease_s ~chaos_seed ~retries ~kernel ~scale ~tpal
    ~seeds ~metrics ~trace ~listen ~connect ~shards ~policy ~batch_us
    ~batch_max ~small_max ~conns ~window =
  let tracer =
    match trace with None -> None | Some _ -> Some (Obs.Trace.create ())
  in
  let chaos =
    match chaos_seed with
    | None -> None
    | Some cs -> Some (Par.Chaos.random_plan ~raises:false ~seed:cs ~domains ())
  in
  (match chaos with
  | Some plan -> Fmt.pr "chaos: %a@." Par.Chaos.pp_plan plan
  | None -> ());
  match (listen, connect) with
  | Some listen, _ ->
      run_server ~listen ~domains ~heart_us ~cap ~quantum ~panic_ms ~slo_ms
        ~lease_s ~tracer ~chaos ~retries ~shards ~policy ~batch_us ~batch_max
        ~small_max ~metrics ~trace
  | None, Some connect ->
      run_client ~connect ~requests ~conns ~tenants ~seed ~slo_ms ~tight_frac
        ~window ~small_max
  | None, None ->
  install_signal_handlers ();
  let pool =
    Serve.Pool.create
      ~config:
        (pool_config ~domains ~heart_us ~cap ~quantum ~panic_ms ~slo_ms
           ~lease_s ~tracer ~chaos ~retries)
      ()
  in
  let code =
    match (kernel, tpal) with
    | Some k, _ -> run_kernel pool ~kernel:k ~scale
    | None, Some path -> run_tpal pool ~path ~seeds
    | None, None ->
        run_load pool ~requests ~tenants ~rate ~seed ~slo_ms ~tight_frac
  in
  let st = Serve.Pool.close pool in
  Fmt.pr
    "pool: submitted %d, served %d (met %d, missed %d), shed %d, rejected \
     %d, cancelled %d, cancels %d, retried %d, restarts %d, failures %d, \
     stalls %d@."
    st.submitted st.served st.met st.missed st.shed st.sched.rejected
    st.cancelled st.cancels st.retried st.restarts st.failures
    st.stalls_detected;
  if metrics then begin
    (match st.runtime with
    | Some rt -> Fmt.pr "%a@." Obs.Metrics.pp (Par.Runtime.metrics ?tracer rt)
    | None -> ());
    Fmt.pr "latency (all tenants): %a@." Obs.Hist.pp_summary st.latency;
    List.iter
      (fun (tenant, s) ->
        Fmt.pr "latency %-8s %a@." tenant Obs.Hist.pp_summary s)
      st.latency_per_tenant
  end;
  write_trace ~trace ~tracer;
  code

open Cmdliner

let requests =
  Arg.(value & opt int 10_000 & info [ "requests" ] ~docv:"N" ~doc:"Synthetic-load request count.")

let tenants =
  Arg.(value & opt int 8 & info [ "tenants" ] ~docv:"N" ~doc:"Tenant count (Zipf-skewed offered load).")

let rate =
  Arg.(value & opt float 20_000. & info [ "rate" ] ~docv:"RPS" ~doc:"Poisson arrival rate; 0 submits as fast as possible.")

let seed =
  Arg.(value & opt int 0x5E12E & info [ "seed" ] ~docv:"N" ~doc:"Load-generator seed.")

let slo_ms =
  Arg.(value & opt float 50. & info [ "slo-ms" ] ~docv:"MS" ~doc:"Default request deadline.")

let tight_frac =
  Arg.(value & opt float 0.1 & info [ "tight-frac" ] ~docv:"F" ~doc:"Fraction of requests with 10x tighter deadlines.")

let domains =
  Arg.(value & opt int (max 1 (Domain.recommended_domain_count () - 1))
    & info [ "domains" ] ~docv:"D" ~doc:"Worker domains in the warm session.")

let heart_us =
  Arg.(value & opt float 30. & info [ "heart-us" ] ~docv:"US" ~doc:"Heartbeat period.")

let cap =
  Arg.(value & opt int 512 & info [ "cap" ] ~docv:"N" ~doc:"Admission cap (queued requests across tenants).")

let quantum =
  Arg.(value & opt int 1 & info [ "quantum" ] ~docv:"N" ~doc:"DRR deficit grant per round, in size units.")

let panic_ms =
  Arg.(value & opt float 1. & info [ "panic-ms" ] ~docv:"MS" ~doc:"EDF panic slack: requests this close to deadline bypass round-robin order.")

let lease_s =
  Arg.(value & opt float 10. & info [ "lease-s" ] ~docv:"S" ~doc:"Wedged-request lease before the pool degrades; 0 disables the watchdog.")

let chaos_seed =
  Arg.(value & opt (some int) None
    & info [ "chaos-seed" ] ~docv:"N"
        ~doc:"Inject a seeded timing-fault plan (beat stalls, slowdowns, \
              dropped beats) into the warm session's worker domains; the \
              exactly-once audit must still pass.")

let retries =
  Arg.(value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:"Per-tenant retry budget for retryable request failures \
              (exponential backoff, idempotent re-admission).")

let kernel =
  Arg.(value & opt (some string) None & info [ "kernel" ] ~docv:"NAME" ~doc:"Submit one registry kernel instead of the synthetic load.")

let scale =
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Kernel scale factor.")

let tpal =
  Arg.(value & opt (some string) None & info [ "tpal" ] ~docv:"FILE" ~doc:"Submit one .tpal program instead of the synthetic load.")

let seed_conv : (string * int) Arg.conv =
  let parse s =
    match String.split_on_char '=' s with
    | [ r; v ] -> (
        match int_of_string_opt v with
        | Some n -> Ok (r, n)
        | None -> Error (`Msg ("invalid integer in seed " ^ s)))
    | _ -> Error (`Msg ("expected reg=int, got " ^ s))
  in
  let print ppf (r, n) = Format.fprintf ppf "%s=%d" r n in
  Arg.conv (parse, print)

let seeds =
  Arg.(value & opt_all seed_conv []
    & info [ "r" ] ~docv:"REG=INT"
        ~doc:"Initial register binding for --tpal (repeatable).")

let metrics =
  Arg.(value & flag
    & info [ "metrics" ]
        ~doc:"Print the runtime metrics snapshot and per-tenant latency \
              percentiles (p50/p95/p99) at shutdown.")

let trace =
  Arg.(value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record the server's admission/dispatch decisions and the \
              worker domains' scheduler events into per-domain ring buffers \
              and write them to $(docv) as Chrome trace-event JSON \
              (Perfetto-loadable).")

let listen =
  Arg.(value & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:"Serve the wire protocol on $(docv) (host:port, port 0 picks a \
              free one, or unix:/path).  Runs until SIGINT/SIGTERM, then \
              drains gracefully and exits 0.")

let connect =
  Arg.(value & opt (some string) None
    & info [ "connect" ] ~docv:"ADDR"
        ~doc:"Run as a load-generating client against a --listen server at \
              $(docv); the exactly-once audit is the exit code.")

let shards =
  Arg.(value & opt int 2
    & info [ "shards" ] ~docv:"N"
        ~doc:"Server mode: number of pools, each with its own --domains \
              worker domains over a disjoint domain set.")

let policy =
  Arg.(value & opt string "size"
    & info [ "policy" ] ~docv:"P"
        ~doc:"Server mode: request placement — $(b,hash) (tenant affinity), \
              $(b,jsq) (join shortest queue), or $(b,size) (a reserved \
              small-request shard; small requests never queue behind a \
              large one).")

let batch_us =
  Arg.(value & opt float 200.
    & info [ "batch-us" ] ~docv:"US"
        ~doc:"Server mode: micro-batch delay bound — a small request waits \
              at most this long for its batch to fill.")

let batch_max =
  Arg.(value & opt int 8
    & info [ "batch-max" ] ~docv:"N"
        ~doc:"Server mode: max small requests folded into one session \
              entry; 1 disables micro-batching.")

let small_max =
  Arg.(value & opt int 4
    & info [ "small-max" ] ~docv:"N"
        ~doc:"DRR-size threshold for the small-request class (size policy \
              routing and micro-batch eligibility).")

let conns =
  Arg.(value & opt int 2
    & info [ "conns" ] ~docv:"N" ~doc:"Client mode: concurrent connections.")

let window =
  Arg.(value & opt int 64
    & info [ "window" ] ~docv:"N"
        ~doc:"Client mode: max in-flight requests per connection (windowed \
              closed loop).")

let cmd =
  let doc = "a multi-tenant TPAL execution server over one warm heartbeat session" in
  Cmd.v
    (Cmd.info "tpal_serve" ~doc)
    Term.(
      const
        (fun requests tenants rate seed slo_ms tight_frac domains heart_us cap
             quantum panic_ms lease_s chaos_seed retries kernel scale tpal
             seeds metrics trace listen connect shards policy batch_us
             batch_max small_max conns window ->
          run ~requests ~tenants ~rate ~seed ~slo_ms ~tight_frac ~domains
            ~heart_us ~cap ~quantum ~panic_ms ~lease_s ~chaos_seed ~retries
            ~kernel ~scale ~tpal ~seeds ~metrics ~trace ~listen ~connect
            ~shards ~policy ~batch_us ~batch_max ~small_max ~conns ~window)
      $ requests $ tenants $ rate $ seed $ slo_ms $ tight_frac $ domains
      $ heart_us $ cap $ quantum $ panic_ms $ lease_s $ chaos_seed $ retries
      $ kernel $ scale $ tpal $ seeds $ metrics $ trace $ listen $ connect
      $ shards $ policy $ batch_us $ batch_max $ small_max $ conns $ window)

let () = exit (Cmd.eval' cmd)
