(* Differential fuzzing driver: generate random TPAL programs and
   cross-check them across the sequential evaluator, the discrete-event
   simulator (all interrupt mechanisms, several core counts, optional
   fault injection), the real heartbeat runtime, and the multi-domain
   runtime (--par lists the domain counts; --no-par skips it).

     tpal_fuzz --count 1000 --seed 1
     tpal_fuzz --count 200 --cores 1,4 --mech ipi --no-faults
     tpal_fuzz --count 200 --chaos --minimize
     tpal_fuzz --seed 42 --count 1 --minimize --out test/corpus

   Exits non-zero when any divergence is found; with --minimize each
   divergent program is first shrunk to a locally-minimal reproducer
   and saved under --out as a .tpal file with replay metadata. *)

let parse_mechs (s : string) : Sim.Interrupts.mech list =
  match String.lowercase_ascii s with
  | "all" -> [ Sim.Interrupts.Ping_thread; Papi; Nautilus_ipi ]
  | "ping" | "ping-thread" -> [ Sim.Interrupts.Ping_thread ]
  | "papi" -> [ Sim.Interrupts.Papi ]
  | "ipi" | "nautilus" -> [ Sim.Interrupts.Nautilus_ipi ]
  | other -> Fmt.failwith "unknown mechanism %S (all|ping|papi|ipi)" other

let parse_cores (s : string) : int list =
  List.map
    (fun c ->
      match int_of_string_opt c with
      | Some n when n >= 1 -> n
      | _ -> Fmt.failwith "bad core count %S (expected e.g. 1,4,15)" c)
    (String.split_on_char ',' s)

let run ~seed ~count ~cores ~mech ~faults ~chaos ~chaos_par ~hb ~par ~serve
    ~minimize ~out ~progress =
  match
    { Fuzz.Diff.cores = parse_cores cores; mechs = parse_mechs mech; faults;
      chaos; hb; par = (if par = "" then [] else parse_cores par); chaos_par }
  with
  | exception Failure msg ->
      Fmt.epr "tpal_fuzz: %s@." msg;
      2
  | cfg ->
  (* the serving-layer oracle: the same program submitted through the
     multi-tenant pool (admission -> DRR -> EDF -> warm session) must
     match the sequential evaluator bit for bit *)
  let serve_domains = if serve then [ 1; 2 ] else [] in
  let serve_check p ~outputs =
    if serve_domains = [] then []
    else Serve.Serve_exec.check ~domains:serve_domains p ~outputs
  in
  let divergent = ref 0 in
  for i = 0 to count - 1 do
    let s = seed + i in
    let g = Fuzz.Gen.generate ~seed:s in
    let ds =
      Fuzz.Diff.check_gen ~cfg g @ serve_check g.prog ~outputs:g.outputs
    in
    if ds <> [] then begin
      incr divergent;
      Fmt.pr "@[<v>== seed %d: %d divergence(s) ==@,%a@]@." s (List.length ds)
        (Fmt.list (fun ppf (d : Fuzz.Diff.divergence) ->
             Fmt.pf ppf "  [%s] %s" d.oracle d.detail))
        ds;
      if minimize then begin
        let oracle = (List.hd ds).oracle in
        let has_prefix p o =
          String.length o >= String.length p && String.sub o 0 (String.length p) = p
        in
        let still_fails p =
          let ds =
            if has_prefix "serve" oracle then
              serve_check p ~outputs:g.outputs
            else Fuzz.Diff.check ~cfg ~seed:s p ~outputs:g.outputs
          in
          List.exists (fun (d : Fuzz.Diff.divergence) -> d.oracle = oracle) ds
        in
        let small = Fuzz.Shrink.minimize ~still_fails g.prog in
        let prefix =
          if has_prefix "chaos-par" oracle then "chaos_par_"
          else if has_prefix "chaos" oracle then "chaos_"
          else if has_prefix "serve" oracle then "serve_"
          else ""
        in
        let path =
          Fuzz.Corpus.save ~prefix ~dir:out
            { Fuzz.Corpus.seed = s; oracle; outputs = g.outputs; prog = small }
        in
        Fmt.pr "  shrunk reproducer: %s@." path
      end
    end
    else if progress && (i + 1) mod 100 = 0 then
      Fmt.pr "  %d/%d ok@." (i + 1) count
  done;
  if !divergent = 0 then begin
    Fmt.pr "fuzz: %d program(s), no divergences@." count;
    0
  end
  else begin
    Fmt.pr "fuzz: %d/%d program(s) divergent@." !divergent count;
    1
  end

open Cmdliner

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Base seed; program $(i,i) uses seed+$(i,i).")

let count =
  Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate and check.")

let cores =
  Arg.(value & opt string "1,4,15" & info [ "cores" ] ~docv:"P,P,…" ~doc:"Simulated core counts.")

let mech =
  Arg.(value & opt string "all" & info [ "mech" ] ~docv:"MECH" ~doc:"Interrupt mechanisms: all, ping, papi or ipi.")

let no_faults =
  Arg.(value & flag & info [ "no-faults" ] ~doc:"Skip the fault-injection battery.")

let chaos =
  Arg.(value & flag & info [ "chaos" ]
    ~doc:"Also run each program under a random crash/stall/slow-core \
          schedule and check the recovery oracles (completion, work \
          conservation, Brent bound at the surviving core count, \
          determinism).")

let chaos_par =
  Arg.(value & flag & info [ "chaos-par" ]
    ~doc:"Also run each program on the real multi-domain runtime under \
          a seeded fault plan (beat stalls, slowdowns, dropped beats, \
          injected raises) and require bit-identical outputs for \
          timing-only plans and the typed fault for raising ones.")

let no_hb =
  Arg.(value & flag & info [ "no-hb" ] ~doc:"Skip the real heartbeat-runtime executor.")

let par =
  Arg.(value & opt string "1,2,4"
    & info [ "par" ] ~docv:"D,D,…"
        ~doc:"Domain counts for the multi-domain runtime executor.")

let no_par =
  Arg.(value & flag & info [ "no-par" ] ~doc:"Skip the multi-domain runtime executor.")

let serve =
  Arg.(value & flag & info [ "serve" ]
    ~doc:"Also submit each program through the multi-tenant execution \
          server (admission, DRR, EDF, warm session) and require \
          bit-identical results.")

let minimize =
  Arg.(value & flag & info [ "minimize" ] ~doc:"Shrink divergent programs and save reproducers.")

let out =
  Arg.(value & opt string "test/corpus" & info [ "out" ] ~docv:"DIR" ~doc:"Directory for shrunk reproducers.")

let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"No progress output.")

let cmd =
  let doc = "differential fuzzing of the TPAL evaluator, simulator and heartbeat runtime" in
  Cmd.v
    (Cmd.info "tpal_fuzz" ~doc)
    Term.(
      const
        (fun seed count cores mech no_faults chaos chaos_par no_hb par no_par
             serve minimize out quiet ->
          run ~seed ~count ~cores ~mech ~faults:(not no_faults) ~chaos
            ~chaos_par ~hb:(not no_hb)
            ~par:(if no_par then "" else par)
            ~serve ~minimize ~out ~progress:(not quiet))
      $ seed $ count $ cores $ mech $ no_faults $ chaos $ chaos_par $ no_hb
      $ par $ no_par $ serve $ minimize $ out $ quiet)

let () = exit (Cmd.eval' cmd)
