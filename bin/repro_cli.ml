(* repro — run one (or all) of the paper's experiments by id and print
   the regenerated table(s), or run a real workload kernel on the
   multi-domain heartbeat runtime.

   Ids: fig6 fig7 fig8 fig9 fig10 fig11 fig13 fig14 fig15 headline
   tuner ablation trace all.

   With --trace FILE, additionally simulate the experiment's
   representative configuration with the cycle recorder attached and
   write a Chrome trace-event JSON (load it at https://ui.perfetto.dev
   or chrome://tracing); the per-core timeline report prints to
   stdout.

   With --workload NAME (instead of an experiment id), run the named
   real kernel from Workloads.Real_bench on `--domains N` OCaml 5
   domains under Par.Runtime, verify its checksum against the serial
   executor, and print wall-clock plus the scheduler counters
   (beats, promotions, steals, joins).  --trace FILE attaches the
   per-domain ring-buffer tracers and writes the real run as the same
   Chrome trace-event JSON as the simulator's; --stats prints the full
   per-worker metrics table (idle time, steal-failure rate, callback
   errors, ring drop accounting). *)

open Cmdliner

let id_arg =
  Arg.(
    value & pos 0 (some string) None
    & info [] ~docv:"EXPERIMENT"
        ~doc:
          "One of: fig6 fig7 fig8 fig9 fig10 fig11 fig13 fig14 fig15 \
           headline tuner ablation trace all.  Omit when using \
           $(b,--workload).")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON (Perfetto-loadable) to $(docv): \
           for an experiment id, the simulator's per-core cycle trace of \
           the representative configuration; for $(b,--workload), the real \
           runtime's per-domain ring-buffer trace.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "With $(b,--workload), print the full metrics snapshot and the \
           per-worker breakdown (idle ns, steal-failure rate, callback \
           errors) instead of the one-line totals.")

let workload_arg =
  Arg.(
    value & opt (some string) None
    & info [ "workload" ] ~docv:"NAME"
        ~doc:
          "Run the named real kernel on the multi-domain heartbeat runtime \
           instead of a simulated experiment.  One of: plus_reduce, \
           mergesort, mandelbrot, spmv, kmeans, srad, floyd_warshall, \
           knapsack.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:"Worker domains for $(b,--workload) (default 1).")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "scale" ] ~docv:"K"
        ~doc:"Input-size multiplier for $(b,--workload) (default 1).")

let heart_arg =
  Arg.(
    value & opt float 100.
    & info [ "heart-us" ] ~docv:"US"
        ~doc:"Heartbeat period in microseconds for $(b,--workload).")

let source_arg =
  Arg.(
    value
    & opt (enum [ ("ping", `Ping_domain); ("polling", `Polling) ]) `Polling
    & info [ "beat-source" ] ~docv:"SRC"
        ~doc:
          "Beat source for $(b,--workload): $(b,polling) (default; workers \
           check a monotonic clock at each poll point) or $(b,ping) (a \
           dedicated ping domain, which steals a timer tick per beat when \
           host cores are scarce).")

let write_trace (id : string) (file : string) : int =
  match Repro.Figures.trace_spec id with
  | None ->
      Printf.eprintf "no traceable configuration for %S\n" id;
      1
  | Some spec -> (
      (* open before simulating so a bad path fails fast, not after a
         multi-second run *)
      match open_out file with
      | exception Sys_error msg ->
          Printf.eprintf "cannot write trace: %s\n" msg;
          1
      | oc ->
      let metrics, tr = Repro.Runner.measure_traced spec in
      output_string oc (Sim.Sim_trace.to_chrome_string tr);
      close_out oc;
      print_newline ();
      print_string (Sim.Sim_trace.report tr);
      if Sim.Metrics.degraded metrics then
        Printf.printf
          "recovery: cores_lost=%d leases_expired=%d tasks_reexecuted=%d \
           recovery_cycles=%d (mean %.0f per re-execution)\n"
          metrics.cores_lost metrics.leases_expired metrics.tasks_reexecuted
          metrics.recovery_cycles
          (Sim.Metrics.mean_recovery_cycles metrics);
      Printf.printf
        "\nwrote %s (%d events) — load it at https://ui.perfetto.dev\n" file
        (Sim.Sim_trace.length tr);
      0)

let run_workload (name : string) (domains : int) (scale : int)
    (heart_us : float) (source : [ `Ping_domain | `Polling ])
    (trace_file : string option) (stats : bool) : int =
  match Workloads.Real_bench.find name with
  | None ->
      Printf.eprintf "unknown workload %S (have: %s)\n" name
        (String.concat ", " Workloads.Real_bench.names);
      1
  | Some b ->
      if domains < 1 || scale < 1 then begin
        Printf.eprintf "--domains and --scale must be >= 1\n";
        1
      end
      else begin
        Printf.printf
          "workload %s: %d items at scale %d, %d domain(s), heart %.0f us \
           (host cores: %d)\n\
           %!"
          b.name (b.base_items ~scale) scale domains heart_us
          (Domain.recommended_domain_count ());
        let t0 = Mclock.now_s () in
        let serial = Workloads.Real_bench.run_serial b ~scale in
        let serial_s = Mclock.now_s () -. t0 in
        let tracer =
          match trace_file with
          | None -> None
          | Some _ -> Some (Obs.Trace.create ())
        in
        let config =
          { Par.Runtime.default_config with domains; heart_us; source; tracer }
        in
        (* kernel time is clocked inside the session so the speedup
           measures the scheduler, not domain spawn/join setup *)
        let (par, kernel_s), (st : Par.Runtime.stats) =
          Par.Runtime.run ~config (fun () ->
              let k0 = Mclock.now_s () in
              let sum = b.run (module Par.Runtime.Exec) ~scale in
              (sum, Mclock.now_s () -. k0))
        in
        Printf.printf "serial   %10.4f s  checksum %d\n" serial_s serial;
        Printf.printf
          "par      %10.4f s  checksum %d  speedup %.2fx  (session %.4f s \
           incl. setup)\n"
          kernel_s par (serial_s /. kernel_s) st.elapsed_s;
        Printf.printf
          "stats    beats %d  promotions %d (%d loop, %d branch)  steals \
           %d/%d  joins %d  resumes %d  tasks %d\n"
          st.total.beats st.total.promotions st.total.loop_promotions
          st.total.branch_promotions st.total.steals st.total.steal_attempts
          st.total.joins st.total.resumes st.total.tasks_run;
        if stats then begin
          Format.printf "%a@." Obs.Metrics.pp
            (Par.Runtime.metrics ?tracer st);
          Array.iteri
            (fun i (w : Par.Runtime.worker_stats) ->
              Printf.printf
                "  worker %d: tasks %d  promotions %d  steals %d/%d  joins \
                 %d  max deque %d  idle %.3f ms  callback errors %d\n"
                i w.tasks_run w.promotions w.steals w.steal_attempts w.joins
                w.max_deque
                (float_of_int w.idle_ns /. 1e6)
                w.callback_errors)
            st.per_worker
        end
        else
          Array.iteri
            (fun i (w : Par.Runtime.worker_stats) ->
              Printf.printf
                "  worker %d: tasks %d  promotions %d  steals %d  max deque \
                 %d\n"
                i w.tasks_run w.promotions w.steals w.max_deque)
            st.per_worker;
        (match (trace_file, tracer) with
        | Some file, Some tr -> (
            match open_out file with
            | exception Sys_error msg ->
                Printf.eprintf "cannot write trace: %s\n" msg
            | oc ->
                output_string oc (Obs.Export.to_chrome_string tr);
                close_out oc;
                Printf.printf
                  "wrote %s (%d events, %d dropped) — load it at \
                   https://ui.perfetto.dev\n"
                  file
                  (Obs.Trace.total_written tr)
                  (Obs.Trace.total_dropped tr))
        | _ -> ());
        if par <> serial then begin
          Printf.eprintf
            "FATAL: parallel checksum %d diverges from serial %d\n" par serial;
          1
        end
        else begin
          Printf.printf "checksums agree\n";
          0
        end
      end

let go id trace_file workload domains scale heart_us source stats =
  match (workload, id) with
  | Some name, None ->
      run_workload name domains scale heart_us source trace_file stats
  | Some _, Some _ ->
      Printf.eprintf "give either an experiment id or --workload, not both\n";
      2
  | None, None ->
      Printf.eprintf "missing EXPERIMENT id (or --workload NAME)\n";
      2
  | None, Some id -> (
      match Repro.Figures.by_name id with
      | None ->
          Printf.eprintf "unknown experiment %S\n" id;
          1
      | Some tables -> (
          List.iter Repro.Figures.print_table tables;
          match trace_file with
          | None -> 0
          | Some file -> write_trace id file))

let () =
  let info =
    Cmd.info "repro"
      ~doc:
        "Regenerate one of the paper's figures or tables, or run a real \
         workload on the multi-domain heartbeat runtime."
  in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(
            const go $ id_arg $ trace_arg $ workload_arg $ domains_arg
            $ scale_arg $ heart_arg $ source_arg $ stats_arg)))
