(* repro — run one (or all) of the paper's experiments by id and print
   the regenerated table(s).

   Ids: fig6 fig7 fig8 fig9 fig10 fig11 fig13 fig14 fig15 headline
   tuner ablation trace all.

   With --trace FILE, additionally simulate the experiment's
   representative configuration with the cycle recorder attached and
   write a Chrome trace-event JSON (load it at https://ui.perfetto.dev
   or chrome://tracing); the per-core timeline report prints to
   stdout. *)

open Cmdliner

let id_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"EXPERIMENT"
        ~doc:
          "One of: fig6 fig7 fig8 fig9 fig10 fig11 fig13 fig14 fig15 \
           headline tuner ablation trace all.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Also record a per-core cycle trace of the experiment's \
           representative configuration and write it to $(docv) in Chrome \
           trace-event JSON (Perfetto-loadable).")

let write_trace (id : string) (file : string) : int =
  match Repro.Figures.trace_spec id with
  | None ->
      Printf.eprintf "no traceable configuration for %S\n" id;
      1
  | Some spec -> (
      (* open before simulating so a bad path fails fast, not after a
         multi-second run *)
      match open_out file with
      | exception Sys_error msg ->
          Printf.eprintf "cannot write trace: %s\n" msg;
          1
      | oc ->
      let metrics, tr = Repro.Runner.measure_traced spec in
      output_string oc (Sim.Sim_trace.to_chrome_string tr);
      close_out oc;
      print_newline ();
      print_string (Sim.Sim_trace.report tr);
      if Sim.Metrics.degraded metrics then
        Printf.printf
          "recovery: cores_lost=%d leases_expired=%d tasks_reexecuted=%d \
           recovery_cycles=%d (mean %.0f per re-execution)\n"
          metrics.cores_lost metrics.leases_expired metrics.tasks_reexecuted
          metrics.recovery_cycles
          (Sim.Metrics.mean_recovery_cycles metrics);
      Printf.printf
        "\nwrote %s (%d events) — load it at https://ui.perfetto.dev\n" file
        (Sim.Sim_trace.length tr);
      0)

let go id trace_file =
  match Repro.Figures.by_name id with
  | None ->
      Printf.eprintf "unknown experiment %S\n" id;
      1
  | Some tables -> (
      List.iter Repro.Figures.print_table tables;
      match trace_file with
      | None -> 0
      | Some file -> write_trace id file)

let () =
  let info =
    Cmd.info "repro" ~doc:"Regenerate one of the paper's figures or tables."
  in
  exit (Cmd.eval' (Cmd.v info Term.(const go $ id_arg $ trace_arg)))
