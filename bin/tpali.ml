(* tpali — the TPAL assembly interpreter.

   Subcommands:
     run      parse, check and evaluate a .tpal file
     check    static well-formedness only
     trace    evaluate with a step-by-step trace
     profile  what-if span profile: rank source regions by the
              whole-program speedup predicted were each N x more
              parallel (Coz/TASKPROF-style causal attribution over
              the cost semantics)

   Register seeding: [-r a=7 -r b=6]; result extraction: [--result c];
   heartbeat: [--heart N] (cycles; 0 disables). *)

open Cmdliner

let read_file (path : string) : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_program path =
  match Tpal.Parser.parse_result (read_file path) with
  | Ok p -> Ok p
  | Error e -> Error (`Msg e)

let seed_conv : (string * int) Arg.conv =
  let parse s =
    match String.split_on_char '=' s with
    | [ r; v ] -> (
        match int_of_string_opt v with
        | Some n -> Ok (r, n)
        | None -> Error (`Msg ("invalid integer in seed " ^ s)))
    | _ -> Error (`Msg ("expected reg=int, got " ^ s))
  in
  let print ppf (r, n) = Format.fprintf ppf "%s=%d" r n in
  Arg.conv (parse, print)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.tpal")

let seeds_arg =
  Arg.(
    value & opt_all seed_conv []
    & info [ "r"; "reg" ] ~docv:"REG=INT" ~doc:"Seed register $(docv).")

let heart_arg =
  Arg.(
    value & opt int 1000
    & info [ "heart" ] ~docv:"CYCLES"
        ~doc:"Heartbeat threshold in cycles; 0 disables promotion.")

let fuel_arg =
  Arg.(
    value & opt int 200_000_000
    & info [ "fuel" ] ~docv:"N" ~doc:"Instruction budget.")

let result_arg =
  Arg.(
    value & opt_all string []
    & info [ "result" ] ~docv:"REG" ~doc:"Print register $(docv) at halt.")

let options ~heart ~fuel =
  { Tpal.Eval.default_options with
    heart = (if heart <= 0 then None else Some heart);
    fuel }

let print_outcome (fin : Tpal.Eval.finished) (results : string list) =
  List.iter
    (fun r ->
      match Tpal.Regfile.find_opt r fin.task.regs with
      | Some v -> Fmt.pr "%s = %a@." r Tpal.Value.pp v
      | None -> Fmt.pr "%s = <unbound>@." r)
    results;
  Fmt.pr
    "stopped: %s | instructions=%d promotions=%d forks=%d joins=%d | %a@."
    (match fin.stop with
    | Tpal.Eval.Halted -> "halt"
    | Tpal.Eval.Blocked j -> Printf.sprintf "blocked on j%d" j)
    fin.stats.instructions fin.stats.promotions fin.stats.forks
    fin.stats.join_continues Tpal.Cost.pp_summary fin.cost

let run_cmd =
  let go file seeds heart fuel results =
    match parse_program file with
    | Error (`Msg e) ->
        Fmt.epr "%s@." e;
        1
    | Ok p -> (
        match Tpal.Check.errors p with
        | _ :: _ as errs ->
            List.iter (fun d -> Fmt.epr "%a@." Tpal.Check.pp_diagnostic d) errs;
            1
        | [] -> (
            let bindings =
              List.map (fun (r, n) -> (r, Tpal.Value.Vint n)) seeds
            in
            match
              Tpal.Eval.run_seeded ~options:(options ~heart ~fuel) p bindings
            with
            | Ok fin ->
                print_outcome fin results;
                0
            | Error e ->
                Fmt.epr "machine error: %a@." Tpal.Machine_error.pp e;
                1))
  in
  Cmd.v (Cmd.info "run" ~doc:"Parse, check and evaluate a TPAL program.")
    Term.(const go $ file_arg $ seeds_arg $ heart_arg $ fuel_arg $ result_arg)

let check_cmd =
  let go file =
    match parse_program file with
    | Error (`Msg e) ->
        Fmt.epr "%s@." e;
        1
    | Ok p ->
        let diags = Tpal.Check.check p in
        List.iter (fun d -> Fmt.pr "%a@." Tpal.Check.pp_diagnostic d) diags;
        if List.exists Tpal.Check.is_error diags then 1
        else begin
          Fmt.pr "%s: %d blocks, ok@." file (List.length p.blocks);
          0
        end
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Statically check a TPAL program.")
    Term.(const go $ file_arg)

(* Export abstract-machine trace entries as Chrome trace-event JSON:
   one instant per executed instruction, timestamped by the machine's
   own cycle counter, so a .tpal run can be eyeballed in Perfetto next
   to a simulator trace. *)
let entries_to_chrome (entries : Tpal.Trace.entry list) : string =
  let module C = Stats.Chrome_trace in
  Stats.Chrome_trace.to_string
    (C.process_name ~pid:0 "tpali"
    :: C.thread_name ~pid:0 ~tid:0 "abstract machine"
    :: List.map
         (fun (e : Tpal.Trace.entry) ->
           C.instant ~cat:"instruction"
             ~args:
               ([
                  ("index", C.Int e.index);
                  ("cycles", C.Int e.cycles);
                  ("pc", C.Str (Fmt.str "%a" Tpal.Task.pp_pc e.pc));
                ]
               @ List.map
                   (fun (r, v) -> ("reg:" ^ r, C.Str v))
                   e.watched)
             ~name:e.what ~pid:0 ~tid:0
             ~ts:(float_of_int e.cycles)
             ())
         entries)

let trace_cmd =
  let limit_arg =
    Arg.(
      value & opt int 200
      & info [ "limit" ] ~docv:"N" ~doc:"Maximum trace entries.")
  in
  let watch_arg =
    Arg.(
      value & opt_all string []
      & info [ "watch" ] ~docv:"REG" ~doc:"Watch register $(docv).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write the trace to $(docv) in Chrome trace-event JSON \
             (Perfetto-loadable), one instant event per instruction.")
  in
  let go file seeds heart fuel watch limit json =
    match parse_program file with
    | Error (`Msg e) ->
        Fmt.epr "%s@." e;
        1
    | Ok p ->
        let bindings = List.map (fun (r, n) -> (r, Tpal.Value.Vint n)) seeds in
        let entries, res =
          Tpal.Trace.collect ~watch_regs:watch ~limit
            ~options:(options ~heart ~fuel) p bindings
        in
        print_endline (Tpal.Trace.to_string entries);
        let json_rc =
          match json with
          | None -> 0
          | Some f -> (
              match open_out f with
              | exception Sys_error msg ->
                  Fmt.epr "cannot write trace: %s@." msg;
                  1
              | oc ->
                  output_string oc (entries_to_chrome entries);
                  close_out oc;
                  Fmt.pr "wrote %s (%d events)@." f (List.length entries);
                  0)
        in
        (match res with
        | Ok fin -> print_outcome fin []
        | Error e -> Fmt.epr "machine error: %a@." Tpal.Machine_error.pp e);
        json_rc
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Evaluate with a step-by-step trace.")
    Term.(
      const go $ file_arg $ seeds_arg $ heart_arg $ fuel_arg $ watch_arg
      $ limit_arg $ json_arg)

let profile_cmd =
  let factor_arg =
    Arg.(
      value & opt float 8.
      & info [ "factor" ] ~docv:"F"
          ~doc:
            "What-if factor: predict the speedup were each region $(docv) \
             times more parallel (its span divided by $(docv)).")
  in
  let procs_arg =
    Arg.(
      value & opt int 0
      & info [ "procs" ] ~docv:"P"
          ~doc:
            "Predict wall-clock with Brent's bound W/$(docv) + S instead of \
             the span alone (0 = unbounded processors).")
  in
  let top_arg =
    Arg.(
      value & opt int 0
      & info [ "top" ] ~docv:"N"
          ~doc:"Show only the $(docv) highest-span regions (0 = all).")
  in
  let go file seeds heart fuel factor procs top =
    match parse_program file with
    | Error (`Msg e) ->
        Fmt.epr "%s@." e;
        1
    | Ok p -> (
        match Tpal.Check.errors p with
        | _ :: _ as errs ->
            List.iter (fun d -> Fmt.epr "%a@." Tpal.Check.pp_diagnostic d) errs;
            1
        | [] -> (
            let bindings =
              List.map (fun (r, n) -> (r, Tpal.Value.Vint n)) seeds
            in
            match
              Obs.Profile.of_eval ~options:(options ~heart ~fuel) ~bindings p
            with
            | Error e ->
                Fmt.epr "machine error: %a@." Tpal.Machine_error.pp e;
                1
            | Ok (prof, fin) ->
                print_string (Obs.Profile.report ~procs ~factor ~top prof);
                print_newline ();
                Fmt.pr
                  "stopped: %s | instructions=%d promotions=%d forks=%d \
                   joins=%d@."
                  (match fin.stop with
                  | Tpal.Eval.Halted -> "halt"
                  | Tpal.Eval.Blocked j -> Printf.sprintf "blocked on j%d" j)
                  fin.stats.instructions fin.stats.promotions fin.stats.forks
                  fin.stats.join_continues;
                0))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile a TPAL program: attribute work and span to source regions \
          and rank them by predicted whole-program speedup were each more \
          parallel.")
    Term.(
      const go $ file_arg $ seeds_arg $ heart_arg $ fuel_arg $ factor_arg
      $ procs_arg $ top_arg)

let () =
  let info =
    Cmd.info "tpali" ~version:"1.0"
      ~doc:"Interpreter for TPAL, the Task Parallel Assembly Language."
  in
  exit
    (Cmd.eval' (Cmd.group info [ run_cmd; check_cmd; trace_cmd; profile_cmd ]))
