(* Tests for parallel evaluation (Figure 30): the paper programs under
   many heartbeat settings, join resolution, promotion dynamics, cost
   accounting and failure modes. *)

open Tpal

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let opts ?(fuel = 5_000_000) heart =
  { Eval.default_options with heart; fuel }

(* --- prod --- *)

let test_prod_serial_exact () =
  match Programs.run_prod ~options:(opts None) ~a:12 ~b:11 () with
  | Ok (c, fin) ->
      check_int "result" 132 c;
      check_int "no promotions" 0 fin.stats.promotions;
      check_int "no forks" 0 fin.stats.forks;
      check "halted" true (fin.stop = Eval.Halted);
      (* serial cost: work = span = instruction count *)
      check_int "work=instructions" fin.stats.instructions fin.cost.work;
      check_int "span=work when serial" fin.cost.work fin.cost.span
  | Error e -> Alcotest.failf "prod failed: %s" (Machine_error.show e)

let test_prod_all_hearts () =
  (* the parallel result equals the serial result at every viable ♥ *)
  List.iter
    (fun heart ->
      match Programs.run_prod ~options:(opts (Some heart)) ~a:500 ~b:3 () with
      | Ok (c, _) -> check_int (Printf.sprintf "heart=%d" heart) 1500 c
      | Error e ->
          Alcotest.failf "prod heart=%d: %s" heart (Machine_error.show e))
    [ 2; 3; 5; 8; 13; 50; 100; 1000 ]

let test_prod_promotes () =
  match Programs.run_prod ~options:(opts (Some 10)) ~a:200 ~b:2 () with
  | Ok (_, fin) ->
      check "promotions happened" true (fin.stats.promotions > 0);
      check "forks happened" true (fin.stats.forks > 0);
      check_int "every record discharged exactly once"
        fin.stats.jrallocs fin.stats.join_continues;
      check "span below work (parallelism manifested)" true
        (fin.cost.span < fin.cost.work);
      check "join map drained" true (Join.cardinal fin.joins = 0)
  | Error e -> Alcotest.failf "prod: %s" (Machine_error.show e)

let test_prod_edge_inputs () =
  List.iter
    (fun (a, b) ->
      match Programs.run_prod ~options:(opts (Some 8)) ~a ~b () with
      | Ok (c, _) -> check_int (Printf.sprintf "%d*%d" a b) (a * b) c
      | Error e -> Alcotest.failf "prod: %s" (Machine_error.show e))
    [ (0, 5); (1, 5); (2, 5); (3, 0); (7, 1); (64, 64) ]

(* --- pow (nested loops, outermost-first) --- *)

let test_pow_serial () =
  match Programs.run_pow ~options:(opts None) ~d:3 ~e:4 () with
  | Ok (f, fin) ->
      check_int "3^4" 81 f;
      check_int "no forks" 0 fin.stats.forks
  | Error e -> Alcotest.failf "pow: %s" (Machine_error.show e)

let test_pow_all_hearts () =
  List.iter
    (fun heart ->
      match Programs.run_pow ~options:(opts (Some heart)) ~d:2 ~e:16 () with
      | Ok (f, _) -> check_int (Printf.sprintf "heart=%d" heart) 65536 f
      | Error e ->
          Alcotest.failf "pow heart=%d: %s" heart (Machine_error.show e))
    [ 8; 10; 15; 25; 60; 150; 1000 ]

let test_pow_nested_promotions () =
  (* with a small heart on a big outer loop, the outer loop is
     promoted first, then inner prods *)
  match Programs.run_pow ~options:(opts (Some 12)) ~d:5 ~e:9 () with
  | Ok (f, fin) ->
      check_int "5^9" 1_953_125 f;
      check "forked" true (fin.stats.forks > 0);
      check "parallelism manifested" true (fin.cost.span < fin.cost.work)
  | Error e -> Alcotest.failf "pow: %s" (Machine_error.show e)

let test_pow_inner_only_parallelism () =
  (* e = 1: no outer parallelism exists; promotions must fall back to
     the inner prod loop (the pabort dispatch) *)
  match Programs.run_pow ~options:(opts (Some 10)) ~d:300 ~e:1 () with
  | Ok (f, fin) ->
      check_int "300^1" 300 f;
      check "inner promotions" true (fin.stats.forks > 0)
  | Error e -> Alcotest.failf "pow: %s" (Machine_error.show e)

(* --- fib (recursive, stack marks) --- *)

let test_fib_serial () =
  List.iter
    (fun n ->
      match Programs.run_fib ~options:(opts None) ~n () with
      | Ok (f, _) -> check_int (Printf.sprintf "fib %d" n) (Programs.fib_spec n) f
      | Error e -> Alcotest.failf "fib: %s" (Machine_error.show e))
    [ 0; 1; 2; 3; 7; 12 ]

let test_fib_all_hearts () =
  List.iter
    (fun heart ->
      match Programs.run_fib ~options:(opts (Some heart)) ~n:14 () with
      | Ok (f, fin) ->
          check_int (Printf.sprintf "heart=%d" heart) 377 f;
          check "joins drained" true (Join.cardinal fin.joins = 0)
      | Error e ->
          Alcotest.failf "fib heart=%d: %s" heart (Machine_error.show e))
    [ 5; 7; 11; 23; 41; 100; 993 ]

let test_fib_promotes_oldest () =
  match Programs.run_fib ~options:(opts (Some 30)) ~n:16 () with
  | Ok (f, fin) ->
      check_int "fib 16" 987 f;
      check "stack promotions happened" true (fin.stats.forks > 10);
      check "span < work" true (fin.cost.span < fin.cost.work)
  | Error e -> Alcotest.failf "fib: %s" (Machine_error.show e)

(* --- fork/join semantics in isolation --- *)

(* A hand-built program whose join policy is only associative: the
   child's register must land exactly where ΔR says. *)
let assoc_program =
  let open Builder in
  program ~entry:"main"
    [
      block "main"
        [ mov "x" (int 1); jralloc "jr" "k"; fork "jr" (lab "child") ]
        (jump "after-fork");
      block "after-fork" [ mov "mine" (int 100) ] (join "jr");
      block "child" [ mov "x" (int 2); mov "mine" (int 200) ] (join "jr");
      block "k"
        ~annot:(jtppt ~policy:Ast.Assoc [ ("x", "cx") ] "comb")
        [ mov "done" (reg "sum") ]
        halt;
      (* asymmetric combine: sum = 2*x + cx distinguishes the parent
         and child roles, so an illegal swap would be visible *)
      block "comb"
        [ mul "t2" (reg "x") (int 2); add "sum" (reg "t2") (reg "cx") ]
        (join "jr");
    ]

let test_fork_join_renaming () =
  match Eval.run ~options:(opts (Some 1_000_000)) assoc_program with
  | Ok fin ->
      (* parent x=1 kept, child x=2 into cx, sum = 2*1+2 = 4;
         parent's [mine] survives, child's does not *)
      check "sum" true (Regfile.find_opt "sum" fin.task.regs = Some (Value.Vint 4));
      check "parent regs kept" true
        (Regfile.find_opt "mine" fin.task.regs = Some (Value.Vint 100))
  | Error e -> Alcotest.failf "fork/join: %s" (Machine_error.show e)

let test_swap_joins_assoc_comm_only () =
  (* prod declares assoc-comm: swapping roles must preserve results *)
  let options = { (opts (Some 10)) with swap_joins = true } in
  (match Programs.run_prod ~options ~a:100 ~b:7 () with
  | Ok (c, _) -> check_int "assoc-comm swap safe" 700 c
  | Error e -> Alcotest.failf "prod swapped: %s" (Machine_error.show e));
  (* the Assoc-only program must NOT be affected by swap_joins *)
  match Eval.run ~options assoc_program with
  | Ok fin ->
      check "assoc unaffected by swap" true
        (Regfile.find_opt "sum" fin.task.regs = Some (Value.Vint 4))
  | Error e -> Alcotest.failf "assoc swapped: %s" (Machine_error.show e)

(* --- failure injection --- *)

let test_fork_without_jtppt () =
  let open Builder in
  let p =
    program_unchecked ~entry:"m"
      [
        block "m" [ jralloc "jr" "k"; fork "jr" (lab "c") ] (join "jr");
        block "c" [] (join "jr");
        (* k is not a jtppt block *)
        block "k" [] halt;
      ]
  in
  check "join misuse detected" true
    (match Eval.run ~options:(opts None) p with
    | Error (Machine_error.Join_misuse _) -> true
    | _ -> false)

let test_fork_with_non_join_register () =
  let open Builder in
  let p =
    program_unchecked ~entry:"m"
      [ block "m" [ mov "jr" (int 3); fork "jr" (lab "m") ] halt ]
  in
  check "type error" true
    (match Eval.run ~options:(opts None) p with
    | Error (Machine_error.Type_error _) -> true
    | _ -> false)

let test_join_on_unknown_record () =
  let open Builder in
  let p =
    program_unchecked ~entry:"m" [ block "m" [ mov "jr" (int 0) ] (join "jr") ]
  in
  check "join on int" true (Result.is_error (Eval.run ~options:(opts None) p))

let test_fuel_exhaustion () =
  let open Builder in
  let p = program_unchecked ~entry:"m" [ block "m" [] (jump "m") ] in
  check "infinite loop runs out of fuel" true
    (match Eval.run ~options:{ (opts None) with fuel = 1_000 } p with
    | Error (Machine_error.Fuel_exhausted _) -> true
    | _ -> false)

let test_halt_inside_fork_stops_machine () =
  let open Builder in
  let p =
    program_unchecked ~entry:"m"
      [
        block "m" [ jralloc "jr" "k"; fork "jr" (lab "c") ] (join "jr");
        block "c" [ mov "x" (int 1) ] halt;
        block "k" ~annot:(jtppt [] "comb") [] halt;
        block "comb" [] (join "jr");
      ]
  in
  match Eval.run ~options:(opts None) p with
  | Ok fin -> check "whole machine halted" true (fin.stop = Eval.Halted)
  | Error e -> Alcotest.failf "unexpected error: %s" (Machine_error.show e)

let test_blocked_at_top_level () =
  let open Builder in
  let p =
    program_unchecked ~entry:"m"
      [
        block "m" [ jralloc "jr" "k" ] (join "jr");
        block "k" ~annot:(jtppt [] "comb") [] halt;
        block "comb" [] (join "jr");
      ]
  in
  (* join on a closed record at top level continues to the join
     continuation (join-continue), reaching halt *)
  match Eval.run ~options:(opts None) p with
  | Ok fin -> check "join-continue fired" true (fin.stop = Eval.Halted)
  | Error e -> Alcotest.failf "unexpected: %s" (Machine_error.show e)

(* --- properties --- *)

let prop_prod_correct_all_hearts =
  QCheck.Test.make ~name:"prod correct for random (a,b,heart)" ~count:60
    QCheck.(triple (int_bound 120) (int_bound 50) (int_range 2 400))
    (fun (a, b, heart) ->
      match Programs.run_prod ~options:(opts (Some heart)) ~a ~b () with
      | Ok (c, _) -> c = a * b
      | Error _ -> false)

let prop_pow_correct_all_hearts =
  QCheck.Test.make ~name:"pow correct for random (d,e,heart)" ~count:30
    QCheck.(triple (int_range 0 5) (int_bound 10) (int_range 8 300))
    (fun (d, e, heart) ->
      match Programs.run_pow ~options:(opts (Some heart)) ~d ~e () with
      | Ok (f, _) -> f = Programs.pow_spec d e
      | Error _ -> false)

let prop_fib_correct_all_hearts =
  QCheck.Test.make ~name:"fib correct for random (n,heart)" ~count:25
    QCheck.(pair (int_bound 13) (int_range 5 300))
    (fun (n, heart) ->
      match Programs.run_fib ~options:(opts (Some heart)) ~n () with
      | Ok (f, _) -> f = Programs.fib_spec n
      | Error _ -> false)

let prop_work_ge_span =
  QCheck.Test.make ~name:"work >= span on every execution" ~count:40
    QCheck.(pair (int_bound 80) (int_range 2 200))
    (fun (a, heart) ->
      match Programs.run_prod ~options:(opts (Some heart)) ~a ~b:2 () with
      | Ok (_, fin) -> fin.cost.work >= fin.cost.span
      | Error _ -> false)

let prop_swap_joins_preserves_results =
  (* swap_joins exchanges the full parent/child register-file roles at
     assoc-comm joins.  That freedom is only sound for joins whose
     continuation is register-symmetric — true for the loop reductions
     (prod, pow), but NOT for fib, whose join continuation (retk)
     consumes the parent's stack pointer; a runtime exploiting
     commutativity may reorder combines, never reassign whose stack
     survives.  The property therefore covers prod and pow. *)
  QCheck.Test.make ~name:"assoc-comm join swap preserves prod/pow" ~count:20
    QCheck.(pair (int_bound 10) (int_range 8 150))
    (fun (n, heart) ->
      let normal = opts (Some heart) in
      let swapped = { normal with swap_joins = true } in
      let pow_ok =
        match
          ( Programs.run_pow ~options:normal ~d:2 ~e:n (),
            Programs.run_pow ~options:swapped ~d:2 ~e:n () )
        with
        | Ok (a, _), Ok (b, _) -> a = b
        | _ -> false
      in
      let prod_ok =
        match
          ( Programs.run_prod ~options:normal ~a:(20 + n) ~b:3 (),
            Programs.run_prod ~options:swapped ~a:(20 + n) ~b:3 () )
        with
        | Ok (a, _), Ok (b, _) -> a = b
        | _ -> false
      in
      pow_ok && prod_ok)

let prop_serial_work_independent_of_heart =
  (* promotions add instructions, so heartbeat work >= serial work *)
  QCheck.Test.make ~name:"heartbeat work >= serial work" ~count:30
    QCheck.(pair (int_range 1 100) (int_range 2 200))
    (fun (a, heart) ->
      let serial =
        match Programs.run_prod ~options:(opts None) ~a ~b:2 () with
        | Ok (_, fin) -> fin.cost.work
        | Error _ -> max_int
      in
      match Programs.run_prod ~options:(opts (Some heart)) ~a ~b:2 () with
      | Ok (_, fin) -> fin.cost.work >= serial
      | Error _ -> false)

let suite =
  ( "eval",
    [
      Alcotest.test_case "prod serial" `Quick test_prod_serial_exact;
      Alcotest.test_case "prod across hearts" `Quick test_prod_all_hearts;
      Alcotest.test_case "prod promotion dynamics" `Quick test_prod_promotes;
      Alcotest.test_case "prod edge inputs" `Quick test_prod_edge_inputs;
      Alcotest.test_case "pow serial" `Quick test_pow_serial;
      Alcotest.test_case "pow across hearts" `Quick test_pow_all_hearts;
      Alcotest.test_case "pow nested promotions" `Quick
        test_pow_nested_promotions;
      Alcotest.test_case "pow inner-only fallback" `Quick
        test_pow_inner_only_parallelism;
      Alcotest.test_case "fib serial" `Quick test_fib_serial;
      Alcotest.test_case "fib across hearts" `Quick test_fib_all_hearts;
      Alcotest.test_case "fib stack promotions" `Quick test_fib_promotes_oldest;
      Alcotest.test_case "fork/join ΔR renaming" `Quick test_fork_join_renaming;
      Alcotest.test_case "swap_joins respects policy" `Quick
        test_swap_joins_assoc_comm_only;
      Alcotest.test_case "fork to non-jtppt continuation" `Quick
        test_fork_without_jtppt;
      Alcotest.test_case "fork on non-join register" `Quick
        test_fork_with_non_join_register;
      Alcotest.test_case "join on non-join value" `Quick
        test_join_on_unknown_record;
      Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
      Alcotest.test_case "halt inside fork" `Quick
        test_halt_inside_fork_stops_machine;
      Alcotest.test_case "top-level join-continue" `Quick
        test_blocked_at_top_level;
      QCheck_alcotest.to_alcotest prop_prod_correct_all_hearts;
      QCheck_alcotest.to_alcotest prop_pow_correct_all_hearts;
      QCheck_alcotest.to_alcotest prop_fib_correct_all_hearts;
      QCheck_alcotest.to_alcotest prop_work_ge_span;
      QCheck_alcotest.to_alcotest prop_swap_joins_preserves_results;
      QCheck_alcotest.to_alcotest prop_serial_work_independent_of_heart;
    ] )
