(* Tests for the statistics helpers and the table renderer. *)

let checkf = Alcotest.(check (float 1e-9))
let check = Alcotest.(check bool)

let test_mean_geomean () =
  checkf "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  checkf "geomean" 2. (Stats.geomean [ 1.; 4. ]);
  checkf "geomean of equal values" 7. (Stats.geomean [ 7.; 7.; 7. ]);
  check "geomean rejects nonpositive" true
    (Float.is_nan (Stats.geomean [ 1.; 0. ]));
  check "empty mean is nan" true (Float.is_nan (Stats.mean []))

let test_speedup_normalized () =
  checkf "speedup" 4. (Stats.speedup ~baseline:8. 2.);
  checkf "normalized" 2. (Stats.normalized ~baseline:4. 8.);
  checkf "percent change" 50. (Stats.percent_change ~from_:2. 3.)

let test_stddev () =
  checkf "constant series" 0. (Stats.stddev [ 5.; 5.; 5. ]);
  checkf "known value" (sqrt 2.) (Stats.stddev [ 1.; 3. ] *. 1.0)

let prop_geomean_between_min_max =
  QCheck.Test.make ~name:"geomean between min and max" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range 0.01 100.))
    (fun xs ->
      let g = Stats.geomean xs in
      g >= Stats.min_l xs -. 1e-9 && g <= Stats.max_l xs +. 1e-9)

let prop_geomean_le_mean =
  QCheck.Test.make ~name:"AM-GM inequality" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range 0.01 100.))
    (fun xs -> Stats.geomean xs <= Stats.mean xs +. 1e-9)

let test_table_render () =
  let t =
    Stats.Table.make ~title:"T" ~header:[ "name"; "v" ]
      [ [ "a"; "1.00" ]; [ "long-name"; "2.50" ] ]
  in
  let s = Stats.Table.render t in
  check "contains title" true (String.length s > 0 && String.sub s 0 1 = "T");
  check "contains rows" true
    (List.exists
       (fun line -> String.length line > 0 && String.contains line 'a')
       (String.split_on_char '\n' s))

let test_table_csv () =
  let t =
    Stats.Table.make ~title:"T" ~header:[ "a"; "b" ]
      [ [ "x,y"; "1" ]; [ "plain"; "2" ] ]
  in
  let csv = Stats.Table.to_csv t in
  check "quotes commas" true
    (List.exists
       (fun l -> l = "\"x,y\",1")
       (String.split_on_char '\n' csv))

let test_grouped_ints () =
  Alcotest.(check string) "grouping" "1,234,567" (Stats.Table.fmt_int_grouped 1_234_567);
  Alcotest.(check string) "small" "42" (Stats.Table.fmt_int_grouped 42);
  Alcotest.(check string) "negative" "-1,000" (Stats.Table.fmt_int_grouped (-1000))

let test_fmt_float_nan () =
  Alcotest.(check string) "nan renders as dash" "-" (Stats.Table.fmt_float nan)

let suite =
  ( "stats",
    [
      Alcotest.test_case "mean & geomean" `Quick test_mean_geomean;
      Alcotest.test_case "speedup helpers" `Quick test_speedup_normalized;
      Alcotest.test_case "stddev" `Quick test_stddev;
      QCheck_alcotest.to_alcotest prop_geomean_between_min_max;
      QCheck_alcotest.to_alcotest prop_geomean_le_mean;
      Alcotest.test_case "table rendering" `Quick test_table_render;
      Alcotest.test_case "csv escaping" `Quick test_table_csv;
      Alcotest.test_case "grouped integers" `Quick test_grouped_ints;
      Alcotest.test_case "nan formatting" `Quick test_fmt_float_nan;
    ] )
