(* Integration tests for the reproduction harness: the runner's system
   mapping, caching, and the qualitative shapes the paper's figures
   assert (on the faster workloads, to keep the suite quick). *)

open Repro

let check = Alcotest.(check bool)

let kmeans () = Option.get (Workloads.Workload.find "kmeans")
let mandelbrot () = Option.get (Workloads.Workload.find "mandelbrot")
let mergesort () = Option.get (Workloads.Workload.find "mergesort-uniform")
let knapsack () = Option.get (Workloads.Workload.find "knapsack")

let test_serial_baseline_close_to_work () =
  let w = kmeans () in
  let t = Runner.serial_time w in
  let work = Workloads.Workload.serial_work w in
  check "serial time ~ algorithm work" true
    (abs (t - work) < work / 100)

let test_measure_caches () =
  let w = kmeans () in
  let s = Runner.spec Runner.Tpal_linux w in
  let t0 = Unix.gettimeofday () in
  let m1 = Runner.measure s in
  let mid = Unix.gettimeofday () in
  let m2 = Runner.measure s in
  let t1 = Unix.gettimeofday () in
  check "identical cached result" true (m1 = m2);
  check "cache hit much faster" true (t1 -. mid < (mid -. t0) /. 5. +. 0.01)

let test_fig6_shape_kmeans () =
  (* Cilk pays a visible 1-core overhead; TPAL stays near serial
     (paper: 2.4x vs 1.17x for kmeans) *)
  let w = kmeans () in
  let cilk = Runner.normalized_1core Runner.Cilk_sys w in
  let tpal = Runner.normalized_1core Runner.Tpal_linux w in
  check "cilk overhead >> tpal overhead" true (cilk > tpal +. 0.5);
  check "cilk in paper ballpark" true (cilk > 1.8 && cilk < 3.2);
  check "tpal in paper ballpark" true (tpal > 1.05 && tpal < 1.35)

let test_fig8_shape () =
  (* heartbeat off: TPAL binaries are within a few percent of serial,
     except knapsack's mark overhead (paper: 1.51x) *)
  let light = Runner.normalized_1core ~interrupts:false Runner.Tpal_linux (mandelbrot ()) in
  check "mandelbrot near serial" true (light < 1.1);
  let heavy = Runner.normalized_1core ~interrupts:false Runner.Tpal_linux (knapsack ()) in
  check "knapsack pays mark costs" true (heavy > 1.3 && heavy < 1.7)

let test_fig7_shape () =
  (* at 15 cores TPAL scales on compute-bound work; the
     bandwidth-bound mergesort is capped for both *)
  let w = mandelbrot () in
  check "mandelbrot scales" true (Runner.speedup Runner.Tpal_nautilus w > 8.);
  let ms = mergesort () in
  let c = Runner.speedup Runner.Cilk_sys ms in
  let t = Runner.speedup Runner.Tpal_linux ms in
  check "mergesort capped for both" true (c < 3. && t < 3.)

let test_nautilus_beats_linux_rate () =
  (* Figure 10's point: Nautilus delivers the target rate, Linux
     misses it *)
  let w = kmeans () in
  let params = { Sim.Params.default with heart_us = 20. } in
  let rate sys =
    Sim.Metrics.achieved_rate params
      (Runner.measure (Runner.spec ~heart_us:20. sys w))
  in
  let linux = rate Runner.Tpal_linux in
  let nautilus = rate Runner.Tpal_nautilus in
  let target = Sim.Params.target_rate params in
  check "linux misses the 20us target badly" true (linux < 0.6 *. target);
  check "nautilus close to target" true (nautilus > 0.85 *. target)

let test_interrupt_overhead_ordering () =
  (* 20 µs interrupts cost more than 100 µs interrupts; Nautilus costs
     less than Linux (Figures 9 vs 13) *)
  let w = kmeans () in
  let overhead sys heart_us =
    (Runner.measure
       (Runner.spec ~procs:1 ~heart_us ~promotions:false sys w))
      .makespan
  in
  check "20us > 100us (Linux)" true
    (overhead Runner.Tpal_linux 20. > overhead Runner.Tpal_linux 100.);
  check "Nautilus cheaper than Linux at 20us" true
    (overhead Runner.Tpal_nautilus 20. < overhead Runner.Tpal_linux 20.)

let test_fig15_shape () =
  (* Cilk creates orders of magnitude more tasks than TPAL *)
  let w = knapsack () in
  let mc = Runner.measure (Runner.spec Runner.Cilk_sys w) in
  let mt = Runner.measure (Runner.spec Runner.Tpal_linux w) in
  check "cilk tasks >> tpal tasks" true
    (mc.tasks_created > 50 * mt.tasks_created);
  check "tpal promotions = tpal tasks" true (mt.promotions = mt.tasks_created)

let test_figures_render () =
  (* figure drivers on the cached measurements produce well-formed
     tables *)
  let t = Figures.fig8 () in
  check "fig8 has 14 rows (12 benchmarks + 2 geomeans)" true
    (List.length t.rows = 14);
  let tun = Figures.tuner ~workload:"kmeans" ~hearts:[ 50.; 500. ] () in
  check "tuner rows" true (List.length tun.rows = 2)

let test_paper_values_lookup () =
  check "fig6 table lookup" true
    (Paper_values.lookup Paper_values.fig6_cilk "kmeans" = Some 2.4);
  check "unknown" true (Paper_values.lookup Paper_values.fig6_cilk "x" = None)

let suite =
  ( "repro",
    [
      Alcotest.test_case "serial baseline" `Quick test_serial_baseline_close_to_work;
      Alcotest.test_case "measurement cache" `Quick test_measure_caches;
      Alcotest.test_case "fig6 shape (kmeans)" `Quick test_fig6_shape_kmeans;
      Alcotest.test_case "fig8 shape" `Quick test_fig8_shape;
      Alcotest.test_case "fig7 shape" `Slow test_fig7_shape;
      Alcotest.test_case "fig10 shape (rates)" `Slow
        test_nautilus_beats_linux_rate;
      Alcotest.test_case "fig9/13 ordering" `Quick
        test_interrupt_overhead_ordering;
      Alcotest.test_case "fig15 shape (task counts)" `Slow test_fig15_shape;
      Alcotest.test_case "figure rendering" `Slow test_figures_render;
      Alcotest.test_case "paper values" `Quick test_paper_values_lookup;
    ] )
