(* Tests for the benchmark kernels: correctness against naive oracles,
   generator structure, and the workload registry. *)

open Workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rng () = Sim.Prng.create ~seed:1234

(* --- CSR --- *)

let test_csr_of_rows () =
  let m =
    Csr.of_rows ~ncols:4
      [| [ (2, 1.0); (0, 2.0) ]; []; [ (3, 3.0) ] |]
  in
  check_int "nnz" 3 (Csr.nnz m);
  check_int "row 0 length" 2 (Csr.row_length m 0);
  check_int "row 1 empty" 0 (Csr.row_length m 1);
  (* columns sorted *)
  check_int "first col of row 0" 0 m.col_idx.(0)

let test_csr_random_structure () =
  let m = Csr.random ~rng:(rng ()) ~nrows:500 ~ncols:500 ~max_row_len:100 in
  check "every row non-empty" true
    (List.for_all (fun r -> Csr.row_length m r >= 1) (List.init 500 Fun.id));
  check "max row bounded" true
    (List.for_all (fun r -> Csr.row_length m r <= 100) (List.init 500 Fun.id))

let test_csr_powerlaw_head_heavy () =
  let m =
    Csr.powerlaw ~rng:(rng ()) ~nrows:2_000 ~ncols:2_000 ~max_row_len:2_000 ()
  in
  let longest = ref 0 in
  for r = 0 to m.nrows - 1 do
    longest := max !longest (Csr.row_length m r)
  done;
  (* a heavy head row holds a macroscopic share of the non-zeros *)
  check "head row >= 2% of nnz" true
    (float_of_int !longest >= 0.02 *. float_of_int (Csr.nnz m))

let test_csr_arrowhead_shape () =
  let m = Csr.arrowhead ~n:100 in
  check_int "first row dense" 100 (Csr.row_length m 0);
  check_int "other rows: col0 + diagonal" 2 (Csr.row_length m 50);
  check_int "nnz" (100 + (99 * 2)) (Csr.nnz m)

let test_spmv_against_dense () =
  let n = 60 in
  let m = Csr.random ~rng:(rng ()) ~nrows:n ~ncols:n ~max_row_len:20 in
  let x = Array.init n (fun i -> float_of_int (i + 1)) in
  (* dense oracle *)
  let dense = Array.make_matrix n n 0. in
  for r = 0 to n - 1 do
    for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
      dense.(r).(m.col_idx.(k)) <- m.values.(k)
    done
  done;
  let expected =
    Array.init n (fun r ->
        let acc = ref 0. in
        for c = 0 to n - 1 do
          acc := !acc +. (dense.(r).(c) *. x.(c))
        done;
        !acc)
  in
  let got = Csr.spmv_serial m x in
  check "spmv matches dense oracle" true
    (Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) got expected)

let test_spmv_nested_reduction_path () =
  (* force the nested-reduction path with a tiny row_grain *)
  let m = Csr.arrowhead ~n:400 in
  let x = Array.init 400 (fun i -> float_of_int (i mod 5)) in
  let y1 = Csr.spmv_serial m x in
  let y2 = Array.make 400 0. in
  Csr.spmv ~row_grain:32 (module Exec.Serial) m x y2;
  check "nested reduction equals serial" true
    (Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) y1 y2)

(* --- plus-reduce --- *)

let test_plus_reduce () =
  let a = Plus_reduce.input ~rng:(rng ()) ~n:10_000 in
  let naive = Array.fold_left ( +. ) 0. a in
  let got = Plus_reduce.sum ~grain:128 (module Exec.Serial) a in
  check "sum matches fold" true (abs_float (got -. naive) < 1e-6);
  check "empty array" true (Plus_reduce.sum (module Exec.Serial) [||] = 0.)

(* --- mandelbrot --- *)

let test_mandelbrot () =
  let img = Mandelbrot.render_serial ~width:64 ~height:64 () in
  check_int "pixel count" (64 * 64) (Array.length img.pixels);
  (* the corner of the window escapes immediately; the centre-left
     region is interior *)
  check "corner escapes fast" true (img.pixels.(0) < 5);
  check "checksum stable" true (Mandelbrot.checksum img > 0);
  let img2 = Mandelbrot.render_serial ~width:64 ~height:64 () in
  check_int "deterministic" (Mandelbrot.checksum img) (Mandelbrot.checksum img2)

(* --- kmeans --- *)

let test_kmeans_converges () =
  let st = Kmeans.create ~rng:(rng ()) ~n:600 ~dims:3 ~k:4 in
  let churn1 = Kmeans.round (module Exec.Serial) st in
  check "first round assigns everything" true (churn1 > 0);
  let _ = Kmeans.run (module Exec.Serial) st ~rounds:15 in
  (* snapshot the centroids the next assignment will be computed from *)
  let frozen = Array.map Array.copy st.centroids in
  let churn_final = Kmeans.round (module Exec.Serial) st in
  check "assignment churn decreases" true (churn_final < churn1);
  (* every point landed on its nearest frozen centroid *)
  let ok = ref true in
  Array.iteri
    (fun i c ->
      Array.iteri
        (fun c' _ ->
          if
            Kmeans.dist2 st.points.(i) frozen.(c')
            < Kmeans.dist2 st.points.(i) frozen.(c) -. 1e-9
          then ok := false)
        frozen)
    st.assign;
  check "assignments are nearest" true !ok

(* --- srad --- *)

let test_srad_smooths () =
  let st = Srad.create ~rng:(rng ()) ~rows:32 ~cols:32 in
  let variance img =
    let n = Array.length img in
    let mean = Array.fold_left ( +. ) 0. img /. float_of_int n in
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. img
    /. float_of_int n
  in
  let v0 = variance st.image in
  Srad.run (module Exec.Serial) st ~iterations:12;
  let v1 = variance st.image in
  check "diffusion reduces variance" true (v1 < v0);
  check "image stays finite" true
    (Array.for_all (fun x -> Float.is_finite x) st.image)

(* --- floyd-warshall --- *)

let naive_apsp (g : int array array) : int array array =
  let n = Array.length g in
  let d = Array.map Array.copy g in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) + d.(k).(j) < d.(i).(j) then
          d.(i).(j) <- d.(i).(k) + d.(k).(j)
      done
    done
  done;
  d

let test_floyd_warshall () =
  let g = Floyd_warshall.random_graph ~rng:(rng ()) ~n:40 () in
  let expected = naive_apsp g in
  let d = Array.map Array.copy g in
  Floyd_warshall.run_serial d;
  check "matches naive APSP" true (d = expected);
  check "diagonal zero" true
    (Array.for_all Fun.id (Array.init 40 (fun i -> d.(i).(i) = 0)))

(* --- knapsack --- *)

let test_knapsack_optimal () =
  List.iter
    (fun n ->
      let inst = Knapsack.instance ~rng:(rng ()) ~n in
      let res = Knapsack.search_serial inst in
      check_int
        (Printf.sprintf "B&B = DP at n=%d" n)
        (Knapsack.dp_optimum inst) res.best)
    [ 8; 12; 16; 20 ]

let test_knapsack_prunes () =
  let inst = Knapsack.instance ~rng:(rng ()) ~n:18 in
  let res = Knapsack.search_serial inst in
  (* pruning must beat the full 2^18 tree *)
  check "bound prunes the tree" true (res.nodes < 1 lsl 18)

(* --- mergesort --- *)

let test_mergesort_sorts () =
  List.iter
    (fun n ->
      let a = Mergesort.uniform_input ~rng:(rng ()) ~n in
      let expected = Array.copy a in
      Array.sort compare expected;
      Mergesort.sort ~grain:64 (module Exec.Serial) a;
      check (Printf.sprintf "sorted n=%d" n) true (a = expected))
    [ 0; 1; 2; 63; 64; 65; 1_000; 10_000 ]

let test_mergesort_exponential_input () =
  let a = Mergesort.exponential_input ~rng:(rng ()) ~n:5_000 in
  Mergesort.sort ~grain:128 (module Exec.Serial) a;
  check "sorted" true (Mergesort.sorted a)

let test_merge_par_correct () =
  let src = Array.append [| 1; 3; 5; 7; 9 |] [| 2; 4; 6; 8 |] in
  let dst = Array.make 9 0 in
  Mergesort.merge_par ~grain:2 (module Exec.Serial) src 0 5 5 9 dst 0;
  check "parallel merge" true (dst = [| 1; 2; 3; 4; 5; 6; 7; 8; 9 |])

(* --- the workload registry --- *)

let test_registry_complete () =
  check_int "12 benchmark configurations" 12 (List.length Workload.all);
  check_int "9 iterative" 9 (List.length Workload.iterative);
  check_int "3 recursive" 3 (List.length Workload.recursive);
  check "find works" true (Workload.find "kmeans" <> None);
  check "find fails on junk" true (Workload.find "nope" = None)

let test_registry_irs_sane () =
  List.iter
    (fun (w : Workload.t) ->
      check (w.name ^ ": positive work") true (Workload.serial_work w > 1_000_000);
      check (w.name ^ ": calibrations sane") true
        (w.cilk_dilation_pct >= 100
        && w.tpal_dilation_pct >= 100
        && w.mem_intensity >= 0.
        && w.mem_intensity <= 1.
        && w.bw_cap > 1.))
    Workload.all

let test_registry_deterministic_work () =
  List.iter
    (fun (w : Workload.t) ->
      check_int (w.name ^ ": stable work") (Workload.serial_work w)
        (Workload.serial_work w))
    Workload.all

let suite =
  ( "workloads",
    [
      Alcotest.test_case "csr of_rows" `Quick test_csr_of_rows;
      Alcotest.test_case "csr random structure" `Quick test_csr_random_structure;
      Alcotest.test_case "csr powerlaw head" `Quick test_csr_powerlaw_head_heavy;
      Alcotest.test_case "csr arrowhead shape" `Quick test_csr_arrowhead_shape;
      Alcotest.test_case "spmv vs dense oracle" `Quick test_spmv_against_dense;
      Alcotest.test_case "spmv nested reduction" `Quick
        test_spmv_nested_reduction_path;
      Alcotest.test_case "plus-reduce" `Quick test_plus_reduce;
      Alcotest.test_case "mandelbrot" `Quick test_mandelbrot;
      Alcotest.test_case "kmeans" `Quick test_kmeans_converges;
      Alcotest.test_case "srad smooths" `Quick test_srad_smooths;
      Alcotest.test_case "floyd-warshall vs naive" `Quick test_floyd_warshall;
      Alcotest.test_case "knapsack optimal" `Quick test_knapsack_optimal;
      Alcotest.test_case "knapsack prunes" `Quick test_knapsack_prunes;
      Alcotest.test_case "mergesort sorts" `Quick test_mergesort_sorts;
      Alcotest.test_case "mergesort exponential" `Quick
        test_mergesort_exponential_input;
      Alcotest.test_case "parallel merge" `Quick test_merge_par_correct;
      Alcotest.test_case "registry completeness" `Quick test_registry_complete;
      Alcotest.test_case "registry sanity" `Quick test_registry_irs_sane;
      Alcotest.test_case "registry determinism" `Quick
        test_registry_deterministic_work;
    ] )
