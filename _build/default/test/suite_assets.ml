(* Golden integration tests: the shipped .tpal assembly files parse,
   check cleanly, and compute the right results through the full
   pipeline (file -> lexer -> parser -> checker -> evaluator). *)

open Tpal

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The test binary runs from its build directory; locate the sources
   relative to the dune workspace root. *)
let asset (name : string) : string option =
  let candidates =
    [
      Filename.concat "examples/asm" name;
      Filename.concat "../examples/asm" name;
      Filename.concat "../../../examples/asm" name;
      Filename.concat "../../../../examples/asm" name;
    ]
  in
  List.find_opt Sys.file_exists candidates

let load (name : string) : Ast.program option =
  match asset name with
  | None -> None (* asset not visible from this cwd: skip silently *)
  | Some path ->
      let ic = open_in_bin path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match Parser.parse_result src with
      | Ok p -> Some p
      | Error e -> Alcotest.failf "%s: %s" name e)

let run_file name seeds result expected heart =
  match load name with
  | None -> ()
  | Some p ->
      check (name ^ " checks") false
        (List.exists Check.is_error (Check.check p));
      let options =
        { Eval.default_options with heart = Some heart; fuel = 10_000_000 }
      in
      let bindings = List.map (fun (r, n) -> (r, Value.Vint n)) seeds in
      (match Eval.run_seeded ~options p bindings with
      | Ok fin ->
          check_int
            (Printf.sprintf "%s: %s" name result)
            expected
            (match Regfile.find_opt result fin.task.regs with
            | Some (Value.Vint v) -> v
            | _ -> min_int)
      | Error e -> Alcotest.failf "%s: %s" name (Machine_error.show e))

let test_prod_file () = run_file "prod.tpal" [ ("a", 37); ("b", 11) ] "c" 407 30
let test_pow_file () = run_file "pow.tpal" [ ("d", 2); ("e", 12) ] "f" 4096 40
let test_fib_file () = run_file "fib.tpal" [ ("n", 13) ] "f" 233 60

let test_prod_reduced_file () =
  run_file "prod_reduced.tpal" [ ("a", 25); ("b", 5) ] "c" 125 20

let test_assets_match_canned () =
  (* the shipped pow/fib sources are exactly the canned programs *)
  List.iter
    (fun (name, canned) ->
      match load name with
      | None -> ()
      | Some p ->
          check (name ^ " = canned program") true (Ast.equal_program p canned))
    [
      ("prod.tpal", Programs.prod);
      ("pow.tpal", Programs.pow);
      ("fib.tpal", Programs.fib);
      ("prod_reduced.tpal", Programs.prod_reduced);
    ]

let suite =
  ( "assets",
    [
      Alcotest.test_case "prod.tpal end to end" `Quick test_prod_file;
      Alcotest.test_case "pow.tpal end to end" `Quick test_pow_file;
      Alcotest.test_case "fib.tpal end to end" `Quick test_fib_file;
      Alcotest.test_case "prod_reduced.tpal end to end" `Quick
        test_prod_reduced_file;
      Alcotest.test_case "assets match canned programs" `Quick
        test_assets_match_canned;
    ] )
