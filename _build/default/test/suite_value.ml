(* Unit and property tests for Value: stack objects, pointers,
   promotion marks, equality. *)

open Tpal

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let get_ptr = function
  | Value.Vptr (s, p) -> (s, p)
  | _ -> Alcotest.fail "expected a stack pointer"

let test_zero_is_true () =
  check "0 is true" true (Value.is_true (Value.Vint 0));
  check "1 is false" false (Value.is_true (Value.Vint 1));
  check "-1 is false" false (Value.is_true (Value.Vint (-1)));
  check "labels are not true" false (Value.is_true (Value.Vlabel "l"));
  check "join ids are not true" false (Value.is_true (Value.Vjoin 0));
  Alcotest.(check bool) "of_bool true" true (Value.equal (Value.of_bool true) (Value.Vint 0));
  Alcotest.(check bool) "of_bool false" true (Value.equal (Value.of_bool false) (Value.Vint 1))

let test_stack_new_is_empty () =
  let s, p = get_ptr (Value.stack_new ()) in
  check_int "empty position" (-1) p;
  check "no marks" false (Value.has_mark s p);
  check "read out of bounds" true (Result.is_error (Value.read s p 0))

let test_salloc_zero_initialises () =
  let s, p = get_ptr (Value.stack_new ()) in
  let p = Value.salloc s p 3 in
  check_int "position after salloc 3" 2 p;
  for i = 0 to 2 do
    match Value.read s p i with
    | Ok (Value.Vint 0) -> ()
    | _ -> Alcotest.failf "cell %d not zero-initialised" i
  done

let test_read_write_offsets () =
  (* mem[p + n] reads n cells below the pointer. *)
  let s, p = get_ptr (Value.stack_new ()) in
  let p = Value.salloc s p 4 in
  Result.get_ok (Value.write s p 0 (Value.Vint 10));
  Result.get_ok (Value.write s p 3 (Value.Vint 13));
  check "offset 0" true (Value.read s p 0 = Ok (Value.Vint 10));
  check "offset 3" true (Value.read s p 3 = Ok (Value.Vint 13));
  (* an interior pointer one cell deeper sees offset 0 = old offset 1 *)
  let q = p - 1 in
  check "interior aliasing" true (Value.read s q 2 = Ok (Value.Vint 13))

let test_salloc_zeroes_freed_cells () =
  (* freed memory must not leak into re-allocated frames *)
  let s, p = get_ptr (Value.stack_new ()) in
  let p = Value.salloc s p 2 in
  Result.get_ok (Value.write s p 0 (Value.Vint 42));
  let p = Result.get_ok (Value.sfree p 2) in
  let p = Value.salloc s p 2 in
  check "stale value cleared" true (Value.read s p 0 = Ok (Value.Vint 0))

let test_sfree_underflow () =
  let _, p = get_ptr (Value.stack_new ()) in
  check "underflow detected" true (Result.is_error (Value.sfree p 1));
  check "free to empty ok" true (Value.sfree 1 2 = Ok (-1))

let test_marks_oldest () =
  let s, p = get_ptr (Value.stack_new ()) in
  let p = Value.salloc s p 6 in
  (* push marks at offsets 1 and 4: offset 4 is deeper = older *)
  Result.get_ok (Value.write s p 1 Value.Vprmark);
  Result.get_ok (Value.write s p 4 Value.Vprmark);
  check "has mark" true (Value.has_mark s p);
  check_int "oldest is the deepest" 4
    (Option.get (Value.oldest_mark s p));
  (* clearing the oldest leaves the newer one *)
  Result.get_ok (Value.write s p 4 (Value.Vint 0));
  check_int "then the newer one" 1 (Option.get (Value.oldest_mark s p))

let test_equality_structural () =
  let mk vals =
    let s, p = get_ptr (Value.stack_new ()) in
    let p = Value.salloc s p (List.length vals) in
    List.iteri (fun i v -> Result.get_ok (Value.write s p i v)) vals;
    Value.Vptr (s, p)
  in
  let a = mk [ Value.Vint 1; Value.Vint 2 ] in
  let b = mk [ Value.Vint 1; Value.Vint 2 ] in
  let c = mk [ Value.Vint 1; Value.Vint 3 ] in
  check "independent stacks with equal segments" true (Value.equal a b);
  check "different contents differ" false (Value.equal a c);
  check "int equality" true (Value.equal (Value.Vint 5) (Value.Vint 5));
  check "kind mismatch" false (Value.equal (Value.Vint 0) (Value.Vjoin 0))

let test_kinds () =
  Alcotest.(check string) "int" "int" (Value.kind (Value.Vint 3));
  Alcotest.(check string) "label" "label" (Value.kind (Value.Vlabel "x"));
  Alcotest.(check string) "join" "join-record" (Value.kind (Value.Vjoin 1));
  Alcotest.(check string) "mark" "prmark" (Value.kind Value.Vprmark)

(* property: a stack behaves like a list of cells under
   push/write/read *)
let prop_stack_model =
  QCheck.Test.make ~name:"stack matches a functional model" ~count:200
    QCheck.(list (pair (int_bound 20) small_int))
    (fun ops ->
      let s, p0 = get_ptr (Value.stack_new ()) in
      let p = Value.salloc s p0 21 in
      let model = Array.make 21 0 in
      List.for_all
        (fun (off, v) ->
          (match Value.write s p off (Value.Vint v) with
          | Ok () -> model.(off) <- v
          | Error _ -> ());
          Value.read s p off = Ok (Value.Vint model.(off)))
        ops)

let suite =
  ( "value",
    [
      Alcotest.test_case "zero-is-true convention" `Quick test_zero_is_true;
      Alcotest.test_case "snew yields empty stack" `Quick test_stack_new_is_empty;
      Alcotest.test_case "salloc zero-initialises" `Quick test_salloc_zero_initialises;
      Alcotest.test_case "read/write addressing" `Quick test_read_write_offsets;
      Alcotest.test_case "freed cells are zeroed on realloc" `Quick
        test_salloc_zeroes_freed_cells;
      Alcotest.test_case "sfree underflow" `Quick test_sfree_underflow;
      Alcotest.test_case "oldest mark selection" `Quick test_marks_oldest;
      Alcotest.test_case "structural equality" `Quick test_equality_structural;
      Alcotest.test_case "value kinds" `Quick test_kinds;
      QCheck_alcotest.to_alcotest prop_stack_model;
    ] )
