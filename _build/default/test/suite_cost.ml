(* Tests for the cost semantics (Figure 28): graph algebra, work/span,
   summaries, and agreement between the two representations. *)

open Tpal

let check_int = Alcotest.(check int)
let check = Alcotest.(check bool)

let g1 = Cost.Seq (Cost.One, Cost.Seq (Cost.One, Cost.One))
let gpar = Cost.Par (g1, Cost.One)

let test_work_span_basic () =
  check_int "work of 0" 0 (Cost.work ~tau:1 Cost.Zero);
  check_int "span of 0" 0 (Cost.span ~tau:1 Cost.Zero);
  check_int "work of 1" 1 (Cost.work ~tau:1 Cost.One);
  check_int "seq work" 3 (Cost.work ~tau:1 g1);
  check_int "seq span" 3 (Cost.span ~tau:1 g1);
  (* par: work = tau + both sides; span = tau + max *)
  check_int "par work" (5 + 3 + 1) (Cost.work ~tau:5 gpar);
  check_int "par span" (5 + 3) (Cost.span ~tau:5 gpar);
  check_int "forks" 1 (Cost.forks gpar);
  check_int "vertices" 4 (Cost.vertices gpar)

let test_tau_zero () =
  check_int "tau 0 work" 4 (Cost.work ~tau:0 gpar);
  check_int "tau 0 span" 3 (Cost.span ~tau:0 gpar)

let test_deep_graphs_no_overflow () =
  (* a million-vertex chain in both directions *)
  let left = ref Cost.Zero in
  for _ = 1 to 1_000_000 do
    left := Cost.Seq (!left, Cost.One)
  done;
  check_int "left-nested chain" 1_000_000 (Cost.work ~tau:1 !left);
  let right = ref Cost.Zero in
  for _ = 1 to 1_000_000 do
    right := Cost.Seq (Cost.One, !right)
  done;
  check_int "right-nested chain" 1_000_000 (Cost.work ~tau:1 !right);
  check_int "right span" 1_000_000 (Cost.span ~tau:1 !right)

let test_summary_ops () =
  let s1 = Cost.seq_summary Cost.one_summary Cost.one_summary in
  check_int "seq work" 2 s1.work;
  check_int "seq span" 2 s1.span;
  let p = Cost.par_summary ~tau:3 s1 Cost.one_summary in
  check_int "par work" (3 + 2 + 1) p.work;
  check_int "par span" (3 + 2) p.span;
  check_int "par forks" 1 p.forks

let test_parallelism_and_brent () =
  let s = { Cost.work = 100; span = 10; forks = 5 } in
  Alcotest.(check (float 1e-9)) "parallelism" 10. (Cost.parallelism s);
  Alcotest.(check (float 1e-9)) "brent p=10" 20.
    (Cost.brent_bound ~procs:10 s)

(* random graph generator *)
let gen_graph : Cost.graph QCheck.Gen.t =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then oneofl [ Cost.Zero; Cost.One ]
           else
             frequency
               [ (1, oneofl [ Cost.Zero; Cost.One ]);
                 (2, map2 (fun a b -> Cost.Seq (a, b)) (self (n / 2)) (self (n / 2)));
                 (2, map2 (fun a b -> Cost.Par (a, b)) (self (n / 2)) (self (n / 2)))
               ]))

let prop_summary_agrees =
  QCheck.Test.make ~name:"summarize agrees with work/span/forks" ~count:300
    (QCheck.make gen_graph)
    (fun g ->
      let s = Cost.summarize ~tau:3 g in
      s.work = Cost.work ~tau:3 g
      && s.span = Cost.span ~tau:3 g
      && s.forks = Cost.forks g)

let prop_work_ge_span =
  QCheck.Test.make ~name:"work >= span for any graph/tau" ~count:300
    QCheck.(pair (make gen_graph) (int_bound 10))
    (fun (g, tau) -> Cost.work ~tau g >= Cost.span ~tau g)

let prop_work_monotone_tau =
  QCheck.Test.make ~name:"work monotone in tau" ~count:200
    (QCheck.make gen_graph)
    (fun g -> Cost.work ~tau:7 g >= Cost.work ~tau:2 g)

let prop_seq_adds_work =
  QCheck.Test.make ~name:"work distributes over Seq" ~count:200
    QCheck.(pair (make gen_graph) (make gen_graph))
    (fun (a, b) ->
      Cost.work ~tau:2 (Cost.Seq (a, b))
      = Cost.work ~tau:2 a + Cost.work ~tau:2 b)

let suite =
  ( "cost",
    [
      Alcotest.test_case "work/span basics" `Quick test_work_span_basic;
      Alcotest.test_case "tau = 0" `Quick test_tau_zero;
      Alcotest.test_case "deep graphs (iterative fold)" `Quick
        test_deep_graphs_no_overflow;
      Alcotest.test_case "summary operations" `Quick test_summary_ops;
      Alcotest.test_case "parallelism & Brent bound" `Quick
        test_parallelism_and_brent;
      QCheck_alcotest.to_alcotest prop_summary_agrees;
      QCheck_alcotest.to_alcotest prop_work_ge_span;
      QCheck_alcotest.to_alcotest prop_work_monotone_tau;
      QCheck_alcotest.to_alcotest prop_seq_adds_work;
    ] )
