(* Tests for the sequential transition rules (Figures 29 and 31). *)

open Tpal

let check = Alcotest.(check bool)

(* Build a one-block program around [body]/[term] and a task poised at
   its start with the given register seeds. *)
let task_of ?(extra_blocks = []) ?(seeds = []) body term : Task.t =
  let program =
    Builder.program_unchecked ~entry:"main"
      (Builder.block "main" body term :: extra_blocks)
  in
  let t = Result.get_ok (Task.initial program) in
  { t with regs = Regfile.of_list seeds }

let step_n (n : int) (t : Task.t) : (Step.outcome, Machine_error.t) result =
  let rec go n t =
    if n <= 1 then Step.step t
    else
      match Step.step t with
      | Ok (Step.Stepped t') -> go (n - 1) t'
      | other -> other
  in
  go n t

let reg_after n r t =
  match step_n n t with
  | Ok (Step.Stepped t') | Ok (Step.Halted t') -> Regfile.find_opt r t'.regs
  | _ -> None

let vi n = Some (Value.Vint n)

let test_mov () =
  let t = task_of [ Builder.mov "a" (Builder.int 7) ] Ast.Halt in
  check "int literal" true (reg_after 1 "a" t = vi 7);
  let t =
    task_of ~seeds:[ ("b", Value.Vint 3) ]
      [ Builder.mov "a" (Builder.reg "b") ]
      Ast.Halt
  in
  check "register copy" true (reg_after 1 "a" t = vi 3);
  let t = task_of [ Builder.mov "a" (Builder.lab "main") ] Ast.Halt in
  check "label literal" true
    (reg_after 1 "a" t = Some (Value.Vlabel "main"))

let test_binops () =
  let bin op x y =
    let t =
      task_of [ Builder.binop "r" op (Builder.int x) (Builder.int y) ] Ast.Halt
    in
    reg_after 1 "r" t
  in
  check "add" true (bin Ast.Add 3 4 = vi 7);
  check "sub" true (bin Ast.Sub 3 4 = vi (-1));
  check "mul" true (bin Ast.Mul 3 4 = vi 12);
  check "div" true (bin Ast.Div 9 2 = vi 4);
  check "mod" true (bin Ast.Mod 9 2 = vi 1);
  (* comparisons: zero means true *)
  check "lt true" true (bin Ast.Lt 1 2 = vi 0);
  check "lt false" true (bin Ast.Lt 2 1 = vi 1);
  check "eq true" true (bin Ast.Eq 5 5 = vi 0);
  check "ne true" true (bin Ast.Ne 5 6 = vi 0);
  check "ge true" true (bin Ast.Ge 6 6 = vi 0);
  check "and" true (bin Ast.And 6 3 = vi 2);
  check "or" true (bin Ast.Or 6 3 = vi 7);
  check "xor" true (bin Ast.Xor 6 3 = vi 5);
  check "shl" true (bin Ast.Shl 3 2 = vi 12);
  check "shr" true (bin Ast.Shr 12 2 = vi 3)

let test_division_by_zero () =
  let t =
    task_of
      [ Builder.binop "r" Ast.Div (Builder.int 1) (Builder.int 0) ]
      Ast.Halt
  in
  check "div by zero" true
    (match Step.step t with
    | Error (Machine_error.Division_by_zero _) -> true
    | _ -> false);
  let t =
    task_of
      [ Builder.binop "r" Ast.Mod (Builder.int 1) (Builder.int 0) ]
      Ast.Halt
  in
  check "mod by zero" true (Result.is_error (Step.step t))

let test_if_jump () =
  let target = Builder.block "t" [ Builder.mov "hit" (Builder.int 1) ] Ast.Halt in
  (* taken: register holds zero *)
  let t =
    task_of ~extra_blocks:[ target ]
      ~seeds:[ ("c", Value.Vint 0) ]
      [ Builder.if_jump "c" (Builder.lab "t") ]
      Ast.Halt
  in
  check "taken on zero" true (reg_after 2 "hit" t = vi 1);
  (* not taken: nonzero falls through *)
  let t =
    task_of ~extra_blocks:[ target ]
      ~seeds:[ ("c", Value.Vint 5) ]
      [ Builder.if_jump "c" (Builder.lab "t"); Builder.mov "fell" (Builder.int 1) ]
      Ast.Halt
  in
  check "falls through on nonzero" true (reg_after 2 "fell" t = vi 1);
  (* join values never branch *)
  let t =
    task_of ~extra_blocks:[ target ]
      ~seeds:[ ("c", Value.Vjoin 0) ]
      [ Builder.if_jump "c" (Builder.lab "t"); Builder.mov "fell" (Builder.int 1) ]
      Ast.Halt
  in
  check "join id falls through" true (reg_after 2 "fell" t = vi 1)

let test_jump_through_register () =
  let target = Builder.block "t" [ Builder.mov "hit" (Builder.int 1) ] Ast.Halt in
  let t =
    task_of ~extra_blocks:[ target ]
      ~seeds:[ ("k", Value.Vlabel "t") ]
      [] (Ast.Jump (Ast.Reg "k"))
  in
  check "computed jump" true (reg_after 2 "hit" t = vi 1);
  let t = task_of ~seeds:[ ("k", Value.Vint 3) ] [] (Ast.Jump (Ast.Reg "k")) in
  check "jump to int fails" true (Result.is_error (Step.step t))

let test_halt () =
  let t = task_of [] Ast.Halt in
  check "halts" true
    (match Step.step t with Ok (Step.Halted _) -> true | _ -> false)

let test_parallel_requests () =
  let t = task_of [ Builder.jralloc "jr" "main" ] Ast.Halt in
  check "jralloc surfaces" true
    (match Step.step t with
    | Ok (Step.Parallel (Step.Req_jralloc { dst = "jr"; cont = "main" }, _)) ->
        true
    | _ -> false);
  let t = task_of [ Builder.fork "jr" (Builder.lab "main") ] Ast.Halt in
  check "fork surfaces" true
    (match Step.step t with
    | Ok (Step.Parallel (Step.Req_fork _, _)) -> true
    | _ -> false);
  let t = task_of [] (Ast.Join "jr") in
  check "join surfaces" true
    (match Step.step t with
    | Ok (Step.Parallel (Step.Req_join { jr = "jr" }, _)) -> true
    | _ -> false)

let test_stack_instructions () =
  let body =
    [
      Builder.snew "sp";
      Builder.salloc "sp" 3;
      Builder.store "sp" 1 (Builder.int 42);
      Builder.load "x" "sp" 1;
      Builder.prmpush "sp" 2;
      Builder.prmempty "e" "sp";
      Builder.prmsplit "sp" "off";
      Builder.prmempty "e2" "sp";
      Builder.sfree "sp" 3;
    ]
  in
  let t = task_of body Ast.Halt in
  check "load after store" true (reg_after 4 "x" t = vi 42);
  check "prmempty false (mark present, 1)" true (reg_after 6 "e" t = vi 1);
  check "prmsplit offset" true (reg_after 7 "off" t = vi 2);
  check "prmempty true after split (0)" true (reg_after 8 "e2" t = vi 0)

let test_prmpop_requires_mark () =
  let t =
    task_of
      [ Builder.snew "sp"; Builder.salloc "sp" 1; Builder.prmpop "sp" 0 ]
      Ast.Halt
  in
  check "prmpop on non-mark fails" true
    (match step_n 3 t with
    | Error (Machine_error.Stack_type _) -> true
    | _ -> false);
  let t =
    task_of
      [ Builder.snew "sp"; Builder.salloc "sp" 1; Builder.prmpush "sp" 0;
        Builder.prmpop "sp" 0; Builder.prmempty "e" "sp" ]
      Ast.Halt
  in
  check "push then pop leaves none" true (reg_after 5 "e" t = vi 0)

let test_prmsplit_no_mark () =
  let t =
    task_of
      [ Builder.snew "sp"; Builder.salloc "sp" 2; Builder.prmsplit "sp" "o" ]
      Ast.Halt
  in
  check "prmsplit without marks errors" true
    (match step_n 3 t with
    | Error (Machine_error.No_mark _) -> true
    | _ -> false)

let test_pointer_arithmetic () =
  let body =
    [
      Builder.snew "sp";
      Builder.salloc "sp" 4;
      Builder.store "sp" 2 (Builder.int 9);
      (* q := sp + 2 points two cells deeper: mem[q+0] = mem[sp+2] *)
      Builder.add "q" (Builder.reg "sp") (Builder.int 2);
      Builder.load "x" "q" 0;
      (* back up: r := q - 2 = sp *)
      Builder.sub "r" (Builder.reg "q") (Builder.int 2);
      Builder.binop "same" Ast.Eq (Builder.reg "r") (Builder.reg "sp");
    ]
  in
  let t = task_of body Ast.Halt in
  check "deep pointer read" true (reg_after 5 "x" t = vi 9);
  check "pointer round trip equality" true (reg_after 7 "same" t = vi 0)

let test_unbound_register () =
  let t = task_of [ Builder.mov "a" (Builder.reg "ghost") ] Ast.Halt in
  check "unbound register" true
    (match Step.step t with
    | Error (Machine_error.Unbound_register "ghost") -> true
    | _ -> false)

let test_cycle_counter_advances () =
  let t = task_of [ Builder.mov "a" (Builder.int 1) ] Ast.Halt in
  match Step.step t with
  | Ok (Step.Stepped t') ->
      Alcotest.(check int) "⋄ incremented" (t.cycles + 1) t'.cycles
  | _ -> Alcotest.fail "expected a step"

let suite =
  ( "step",
    [
      Alcotest.test_case "move" `Quick test_mov;
      Alcotest.test_case "binary operations" `Quick test_binops;
      Alcotest.test_case "division by zero" `Quick test_division_by_zero;
      Alcotest.test_case "if-jump" `Quick test_if_jump;
      Alcotest.test_case "computed jump" `Quick test_jump_through_register;
      Alcotest.test_case "halt" `Quick test_halt;
      Alcotest.test_case "parallel requests" `Quick test_parallel_requests;
      Alcotest.test_case "stack instructions" `Quick test_stack_instructions;
      Alcotest.test_case "prmpop discipline" `Quick test_prmpop_requires_mark;
      Alcotest.test_case "prmsplit without marks" `Quick test_prmsplit_no_mark;
      Alcotest.test_case "pointer arithmetic" `Quick test_pointer_arithmetic;
      Alcotest.test_case "unbound register" `Quick test_unbound_register;
      Alcotest.test_case "cycle counter" `Quick test_cycle_counter_advances;
    ] )
