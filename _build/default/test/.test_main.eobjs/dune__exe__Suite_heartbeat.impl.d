test/suite_heartbeat.ml: Alcotest Array Atomic Fun Heartbeat QCheck QCheck_alcotest Sim Sys Workloads
