test/suite_trace.ml: Alcotest Eval List Printf Programs Result String Tpal Trace Value
