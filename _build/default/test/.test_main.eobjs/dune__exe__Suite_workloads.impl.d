test/suite_workloads.ml: Alcotest Array Csr Exec Float Floyd_warshall Fun Kmeans Knapsack List Mandelbrot Mergesort Plus_reduce Printf Sim Srad Workload Workloads
