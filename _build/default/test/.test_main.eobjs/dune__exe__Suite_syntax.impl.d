test/suite_syntax.ml: Alcotest Ast Builder Check List Parser Printer Programs QCheck QCheck_alcotest Result Tpal
