test/suite_step.ml: Alcotest Ast Builder Machine_error Regfile Result Step Task Tpal Value
