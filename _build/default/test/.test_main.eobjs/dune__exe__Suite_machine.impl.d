test/suite_machine.ml: Alcotest Ast Gen Heap Join List Option QCheck QCheck_alcotest Regfile Result Test Tpal Value
