test/suite_value.ml: Alcotest Array List Option QCheck QCheck_alcotest Result Tpal Value
