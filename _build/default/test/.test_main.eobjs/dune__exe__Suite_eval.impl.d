test/suite_eval.ml: Alcotest Ast Builder Eval Join List Machine_error Printf Programs QCheck QCheck_alcotest Regfile Result Tpal Value
