test/suite_rollforward.ml: Alcotest Ast Eval Join List Machine_error Programs QCheck QCheck_alcotest Regfile Result Rollforward Step Task Tpal Value
