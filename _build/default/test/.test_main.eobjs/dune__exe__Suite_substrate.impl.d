test/suite_substrate.ml: Alcotest Array Eventq Interrupts List Option Params Prng QCheck QCheck_alcotest Sim Wsdeque
