test/suite_repro.ml: Alcotest Figures List Option Paper_values Repro Runner Sim Unix Workloads
