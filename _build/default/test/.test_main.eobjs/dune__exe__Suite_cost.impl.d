test/suite_cost.ml: Alcotest Cost QCheck QCheck_alcotest Tpal
