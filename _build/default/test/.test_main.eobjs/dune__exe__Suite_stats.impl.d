test/suite_stats.ml: Alcotest Float List QCheck QCheck_alcotest Stats String
