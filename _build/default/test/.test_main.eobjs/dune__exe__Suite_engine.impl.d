test/suite_engine.ml: Alcotest Engine Interrupts List Par_ir Params Printf QCheck QCheck_alcotest Runnable Sim
