test/suite_assets.ml: Alcotest Ast Check Eval Filename Fun List Machine_error Parser Printf Programs Regfile Sys Tpal Value
