(* Tests for register files, heaps, join maps and the merge
   metafunctions (Figure 27). *)

open Tpal

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let vi n = Value.Vint n

(* --- Regfile / MergeR --- *)

let test_regfile_basics () =
  let rf = Regfile.of_list [ ("a", vi 1); ("b", vi 2) ] in
  check "find a" true (Regfile.find "a" rf = Ok (vi 1));
  check "unbound" true (Result.is_error (Regfile.find "z" rf));
  check_int "cardinal" 2 (Regfile.cardinal rf);
  let rf = Regfile.set "a" (vi 9) rf in
  check "overwrite" true (Regfile.find "a" rf = Ok (vi 9))

let test_merge_r () =
  (* MergeR(R1, R2, ΔR): R1's bindings except ΔR targets, plus child's
     renamed entries. *)
  let parent = Regfile.of_list [ ("r", vi 10); ("r2", vi 99); ("x", vi 7) ] in
  let child = Regfile.of_list [ ("r", vi 20); ("x", vi 8) ] in
  let merged = Regfile.merge parent child [ ("r", "r2") ] in
  check "parent r kept" true (Regfile.find "r" merged = Ok (vi 10));
  check "target overwritten by child's source" true
    (Regfile.find "r2" merged = Ok (vi 20));
  check "untouched parent binding" true (Regfile.find "x" merged = Ok (vi 7))

let test_merge_r_missing_source () =
  (* a ΔR pair whose source is unbound in the child is dropped,
     removing the parent's stale binding for the target *)
  let parent = Regfile.of_list [ ("t", vi 5) ] in
  let child = Regfile.empty in
  let merged = Regfile.merge parent child [ ("miss", "t") ] in
  check "stale target dropped" true (Regfile.find_opt "t" merged = None)

let test_merge_r_empty_dr () =
  let parent = Regfile.of_list [ ("a", vi 1) ] in
  let child = Regfile.of_list [ ("a", vi 2); ("b", vi 3) ] in
  let merged = Regfile.merge parent child [] in
  check "empty ΔR keeps parent only" true (Regfile.equal merged parent)

(* --- Heap / MergeH / resolve --- *)

let block term = { Ast.annot = Ast.Plain; body = []; term }
let halt_block = block Ast.Halt

let test_heap_merge_left_bias () =
  let b1 = block (Ast.Jump (Ast.Lab "x")) in
  let h1 = Heap.add "l" b1 Heap.empty in
  let h2 = Heap.add "l" halt_block (Heap.add "m" halt_block Heap.empty) in
  let m = Heap.merge h1 h2 in
  check "left wins on conflict" true (Heap.find_opt "l" m = Some b1);
  check "right fills gaps" true (Heap.find_opt "m" m = Some halt_block);
  check_int "cardinal" 2 (Heap.cardinal m)

let test_heap_resolve () =
  let h = Heap.add "go" halt_block Heap.empty in
  let rf = Regfile.of_list [ ("t", Value.Vlabel "go"); ("n", vi 3) ] in
  check "label operand" true
    (Heap.resolve h rf (Ast.Lab "go") = Ok ("go", halt_block));
  check "register-held label" true
    (Heap.resolve h rf (Ast.Reg "t") = Ok ("go", halt_block));
  check "int is a type error" true
    (Result.is_error (Heap.resolve h rf (Ast.Int 3)));
  check "register-held int is a type error" true
    (Result.is_error (Heap.resolve h rf (Ast.Reg "n")));
  check "unknown label" true
    (Result.is_error (Heap.resolve h rf (Ast.Lab "missing")))

(* --- Join maps / MergeJ --- *)

let test_join_alloc_fresh () =
  let j0, m = Join.alloc "k0" Join.empty in
  let j1, m = Join.alloc "k1" m in
  check "distinct ids" true (j0 <> j1);
  check "fresh records closed" true
    (match Join.find j0 m with
    | Ok r -> Join.equal_status r.status Join.Closed && r.cont = "k0"
    | Error _ -> false);
  check_int "cardinal" 2 (Join.cardinal m)

let test_join_merge () =
  let j0, m1 = Join.alloc "a" Join.empty in
  let m1 = Join.set j0 { cont = "a"; status = Join.Open } m1 in
  let j0', m2 = Join.alloc "b" Join.empty in
  check_int "same id from independent maps" j0 j0';
  let merged = Join.merge m1 m2 in
  (* left bias on the shared id *)
  check "left wins" true
    (match Join.find j0 merged with
    | Ok r -> r.cont = "a" && Join.equal_status r.status Join.Open
    | Error _ -> false);
  (* allocator stays fresh after merging *)
  let j2, _ = Join.alloc "c" merged in
  check "fresh after merge" true (j2 <> j0)

let test_join_remove () =
  let j, m = Join.alloc "k" Join.empty in
  let m = Join.remove j m in
  check "removed" true (Result.is_error (Join.find j m));
  (* removal does not recycle ids *)
  let j', _ = Join.alloc "k2" m in
  check "no id reuse" true (j' <> j)

(* property: MergeR target set is exactly dom(parent) \ targets ∪
   renamed sources present in child *)
let prop_merge_r_domain =
  let open QCheck in
  let reg = Gen.oneofl [ "a"; "b"; "c"; "d"; "e" ] in
  let gen =
    Gen.triple
      (Gen.list_size (Gen.int_bound 5) (Gen.pair reg Gen.small_int))
      (Gen.list_size (Gen.int_bound 5) (Gen.pair reg Gen.small_int))
      (Gen.list_size (Gen.int_bound 3) (Gen.pair reg reg))
  in
  Test.make ~name:"MergeR domain law" ~count:300 (make gen)
    (fun (pl, cl, dr) ->
      let parent = Regfile.of_list (List.map (fun (r, v) -> (r, vi v)) pl) in
      let child = Regfile.of_list (List.map (fun (r, v) -> (r, vi v)) cl) in
      let merged = Regfile.merge parent child dr in
      let targets = List.map snd dr in
      List.for_all
        (fun (r, _) ->
          match Regfile.find_opt r merged with
          | Some value ->
              (* either r is not a ΔR target and comes from parent... *)
              ((not (List.mem r targets))
              && Option.fold ~none:false
                   ~some:(Value.equal value)
                   (Regfile.find_opt r parent))
              (* ...or it is a target and must equal some renamed child
                 source *)
              || List.exists
                   (fun (src, tgt) ->
                     tgt = r
                     &&
                     match Regfile.find_opt src child with
                     | Some cv -> Value.equal value cv
                     | None -> false)
                   dr
          | None -> List.mem r targets)
        pl)

let suite =
  ( "machine-state",
    [
      Alcotest.test_case "regfile basics" `Quick test_regfile_basics;
      Alcotest.test_case "MergeR" `Quick test_merge_r;
      Alcotest.test_case "MergeR drops missing sources" `Quick
        test_merge_r_missing_source;
      Alcotest.test_case "MergeR with empty ΔR" `Quick test_merge_r_empty_dr;
      Alcotest.test_case "MergeH left bias" `Quick test_heap_merge_left_bias;
      Alcotest.test_case "heap resolve (Ĥ)" `Quick test_heap_resolve;
      Alcotest.test_case "join alloc freshness" `Quick test_join_alloc_fresh;
      Alcotest.test_case "MergeJ" `Quick test_join_merge;
      Alcotest.test_case "join removal" `Quick test_join_remove;
      QCheck_alcotest.to_alcotest prop_merge_r_domain;
    ] )
