(* Tests for the tracer: the Appendix-D prod trace structure. *)

open Tpal

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let collect ?(heart = Some 4) ?(limit = 10_000) program seeds =
  Trace.collect ~watch_regs:[ "a"; "r" ] ~limit
    ~options:{ Eval.default_options with heart; fuel = 100_000 }
    program seeds

let test_serial_prefix_matches_appendix_d () =
  (* Appendix D, ♥ = 4, a = 3, b = 4: the first events are
     r := 0; jump loop; if-jump; r := r + b; a := a - 1; jump loop;
     then the first heartbeat interrupt fires at the loop entry. *)
  let entries, res =
    collect Programs.prod [ ("a", Value.Vint 3); ("b", Value.Vint 4) ]
  in
  check "run succeeded" true (Result.is_ok res);
  let whats = List.map (fun (e : Trace.entry) -> e.what) entries in
  let expected_prefix =
    [ "r := 0"; "jump loop"; "if-jump a, exit"; "r := r + b"; "a := a - 1";
      "jump loop"; "[try-promote → loop-try-promote]" ]
  in
  List.iteri
    (fun i want ->
      Alcotest.(check string)
        (Printf.sprintf "event %d" (i + 1))
        want (List.nth whats i))
    expected_prefix;
  (* the promotion fires with ⋄ = 6 > ♥ = 4 at loop[0], as in the
     paper's worked trace *)
  let promo = List.nth entries 6 in
  check_int "⋄ at promotion" 6 promo.cycles;
  Alcotest.(check string) "pc at promotion" "loop"
    promo.pc.label

let test_trace_records_fork_and_join () =
  let entries, _ =
    collect Programs.prod [ ("a", Value.Vint 3); ("b", Value.Vint 4) ]
  in
  let milestones = Trace.milestones entries in
  let kinds = List.map (fun (e : Trace.entry) -> e.what) milestones in
  check "has a jralloc" true
    (List.exists (fun w -> String.length w > 8 && String.sub w 0 8 = "[jralloc") kinds);
  check "has a fork" true
    (List.exists (fun w -> String.length w > 5 && String.sub w 0 5 = "[fork") kinds);
  check "has a join-continue" true
    (List.exists
       (fun w -> String.length w > 14 && String.sub w 0 14 = "[join-continue")
       kinds);
  check "ends with halt" true
    (match List.rev entries with
    | (e : Trace.entry) :: _ -> e.what = "[halt]"
    | [] -> false)

let test_trace_limit () =
  let entries, _ =
    Trace.collect ~limit:10
      ~options:{ Eval.default_options with heart = None; fuel = 100_000 }
      Programs.prod
      [ ("a", Value.Vint 50); ("b", Value.Vint 1) ]
  in
  check_int "truncated to limit" 10 (List.length entries)

let test_watch_registers () =
  let entries, _ =
    collect Programs.prod [ ("a", Value.Vint 3); ("b", Value.Vint 4) ]
  in
  (* at the a := a - 1 event (index 4), the accumulator already holds 4 *)
  let e = List.nth entries 4 in
  check "watched r visible" true
    (List.exists (fun (r, v) -> r = "r" && v = "4") e.watched)

let test_to_string_nonempty () =
  let entries, _ =
    collect Programs.prod [ ("a", Value.Vint 2); ("b", Value.Vint 2) ]
  in
  check "rendering nonempty" true
    (String.length (Trace.to_string entries) > 100)

let suite =
  ( "trace",
    [
      Alcotest.test_case "Appendix D prod prefix" `Quick
        test_serial_prefix_matches_appendix_d;
      Alcotest.test_case "fork/join milestones" `Quick
        test_trace_records_fork_and_join;
      Alcotest.test_case "entry limit" `Quick test_trace_limit;
      Alcotest.test_case "register watches" `Quick test_watch_registers;
      Alcotest.test_case "rendering" `Quick test_to_string_nonempty;
    ] )
