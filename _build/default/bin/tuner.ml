(* tuner — the one-time, per-machine heartbeat tuning application
   (§2.2): find the smallest ♥ whose single-core overhead stays under
   a bound, so that promotions are amortised but no useful parallelism
   is pruned.

   Sweeps ♥ over a log grid for every benchmark, reports the 1-core
   overhead and 15-core speedup at each setting, and prints the
   selected ♥. *)

open Cmdliner

let bound_arg =
  Arg.(
    value & opt float 5.0
    & info [ "bound" ] ~docv:"PCT"
        ~doc:"Maximum acceptable single-core overhead, percent.")

let system_arg =
  let sys_conv =
    Arg.enum
      [ ("linux", Repro.Runner.Tpal_linux);
        ("nautilus", Repro.Runner.Tpal_nautilus);
        ("papi", Repro.Runner.Tpal_papi) ]
  in
  Arg.(
    value & opt sys_conv Repro.Runner.Tpal_nautilus
    & info [ "system" ] ~docv:"SYS" ~doc:"Signal mechanism to tune for.")

let hearts = [ 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. ]

let go bound system =
  let f2 = Stats.Table.fmt_float ~decimals:2 in
  Printf.printf "Tuning heart for %s (overhead bound %.1f%%)\n"
    (Repro.Runner.system_name system)
    bound;
  let per_bench =
    List.map
      (fun (w : Workloads.Workload.t) ->
        let overhead h =
          (Repro.Runner.normalized_1core ~heart_us:h system w -. 1.) *. 100.
        in
        let chosen =
          List.find_opt (fun h -> overhead h <= bound) hearts
        in
        (w, chosen))
      Workloads.Workload.all
  in
  let rows =
    List.map
      (fun ((w : Workloads.Workload.t), chosen) ->
        let cells =
          List.map
            (fun h ->
              f2
                ((Repro.Runner.normalized_1core ~heart_us:h system w -. 1.)
                *. 100.))
            hearts
        in
        (w.name
        :: cells)
        @ [ (match chosen with Some h -> Printf.sprintf "%.0fus" h | None -> "-") ])
      per_bench
  in
  let header =
    ("benchmark" :: List.map (fun h -> Printf.sprintf "%.0fus" h) hearts)
    @ [ "chosen" ]
  in
  Stats.Table.print
    (Stats.Table.make ~title:"1-core overhead (%) per heart setting" ~header
       rows);
  (* The machine-wide ♥: the smallest value acceptable to every
     benchmark (the paper tunes once per machine, not per program). *)
  let machine_heart =
    List.find_opt
      (fun h ->
        List.for_all
          (fun (w, _) ->
            (Repro.Runner.normalized_1core ~heart_us:h system w -. 1.) *. 100.
            <= bound)
          per_bench)
      hearts
  in
  (match machine_heart with
  | Some h ->
      Printf.printf
        "\nSelected machine heartbeat: %.0f us (smallest setting with all \
         single-core overheads <= %.1f%%)\n"
        h bound
  | None -> Printf.printf "\nNo setting met the bound; use 1000 us.\n");
  0

let () =
  let info =
    Cmd.info "tuner" ~doc:"Heartbeat tuning application (paper, section 2.2)."
  in
  exit (Cmd.eval' (Cmd.v info Term.(const go $ bound_arg $ system_arg)))
