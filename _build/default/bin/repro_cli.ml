(* repro — run one (or all) of the paper's experiments by id and print
   the regenerated table(s).

   Ids: fig6 fig7 fig8 fig9 fig10 fig11 fig13 fig14 fig15 headline
   tuner ablation all. *)

open Cmdliner

let id_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"EXPERIMENT"
        ~doc:
          "One of: fig6 fig7 fig8 fig9 fig10 fig11 fig13 fig14 fig15 \
           headline tuner ablation all.")

let go id =
  match Repro.Figures.by_name id with
  | None ->
      Printf.eprintf "unknown experiment %S\n" id;
      1
  | Some tables ->
      List.iter Repro.Figures.print_table tables;
      0

let () =
  let info =
    Cmd.info "repro" ~doc:"Regenerate one of the paper's figures or tables."
  in
  exit (Cmd.eval' (Cmd.v info Term.(const go $ id_arg)))
