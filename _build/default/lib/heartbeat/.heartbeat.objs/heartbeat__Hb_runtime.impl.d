lib/heartbeat/hb_runtime.ml: Effect Option Queue Thread Unix
