(** The parallel-program intermediate representation benchmarks are
    written in.

    This is the simulator-facing counterpart of TPAL's source level: a
    fork-join program whose loops are {e splittable iteration ranges}
    and whose recursive calls {e advertise} their second branch for
    promotion — exactly the two shapes TPAL promotes (remaining loop
    iterations, and the oldest promotion-ready stack mark).

    Leaves carry their cost in virtual CPU cycles; workload modules
    calibrate those costs to the arithmetic of the kernels they model. *)

(** Per-iteration cost of a flat loop.  [Const] enables bulk execution
    of many iterations in one step; [Fn] supports irregular loops
    (e.g. power-law sparse rows) at one simulator step per iteration. *)
type cost = Const of int | Fn of (int -> int)

type t =
  | Leaf of int  (** opaque sequential work of the given cycles *)
  | Seq of t list  (** sequential composition *)
  | For of { n : int; cost : cost }
      (** a parallel-for over [n] iterations whose body is straight-line
          work; promotable/splittable by iteration range *)
  | For_nested of { n : int; body : int -> t }
      (** a parallel-for whose iterations are themselves parallel
          programs (nested parallelism); splittable by outer range *)
  | Spawn2 of (unit -> t) * (unit -> t)
      (** binary fork-join ([cilk_spawn] + [cilk_sync]); thunked so
          that recursive programs unfold lazily during execution *)

let leaf c = Leaf c
let seq l = Seq l
let for_const ~n ~cycles = For { n; cost = Const cycles }
let for_fn ~n f = For { n; cost = Fn f }
let for_nested ~n body = For_nested { n; body }
let spawn2 a b = Spawn2 (a, b)

let iter_cost (c : cost) (i : int) : int =
  match c with Const k -> k | Fn f -> f i

(** Total algorithm work in cycles (no scheduling overheads) —
    the serial execution time of the program.  Iterative so that deep
    [Spawn2] recursions (e.g. a million-node task tree) cannot
    overflow the OCaml stack. *)
let work (p : t) : int =
  let total = ref 0 in
  let stack = ref [ p ] in
  let push x = stack := x :: !stack in
  let rec drain () =
    match !stack with
    | [] -> ()
    | x :: rest ->
        stack := rest;
        (match x with
        | Leaf c -> total := !total + c
        | Seq l -> List.iter push l
        | For { n; cost = Const k } -> total := !total + (n * k)
        | For { n; cost = Fn f } ->
            for i = 0 to n - 1 do
              total := !total + f i
            done
        | For_nested { n; body } ->
            for i = 0 to n - 1 do
              push (body i)
            done
        | Spawn2 (a, b) ->
            push (a ());
            push (b ()));
        drain ()
  in
  drain ();
  !total

(** Critical-path length in cycles under unbounded parallelism with
    free forks: loops contribute their largest iteration, spawns the
    larger branch.  Recursive with explicit bounded depth via
    continuation list — adequate for the tree shapes of the
    benchmarks (depth is logarithmic or linear-small). *)
let rec span (p : t) : int =
  match p with
  | Leaf c -> c
  | Seq l -> List.fold_left (fun acc x -> acc + span x) 0 l
  | For { n; cost = Const k } -> if n = 0 then 0 else k
  | For { n; cost = Fn f } ->
      let m = ref 0 in
      for i = 0 to n - 1 do
        if f i > !m then m := f i
      done;
      ignore n;
      !m
  | For_nested { n; body } ->
      let m = ref 0 in
      for i = 0 to n - 1 do
        let s = span (body i) in
        if s > !m then m := s
      done;
      !m
  | Spawn2 (a, b) -> max (span (a ())) (span (b ()))

(** Average parallelism [work / span]. *)
let parallelism (p : t) : float =
  let s = span p in
  if s = 0 then 0. else float_of_int (work p) /. float_of_int s
