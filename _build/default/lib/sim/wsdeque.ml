(** Work-stealing deque, simulated.

    Each core owns one: the owner pushes and pops at the {e bottom}
    (LIFO, preserving locality), thieves steal from the {e top} (FIFO,
    taking the oldest — and in heartbeat scheduling the outermost —
    task), exactly the discipline of Chase–Lev deques in the paper's
    runtime.  The simulator is single-threaded, so no synchronisation
    is modelled here; the {e cost} of steals is charged by the engine. *)

type 'a t = { mutable items : 'a array; mutable head : int; mutable tail : int }
(* items.(head .. tail-1) are live; head = top (steal end),
   tail = bottom (owner end). *)

let create () : 'a t = { items = [||]; head = 0; tail = 0 }
let length (d : 'a t) : int = d.tail - d.head
let is_empty (d : 'a t) : bool = length d = 0

let ensure (d : 'a t) (x : 'a) : unit =
  let cap = Array.length d.items in
  if d.tail = cap then
    if length d = 0 then begin
      d.head <- 0;
      d.tail <- 0;
      if cap = 0 then d.items <- Array.make 8 x
    end
    else begin
      let live = length d in
      let cap' = max 8 (2 * live) in
      let items = Array.make cap' x in
      Array.blit d.items d.head items 0 live;
      d.items <- items;
      d.head <- 0;
      d.tail <- live
    end

(** Owner push at the bottom. *)
let push_bottom (d : 'a t) (x : 'a) : unit =
  ensure d x;
  d.items.(d.tail) <- x;
  d.tail <- d.tail + 1

(** Owner pop at the bottom (LIFO). *)
let pop_bottom (d : 'a t) : 'a option =
  if is_empty d then None
  else begin
    d.tail <- d.tail - 1;
    Some d.items.(d.tail)
  end

(** Thief steal from the top (FIFO — the oldest task). *)
let steal_top (d : 'a t) : 'a option =
  if is_empty d then None
  else begin
    let x = d.items.(d.head) in
    d.head <- d.head + 1;
    Some x
  end

let to_list (d : 'a t) : 'a list =
  List.init (length d) (fun i -> d.items.(d.head + i))

let clear (d : 'a t) : unit =
  d.head <- 0;
  d.tail <- 0
