lib/sim/par_ir.ml: List
