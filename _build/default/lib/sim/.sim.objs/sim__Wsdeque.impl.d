lib/sim/wsdeque.ml: Array List
