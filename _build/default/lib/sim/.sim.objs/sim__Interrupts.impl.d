lib/sim/interrupts.ml: Array Params Prng
