lib/sim/params.ml:
