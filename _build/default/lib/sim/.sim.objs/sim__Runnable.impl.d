lib/sim/runnable.ml: List Option Par_ir Params
