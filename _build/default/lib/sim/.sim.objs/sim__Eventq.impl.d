lib/sim/eventq.ml: Array
