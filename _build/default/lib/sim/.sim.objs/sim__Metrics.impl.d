lib/sim/metrics.ml: Fmt Params
