lib/sim/engine.ml: Array Eventq Float Interrupts List Metrics Option Par_ir Params Prng Runnable Wsdeque
