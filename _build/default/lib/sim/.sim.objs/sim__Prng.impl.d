lib/sim/prng.ml: Float Int64
