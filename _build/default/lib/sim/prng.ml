(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic choice in the simulator — steal victims, signal
    jitter, workload generation — draws from an explicitly seeded
    generator so that simulated experiments are exactly reproducible
    run-to-run (a property the test suite relies on). *)

type t = { mutable state : int64 }

let create ~(seed : int) : t = { state = Int64.of_int seed }

(** Independent stream derived from [t] — used to give each simulated
    core its own generator so per-core draws do not depend on global
    interleaving. *)
let split (t : t) : t =
  { state = Int64.add t.state 0x9E3779B97F4A7C15L }

let next_int64 (t : t) : int64 =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform integer in [0, bound) for [bound > 0]. *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* mask to the native 62-bit non-negative range before reducing *)
  let x = Int64.to_int (next_int64 t) land max_int in
  x mod bound

(** Uniform float in [0, 1). *)
let float (t : t) : float =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x /. 9007199254740992. (* 2^53 *)

(** Uniform float in [0, hi). *)
let float_range (t : t) (hi : float) : float = float t *. hi

let bool (t : t) : bool = Int64.logand (next_int64 t) 1L = 1L

(** Exponentially distributed float with the given mean. *)
let exponential (t : t) ~(mean : float) : float =
  let u = Float.max 1e-12 (float t) in
  -.mean *. log u

(** Zipf-like draw over [1..n] with exponent [s]: probability ∝ 1/kˢ.
    Used by the power-law sparse-matrix generator. *)
let zipf (t : t) ~(n : int) ~(s : float) : int =
  (* Inverse-CDF on a precomputation-free approximation: rejection via
     the standard Zipf rejection-inversion is overkill here; a simple
     inverse transform on the harmonic CDF is adequate for workload
     generation and keeps the generator allocation-free. *)
  let u = float t in
  (* approximate inverse of the generalized harmonic CDF *)
  if s = 1.0 then
    let hn = log (float_of_int n +. 1.) in
    let k = exp (u *. hn) in
    max 1 (min n (int_of_float k))
  else
    let p = 1. -. s in
    let hn = ((float_of_int n ** p) -. 1.) /. p in
    let k = ((u *. hn *. p) +. 1.) ** (1. /. p) in
    max 1 (min n (int_of_float k))
