(** Binary min-heap event queue for the discrete-event simulator.

    Events are ordered by (time, sequence number): ties in virtual time
    break deterministically in insertion order, which keeps whole
    simulations reproducible. *)

type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a entry;
}

let create ~(dummy : 'a) : 'a t =
  let dummy = { time = 0; seq = 0; payload = dummy } in
  { heap = Array.make 64 dummy; size = 0; next_seq = 0; dummy }

let is_empty (q : 'a t) : bool = q.size = 0
let length (q : 'a t) : int = q.size

let lt (a : 'a entry) (b : 'a entry) : bool =
  a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow (q : 'a t) : unit =
  let heap = Array.make (2 * Array.length q.heap) q.dummy in
  Array.blit q.heap 0 heap 0 q.size;
  q.heap <- heap

(** [add q ~time payload] schedules [payload] at virtual [time]. *)
let add (q : 'a t) ~(time : int) (payload : 'a) : unit =
  if q.size = Array.length q.heap then grow q;
  let e = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  (* sift up *)
  let i = ref q.size in
  q.size <- q.size + 1;
  q.heap.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if lt q.heap.(!i) q.heap.(parent) then begin
      let tmp = q.heap.(parent) in
      q.heap.(parent) <- q.heap.(!i);
      q.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

(** [peek_time q] is the time of the earliest event. *)
let peek_time (q : 'a t) : int option =
  if q.size = 0 then None else Some q.heap.(0).time

(** [pop q] removes and returns the earliest event. *)
let pop (q : 'a t) : (int * 'a) option =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    q.heap.(0) <- q.heap.(q.size);
    q.heap.(q.size) <- q.dummy;
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < q.size && lt q.heap.(l) q.heap.(!smallest) then smallest := l;
      if r < q.size && lt q.heap.(r) q.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = q.heap.(!smallest) in
        q.heap.(!smallest) <- q.heap.(!i);
        q.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some (top.time, top.payload)
  end
