(** The paper's reported numbers, for side-by-side comparison columns
    in the regenerated tables (values read from the figures and the
    prose of §1, §4 and §5; "–" where the paper gives no legible
    per-benchmark value). *)

(** Figure 6: Cilk Plus single-core execution time normalized to
    Serial/Linux (the annotated bar values). *)
let fig6_cilk : (string * float) list =
  [
    ("plus-reduce-array", 8.1);
    ("spmv-random", 16.0);
    ("spmv-powerlaw", 6.8);
    ("spmv-arrowhead", 16.2);
    ("mandelbrot", 1.0);
    ("kmeans", 2.4);
    ("srad", 4.1);
    ("floyd-warshall-1K", 2.6);
    ("floyd-warshall-2K", 4.2);
    ("knapsack", 2.0);
    ("mergesort-uniform", 1.1);
    ("mergesort-exp", 1.1);
  ]

(** Figure 8: TPAL (heartbeat off) single-core time normalized to
    Serial/Linux — the compilation overhead (§4.4 prose values; other
    benchmarks are "at most 6 % slower"). *)
let fig8_tpal : (string * float) list =
  [
    ("plus-reduce-array", 1.03);
    ("spmv-random", 1.04);
    ("spmv-powerlaw", 1.04);
    ("spmv-arrowhead", 1.06);
    ("mandelbrot", 1.02);
    ("kmeans", 1.17);
    ("srad", 1.04);
    ("floyd-warshall-1K", 1.10);
    ("floyd-warshall-2K", 1.10);
    ("knapsack", 1.51);
    ("mergesort-uniform", 1.05);
    ("mergesort-exp", 1.06);
  ]

(** §5.3 / Figure 14 geomean speedups at 15 cores. *)
let fig14_geomeans =
  [
    ("Cilk/Linux", (1.9, 2.4));
    ("TPAL/Linux", (4.0, 3.2));
    ("TPAL/Nautilus", (4.4, 3.6));
  ]

(** §1/§4.3 headline numbers. *)
let headline_task_overhead_ratio = 13.8
(* geomean of TPAL's task-creation overhead advantage *)

let headline_speedup_over_cilk_pct = 53.
(* on benchmarks amenable to recurrent decomposition *)

let headline_slowdown_pct = 9.8
(* on the others *)

(** Figure 10 heartbeat rates (fleet-wide beats/s, 15 workers). *)
let target_rate_100us = 150_000.

let target_rate_20us = 750_000.
let linux_rate_range_20us = (83_000., 281_000.)
let linux_low_rate_100us = 82_362.

let lookup (table : (string * float) list) (name : string) : float option =
  List.assoc_opt name table
