lib/repro/runner.ml: Hashtbl Lazy Sim Workloads
