lib/repro/figures.ml: Float Lazy List Option Paper_values Printf Runner Sim Stats Tpal Workload Workloads
