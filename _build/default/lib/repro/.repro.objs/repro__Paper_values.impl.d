lib/repro/paper_values.ml: List
