lib/stats/stats.ml: Float List Table
