(** Aligned text tables and CSV emitters for the benchmark harness
    output — every reproduced figure prints both a human-readable table
    and a machine-readable CSV block. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  aligns : align list;
  rows : string list list;
}

let make ~(title : string) ~(header : string list) ?(aligns : align list = [])
    (rows : string list list) : t =
  let aligns =
    if aligns = [] then
      List.mapi (fun i _ -> if i = 0 then Left else Right) header
    else aligns
  in
  { title; header; aligns; rows }

let fmt_float ?(decimals = 2) (x : float) : string =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" decimals x

let fmt_int (n : int) : string = string_of_int n

(** Integers with thousands separators, for heartbeat-rate tables. *)
let fmt_int_grouped (n : int) : string =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render (t : t) : string =
  let cols = List.length t.header in
  let widths = Array.make cols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < cols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure t.header;
  List.iter measure t.rows;
  let pad (a : align) (w : int) (s : string) : string =
    let d = w - String.length s in
    if d <= 0 then s
    else
      match a with
      | Left -> s ^ String.make d ' '
      | Right -> String.make d ' ' ^ s
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let a = try List.nth t.aligns i with _ -> Right in
          pad a widths.(i) cell)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (t.title ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (render_row t.header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) t.rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

(** CSV rendering (RFC-4180-ish; quotes cells containing commas). *)
let to_csv (t : t) : string =
  let quote s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let line cells = String.concat "," (List.map quote cells) in
  String.concat "\n" (line t.header :: List.map line t.rows)

let print (t : t) : unit = print_endline (render t)
