(** Join-activation records and their maps [J] (Figure 26), with the
    [MergeJ] metafunction of Figure 27.

    A join-activation record [jr = (l; js)] pairs the label of the join
    continuation block with a status: [Closed] when one or zero tasks hold
    a dependency edge on the record (the state set by [jralloc], and
    restored when a fork's combine block runs at the outermost level), and
    [Open] while a fork's parent and child are both outstanding. *)

type status = Open | Closed

let equal_status a b =
  match (a, b) with
  | Open, Open | Closed, Closed -> true
  | (Open | Closed), _ -> false

let pp_status ppf = function
  | Open -> Fmt.string ppf "jsopen"
  | Closed -> Fmt.string ppf "jsclosed"

type record = { cont : Ast.label; status : status }

let equal_record a b =
  String.equal a.cont b.cont && equal_status a.status b.status

let pp_record ppf { cont; status } =
  Fmt.pf ppf "(%s; %a)" cont pp_status status

module M = Map.Make (Int)

type t = { next : int; records : record M.t }
(** Join maps also carry the allocator state for fresh identifiers so
    that evaluation stays purely functional and deterministic. *)

let empty : t = { next = 0; records = M.empty }

(** [alloc cont j] returns a fresh identifier bound to a closed record
    whose continuation is [cont] (rule [jralloc] of Figure 30). *)
let alloc (cont : Ast.label) (j : t) : int * t =
  let id = j.next in
  ( id,
    { next = id + 1;
      records = M.add id { cont; status = Closed } j.records } )

let find (id : int) (j : t) : (record, Machine_error.t) result =
  match M.find_opt id j.records with
  | Some r -> Ok r
  | None -> Error (Machine_error.Unbound_join id)

let find_opt (id : int) (j : t) : record option = M.find_opt id j.records
let mem (id : int) (j : t) : bool = M.mem id j.records

let set (id : int) (r : record) (j : t) : t =
  { j with records = M.add id r j.records }

let remove (id : int) (j : t) : t = { j with records = M.remove id j.records }
let cardinal (j : t) : int = M.cardinal j.records
let bindings (j : t) = M.bindings j.records

(** [merge j1 j2] implements [MergeJ(J1, J2)]: left-biased union of the
    record maps.  The allocator counter takes the max so that identifiers
    remain fresh after the merge. *)
let merge (j1 : t) (j2 : t) : t =
  { next = max j1.next j2.next;
    records = M.union (fun _ r1 _ -> Some r1) j1.records j2.records }

let pp ppf (j : t) =
  let pp_binding ppf (id, r) = Fmt.pf ppf "j%d ↦ %a" id pp_record r in
  Fmt.pf ppf "{@[%a@]}" Fmt.(list ~sep:comma pp_binding) (bindings j)
