(** Sequential transitions of the TPAL abstract machine:
    [(l̄, H, R, I) → (l̄', H', R', I')] — Figure 29 for the register
    fragment and Figure 31 for the stack extension.

    The parallel instructions ([jralloc], [fork], [join]) have no
    sequential rule; stepping them yields a {!outcome.Parallel} request
    that the evaluator ({!Eval}) services according to Figure 30. *)

type parallel_request =
  | Req_jralloc of { dst : Ast.reg; cont : Ast.label }
  | Req_fork of { jr : Ast.reg; target : Ast.operand }
  | Req_join of { jr : Ast.reg }

type outcome =
  | Stepped of Task.t  (** one sequential transition was taken *)
  | Halted of Task.t  (** the [halt] rule: the whole machine stops *)
  | Parallel of parallel_request * Task.t
      (** the task is poised at a parallel instruction; the carried task
          is unchanged (the evaluator advances it as part of the
          parallel rule) *)

let ( let* ) = Result.bind

(** Evaluate a static operand via the register file (the [R̂] lookup of
    Figure 27, extended to labels and literals). *)
let eval_operand (rf : Regfile.t) (v : Ast.operand) :
    (Value.t, Machine_error.t) result =
  match v with
  | Ast.Reg r -> Regfile.find r rf
  | Ast.Lab l -> Ok (Value.Vlabel l)
  | Ast.Int n -> Ok (Value.Vint n)

let expect_int ~context (v : Value.t) : (int, Machine_error.t) result =
  match v with
  | Value.Vint n -> Ok n
  | other ->
      Error
        (Machine_error.Type_error
           { expected = "int"; got = Value.kind other; context })

let expect_ptr ~context (v : Value.t) :
    (Value.stack_obj * int, Machine_error.t) result =
  match v with
  | Value.Vptr (s, p) -> Ok (s, p)
  | other ->
      Error
        (Machine_error.Type_error
           { expected = "stack pointer"; got = Value.kind other; context })

let int_binop (op : Ast.binop) (a : int) (b : int) :
    (Value.t, Machine_error.t) result =
  match op with
  | Ast.Add -> Ok (Value.Vint (a + b))
  | Ast.Sub -> Ok (Value.Vint (a - b))
  | Ast.Mul -> Ok (Value.Vint (a * b))
  | Ast.Div ->
      if b = 0 then Error (Machine_error.Division_by_zero { op = "division" })
      else Ok (Value.Vint (a / b))
  | Ast.Mod ->
      if b = 0 then Error (Machine_error.Division_by_zero { op = "modulus" })
      else Ok (Value.Vint (a mod b))
  | Ast.Lt -> Ok (Value.of_bool (a < b))
  | Ast.Le -> Ok (Value.of_bool (a <= b))
  | Ast.Eq -> Ok (Value.of_bool (a = b))
  | Ast.Ne -> Ok (Value.of_bool (a <> b))
  | Ast.Gt -> Ok (Value.of_bool (a > b))
  | Ast.Ge -> Ok (Value.of_bool (a >= b))
  | Ast.And -> Ok (Value.Vint (a land b))
  | Ast.Or -> Ok (Value.Vint (a lor b))
  | Ast.Xor -> Ok (Value.Vint (a lxor b))
  | Ast.Shl -> Ok (Value.Vint (a lsl b))
  | Ast.Shr -> Ok (Value.Vint (a asr b))

(** Binary operations.  Besides integer arithmetic, pointer arithmetic
    is supported for the stack idioms of the [fib] program (Appendix B):
    [p + k] moves a pointer [k] cells deeper (consistently with the
    [mem[p + n]] addressing convention), [p - k] moves it [k] cells
    shallower, and equality compares pointers by identity-and-position. *)
let apply_binop ~context (op : Ast.binop) (v1 : Value.t) (v2 : Value.t) :
    (Value.t, Machine_error.t) result =
  match (op, v1, v2) with
  | _, Value.Vint a, Value.Vint b -> int_binop op a b
  | Ast.Add, Value.Vptr (s, p), Value.Vint k
  | Ast.Add, Value.Vint k, Value.Vptr (s, p) ->
      Ok (Value.Vptr (s, p - k))
  | Ast.Sub, Value.Vptr (s, p), Value.Vint k -> Ok (Value.Vptr (s, p + k))
  | Ast.Eq, Value.Vptr (s1, p1), Value.Vptr (s2, p2) ->
      Ok (Value.of_bool (s1 == s2 && p1 = p2))
  | Ast.Ne, Value.Vptr (s1, p1), Value.Vptr (s2, p2) ->
      Ok (Value.of_bool (not (s1 == s2 && p1 = p2)))
  | _, a, b ->
      Error
        (Machine_error.Type_error
           { expected = "int (or pointer arithmetic)";
             got = Value.kind a ^ " " ^ Ast.show_binop op ^ " " ^ Value.kind b;
             context })

(* Advance past the instruction just issued: bump the offset within the
   block and the cycle counter ⋄ (each transition costs one cycle, per
   the [seq] rule of Figure 30). *)
let advance (t : Task.t) (rest : Ast.instr list) ~(regs : Regfile.t) : Task.t =
  { t with
    pc = { t.pc with offset = t.pc.offset + 1 };
    cycles = t.cycles + 1;
    regs;
    code = { t.code with rest } }

(* Transfer control to the first instruction of [block] at [label]. *)
let goto (t : Task.t) (label : Ast.label) (block : Ast.block) : Task.t =
  { t with
    pc = Task.pc label 0;
    cycles = t.cycles + 1;
    code = Task.code_of_block block }

let read_stack ~context (s : Value.stack_obj) (p : int) (n : int) :
    (Value.t, Machine_error.t) result =
  match Value.read s p n with
  | Ok v -> Ok v
  | Error _ ->
      Error (Machine_error.Stack_bounds { context; offset = n; depth = p + 1 })

let write_stack ~context (s : Value.stack_obj) (p : int) (n : int)
    (v : Value.t) : (unit, Machine_error.t) result =
  match Value.write s p n v with
  | Ok () -> Ok ()
  | Error _ ->
      Error (Machine_error.Stack_bounds { context; offset = n; depth = p + 1 })

let step_instr (t : Task.t) (i : Ast.instr) (rest : Ast.instr list) :
    (outcome, Machine_error.t) result =
  let rf = t.regs in
  match i with
  | Ast.Mov (r, v) ->
      (* [move] *)
      let* value = eval_operand rf v in
      Ok (Stepped (advance t rest ~regs:(Regfile.set r value rf)))
  | Ast.Binop (r, op, v1, v2) ->
      (* [binop] *)
      let context = "binop " ^ Ast.show_binop op in
      let* a = eval_operand rf v1 in
      let* b = eval_operand rf v2 in
      let* value = apply_binop ~context op a b in
      Ok (Stepped (advance t rest ~regs:(Regfile.set r value rf)))
  | Ast.If_jump (r, v) ->
      (* [if-true] / [if-false] *)
      let* value = Regfile.find r rf in
      if Value.is_true value then
        let* l, b = Heap.resolve t.heap rf v in
        Ok (Stepped (goto t l b))
      else Ok (Stepped (advance t rest ~regs:rf))
  | Ast.Jralloc (dst, cont) -> Ok (Parallel (Req_jralloc { dst; cont }, t))
  | Ast.Fork (jr, target) -> Ok (Parallel (Req_fork { jr; target }, t))
  | Ast.Snew r ->
      (* [stack-new] *)
      Ok (Stepped (advance t rest ~regs:(Regfile.set r (Value.stack_new ()) rf)))
  | Ast.Salloc (r, n) ->
      (* [stack-alloc] *)
      let* v = Regfile.find r rf in
      let* s, p = expect_ptr ~context:"salloc" v in
      let p' = Value.salloc s p n in
      Ok (Stepped (advance t rest ~regs:(Regfile.set r (Value.Vptr (s, p')) rf)))
  | Ast.Sfree (r, n) -> (
      (* [stack-free] *)
      let* v = Regfile.find r rf in
      let* s, p = expect_ptr ~context:"sfree" v in
      match Value.sfree p n with
      | Error _ ->
          Error
            (Machine_error.Stack_bounds
               { context = "sfree"; offset = n; depth = p + 1 })
      | Ok p' ->
          Ok
            (Stepped
               (advance t rest ~regs:(Regfile.set r (Value.Vptr (s, p')) rf))))
  | Ast.Load (rd, r, n) ->
      (* [stack-load] *)
      let* v = Regfile.find r rf in
      let* s, p = expect_ptr ~context:"load" v in
      let* value = read_stack ~context:"load" s p n in
      Ok (Stepped (advance t rest ~regs:(Regfile.set rd value rf)))
  | Ast.Store (r, n, v) ->
      (* [stack-store] *)
      let* ptr = Regfile.find r rf in
      let* s, p = expect_ptr ~context:"store" ptr in
      let* value = eval_operand rf v in
      let* () = write_stack ~context:"store" s p n value in
      Ok (Stepped (advance t rest ~regs:rf))
  | Ast.Prmpush (r, n) ->
      (* [prm-push] *)
      let* v = Regfile.find r rf in
      let* s, p = expect_ptr ~context:"prmpush" v in
      let* () = write_stack ~context:"prmpush" s p n Value.Vprmark in
      Ok (Stepped (advance t rest ~regs:rf))
  | Ast.Prmpop (r, n) -> (
      (* [prm-pop]: the targeted cell must hold a mark. *)
      let* v = Regfile.find r rf in
      let* s, p = expect_ptr ~context:"prmpop" v in
      let* cell = read_stack ~context:"prmpop" s p n in
      match cell with
      | Value.Vprmark ->
          let* () = write_stack ~context:"prmpop" s p n (Value.Vint 0) in
          Ok (Stepped (advance t rest ~regs:rf))
      | other ->
          Error
            (Machine_error.Stack_type
               { context = "prmpop"; offset = n; got = Value.kind other }))
  | Ast.Prmempty (rd, r) ->
      (* [prm-empty-true] / [prm-empty-false]: zero-is-true — the result
         is 0 (true) iff the mark list is empty, so a promotion handler
         written as [t := prmempty sp; if-jump t, loop] aborts exactly
         when there is nothing to promote (Figure 23). *)
      let* v = Regfile.find r rf in
      let* s, p = expect_ptr ~context:"prmempty" v in
      let value = Value.of_bool (not (Value.has_mark s p)) in
      Ok (Stepped (advance t rest ~regs:(Regfile.set rd value rf)))
  | Ast.Prmsplit (rs, rp) -> (
      (* [prm-split]: clear the least-recent (deepest) mark and return
         its offset. *)
      let* v = Regfile.find rs rf in
      let* s, p = expect_ptr ~context:"prmsplit" v in
      match Value.oldest_mark s p with
      | None -> Error (Machine_error.No_mark { context = "prmsplit" })
      | Some off ->
          let* () = write_stack ~context:"prmsplit" s p off (Value.Vint 0) in
          Ok
            (Stepped (advance t rest ~regs:(Regfile.set rp (Value.Vint off) rf))))

let step_term (t : Task.t) (term : Ast.terminator) :
    (outcome, Machine_error.t) result =
  match term with
  | Ast.Jump v ->
      (* [jump] *)
      let* l, b = Heap.resolve t.heap t.regs v in
      Ok (Stepped (goto t l b))
  | Ast.Halt ->
      (* [halt] — the configuration is final. *)
      Ok (Halted t)
  | Ast.Join jr -> Ok (Parallel (Req_join { jr }, t))

(** [step t] takes one sequential transition from [t], or reports that
    the machine halted or that a parallel rule must fire. *)
let step (t : Task.t) : (outcome, Machine_error.t) result =
  match t.code.rest with
  | i :: rest -> step_instr t i rest
  | [] -> step_term t t.code.term
