(** Static well-formedness checking of TPAL programs.

    The abstract machine is defensive at run time; this pass catches the
    same classes of fault statically, before execution, plus stylistic
    hazards of the concrete syntax (e.g. a register shadowing a block
    label, which the parser would silently resolve to the label). *)

type severity = Error | Warning

type diagnostic = { severity : severity; block : Ast.label option; message : string }

let errf ?block fmt =
  Format.kasprintf (fun message -> { severity = Error; block; message }) fmt

let warnf ?block fmt =
  Format.kasprintf (fun message -> { severity = Warning; block; message }) fmt

let pp_diagnostic ppf (d : diagnostic) =
  let sev = match d.severity with Error -> "error" | Warning -> "warning" in
  match d.block with
  | Some b -> Fmt.pf ppf "%s (block %s): %s" sev b d.message
  | None -> Fmt.pf ppf "%s: %s" sev d.message

let is_error (d : diagnostic) = d.severity = Error

module SS = Set.Make (String)

let duplicates (labels : string list) : string list =
  let rec go seen dups = function
    | [] -> List.rev dups
    | l :: rest ->
        if SS.mem l seen then go seen (l :: dups) rest
        else go (SS.add l seen) dups rest
  in
  go SS.empty [] labels

(* Labels reachable from the entry following static label references. *)
let reachable (p : Ast.program) : SS.t =
  let heap = Heap.of_program p in
  let rec go (frontier : string list) (seen : SS.t) =
    match frontier with
    | [] -> seen
    | l :: rest ->
        if SS.mem l seen then go rest seen
        else
          let seen = SS.add l seen in
          let succs =
            match Heap.find_opt l heap with
            | None -> []
            | Some b -> Ast.block_labels b
          in
          go (succs @ rest) seen
  in
  go [ p.entry ] SS.empty

(** [check p] returns all diagnostics for [p]; the program is safe to
    run (modulo dynamic register contents) when no {!Error}-severity
    diagnostics are present. *)
let check (p : Ast.program) : diagnostic list =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let labels = List.map fst p.blocks in
  let label_set = SS.of_list labels in
  let defined l = SS.mem l label_set in
  (* duplicate block labels *)
  List.iter
    (fun l -> emit (errf "duplicate block label %s" l))
    (duplicates labels);
  (* entry exists *)
  if not (defined p.entry) then emit (errf "entry label %s is not defined" p.entry);
  (* collect which labels are jtppt blocks, for jralloc validation *)
  let jtppt_labels =
    List.filter_map
      (fun (l, (b : Ast.block)) ->
        match b.annot with Ast.Jtppt _ -> Some l | _ -> None)
      p.blocks
    |> SS.of_list
  in
  let check_label ~block ~context l =
    if not (defined l) then
      emit (errf ~block "undefined label %s (%s)" l context)
  in
  let check_operand_labels ~block ~context (v : Ast.operand) =
    match v with
    | Ast.Lab l -> check_label ~block ~context l
    | Ast.Reg r ->
        if defined r then
          emit
            (warnf ~block
               "register %s shadows a block label; the parser resolves bare \
                identifiers to labels"
               r)
    | Ast.Int _ -> ()
  in
  List.iter
    (fun (label, (b : Ast.block)) ->
      (* annotation targets *)
      (match b.annot with
      | Ast.Plain -> ()
      | Ast.Prppt h -> check_label ~block:label ~context:"prppt handler" h
      | Ast.Jtppt (_, dr, comb) ->
          check_label ~block:label ~context:"jtppt combining block" comb;
          List.iter
            (fun t ->
              emit
                (errf ~block:label
                   "join renaming assigns register %s more than once" t))
            (duplicates (List.map snd dr)));
      (* instruction label references *)
      List.iter
        (fun (i : Ast.instr) ->
          (match i with
          | Ast.Jralloc (_, cont) ->
              check_label ~block:label ~context:"join continuation" cont;
              if defined cont && not (SS.mem cont jtppt_labels) then
                emit
                  (errf ~block:label
                     "jralloc continuation %s is not a join-target (jtppt) \
                      block"
                     cont)
          | Ast.Fork (_, target) ->
              check_operand_labels ~block:label ~context:"fork target" target
          | _ -> ());
          List.iter
            (fun v ->
              check_operand_labels ~block:label ~context:"operand"
                (Ast.Lab v))
            (Ast.instr_labels i
            |> List.filter (fun l ->
                   (* jralloc/fork labels were checked above with more
                      specific messages *)
                   match i with
                   | Ast.Jralloc (_, cont) -> not (String.equal l cont)
                   | Ast.Fork (_, Ast.Lab t) -> not (String.equal l t)
                   | _ -> true)))
        b.body;
      (* terminator *)
      match b.term with
      | Ast.Jump (Ast.Lab l) -> check_label ~block:label ~context:"jump target" l
      | Ast.Jump (Ast.Int _) ->
          emit (errf ~block:label "jump target is an integer literal")
      | Ast.Jump (Ast.Reg r) ->
          if defined r then
            emit
              (warnf ~block:label
                 "register %s shadows a block label; the parser resolves bare \
                  identifiers to labels"
                 r)
      | Ast.Halt | Ast.Join _ -> ())
    p.blocks;
  (* unreachable blocks (warning) *)
  let reach = reachable p in
  List.iter
    (fun (l, _) ->
      if not (SS.mem l reach) then
        emit (warnf ~block:l "block %s is unreachable from entry %s" l p.entry))
    p.blocks;
  List.rev !diags

(** [errors p] is the error-severity subset of [check p]. *)
let errors (p : Ast.program) : diagnostic list = List.filter is_error (check p)

(** [check_exn p] raises [Invalid_argument] with rendered diagnostics
    if [p] has errors; returns [p] otherwise (warnings pass). *)
let check_exn (p : Ast.program) : Ast.program =
  match errors p with
  | [] -> p
  | errs ->
      invalid_arg
        (Fmt.str "@[<v>ill-formed TPAL program:@,%a@]"
           (Fmt.list ~sep:Fmt.cut pp_diagnostic)
           errs)
