(** Register files [R]: finite maps from register names to values
    (Figure 26), with the [MergeR] metafunction of Figure 27. *)

module M = Map.Make (String)

type t = Value.t M.t

let empty : t = M.empty
let set (r : Ast.reg) (v : Value.t) (rf : t) : t = M.add r v rf
let find_opt (r : Ast.reg) (rf : t) : Value.t option = M.find_opt r rf
let mem (r : Ast.reg) (rf : t) : bool = M.mem r rf

let find (r : Ast.reg) (rf : t) : (Value.t, Machine_error.t) result =
  match M.find_opt r rf with
  | Some v -> Ok v
  | None -> Error (Machine_error.Unbound_register r)

let of_list (bindings : (Ast.reg * Value.t) list) : t =
  List.fold_left (fun rf (r, v) -> set r v rf) empty bindings

let bindings (rf : t) : (Ast.reg * Value.t) list = M.bindings rf
let cardinal = M.cardinal
let equal (a : t) (b : t) = M.equal Value.equal a b

(** [merge parent child dr] implements [MergeR(R1, R2, ΔR)]: the result
    holds every binding of [parent] whose register is {e not} a target of
    ΔR, plus, for each pair [(rs, rt)] in ΔR, the binding
    [rt ↦ child(rs)].  Pairs whose source is unbound in [child] are
    dropped, mirroring the set comprehension of Figure 27. *)
let merge (parent : t) (child : t) (dr : Ast.renaming) : t =
  let targets = List.map snd dr in
  let kept =
    M.filter (fun r _ -> not (List.exists (String.equal r) targets)) parent
  in
  List.fold_left
    (fun acc (rs, rt) ->
      match M.find_opt rs child with
      | Some v -> M.add rt v acc
      | None -> acc)
    kept dr

let pp ppf (rf : t) =
  let pp_binding ppf (r, v) = Fmt.pf ppf "%s ↦ %a" r Value.pp v in
  Fmt.pf ppf "{@[%a@]}" Fmt.(list ~sep:comma pp_binding) (bindings rf)
