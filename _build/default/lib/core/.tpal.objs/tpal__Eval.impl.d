lib/core/eval.pp.ml: Ast Cost Heap Join List Machine_error Printf Regfile Result Step Task Value
