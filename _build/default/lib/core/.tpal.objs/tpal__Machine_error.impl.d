lib/core/machine_error.pp.ml: Ast Fmt
