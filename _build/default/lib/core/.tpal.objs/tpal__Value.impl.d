lib/core/value.pp.ml: Array Ast Fmt Int List Option String
