lib/core/regfile.pp.ml: Ast Fmt List Machine_error Map String Value
