lib/core/heap.pp.ml: Ast List Machine_error Map Regfile Result String Value
