lib/core/cost.pp.ml: Fmt
