lib/core/lexer.pp.ml: Ast Fmt Format List String
