lib/core/join.pp.ml: Ast Fmt Int Machine_error Map String
