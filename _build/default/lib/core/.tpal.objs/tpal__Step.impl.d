lib/core/step.pp.ml: Ast Heap Machine_error Regfile Result Task Value
