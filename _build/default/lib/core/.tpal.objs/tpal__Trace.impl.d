lib/core/trace.pp.ml: Ast Eval Fmt Heap List Machine_error Option Printer Printf Regfile String Task Value
