lib/core/builder.pp.ml: Ast Check
