lib/core/printer.pp.ml: Ast Buffer Fmt List Printf String
