lib/core/parser.pp.ml: Ast Format Lexer List Printf Result
