lib/core/programs.pp.ml: Ast Builder Eval Machine_error Regfile Value
