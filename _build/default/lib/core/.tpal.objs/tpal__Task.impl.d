lib/core/task.pp.ml: Ast Fmt Heap Int Machine_error Regfile String
