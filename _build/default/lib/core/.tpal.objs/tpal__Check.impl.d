lib/core/check.pp.ml: Ast Fmt Format Heap List Set String
