lib/core/rollforward.pp.ml: Ast Heap List Machine_error Task
