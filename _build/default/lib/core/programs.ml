(** The paper's example programs, transcribed block-for-block.

    - {!prod} — the running example (Figures 2 and 32–34): [c = a * b]
      by repeated addition, with a heartbeat-promotable loop.
    - {!pow} — loop-based nested parallelism (Figures 16–19):
      [f = d{^e}] with [prod] nested as the inner loop and the
      promote-the-outermost-parallelism policy.
    - {!fib} — recursive parallelism over an explicit call stack with
      promotion-ready marks (Figures 20, 22–23).

    Transcription notes (deviations from the paper's figures, each
    forced by a latent assumption of the figures that the abstract
    machine makes explicit):

    {b fib.} (1) The promoted frame's continuation is overwritten
    through the interior pointer: [mem[sp-top + 0] := joink] — the
    figure prints [mem[sp + 0]], which would clobber the {e newest}
    frame instead of the promoted (oldest) one.  (2) The join-record
    identifier is stashed in the promoted frame (slot 2, whose stashed
    argument was just consumed) and reloaded by [joink]; keeping it
    only in the [jr] register is unsound because later promotions
    overwrite [jr] before earlier [joink]s run.  For the same reason
    [joink] frees the frame with [sp := sp + 3] — when control reaches
    a [joink], [sp] points at the promoted frame, whereas the [sp-top]
    register may have been clobbered by a later promotion.  (3) The
    child task's fresh stack gets a full 3-cell frame so that its
    [joink] can reload the record from slot 2.

    {b pow.} The figures reuse the label [loop-try-promote] both for
    prod's original inner handler and for the outer-first wrapper that
    shadows it; here the wrappers are named [loop-outer-first] /
    [loop-par-outer-first] and the original prod handlers keep their
    names, with [pabort] wired so that a failed outer attempt falls
    back to the matching inner handler — the behaviour §B.1
    prescribes. *)

open Builder

(* ------------------------------------------------------------------ *)
(* prod — Figures 2 / 32–34.                                          *)
(* ------------------------------------------------------------------ *)

(** [prod] computes [c = a * b] by [a] repeated additions of [b].
    Seed registers [a] and [b]; the result is in register [c] at halt.
    Entirely serial when the heartbeat is off; promotable at block
    [loop] otherwise. *)
let prod : Ast.program =
  program ~entry:"prod"
    [
      (* computes c = a * b *)
      block "prod" [ mov "r" (int 0) ] (jump "loop");
      block "exit"
        ~annot:(jtppt [ ("r", "r2") ] "comb")
        [ mov "c" (reg "r") ]
        halt;
      block "loop" ~annot:(prppt "loop-try-promote")
        [
          if_jump "a" (lab "exit");
          add "r" (reg "r") (reg "b");
          sub "a" (reg "a") (int 1);
        ]
        (jump "loop");
      block "loop-try-promote"
        [
          lt "t" (reg "a") (int 2);
          if_jump "t" (lab "loop");
          jralloc "jr" "exit";
        ]
        (jump "loop-promote");
      block "loop-par-try-promote"
        [ lt "t" (reg "a") (int 2); if_jump "t" (lab "loop-par") ]
        (jump "loop-promote");
      block "loop-promote"
        [
          div "m" (reg "a") (int 2);
          modulo "n" (reg "a") (int 2);
          mov "a" (reg "m");
          mov "tr" (reg "r");
          mov "r" (int 0);
          fork "jr" (lab "loop-par");
          add "a" (reg "m") (reg "n");
          mov "r" (reg "tr");
        ]
        (jump "loop-par");
      block "loop-par" ~annot:(prppt "loop-par-try-promote")
        [
          if_jump "a" (lab "exit-par");
          add "r" (reg "r") (reg "b");
          sub "a" (reg "a") (int 1);
        ]
        (jump "loop-par");
      block "comb" [ add "r" (reg "r") (reg "r2") ] (join "jr");
      block "exit-par" [] (join "jr");
    ]

(** [run_prod ?options ~a ~b ()] runs {!prod} and extracts [c]. *)
let run_prod ?(options = Eval.default_options) ~(a : int) ~(b : int) () :
    (int * Eval.finished, Machine_error.t) result =
  match
    Eval.run_seeded ~options prod
      [ ("a", Value.Vint a); ("b", Value.Vint b) ]
  with
  | Error e -> Error e
  | Ok fin -> (
      match Regfile.find_opt "c" fin.task.regs with
      | Some (Value.Vint c) -> Ok (c, fin)
      | _ -> Error (Machine_error.Unbound_register "c"))

(* ------------------------------------------------------------------ *)
(* pow — Figures 16–19, with prod nested inside.                      *)
(* ------------------------------------------------------------------ *)

(** [pow] computes [f = d{^e}] by [e] multiplications, each performed
    by the nested [prod] loop ([c = a * b] with [a = d], [b = pr]).
    Seed registers [d] and [e]; the result is in [f] at halt.

    Heartbeats at {e any} promotion-ready point (outer [ploop] /
    [ploop-par], inner [loop] / [loop-par]) first try to promote
    remaining outer iterations and only then inner ones —
    the outermost-first policy of heartbeat scheduling. *)
let pow : Ast.program =
  program ~entry:"pow"
    [
      (* ---- sequential outer blocks (Figure 17) ---- *)
      block "pow"
        [ mov "pr" (int 1); mov "pjr" (int 0) ]
        (jump "ploop");
      block "pexit"
        ~annot:(jtppt [ ("pr", "pr2") ] "pcomb")
        [ mov "f" (reg "pr") ]
        halt;
      block "ploop" ~annot:(prppt "ptry-promote")
        [
          if_jump "e" (lab "pexit");
          mov "a" (reg "d");
          mov "b" (reg "pr");
          mov "ret" (lab "ploop-cont");
        ]
        (jump "prod");
      block "ploop-cont"
        [ mov "pr" (reg "c"); sub "e" (reg "e") (int 1) ]
        (jump "ploop");
      (* ---- outer-first promotion handlers (Figure 18) ---- *)
      block "ptry-promote"
        [
          mov "pabort" (lab "ploop");
          mov "ploop-promote-cont" (lab "ploop-par");
          if_jump "pjr" (lab "ploop-try-promote");
          mov "pabort" (lab "ploop-par");
        ]
        (jump "ploop-par-try-promote");
      block "loop-outer-first"
        [
          mov "pabort" (lab "loop-try-promote");
          mov "ploop-promote-cont" (lab "loop");
          if_jump "pjr" (lab "ploop-try-promote");
        ]
        (jump "ploop-par-try-promote");
      block "loop-par-outer-first"
        [
          mov "pabort" (lab "loop-par-try-promote");
          mov "ploop-promote-cont" (lab "loop-par");
          if_jump "pjr" (lab "ploop-try-promote");
        ]
        (jump "ploop-par-try-promote");
      block "ploop-try-promote"
        [
          lt "t" (reg "e") (int 2);
          if_jump "t" (reg "pabort");
          jralloc "pjr" "pexit";
        ]
        (jump "ploop-promote");
      block "ploop-par-try-promote"
        [ lt "t" (reg "e") (int 2); if_jump "t" (reg "pabort") ]
        (jump "ploop-promote");
      block "ploop-promote"
        [
          div "m" (reg "e") (int 2);
          modulo "n" (reg "e") (int 2);
          mov "e" (reg "m");
          mov "tr" (reg "pr");
          mov "pr" (int 1);
          (* ↓ needed for prod: the interrupted inner iteration must
             return into the parallel outer loop *)
          mov "ret" (lab "ploop-par-cont");
          fork "pjr" (lab "ploop-par");
          add "e" (reg "m") (reg "n");
          mov "pr" (reg "tr");
        ]
        (jump_reg "ploop-promote-cont");
      (* ---- parallel outer blocks (Figure 19) ---- *)
      block "pcomb" [ mul "pr" (reg "pr") (reg "pr2") ] (join "pjr");
      block "ploop-par" ~annot:(prppt "ptry-promote")
        [
          if_jump "e" (lab "pjoin");
          mov "a" (reg "d");
          mov "b" (reg "pr");
          mov "ret" (lab "ploop-par-cont");
        ]
        (jump "prod");
      block "ploop-par-cont"
        [ mov "pr" (reg "c"); sub "e" (reg "e") (int 1) ]
        (jump "ploop-par");
      block "pjoin" [] (join "pjr");
      (* ---- nested prod (Figure 32–34, annotations redirected to the
              outer-first wrappers, exit returns through [ret]) ---- *)
      block "prod" [ mov "r" (int 0) ] (jump "loop");
      block "exit"
        ~annot:(jtppt [ ("r", "r2") ] "comb")
        [ mov "c" (reg "r") ]
        (jump_reg "ret");
      block "loop" ~annot:(prppt "loop-outer-first")
        [
          if_jump "a" (lab "exit");
          add "r" (reg "r") (reg "b");
          sub "a" (reg "a") (int 1);
        ]
        (jump "loop");
      block "loop-try-promote"
        [
          lt "t" (reg "a") (int 2);
          if_jump "t" (lab "loop");
          jralloc "jr" "exit";
        ]
        (jump "loop-promote");
      block "loop-par-try-promote"
        [ lt "t" (reg "a") (int 2); if_jump "t" (lab "loop-par") ]
        (jump "loop-promote");
      block "loop-promote"
        [
          div "m" (reg "a") (int 2);
          modulo "n" (reg "a") (int 2);
          mov "a" (reg "m");
          mov "tr" (reg "r");
          mov "r" (int 0);
          fork "jr" (lab "loop-par");
          add "a" (reg "m") (reg "n");
          mov "r" (reg "tr");
        ]
        (jump "loop-par");
      block "loop-par" ~annot:(prppt "loop-par-outer-first")
        [
          if_jump "a" (lab "exit-par");
          add "r" (reg "r") (reg "b");
          sub "a" (reg "a") (int 1);
        ]
        (jump "loop-par");
      block "comb" [ add "r" (reg "r") (reg "r2") ] (join "jr");
      block "exit-par" [] (join "jr");
    ]

(** [run_pow ?options ~d ~e ()] runs {!pow} and extracts [f]. *)
let run_pow ?(options = Eval.default_options) ~(d : int) ~(e : int) () :
    (int * Eval.finished, Machine_error.t) result =
  match
    Eval.run_seeded ~options pow [ ("d", Value.Vint d); ("e", Value.Vint e) ]
  with
  | Error e -> Error e
  | Ok fin -> (
      match Regfile.find_opt "f" fin.task.regs with
      | Some (Value.Vint f) -> Ok (f, fin)
      | _ -> Error (Machine_error.Unbound_register "f"))

(* ------------------------------------------------------------------ *)
(* fib — Figures 20 / 22–23: recursive parallelism with an explicit   *)
(* call stack and promotion-ready marks.                              *)
(* ------------------------------------------------------------------ *)

(* Both the serial and parallel loop variants push frames of the shape
   [slot 0: return continuation; slot 1: promotion mark; slot 2: the
   stashed second-branch argument n-2], mirroring Figure 22, and are
   paired with a promotion handler that splits the oldest mark. *)
let fib_loop_blocks ~(loop : string) ~(handler : string) :
    (Ast.label * Ast.block) list =
  [
    block loop ~annot:(prppt handler)
      [
        mov "f" (reg "n");
        lt "t" (reg "n") (int 2);
        if_jump "t" (lab "retk");
        mov "f" (int 0);
        salloc "sp" 3;
        store "sp" 0 (lab "branch1");
        sub "t" (reg "n") (int 2);
        prmpush "sp" 1;
        store "sp" 2 (reg "t");
        sub "n" (reg "n") (int 1);
      ]
      (jump loop);
    block handler
      [
        prmempty "t" "sp";
        if_jump "t" (lab loop);
        jralloc "jr" "retk";
        prmsplit "sp" "top";
        (* sp-top points at slot 0 of the promoted (oldest) frame *)
        sub "top" (reg "top") (int 1);
        add "sp-top" (reg "sp") (reg "top");
        (* the promoted frame now returns into the join *)
        store "sp-top" 0 (lab "joink");
        mov "tn" (reg "n");
        load "n" "sp-top" 2;
        (* stash the join record in the consumed argument slot so that
           joink can reload it after jr is clobbered by later
           promotions *)
        store "sp-top" 2 (reg "jr");
        mov "tsp" (reg "sp");
        snew "sp";
        salloc "sp" 3;
        store "sp" 0 (lab "joink");
        store "sp" 2 (reg "jr");
        fork "jr" (lab "loop-par");
        mov "sp" (reg "tsp");
        mov "n" (reg "tn");
      ]
      (jump "loop-par");
  ]

(** [fib] computes [f = fib(n)].  Seed register [n]; the result is in
    [f] at halt.  Promotion splits the {e oldest} promotion-ready mark
    in the task's call stack, forking the stashed [fib(n-2)] branch
    onto a fresh stack. *)
let fib : Ast.program =
  program ~entry:"start"
    ([
       block "start" [ snew "sp"; mov "ret" (lab "done") ] (jump "fib");
       block "done" [] halt;
       (* computes f = fib(n) *)
       block "fib"
         [ salloc "sp" 1; store "sp" 0 (lab "exit") ]
         (jump "loop");
       block "exit" [ sfree "sp" 1 ] (jump_reg "ret");
       block "retk"
         ~annot:(jtppt [ ("f", "f2") ] "comb")
         [ load "t" "sp" 0 ]
         (jump_reg "t");
       block "branch1"
         [
           store "sp" 0 (lab "branch2");
           prmpop "sp" 1;
           load "n" "sp" 2;
           store "sp" 2 (reg "f");
         ]
         (jump "loop");
       block "branch2"
         [ load "t" "sp" 2; add "f" (reg "f") (reg "t"); sfree "sp" 3 ]
         (jump "retk");
       block "comb" [ add "f" (reg "f") (reg "f2") ] (join "jr");
       block "joink"
         [ load "jr" "sp" 2; add "sp" (reg "sp") (int 3) ]
         (join "jr");
     ]
    @ fib_loop_blocks ~loop:"loop" ~handler:"loop-try-promote"
    @ fib_loop_blocks ~loop:"loop-par" ~handler:"loop-par-try-promote")

(** [run_fib ?options ~n ()] runs {!fib} and extracts [f]. *)
let run_fib ?(options = Eval.default_options) ~(n : int) () :
    (int * Eval.finished, Machine_error.t) result =
  match Eval.run_seeded ~options fib [ ("n", Value.Vint n) ] with
  | Error e -> Error e
  | Ok fin -> (
      match Regfile.find_opt "f" fin.task.regs with
      | Some (Value.Vint f) -> Ok (f, fin)
      | _ -> Error (Machine_error.Unbound_register "f"))

(** Reference implementations used by tests. *)
let fib_spec : int -> int =
  let rec go n = if n < 2 then n else go (n - 1) + go (n - 2) in
  go

let pow_spec (d : int) (e : int) : int =
  let rec go acc e = if e = 0 then acc else go (acc * d) (e - 1) in
  go 1 e

(* ------------------------------------------------------------------ *)
(* prod in the "reduced" block style — Appendix D.5's alternative.    *)
(* ------------------------------------------------------------------ *)

(** [prod_reduced] computes [c = a * b] like {!prod} but in the
    {e reduced} style discussed in Appendix D.5: a single loop block
    serves both the serial and parallel phases, the join record is
    allocated lazily behind a sentinel ([jr = 0] until the first
    promotion), and the loop exit pays a conditional branch to decide
    between the serial exit and join resolution.

    The paper argues the {e expanded} style of {!prod} is preferable
    because its serial blocks pay zero parallelism overhead; the
    benchmark harness's style ablation quantifies the difference on
    this pair. *)
let prod_reduced : Ast.program =
  program ~entry:"prod"
    [
      block "prod"
        [ mov "r" (int 0); mov "jr" (int 0) ]
        (jump "loop");
      block "exit"
        ~annot:(jtppt [ ("r", "r2") ] "comb")
        [ mov "c" (reg "r") ]
        halt;
      block "loop" ~annot:(prppt "loop-try-promote")
        [
          if_jump "a" (lab "done");
          add "r" (reg "r") (reg "b");
          sub "a" (reg "a") (int 1);
        ]
        (jump "loop");
      (* the reduced style's extra exit conditional: serial completion
         if no promotion ever happened, join resolution otherwise *)
      block "done"
        [ if_jump "jr" (lab "exit-serial") ]
        (join "jr");
      block "exit-serial" [ mov "c" (reg "r") ] halt;
      block "loop-try-promote"
        [
          lt "t" (reg "a") (int 2);
          if_jump "t" (lab "loop");
          (* sentinel dispatch: allocate the join record on the first
             promotion only *)
          if_jump "jr" (lab "alloc");
        ]
        (jump "loop-promote");
      block "alloc" [ jralloc "jr" "exit" ] (jump "loop-promote");
      block "loop-promote"
        [
          div "m" (reg "a") (int 2);
          modulo "n" (reg "a") (int 2);
          mov "a" (reg "m");
          mov "tr" (reg "r");
          mov "r" (int 0);
          fork "jr" (lab "loop");
          add "a" (reg "m") (reg "n");
          mov "r" (reg "tr");
        ]
        (jump "loop");
      block "comb" [ add "r" (reg "r") (reg "r2") ] (join "jr");
    ]

(** [run_prod_reduced ?options ~a ~b ()] runs {!prod_reduced} and
    extracts [c]. *)
let run_prod_reduced ?(options = Eval.default_options) ~(a : int) ~(b : int)
    () : (int * Eval.finished, Machine_error.t) result =
  match
    Eval.run_seeded ~options prod_reduced
      [ ("a", Value.Vint a); ("b", Value.Vint b) ]
  with
  | Error e -> Error e
  | Ok fin -> (
      match Regfile.find_opt "c" fin.task.regs with
      | Some (Value.Vint c) -> Ok (c, fin)
      | _ -> Error (Machine_error.Unbound_register "c"))
