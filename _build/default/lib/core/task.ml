(** Task configurations ⟨l̄; ⋄; H; R; I⟩ of the abstract machine
    (Figure 26).

    A program counter [l̄ = l[n]] names a block and an instruction offset
    within it.  The cycle counter ⋄ counts instructions issued since the
    task was last (re)seeded at a fork or promotion; it drives
    [PromotionReady] (Figure 27). *)

type pc = { label : Ast.label; offset : int }

let pp_pc ppf { label; offset } = Fmt.pf ppf "%s[%d]" label offset
let equal_pc a b = String.equal a.label b.label && Int.equal a.offset b.offset
let pc label offset = { label; offset }

(** What remains to execute of the current block: the residual
    instruction sequence [I]. *)
type code = { rest : Ast.instr list; term : Ast.terminator }

let code_of_block (b : Ast.block) : code = { rest = b.body; term = b.term }

type t = {
  pc : pc;
  cycles : int;  (** ⋄: instructions since the last heartbeat reset *)
  heap : Heap.t;  (** H; code blocks (tasks may only grow it) *)
  regs : Regfile.t;  (** R: the task-private register file *)
  code : code;  (** I: residual instructions of the current block *)
}

(** [enter label block ~cycles ~heap ~regs] is the configuration poised
    at the first instruction of [block]. *)
let enter (label : Ast.label) (block : Ast.block) ~(cycles : int)
    ~(heap : Heap.t) ~(regs : Regfile.t) : t =
  { pc = pc label 0; cycles; heap; regs; code = code_of_block block }

(** [initial program] is the starting configuration: entry block, zeroed
    cycle counter, empty register file. *)
let initial (p : Ast.program) : (t, Machine_error.t) result =
  let heap = Heap.of_program p in
  match Heap.find p.entry heap with
  | Error e -> Error e
  | Ok b -> Ok (enter p.entry b ~cycles:0 ~heap ~regs:Regfile.empty)

(** The instruction (or terminator) the task will issue next, for traces. *)
type current = Instr of Ast.instr | Term of Ast.terminator

let current (t : t) : current =
  match t.code.rest with i :: _ -> Instr i | [] -> Term t.code.term

let pp_current ppf = function
  | Instr i -> Fmt.pf ppf "%s" (Ast.show_instr i)
  | Term t -> Fmt.pf ppf "%s" (Ast.show_terminator t)

let pp ppf (t : t) =
  Fmt.pf ppf "@[<v>pc = %a, ⋄ = %d@,R = %a@,next = %a@]" pp_pc t.pc t.cycles
    Regfile.pp t.regs pp_current (current t)
