(** Run-time values of the TPAL abstract machine (Figure 26).

    The formal model presents stacks as tuple heap-values referenced by
    [uptr].  The paper notes (Appendix B.2) that "our semantics is
    prescriptive only for the high-level behavior of the stack, not to
    its implementation: it may involve copying out the frames ... or
    allowing regions of the stack to be divided among parent and child
    tasks".  We implement the {e usual linear C representation}: a stack
    is a growable array of cells, and a stack value is a {e pointer} — a
    pair of the underlying stack object and an absolute cell position.

    This choice is forced by the [fib] program of Figures 22–24, which
    takes interior pointers ([sp-top]) into the stack, mutates the
    promoted frame through them, and frees frames by pointer arithmetic
    in [joink]; those idioms require genuine aliasing, which immutable
    tuples cannot express.

    Addressing convention: [mem[p + n]] reads the cell [n] positions
    {e below} the pointer (toward the bottom of the stack), matching the
    paper's frames, whose offset 0 is the most recently allocated cell.
    Consequently pointer arithmetic [p + k] moves the pointer [k] cells
    deeper. *)

(** A stack object: a growable cell array indexed from the bottom.
    [hwm] is the high-water mark — one past the highest cell ever
    allocated; cells above a pointer are simply stale memory, as in a
    real linear stack.  [sid] is a fresh identifier used only for
    printing and pointer equality diagnostics. *)
type stack_obj = { sid : int; mutable cells : t array; mutable hwm : int }

and t =
  | Vint of int  (** integer literals [n] *)
  | Vlabel of Ast.label  (** code labels [l] *)
  | Vjoin of int  (** join-record identifiers [j] *)
  | Vptr of stack_obj * int
      (** [uptr]: a pointer to absolute cell position [pos] of a stack;
          [pos = -1] denotes the empty stack returned by [snew]. *)
  | Vprmark  (** [prmark], a promotion-ready mark *)

let next_sid = ref 0

(** [stack_new ()] is a pointer to a fresh, empty stack (rule
    [stack-new]). *)
let stack_new () : t =
  let sid = !next_sid in
  incr next_sid;
  Vptr ({ sid; cells = [||]; hwm = 0 }, -1)

(* Grow [s.cells] so that absolute position [pos] is addressable,
   zero-filling fresh cells. *)
let ensure_capacity (s : stack_obj) (pos : int) : unit =
  let needed = pos + 1 in
  if Array.length s.cells < needed then begin
    let cap = max 8 (max needed (2 * Array.length s.cells)) in
    let cells = Array.make cap (Vint 0) in
    Array.blit s.cells 0 cells 0 (Array.length s.cells);
    s.cells <- cells
  end;
  if s.hwm < needed then s.hwm <- needed

(** Cells visible through a pointer: from its position down to the
    bottom of the stack, i.e. offsets [0 .. pos]. *)
let segment (s : stack_obj) (pos : int) : t list =
  let rec go i acc = if i > pos then acc else go (i + 1) (s.cells.(i) :: acc) in
  if pos < 0 then [] else go 0 []

let rec equal a b =
  match (a, b) with
  | Vint x, Vint y -> Int.equal x y
  | Vlabel x, Vlabel y -> String.equal x y
  | Vjoin x, Vjoin y -> Int.equal x y
  | Vptr (s1, p1), Vptr (s2, p2) ->
      (* Structural equality of the visible segments; physical identity
         is not required so that tests may compare stacks built
         independently. *)
      Int.equal p1 p2 && List.equal equal (segment s1 p1) (segment s2 p2)
  | Vprmark, Vprmark -> true
  | (Vint _ | Vlabel _ | Vjoin _ | Vptr _ | Vprmark), _ -> false

let rec pp ppf = function
  | Vint n -> Fmt.int ppf n
  | Vlabel l -> Fmt.pf ppf "%s" l
  | Vjoin j -> Fmt.pf ppf "j%d" j
  | Vptr (s, p) ->
      Fmt.pf ppf "uptr@%d+%d tup (@[%a@])" s.sid p
        Fmt.(list ~sep:comma pp)
        (segment s p)
  | Vprmark -> Fmt.string ppf "prmark"

let show v = Fmt.str "%a" pp v

(** Human-readable name of a value's class, used in error messages. *)
let kind = function
  | Vint _ -> "int"
  | Vlabel _ -> "label"
  | Vjoin _ -> "join-record"
  | Vptr _ -> "stack pointer"
  | Vprmark -> "prmark"

(** TPAL's zero-is-true convention. *)
let of_bool b = Vint (if b then 0 else 1)

(** [is_true v] holds when [v] is the integer zero — the value on which
    [if-jump] takes its branch. *)
let is_true = function Vint 0 -> true | _ -> false

(** [read p n] reads [mem[p + n]]; [Error] carries the faulting depth. *)
let read (s : stack_obj) (pos : int) (n : int) : (t, int) result =
  let i = pos - n in
  if i < 0 || i >= s.hwm then Error i else Ok s.cells.(i)

(** [write p n v] writes [mem[p + n] := v].  Writing at or above the
    pointer grows the stack (like storing into freshly [salloc]ed
    memory); writing below position 0 is a bounds error. *)
let write (s : stack_obj) (pos : int) (n : int) (v : t) : (unit, int) result =
  let i = pos - n in
  if i < 0 then Error i
  else begin
    ensure_capacity s i;
    s.cells.(i) <- v;
    Ok ()
  end

(** [salloc p n] pushes [n] zero-initialised cells, returning the new
    top-of-stack position (rule [stack-alloc]). *)
let salloc (s : stack_obj) (pos : int) (n : int) : int =
  let pos' = pos + n in
  ensure_capacity s pos';
  (* Zero the fresh cells: previously freed memory must not leak. *)
  for i = pos + 1 to pos' do
    s.cells.(i) <- Vint 0
  done;
  pos'

(** [sfree p n] pops [n] cells, returning the new position; [Error]
    signals underflow (rule [stack-free]). *)
let sfree (pos : int) (n : int) : (int, int) result =
  let pos' = pos - n in
  if pos' < -1 then Error pos' else Ok pos'

(** Offset (relative to [pos]) of the {e least-recent} promotion-ready
    mark visible through the pointer — the mark deepest in the stack,
    per the [prm-split] side condition that no mark lies below it. *)
let oldest_mark (s : stack_obj) (pos : int) : int option =
  let rec go i =
    if i > pos then None
    else match s.cells.(i) with Vprmark -> Some (pos - i) | _ -> go (i + 1)
  in
  if pos < 0 then None else go 0

(** [has_mark s pos]: does any visible cell hold a mark? *)
let has_mark (s : stack_obj) (pos : int) : bool =
  Option.is_some (oldest_mark s pos)
