(** Lexer for the concrete TPAL assembly syntax.

    The syntax mirrors the paper's figures: labeled blocks with a
    bracketed annotation, one instruction per line (semicolons also
    separate instructions), [//] comments.

    Identifiers may contain hyphens ([loop-try-promote],
    [assoc-comm]), exactly as in the paper.  A hyphen is absorbed into
    an identifier whenever it is immediately followed by an
    alphanumeric character, so subtraction must be written with spaces:
    [a - 1], never [a-1] (which lexes as one identifier). *)

type token =
  | IDENT of string
  | INT of int
  | COLON
  | ASSIGN  (** [:=] *)
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | DOT
  | SEMI
  | COMMA
  | ARROW  (** [->], [|->] or [↦] *)
  | OP of Ast.binop
  | PLUS  (** also {!Ast.Add}; kept distinct for [mem[r + n]] addressing *)
  | NEWLINE
  | EOF

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | INT n -> Fmt.pf ppf "integer %d" n
  | COLON -> Fmt.string ppf "':'"
  | ASSIGN -> Fmt.string ppf "':='"
  | LBRACKET -> Fmt.string ppf "'['"
  | RBRACKET -> Fmt.string ppf "']'"
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | DOT -> Fmt.string ppf "'.'"
  | SEMI -> Fmt.string ppf "';'"
  | COMMA -> Fmt.string ppf "','"
  | ARROW -> Fmt.string ppf "'->'"
  | OP op -> Fmt.pf ppf "operator %s" (Ast.show_binop op)
  | PLUS -> Fmt.string ppf "'+'"
  | NEWLINE -> Fmt.string ppf "end of line"
  | EOF -> Fmt.string ppf "end of input"

type located = { tok : token; line : int; col : int }

exception Error of { line : int; col : int; message : string }

let error ~line ~col fmt =
  Format.kasprintf (fun message -> raise (Error { line; col; message })) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

(** [tokens src] lexes the whole input, raising {!Error} on unexpected
    characters.  Consecutive newlines are collapsed into one [NEWLINE]
    token. *)
let tokens (src : string) : located list =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 and bol = ref 0 in
  let emit ~at tok = out := { tok; line = !line; col = at - !bol + 1 } :: !out in
  let last_is_newline () =
    match !out with
    | { tok = NEWLINE; _ } :: _ | [] -> true
    | _ -> false
  in
  let i = ref 0 in
  while !i < n do
    let at = !i in
    let c = src.[at] in
    let peek k = if at + k < n then Some src.[at + k] else None in
    if c = '\n' then begin
      if not (last_is_newline ()) then emit ~at NEWLINE;
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_ident_start c then begin
      let j = ref at in
      let continue () =
        !j < n
        && (is_ident_char src.[!j]
           || src.[!j] = '-'
              && !j + 1 < n
              && (is_ident_char src.[!j + 1] || is_digit src.[!j + 1]))
      in
      while continue () do incr j done;
      emit ~at (IDENT (String.sub src at (!j - at)));
      i := !j
    end
    else if is_digit c then begin
      let j = ref at in
      while !j < n && is_digit src.[!j] do incr j done;
      emit ~at (INT (int_of_string (String.sub src at (!j - at))));
      i := !j
    end
    else begin
      let two = if at + 1 < n then String.sub src at 2 else "" in
      let three = if at + 2 < n then String.sub src at 3 else "" in
      let simple tok k = emit ~at tok; i := at + k in
      match (c, two, three) with
      | _, _, "|->" -> simple ARROW 3
      | _, "->", _ -> simple ARROW 2
      | _, ":=", _ -> simple ASSIGN 2
      | _, "==", _ -> simple (OP Ast.Eq) 2
      | _, "!=", _ -> simple (OP Ast.Ne) 2
      | _, "<=", _ -> simple (OP Ast.Le) 2
      | _, ">=", _ -> simple (OP Ast.Ge) 2
      | _, "<<", _ -> simple (OP Ast.Shl) 2
      | _, ">>", _ -> simple (OP Ast.Shr) 2
      | ':', _, _ -> simple COLON 1
      | '[', _, _ -> simple LBRACKET 1
      | ']', _, _ -> simple RBRACKET 1
      | '{', _, _ -> simple LBRACE 1
      | '}', _, _ -> simple RBRACE 1
      | '.', _, _ -> simple DOT 1
      | ';', _, _ -> simple SEMI 1
      | ',', _, _ -> simple COMMA 1
      | '+', _, _ -> simple PLUS 1
      | '-', _, _ -> simple (OP Ast.Sub) 1
      | '*', _, _ -> simple (OP Ast.Mul) 1
      | '/', _, _ -> simple (OP Ast.Div) 1
      | '%', _, _ -> simple (OP Ast.Mod) 1
      | '<', _, _ -> simple (OP Ast.Lt) 1
      | '>', _, _ -> simple (OP Ast.Gt) 1
      | '&', _, _ -> simple (OP Ast.And) 1
      | '|', _, _ -> simple (OP Ast.Or) 1
      | '^', _, _ -> simple (OP Ast.Xor) 1
      | '\xe2', _, _ when three = "\xe2\x86\xa6" ->
          (* UTF-8 '↦' *)
          simple ARROW 3
      | '\xc2', two, _ when two = "\xc2\xb7" ->
          (* UTF-8 '·', the paper's empty annotation *)
          simple DOT 2
      | _ ->
          error ~line:!line ~col:(at - !bol + 1) "unexpected character %C" c
    end
  done;
  if not (last_is_newline ()) then emit ~at:n NEWLINE;
  emit ~at:n EOF;
  List.rev !out
