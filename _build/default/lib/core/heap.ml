(** Heaps [H]: finite maps from labels to heap values (Figure 26).

    In the register-only fragment the heap holds code blocks exclusively;
    the stack extension's tuples are inlined into {!Value.Vstack} (see the
    note there), so blocks remain the only heap values here.  We keep the
    [MergeH] metafunction (Figure 27) because evaluation threads heaps
    through fork/join merges. *)

module M = Map.Make (String)

type t = Ast.block M.t

let empty : t = M.empty
let add (l : Ast.label) (b : Ast.block) (h : t) : t = M.add l b h
let find_opt (l : Ast.label) (h : t) : Ast.block option = M.find_opt l h
let mem (l : Ast.label) (h : t) : bool = M.mem l h

let find (l : Ast.label) (h : t) : (Ast.block, Machine_error.t) result =
  match M.find_opt l h with
  | Some b -> Ok b
  | None -> Error (Machine_error.Unbound_label l)

let of_program (p : Ast.program) : t =
  List.fold_left (fun h (l, b) -> add l b h) empty p.Ast.blocks

let bindings (h : t) = M.bindings h
let cardinal = M.cardinal

(** [merge h1 h2] implements [MergeH(H1, H2)]: the left-biased union —
    [h1] plus every binding of [h2] whose label is absent from [h1]. *)
let merge (h1 : t) (h2 : t) : t = M.union (fun _ b1 _ -> Some b1) h1 h2

(** [resolve h rf v] implements the [Ĥ(R, v)] metafunction of Figure 27:
    evaluate operand [v] to a label via the register file, then look the
    label up in the heap, yielding the label and its block. *)
let resolve (h : t) (rf : Regfile.t) (v : Ast.operand) :
    (Ast.label * Ast.block, Machine_error.t) result =
  let ( let* ) = Result.bind in
  let* l =
    match v with
    | Ast.Lab l -> Ok l
    | Ast.Int n ->
        Error
          (Machine_error.Type_error
             { expected = "label"; got = "int " ^ string_of_int n;
               context = "jump target" })
    | Ast.Reg r -> (
        let* value = Regfile.find r rf in
        match value with
        | Value.Vlabel l -> Ok l
        | other ->
            Error
              (Machine_error.Type_error
                 { expected = "label"; got = Value.kind other;
                   context = "jump target in register " ^ r }))
  in
  let* b = find l h in
  Ok (l, b)
