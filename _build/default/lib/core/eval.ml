(** Parallel evaluation of TPAL — the big-step judgment
    [J; T ⇓ J'; T'; g] of Figure 30, together with heartbeat-driven
    promotion.

    The evaluator threads join-record maps and accumulates a
    {!Cost.summary} of the induced series–parallel cost graph.  Rule
    correspondence:

    - [seq]: one sequential transition ({!Step.step}) when no promotion
      is ready; cost [1 · g].
    - [jralloc]: allocate a fresh, closed join record; cost [1 · g].
    - [fork]: mark the record open, evaluate parent and child
      derivations (both with ⋄ = 0), demand both end blocked on the same
      record, merge register files through the join target's ΔR, heaps
      and join maps through MergeH/MergeJ, restore the record's previous
      status, and evaluate the combining block; cost [(g1 ∥ g2) · g'].
    - [join-block]: a [join] on an open record is terminal for the
      issuing task; cost [1].
    - [join-continue]: a [join] on a closed record discharges it and
      jumps to the join continuation; cost [1 · g].
    - [try-promote]: when [PromotionReady] (Figure 27) holds — control
      at offset 0 of a [prppt] block and ⋄ > ♥ — divert to the handler
      block with ⋄ = 0; cost [1 · g]. *)

type options = {
  heart : int option;
      (** ♥, the heartbeat threshold in machine cycles; [None] disables
          promotion entirely (the irrevocably-sequential execution). *)
  tau : int;  (** τ, the fork-join cost charged by the cost semantics *)
  fuel : int;  (** instruction budget; exceeding it is a machine error *)
  swap_joins : bool;
      (** when true, joins whose policy is [Assoc_comm] merge with the
          child playing the parent role.  Tests use it to check that
          reduction programs declare commutativity honestly; note the
          swap exchanges the {e whole} register file, which is only a
          legal runtime freedom when the join continuation is
          register-symmetric (loop reductions like prod/pow are; fib,
          whose continuation consumes the parent's stack pointer, is
          not). *)
}

let default_options =
  { heart = Some 1_000; tau = 1; fuel = 500_000_000; swap_joins = false }

(** Dynamic counters of one evaluation. *)
type stats = {
  instructions : int;  (** sequential transitions taken *)
  promotions : int;  (** [try-promote] firings (heartbeat diversions) *)
  forks : int;  (** [fork] rules fired (tasks created) *)
  join_continues : int;  (** joins that discharged a closed record *)
  jrallocs : int;  (** join records allocated *)
}

let zero_stats =
  { instructions = 0; promotions = 0; forks = 0; join_continues = 0;
    jrallocs = 0 }

(** How an evaluation came to rest. *)
type stop =
  | Halted  (** reached [halt]: the whole machine stopped *)
  | Blocked of int
      (** terminal [join-block] on the given (open) join record *)

type finished = {
  task : Task.t;  (** the final configuration [T'] *)
  joins : Join.t;  (** the final join map [J'] *)
  cost : Cost.summary;  (** digest of the cost graph [g] *)
  stats : stats;
  stop : stop;
}

(** Events emitted during evaluation, for tracing and debugging (the
    observer sees the rule about to fire and the task it fires on). *)
type event =
  | E_step of Task.t  (** a sequential transition is about to be taken *)
  | E_promote of { task : Task.t; handler : Ast.label }
  | E_jralloc of { task : Task.t; id : int }
  | E_fork of { task : Task.t; join : int; child : Ast.label }
  | E_join_block of { task : Task.t; join : int }
  | E_join_continue of { task : Task.t; join : int; cont : Ast.label }
  | E_combine of { join : int; comb : Ast.label }
  | E_halt of Task.t

(* Mutable evaluation context: fuel and statistics are global to a run
   (they are bookkeeping, not semantics), so we thread them by
   mutation to keep the rule transcriptions readable. *)
type ctx = {
  opts : options;
  mutable fuel_left : int;
  mutable st : stats;
  hook : (event -> unit) option;
}

(* Emit an event lazily: the thunk is only forced when a hook is
   installed, keeping the common case allocation-free. *)
let emit (ctx : ctx) (ev : unit -> event) : unit =
  match ctx.hook with None -> () | Some f -> f (ev ())

let ( let* ) = Result.bind

(** [PromotionReady(l[n], H, ⋄)] of Figure 27. *)
let promotion_ready (opts : options) (t : Task.t) : Ast.label option =
  match opts.heart with
  | None -> None
  | Some heart -> (
      if t.pc.offset <> 0 || t.cycles <= heart then None
      else
        match Heap.find_opt t.pc.label t.heap with
        | Some { annot = Ast.Prppt handler; _ } -> Some handler
        | _ -> None)

let spend (ctx : ctx) : (unit, Machine_error.t) result =
  if ctx.fuel_left <= 0 then
    Error (Machine_error.Fuel_exhausted { budget = ctx.opts.fuel })
  else begin
    ctx.fuel_left <- ctx.fuel_left - 1;
    ctx.st <- { ctx.st with instructions = ctx.st.instructions + 1 };
    Ok ()
  end

(* Enter [label] with a fresh cycle counter — used by [try-promote],
   [fork] (both branches and the combine block). *)
let enter_fresh (t : Task.t) (label : Ast.label) :
    (Task.t, Machine_error.t) result =
  let* block = Heap.find label t.heap in
  Ok (Task.enter label block ~cycles:0 ~heap:t.heap ~regs:t.regs)

(* One step of cost: sequential vertices accumulate into the summary as
   we go ([1 · g] left-folded). *)
let tick (acc : Cost.summary) : Cost.summary =
  Cost.seq_summary acc Cost.one_summary

(* The result of one big-step evaluation: final task, join map, and the
   cost summary of everything this derivation executed. *)
type partial = {
  p_task : Task.t;
  p_joins : Join.t;
  p_cost : Cost.summary;
  p_stop : stop;
}

let rec eval (ctx : ctx) (joins : Join.t) (task : Task.t)
    (acc : Cost.summary) : (partial, Machine_error.t) result =
  (* [try-promote] takes priority over every other rule (their common
     ¬PromotionReady guard). *)
  match promotion_ready ctx.opts task with
  | Some handler ->
      let* () = spend ctx in
      ctx.st <- { ctx.st with promotions = ctx.st.promotions + 1 };
      emit ctx (fun () -> E_promote { task; handler });
      let* diverted = enter_fresh task handler in
      eval ctx joins diverted (tick acc)
  | None -> (
      let* outcome = Step.step task in
      match outcome with
      | Step.Stepped task' ->
          (* [seq] *)
          let* () = spend ctx in
          emit ctx (fun () -> E_step task);
          eval ctx joins task' (tick acc)
      | Step.Halted task' ->
          emit ctx (fun () -> E_halt task');
          (* [halt] is terminal for the whole machine. *)
          Ok { p_task = task'; p_joins = joins; p_cost = acc; p_stop = Halted }
      | Step.Parallel (req, task') -> eval_parallel ctx joins task' acc req)

and eval_parallel (ctx : ctx) (joins : Join.t) (task : Task.t)
    (acc : Cost.summary) (req : Step.parallel_request) :
    (partial, Machine_error.t) result =
  match req with
  | Step.Req_jralloc { dst; cont } ->
      (* [jralloc]: fresh closed record, result identifier in [dst]. *)
      let* () = spend ctx in
      ctx.st <- { ctx.st with jrallocs = ctx.st.jrallocs + 1 };
      let id, joins' = Join.alloc cont joins in
      emit ctx (fun () -> E_jralloc { task; id });
      let rest = List.tl task.code.rest in
      let regs = Regfile.set dst (Value.Vjoin id) task.regs in
      let task' =
        { task with
          pc = { task.pc with offset = task.pc.offset + 1 };
          cycles = task.cycles + 1;
          regs;
          code = { task.code with rest } }
      in
      eval ctx joins' task' (tick acc)
  | Step.Req_join { jr } -> (
      let* v = Regfile.find jr task.regs in
      let* j =
        match v with
        | Value.Vjoin j -> Ok j
        | other ->
            Error
              (Machine_error.Type_error
                 { expected = "join-record"; got = Value.kind other;
                   context = "join " ^ jr })
      in
      let* record = Join.find j joins in
      match record.status with
      | Join.Open ->
          (* [join-block]: terminal; cost 1. *)
          let* () = spend ctx in
          emit ctx (fun () -> E_join_block { task; join = j });
          Ok
            { p_task = task; p_joins = joins; p_cost = tick acc;
              p_stop = Blocked j }
      | Join.Closed ->
          (* [join-continue]: discharge the record and jump to the join
             continuation, keeping ⋄. *)
          let* () = spend ctx in
          ctx.st <- { ctx.st with join_continues = ctx.st.join_continues + 1 };
          emit ctx (fun () -> E_join_continue { task; join = j; cont = record.cont });
          let joins' = Join.remove j joins in
          let* block = Heap.find record.cont task.heap in
          let task' =
            Task.enter record.cont block ~cycles:task.cycles ~heap:task.heap
              ~regs:task.regs
          in
          eval ctx joins' task' (tick acc))
  | Step.Req_fork { jr; target } -> (
      let* v = Regfile.find jr task.regs in
      let* j =
        match v with
        | Value.Vjoin j -> Ok j
        | other ->
            Error
              (Machine_error.Type_error
                 { expected = "join-record"; got = Value.kind other;
                   context = "fork " ^ jr })
      in
      let* record = Join.find j joins in
      ctx.st <- { ctx.st with forks = ctx.st.forks + 1 };
      (* J0: register the dependency edge — the record opens. *)
      let joins0 = Join.set j { record with status = Join.Open } joins in
      (* Parent derivation: the instructions after [fork], ⋄ = 0. *)
      let rest = List.tl task.code.rest in
      let parent0 =
        { task with
          pc = { task.pc with offset = task.pc.offset + 1 };
          cycles = 0;
          code = { task.code with rest } }
      in
      (* Child derivation: block at the fork target, a copy of the
         parent's register file, ⋄ = 0. *)
      let* child_label, child_block = Heap.resolve task.heap task.regs target in
      emit ctx (fun () -> E_fork { task; join = j; child = child_label });
      let child0 =
        Task.enter child_label child_block ~cycles:0 ~heap:task.heap
          ~regs:task.regs
      in
      let* p1 = eval ctx joins0 parent0 Cost.zero_summary in
      (* If a branch halts, the whole machine stops (the [halt]
         instruction "terminates the whole machine"). *)
      match p1.p_stop with
      | Halted ->
          let cost =
            Cost.seq_summary acc
              (Cost.par_summary ~tau:ctx.opts.tau p1.p_cost Cost.zero_summary)
          in
          Ok { p1 with p_cost = cost }
      | Blocked j1 -> (
          let* () =
            if j1 = j then Ok ()
            else
              Error
                (Machine_error.Join_misuse
                   { join = j;
                     reason =
                       Printf.sprintf "parent branch joined on j%d instead" j1 })
          in
          let* p2 = eval ctx joins0 child0 Cost.zero_summary in
          match p2.p_stop with
          | Halted ->
              let cost =
                Cost.seq_summary acc
                  (Cost.par_summary ~tau:ctx.opts.tau p1.p_cost p2.p_cost)
              in
              Ok { p2 with p_cost = cost }
          | Blocked j2 ->
              let* () =
                if j2 = j then Ok ()
                else
                  Error
                    (Machine_error.Join_misuse
                       { join = j;
                         reason =
                           Printf.sprintf "child branch joined on j%d instead"
                             j2 })
              in
              join_and_combine ctx ~acc ~task ~j ~record p1 p2)
  )

(* The second half of the [fork] rule: merge the two finished branches
   and evaluate the combining block named by the join target. *)
and join_and_combine (ctx : ctx) ~(acc : Cost.summary) ~(task : Task.t)
    ~(j : int) ~(record : Join.record) (p1 : partial) (p2 : partial) :
    (partial, Machine_error.t) result =
  let* jp, dr, comb_label =
    match Heap.find_opt record.cont task.heap with
    | Some { annot = Ast.Jtppt (jp, dr, l); _ } -> Ok (jp, dr, l)
    | Some _ ->
        Error
          (Machine_error.Join_misuse
             { join = j;
               reason =
                 "join continuation " ^ record.cont
                 ^ " is not a join-target (jtppt) block" })
    | None -> Error (Machine_error.Unbound_label record.cont)
  in
  (* Under an associative-and-commutative policy the runtime may resolve
     the join with the roles swapped; exercising that freedom must not
     change program results. *)
  let r_parent, r_child =
    match (jp, ctx.opts.swap_joins) with
    | Ast.Assoc_comm, true -> (p2.p_task.regs, p1.p_task.regs)
    | (Ast.Assoc | Ast.Assoc_comm), _ -> (p1.p_task.regs, p2.p_task.regs)
  in
  let merged_regs = Regfile.merge r_parent r_child dr in
  let merged_heap = Heap.merge p1.p_task.heap p2.p_task.heap in
  (* J_c: merge, minus j, plus j at its pre-fork status. *)
  let merged_joins =
    Join.set j record (Join.remove j (Join.merge p1.p_joins p2.p_joins))
  in
  emit ctx (fun () -> E_combine { join = j; comb = comb_label });
  let* comb_block = Heap.find comb_label merged_heap in
  let comb0 =
    Task.enter comb_label comb_block ~cycles:0 ~heap:merged_heap
      ~regs:merged_regs
  in
  let* p' = eval ctx merged_joins comb0 Cost.zero_summary in
  let cost =
    Cost.seq_summary acc
      (Cost.seq_summary
         (Cost.par_summary ~tau:ctx.opts.tau p1.p_cost p2.p_cost)
         p'.p_cost)
  in
  Ok { p' with p_cost = cost }

(** [run_task ~options joins task] evaluates an arbitrary starting
    configuration — used by the tracer and by tests that seed
    registers. *)
let run_task ?hook ~(options : options) (joins : Join.t) (task : Task.t) :
    (finished, Machine_error.t) result =
  let ctx = { opts = options; fuel_left = options.fuel; st = zero_stats; hook } in
  let* p = eval ctx joins task Cost.zero_summary in
  Ok
    { task = p.p_task; joins = p.p_joins; cost = p.p_cost; stats = ctx.st;
      stop = p.p_stop }

(** [run ?options program] evaluates [program] from its entry block with
    an empty register file. *)
let run ?hook ?(options = default_options) (program : Ast.program) :
    (finished, Machine_error.t) result =
  let* task0 = Task.initial program in
  run_task ?hook ~options Join.empty task0

(** [run_seeded ?options program regs] evaluates [program] with initial
    register bindings — the usual way to pass arguments. *)
let run_seeded ?hook ?(options = default_options) (program : Ast.program)
    (bindings : (Ast.reg * Value.t) list) :
    (finished, Machine_error.t) result =
  let* task0 = Task.initial program in
  run_task ?hook ~options Join.empty
    { task0 with regs = Regfile.of_list bindings }
