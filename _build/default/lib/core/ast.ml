(** Abstract syntax of TPAL, the Task Parallel Assembly Language.

    This module follows the grammar of Figure 1 of the paper, extended with
    the stack-memory instructions of Figure 21 (Appendix B.2).  The
    highlighted, parallelism-specific syntax of the paper maps to:

    - {!constructor:Jralloc} — join-record allocation ([r := jralloc l]);
    - {!constructor:Fork} — task creation ([fork r, v]);
    - the {!terminator} [Join] — join-point synchronization ([join r]);
    - block {!annot}ations — promotion-ready program points ([prppt l]) and
      join-target program points ([jtppt jp; ΔR; l]).

    Everything else is a conventional RISC-like subset. *)

type reg = string [@@deriving show, eq, ord]
(** Register names.  TPAL assumes an unbounded set of virtual registers;
    we use strings for readability of traces and assembly files. *)

type label = string [@@deriving show, eq, ord]
(** Code-block labels. *)

(** Join-resolution policies ([jp] in the grammar): whether the combining
    operation at a join target is merely associative or also commutative.
    The runtime may resolve joins out of order only under [Assoc_comm]. *)
type jp = Assoc | Assoc_comm [@@deriving show, eq, ord]

(** Primitive binary operations ([op] in the grammar).  Comparison
    operators follow TPAL's convention that {e zero means true}: they
    evaluate to [0] when the comparison holds and [1] otherwise, matching
    the [if-jump] instruction, which branches when its register is zero. *)
type binop =
  | Add
  | Sub
  | Mul
  | Div  (** truncated division; division by zero is a machine error *)
  | Mod  (** remainder; modulus by zero is a machine error *)
  | Lt
  | Le
  | Eq
  | Ne
  | Gt
  | Ge
  | And  (** bitwise and *)
  | Or   (** bitwise or *)
  | Xor  (** bitwise xor *)
  | Shl
  | Shr
[@@deriving show, eq, ord]

(** Static operands ([v] in the grammar).  Join-record identifiers are
    run-time values only (they are created by [jralloc]), so they do not
    appear in source operands. *)
type operand = Reg of reg | Lab of label | Int of int
[@@deriving show, eq, ord]

(** Straight-line instructions ([ı] in the grammar).  [If_jump] falls
    through when the branch is not taken, so it is an ordinary instruction
    rather than a block terminator. *)
type instr =
  | Mov of reg * operand  (** [r := v] *)
  | Binop of reg * binop * operand * operand  (** [r := v1 op v2] *)
  | If_jump of reg * operand
      (** [if-jump r, v]: jump to [v] when [r] holds integer [0]
          (zero-is-true convention), fall through otherwise. *)
  | Jralloc of reg * label
      (** [r := jralloc l]: allocate a fresh join record whose
          continuation block is [l]; store its identifier in [r]. *)
  | Fork of reg * operand
      (** [fork r, v]: register a dependency edge in the join record held
          in [r], then spawn a child task starting at block [v] with a
          copy of the parent's register file. *)
  | Snew of reg  (** [r := snew]: allocate a fresh, empty stack. *)
  | Salloc of reg * int
      (** [salloc r, n]: push [n] zero-initialized cells onto the stack
          held in [r]. *)
  | Sfree of reg * int  (** [sfree r, n]: pop [n] cells. *)
  | Load of reg * reg * int  (** [rd := mem[r + n]] *)
  | Store of reg * int * operand  (** [mem[r + n] := v] *)
  | Prmpush of reg * int
      (** [prmpush mem[r + n]]: write a promotion-ready mark into the
          stack cell at offset [n]. *)
  | Prmpop of reg * int
      (** [prmpop mem[r + n]]: remove the mark at offset [n] (which must
          be a mark; clearing writes [0]). *)
  | Prmempty of reg * reg
      (** [rd := prmempty r]: [0] (true) iff the stack in [r] holds no
          promotion-ready mark, so that the idiom
          [t := prmempty sp; if-jump t, loop] of Figure 23 aborts a
          promotion attempt exactly when no latent parallelism is
          advertised. *)
  | Prmsplit of reg * reg
      (** [prmsplit rs, rp]: clear the {e least-recent} (outermost) mark
          in the stack held in [rs] and set [rp] to its cell offset. *)
[@@deriving show, eq, ord]

(** Block terminators.  An instruction sequence [I] in the grammar is a
    list of {!instr} finished by one of these. *)
type terminator =
  | Jump of operand  (** [jump v]; [v] may be a label or a register holding one. *)
  | Halt  (** [halt]: terminate the whole machine. *)
  | Join of reg  (** [join r]: participate in join resolution on the
                     join record held in [r]. *)
[@@deriving show, eq, ord]

(** Register-renaming environments ΔR used by join-target annotations:
    at a join, each pair [(rs, rt)] copies the child's register [rs] into
    register [rt] of the merged register file. *)
type renaming = (reg * reg) list [@@deriving show, eq, ord]

(** Block annotations (★ in the grammar). *)
type annot =
  | Plain  (** [·]: no special behaviour. *)
  | Prppt of label
      (** [prppt l]: promotion-ready program point; when a heartbeat is
          pending, control entering this block diverts to handler [l]. *)
  | Jtppt of jp * renaming * label
      (** [jtppt jp; ΔR; l]: join-target point with join policy [jp],
          register merge ΔR, and combining block [l]. *)
[@@deriving show, eq, ord]

type block = { annot : annot; body : instr list; term : terminator }
[@@deriving show, eq, ord]
(** A labeled code block: an annotation, straight-line instructions, and
    a terminator. *)

type program = { entry : label; blocks : (label * block) list }
[@@deriving show, eq, ord]
(** A program is a set of labeled blocks plus a designated entry label.
    Block order is preserved for printing; lookup is by label
    (see {!Heap}). *)

(** [block_length b] is the number of machine steps the block can issue:
    its straight-line instructions plus the terminator. *)
let block_length (b : block) = List.length b.body + 1

(** [instr_labels i] lists the labels statically mentioned by [i]. *)
let instr_labels (i : instr) : label list =
  let of_operand = function Lab l -> [ l ] | Reg _ | Int _ -> [] in
  match i with
  | Mov (_, v) -> of_operand v
  | Binop (_, _, v1, v2) -> of_operand v1 @ of_operand v2
  | If_jump (_, v) -> of_operand v
  | Jralloc (_, l) -> [ l ]
  | Fork (_, v) -> of_operand v
  | Store (_, _, v) -> of_operand v
  | Snew _ | Salloc _ | Sfree _ | Load _ | Prmpush _ | Prmpop _ | Prmempty _
  | Prmsplit _ ->
      []

(** [term_labels t] lists the labels statically mentioned by [t]. *)
let term_labels (t : terminator) : label list =
  match t with
  | Jump (Lab l) -> [ l ]
  | Jump (Reg _ | Int _) | Halt | Join _ -> []

(** [annot_labels a] lists the labels mentioned by annotation [a]. *)
let annot_labels (a : annot) : label list =
  match a with
  | Plain -> []
  | Prppt l -> [ l ]
  | Jtppt (_, _, l) -> [ l ]

(** [block_labels b] lists every label statically referenced by [b]. *)
let block_labels (b : block) : label list =
  annot_labels b.annot
  @ List.concat_map instr_labels b.body
  @ term_labels b.term

(** [defined_regs i] is the list of registers written by [i]. *)
let defined_regs (i : instr) : reg list =
  match i with
  | Mov (r, _)
  | Binop (r, _, _, _)
  | Jralloc (r, _)
  | Snew r
  | Load (r, _, _)
  | Prmempty (r, _) ->
      [ r ]
  | Prmsplit (_, rp) -> [ rp ]
  | If_jump _ | Fork _ | Salloc _ | Sfree _ | Store _ | Prmpush _ | Prmpop _
    ->
      []

(** [used_regs i] is the list of registers read by [i]. *)
let used_regs (i : instr) : reg list =
  let of_operand = function Reg r -> [ r ] | Lab _ | Int _ -> [] in
  match i with
  | Mov (_, v) -> of_operand v
  | Binop (_, _, v1, v2) -> of_operand v1 @ of_operand v2
  | If_jump (r, v) -> r :: of_operand v
  | Jralloc (_, _) -> []
  | Fork (r, v) -> r :: of_operand v
  | Snew _ -> []
  | Salloc (r, _) | Sfree (r, _) -> [ r ]
  | Load (_, r, _) -> [ r ]
  | Store (r, _, v) -> r :: of_operand v
  | Prmpush (r, _) | Prmpop (r, _) -> [ r ]
  | Prmempty (_, r) -> [ r ]
  | Prmsplit (rs, _) -> [ rs ]
