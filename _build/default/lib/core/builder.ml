(** Combinator DSL for constructing TPAL programs in OCaml.

    Example, the sequential skeleton of the paper's running example:
    {[
      let open Builder in
      program ~entry:"prod"
        [ block "prod" [ mov "r" (int 0) ] (jump "loop");
          block "loop" ~annot:(prppt "loop-try-promote")
            [ if_jump "a" (lab "exit");
              binop "r" Ast.Add (reg "r") (reg "b");
              binop "a" Ast.Sub (reg "a") (int 1) ]
            (jump "loop");
          ... ]
    ]} *)

(* Operands *)
let reg (r : string) : Ast.operand = Ast.Reg r
let lab (l : string) : Ast.operand = Ast.Lab l
let int (n : int) : Ast.operand = Ast.Int n

(* Instructions *)
let mov (r : string) (v : Ast.operand) : Ast.instr = Ast.Mov (r, v)

let binop (r : string) (op : Ast.binop) (v1 : Ast.operand) (v2 : Ast.operand) :
    Ast.instr =
  Ast.Binop (r, op, v1, v2)

let add r v1 v2 = binop r Ast.Add v1 v2
let sub r v1 v2 = binop r Ast.Sub v1 v2
let mul r v1 v2 = binop r Ast.Mul v1 v2
let div r v1 v2 = binop r Ast.Div v1 v2
let modulo r v1 v2 = binop r Ast.Mod v1 v2
let lt r v1 v2 = binop r Ast.Lt v1 v2
let if_jump (r : string) (v : Ast.operand) : Ast.instr = Ast.If_jump (r, v)
let jralloc (r : string) (cont : string) : Ast.instr = Ast.Jralloc (r, cont)
let fork (jr : string) (v : Ast.operand) : Ast.instr = Ast.Fork (jr, v)
let snew (r : string) : Ast.instr = Ast.Snew r
let salloc (r : string) (n : int) : Ast.instr = Ast.Salloc (r, n)
let sfree (r : string) (n : int) : Ast.instr = Ast.Sfree (r, n)
let load (rd : string) (r : string) (n : int) : Ast.instr = Ast.Load (rd, r, n)

let store (r : string) (n : int) (v : Ast.operand) : Ast.instr =
  Ast.Store (r, n, v)

let prmpush (r : string) (n : int) : Ast.instr = Ast.Prmpush (r, n)
let prmpop (r : string) (n : int) : Ast.instr = Ast.Prmpop (r, n)
let prmempty (rd : string) (r : string) : Ast.instr = Ast.Prmempty (rd, r)
let prmsplit (rs : string) (rp : string) : Ast.instr = Ast.Prmsplit (rs, rp)

(* Terminators *)
let jump (l : string) : Ast.terminator = Ast.Jump (Ast.Lab l)
let jump_reg (r : string) : Ast.terminator = Ast.Jump (Ast.Reg r)
let halt : Ast.terminator = Ast.Halt
let join (r : string) : Ast.terminator = Ast.Join r

(* Annotations *)
let prppt (handler : string) : Ast.annot = Ast.Prppt handler

let jtppt ?(policy = Ast.Assoc_comm) (renaming : (string * string) list)
    (comb : string) : Ast.annot =
  Ast.Jtppt (policy, renaming, comb)

(* Blocks and programs *)
let block ?(annot = Ast.Plain) (label : string) (body : Ast.instr list)
    (term : Ast.terminator) : Ast.label * Ast.block =
  (label, { Ast.annot; body; term })

(** [program ~entry blocks] assembles and statically checks the
    program; raises [Invalid_argument] on checker errors. *)
let program ~(entry : string) (blocks : (Ast.label * Ast.block) list) :
    Ast.program =
  Check.check_exn { Ast.entry; blocks }

(** [program_unchecked ~entry blocks] assembles without checking — for
    tests that need ill-formed programs. *)
let program_unchecked ~(entry : string)
    (blocks : (Ast.label * Ast.block) list) : Ast.program =
  { Ast.entry; blocks }
