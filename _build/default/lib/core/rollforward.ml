(** Rollforward compilation (§3.2).

    The paper's implementation cannot rely on OS signals landing at
    promotion-ready program points, so it compiles every parallel
    region twice:

    - the {e original} version, identical to the input — it never
      triggers a heartbeat on its own;
    - the {e rollforward} version, in which "any instruction that
      jumps to a promotion-ready program point jumps instead to the
      corresponding handler function" — so once control is in it, the
      next promotion-ready point is guaranteed to divert.

    A signal handler then services an interrupt by looking the
    interrupted program counter up in the original→rollforward label
    map and replacing it; the program keeps executing (rolls forward)
    and invokes the promotion handler at the next promotion-ready
    point, after which control resumes in the original version (the
    paper's handler blocks jump back to original labels).

    This module implements that transformation at the TPAL level:
    {!transform} produces the combined two-version program plus the
    label map, and {!redirect} performs the signal handler's
    program-counter replacement on a live {!Task.t}. *)

type t = {
  program : Ast.program;
      (** the original blocks plus their rollforward copies; entry is
          the original entry *)
  map : (Ast.label * Ast.label) list;
      (** original label → rollforward label, one entry per block of
          the input (the table "loaded once, by the binary load
          routine") *)
}

(** Label of the rollforward copy of [l]. *)
let rf_label (l : Ast.label) : Ast.label = "rf$" ^ l

let is_prppt (heap : Heap.t) (l : Ast.label) : bool =
  match Heap.find_opt l heap with
  | Some { annot = Ast.Prppt _; _ } -> true
  | _ -> false

let handler_of (heap : Heap.t) (l : Ast.label) : Ast.label option =
  match Heap.find_opt l heap with
  | Some { annot = Ast.Prppt h; _ } -> Some h
  | _ -> None

(* Rewrite a control-flow target for the rollforward version:
   - a promotion-ready block becomes its handler (in the original
     namespace — the handler performs the promotion and continues in
     original code);
   - any other known block becomes its rollforward copy (keep rolling
     until a promotion-ready point);
   - unknown labels (e.g. data labels) are left alone. *)
let rf_target (heap : Heap.t) (l : Ast.label) : Ast.label =
  match handler_of heap l with
  | Some h -> h
  | None -> if Heap.mem l heap then rf_label l else l

let rf_operand (heap : Heap.t) (v : Ast.operand) : Ast.operand =
  match v with
  | Ast.Lab l -> Ast.Lab (rf_target heap l)
  | Ast.Reg _ | Ast.Int _ -> v

let rf_instr (heap : Heap.t) (i : Ast.instr) : Ast.instr =
  match i with
  | Ast.If_jump (r, v) -> Ast.If_jump (r, rf_operand heap v)
  | Ast.Fork (jr, v) ->
      (* a forked child starts fresh (⋄ = 0): it targets the original
         version, not the rollforward one *)
      Ast.Fork (jr, v)
  | Ast.Mov (r, Ast.Lab l) when Heap.mem l heap ->
      (* label materialisations (continuation registers) stay in the
         original namespace: stored continuations are consumed after
         the pending interrupt has been serviced *)
      Ast.Mov (r, Ast.Lab l)
  | Ast.Jralloc _ | Ast.Mov _ | Ast.Binop _ | Ast.Snew _ | Ast.Salloc _
  | Ast.Sfree _ | Ast.Load _ | Ast.Store _ | Ast.Prmpush _ | Ast.Prmpop _
  | Ast.Prmempty _ | Ast.Prmsplit _ ->
      i

let rf_term (heap : Heap.t) (t : Ast.terminator) : Ast.terminator =
  match t with
  | Ast.Jump (Ast.Lab l) -> Ast.Jump (Ast.Lab (rf_target heap l))
  | Ast.Jump _ | Ast.Halt | Ast.Join _ -> t

(* The rollforward copy of a block: same instructions with redirected
   control flow; the promotion-ready annotation is dropped (diversion
   is now explicit in the control flow) and join-target annotations
   are kept (join resolution is scheduler-level and shared). *)
let rf_block (heap : Heap.t) (b : Ast.block) : Ast.block =
  let annot =
    match b.annot with
    | Ast.Prppt _ -> Ast.Plain
    | (Ast.Plain | Ast.Jtppt _) as a -> a
  in
  {
    Ast.annot;
    body = List.map (rf_instr heap) b.body;
    term = rf_term heap b.term;
  }

(** [transform p] compiles [p] into its two-version form. *)
let transform (p : Ast.program) : t =
  let heap = Heap.of_program p in
  let rf_blocks =
    List.map (fun (l, b) -> (rf_label l, rf_block heap b)) p.blocks
  in
  {
    program = { p with blocks = p.blocks @ rf_blocks };
    map = List.map (fun (l, _) -> (l, rf_label l)) p.blocks;
  }

(** [redirect t map task] is the signal handler's action on an
    interrupted task: if the program counter matches a key in the
    table, replace it by the corresponding rollforward entry
    (preserving the offset — the two versions "align perfectly up to
    instruction labels").  Returns the task unchanged when the counter
    is outside the mapped region (e.g. already in a handler). *)
let redirect (t : t) (task : Task.t) : (Task.t, Machine_error.t) result =
  match List.assoc_opt task.pc.label t.map with
  | None -> Ok task
  | Some rf -> (
      match Heap.find_opt rf (Heap.of_program t.program) with
      | None -> Error (Machine_error.Unbound_label rf)
      | Some block ->
          let rec drop n l =
            if n <= 0 then Some l
            else match l with [] -> None | _ :: tl -> drop (n - 1) tl
          in
          (match drop task.pc.offset block.body with
          | Some rest ->
              Ok
                { task with
                  pc = { Task.label = rf; offset = task.pc.offset };
                  code = { rest; term = block.term } }
          | None ->
              Error
                (Machine_error.Pc_out_of_range
                   { label = rf; offset = task.pc.offset })))
