(** Cost semantics of TPAL (Figure 28).

    Executions induce series–parallel cost graphs; [Work] and [Span]
    weight each parallel composition with the task-creation cost τ.

    Two representations are provided:

    - {!graph}, the literal grammar of Figure 28, convenient for tests
      and algebraic reasoning on small programs;
    - {!summary}, a constant-space monoidal digest (work, span, fork
      count) that {!Eval} accumulates on large executions, where
      materialising a graph with one vertex per instruction would be
      prohibitive.

    The two agree: [summarize ~tau g] equals the summary accumulated by
    composing with {!seq} and {!par} in the same shape as [g] (this is a
    property test in the suite). *)

type graph =
  | Zero  (** the empty graph [0] *)
  | One  (** the one-vertex graph [1] *)
  | Seq of graph * graph  (** sequential composition [g1 · g2] *)
  | Par of graph * graph  (** parallel composition [g1 ∥ g2] *)

(* Fold over a graph without native recursion so that graphs with one
   vertex per instruction — deeply nested in either direction — cannot
   overflow the OCaml stack. *)
let fold (type a) ~(zero : a) ~(one : a) ~(seq : a -> a -> a)
    ~(par : a -> a -> a) (g : graph) : a =
  let module W = struct
    type item = Eval of graph | Combine of (a -> a -> a)
  end in
  let rec go (todo : W.item list) (vals : a list) : a =
    match (todo, vals) with
    | [], [ v ] -> v
    | [], _ -> assert false (* one value per completed graph *)
    | W.Eval Zero :: todo, vals -> go todo (zero :: vals)
    | W.Eval One :: todo, vals -> go todo (one :: vals)
    | W.Eval (Seq (g1, g2)) :: todo, vals ->
        go (W.Eval g1 :: W.Eval g2 :: W.Combine seq :: todo) vals
    | W.Eval (Par (g1, g2)) :: todo, vals ->
        go (W.Eval g1 :: W.Eval g2 :: W.Combine par :: todo) vals
    | W.Combine op :: todo, v2 :: v1 :: vals -> go todo (op v1 v2 :: vals)
    | W.Combine _ :: _, _ -> assert false
  in
  go [ W.Eval g ] []

(** [work ~tau g] — [Work] of Figure 28: total vertices, plus τ per
    parallel composition. *)
let work ~(tau : int) (g : graph) : int =
  fold ~zero:0 ~one:1 ~seq:(fun a b -> a + b)
    ~par:(fun a b -> tau + a + b)
    g

(** [span ~tau g] — [Span] of Figure 28: critical-path length, each
    parallel composition adding τ before the longer branch. *)
let span ~(tau : int) (g : graph) : int =
  fold ~zero:0 ~one:1 ~seq:(fun a b -> a + b)
    ~par:(fun a b -> tau + max a b)
    g

(** Number of parallel compositions (forks) in the graph. *)
let forks (g : graph) : int =
  fold ~zero:0 ~one:0 ~seq:(fun a b -> a + b) ~par:(fun a b -> 1 + a + b) g

(** Number of [One] vertices — the instruction count of the execution. *)
let vertices (g : graph) : int =
  fold ~zero:0 ~one:1 ~seq:(fun a b -> a + b) ~par:(fun a b -> a + b) g

let rec pp ppf = function
  | Zero -> Fmt.string ppf "0"
  | One -> Fmt.string ppf "1"
  | Seq (a, b) -> Fmt.pf ppf "(%a · %a)" pp a pp b
  | Par (a, b) -> Fmt.pf ppf "(%a ∥ %a)" pp a pp b

let rec equal a b =
  match (a, b) with
  | Zero, Zero | One, One -> true
  | Seq (a1, a2), Seq (b1, b2) | Par (a1, a2), Par (b1, b2) ->
      equal a1 b1 && equal a2 b2
  | (Zero | One | Seq _ | Par _), _ -> false

(** Constant-space digest of a cost graph for a fixed τ. *)
type summary = { work : int; span : int; forks : int }

let zero_summary : summary = { work = 0; span = 0; forks = 0 }
let one_summary : summary = { work = 1; span = 1; forks = 0 }

(** Sequential composition of summaries ([g1 · g2]). *)
let seq_summary (a : summary) (b : summary) : summary =
  { work = a.work + b.work; span = a.span + b.span; forks = a.forks + b.forks }

(** Parallel composition of summaries ([g1 ∥ g2]) at task-creation
    cost [tau]. *)
let par_summary ~(tau : int) (a : summary) (b : summary) : summary =
  { work = tau + a.work + b.work;
    span = tau + max a.span b.span;
    forks = 1 + a.forks + b.forks }

(** [summarize ~tau g] digests a literal graph. *)
let summarize ~(tau : int) (g : graph) : summary =
  fold ~zero:zero_summary ~one:one_summary ~seq:seq_summary
    ~par:(par_summary ~tau) g

(** Average parallelism [work / span] — the figure of merit heartbeat
    scheduling tries to preserve while bounding fork overhead. *)
let parallelism (s : summary) : float =
  if s.span = 0 then 0. else float_of_int s.work /. float_of_int s.span

(** Brent's bound: a greedy [p]-processor schedule completes within
    [work/p + span] steps. *)
let brent_bound ~(procs : int) (s : summary) : float =
  (float_of_int s.work /. float_of_int procs) +. float_of_int s.span

let pp_summary ppf (s : summary) =
  Fmt.pf ppf "work=%d span=%d forks=%d" s.work s.span s.forks

let equal_summary (a : summary) (b : summary) =
  a.work = b.work && a.span = b.span && a.forks = b.forks
