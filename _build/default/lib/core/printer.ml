(** Pretty-printer for TPAL assembly, inverse of {!Parser}:
    [Parser.parse (Printer.program_to_string p)] yields [p] back
    (up to the register/label resolution of bare identifiers), which
    the test suite checks by property. *)

let binop_to_string : Ast.binop -> string = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "&"
  | Ast.Or -> "|"
  | Ast.Xor -> "^"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"

let operand_to_string : Ast.operand -> string = function
  | Ast.Reg r -> r
  | Ast.Lab l -> l
  | Ast.Int n -> string_of_int n

let instr_to_string : Ast.instr -> string = function
  | Ast.Mov (r, v) -> Printf.sprintf "%s := %s" r (operand_to_string v)
  | Ast.Binop (r, op, v1, v2) ->
      Printf.sprintf "%s := %s %s %s" r (operand_to_string v1)
        (binop_to_string op) (operand_to_string v2)
  | Ast.If_jump (r, v) -> Printf.sprintf "if-jump %s, %s" r (operand_to_string v)
  | Ast.Jralloc (r, l) -> Printf.sprintf "%s := jralloc %s" r l
  | Ast.Fork (jr, v) -> Printf.sprintf "fork %s, %s" jr (operand_to_string v)
  | Ast.Snew r -> Printf.sprintf "%s := snew" r
  | Ast.Salloc (r, n) -> Printf.sprintf "salloc %s, %d" r n
  | Ast.Sfree (r, n) -> Printf.sprintf "sfree %s, %d" r n
  | Ast.Load (rd, r, n) -> Printf.sprintf "%s := mem[%s + %d]" rd r n
  | Ast.Store (r, n, v) ->
      Printf.sprintf "mem[%s + %d] := %s" r n (operand_to_string v)
  | Ast.Prmpush (r, n) -> Printf.sprintf "prmpush mem[%s + %d]" r n
  | Ast.Prmpop (r, n) -> Printf.sprintf "prmpop mem[%s + %d]" r n
  | Ast.Prmempty (rd, r) -> Printf.sprintf "%s := prmempty %s" rd r
  | Ast.Prmsplit (rs, rp) -> Printf.sprintf "prmsplit %s, %s" rs rp

let term_to_string : Ast.terminator -> string = function
  | Ast.Jump v -> "jump " ^ operand_to_string v
  | Ast.Halt -> "halt"
  | Ast.Join r -> "join " ^ r

let annot_to_string : Ast.annot -> string = function
  | Ast.Plain -> "[.]"
  | Ast.Prppt l -> Printf.sprintf "[prppt %s]" l
  | Ast.Jtppt (jp, dr, l) ->
      let policy = match jp with Ast.Assoc -> "assoc" | Ast.Assoc_comm -> "assoc-comm" in
      let pairs =
        String.concat ", "
          (List.map (fun (s, t) -> Printf.sprintf "%s -> %s" s t) dr)
      in
      Printf.sprintf "[jtppt %s; {%s}; %s]" policy pairs l

let block_to_buffer (buf : Buffer.t) (label : Ast.label) (b : Ast.block) : unit
    =
  Buffer.add_string buf
    (Printf.sprintf "%s: %s\n" label (annot_to_string b.annot));
  List.iter
    (fun i -> Buffer.add_string buf ("  " ^ instr_to_string i ^ "\n"))
    b.body;
  Buffer.add_string buf ("  " ^ term_to_string b.term ^ "\n")

(** [program_to_string p] renders [p] in the concrete syntax accepted
    by {!Parser.parse}.  The entry block is printed first (programs
    constructed with the entry not in front are reordered, preserving
    the relative order of the rest). *)
let program_to_string (p : Ast.program) : string =
  let buf = Buffer.create 1024 in
  let entry_first =
    let entry, rest =
      List.partition (fun (l, _) -> String.equal l p.entry) p.blocks
    in
    entry @ rest
  in
  List.iteri
    (fun i (l, b) ->
      if i > 0 then Buffer.add_char buf '\n';
      block_to_buffer buf l b)
    entry_first;
  Buffer.contents buf

let pp_program ppf p = Fmt.string ppf (program_to_string p)
