(** Execution tracing, in the style of the worked traces of Appendix D:
    one line per machine event showing the cycle counter ⋄, the program
    counter, and the instruction about to issue, with optional register
    watches. *)

type entry = {
  index : int;  (** ordinal of the event in the run *)
  cycles : int;  (** ⋄ of the task at the event *)
  pc : Task.pc;
  what : string;  (** rendered rule / instruction *)
  watched : (Ast.reg * string) list;  (** watched register contents *)
}

let pp_entry ppf (e : entry) =
  let pp_watch ppf (r, v) = Fmt.pf ppf "%s ↦ %s" r v in
  Fmt.pf ppf "%4d  ⋄=%-4d %-24s %-40s %a" e.index e.cycles
    (Fmt.str "%a" Task.pp_pc e.pc)
    e.what
    Fmt.(list ~sep:(any ", ") pp_watch)
    e.watched

let render_current (t : Task.t) : string =
  match Task.current t with
  | Task.Instr i -> Printer.instr_to_string i
  | Task.Term tm -> Printer.term_to_string tm

let watch (regs : Ast.reg list) (t : Task.t) : (Ast.reg * string) list =
  List.filter_map
    (fun r ->
      Option.map (fun v -> (r, Value.show v)) (Regfile.find_opt r t.regs))
    regs

(** [collect ?watch_regs ?limit ~options program bindings] runs
    [program] under [options] with registers [bindings] seeded,
    returning the event log (truncated to [limit] entries, default
    10_000) together with the evaluation result. *)
let collect ?(watch_regs : Ast.reg list = []) ?(limit = 10_000)
    ~(options : Eval.options) (program : Ast.program)
    (bindings : (Ast.reg * Value.t) list) :
    entry list * (Eval.finished, Machine_error.t) result =
  let log = ref [] in
  let count = ref 0 in
  let push (t : Task.t) (what : string) =
    if !count < limit then begin
      incr count;
      log :=
        { index = !count; cycles = t.cycles; pc = t.pc; what;
          watched = watch watch_regs t }
        :: !log
    end
  in
  let hook : Eval.event -> unit = function
    | Eval.E_step t -> push t (render_current t)
    | Eval.E_promote { task; handler } ->
        push task (Printf.sprintf "[try-promote → %s]" handler)
    | Eval.E_jralloc { task; id } ->
        push task (Printf.sprintf "[jralloc → j%d]" id)
    | Eval.E_fork { task; join; child } ->
        push task (Printf.sprintf "[fork j%d, child %s]" join child)
    | Eval.E_join_block { task; join } ->
        push task (Printf.sprintf "[join-block j%d]" join)
    | Eval.E_join_continue { task; join; cont } ->
        push task (Printf.sprintf "[join-continue j%d → %s]" join cont)
    | Eval.E_combine { join; comb } ->
        push
          { pc = Task.pc comb 0; cycles = 0; heap = Heap.empty;
            regs = Regfile.empty;
            code = { rest = []; term = Ast.Halt } }
          (Printf.sprintf "[combine j%d at %s]" join comb)
    | Eval.E_halt t -> push t "[halt]"
  in
  let result = Eval.run_seeded ~hook ~options program bindings in
  (List.rev !log, result)

(** [to_string entries] renders a trace as one line per entry. *)
let to_string (entries : entry list) : string =
  String.concat "\n" (List.map (Fmt.str "%a" pp_entry) entries)

(** Events of interest for compact summaries: promotions, forks and
    joins only. *)
let milestones (entries : entry list) : entry list =
  List.filter (fun e -> String.length e.what > 0 && e.what.[0] = '[') entries
