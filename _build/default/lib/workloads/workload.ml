(** The registry of the paper's 12 benchmark configurations (§4.1),
    as simulator workloads.

    Each workload pairs a {!Sim.Par_ir} program — whose fork-join
    structure mirrors the benchmark's actual parallelisation (nested
    loops where the paper's code nests [cilk_for], spawn trees where it
    recurses) and whose leaf costs are calibrated to the kernel's
    arithmetic — with three scheduler-specific constants:

    - [cilk_dilation_pct]: how much slower the Cilk {e loop body
      itself} runs compared to the serial body, from reducer-variable
      indirection and the optimisations [cilk_for] lowering blocks.
      This is a compilation property, measured per benchmark by the
      paper's Figure 6 single-core experiment, that a scheduling
      simulator cannot derive — so it is taken as a calibrated input.
      The {e spawn-driven} part of Cilk's overhead (τ per task for the
      8·P-chunk decomposition) is emergent, not calibrated.
    - [tpal_dilation_pct]: TPAL's compile-time transformation cost
      (nop padding, auxiliary accumulators — Figure 8).  For the
      recursive benchmarks this is left at 100 because their overhead
      (promotion-ready mark pushes) is charged mechanically per spawn
      site and {e emerges} (e.g. knapsack's 51 %).
    - [mem_intensity ∈ [0,1]]: how memory/kernel-bound the benchmark
      is; degrades Linux signal delivery (see {!Sim.Interrupts}).
    - [bw_cap]: the benchmark's memory-bandwidth ceiling — the maximum
      aggregate speedup its cycles can achieve on the one-NUMA-node
      testbed regardless of scheduler (streaming kernels saturate DDR4
      well before 15×; [infinity] for compute-bound kernels).

    Input sizes are the paper's scaled down ~20–100× (documented per
    workload) so the whole evaluation simulates in CI time; scaling
    preserves the ratios that determine scheduling behaviour
    (work ≫ ♥, latent parallelism ≫ P). *)

type kind = Iterative | Recursive

type t = {
  name : string;
  kind : kind;
  descr : string;  (** input shape, relative to the paper's *)
  ir : Sim.Par_ir.t Lazy.t;
  cilk_dilation_pct : int;
  tpal_dilation_pct : int;
  mem_intensity : float;
  bw_cap : float;
  cilk_bw_cap : float;
      (** bandwidth/locality ceiling under Cilk's fine-grained eager
          decomposition — the cache-sharing degradation of tiny chunks
          (notably floyd-warshall's 8-row chunks bouncing matrix rows,
          §4.3).  Equal to [bw_cap] where granularity does not change
          locality. *)
}

let seed = 0xBEA7

(* ------------------------------------------------------------------ *)
(* Iterative benchmarks                                                *)
(* ------------------------------------------------------------------ *)

(* plus-reduce-array — paper: 100 M doubles.  Scaled: 40 M elements of
   4 cycles (load + add + loop control).  Cilk's reducer makes each
   access ~8× costlier (Figure 6: 8.1). *)
let plus_reduce_array =
  {
    name = "plus-reduce-array";
    kind = Iterative;
    descr = "40M doubles (paper: 100M)";
    ir = lazy (Sim.Par_ir.for_const ~n:40_000_000 ~cycles:4);
    cilk_dilation_pct = 760;
    tpal_dilation_pct = 101;
    mem_intensity = 0.85;
    bw_cap = 7.5 (* pure streaming: one load per add *);
    cilk_bw_cap = 7.5;
  }

(* spmv — paper: 273 M nnz random / 186 M nnz powerlaw / arrowhead.
   Scaled to a few million nnz with identical row-length structure.
   The matrix structure is generated once (lengths only; actual CSR
   matrices for correctness tests live in {!Csr}). *)

let spmv_ir (row_lengths : int array) : Sim.Par_ir.t =
  let nrows = Array.length row_lengths in
  Sim.Par_ir.for_nested ~n:nrows (fun r ->
      let len = row_lengths.(r) in
      if len <= 8 then Sim.Par_ir.leaf (14 + (10 * len))
      else
        Sim.Par_ir.seq
          [ Sim.Par_ir.leaf 14; Sim.Par_ir.for_const ~n:len ~cycles:10 ])

let random_lengths ~n ~max_len =
  let rng = Sim.Prng.create ~seed in
  Array.init n (fun _ -> 1 + Sim.Prng.int rng max_len)

let powerlaw_lengths ~n ~max_len ~s =
  let rng = Sim.Prng.create ~seed:(seed + 1) in
  Array.init n (fun _ ->
      let rank = 1 + Sim.Prng.int rng n in
      max 1
        (min max_len
           (int_of_float (float_of_int max_len /. (float_of_int rank ** (s -. 1.))))))

let spmv_random =
  {
    name = "spmv-random";
    kind = Iterative;
    descr = "100K rows, uniform lengths <=100, ~5M nnz (paper: 273M nnz)";
    ir = lazy (spmv_ir (random_lengths ~n:100_000 ~max_len:100));
    (* Figure 6 measures ~16x for Cilk spmv: reducer-based row sums
       turn a 10-cycle element update into an indirected access *)
    cilk_dilation_pct = 1500;
    tpal_dilation_pct = 103;
    mem_intensity = 0.8;
    bw_cap = 9.;
    cilk_bw_cap = 9.;
  }

let spmv_powerlaw =
  {
    name = "spmv-powerlaw";
    kind = Iterative;
    descr =
      "300K rows, Zipf lengths, heavy head rows, ~4M nnz (paper: 186M nnz)";
    ir = lazy (spmv_ir (powerlaw_lengths ~n:300_000 ~max_len:120_000 ~s:1.9));
    (* Figure 6: 6.8x — lighter than spmv-random because the heavy
       head rows amortise the reducer setup *)
    cilk_dilation_pct = 620;
    tpal_dilation_pct = 103;
    mem_intensity = 0.7;
    bw_cap = 9.;
    cilk_bw_cap = 9.;
  }

let spmv_arrowhead =
  {
    name = "spmv-arrowhead";
    kind = Iterative;
    descr = "1.5M x 1.5M arrowhead, ~4.5M nnz";
    ir =
      lazy
        (let n = 1_500_000 in
         Sim.Par_ir.for_nested ~n (fun r ->
             if r = 0 then
               Sim.Par_ir.seq
                 [ Sim.Par_ir.leaf 14; Sim.Par_ir.for_const ~n ~cycles:10 ]
             else Sim.Par_ir.leaf (14 + (10 * 3))));
    (* Figure 6: 16.2x — two-element tail rows drown in per-task cost *)
    cilk_dilation_pct = 1520;
    tpal_dilation_pct = 106;
    mem_intensity = 0.8;
    bw_cap = 9.;
    cilk_bw_cap = 9.;
  }

(* mandelbrot — paper: 4k × 4k pixels.  Scaled: 1k × 1k, max 64
   iterations; per-pixel costs computed from the actual escape-time
   function so the image's irregularity (cheap border, expensive
   interior) is exact.  Plain nested loops, no reducers: Cilk body
   dilation ~none (the one benchmark where Cilk's single core matches
   serial and beats TPAL by 2 %). *)
let mandelbrot_costs =
  lazy
    (let width = 1024 and height = 1024 in
     let max_iter = 256 in
     let costs = Array.make (width * height) 0 in
     for row = 0 to height - 1 do
       for col = 0 to width - 1 do
         costs.((row * width) + col) <-
           Mandelbrot.pixel_cost ~max_iter ~width ~height row col
       done
     done;
     costs)

let mandelbrot =
  {
    name = "mandelbrot";
    kind = Iterative;
    descr = "1k x 1k pixels, 256 max iters (paper: 4k x 4k)";
    ir =
      lazy
        (let width = 1024 and height = 1024 in
         let costs = Lazy.force mandelbrot_costs in
         Sim.Par_ir.for_nested ~n:height (fun row ->
             Sim.Par_ir.for_fn ~n:width (fun col ->
                 costs.((row * width) + col))));
    cilk_dilation_pct = 100;
    tpal_dilation_pct = 102;
    (* compute-bound, yet §4.3 reports Linux signal delivery cannot
       sustain the task-creation throughput mandelbrot needs — the
       kernel-path fraction is raised to model the observed signal
       shortfall (TPAL/Linux ~9.5x vs ~14x on Nautilus) *)
    mem_intensity = 0.55;
    bw_cap = infinity;
    cilk_bw_cap = infinity;
  }

(* kmeans — paper: Rodinia, 1 M objects.  Scaled: 300 K points, 4
   dims, 5 clusters, 8 Lloyd rounds; the assignment loop dominates.
   TPAL pays 17 % for its auxiliary centroid accumulator (§4.4);
   Cilk's reducer-based accumulation costs ~2.4× (Figure 6). *)
let kmeans =
  {
    name = "kmeans";
    kind = Iterative;
    descr = "300K points x 4 dims, k=5, 8 rounds (paper: 1M objects)";
    ir =
      lazy
        (let n = 300_000 and rounds = 8 in
         let assign_cost = 110 and update = n * 8 / 10 in
         Sim.Par_ir.seq
           (List.concat
              (List.init rounds (fun _ ->
                   [ Sim.Par_ir.for_const ~n ~cycles:assign_cost;
                     Sim.Par_ir.leaf update ]))));
    cilk_dilation_pct = 235;
    tpal_dilation_pct = 117;
    mem_intensity = 0.5;
    bw_cap = 6. (* point/centroid traffic saturates before 15x *);
    cilk_bw_cap = 6.;
  }

(* srad — paper: Rodinia, 4k × 4k.  Scaled: 1k × 1k, 8 iterations of
   two row-parallel sweeps plus a serial statistics pass. *)
let srad =
  {
    name = "srad";
    kind = Iterative;
    descr = "1k x 1k image, 8 iterations (paper: 4k items)";
    ir =
      lazy
        (let rows = 1_000 and cols = 1_000 and iters = 8 in
         Sim.Par_ir.seq
           (List.concat
              (List.init iters (fun _ ->
                   [ Sim.Par_ir.leaf (rows * cols * 3 / 2);
                     Sim.Par_ir.for_nested ~n:rows (fun _ ->
                         Sim.Par_ir.for_const ~n:cols ~cycles:22);
                     Sim.Par_ir.for_nested ~n:rows (fun _ ->
                         Sim.Par_ir.for_const ~n:cols ~cycles:12) ]))));
    cilk_dilation_pct = 405;
    tpal_dilation_pct = 104;
    mem_intensity = 0.6;
    bw_cap = 5. (* five-array stencil traffic *);
    cilk_bw_cap = 5.;
  }

(* floyd-warshall — paper: 1K and 2K vertices.  Scaled: 512 and 724.
   n sequential phases, each a row-parallel n × n relaxation with a
   serial inner loop (the paper's purely loop-based port).  The small
   input is the paper's showcase of Cilk's granularity heuristic
   failing: per-phase work is tiny, eager chunking drowns in task
   overhead (§4.3). *)
let floyd_warshall ~(label : string) ~(n : int) ~(cilk_dilation_pct : int)
    ~(cilk_bw_cap : float) =
  {
    name = "floyd-warshall-" ^ label;
    kind = Iterative;
    descr = Printf.sprintf "%d vertices (paper's size, unscaled)" n;
    ir =
      lazy
        (Sim.Par_ir.seq
           (List.init n (fun _k ->
                Sim.Par_ir.for_const ~n ~cycles:((n * 6) + 16))));
    cilk_dilation_pct;
    tpal_dilation_pct = 110;
    mem_intensity = 0.45;
    bw_cap = 5.0 (* streaming dist rows saturates well before 15x *);
    cilk_bw_cap;
  }

(* Unscaled: the phase-work / ♥ ratio is the whole point of this
   benchmark (§4.3), so the 1K and 2K vertex counts are kept as-is.
   Figure 6 measures 2.6x and 4.2x for Cilk; at scale Cilk's ~8-row
   chunks additionally thrash shared matrix rows (the §4.3 case study:
   82 % utilisation yet 67 % slower than TPAL). *)
let floyd_warshall_1k =
  floyd_warshall ~label:"1K" ~n:1_000 ~cilk_dilation_pct:240 ~cilk_bw_cap:2.3
let floyd_warshall_2k =
  floyd_warshall ~label:"2K" ~n:2_000 ~cilk_dilation_pct:400 ~cilk_bw_cap:3.3

(* ------------------------------------------------------------------ *)
(* Recursive benchmarks                                                *)
(* ------------------------------------------------------------------ *)

(* knapsack — paper: Cilk suite, 36 items; non-deterministic
   branch-and-bound.  The simulated tree reproduces the search shape:
   an irregular binary tree whose path depths vary with a per-path
   hash (pruning), ~1.3 M nodes of ~55 cycles (a bound evaluation is
   a short loop; "almost no computation besides recursive calls").
   TPAL's 51 % serial overhead is emergent: mark_cost per node on
   ~55-cycle nodes.  Superlinear effects from incumbent propagation
   are not modelled (documented in EXPERIMENTS.md). *)
let knapsack_tree : Sim.Par_ir.t =
  let hash x =
    let x = x * 0x9E3779B1 in
    let x = x lxor (x lsr 16) in
    x land 0x3FFFFFFF
  in
  let rec node (path : int) (budget : int) : Sim.Par_ir.t =
    if budget <= 0 then Sim.Par_ir.leaf 55
    else
      let h = hash (path + budget) in
      (* pruning: some subtrees die early, with irregular depth *)
      let cut = 1 + (h mod 3) in
      Sim.Par_ir.seq
        [ Sim.Par_ir.leaf 55;
          Sim.Par_ir.spawn2
            (fun () -> node ((path * 2) + 1) (budget - 1))
            (fun () -> node ((path * 2) + 2) (budget - cut)) ]
  in
  node 0 29

let knapsack =
  {
    name = "knapsack";
    kind = Recursive;
    descr = "~1.3M-node irregular B&B tree (paper: 36 items)";
    ir = lazy knapsack_tree;
    cilk_dilation_pct = 100;
    tpal_dilation_pct = 100;
    mem_intensity = 0.1;
    bw_cap = infinity;
    cilk_bw_cap = infinity;
  }

(* mergesort — paper: Cilk suite, 20 M ints, uniform & exponential.
   Scaled: 4 M.  Recursive sort and merge (spawn trees) plus the
   parallel copy loop; the exponential input skews merge costs. *)
let mergesort_ir ~(skew : bool) : Sim.Par_ir.t =
  let base = 10_000 in
  let leaf_cost = 14 and merge_cost = 4 and copy_cost = 2 in
  let rec sort (n : int) (depth : int) : Sim.Par_ir.t =
    if n <= base then Sim.Par_ir.leaf (n * leaf_cost)
    else
      let nl = if skew && depth mod 2 = 0 then n * 2 / 5 else n / 2 in
      let nr = n - nl in
      Sim.Par_ir.seq
        [ Sim.Par_ir.spawn2
            (fun () -> sort nl (depth + 1))
            (fun () -> sort nr (depth + 1));
          (* parallel merge + parallel copy of the merged run *)
          Sim.Par_ir.for_const ~n ~cycles:merge_cost;
          Sim.Par_ir.for_const ~n ~cycles:copy_cost ]
  in
  sort 4_000_000 0

let mergesort_uniform =
  {
    name = "mergesort-uniform";
    kind = Recursive;
    descr = "4M ints, uniform (paper: 20M)";
    ir = lazy (mergesort_ir ~skew:false);
    cilk_dilation_pct = 105;
    tpal_dilation_pct = 105;
    mem_intensity = 0.55;
    bw_cap = 2.1 (* merge passes are pure streaming over 20M ints *);
    cilk_bw_cap = 2.1;
  }

let mergesort_exp =
  {
    name = "mergesort-exp";
    kind = Recursive;
    descr = "4M ints, exponential (paper: 20M)";
    ir = lazy (mergesort_ir ~skew:true);
    cilk_dilation_pct = 105;
    tpal_dilation_pct = 105;
    mem_intensity = 0.55;
    bw_cap = 2.1;
    cilk_bw_cap = 2.1;
  }

(* ------------------------------------------------------------------ *)

(** The benchmark suite, in the paper's figure order. *)
let all : t list =
  [
    plus_reduce_array;
    spmv_random;
    spmv_powerlaw;
    spmv_arrowhead;
    mandelbrot;
    kmeans;
    srad;
    floyd_warshall_1k;
    floyd_warshall_2k;
    knapsack;
    mergesort_uniform;
    mergesort_exp;
  ]

let iterative : t list = List.filter (fun w -> w.kind = Iterative) all
let recursive : t list = List.filter (fun w -> w.kind = Recursive) all

let find (name : string) : t option =
  List.find_opt (fun w -> String.equal w.name name) all

(** Serial work of the workload in cycles (memoised via the lazy IR —
    recomputed per call; cheap relative to simulation). *)
let serial_work (w : t) : int = Sim.Par_ir.work (Lazy.force w.ir)
