(** plus-reduce-array: sum of a large float array — the paper's
    simplest iterative benchmark (100 million 64-bit doubles), whose
    entire difficulty is that the loop body is a single add, so any
    per-iteration scheduling cost dominates instantly. *)

(** Parallel sum by recursive range splitting down to [grain], with
    the executor's [fork2] (the parallel-reduction idiom the Cilk
    version expresses with a reducer). *)
let sum ?(grain = 8192) (module E : Exec.S) (a : float array) : float =
  let n = Array.length a in
  let rec go lo hi =
    if hi - lo <= grain then begin
      let acc = ref 0. in
      for i = lo to hi - 1 do
        acc := !acc +. a.(i)
      done;
      !acc
    end
    else begin
      let mid = (lo + hi) / 2 in
      let x = ref 0. and y = ref 0. in
      E.fork2 (fun () -> x := go lo mid) (fun () -> y := go mid hi);
      !x +. !y
    end
  in
  if n = 0 then 0. else go 0 n

let sum_serial (a : float array) : float = sum (module Exec.Serial) a

(** Deterministic input generator. *)
let input ~(rng : Sim.Prng.t) ~(n : int) : float array =
  Array.init n (fun _ -> Sim.Prng.float rng)
