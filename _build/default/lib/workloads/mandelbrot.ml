(** mandelbrot: escape-time rendering of a square window of the
    Mandelbrot set (the paper renders 4k × 4k).  Iteration counts vary
    wildly across pixels — interior points burn [max_iter] iterations,
    exterior ones escape quickly — making the nested pixel loops
    irregular. *)

type image = { width : int; height : int; pixels : int array }

(** Escape-time iteration count for point (cx, cy). *)
let escape_time ~(max_iter : int) (cx : float) (cy : float) : int =
  let rec go i x y =
    if i >= max_iter then max_iter
    else
      let x2 = x *. x and y2 = y *. y in
      if x2 +. y2 > 4.0 then i
      else go (i + 1) (x2 -. y2 +. cx) ((2.0 *. x *. y) +. cy)
  in
  go 0 0. 0.

(** Render the window [(x0,y0)–(x1,y1)], parallel over rows with a
    nested parallel loop over columns (the paper's structure). *)
let render ?(x0 = -2.0) ?(y0 = -1.5) ?(x1 = 1.0) ?(y1 = 1.5)
    ?(max_iter = 100) (module E : Exec.S) ~(width : int) ~(height : int) () :
    image =
  let pixels = Array.make (width * height) 0 in
  let dx = (x1 -. x0) /. float_of_int width in
  let dy = (y1 -. y0) /. float_of_int height in
  E.par_for ~lo:0 ~hi:height (fun row ->
      let cy = y0 +. (dy *. float_of_int row) in
      E.par_for ~lo:0 ~hi:width (fun col ->
          let cx = x0 +. (dx *. float_of_int col) in
          pixels.((row * width) + col) <- escape_time ~max_iter cx cy));
  { width; height; pixels }

let render_serial ~width ~height () : image =
  render (module Exec.Serial) ~width ~height ()

(** Checksum for cross-scheduler validation. *)
let checksum (img : image) : int = Array.fold_left ( + ) 0 img.pixels

(** Per-pixel cost in cycles for the simulator model: ~8 cycles per
    escape iteration (a couple of multiplies, adds and a compare). *)
let pixel_cost ?(cycles_per_iter = 8) ~(max_iter : int) ~(width : int)
    ~(height : int) (row : int) (col : int) : int =
  let x0 = -2.0 and y0 = -1.5 and x1 = 1.0 and y1 = 1.5 in
  let dx = (x1 -. x0) /. float_of_int width in
  let dy = (y1 -. y0) /. float_of_int height in
  let cx = x0 +. (dx *. float_of_int col) in
  let cy = y0 +. (dy *. float_of_int row) in
  8 + (cycles_per_iter * escape_time ~max_iter cx cy)
