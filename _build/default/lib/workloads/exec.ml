(** The parallel-execution interface benchmark kernels are written
    against, so the same kernel code runs serially, under the
    heartbeat effects runtime, or under any other scheduler.

    This mirrors the paper's source level: [par_for] is [cilk_for]
    (with an optional reduction) and [fork2] is
    [cilk_spawn]/[cilk_sync]. *)

module type S = sig
  val par_for : lo:int -> hi:int -> (int -> unit) -> unit
  (** Execute [f i] for [lo ≤ i < hi]; iterations may run in any order
      and concurrently. *)

  val fork2 : (unit -> unit) -> (unit -> unit) -> unit
  (** Run both thunks, possibly in parallel; returns when both
      finished. *)
end

(** The serial executor: the baseline the paper normalises against. *)
module Serial : S = struct
  let par_for ~lo ~hi f =
    for i = lo to hi - 1 do
      f i
    done

  let fork2 a b =
    a ();
    b ()
end
