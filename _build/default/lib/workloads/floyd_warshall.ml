(** floyd-warshall: all-pairs shortest paths, the paper's purely
    loop-based benchmark (1K and 2K vertex inputs).

    The [k] phases are inherently sequential; each phase relaxes the
    full n × n matrix in parallel.  The 1K input is the paper's case
    study of Cilk's granularity heuristic failing: per-phase work is
    small, so eager 8·P-chunking creates many tiny tasks whose
    overhead exceeds the work (§4.3). *)

let inf = max_int / 4

(** Random weighted digraph as a dense adjacency matrix with
    probability [density] per edge and weights in [1, max_w]. *)
let random_graph ~(rng : Sim.Prng.t) ~(n : int) ?(density = 0.3)
    ?(max_w = 100) () : int array array =
  Array.init n (fun i ->
      Array.init n (fun j ->
          if i = j then 0
          else if Sim.Prng.float rng < density then 1 + Sim.Prng.int rng max_w
          else inf))

(** In-place Floyd–Warshall over the distance matrix, phases serial,
    rows of each phase parallel.  In-place phase updates are safe
    because row [k] and column [k] are fixed points of phase [k]. *)
let run (module E : Exec.S) (dist : int array array) : unit =
  let n = Array.length dist in
  for k = 0 to n - 1 do
    E.par_for ~lo:0 ~hi:n (fun i ->
        let dik = dist.(i).(k) in
        if dik < inf then begin
          let row_i = dist.(i) and row_k = dist.(k) in
          for j = 0 to n - 1 do
            let via = dik + row_k.(j) in
            if via < row_i.(j) then row_i.(j) <- via
          done
        end)
  done

let run_serial (dist : int array array) : unit =
  run (module Exec.Serial) dist

(** Checksum for cross-scheduler validation. *)
let checksum (dist : int array array) : int =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun a d -> a + if d >= inf then 7 else d mod 1009) acc
        row)
    0 dist
