lib/workloads/plus_reduce.ml: Array Exec Sim
