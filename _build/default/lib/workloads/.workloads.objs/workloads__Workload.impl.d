lib/workloads/workload.ml: Array Lazy List Mandelbrot Printf Sim String
