lib/workloads/mergesort.ml: Array Exec Sim
