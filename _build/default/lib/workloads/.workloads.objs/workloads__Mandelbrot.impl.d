lib/workloads/mandelbrot.ml: Array Exec
