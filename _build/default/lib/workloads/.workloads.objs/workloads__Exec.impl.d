lib/workloads/exec.ml:
