lib/workloads/kmeans.ml: Array Exec Sim
