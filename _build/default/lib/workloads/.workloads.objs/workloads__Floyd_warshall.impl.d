lib/workloads/floyd_warshall.ml: Array Exec Sim
