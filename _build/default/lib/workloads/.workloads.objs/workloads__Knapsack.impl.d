lib/workloads/knapsack.ml: Array Exec Sim
