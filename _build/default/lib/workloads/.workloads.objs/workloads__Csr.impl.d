lib/workloads/csr.ml: Array Exec List Sim
