lib/workloads/srad.ml: Array Exec Float Sim
