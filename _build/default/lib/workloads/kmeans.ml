(** kmeans: Lloyd's algorithm, ported after the Rodinia benchmark the
    paper uses (1 million objects).  Each round assigns every point to
    its nearest centroid (the parallel loop) and recomputes centroids.

    The paper notes the TPAL version pays 17 % extra serial time for
    an auxiliary per-task accumulation structure (§4.4) — that
    constant is recorded in the workload registry, not here. *)

type t = {
  points : float array array;  (** [n][d] *)
  mutable centroids : float array array;  (** [k][d] *)
  assign : int array;  (** [n] *)
}

let create ~(rng : Sim.Prng.t) ~(n : int) ~(dims : int) ~(k : int) : t =
  let points =
    Array.init n (fun _ -> Array.init dims (fun _ -> Sim.Prng.float rng))
  in
  let centroids = Array.init k (fun i -> Array.copy points.(i * (n / k))) in
  { points; centroids; assign = Array.make n (-1) }

let dist2 (a : float array) (b : float array) : float =
  let acc = ref 0. in
  for j = 0 to Array.length a - 1 do
    let d = a.(j) -. b.(j) in
    acc := !acc +. (d *. d)
  done;
  !acc

(** One Lloyd round: parallel assignment, then a serial centroid
    update (the update is O(n·d) but memory-bound and cheap relative
    to assignment for moderate [k]). Returns the number of points
    whose assignment changed. *)
let round (module E : Exec.S) (st : t) : int =
  let n = Array.length st.points in
  let k = Array.length st.centroids in
  let dims = Array.length st.points.(0) in
  let changed = Array.make n 0 in
  E.par_for ~lo:0 ~hi:n (fun i ->
      let best = ref 0 and best_d = ref infinity in
      for c = 0 to k - 1 do
        let d = dist2 st.points.(i) st.centroids.(c) in
        if d < !best_d then begin
          best_d := d;
          best := c
        end
      done;
      if st.assign.(i) <> !best then changed.(i) <- 1;
      st.assign.(i) <- !best);
  (* centroid update *)
  let sums = Array.init k (fun _ -> Array.make dims 0.) in
  let counts = Array.make k 0 in
  for i = 0 to n - 1 do
    let c = st.assign.(i) in
    counts.(c) <- counts.(c) + 1;
    for j = 0 to dims - 1 do
      sums.(c).(j) <- sums.(c).(j) +. st.points.(i).(j)
    done
  done;
  st.centroids <-
    Array.init k (fun c ->
        if counts.(c) = 0 then st.centroids.(c)
        else Array.map (fun s -> s /. float_of_int counts.(c)) sums.(c));
  Array.fold_left ( + ) 0 changed

(** Run [rounds] Lloyd iterations; returns the final assignment
    churn (for convergence checks). *)
let run (module E : Exec.S) (st : t) ~(rounds : int) : int =
  let last = ref 0 in
  for _ = 1 to rounds do
    last := round (module E) st
  done;
  !last

(** Checksum over assignments for cross-scheduler validation. *)
let checksum (st : t) : int =
  let acc = ref 0 in
  Array.iteri (fun i c -> acc := !acc + ((i mod 97) * (c + 1))) st.assign;
  !acc
