(** Compressed-sparse-row matrices, with the paper's three input
    classes (§4.1):

    - {!random}: uniformly random rows, maximum row length 100;
    - {!powerlaw}: Zipf-distributed row lengths — the largest row holds
      a few percent of all non-zeros, stressing irregular nested
      parallelism;
    - {!arrowhead}: non-zeros on the diagonal, first row and first
      column — "particularly challenging for task scheduling"
      [Tessem 2013] because one row dwarfs all others.

    The [spmv] kernel is the classic CSR sparse-matrix × dense-vector
    product, parallel over rows with a nested (parallelisable)
    reduction per row. *)

type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array;  (** length [nrows + 1] *)
  col_idx : int array;  (** length [nnz] *)
  values : float array;  (** length [nnz] *)
}

let nnz (m : t) : int = m.row_ptr.(m.nrows)
let row_length (m : t) (r : int) : int = m.row_ptr.(r + 1) - m.row_ptr.(r)

(** Build a CSR matrix from per-row (column, value) lists; the lists
    need not be sorted — they are sorted and deduplicated here. *)
let of_rows ~(ncols : int) (rows : (int * float) list array) : t =
  let nrows = Array.length rows in
  let clean =
    Array.map
      (fun entries ->
        let sorted =
          List.sort_uniq (fun (c1, _) (c2, _) -> compare c1 c2) entries
        in
        sorted)
      rows
  in
  let row_ptr = Array.make (nrows + 1) 0 in
  for r = 0 to nrows - 1 do
    row_ptr.(r + 1) <- row_ptr.(r) + List.length clean.(r)
  done;
  let total = row_ptr.(nrows) in
  let col_idx = Array.make total 0 in
  let values = Array.make total 0. in
  Array.iteri
    (fun r entries ->
      List.iteri
        (fun k (c, v) ->
          if c < 0 || c >= ncols then invalid_arg "Csr.of_rows: column range";
          col_idx.(row_ptr.(r) + k) <- c;
          values.(row_ptr.(r) + k) <- v)
        entries)
    clean;
  { nrows; ncols; row_ptr; col_idx; values }

(** Uniformly random sparse matrix: every row non-empty, row lengths
    uniform in [1, max_row_len] (the paper's random matrix has maximum
    column size 100). *)
let random ~(rng : Sim.Prng.t) ~(nrows : int) ~(ncols : int)
    ~(max_row_len : int) : t =
  let rows =
    Array.init nrows (fun _ ->
        let len = 1 + Sim.Prng.int rng max_row_len in
        List.init len (fun _ ->
            (Sim.Prng.int rng ncols, Sim.Prng.float rng)))
  in
  of_rows ~ncols rows

(** Power-law matrix: row lengths follow a Zipf distribution with
    exponent [s]; the head rows are orders of magnitude longer than
    the tail (the paper's powerlaw matrix has a single row holding 3 %
    of all non-zeros). *)
let powerlaw ~(rng : Sim.Prng.t) ~(nrows : int) ~(ncols : int)
    ~(max_row_len : int) ?(s = 1.9) () : t =
  let rows =
    Array.init nrows (fun r ->
        (* rank-based lengths: row r gets ~ max_row_len / (r+1)^(s-?) ;
           randomised assignment keeps heavy rows scattered *)
        let rank = 1 + Sim.Prng.int rng nrows in
        let len =
          max 1
            (int_of_float
               (float_of_int max_row_len /. (float_of_int rank ** (s -. 1.))))
        in
        let len = min len ncols in
        ignore r;
        List.init len (fun _ ->
            (Sim.Prng.int rng ncols, Sim.Prng.float rng)))
  in
  of_rows ~ncols rows

(** Arrowhead matrix: dense diagonal, dense first row, dense first
    column. *)
let arrowhead ~(n : int) : t =
  let rows =
    Array.init n (fun r ->
        if r = 0 then List.init n (fun c -> (c, 1.0))
        else [ (0, 1.0); (r, 1.0) ])
  in
  of_rows ~ncols:n rows

(** [spmv (module E) m x y] computes [y = m · x], parallel over rows.
    Long rows (≥ [row_grain]) compute their dot product with a nested
    parallel reduction, mirroring the paper's nested-loop spmv. *)
let spmv ?(row_grain = 4096) (module E : Exec.S) (m : t) (x : float array)
    (y : float array) : unit =
  if Array.length x < m.ncols || Array.length y < m.nrows then
    invalid_arg "Csr.spmv: vector size";
  E.par_for ~lo:0 ~hi:m.nrows (fun r ->
      let lo = m.row_ptr.(r) and hi = m.row_ptr.(r + 1) in
      if hi - lo < row_grain then begin
        let acc = ref 0. in
        for k = lo to hi - 1 do
          acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
        done;
        y.(r) <- !acc
      end
      else begin
        (* nested parallel reduction over a long row *)
        let rec sum lo hi =
          if hi - lo < row_grain then begin
            let acc = ref 0. in
            for k = lo to hi - 1 do
              acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
            done;
            !acc
          end
          else begin
            let mid = (lo + hi) / 2 in
            let a = ref 0. and b = ref 0. in
            E.fork2 (fun () -> a := sum lo mid) (fun () -> b := sum mid hi);
            !a +. !b
          end
        in
        y.(r) <- sum lo hi
      end)

(** Serial reference for cross-checking. *)
let spmv_serial (m : t) (x : float array) : float array =
  let y = Array.make m.nrows 0. in
  spmv (module Exec.Serial) m x y;
  y

(** Simulator cost model: the per-row iteration cost of spmv in
    cycles, [cost_per_nnz] per non-zero plus a fixed row cost.  Used
    by the workload registry to build {!Sim.Par_ir} programs whose
    irregularity matches the actual generated matrix. *)
let row_cost ?(cost_per_nnz = 10) ?(row_fixed = 14) (m : t) (r : int) : int =
  row_fixed + (cost_per_nnz * row_length m r)
