(** srad: Speckle-Reducing Anisotropic Diffusion, ported after the
    Rodinia benchmark the paper uses (4k × 4k input matrix).

    Each iteration makes two sweeps over the image: first computing
    the diffusion coefficient from local gradients and the global
    statistics of a reference window, then updating the image by the
    divergence of the coefficient-weighted gradients.  Both sweeps are
    parallel over rows with nested column loops. *)

type t = {
  rows : int;
  cols : int;
  image : float array;  (** rows × cols, row-major *)
  coeff : float array;  (** diffusion coefficient c *)
  dn : float array;
  ds : float array;
  dw : float array;
  de : float array;
}

let create ~(rng : Sim.Prng.t) ~(rows : int) ~(cols : int) : t =
  let n = rows * cols in
  {
    rows;
    cols;
    image = Array.init n (fun _ -> exp (Sim.Prng.float rng));
    coeff = Array.make n 0.;
    dn = Array.make n 0.;
    ds = Array.make n 0.;
    dw = Array.make n 0.;
    de = Array.make n 0.;
  }

let idx (st : t) r c = (r * st.cols) + c

(* Rodinia clamps neighbours at the borders. *)
let north _st r = if r = 0 then 0 else r - 1
let south st r = if r = st.rows - 1 then r else r + 1
let west _ c = if c = 0 then 0 else c - 1
let east st c = if c = st.cols - 1 then c else c + 1

(** One SRAD iteration with diffusion parameter [lambda]. *)
let iteration ?(lambda = 0.5) (module E : Exec.S) (st : t) : unit =
  (* global statistics over the whole image (Rodinia uses a reference
     window; whole-image statistics keep the kernel deterministic
     without changing its parallel structure) *)
  let n = st.rows * st.cols in
  let sum = ref 0. and sum2 = ref 0. in
  for i = 0 to n - 1 do
    sum := !sum +. st.image.(i);
    sum2 := !sum2 +. (st.image.(i) *. st.image.(i))
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  let q0s = var /. (mean *. mean) in
  (* sweep 1: gradients and diffusion coefficient *)
  E.par_for ~lo:0 ~hi:st.rows (fun r ->
      for c = 0 to st.cols - 1 do
        let k = idx st r c in
        let jc = st.image.(k) in
        let dn = st.image.(idx st (north st r) c) -. jc in
        let ds = st.image.(idx st (south st r) c) -. jc in
        let dw = st.image.(idx st r (west st c)) -. jc in
        let de = st.image.(idx st r (east st c)) -. jc in
        st.dn.(k) <- dn;
        st.ds.(k) <- ds;
        st.dw.(k) <- dw;
        st.de.(k) <- de;
        let g2 =
          ((dn *. dn) +. (ds *. ds) +. (dw *. dw) +. (de *. de)) /. (jc *. jc)
        in
        let l = (dn +. ds +. dw +. de) /. jc in
        let num = (0.5 *. g2) -. (1.0 /. 16.0 *. l *. l) in
        let den = 1.0 +. (0.25 *. l) in
        let qsqr = num /. (den *. den) in
        let d = (qsqr -. q0s) /. (q0s *. (1.0 +. q0s)) in
        let c' = 1.0 /. (1.0 +. d) in
        st.coeff.(k) <- Float.max 0.0 (Float.min 1.0 c')
      done);
  (* sweep 2: divergence update *)
  E.par_for ~lo:0 ~hi:st.rows (fun r ->
      for c = 0 to st.cols - 1 do
        let k = idx st r c in
        let cn = st.coeff.(k) in
        let cs = st.coeff.(idx st (south st r) c) in
        let cw = st.coeff.(k) in
        let ce = st.coeff.(idx st r (east st c)) in
        let d =
          (cn *. st.dn.(k)) +. (cs *. st.ds.(k)) +. (cw *. st.dw.(k))
          +. (ce *. st.de.(k))
        in
        st.image.(k) <- st.image.(k) +. (0.25 *. lambda *. d)
      done)

let run (module E : Exec.S) (st : t) ~(iterations : int) : unit =
  for _ = 1 to iterations do
    iteration (module E) st
  done

(** Checksum for cross-scheduler validation (sum of the image,
    rounded to tolerate benign float reassociation). *)
let checksum (st : t) : float = Array.fold_left ( +. ) 0. st.image
