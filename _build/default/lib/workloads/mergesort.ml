(** mergesort: the paper's mixed recursive-and-loop benchmark (20
    million ints, uniform and exponential inputs): the sort and the
    merge are recursive divide-and-conquer, and a parallel copy loop
    moves items between the buffer and the array — so it exercises
    both promotion of stack marks and promotion of loop ranges. *)

(** Deterministic inputs matching the paper's two distributions. *)
let uniform_input ~(rng : Sim.Prng.t) ~(n : int) : int array =
  Array.init n (fun _ -> Sim.Prng.int rng 1_000_000_000)

let exponential_input ~(rng : Sim.Prng.t) ~(n : int) : int array =
  Array.init n (fun _ ->
      int_of_float (Sim.Prng.exponential rng ~mean:100_000.))

let insertion_sort (a : int array) (lo : int) (hi : int) : unit =
  for i = lo + 1 to hi - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= lo && a.(!j) > x do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

(* Serial sort of a segment: insertion sort for tiny ranges, the
   stdlib's introsort above that (leaves are up to [grain] elements,
   where insertion sort would be quadratic). *)
let seq_sort (a : int array) (lo : int) (hi : int) : unit =
  if hi - lo <= 32 then insertion_sort a lo hi
  else begin
    let seg = Array.sub a lo (hi - lo) in
    Array.sort compare seg;
    Array.blit seg 0 a lo (hi - lo)
  end

(* Binary search for the first index in [lo,hi) with a.(i) >= key. *)
let lower_bound (a : int array) (lo : int) (hi : int) (key : int) : int =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < key then lo := mid + 1 else hi := mid
  done;
  !lo

(** Parallel merge of [src[lo1,hi1)] and [src[lo2,hi2)] into
    [dst[dlo..)]: recursive splitting on the larger half's median, as
    in the classic work-efficient parallel merge. *)
let rec merge_par (module E : Exec.S) ~(grain : int) (src : int array)
    (lo1 : int) (hi1 : int) (lo2 : int) (hi2 : int) (dst : int array)
    (dlo : int) : unit =
  let n1 = hi1 - lo1 and n2 = hi2 - lo2 in
  if n1 + n2 <= grain then begin
    (* serial merge *)
    let i = ref lo1 and j = ref lo2 and k = ref dlo in
    while !i < hi1 && !j < hi2 do
      if src.(!i) <= src.(!j) then begin
        dst.(!k) <- src.(!i);
        incr i
      end
      else begin
        dst.(!k) <- src.(!j);
        incr j
      end;
      incr k
    done;
    while !i < hi1 do
      dst.(!k) <- src.(!i);
      incr i;
      incr k
    done;
    while !j < hi2 do
      dst.(!k) <- src.(!j);
      incr j;
      incr k
    done
  end
  else if n1 >= n2 then begin
    let mid1 = (lo1 + hi1) / 2 in
    let mid2 = lower_bound src lo2 hi2 src.(mid1) in
    let dmid = dlo + (mid1 - lo1) + (mid2 - lo2) in
    E.fork2
      (fun () -> merge_par (module E) ~grain src lo1 mid1 lo2 mid2 dst dlo)
      (fun () -> merge_par (module E) ~grain src mid1 hi1 mid2 hi2 dst dmid)
  end
  else merge_par (module E) ~grain src lo2 hi2 lo1 hi1 dst dlo

(** Parallel copy loop — the paper notes this is the one place
    mergesort uses loop parallelism rather than recursion. *)
let copy_par (module E : Exec.S) (src : int array) (dst : int array)
    (lo : int) (hi : int) : unit =
  E.par_for ~lo ~hi (fun i -> dst.(i) <- src.(i))

(** [sort (module E) a] sorts [a] in place. *)
let sort ?(grain = 2048) (module E : Exec.S) (a : int array) : unit =
  let n = Array.length a in
  let buf = Array.make n 0 in
  (* sort a[lo,hi) leaving the result in [a] when [to_a], in [buf]
     otherwise *)
  let rec go lo hi ~to_a =
    if hi - lo <= grain then begin
      seq_sort a lo hi;
      if not to_a then copy_par (module E) a buf lo hi
    end
    else begin
      let mid = (lo + hi) / 2 in
      E.fork2
        (fun () -> go lo mid ~to_a:(not to_a))
        (fun () -> go mid hi ~to_a:(not to_a));
      let src = if to_a then buf else a in
      let dst = if to_a then a else buf in
      merge_par (module E) ~grain src lo mid mid hi dst lo
    end
  in
  if n > 1 then go 0 n ~to_a:true

let sorted (a : int array) : bool =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) > a.(i) then ok := false
  done;
  !ok

(** Checksum for cross-scheduler validation (order-sensitive). *)
let checksum (a : int array) : int =
  let acc = ref 0 in
  Array.iteri (fun i x -> acc := !acc + (x lxor (i * 1_000_003))) a;
  !acc
