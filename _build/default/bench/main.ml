(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Figures 6–15, the headline numbers, the tuner
   and the promotion-policy ablation) on the simulated testbed, then
   runs a Bechamel microbenchmark suite over the core primitives that
   those experiments exercise.

   Output shape: one aligned table + CSV block per figure, in paper
   order; see EXPERIMENTS.md for the measured-vs-paper discussion.

   Set REPRO_QUICK=1 to skip the (slow) full figure regeneration and
   run only the Bechamel suite. *)

let run_figures () =
  print_endline
    "=== TPAL reproduction: regenerating all evaluation figures ===";
  print_endline
    "(simulated 15-worker testbed; see DESIGN.md for the substitution \
     rationale)";
  let t0 = Unix.gettimeofday () in
  List.iter Repro.Figures.print_table (Repro.Figures.all ());
  Printf.printf "=== figures regenerated in %.1f s ===\n%!"
    (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: the primitive operations underlying the
   experiments — abstract-machine evaluation, promotion, simulator
   engine throughput, runtime substrate operations. *)

open Bechamel
open Toolkit

let test_prod_serial =
  Test.make ~name:"eval: prod a=200 serial (abstract machine)"
    (Staged.stage (fun () ->
         Tpal.Programs.run_prod
           ~options:{ Tpal.Eval.default_options with heart = None }
           ~a:200 ~b:3 ()
         |> ignore))

let test_prod_heartbeat =
  Test.make ~name:"eval: prod a=200 heart=20 (promotions+forks)"
    (Staged.stage (fun () ->
         Tpal.Programs.run_prod
           ~options:{ Tpal.Eval.default_options with heart = Some 20 }
           ~a:200 ~b:3 ()
         |> ignore))

let test_fib_heartbeat =
  Test.make ~name:"eval: fib n=12 heart=50 (stack promotions)"
    (Staged.stage (fun () ->
         Tpal.Programs.run_fib
           ~options:{ Tpal.Eval.default_options with heart = Some 50 }
           ~n:12 ()
         |> ignore))

let test_parse =
  let src = Tpal.Printer.program_to_string Tpal.Programs.pow in
  Test.make ~name:"parser: pow round-trip source"
    (Staged.stage (fun () -> Tpal.Parser.parse src |> ignore))

let small_ir = Sim.Par_ir.for_const ~n:100_000 ~cycles:10

let engine_test ~name mode mech =
  Test.make ~name
    (Staged.stage (fun () ->
         let params = { Sim.Params.default with procs = 15 } in
         let cfg = Sim.Runnable.make_cfg mode params in
         let config = Sim.Engine.make_config ~mech cfg in
         Sim.Engine.run config small_ir |> ignore))

let test_engine_serial =
  engine_test ~name:"engine: 1M-cycle loop, serial" Sim.Runnable.Serial
    Sim.Interrupts.Off

let test_engine_cilk =
  engine_test ~name:"engine: 1M-cycle loop, cilk 15 cores" Sim.Runnable.Cilk
    Sim.Interrupts.Off

let test_engine_tpal =
  engine_test ~name:"engine: 1M-cycle loop, tpal 15 cores + ping thread"
    Sim.Runnable.Tpal Sim.Interrupts.Ping_thread

let test_deque =
  Test.make ~name:"substrate: wsdeque push/pop x1000"
    (Staged.stage (fun () ->
         let d = Sim.Wsdeque.create () in
         for i = 0 to 999 do
           Sim.Wsdeque.push_bottom d i
         done;
         for _ = 0 to 999 do
           Sim.Wsdeque.pop_bottom d |> ignore
         done))

let test_eventq =
  Test.make ~name:"substrate: event queue add/pop x1000"
    (Staged.stage (fun () ->
         let q = Sim.Eventq.create ~dummy:0 in
         let rng = Sim.Prng.create ~seed:7 in
         for i = 0 to 999 do
           Sim.Eventq.add q ~time:(Sim.Prng.int rng 100_000) i
         done;
         while not (Sim.Eventq.is_empty q) do
           Sim.Eventq.pop q |> ignore
         done))

let benchmark () =
  let tests =
    [
      test_prod_serial;
      test_prod_heartbeat;
      test_fib_heartbeat;
      test_parse;
      test_engine_serial;
      test_engine_cilk;
      test_engine_tpal;
      test_deque;
      test_eventq;
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  print_endline "\n=== Bechamel microbenchmarks (core primitives) ===";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] -> Printf.printf "%-55s %12.1f ns/run\n%!" name t
          | _ -> Printf.printf "%-55s (no estimate)\n%!" name)
        results)
    tests

let () =
  if Sys.getenv_opt "REPRO_QUICK" = None then run_figures ();
  benchmark ()
