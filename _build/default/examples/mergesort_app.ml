(* mergesort: the paper's mixed recursive-and-loop benchmark — the
   sort and merge expose parallelism by divide-and-conquer (promotable
   stack marks), the copy loop by a parallel for (promotable ranges).

   Run with:  dune exec examples/mergesort_app.exe *)

module Hb : Workloads.Exec.S = struct
  let par_for = Heartbeat.Hb_runtime.par_for
  let fork2 = Heartbeat.Hb_runtime.fork2
end

let () =
  let rng = Sim.Prng.create ~seed:99 in
  let n = 1_000_000 in
  let uniform = Workloads.Mergesort.uniform_input ~rng ~n in
  let expo = Workloads.Mergesort.exponential_input ~rng ~n in

  List.iter
    (fun (name, input) ->
      let a = Array.copy input in
      let reference = Array.copy input in
      Workloads.Mergesort.sort (module Workloads.Exec.Serial) reference;
      let (), st =
        Heartbeat.Hb_runtime.run
          ~config:
            { Heartbeat.Hb_runtime.default_config with
              heart_us = 100.;
              source = `Ping_thread }
          (fun () -> Workloads.Mergesort.sort ~grain:4096 (module Hb) a)
      in
      Printf.printf
        "%-12s %d ints: sorted=%b matches-serial=%b | beats=%d promotions=%d \
         (branch=%d loop=%d) joins=%d peak-queue=%d\n%!"
        name n
        (Workloads.Mergesort.sorted a)
        (a = reference) st.beats st.promotions st.branch_promotions
        st.loop_promotions st.joins st.max_queue)
    [ ("uniform", uniform); ("exponential", expo) ];

  (* Figure 7 shape for mergesort on the simulated testbed: both
     schedulers hit the memory-bandwidth wall (~2x). *)
  print_newline ();
  List.iter
    (fun name ->
      let w = Option.get (Workloads.Workload.find name) in
      Printf.printf "%-18s  Cilk %5.2fx   TPAL/Linux %5.2fx (simulated)\n"
        w.name
        (Repro.Runner.speedup Repro.Runner.Cilk_sys w)
        (Repro.Runner.speedup Repro.Runner.Tpal_linux w))
    [ "mergesort-uniform"; "mergesort-exp" ]
