(* Quickstart: build the paper's running example (prod, Figure 2) with
   the Builder DSL, run it serially and under heartbeat scheduling,
   inspect the cost semantics, and round-trip it through the textual
   assembly syntax.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. The canned paper program: c = a * b by repeated addition. *)
  let program = Tpal.Programs.prod in

  (* 2. Irrevocably sequential execution: heartbeat off. *)
  let serial = { Tpal.Eval.default_options with heart = None } in
  (match Tpal.Programs.run_prod ~options:serial ~a:1000 ~b:7 () with
  | Ok (c, fin) ->
      Fmt.pr "serial:    c = %d  (%d instructions, %d forks)@." c
        fin.stats.instructions fin.stats.forks
  | Error e -> Fmt.epr "error: %a@." Tpal.Machine_error.pp e);

  (* 3. The same binary under heartbeat scheduling: promotions fire
     every ♥ = 50 cycles at the promotion-ready loop header, forking
     half the remaining iterations each time. *)
  let beating = { Tpal.Eval.default_options with heart = Some 50 } in
  (match Tpal.Programs.run_prod ~options:beating ~a:1000 ~b:7 () with
  | Ok (c, fin) ->
      Fmt.pr
        "heartbeat: c = %d  (%d instructions, %d promotions, %d forks, %d \
         joins)@."
        c fin.stats.instructions fin.stats.promotions fin.stats.forks
        fin.stats.join_continues;
      (* 4. The cost semantics (Figure 28): work, span and the implied
         average parallelism of this execution's cost graph. *)
      Fmt.pr "cost:      %a  → parallelism %.1f@." Tpal.Cost.pp_summary
        fin.cost
        (Tpal.Cost.parallelism fin.cost)
  | Error e -> Fmt.epr "error: %a@." Tpal.Machine_error.pp e);

  (* 5. Programs are plain data: print the assembly, parse it back,
     check it statically. *)
  let source = Tpal.Printer.program_to_string program in
  Fmt.pr "@.--- prod in concrete syntax (first 6 lines) ---@.";
  String.split_on_char '\n' source
  |> List.filteri (fun i _ -> i < 6)
  |> List.iter print_endline;
  match Tpal.Parser.parse_result source with
  | Ok reparsed ->
      Fmt.pr "round-trips: %b; checker diagnostics: %d@."
        (Tpal.Ast.equal_program reparsed program)
        (List.length (Tpal.Check.check reparsed))
  | Error e -> Fmt.epr "parse error: %s@." e
