(* fib at the assembly level: the paper's Appendix-B program with an
   explicit call stack, promotion-ready marks, prmsplit promotion of
   the oldest frame, and joink continuations — traced step by step —
   next to the same recursion under the effects runtime.

   Run with:  dune exec examples/fib_tpal.exe *)

let () =
  (* 1. Abstract machine, serial. *)
  let serial = { Tpal.Eval.default_options with heart = None } in
  (match Tpal.Programs.run_fib ~options:serial ~n:20 () with
  | Ok (f, fin) ->
      Fmt.pr "fib(20) serial: %d (%d instructions)@." f fin.stats.instructions
  | Error e -> Fmt.epr "error: %a@." Tpal.Machine_error.pp e);

  (* 2. Abstract machine with heartbeats: stack-mark promotions. *)
  let beating = { Tpal.Eval.default_options with heart = Some 100 } in
  (match Tpal.Programs.run_fib ~options:beating ~n:20 () with
  | Ok (f, fin) ->
      Fmt.pr
        "fib(20) heartbeat: %d | promotions=%d forks=%d joins=%d work=%d \
         span=%d@."
        f fin.stats.promotions fin.stats.forks fin.stats.join_continues
        fin.cost.work fin.cost.span
  | Error e -> Fmt.epr "error: %a@." Tpal.Machine_error.pp e);

  (* 3. A short trace around the first promotion (Appendix D style). *)
  Fmt.pr "@.--- first promotion of fib(6), heart=40 ---@.";
  let entries, _ =
    Tpal.Trace.collect ~watch_regs:[ "n"; "f"; "top" ] ~limit:2000
      ~options:{ Tpal.Eval.default_options with heart = Some 40 }
      Tpal.Programs.fib
      [ ("n", Tpal.Value.Vint 6) ]
  in
  let around_promotion =
    let rec go i = function
      | [] -> []
      | (e : Tpal.Trace.entry) :: rest ->
          if String.length e.what > 4 && String.sub e.what 0 4 = "[try" then
            List.filteri (fun j _ -> j < 14) ((e : Tpal.Trace.entry) :: rest)
          else go (i + 1) rest
    in
    go 0 entries
  in
  print_endline (Tpal.Trace.to_string around_promotion);

  (* 4. The same recursion under the real effects runtime. *)
  let rec fib n =
    if n < 2 then n
    else begin
      let x = ref 0 and y = ref 0 in
      Heartbeat.Hb_runtime.fork2
        (fun () -> x := fib (n - 1))
        (fun () -> y := fib (n - 2));
      !x + !y
    end
  in
  let f, st =
    Heartbeat.Hb_runtime.run
      ~config:
        { Heartbeat.Hb_runtime.default_config with
          heart_us = 50.;
          source = `Polling }
      (fun () -> fib 30)
  in
  Fmt.pr
    "@.fib(30) effects runtime: %d | beats=%d promotions=%d joins=%d@." f
    st.beats st.promotions st.joins
