examples/fib_tpal.ml: Fmt Heartbeat List String Tpal
