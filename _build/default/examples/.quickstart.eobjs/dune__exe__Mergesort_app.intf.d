examples/mergesort_app.mli:
