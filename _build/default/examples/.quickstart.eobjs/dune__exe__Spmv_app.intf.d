examples/spmv_app.mli:
