examples/mergesort_app.ml: Array Heartbeat List Option Printf Repro Sim Workloads
