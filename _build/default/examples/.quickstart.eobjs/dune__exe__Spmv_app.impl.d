examples/spmv_app.ml: Array Float Heartbeat Option Printf Repro Sim Workloads
