examples/quickstart.mli:
