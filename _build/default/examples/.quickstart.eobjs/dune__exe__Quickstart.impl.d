examples/quickstart.ml: Fmt List String Tpal
