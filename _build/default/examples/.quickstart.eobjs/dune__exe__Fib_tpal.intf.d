examples/fib_tpal.mli:
