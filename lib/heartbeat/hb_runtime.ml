(** A real heartbeat-scheduling runtime for OCaml computations, built
    on OCaml 5 effect handlers.

    This is the executable counterpart of the paper's C++ runtime
    (§3): user code exposes {e latent} parallelism through {!par_for}
    and {!fork2}, which run {e serially by default}; on each heartbeat
    the runtime {e promotes} the outermost latent construct of the
    running computation into a real task.  Joins suspend the waiting
    computation with an effect, so promotion costs nothing on the
    serial fast path — the near-zero-cost-abstraction property TPAL is
    designed around.

    Correspondence to the paper's machinery:
    - the promotion-ready mark list (§B.2) is the task's {!marks}
      stack, one entry per live [fork2]/[par_for] frame;
    - heartbeat interrupts are software polls ({!poll}) at
      promotion-ready program points — loop headers and spawn/join
      sites (the rollforward-equivalent: a poll can only land where
      promotion is legal, by construction);
    - the beat comes from a {e ping thread} (a real OS thread setting
      a flag every ♥ µs, as in §3.4) or from direct clock polling;
    - join records are {!join} values; join resolution resumes the
      suspended continuation of the parent when its last child
      finishes, and loop promotions of a child share the original
      join record, exactly like [loop-par-try-promote] in the paper's
      prod program.

    The scheduler is single-domain (promoted tasks interleave on one
    core — the container has one CPU): real parallel speedup is not
    measurable here, but every promotion, suspension and join takes
    the real code path, and the queue discipline (FIFO — oldest,
    outermost task first) matches the paper's steal order. *)

type join = {
  mutable pending : int;  (** outstanding promoted children *)
  mutable waiter : (unit, unit) Effect.Deep.continuation option;
  mutable waiter_marks : entry list ref option;
      (** the suspended task's mark list, restored on resume *)
}

and branch_state = { mutable thunk : (unit -> unit) option; bjr : join }

and loop_state = {
  mutable lo : int;
  mutable hi : int;
  f : int -> unit;
  ljr : join;
}

(** Promotion-ready marks: one per live promotable construct. *)
and entry = E_branch of branch_state | E_loop of loop_state

type marks = entry list ref

type task = { run : unit -> unit; marks : marks }

(** Observability hook: the real-runtime mirror of the simulator's
    {!Sim.Sim_trace} events, fired synchronously from the scheduler's
    own code path (so the callback must be cheap and must not call
    back into the runtime). *)
type event =
  | Beat  (** a heartbeat observed at a promotion-ready point *)
  | Promoted of [ `Loop | `Branch ]
  | Join_suspend  (** a computation suspended on a join record *)
  | Join_resume  (** a suspended computation resumed by its last child *)
  | Task_start  (** a promoted task begins execution *)
  | Task_finish
  | Stall_detected of { missed_beats : int }
      (** the lease watchdog: the gap since the previous
          promotion-ready point exceeded the task-lease TTL
          ([lease_beats]·♥) — the mirror of the simulator's
          lease-expiry sweep.  In this single-domain runtime nothing
          is re-executed (the stalled computation {e is} the only
          computation); the event surfaces the stall so a supervisor
          can react. *)

type config = {
  heart_us : float;  (** ♥ in microseconds *)
  source : [ `Ping_thread | `Polling ];
      (** beat source: a dedicated thread flipping a flag every ♥
          (the Linux ping thread of §3.4), or direct clock polling *)
  poll_stride : int;
      (** loop iterations between polls, amortising the poll cost on
          very fine-grained loops *)
  lease_beats : int;
      (** lease watchdog TTL in heartbeat periods; [0] (the default)
          disables the watchdog and its clock reads entirely
          (pay-for-use, like the simulator's recovery layer) *)
  on_event : (event -> unit) option;
      (** scheduling-event hook; [None] = tracing off (no overhead
          beyond one match per event site) *)
}

let default_config =
  { heart_us = 100.; source = `Ping_thread; poll_stride = 32; lease_beats = 0;
    on_event = None }

(** A scheduler-invariant violation, carrying the classified machine
    fault (the runtime's states map onto the abstract machine's). *)
exception Machine_fault of Tpal.Machine_error.t

type stats = {
  beats : int;  (** heartbeats observed at promotion-ready points *)
  promotions : int;  (** tasks created by promotion *)
  loop_promotions : int;
  branch_promotions : int;
  joins : int;  (** suspensions on a join record *)
  max_queue : int;  (** peak length of the promoted-task queue *)
  stalls_detected : int;  (** lease-watchdog trips (0 with watchdog off) *)
}

type state = {
  cfg : config;
  queue : task Queue.t;
  mutable current_marks : marks;
  mutable beat_flag : bool;
  mutable last_beat : float;
  mutable ticker_stop : bool;
  mutable st_beats : int;
  mutable st_promotions : int;
  mutable st_loop_promotions : int;
  mutable st_branch_promotions : int;
  mutable st_joins : int;
  mutable st_max_queue : int;
  mutable last_poll : float;  (** previous promotion-ready point (lease renewal) *)
  mutable st_stalls : int;
}

let state : state option ref = ref None

let get_state () : state =
  match !state with
  | Some s -> s
  | None ->
      invalid_arg "Hb_runtime: par_for/fork2 used outside Hb_runtime.run"

type _ Effect.t += Wait : join -> unit Effect.t

let fresh_join () = { pending = 0; waiter = None; waiter_marks = None }

let fire (s : state) (e : event) : unit =
  match s.cfg.on_event with None -> () | Some f -> f e

(* A promoted child finished: resolve the join; the last arrival
   resumes the suspended parent (with its mark list restored). *)
let finish (s : state) (jr : join) : unit =
  jr.pending <- jr.pending - 1;
  if jr.pending = 0 then
    match jr.waiter with
    | None -> ()
    | Some k ->
        jr.waiter <- None;
        let m = Option.get jr.waiter_marks in
        jr.waiter_marks <- None;
        s.current_marks <- m;
        fire s Join_resume;
        Effect.Deep.continue k ()

let push_mark (s : state) (e : entry) : unit =
  s.current_marks := e :: !(s.current_marks)

let describe_entry : entry -> string = function
  | E_branch { thunk = Some _; _ } -> "a branch mark (unpromoted)"
  | E_branch { thunk = None; _ } -> "a branch mark (promoted)"
  | E_loop { lo; hi; _ } -> Printf.sprintf "a loop mark [%d, %d)" lo hi

(* Marks obey strict LIFO nesting: the entry being removed is always
   the innermost.  A violation means a scheduler bug; surface the
   offending state as a typed fault instead of asserting. *)
let pop_mark (s : state) (e : entry) : unit =
  match !(s.current_marks) with
  | top :: rest when top == e -> s.current_marks := rest
  | wrong ->
      let got =
        match wrong with
        | [] -> "an empty mark list"
        | top :: _ -> describe_entry top
      in
      raise
        (Machine_fault
           (Tpal.Machine_error.Mark_corruption
              { context = "pop_mark"; expected = describe_entry e; got }))

let enqueue (s : state) (t : task) : unit =
  Queue.add t s.queue;
  s.st_max_queue <- max s.st_max_queue (Queue.length s.queue)

(* [promote]: split the outermost (least-recent) promotable entry of
   the running task — the paper's outermost-first policy.  Loop
   children re-enter the promotable runner with the shared join
   record, so their remaining iterations promote recursively. *)
let rec promote (s : state) : unit =
  let promotable = function
    | E_branch { thunk = Some _; _ } -> true
    | E_branch _ -> false
    | E_loop { lo; hi; _ } -> hi - lo >= 2
  in
  let rec oldest = function
    | [] -> None
    | e :: rest -> (
        match oldest rest with
        | Some _ as found -> found
        | None -> if promotable e then Some e else None)
  in
  match oldest !(s.current_marks) with
  | None -> ()
  | Some (E_branch b) ->
      let thunk = Option.get b.thunk in
      b.thunk <- None;
      b.bjr.pending <- b.bjr.pending + 1;
      s.st_promotions <- s.st_promotions + 1;
      s.st_branch_promotions <- s.st_branch_promotions + 1;
      fire s (Promoted `Branch);
      let jr = b.bjr in
      enqueue s
        { run = (fun () -> thunk (); finish s jr); marks = ref [] }
  | Some (E_loop l) ->
      let mid = l.lo + ((l.hi - l.lo + 1) / 2) in
      let child_lo = mid and child_hi = l.hi in
      l.hi <- mid;
      l.ljr.pending <- l.ljr.pending + 1;
      s.st_promotions <- s.st_promotions + 1;
      s.st_loop_promotions <- s.st_loop_promotions + 1;
      fire s (Promoted `Loop);
      let f = l.f and jr = l.ljr in
      enqueue s
        { run =
            (fun () ->
              par_for_range child_lo child_hi f jr;
              finish s jr);
          marks = ref [] }

(* [poll]: the promotion-ready program point — observe a pending beat
   and promote.  Reaching a poll renews the running task's lease; the
   watchdog flags a gap longer than the lease TTL (the single-domain
   mirror of the simulator's supervisor sweep). *)
and poll () : unit =
  let s = get_state () in
  if s.cfg.lease_beats > 0 then begin
    let now = Mclock.now_s () in
    let gap_us = (now -. s.last_poll) *. 1e6 in
    let ttl_us = float_of_int s.cfg.lease_beats *. s.cfg.heart_us in
    if gap_us > ttl_us then begin
      s.st_stalls <- s.st_stalls + 1;
      fire s
        (Stall_detected
           { missed_beats = int_of_float (gap_us /. s.cfg.heart_us) })
    end;
    s.last_poll <- now
  end;
  let due =
    match s.cfg.source with
    | `Ping_thread ->
        if s.beat_flag then begin
          s.beat_flag <- false;
          true
        end
        else false
    | `Polling ->
        (* monotonic: a wall-clock (NTP) step must not make beats fire
           continuously or never *)
        let now = Mclock.now_s () in
        if (now -. s.last_beat) *. 1e6 >= s.cfg.heart_us then begin
          s.last_beat <- now;
          true
        end
        else false
  in
  if due then begin
    s.st_beats <- s.st_beats + 1;
    fire s Beat;
    promote s
  end

(* The promotable loop runner: iterations of [lo, hi) with the range
   advertised on the mark list, strip-mined so the beat check
   amortises over [poll_stride] iterations (same scheme as
   [Par.Runtime]).  Each strip is claimed ([l.lo <- stop]) before it
   runs: a beat at a nested promotion point inside [f] splits only the
   unclaimed [stop, hi), so the tight loop owns [lo0, stop)
   exclusively with no per-iteration bookkeeping, and the commit
   happens before the strip-boundary [poll] by construction. *)
and par_for_range (lo : int) (hi : int) (f : int -> unit) (jr : join) : unit =
  if lo < hi then begin
    let s = get_state () in
    let l = { lo; hi; f; ljr = jr } in
    let e = E_loop l in
    push_mark s e;
    let stride = max 1 s.cfg.poll_stride in
    while l.lo < l.hi do
      let lo0 = l.lo in
      let stop = if l.hi - lo0 <= stride then l.hi else lo0 + stride in
      l.lo <- stop;
      for i = lo0 to stop - 1 do
        f i
      done;
      poll ()
    done;
    pop_mark s e
  end

(** [par_for ~lo ~hi f]: a parallel-for with latent parallelism only —
    runs serially unless heartbeats promote remaining iterations. *)
let par_for ~(lo : int) ~(hi : int) (f : int -> unit) : unit =
  let s = get_state () in
  let jr = fresh_join () in
  par_for_range lo hi f jr;
  poll ();
  if jr.pending > 0 then begin
    s.st_joins <- s.st_joins + 1;
    fire s Join_suspend;
    Effect.perform (Wait jr)
  end

(** [fork2 a b]: run [a] then [b] serially by default, advertising [b]
    for promotion while [a] runs (the cilk_spawn/cilk_sync pair). *)
let fork2 (a : unit -> unit) (b : unit -> unit) : unit =
  let s = get_state () in
  let jr = fresh_join () in
  let bs = { thunk = Some b; bjr = jr } in
  let e = E_branch bs in
  push_mark s e;
  a ();
  pop_mark s e;
  poll ();
  match bs.thunk with
  | Some b ->
      bs.thunk <- None;
      b ()
  | None ->
      if jr.pending > 0 then begin
        s.st_joins <- s.st_joins + 1;
        fire s Join_suspend;
        Effect.perform (Wait jr)
      end

let stats () : stats =
  let s = get_state () in
  {
    beats = s.st_beats;
    promotions = s.st_promotions;
    loop_promotions = s.st_loop_promotions;
    branch_promotions = s.st_branch_promotions;
    joins = s.st_joins;
    max_queue = s.st_max_queue;
    stalls_detected = s.st_stalls;
  }

(** [metrics ?elapsed_s st] folds a run's {!stats} into the unified
    {!Obs.Metrics} snapshot, so the single-domain runtime reports
    through the same surface as {!Par.Runtime} and the serve pool —
    in particular its lease-watchdog trips land in [stalls]. *)
let metrics ?(elapsed_s = 0.) (st : stats) : Obs.Metrics.t =
  {
    Obs.Metrics.zero with
    domains = 1;
    elapsed_s;
    beats = st.beats;
    promotions = st.promotions;
    loop_promotions = st.loop_promotions;
    branch_promotions = st.branch_promotions;
    joins = st.joins;
    tasks = st.promotions;
    max_deque = st.max_queue;
    stalls = st.stalls_detected;
  }

(** [run ?config main] executes [main] under the heartbeat scheduler
    and returns its result together with the run's statistics.
    Runs cannot nest. *)
let run ?(config = default_config) (main : unit -> 'a) : 'a * stats =
  if !state <> None then invalid_arg "Hb_runtime.run: already running";
  let s =
    {
      cfg = config;
      queue = Queue.create ();
      current_marks = ref [];
      beat_flag = false;
      last_beat = Mclock.now_s ();
      ticker_stop = false;
      st_beats = 0;
      st_promotions = 0;
      st_loop_promotions = 0;
      st_branch_promotions = 0;
      st_joins = 0;
      st_max_queue = 0;
      last_poll = Mclock.now_s ();
      st_stalls = 0;
    }
  in
  state := Some s;
  (* teardown runs on EVERY exit path below — including a failed
     Thread.create — so a dead session can never leak its ticker
     thread or leave [state] poisoned for the next run *)
  let ticker : Thread.t option ref = ref None in
  let finalize () =
    s.ticker_stop <- true;
    Option.iter Thread.join !ticker;
    ticker := None;
    state := None
  in
  Fun.protect ~finally:finalize @@ fun () ->
  (match config.source with
  | `Polling -> ()
  | `Ping_thread ->
      ticker :=
        Some
          (Thread.create
             (fun () ->
               while not s.ticker_stop do
                 Thread.delay (config.heart_us *. 1e-6);
                 s.beat_flag <- true
               done)
             ()));
  let result = ref None in
  (* Each task body runs under its own deep handler; a suspended
     continuation carries that handler with it, so resuming it (from
     [finish], wherever that happens to run) re-enters the scheduler's
     discipline automatically.  Parking a waiter simply returns from
     the task's [match_with], handing control back to [drain]. *)
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait jr ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  if jr.pending = 0 then Effect.Deep.continue k ()
                  else begin
                    jr.waiter <- Some k;
                    jr.waiter_marks <- Some s.current_marks
                    (* return: the enclosing task's match_with ends;
                       [finish] resumes the parked continuation when
                       its last child arrives *)
                  end)
          | _ -> None);
    }
  in
  let exec (body : unit -> unit) = Effect.Deep.match_with body () handler in
  let rec drain () =
    match Queue.take_opt s.queue with
    | None -> ()
    | Some t ->
        s.current_marks <- t.marks;
        fire s Task_start;
        exec t.run;
        fire s Task_finish;
        drain ()
  in
  exec (fun () -> result := Some (main ()));
  drain ();
  let st = stats () in
  match !result with
  | Some r -> (r, st)
  | None ->
      invalid_arg "Hb_runtime.run: computation did not complete (deadlock?)"
