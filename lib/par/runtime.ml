(** A real multi-domain heartbeat runtime on OCaml 5: the paper's §3
    runtime executed on hardware parallelism rather than on the
    abstract machine, the discrete-event simulator, or the
    single-domain effects runtime ({!Heartbeat.Hb_runtime}).

    One {e worker domain} per configured core, each owning a
    thread-safe Chase–Lev deque ({!Ws_deque}); a dedicated {e ping
    domain} raises every worker's heartbeat flag each ♥ µs (the
    Linux ping thread of §3.4).  User code exposes latent parallelism
    through {!par_for} and {!fork2}, which run serially by default; at
    each promotion-ready poll a worker that observes its beat flag
    {e promotes} the outermost latent construct of its running
    computation into a real task, pushed on its own deque.  Idle
    workers {e steal from the top} of a victim's deque — the oldest,
    outermost task, the work-first/steal-oldest discipline of the
    heartbeat line of work.

    Joins are effect-suspended: a parent whose children were promoted
    performs {!Wait} and parks its continuation in the join record;
    the {e last-finishing} child — on whichever domain it happens to
    run — wins an atomic handshake and re-enqueues the parent, so the
    parent resumes on that child's domain.  The handshake is the only
    cross-domain protocol in the scheduler:

    - [pending : int Atomic.t] counts outstanding promoted children
      {e plus the parent's own stake of 1}.  A child is counted
      (increment) strictly before its task becomes visible (push), and
      the parent's stake is only released inside the suspension
      handler — so while the parent is running, [pending] never
      reaches 0, no child ever believes it is last, and [waiter] is
      untouched.  A join record is reused across promotion
      generations (a loop promotes at several beats); the stake is
      what keeps an early-finishing child of one generation from
      racing the handshake of a later one.
    - [waiter : waiter Atomic.t] moves [No_waiter → Waiting] (parent's
      CAS after releasing its stake) or [No_waiter → Resumed] (the
      unique child that decremented [pending] to 0); whichever
      transition loses the race observes the other, and the parent is
      resumed exactly once.  The parent re-arms [pending := 1],
      [waiter := No_waiter] when its suspension returns, at which
      point no task of the join is live.

    Promotion-ready marks, the mark-list discipline and the
    outermost-first policy are exactly {!Heartbeat.Hb_runtime}'s.  The
    mark list is part of the computation (the ref travels with a
    suspended continuation and is re-installed on the resuming
    worker), and is only ever touched by the domain currently running
    that computation — so it needs no synchronisation, but it does
    mean {e no scheduler state may be cached across a call into user
    code}: any nested [par_for]/[fork2] may suspend, migrate the
    computation to another domain, and return there.  Every operation
    below therefore re-reads the worker context from domain-local
    storage after potential suspension points. *)

type join = {
  pending : int Atomic.t;
  waiter : waiter Atomic.t;
  err : exn option Atomic.t;
      (** first exception raised under this join — by an inline branch,
          a promoted child (which records here and still {e finishes},
          so a parked parent always resumes), or a poll observing a
          cancel token.  Re-raised by [join_on] at the fork point after
          every child has drained: errors unwind the task tree
          structurally instead of killing the session. *)
}

and waiter =
  | No_waiter
  | Waiting of {
      k : (unit, unit) Effect.Deep.continuation;
      marks : entry list ref;
          (** the suspended computation's mark list, re-installed on
              the resuming worker *)
      region : int;  (** the suspended computation's trace region *)
    }
  | Resumed

and branch_state = { mutable thunk : (unit -> unit) option; bjr : join }

and loop_state = {
  mutable lo : int;
  mutable hi : int;
  f : int -> unit;
  ljr : join;
}

(** Promotion-ready marks: one per live promotable construct, owned by
    whichever domain is running the computation. *)
and entry = E_branch of branch_state | E_loop of loop_state

type task = {
  run : unit -> unit;
  marks : entry list ref;
  region : int;
      (** {!Obs.Labels}-interned source-region label inherited from the
          forking computation; 0 when tracing is off *)
}

type worker = {
  id : int;
  deque : task Ws_deque.t;
  beat : bool Atomic.t;
      (** raised by the ping domain every ♥ µs; cache-line-padded so
          the ping write invalidates only this worker's line *)
  mutable rng : int;  (** xorshift state for victim selection *)
  mutable current_marks : entry list ref;
  mutable last_beat_ns : int;
      (** [`Polling] source only: monotonic ({!Mclock}) stamp of the
          previous beat, armed when this worker's loop starts *)
  ring : Obs.Ring.t option;
      (** this worker's trace ring (present iff the session has a
          tracer); owner-written only, like every field below *)
  mutable region : int;
      (** interned label of the source region currently running here —
          stamped on promoted tasks and Task_start/finish events *)
  (* stats: plain fields, owner-domain only; aggregated after join *)
  mutable st_beats : int;
  mutable st_promotions : int;
  mutable st_loop_promotions : int;
  mutable st_branch_promotions : int;
  mutable st_joins : int;
  mutable st_resumes : int;
  mutable st_steals : int;
  mutable st_steal_attempts : int;
  mutable st_tasks : int;
  mutable st_max_deque : int;
  mutable st_idle_ns : int;
  mutable st_callback_errors : int;
  mutable st_faults : int;  (** chaos faults that fired on this worker *)
  mutable st_cancels : int;  (** polls that observed a cancel token *)
  mutable chaos : Chaos.state option;
      (** fault-injection state, [Some] only for workers the session's
          chaos plan actually targets — every other worker (and every
          worker of a chaos-free session) keeps the exact unmodified
          hot path, which is what makes the no-chaos metrics
          bit-identical *)
}

(** Why a request's task tree was torn down: an explicit client abort,
    a blown deadline, or the pool's lease watchdog recovering a wedged
    session. *)
type cancel_reason = [ `Explicit | `Deadline | `Lease ]

type cancel_token = cancel_reason option Atomic.t
(** A write-once cancellation flag shared between the computation and
    whoever may abort it.  Polled at every promotion-ready beat check,
    so cancellation latency is one beat period — the same amortized
    bound the paper gives promotion. *)

exception Cancelled of cancel_reason
(** Raised (repeatedly, once per poll) inside the computation once its
    token is set; unwinds through fork points like any task error. *)

let reason_name = function
  | `Explicit -> "explicit"
  | `Deadline -> "deadline"
  | `Lease -> "lease"

let () =
  Printexc.register_printer (function
    | Cancelled r -> Some (Printf.sprintf "Par.Runtime.Cancelled(%s)" (reason_name r))
    | _ -> None)

(** Observability hook events, fired from the worker's own code path
    (callbacks must be cheap, domain-safe, and must not call back into
    the runtime).  The [worker] argument of [on_event] identifies the
    firing domain. *)
type event =
  | Beat
  | Promoted of [ `Loop | `Branch ]
  | Join_suspend
  | Join_resume  (** last child re-enqueued the suspended parent *)
  | Steal of { victim : int }
  | Steal_fail of { victim : int }
      (** an empty steal probe.  Only the {e first} sweep of an idle
          drought is reported (per-probe reporting during backoff spin
          would swamp both callbacks and rings with megahertz noise);
          the {!Nap} events cover the rest of the drought. *)
  | Task_start
  | Task_finish
  | Nap of { ns : int }  (** an idle-backoff sleep of [ns] just ended *)
  | Fault of Chaos.fault_kind  (** an injected chaos fault fired here *)
  | Cancel_seen of cancel_reason
      (** a poll observed the session's cancel token and is about to
          unwind the running computation *)

type config = {
  domains : int;  (** worker domains; 1 = serial with promotion *)
  heart_us : float;  (** ♥ in microseconds *)
  source : [ `Ping_domain | `Polling ];
      (** beat source: the dedicated ping domain (§3.4), or each
          worker polling the clock directly *)
  poll_stride : int;  (** loop iterations between polls *)
  on_event : (worker:int -> event -> unit) option;
  tracer : Obs.Trace.t option;
      (** when set, every worker gets a per-domain {!Obs.Ring} track
          in this trace and feeds it the full event stream — export
          with {!Obs.Export}, digest with {!metrics} *)
  chaos : Chaos.plan option;
      (** seeded fault-injection schedule applied at beat boundaries;
          [None] or an empty plan is strictly pay-for-use (bit-identical
          counters to a chaos-free session) *)
}

let default_config =
  {
    domains = 1;
    heart_us = 100.;
    source = `Ping_domain;
    poll_stride = 32;
    on_event = None;
    tracer = None;
    chaos = None;
  }

type pool = {
  cfg : config;
  heart_ns : int;  (** [cfg.heart_us] in integer nanoseconds, for the
                       [`Polling] fast path *)
  t0_ns : int;  (** monotonic session start, for {!live_stats} *)
  workers : worker array;
  stop : bool Atomic.t;  (** main completed, or a task raised *)
  ping_stop : bool Atomic.t;
  error : exn option Atomic.t;  (** first exception, wins the race *)
  urgency : int Atomic.t;
      (** deadline-aware promotion hint: the effective beat period is
          the configured ♥ shifted right by this many bits, so a
          serving layer can promote more aggressively for work that is
          near its SLO without re-creating the session.  0 = the
          configured cadence; each step halves the period.  Session-
          wide by design: one request runs at a time on a warm pool,
          and beats are pool-global anyway. *)
  cancel : cancel_token option Atomic.t;
      (** the cancel token of the currently running request, installed
          by the serving layer via {!set_cancel} ([None] between
          requests and for plain sessions); polled by every worker at
          its beat check *)
}

type ctx = { pool : pool; worker : worker }

(** A scheduler-invariant violation (same classification as the
    single-domain runtime's). *)
exception Machine_fault of Tpal.Machine_error.t

type worker_stats = {
  beats : int;
  promotions : int;
  loop_promotions : int;
  branch_promotions : int;
  joins : int;  (** parent suspensions on a join record *)
  resumes : int;  (** parents re-enqueued by their last child *)
  steals : int;
  steal_attempts : int;
  tasks_run : int;
  max_deque : int;
  idle_ns : int;  (** nanoseconds slept in idle backoff (naps only) *)
  callback_errors : int;  (** [on_event] callbacks that raised *)
  faults_injected : int;  (** chaos-schedule faults that fired *)
  cancels : int;  (** polls that observed a cancel token and unwound *)
}

type stats = {
  domains : int;
  elapsed_s : float;  (** wall-clock of the whole session *)
  total : worker_stats;  (** sums over workers; [max_deque] is a max *)
  per_worker : worker_stats array;
}

(* ------------------------------------------------------------------ *)

type _ Effect.t += Wait : join -> unit Effect.t

let ctx_key : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let cur_ctx () : ctx =
  match Domain.DLS.get ctx_key with
  | Some c -> c
  | None ->
      invalid_arg "Par.Runtime: par_for/fork2 used outside Par.Runtime.run"

(* Urgency shifts are capped so [heart_ns asr max_urgency] is always a
   defined shift on 63-bit ints; 62 drives any period to 0, i.e. a
   beat at every poll. *)
let max_urgency = 62

(** [set_urgency u] installs the session's promotion-urgency hint
    (clamped to [0, 62]): the effective beat period becomes the
    configured ♥ divided by 2^u, for both beat sources.  Must be
    called from inside a {!run} session. *)
let set_urgency (u : int) : unit =
  let ctx = cur_ctx () in
  Atomic.set ctx.pool.urgency (max 0 (min max_urgency u))

(** The session's current urgency hint (0 when never set). *)
let urgency () : int = Atomic.get (cur_ctx ()).pool.urgency

(** A fresh, unset cancel token (cache-line-padded: the holder writes
    it from another domain while every worker polls it). *)
let cancel_token () : cancel_token = Obs.Padding.atomic None

(** [cancel tok reason]: request cancellation.  First reason wins;
    callable from any domain or thread — this is how a watchdog or a
    client aborts a computation it does not run. *)
let cancel (tok : cancel_token) (reason : cancel_reason) : unit =
  ignore (Atomic.compare_and_set tok None (Some reason))

let cancel_requested (tok : cancel_token) : bool = Atomic.get tok <> None
let cancel_reason_of (tok : cancel_token) : cancel_reason option = Atomic.get tok

(** [set_cancel tok]: install (or, with [None], clear) the cancel
    token covering the work the session runs next.  Must be called
    from inside {!run} — the serving layer brackets each request with
    it. *)
let set_cancel (tok : cancel_token option) : unit =
  Atomic.set (cur_ctx ()).pool.cancel tok

(* Runtime events in the unified {!Obs.Event} vocabulary; task events
   pick up the worker's current region label. *)
let to_obs (w : worker) : event -> Obs.Event.t = function
  | Beat -> Obs.Event.Beat
  | Promoted kind -> Obs.Event.Promote { kind }
  | Join_suspend -> Obs.Event.Join_suspend
  | Join_resume -> Obs.Event.Join_resume
  | Steal { victim } -> Obs.Event.Steal { ok = true; victim }
  | Steal_fail { victim } -> Obs.Event.Steal { ok = false; victim }
  | Task_start -> Obs.Event.Task_start { region = w.region }
  | Task_finish -> Obs.Event.Task_finish { region = w.region }
  | Nap { ns } -> Obs.Event.Nap { ns }
  | Fault k ->
      let kind, arg =
        match k with
        | Chaos.Stall n -> (`Stall, n)
        | Chaos.Slow { beats; _ } -> (`Slow, beats)
        | Chaos.Drop n -> (`Drop, n)
        | Chaos.Raise -> (`Raise, 0)
      in
      Obs.Event.Chaos { kind; arg }
  | Cancel_seen reason -> Obs.Event.Cancel { reason }

(* Feed the worker's ring (if tracing), then the user callback.  A
   raising callback must not kill the worker domain mid-session — the
   pool would deadlock on the lost worker — so exceptions are swallowed
   into the [callback_errors] counter and surfaced via stats/metrics
   instead of tearing the pool down. *)
let fire (ctx : ctx) (e : event) : unit =
  let w = ctx.worker in
  (match (w.ring, ctx.pool.cfg.tracer) with
  | Some ring, Some tr -> Obs.Trace.emit tr ring (to_obs w e)
  | _ -> ());
  match ctx.pool.cfg.on_event with
  | None -> ()
  | Some f -> (
      try f ~worker:w.id e
      with _ ->
        w.st_callback_errors <- w.st_callback_errors + 1;
        match (w.ring, ctx.pool.cfg.tracer) with
        | Some ring, Some tr -> Obs.Trace.emit tr ring Obs.Event.Callback_error
        | _ -> ())

(* pending starts at 1: the parent's stake (see the header comment) *)
let fresh_join () =
  {
    pending = Atomic.make 1;
    waiter = Atomic.make No_waiter;
    err = Atomic.make None;
  }

(* First error wins; the cascading [Cancelled] re-raises of an unwind
   and simultaneous failures on other domains are dropped. *)
let record_err (jr : join) (e : exn) : unit =
  ignore (Atomic.compare_and_set jr.err None (Some e))

let push_task (ctx : ctx) (t : task) : unit =
  let w = ctx.worker in
  Ws_deque.push_bottom w.deque t;
  (* owner-side length bound: no reads of the thief-contended [top]
     line on the push hot path *)
  let len = Ws_deque.owner_length w.deque in
  if len > w.st_max_deque then w.st_max_deque <- len

(* A promoted child finished.  While the parent holds its stake,
   [pending] stays ≥ 1 after any child decrement, so the branch below
   is only ever taken by the unique child that ran after the parent
   released the stake and drained the count — per join epoch, exactly
   one task touches [waiter] here. *)
let finish (ctx : ctx) (jr : join) : unit =
  let n = Atomic.fetch_and_add jr.pending (-1) in
  if n = 1 then
    match Atomic.exchange jr.waiter Resumed with
    | Waiting { k; marks; region } ->
        ctx.worker.st_resumes <- ctx.worker.st_resumes + 1;
        fire ctx Join_resume;
        push_task ctx
          { run = (fun () -> Effect.Deep.continue k ()); marks; region }
    | No_waiter ->
        (* the parent is between releasing its stake and its CAS; its
           CAS will fail against [Resumed] and continue inline *)
        ()
    | Resumed -> () (* unreachable: one exchanger per epoch *)

let push_mark (ctx : ctx) (e : entry) : unit =
  let m = ctx.worker.current_marks in
  m := e :: !m

let describe_entry : entry -> string = function
  | E_branch { thunk = Some _; _ } -> "a branch mark (unpromoted)"
  | E_branch { thunk = None; _ } -> "a branch mark (promoted)"
  | E_loop { lo; hi; _ } -> Printf.sprintf "a loop mark [%d, %d)" lo hi

(* Marks obey strict LIFO nesting per computation; a violation is a
   scheduler bug, surfaced as a typed fault. *)
let pop_mark (ctx : ctx) (e : entry) : unit =
  let m = ctx.worker.current_marks in
  match !m with
  | top :: rest when top == e -> m := rest
  | wrong ->
      let got =
        match wrong with
        | [] -> "an empty mark list"
        | top :: _ -> describe_entry top
      in
      raise
        (Machine_fault
           (Tpal.Machine_error.Mark_corruption
              { context = "pop_mark"; expected = describe_entry e; got }))

(* [promote]: split the outermost (least-recent) promotable entry of
   the running computation — the paper's outermost-first policy.
   [pending] is raised before the task is pushed, so a join can never
   transiently read 0 while work is still outstanding.  Task bodies
   re-fetch their context at run time: they execute on whichever
   domain pops or steals them. *)
let rec promote (ctx : ctx) : unit =
  let w = ctx.worker in
  let promotable = function
    | E_branch { thunk = Some _; _ } -> true
    | E_branch _ -> false
    | E_loop { lo; hi; _ } -> hi - lo >= 2
  in
  let rec oldest = function
    | [] -> None
    | e :: rest -> (
        match oldest rest with
        | Some _ as found -> found
        | None -> if promotable e then Some e else None)
  in
  match oldest !(w.current_marks) with
  | None -> ()
  | Some (E_branch b) ->
      let thunk = Option.get b.thunk in
      b.thunk <- None;
      Atomic.incr b.bjr.pending;
      w.st_promotions <- w.st_promotions + 1;
      w.st_branch_promotions <- w.st_branch_promotions + 1;
      fire ctx (Promoted `Branch);
      let jr = b.bjr in
      push_task ctx
        { run =
            (fun () ->
              (* a raising child records into the join and still
                 finishes: the parked parent must resume so the fork
                 point can observe the error *)
              (try thunk () with e -> record_err jr e);
              finish (cur_ctx ()) jr);
          marks = ref [];
          region = w.region }
  | Some (E_loop l) ->
      let mid = l.lo + ((l.hi - l.lo + 1) / 2) in
      let child_lo = mid and child_hi = l.hi in
      l.hi <- mid;
      Atomic.incr l.ljr.pending;
      w.st_promotions <- w.st_promotions + 1;
      w.st_loop_promotions <- w.st_loop_promotions + 1;
      fire ctx (Promoted `Loop);
      let f = l.f and jr = l.ljr in
      push_task ctx
        { run =
            (fun () ->
              (try par_for_range child_lo child_hi f jr
               with e -> record_err jr e);
              finish (cur_ctx ()) jr);
          marks = ref [];
          region = w.region }

(* [poll]: the promotion-ready program point — observe a pending beat
   and promote.  Fetches the context fresh: the computation may have
   migrated since the previous poll. *)
and poll () : unit = poll_ctx (cur_ctx ())

(* [poll_ctx]: the same, for call sites that already hold a context
   known to be fresh (no user code ran since it was fetched). *)
and poll_ctx (ctx : ctx) : unit =
  let w = ctx.worker in
  (* cooperative cancellation: one relaxed load on the live path.  The
     raise repeats at every poll of the unwinding computation, so a
     [try ... poll ()] downstream cannot accidentally swallow the
     abort for good. *)
  (match Atomic.get ctx.pool.cancel with
  | None -> ()
  | Some tok -> (
      match Atomic.get tok with
      | None -> ()
      | Some reason ->
          w.st_cancels <- w.st_cancels + 1;
          fire ctx (Cancel_seen reason);
          raise (Cancelled reason)));
  let due =
    match ctx.pool.cfg.source with
    | `Ping_domain ->
        if Atomic.get w.beat then begin
          Atomic.set w.beat false;
          true
        end
        else false
    | `Polling ->
        (* monotonic: an NTP step of the wall clock must not make
           beats fire continuously (forward) or never (backward) *)
        let now = Mclock.now_ns () in
        let heart_ns = ctx.pool.heart_ns asr Atomic.get ctx.pool.urgency in
        if now - w.last_beat_ns >= heart_ns then begin
          w.last_beat_ns <- now;
          true
        end
        else false
  in
  if due then
    match w.chaos with
    | None ->
        w.st_beats <- w.st_beats + 1;
        fire ctx Beat;
        promote ctx
    | Some cs ->
        let d = Chaos.on_beat cs in
        List.iter
          (fun (f : Chaos.fault) ->
            w.st_faults <- w.st_faults + 1;
            fire ctx (Fault f.kind))
          d.fired;
        if d.pause_s > 0. then Unix.sleepf d.pause_s;
        if d.raise_now then
          (* the typed injected fault: unwinds through the join
             machinery exactly like a user exception *)
          raise (Chaos.Injected { domain = w.id; beat = cs.beat })
        else if not d.drop then begin
          w.st_beats <- w.st_beats + 1;
          fire ctx Beat;
          promote ctx
        end

(* The promotable loop runner: iterations of [lo, hi) with the range
   advertised on the mark list, strip-mined so the beat check
   amortises over [poll_stride] iterations.  Each strip is {e claimed}
   ([l.lo <- stop]) before it runs: a beat landing inside [f] — at a
   nested promotion point, possibly after the computation suspended
   and migrated to another domain — splits only the unclaimed
   [stop, hi), so the tight loop below owns [lo0, stop) exclusively
   and needs no per-iteration bookkeeping to keep the advertised range
   live.  [l.hi] can only shrink to values > [stop] while the strip
   runs (a promotion splits at [mid > l.lo = stop]), so a claimed
   iteration is never handed out twice, and committing happens before
   the strip-boundary [poll] by construction.  Promoted children
   re-enter this runner with the shared join record, so their
   remaining iterations promote recursively. *)
and par_for_range (lo : int) (hi : int) (f : int -> unit) (jr : join) : unit =
  if lo < hi then begin
    let ctx = cur_ctx () in
    let l = { lo; hi; f; ljr = jr } in
    let e = E_loop l in
    push_mark ctx e;
    let stride = max 1 ctx.pool.cfg.poll_stride in
    match
      while l.lo < l.hi do
        let lo0 = l.lo in
        let stop = if l.hi - lo0 <= stride then l.hi else lo0 + stride in
        l.lo <- stop;
        for i = lo0 to stop - 1 do
          f i
        done;
        (* the strip body may have suspended and migrated the
           computation, so the poll re-fetches the context *)
        poll ()
      done
    with
    | () -> pop_mark (cur_ctx ()) e
    | exception exn ->
        (* unwinding (user error, injected fault, cancellation): the
           mark must come off on the worker currently running the
           computation — nested frames already popped theirs — before
           the error continues to the fork point *)
        pop_mark (cur_ctx ()) e;
        raise exn
  end

(* Join point.  [pending = 1] means only our stake is left: every
   child (if any) has already finished, and — stake never released —
   none of them touched [waiter]; nothing to do.  Otherwise suspend:
   the handler releases the stake and the handshake decides who
   resumes us.  When the suspension returns, no task of this join is
   live any more (the resumer was the last, and increments only come
   from tasks of the join), so re-arming for the next promotion
   generation is race-free. *)
and join_on (jr : join) : unit =
  (if Atomic.get jr.pending > 1 then begin
     let ctx = cur_ctx () in
     ctx.worker.st_joins <- ctx.worker.st_joins + 1;
     fire ctx Join_suspend;
     Effect.perform (Wait jr);
     Atomic.set jr.pending 1;
     Atomic.set jr.waiter No_waiter
   end);
  (* every child has drained; if any party recorded an error, the fork
     point re-raises it here — structural propagation, never a stray
     task *)
  match Atomic.get jr.err with None -> () | Some e -> raise e

(** [par_for ~lo ~hi f]: a parallel-for with latent parallelism only —
    runs serially unless heartbeats promote remaining iterations onto
    other domains. *)
let par_for ~(lo : int) ~(hi : int) (f : int -> unit) : unit =
  let jr = fresh_join () in
  (* an inline error is recorded, not re-raised here: promoted children
     may still be running, and the join below must wait for all of them
     before the error continues upward *)
  (try par_for_range lo hi f jr with e -> record_err jr e);
  (try poll () with e -> record_err jr e);
  join_on jr

(** [fork2 a b]: run [a] then [b] serially by default, advertising [b]
    for promotion while [a] runs (the cilk_spawn/cilk_sync pair). *)
let fork2 (a : unit -> unit) (b : unit -> unit) : unit =
  let jr = fresh_join () in
  let bs = { thunk = Some b; bjr = jr } in
  let e = E_branch bs in
  push_mark (cur_ctx ()) e;
  (match a () with
  | () -> pop_mark (cur_ctx ()) e
  | exception exn ->
      record_err jr exn;
      pop_mark (cur_ctx ()) e);
  (try poll () with exn -> record_err jr exn);
  (match bs.thunk with
  | Some b ->
      (* never promoted: run serially — unless [a] (or the poll) already
         failed, in which case serial semantics never reached [b] *)
      bs.thunk <- None;
      (match Atomic.get jr.err with
      | None -> ( try b () with exn -> record_err jr exn)
      | Some _ -> ())
  | None -> ());
  join_on jr

(** [with_region name f]: label the work done by [f] (and any tasks it
    forks) as source region [name] in the session's trace — the unit
    the what-if profiler ({!Obs.Profile.of_trace}) attributes work and
    span to.  Free when the session has no tracer.  The label is
    restored when [f] returns, on whichever worker the computation
    migrated to. *)
let with_region (name : string) (f : unit -> 'a) : 'a =
  let ctx = cur_ctx () in
  match ctx.pool.cfg.tracer with
  | None -> f ()
  | Some tr ->
      let id = Obs.Trace.intern tr name in
      let prev = ctx.worker.region in
      ctx.worker.region <- id;
      Fun.protect f ~finally:(fun () ->
          (* the computation may have migrated: restore on the worker
             currently running it *)
          (cur_ctx ()).worker.region <- prev)

(** The executor surface {!Workloads.Exec.S}-shaped kernels run
    against — pass [(module Par.Runtime.Exec)] inside a {!run}
    session. *)
module Exec = struct
  let par_for = par_for
  let fork2 = fork2
end

(* ------------------------------------------------------------------ *)
(* The scheduler loop.                                                 *)

(* xorshift for victim selection: cheap, worker-local *)
let rand (w : worker) : int =
  let x = w.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  w.rng <- (if x = 0 then 0x9E3779B1 else x);
  w.rng

(* Every task body runs under this deep handler; a suspended
   continuation carries it along, so resuming the continuation — on
   whichever domain [finish] runs — re-enters the scheduler's
   discipline automatically.  The handler resolves its worker context
   dynamically (the effect is always performed on the domain currently
   running the computation, which need not be the domain that captured
   the continuation).  Parking a waiter simply returns from the task's
   [match_with], handing control back to the worker loop. *)
let handler : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> ());
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Wait jr ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let ctx = cur_ctx () in
                let marks = ctx.worker.current_marks in
                let region = ctx.worker.region in
                (* release the parent's stake; from here a child can
                   drain [pending] to 0 and touch [waiter] *)
                let n = Atomic.fetch_and_add jr.pending (-1) in
                if n = 1 then
                  (* children drained between join_on's check and the
                     release: nothing to wait for *)
                  Effect.Deep.continue k ()
                else if
                  Atomic.compare_and_set jr.waiter No_waiter
                    (Waiting { k; marks; region })
                then () (* parked; the last child re-enqueues us *)
                else
                  (* the last child exchanged [Resumed] between our
                     release and our CAS *)
                  Effect.Deep.continue k ())
        | _ -> None);
  }

let run_task (ctx : ctx) (t : task) : unit =
  let w = ctx.worker in
  w.current_marks <- t.marks;
  w.region <- t.region;
  w.st_tasks <- w.st_tasks + 1;
  fire ctx Task_start;
  (try Effect.Deep.match_with t.run () handler
   with e ->
     (* first failure wins; stop the pool, the session re-raises *)
     if Atomic.compare_and_set ctx.pool.error None (Some e) then ();
     Atomic.set ctx.pool.stop true);
  fire ctx Task_finish

(* [steal_victim ~r ~self ~n k]: the k-th victim of one randomized
   sweep — start at a random offset among the other [n - 1] workers
   and walk them cyclically.  [r] is any non-negative rng draw,
   including values near [max_int]: it is reduced mod [n - 1] BEFORE
   the sweep offset is added, so the sum can never overflow into a
   negative [mod] (the pre-fix [1 + ((r + k) mod (n - 1))] wrapped
   negative for large [r], yielding self-steals and negative victim
   indices).  Exposed for the overflow regression test. *)
let steal_victim ~(r : int) ~(self : int) ~(n : int) (k : int) : int =
  let d = 1 + (((r mod (n - 1)) + k) mod (n - 1)) in
  (self + d) mod n

(* One randomized sweep over the other workers' deque tops.
   [log_fails] controls whether empty probes are reported as
   {!Steal_fail} events — the worker loop sets it only on the first
   sweep of a drought, so backoff spinning does not flood the
   observers (the counters are always exact regardless). *)
let try_steal ?(log_fails = false) (ctx : ctx) : task option =
  let w = ctx.worker in
  let workers = ctx.pool.workers in
  let n = Array.length workers in
  let r = rand w in
  let found = ref None in
  let k = ref 0 in
  while Option.is_none !found && !k < n - 1 do
    let victim = steal_victim ~r ~self:w.id ~n !k in
    w.st_steal_attempts <- w.st_steal_attempts + 1;
    (match Ws_deque.steal_top workers.(victim).deque with
    | Some t ->
        w.st_steals <- w.st_steals + 1;
        fire ctx (Steal { victim });
        found := Some t
    | None -> if log_fails then fire ctx (Steal_fail { victim }));
    incr k
  done;
  !found

(* Idle backoff: a worker whose sweeps come up empty first spins
   ([cpu_relax], cheap and latency-optimal while work is likely), then
   sleeps with exponentially escalating naps capped at [max_nap_s] —
   so idle thieves stop hammering victims' deque lines (the mechanism
   behind the 2–4-domain anti-scaling in the single-core
   BENCH_par.json) while still noticing freshly pushed work within a
   bounded delay of one nap.  Any claimed task resets the ladder. *)
let spin_limit = 32

let max_nap_s = 200e-6
let nap_base_s = 1e-6

(* The nap for the [failures]-th consecutive empty sweep: zero (pure
   spin) through [spin_limit], then [nap_base_s] doubling per failure,
   capped at [max_nap_s] — so the worst-case delay between work
   appearing and a fully backed-off thief's next sweep is one capped
   nap, not an unbounded exponential.  Pure, for the policy tests. *)
let nap_s ~(failures : int) : float =
  let past_spin = failures - spin_limit in
  if past_spin <= 0 then 0.
  else Float.min max_nap_s (nap_base_s *. float_of_int (1 lsl min past_spin 20))

(* A worker only exits with its own deque empty, and only the owner
   pushes to a deque — so no task is ever stranded in an exited
   worker's deque. *)
let worker_loop (ctx : ctx) : unit =
  let pool = ctx.pool in
  let n = Array.length pool.workers in
  let failures = ref 0 in
  let idle () =
    incr failures;
    let nap = nap_s ~failures:!failures in
    if nap <= 0. then Domain.cpu_relax ()
    else begin
      let ns = int_of_float (nap *. 1e9) in
      Unix.sleepf nap;
      ctx.worker.st_idle_ns <- ctx.worker.st_idle_ns + ns;
      fire ctx (Nap { ns })
    end
  in
  let running = ref true in
  while !running do
    match Ws_deque.pop_bottom ctx.worker.deque with
    | Some t ->
        failures := 0;
        run_task ctx t
    | None -> (
        if Atomic.get pool.stop then running := false
        else if n = 1 then idle ()
        else
          match try_steal ~log_fails:(!failures = 0) ctx with
          | Some t ->
              failures := 0;
              run_task ctx t
          | None -> idle ())
  done

let run_worker (pool : pool) (id : int) : unit =
  let w = pool.workers.(id) in
  let ctx = { pool; worker = w } in
  (* arm the [`Polling] beat when THIS worker's loop starts, on its
     own monotonic clock — not at pool construction on the spawning
     domain, which front-loads a spurious first beat by however long
     the domain spawns took *)
  w.last_beat_ns <- Mclock.now_ns ();
  Domain.DLS.set ctx_key (Some ctx);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set ctx_key None)
    (fun () -> worker_loop ctx)

let ping_loop (pool : pool) : unit =
  let period = Float.max 1e-6 (pool.cfg.heart_us *. 1e-6) in
  while not (Atomic.get pool.ping_stop) do
    (* the urgency hint halves the ping period per step; re-read each
       beat so a serving layer can change it mid-session (capped at
       2^20 to keep the sleep argument sane) *)
    let u = min 20 (Atomic.get pool.urgency) in
    Unix.sleepf (Float.max 1e-6 (period /. float_of_int (1 lsl u)));
    Array.iter (fun w -> Atomic.set w.beat true) pool.workers
  done

(* ------------------------------------------------------------------ *)

(* The worker record itself is padded: its stat fields are written by
   the owner on hot paths, and [Array.init] would otherwise allocate
   adjacent workers' records onto shared cache lines. *)
let make_worker ?(tracer : Obs.Trace.t option) ?(chaos : Chaos.state option)
    ~(id : int) () : worker =
  Obs.Padding.copy_as_padded
  {
    id;
    deque = Ws_deque.create ();
    beat = Obs.Padding.atomic false;
    rng = 0x9E3779B1 + (id * 0x85EBCA77);
    current_marks = ref [];
    last_beat_ns = Mclock.now_ns ();
    ring =
      Option.map
        (fun tr -> Obs.Trace.track tr (Printf.sprintf "worker %d" id))
        tracer;
    region = 0;
    st_beats = 0;
    st_promotions = 0;
    st_loop_promotions = 0;
    st_branch_promotions = 0;
    st_joins = 0;
    st_resumes = 0;
    st_steals = 0;
    st_steal_attempts = 0;
    st_tasks = 0;
    st_max_deque = 0;
    st_idle_ns = 0;
    st_callback_errors = 0;
    st_faults = 0;
    st_cancels = 0;
    chaos;
  }

let worker_stats (w : worker) : worker_stats =
  {
    beats = w.st_beats;
    promotions = w.st_promotions;
    loop_promotions = w.st_loop_promotions;
    branch_promotions = w.st_branch_promotions;
    joins = w.st_joins;
    resumes = w.st_resumes;
    steals = w.st_steals;
    steal_attempts = w.st_steal_attempts;
    tasks_run = w.st_tasks;
    max_deque = w.st_max_deque;
    idle_ns = w.st_idle_ns;
    callback_errors = w.st_callback_errors;
    faults_injected = w.st_faults;
    cancels = w.st_cancels;
  }

let zero_stats =
  {
    beats = 0;
    promotions = 0;
    loop_promotions = 0;
    branch_promotions = 0;
    joins = 0;
    resumes = 0;
    steals = 0;
    steal_attempts = 0;
    tasks_run = 0;
    max_deque = 0;
    idle_ns = 0;
    callback_errors = 0;
    faults_injected = 0;
    cancels = 0;
  }

let sum_stats (per : worker_stats array) : worker_stats =
  Array.fold_left
    (fun acc (s : worker_stats) ->
      {
        beats = acc.beats + s.beats;
        promotions = acc.promotions + s.promotions;
        loop_promotions = acc.loop_promotions + s.loop_promotions;
        branch_promotions = acc.branch_promotions + s.branch_promotions;
        joins = acc.joins + s.joins;
        resumes = acc.resumes + s.resumes;
        steals = acc.steals + s.steals;
        steal_attempts = acc.steal_attempts + s.steal_attempts;
        tasks_run = acc.tasks_run + s.tasks_run;
        max_deque = max acc.max_deque s.max_deque;
        idle_ns = acc.idle_ns + s.idle_ns;
        callback_errors = acc.callback_errors + s.callback_errors;
        faults_injected = acc.faults_injected + s.faults_injected;
        cancels = acc.cancels + s.cancels;
      })
    zero_stats per

(** [live_stats ()]: a racy-but-safe snapshot of the running session's
    per-worker counters, from inside {!run} (any worker domain, or
    user code).  Counters are plain owner-written ints, so a reader on
    another domain sees a slightly stale but untorn value — exact
    accounting comes from the stats {!run} returns after joining its
    domains. *)
let live_stats () : stats =
  let ctx = cur_ctx () in
  let pool = ctx.pool in
  let per_worker = Array.map worker_stats pool.workers in
  {
    domains = Array.length pool.workers;
    elapsed_s = float_of_int (Mclock.now_ns () - pool.t0_ns) *. 1e-9;
    total = sum_stats per_worker;
    per_worker;
  }

(** [metrics ?tracer st]: fold a session's stats (and its trace rings,
    when it had a tracer) into the unified {!Obs.Metrics} snapshot. *)
let metrics ?(tracer : Obs.Trace.t option) (st : stats) : Obs.Metrics.t =
  {
    Obs.Metrics.domains = st.domains;
    elapsed_s = st.elapsed_s;
    beats = st.total.beats;
    promotions = st.total.promotions;
    loop_promotions = st.total.loop_promotions;
    branch_promotions = st.total.branch_promotions;
    joins = st.total.joins;
    resumes = st.total.resumes;
    steals = st.total.steals;
    steal_attempts = st.total.steal_attempts;
    tasks = st.total.tasks_run;
    max_deque = st.total.max_deque;
    idle_ns = st.total.idle_ns;
    callback_errors = st.total.callback_errors;
    faults_injected = st.total.faults_injected;
    cancels = st.total.cancels;
    retries = 0;
    restarts = 0;
    stalls = 0;
    traced = (match tracer with None -> 0 | Some tr -> Obs.Trace.total_written tr);
    dropped =
      (match tracer with None -> 0 | Some tr -> Obs.Trace.total_dropped tr);
  }

(* Sessions cannot nest (a domain already inside a session must not
   boot another — its DLS ctx would be clobbered and the outer pool
   would lose a worker), but independent sessions MAY coexist in one
   process: every piece of scheduler state is pool-scoped and reached
   through the domain-local ctx, so N disjoint domain sets can each
   run their own heartbeat — the sharded serving layer ({!Net.Shard})
   runs one warm session per shard.  [sessions] counts live sessions
   (a diagnostics probe, not a guard). *)
let sessions = Atomic.make 0

(** Number of currently live sessions in this process. *)
let session_count () : int = Atomic.get sessions

(** [run ?config main] executes [main] under the multi-domain
    heartbeat scheduler: [config.domains] worker domains (the calling
    domain is worker 0) plus, with the [`Ping_domain] source, one ping
    domain.  Returns [main]'s result and the session statistics.
    An exception inside a task — user code, an injected {!Chaos}
    fault, or a {!Cancelled} unwind — propagates structurally to its
    fork point (children are always joined first, so no task strays);
    only an exception escaping [main] itself aborts the session and
    re-raises here. *)
let run ?(config = default_config) (main : unit -> 'a) : 'a * stats =
  if Domain.DLS.get ctx_key <> None then
    invalid_arg "Par.Runtime.run: already running";
  Atomic.incr sessions;
  Fun.protect
    ~finally:(fun () -> Atomic.decr sessions)
    (fun () ->
      let n = max 1 config.domains in
      (* chaos state is materialized per targeted worker only; an
         absent or empty plan leaves every worker's [chaos = None] —
         the exact chaos-free hot path and counters *)
      let chaos_for id =
        match config.chaos with
        | None -> None
        | Some p ->
            Chaos.state_for p ~domain:id
              ~heart_s:(Float.max 0. config.heart_us *. 1e-6)
      in
      let pool =
        {
          cfg = config;
          heart_ns = int_of_float (Float.max 0. config.heart_us *. 1e3);
          t0_ns = Mclock.now_ns ();
          workers =
            Array.init n (fun id ->
                make_worker ?tracer:config.tracer ?chaos:(chaos_for id) ~id ());
          stop = Atomic.make false;
          ping_stop = Atomic.make false;
          error = Atomic.make None;
          urgency = Obs.Padding.atomic 0;
          cancel = Obs.Padding.atomic None;
        }
      in
      let result = ref None in
      let t0 = Unix.gettimeofday () in
      (* main is an ordinary task on worker 0's deque; its completion
         implies every fork has joined, so no task can outlive it *)
      Ws_deque.push_bottom pool.workers.(0).deque
        {
          run =
            (fun () ->
              result := Some (main ());
              Atomic.set pool.stop true);
          marks = ref [];
          region =
            (match config.tracer with
            | Some tr -> Obs.Trace.intern tr "main"
            | None -> 0);
        };
      let ping =
        match config.source with
        | `Polling -> None
        | `Ping_domain -> Some (Domain.spawn (fun () -> ping_loop pool))
      in
      let stop_ping () =
        Atomic.set pool.ping_stop true;
        Option.iter Domain.join ping
      in
      let others =
        try
          Array.init (n - 1) (fun i ->
              Domain.spawn (fun () -> run_worker pool (i + 1)))
        with e ->
          (* spawn failed: stop whatever did start, then re-raise *)
          Atomic.set pool.stop true;
          stop_ping ();
          raise e
      in
      run_worker pool 0;
      Array.iter Domain.join others;
      stop_ping ();
      let elapsed_s = Unix.gettimeofday () -. t0 in
      (match Atomic.get pool.error with Some e -> raise e | None -> ());
      let per_worker = Array.map worker_stats pool.workers in
      let st =
        { domains = n; elapsed_s; total = sum_stats per_worker; per_worker }
      in
      match !result with
      | Some r -> (r, st)
      | None ->
          invalid_arg
            "Par.Runtime.run: computation did not complete (deadlock?)")
