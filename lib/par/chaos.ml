(** Deterministic fault injection for the real multi-domain runtime.

    The simulator grew a fault model in the crash-tolerance PR
    ({!Sim.Interrupts}); this is its real-stack analogue.  A {!plan} is
    a seeded schedule of faults, each pinned to a (domain, beat) pair.
    {!Par.Runtime} consults the plan at the same beat-boundary poll
    where promotion happens, so injection rides the heartbeat's
    amortization: a worker with no scheduled faults pays one [None]
    branch per beat, and a session with no plan at all pays nothing —
    the runtime only materializes per-worker chaos state when the plan
    is non-empty, keeping the no-chaos metrics bit-identical.

    Fault kinds, mirroring the simulator's vocabulary where the real
    machine allows:

    - [Stall n]: the domain freezes for [n] beat periods at the
      boundary (a wedged worker; leases/watchdogs must cover for it).
    - [Slow f]: for [f.beats] beats the domain pays an extra
      [(factor - 1)] beat periods of latency per beat (a thermally
      throttled or noisy-neighbour core).
    - [Drop n]: the next [n] observed beats are swallowed — no [Beat]
      event, no promotion — modelling lost/jittered beat flags.
    - [Raise]: {!Injected} is raised from the poll inside whatever
      task body is running, exercising the structured error-unwinding
      and the serving layer's retry path.

    Crash is deliberately absent: OCaml domains cannot be killed from
    outside, and a cooperative "crash" is exactly [Stall infinity] —
    the lease watchdog path covers it. *)

type fault_kind =
  | Stall of int  (** freeze for [n] beat periods *)
  | Slow of { factor : float; beats : int }
  | Drop of int  (** swallow the next [n] observed beats *)
  | Raise  (** raise {!Injected} inside the running task body *)

type fault = { domain : int; at_beat : int; kind : fault_kind }

type plan = { seed : int; faults : fault list }
(** A full schedule.  [faults] is consulted per worker; [seed] rides
    along for reproducer messages. *)

exception Injected of { domain : int; beat : int }
(** The typed fault raised by a [Raise] entry — callers (the serving
    layer's retry predicate, the fuzz oracle) match on it to tell an
    injected abort from a genuine bug. *)

let () =
  Printexc.register_printer (function
    | Injected { domain; beat } ->
        Some (Printf.sprintf "Par.Chaos.Injected(domain %d, beat %d)" domain beat)
    | _ -> None)

let empty = { seed = 0; faults = [] }
let is_empty (p : plan) = p.faults = []

let kind_name = function
  | Stall _ -> "stall"
  | Slow _ -> "slow"
  | Drop _ -> "drop"
  | Raise -> "raise"

let pp_fault ppf (f : fault) =
  match f.kind with
  | Stall n -> Fmt.pf ppf "d%d@%d stall %d" f.domain f.at_beat n
  | Slow { factor; beats } ->
      Fmt.pf ppf "d%d@%d slow %.1fx for %d" f.domain f.at_beat factor beats
  | Drop n -> Fmt.pf ppf "d%d@%d drop %d" f.domain f.at_beat n
  | Raise -> Fmt.pf ppf "d%d@%d raise" f.domain f.at_beat

let pp_plan ppf (p : plan) =
  Fmt.pf ppf "@[<h>seed %d: %a@]" p.seed
    (Fmt.list ~sep:Fmt.comma pp_fault)
    p.faults

(* ------------------------------------------------------------------ *)
(* Seeded generation.  [lib/par] sits below [lib/sim] in the build, so
   it carries its own splitmix64 — same core as [Sim.Prng], and the
   same split-stream discipline as [Sim.Interrupts.random_schedule]:
   the chaos stream is split off [seed lxor 0xC4A5] so plans never
   correlate with whatever the seed also drives (program generation,
   workload inputs). *)

module Rng = struct
  type t = { mutable state : int64 }

  let golden = 0x9E3779B97F4A7C15L

  let create ~seed = { state = Int64.of_int seed }

  let next (t : t) : int64 =
    t.state <- Int64.add t.state golden;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
              0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
              0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let split (t : t) : t =
    let s = next t in
    { state = Int64.mul s 0x2545F4914F6CDD1DL }

  (* uniform in [0, bound) via the 62 high bits — a 63-bit mask would
     overflow [Int64.to_int] into negatives, and a negative [mod]
     would silently select the match fall-through at the call sites *)
  let int (t : t) (bound : int) : int =
    if bound <= 0 then 0
    else Int64.to_int (Int64.shift_right_logical (next t) 2) mod bound

  let float_range (t : t) (width : float) : float =
    let u = Int64.to_float (Int64.shift_right_logical (next t) 11) in
    width *. (u /. 9007199254740992.0 (* 2^53 *))
end

(** [random_plan ~seed ~domains ()] draws a schedule the way
    [Sim.Interrupts.random_schedule] does: a split stream off the run
    seed, [1 + U(max 1 domains)] faults, each pinned to a uniform
    (domain, beat-within-horizon) slot.  [raises] (default [true])
    gates whether [Raise] faults may appear — timing-only plans must
    leave results bit-identical, which is what the fuzz oracle
    checks. *)
let random_plan ?(horizon = 48) ?(raises = true) ~seed ~domains () : plan =
  let rng = Rng.split (Rng.create ~seed:(seed lxor 0xC4A5)) in
  let n_faults = 1 + Rng.int rng (max 1 domains) in
  let kinds = if raises then 4 else 3 in
  let faults =
    List.init n_faults (fun _ ->
        let domain = Rng.int rng (max 1 domains) in
        let at_beat = Rng.int rng (max 1 horizon) in
        let kind =
          match Rng.int rng kinds with
          | 0 -> Stall (1 + Rng.int rng 6)
          | 1 ->
              Slow
                {
                  factor = 1.5 +. Rng.float_range rng 6.5;
                  beats = 1 + Rng.int rng 12;
                }
          | 2 -> Drop (1 + Rng.int rng 6)
          | _ -> Raise
        in
        { domain; at_beat; kind })
  in
  { seed; faults }

let has_raise (p : plan) =
  List.exists (fun f -> match f.kind with Raise -> true | _ -> false) p.faults

(* ------------------------------------------------------------------ *)
(* Per-worker injection state: owner-only mutable fields, allocated at
   session start only for workers the plan actually targets. *)

type state = {
  mutable queue : fault list;  (** this domain's faults, by [at_beat] *)
  mutable beat : int;  (** beats observed by this worker so far *)
  mutable drop_left : int;
  mutable slow_left : int;
  mutable slow_pause_s : float;
  heart_s : float;  (** one beat period, for stall/slow pauses *)
}

type decision = {
  fired : fault list;  (** faults newly activated at this beat *)
  pause_s : float;  (** sleep this long at the boundary *)
  drop : bool;  (** swallow the beat: no [Beat] event, no promotion *)
  raise_now : bool;  (** raise {!Injected} into the task body *)
}

(** [state_for plan ~domain ~heart_s] is [Some st] iff the plan holds
    faults for [domain] — untargeted workers keep the exact no-chaos
    hot path. *)
let state_for (p : plan) ~(domain : int) ~(heart_s : float) : state option =
  match List.filter (fun f -> f.domain = domain) p.faults with
  | [] -> None
  | mine ->
      let queue =
        List.stable_sort (fun a b -> compare a.at_beat b.at_beat) mine
      in
      Some
        {
          queue;
          beat = 0;
          drop_left = 0;
          slow_left = 0;
          slow_pause_s = 0.;
          heart_s = Float.max 1e-6 heart_s;
        }

(** [on_beat st] advances the worker's chaos clock by one observed
    beat and says what the runtime must do at this boundary.  Every
    schedule entry activates exactly once (it appears in [fired] the
    beat it triggers); continuation beats of a slow/drop window do
    not re-fire. *)
let on_beat (st : state) : decision =
  let b = st.beat in
  st.beat <- b + 1;
  let due, rest = List.partition (fun f -> f.at_beat <= b) st.queue in
  st.queue <- rest;
  let pause = ref 0. and raise_now = ref false in
  List.iter
    (fun f ->
      match f.kind with
      | Stall n -> pause := !pause +. (float_of_int n *. st.heart_s)
      | Slow { factor; beats } ->
          st.slow_left <- max st.slow_left beats;
          st.slow_pause_s <- Float.max st.slow_pause_s
              ((Float.max 1. factor -. 1.) *. st.heart_s)
      | Drop n -> st.drop_left <- st.drop_left + n
      | Raise -> raise_now := true)
    due;
  if st.slow_left > 0 then begin
    st.slow_left <- st.slow_left - 1;
    pause := !pause +. st.slow_pause_s
  end;
  let drop =
    if (not !raise_now) && st.drop_left > 0 then begin
      st.drop_left <- st.drop_left - 1;
      true
    end
    else false
  in
  { fired = due; pause_s = !pause; drop; raise_now = !raise_now }
