(** Chase–Lev work-stealing deque over OCaml 5 [Atomic]s — the
    thread-safe generalisation of the simulator's {!Sim.Wsdeque}.

    One worker domain {e owns} each deque: only the owner calls
    {!push_bottom} and {!pop_bottom} (LIFO at the bottom, preserving
    locality), while any other domain may call {!steal_top} (FIFO at
    the top — the oldest, and under heartbeat promotion the
    {e outermost}, task), the discipline the paper's runtime inherits
    from Chase–Lev [2005].

    The implementation follows the classic algorithm (Chase & Lev;
    the C11 formulation of Lê et al. [2013]) with [top] and [bottom]
    as monotone atomic counters indexing a circular buffer.  Every
    shared access goes through an [Atomic] — OCaml's atomics are
    sequentially consistent, which is strictly stronger than the
    acquire/release fences the algorithm needs, so the usual proofs
    carry over directly:

    - the owner publishes a pushed cell {e before} advancing [bottom],
      so a thief that observes [top < bottom] also observes the cell;
    - the single CAS on [top] arbitrates every top-end removal — the
      last-element race between a popping owner and stealing thieves
      has exactly one winner;
    - a cell can only be recycled after [bottom] wraps past it, which
      the grow-on-full rule ([bottom - top < capacity]) makes
      impossible while any thief could still successfully CAS its
      index, so a stale read is always discarded by the failing CAS.

    Growth is owner-side only: the buffer is copied into one twice the
    size and republished atomically; thieves holding the old buffer
    read indices in [top, bottom), which the owner never overwrites
    in-place. *)

type 'a t = {
  top : int Atomic.t;  (** steal end; monotonically increasing *)
  bottom : int Atomic.t;  (** owner end *)
  tab : 'a option Atomic.t array Atomic.t;  (** circular buffer *)
}

let min_capacity = 16

let create () : 'a t =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    tab = Atomic.make (Array.init min_capacity (fun _ -> Atomic.make None));
  }

(** Snapshot length — exact for the owner between its own operations,
    a safe approximation for any other observer. *)
let length (d : 'a t) : int =
  max 0 (Atomic.get d.bottom - Atomic.get d.top)

let is_empty (d : 'a t) : bool = length d = 0

(* Owner-only: double the buffer, copying live cells [t, b). *)
let grow (d : 'a t) (t : int) (b : int) : unit =
  let old = Atomic.get d.tab in
  let n = Array.length old in
  let n' = 2 * n in
  let tab = Array.init n' (fun _ -> Atomic.make None) in
  for i = t to b - 1 do
    Atomic.set tab.(i land (n' - 1)) (Atomic.get old.(i land (n - 1)))
  done;
  Atomic.set d.tab tab

(** Owner push at the bottom. *)
let push_bottom (d : 'a t) (x : 'a) : unit =
  let b = Atomic.get d.bottom in
  let t = Atomic.get d.top in
  let tab = Atomic.get d.tab in
  let tab =
    if b - t >= Array.length tab then begin
      grow d t b;
      Atomic.get d.tab
    end
    else tab
  in
  Atomic.set tab.(b land (Array.length tab - 1)) (Some x);
  Atomic.set d.bottom (b + 1)

(** Owner pop at the bottom (LIFO).  The one-element case races with
    thieves and is decided by the CAS on [top]. *)
let pop_bottom (d : 'a t) : 'a option =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* empty: restore the invariant bottom = top *)
    Atomic.set d.bottom t;
    None
  end
  else begin
    let tab = Atomic.get d.tab in
    let cell = tab.(b land (Array.length tab - 1)) in
    let v = Atomic.get cell in
    if b > t then begin
      Atomic.set cell None;
      v
    end
    else begin
      (* last element: win it from the thieves or lose it to one *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      if won then begin
        Atomic.set cell None;
        v
      end
      else None
    end
  end

(** Thief steal from the top (FIFO — the oldest task).  [None] means
    the deque looked empty {e or} the thief lost a race; callers treat
    both as "try elsewhere". *)
let steal_top (d : 'a t) : 'a option =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then None
  else begin
    let tab = Atomic.get d.tab in
    let v = Atomic.get tab.(t land (Array.length tab - 1)) in
    if Atomic.compare_and_set d.top t (t + 1) then v else None
  end
