(** Chase–Lev work-stealing deque over OCaml 5 [Atomic]s — the
    thread-safe generalisation of the simulator's {!Sim.Wsdeque}.

    One worker domain {e owns} each deque: only the owner calls
    {!push_bottom} and {!pop_bottom} (LIFO at the bottom, preserving
    locality), while any other domain may call {!steal_top} (FIFO at
    the top — the oldest, and under heartbeat promotion the
    {e outermost}, task), the discipline the paper's runtime inherits
    from Chase–Lev [2005].

    The implementation follows the classic algorithm (Chase & Lev;
    the C11 formulation of Lê et al. [2013]) with [top] and [bottom]
    as monotone atomic counters indexing a circular buffer.  Every
    shared access goes through an [Atomic] — OCaml's atomics are
    sequentially consistent, which is strictly stronger than the
    acquire/release fences the algorithm needs, so the usual proofs
    carry over directly:

    - the owner publishes a pushed cell {e before} advancing [bottom],
      so a thief that observes [top < bottom] also observes the cell;
    - the single CAS on [top] arbitrates every top-end removal — the
      last-element race between a popping owner and stealing thieves
      has exactly one winner;
    - a cell can only be recycled after [bottom] wraps past it, which
      the grow-on-full rule ([bottom - top < capacity]) makes
      impossible while any thief could still successfully CAS its
      index, so a stale read is always discarded by the failing CAS.

    Growth is owner-side only: the buffer is copied into one twice the
    size and republished atomically; thieves holding the old buffer
    read indices in [top, bottom), which the owner never overwrites
    in-place.

    Two single-domain-overhead measures on top of the classic layout:

    - [top], [bottom] and the buffer pointer each live alone on a
      cache-line pair ({!Obs.Padding}), so thieves CASing [top] stop
      invalidating the owner's [bottom] line and vice versa;
    - the owner keeps plain (non-atomic) caches of [top] and the
      buffer.  [top] only moves away from the owner, so a stale cache
      is a {e conservative} bound: the push fast path re-reads the
      real [top] only when the cached bound says the buffer might be
      full — the hot path is one load of the owner's own [bottom]
      line, one cell publish and one [bottom] advance, never touching
      the thief-contended [top] line. *)

type 'a t = {
  top : int Atomic.t;  (** steal end; monotonically increasing *)
  bottom : int Atomic.t;  (** owner end *)
  tab : 'a option Atomic.t array Atomic.t;  (** circular buffer *)
  mutable owner_top : int;
      (** owner-private lower bound on [top]; refreshed on pops and on
          the push slow path *)
  mutable owner_tab : 'a option Atomic.t array;
      (** owner-private alias of [tab] (the owner is its only writer) *)
}

let min_capacity = 16

let create () : 'a t =
  let tab = Array.init min_capacity (fun _ -> Atomic.make None) in
  Obs.Padding.copy_as_padded
    {
      top = Obs.Padding.atomic 0;
      bottom = Obs.Padding.atomic 0;
      tab = Obs.Padding.atomic tab;
      owner_top = 0;
      owner_tab = tab;
    }

(** Snapshot length — exact for the owner between its own operations,
    a safe approximation for any other observer. *)
let length (d : 'a t) : int =
  max 0 (Atomic.get d.bottom - Atomic.get d.top)

let is_empty (d : 'a t) : bool = length d = 0

(** Owner-only O(1) length bound: the owner's own [bottom] against the
    cached [top] — an upper bound on the true length (exact whenever
    the cache is fresh) that never reads the thief-contended [top]
    line.  This is what the runtime's [max_deque] stat samples. *)
let owner_length (d : 'a t) : int =
  max 0 (Atomic.get d.bottom - d.owner_top)

(* Owner-only: double the buffer, copying live cells [t, b). *)
let grow (d : 'a t) (t : int) (b : int) : unit =
  let old = d.owner_tab in
  let n = Array.length old in
  let n' = 2 * n in
  let tab = Array.init n' (fun _ -> Atomic.make None) in
  for i = t to b - 1 do
    Atomic.set tab.(i land (n' - 1)) (Atomic.get old.(i land (n - 1)))
  done;
  Atomic.set d.tab tab;
  d.owner_tab <- tab

(** Owner push at the bottom.  Fast path: no read of [top] or of the
    atomic buffer pointer — the cached [top] bound is conservative, so
    the real [top] is consulted only when the cache says the buffer
    might be full. *)
let push_bottom (d : 'a t) (x : 'a) : unit =
  let b = Atomic.get d.bottom in
  let tab = d.owner_tab in
  let tab =
    if b - d.owner_top >= Array.length tab then begin
      (* maybe full: refresh the bound, then grow only if truly full *)
      d.owner_top <- Atomic.get d.top;
      if b - d.owner_top >= Array.length tab then grow d d.owner_top b;
      d.owner_tab
    end
    else tab
  in
  Atomic.set tab.(b land (Array.length tab - 1)) (Some x);
  Atomic.set d.bottom (b + 1)

(** Owner pop at the bottom (LIFO).  The one-element case races with
    thieves and is decided by the CAS on [top]. *)
let pop_bottom (d : 'a t) : 'a option =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  d.owner_top <- t;
  if b < t then begin
    (* empty: restore the invariant bottom = top *)
    Atomic.set d.bottom t;
    None
  end
  else begin
    let tab = d.owner_tab in
    let cell = tab.(b land (Array.length tab - 1)) in
    let v = Atomic.get cell in
    if b > t then begin
      Atomic.set cell None;
      v
    end
    else begin
      (* last element: win it from the thieves or lose it to one *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      d.owner_top <- t + 1;
      if won then begin
        Atomic.set cell None;
        v
      end
      else None
    end
  end

(** Thief steal from the top (FIFO — the oldest task).  [None] means
    the deque looked empty {e or} the thief lost a race; callers treat
    both as "try elsewhere". *)
let steal_top (d : 'a t) : 'a option =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then None
  else begin
    let tab = Atomic.get d.tab in
    let v = Atomic.get tab.(t land (Array.length tab - 1)) in
    if Atomic.compare_and_set d.top t (t + 1) then v else None
  end
