(** Corpus of shrunk fuzz reproducers.

    Each reproducer is a plain [.tpal] file whose leading comment
    lines carry machine-readable metadata:

    {v
    //! seed: 12345
    //! oracle: sim-work
    //! outputs: r0 r1 r2 r3 r4 r5
    L0:  [.]
      ...
    v}

    The lexer strips [//] comments, so the files parse with the stock
    parser; the metadata is recovered by scanning raw lines.  Saved
    reproducers are replayed by the fuzz test suite as regressions. *)

open Tpal

type entry = {
  seed : int;
  oracle : string;  (** the oracle that failed when this was found *)
  outputs : Ast.reg list;
  prog : Ast.program;
}

let render (e : entry) : string =
  Printf.sprintf "//! seed: %d\n//! oracle: %s\n//! outputs: %s\n\n%s"
    e.seed e.oracle
    (String.concat " " e.outputs)
    (Printer.program_to_string e.prog)

(** [save ~dir e] writes the reproducer and returns its path.
    [?prefix] prepends a family tag to the filename (e.g. [chaos_] for
    crash-schedule reproducers, so they sort and grep as a group). *)
let save ?(prefix = "") ~(dir : string) (e : entry) : string =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path =
    Filename.concat dir
      (Printf.sprintf "%sseed_%d_%s.tpal" prefix e.seed e.oracle)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render e));
  path

let metadata_line (key : string) (line : string) : string option =
  let prefix = "//! " ^ key ^ ":" in
  if String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then
    Some
      (String.trim
         (String.sub line (String.length prefix)
            (String.length line - String.length prefix)))
  else None

let load_string (src : string) : (entry, string) result =
  let lines = String.split_on_char '\n' src in
  let field key =
    List.find_map (fun l -> metadata_line key (String.trim l)) lines
  in
  match (field "seed", field "oracle", field "outputs") with
  | Some seed, Some oracle, Some outputs -> (
      match int_of_string_opt seed with
      | None -> Error ("bad seed: " ^ seed)
      | Some seed -> (
          match Parser.parse_result src with
          | Error e -> Error e
          | Ok prog ->
              Ok
                { seed; oracle; prog;
                  outputs =
                    List.filter (fun s -> s <> "")
                      (String.split_on_char ' ' outputs) }))
  | _ -> Error "missing //! seed / //! oracle / //! outputs metadata"

let load (path : string) : (entry, string) result =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  load_string src

(** All reproducers in [dir], sorted by filename; [] when the
    directory does not exist. *)
let load_dir (dir : string) : (string * (entry, string) result) list =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".tpal")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load path))
