(** TPAL execution on the multi-domain heartbeat runtime: the
    {!Tpal_drive} interpreter core forking through
    {!Par.Runtime.fork2} inside one {!Par.Runtime.run} session — the
    fuzz battery's only executor where a generated program's forks can
    really run concurrently on separate domains.

    Uses the [`Polling] beat source (no ping domain): fuzz batteries
    run thousands of short sessions, and with polling a 1-domain
    session spawns no domains at all while an N-domain session spawns
    exactly N−1. *)

open Tpal

exception Stuck = Tpal_drive.Stuck

module Drive = Tpal_drive.Make (struct
  let fork2 = Par.Runtime.fork2
end)

let config ?(chaos : Par.Chaos.plan option) ~(domains : int)
    ~(heart_us : float) () : Par.Runtime.config =
  {
    Par.Runtime.default_config with
    domains;
    heart_us;
    source = `Polling;
    poll_stride = 1;
    chaos;
  }

(** [run ?options ?domains ?heart_us ?chaos p] interprets [p] inside
    one {!Par.Runtime.run} session at the given domain count,
    optionally under a seeded {!Par.Chaos.plan}.  Returns the final
    task and the scheduler's statistics.  A chaos [Raise] fault
    escapes as {!Par.Chaos.Injected} — callers opting into raising
    plans must treat it as a legal outcome. *)
let run ?(options = Eval.default_options) ?(domains = 2) ?(heart_us = 50.)
    ?chaos (p : Ast.program) :
    (Task.t * Par.Runtime.stats, Machine_error.t) result =
  try
    let task, stats =
      Par.Runtime.run
        ~config:(config ?chaos ~domains ~heart_us ())
        (fun () -> Drive.interpret ~options p)
    in
    Ok (task, stats)
  with Stuck e -> Error e
