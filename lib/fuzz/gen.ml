(** Seeded generator of well-formed TPAL programs.

    Programs are built from a handful of {e fragment} shapes chained
    sequentially from the entry block to a final [halt]:

    - straight-line integer arithmetic over a fixed register pool;
    - if/else diamonds that reconverge;
    - bounded counted loops carrying a no-op [prppt] handler (so the
      try-promote rule fires without changing results);
    - unconditional fork/join regions with a ΔR register merge and a
      combining block;
    - [jralloc] immediately discharged by [join] (the join-continue
      rule, no fork);
    - stack regions ([snew]/[salloc]/[load]/[store]/promotion marks)
      driven by a static model of the stack so every access is in
      bounds and every [prmpop]/[prmsplit] finds a mark;
    - a promotable reduction clone of the paper's [prod] (Figures
      32–34) with a randomized associative-commutative operator, the
      one fragment whose fork {e count} genuinely depends on heartbeat
      timing while its results stay invariant.

    Construction invariants the differential oracles rely on:

    - every loop is bounded by a literal counter, so all programs
      terminate on every execution path;
    - the output registers [r0..r5] only ever hold integers;
    - shift counts are literal and in [0,8], divisors are literal and
      non-zero (both would otherwise be machine errors / UB);
    - register names never collide with labels (labels start with
      ['L']) or with parser keywords;
    - all generated programs pass {!Tpal.Check} with zero errors. *)

open Tpal

type t = {
  seed : int;
  prog : Ast.program;
  outputs : Ast.reg list;  (** registers holding the observable result *)
  swap_safe : bool;
      (** safe to evaluate with [swap_joins]: every [Assoc_comm] join
          in the program has a register-symmetric continuation *)
}

let pool = [| "r0"; "r1"; "r2"; "r3"; "r4"; "r5" |]

(* ------------------------------------------------------------------ *)
(* Emission state: one current block being filled plus finished blocks. *)

type g = {
  rng : Sim.Prng.t;
  mutable blocks : (Ast.label * Ast.block) list;  (* reversed *)
  mutable cur_label : Ast.label;
  mutable cur_annot : Ast.annot;
  mutable cur_body : Ast.instr list;  (* reversed *)
  mutable fresh : int;
}

let fresh (g : g) : int =
  g.fresh <- g.fresh + 1;
  g.fresh

let emit (g : g) (i : Ast.instr) : unit = g.cur_body <- i :: g.cur_body

let close (g : g) (term : Ast.terminator) : unit =
  g.blocks <-
    (g.cur_label, { Ast.annot = g.cur_annot; body = List.rev g.cur_body; term })
    :: g.blocks

let open_block (g : g) ?(annot = Ast.Plain) (label : Ast.label) : unit =
  g.cur_label <- label;
  g.cur_annot <- annot;
  g.cur_body <- []

let add_block (g : g) ?(annot = Ast.Plain) (label : Ast.label)
    (body : Ast.instr list) (term : Ast.terminator) : unit =
  g.blocks <- (label, { Ast.annot = annot; body; term }) :: g.blocks

(* ------------------------------------------------------------------ *)
(* Random pieces. *)

let rand_pool (g : g) : Ast.reg = pool.(Sim.Prng.int g.rng (Array.length pool))
let rand_lit (g : g) : int = Sim.Prng.int g.rng 101 - 50

let rand_operand (g : g) : Ast.operand =
  if Sim.Prng.bool g.rng then Ast.Reg (rand_pool g) else Ast.Int (rand_lit g)

let safe_ops =
  [| Ast.Add; Sub; Mul; Lt; Le; Eq; Ne; Gt; Ge; And; Or; Xor |]

(* One arithmetic instruction writing into the pool; shifts get a
   bounded literal count and div/mod a non-zero literal divisor. *)
let emit_arith (g : g) : unit =
  match Sim.Prng.int g.rng 12 with
  | 0 -> emit g (Ast.Mov (rand_pool g, rand_operand g))
  | 1 ->
      let op = if Sim.Prng.bool g.rng then Ast.Shl else Ast.Shr in
      emit g
        (Ast.Binop (rand_pool g, op, rand_operand g, Ast.Int (Sim.Prng.int g.rng 9)))
  | 2 ->
      let op = if Sim.Prng.bool g.rng then Ast.Div else Ast.Mod in
      let d = 1 + Sim.Prng.int g.rng 9 in
      let d = if Sim.Prng.bool g.rng then d else -d in
      emit g (Ast.Binop (rand_pool g, op, rand_operand g, Ast.Int d))
  | _ ->
      let op = safe_ops.(Sim.Prng.int g.rng (Array.length safe_ops)) in
      emit g (Ast.Binop (rand_pool g, op, rand_operand g, rand_operand g))

let emit_ariths (g : g) (lo : int) (hi : int) : unit =
  let n = lo + Sim.Prng.int g.rng (hi - lo + 1) in
  for _ = 1 to n do
    emit_arith g
  done

(* ------------------------------------------------------------------ *)
(* Fragments.  Each appends to the current block and leaves the state
   with an open current block for the next fragment. *)

let frag_straight (g : g) : unit = emit_ariths g 2 6

let frag_diamond (g : g) : unit =
  let k = fresh g in
  let lthen = Printf.sprintf "L%d_then" k
  and lcont = Printf.sprintf "L%d_cont" k in
  emit_ariths g 0 2;
  emit g (Ast.If_jump (rand_pool g, Ast.Lab lthen));
  emit_ariths g 1 3;
  close g (Ast.Jump (Ast.Lab lcont));
  open_block g lthen;
  emit_ariths g 1 3;
  close g (Ast.Jump (Ast.Lab lcont));
  open_block g lcont

(* Counted loop wearing a no-op prppt handler: promotion diverts to
   [lh], which jumps straight back — the try-promote rule fires without
   observable effect, for any heartbeat threshold. *)
let frag_loop (g : g) : unit =
  let k = fresh g in
  let lloop = Printf.sprintf "L%d_loop" k
  and lh = Printf.sprintf "L%d_h" k
  and ldone = Printf.sprintf "L%d_done" k in
  let c = Printf.sprintf "c%d" k and t = Printf.sprintf "t%d" k in
  emit g (Ast.Mov (c, Ast.Int (1 + Sim.Prng.int g.rng 10)));
  close g (Ast.Jump (Ast.Lab lloop));
  open_block g ~annot:(Ast.Prppt lh) lloop;
  emit g (Ast.Binop (t, Ast.Le, Ast.Reg c, Ast.Int 0));
  emit g (Ast.If_jump (t, Ast.Lab ldone));
  emit_ariths g 1 3;
  emit g (Ast.Binop (c, Ast.Sub, Ast.Reg c, Ast.Int 1));
  close g (Ast.Jump (Ast.Lab lloop));
  add_block g lh [] (Ast.Jump (Ast.Lab lloop));
  open_block g ldone

(* Unconditional fork/join: the fork rule always fires (it is not
   promotion-gated), both branches are straight-line, and the join
   target merges two child registers through ΔR into fresh merge
   registers consumed by the combining block.  Policy is [Assoc]: the
   branches are not symmetric, so the runtime may not swap them. *)
let frag_fork (g : g) : unit =
  let k = fresh g in
  let lchild = Printf.sprintf "L%d_child" k
  and lk = Printf.sprintf "L%d_k" k
  and lcomb = Printf.sprintf "L%d_comb" k
  and lcont = Printf.sprintf "L%d_cont" k in
  let jr = Printf.sprintf "j%d" k in
  let m1 = Printf.sprintf "m%d" k and m2 = Printf.sprintf "n%d" k in
  let src1 = rand_pool g and src2 = rand_pool g in
  emit g (Ast.Jralloc (jr, lk));
  emit_ariths g 0 2;
  emit g (Ast.Fork (jr, Ast.Lab lchild));
  emit_ariths g 0 3;
  close g (Ast.Join jr);
  open_block g lchild;
  emit_ariths g 1 3;
  close g (Ast.Join jr);
  add_block g lcomb
    [
      Ast.Binop (rand_pool g, Ast.Add, Ast.Reg m1, Ast.Reg m2);
      Ast.Binop (rand_pool g, Ast.Xor, Ast.Reg (rand_pool g), Ast.Reg m1);
    ]
    (Ast.Join jr);
  open_block g ~annot:(Ast.Jtppt (Ast.Assoc, [ (src1, m1); (src2, m2) ], lcomb)) lk;
  emit_ariths g 0 2;
  close g (Ast.Jump (Ast.Lab lcont));
  open_block g lcont

(* jralloc discharged without a fork: the record is Closed when [join]
   runs, so the join-continue rule jumps straight to the continuation
   (whose jtppt annotation is never consulted on this path). *)
let frag_join_continue (g : g) : unit =
  let k = fresh g in
  let lk = Printf.sprintf "L%d_k" k and lcomb = Printf.sprintf "L%d_c" k in
  let jr = Printf.sprintf "j%d" k in
  emit g (Ast.Jralloc (jr, lk));
  emit_ariths g 1 2;
  close g (Ast.Join jr);
  add_block g lcomb [] (Ast.Join jr) (* unreachable, required by jtppt *);
  open_block g ~annot:(Ast.Jtppt (Ast.Assoc, [], lcomb)) lk

(* Stack region driven by a static model of the cells.  The model is a
   list with the newest cell (offset 0) first; [`Num] cells hold an
   integer, [`Mark] cells hold a promotion-ready mark.  Every address
   is generated in bounds and marks are tracked exactly, so no stack
   operation can fault. *)
let frag_stack (g : g) : unit =
  let k = fresh g in
  let sp = Printf.sprintf "s%d" k in
  emit g (Ast.Snew sp);
  let model = ref [] in
  let depth () = List.length !model
  and cell i = List.nth !model i in
  let set_cell i v =
    model := List.mapi (fun j c -> if j = i then v else c) !model
  in
  let salloc n =
    emit g (Ast.Salloc (sp, n));
    model := List.init n (fun _ -> `Num) @ !model
  in
  salloc (1 + Sim.Prng.int g.rng 3);
  let num_offsets () =
    List.filteri (fun i _ -> cell i = `Num) (List.mapi (fun i _ -> i) !model)
  and mark_offsets () =
    List.filteri (fun i _ -> cell i = `Mark) (List.mapi (fun i _ -> i) !model)
  in
  let pick xs = List.nth xs (Sim.Prng.int g.rng (List.length xs)) in
  let ops = 4 + Sim.Prng.int g.rng 7 in
  for _ = 1 to ops do
    match Sim.Prng.int g.rng 8 with
    | 0 when depth () < 8 -> salloc (1 + Sim.Prng.int g.rng 3)
    | 1 when depth () > 1 ->
        let n = 1 + Sim.Prng.int g.rng (depth () - 1) in
        emit g (Ast.Sfree (sp, n));
        model := List.filteri (fun i _ -> i >= n) !model
    | 2 ->
        let off = Sim.Prng.int g.rng (depth ()) in
        emit g (Ast.Store (sp, off, rand_operand g));
        set_cell off `Num
    | 3 when num_offsets () <> [] ->
        emit g (Ast.Load (rand_pool g, sp, pick (num_offsets ())))
    | 4 ->
        let off = Sim.Prng.int g.rng (depth ()) in
        emit g (Ast.Prmpush (sp, off));
        set_cell off `Mark
    | 5 when mark_offsets () <> [] ->
        let off = pick (mark_offsets ()) in
        emit g (Ast.Prmpop (sp, off));
        set_cell off `Num
    | 6 when mark_offsets () <> [] ->
        (* prmsplit clears the oldest (deepest) mark and stores its
           offset; mirror that on the model *)
        emit g (Ast.Prmsplit (sp, rand_pool g));
        set_cell (List.fold_left max 0 (mark_offsets ())) `Num
    | _ -> emit g (Ast.Prmempty (rand_pool g, sp))
  done;
  (* surface a couple of cells into the observable registers *)
  (match num_offsets () with
  | [] -> ()
  | offs ->
      emit g (Ast.Load (rand_pool g, sp, pick offs));
      emit g (Ast.Load (rand_pool g, sp, pick offs)))

(* Promotable reduction: a clone of the paper's [prod] (Figures 32–34)
   over a randomized associative-commutative operator.  The number of
   forks depends on when heartbeats arrive; the reduced value must
   not.  This is the only fragment whose joins are [Assoc_comm], and
   its continuation is register-symmetric, so the whole program stays
   safe under [swap_joins]. *)
let frag_reduce (g : g) : unit =
  let k = fresh g in
  let l s = Printf.sprintf "L%d_%s" k s in
  let a = Printf.sprintf "a%d" k
  and b = Printf.sprintf "b%d" k
  and acc = Printf.sprintf "acc%d" k
  and acc2 = Printf.sprintf "acd%d" k
  and t = Printf.sprintf "t%d" k
  and q = Printf.sprintf "q%d" k
  and w = Printf.sprintf "w%d" k
  and tr = Printf.sprintf "tr%d" k
  and jr = Printf.sprintf "j%d" k in
  let op, ident =
    match Sim.Prng.int g.rng 3 with
    | 0 -> (Ast.Add, 0)
    | 1 -> (Ast.Xor, 0)
    | _ -> (Ast.Mul, 1)
  in
  let out = rand_pool g in
  emit g (Ast.Mov (a, Ast.Int (3 + Sim.Prng.int g.rng 38)));
  emit g
    (Ast.Mov (b, Ast.Int (if op = Ast.Mul then 1 + Sim.Prng.int g.rng 3
                          else rand_lit g)));
  emit g (Ast.Mov (acc, Ast.Int ident));
  close g (Ast.Jump (Ast.Lab (l "loop")));
  (* serial loop, promotable at its head *)
  add_block g ~annot:(Ast.Prppt (l "ltp")) (l "loop")
    [
      Ast.If_jump (a, Ast.Lab (l "exit"));
      Ast.Binop (acc, op, Ast.Reg acc, Ast.Reg b);
      Ast.Binop (a, Ast.Sub, Ast.Reg a, Ast.Int 1);
    ]
    (Ast.Jump (Ast.Lab (l "loop")));
  add_block g (l "ltp")
    [
      Ast.Binop (t, Ast.Lt, Ast.Reg a, Ast.Int 2);
      Ast.If_jump (t, Ast.Lab (l "loop"));
      Ast.Jralloc (jr, l "exit");
    ]
    (Ast.Jump (Ast.Lab (l "promote")));
  add_block g (l "lptp")
    [
      Ast.Binop (t, Ast.Lt, Ast.Reg a, Ast.Int 2);
      Ast.If_jump (t, Ast.Lab (l "looppar"));
    ]
    (Ast.Jump (Ast.Lab (l "promote")));
  add_block g (l "promote")
    [
      Ast.Binop (q, Ast.Div, Ast.Reg a, Ast.Int 2);
      Ast.Binop (w, Ast.Mod, Ast.Reg a, Ast.Int 2);
      Ast.Mov (a, Ast.Reg q);
      Ast.Mov (tr, Ast.Reg acc);
      Ast.Mov (acc, Ast.Int ident);
      Ast.Fork (jr, Ast.Lab (l "looppar"));
      Ast.Binop (a, Ast.Add, Ast.Reg q, Ast.Reg w);
      Ast.Mov (acc, Ast.Reg tr);
    ]
    (Ast.Jump (Ast.Lab (l "looppar")));
  add_block g ~annot:(Ast.Prppt (l "lptp")) (l "looppar")
    [
      Ast.If_jump (a, Ast.Lab (l "exitpar"));
      Ast.Binop (acc, op, Ast.Reg acc, Ast.Reg b);
      Ast.Binop (a, Ast.Sub, Ast.Reg a, Ast.Int 1);
    ]
    (Ast.Jump (Ast.Lab (l "looppar")));
  add_block g (l "comb")
    [ Ast.Binop (acc, op, Ast.Reg acc, Ast.Reg acc2) ]
    (Ast.Join jr);
  add_block g (l "exitpar") [] (Ast.Join jr);
  open_block g
    ~annot:(Ast.Jtppt (Ast.Assoc_comm, [ (acc, acc2) ], l "comb"))
    (l "exit");
  emit g (Ast.Mov (out, Ast.Reg acc));
  let lcont = l "cont" in
  close g (Ast.Jump (Ast.Lab lcont));
  open_block g lcont

(* ------------------------------------------------------------------ *)

let generate ~(seed : int) : t =
  let rng = Sim.Prng.create ~seed:(seed lxor 0xF022) in
  let g =
    { rng; blocks = []; cur_label = "L0"; cur_annot = Ast.Plain;
      cur_body = []; fresh = 0 }
  in
  open_block g "L0";
  Array.iter (fun r -> emit g (Ast.Mov (r, Ast.Int (rand_lit g)))) pool;
  let nfrags = 3 + Sim.Prng.int g.rng 5 in
  for _ = 1 to nfrags do
    (* weighted fragment choice *)
    match Sim.Prng.int g.rng 13 with
    | 0 | 1 | 2 -> frag_straight g
    | 3 | 4 -> frag_diamond g
    | 5 | 6 -> frag_loop g
    | 7 | 8 -> frag_fork g
    | 9 -> frag_join_continue g
    | 10 | 11 -> frag_stack g
    | _ -> frag_reduce g
  done;
  close g Ast.Halt;
  let prog = { Ast.entry = "L0"; blocks = List.rev g.blocks } in
  (match Check.errors prog with
  | [] -> ()
  | ds ->
      Fmt.failwith "Fuzz.Gen: seed %d generated an ill-formed program:@ %a@ %s"
        seed
        (Fmt.list Check.pp_diagnostic)
        ds
        (Printer.program_to_string prog));
  { seed; prog; outputs = Array.to_list pool; swap_safe = true }
