(** TPAL execution on the real (single-domain) heartbeat runtime: the
    {!Tpal_drive} interpreter core forking through
    {!Heartbeat.Hb_runtime.fork2} inside one {!Heartbeat.Hb_runtime.run}
    session. *)

open Tpal
module Hb = Heartbeat.Hb_runtime

exception Stuck = Tpal_drive.Stuck

(** Polling source so runs make no use of signals; a short beat so
    promotions actually happen in sub-millisecond programs. *)
let default_config : Hb.config =
  { heart_us = 50.; source = `Polling; poll_stride = 1; lease_beats = 0;
    on_event = None }

module Drive = Tpal_drive.Make (struct
  let fork2 = Hb.fork2
end)

(** [run ?options ?config p] interprets [p] from its entry block with
    an empty register file inside one {!Hb.run} session.  Returns the
    final task and the runtime's statistics (beats, promotions, …). *)
let run ?(options = Eval.default_options) ?(config = default_config)
    (p : Ast.program) : (Task.t * Hb.stats, Machine_error.t) result =
  try
    let result = ref None in
    let (), stats =
      Hb.run ~config (fun () -> result := Some (Drive.interpret ~options p))
    in
    Ok (Option.get !result, stats)
  with Stuck e -> Error e
