(** Shadow interpreter: evaluates a TPAL program with the same rules
    as {!Tpal.Eval} (reusing {!Tpal.Step.step} for the sequential
    transitions) while building the induced series–parallel graph as a
    {!Sim.Par_ir.t}, with every sequential transition charged [cpi]
    simulator cycles.

    This gives the differential harness two things:

    - an {e independent} implementation of the parallel rules
      (fork/join/combine/promote) to cross-check [Eval]'s final
      register file against;
    - a concrete [Par_ir] program whose [work]/[span] must agree with
      the {!Tpal.Cost} summary the evaluator computed, and which can
      then be run through the discrete-event simulator, tying all
      three layers of the codebase to one program.

    Exact cost correspondence (checked by the harness): the evaluator
    charges one work unit per spend plus [τ] per fork, so for the same
    heartbeat threshold

    [Par_ir.work ir = cpi * (cost.work - tau * forks)]

    and the span satisfies

    [cpi * (cost.span - tau * forks) <= Par_ir.span ir
                                     <= cpi * cost.span]

    (only the forks on the critical path carry their τ in the span,
    and the IR does not model τ at all). *)

open Tpal

exception Stuck of Machine_error.t

let ok = function Ok v -> v | Error e -> raise (Stuck e)

type result_t = {
  task : Task.t;  (** final configuration (registers, heap, stacks) *)
  ir : Sim.Par_ir.t;
  steps : int;  (** sequential transitions = [Eval] [stats.instructions] *)
  forks : int;
}

type stop = Halted | Blocked of int

type st = {
  opts : Eval.options;
  cpi : int;
  mutable steps : int;
  mutable forks : int;
  mutable fuel : int;
}

let spend (st : st) : unit =
  if st.fuel <= 0 then
    raise (Stuck (Machine_error.Fuel_exhausted { budget = st.opts.fuel }));
  st.fuel <- st.fuel - 1;
  st.steps <- st.steps + 1

let enter_fresh (t : Task.t) (label : Ast.label) : Task.t =
  let block = ok (Heap.find label t.heap) in
  Task.enter label block ~cycles:0 ~heap:t.heap ~regs:t.regs

(* IR nodes accumulate in reverse; [leaf] counts sequential
   transitions not yet flushed into a Leaf. *)
let flush (st : st) (nodes : Sim.Par_ir.t list) (leaf : int) :
    Sim.Par_ir.t list =
  if leaf = 0 then nodes else Sim.Par_ir.Leaf (leaf * st.cpi) :: nodes

let branch_ir (nodes : Sim.Par_ir.t list) : Sim.Par_ir.t =
  match nodes with [ n ] -> n | _ -> Sim.Par_ir.Seq (List.rev nodes)

let join_id (jr : Ast.reg) (regs : Regfile.t) ~(context : string) : int =
  match ok (Regfile.find jr regs) with
  | Value.Vjoin j -> j
  | other ->
      raise
        (Stuck
           (Machine_error.Type_error
              { expected = "join-record"; got = Value.kind other; context }))

(* One big-step derivation: runs until halt or a terminal join-block,
   mirroring Eval's rules one for one. *)
let rec go (st : st) (joins : Join.t) (task : Task.t)
    (nodes : Sim.Par_ir.t list) (leaf : int) :
    Join.t * Task.t * Sim.Par_ir.t list * stop =
  match Eval.promotion_ready st.opts task with
  | Some handler ->
      spend st;
      go st joins (enter_fresh task handler) nodes (leaf + 1)
  | None -> (
      match ok (Step.step task) with
      | Step.Stepped task' ->
          spend st;
          go st joins task' nodes (leaf + 1)
      | Step.Halted task' -> (joins, task', flush st nodes leaf, Halted)
      | Step.Parallel (req, task) -> (
          match req with
          | Step.Req_jralloc { dst; cont } ->
              spend st;
              let id, joins' = Join.alloc cont joins in
              let rest = List.tl task.code.rest in
              let task' =
                { task with
                  pc = { task.pc with offset = task.pc.offset + 1 };
                  cycles = task.cycles + 1;
                  regs = Regfile.set dst (Value.Vjoin id) task.regs;
                  code = { task.code with rest } }
              in
              go st joins' task' nodes (leaf + 1)
          | Step.Req_join { jr } -> (
              let j = join_id jr task.regs ~context:("join " ^ jr) in
              let record = ok (Join.find j joins) in
              match record.status with
              | Join.Open ->
                  spend st;
                  (joins, task, flush st nodes (leaf + 1), Blocked j)
              | Join.Closed ->
                  spend st;
                  let joins' = Join.remove j joins in
                  let block = ok (Heap.find record.cont task.heap) in
                  let task' =
                    Task.enter record.cont block ~cycles:task.cycles
                      ~heap:task.heap ~regs:task.regs
                  in
                  go st joins' task' nodes (leaf + 1))
          | Step.Req_fork { jr; target } -> (
              let j = join_id jr task.regs ~context:("fork " ^ jr) in
              let record = ok (Join.find j joins) in
              st.forks <- st.forks + 1;
              let joins0 = Join.set j { record with status = Join.Open } joins in
              let rest = List.tl task.code.rest in
              let parent0 =
                { task with
                  pc = { task.pc with offset = task.pc.offset + 1 };
                  cycles = 0;
                  code = { task.code with rest } }
              in
              let child_label, child_block =
                ok (Heap.resolve task.heap task.regs target)
              in
              let child0 =
                Task.enter child_label child_block ~cycles:0 ~heap:task.heap
                  ~regs:task.regs
              in
              let j1, t1, n1, s1 = go st joins0 parent0 [] 0 in
              match s1 with
              | Halted -> (j1, t1, branch_ir n1 :: flush st nodes leaf, Halted)
              | Blocked jb1 -> (
                  if jb1 <> j then
                    raise
                      (Stuck
                         (Machine_error.Join_misuse
                            { join = j;
                              reason =
                                Printf.sprintf
                                  "parent branch joined on j%d instead" jb1 }));
                  let j2, t2, n2, s2 = go st joins0 child0 [] 0 in
                  match s2 with
                  | Halted ->
                      (j2, t2, branch_ir n2 :: flush st nodes leaf, Halted)
                  | Blocked jb2 ->
                      if jb2 <> j then
                        raise
                          (Stuck
                             (Machine_error.Join_misuse
                                { join = j;
                                  reason =
                                    Printf.sprintf
                                      "child branch joined on j%d instead" jb2 }));
                      let jp, dr, comb_label =
                        match Heap.find_opt record.cont task.heap with
                        | Some { annot = Ast.Jtppt (jp, dr, l); _ } ->
                            (jp, dr, l)
                        | Some _ ->
                            raise
                              (Stuck
                                 (Machine_error.Join_misuse
                                    { join = j;
                                      reason =
                                        "join continuation " ^ record.cont
                                        ^ " is not a join-target (jtppt) block"
                                    }))
                        | None ->
                            raise
                              (Stuck (Machine_error.Unbound_label record.cont))
                      in
                      let r_parent, r_child =
                        match (jp, st.opts.swap_joins) with
                        | Ast.Assoc_comm, true -> (t2.regs, t1.regs)
                        | (Ast.Assoc | Ast.Assoc_comm), _ -> (t1.regs, t2.regs)
                      in
                      let merged_regs = Regfile.merge r_parent r_child dr in
                      let merged_heap = Heap.merge t1.heap t2.heap in
                      let merged_joins =
                        Join.set j record (Join.remove j (Join.merge j1 j2))
                      in
                      let comb_block = ok (Heap.find comb_label merged_heap) in
                      let comb0 =
                        Task.enter comb_label comb_block ~cycles:0
                          ~heap:merged_heap ~regs:merged_regs
                      in
                      let ir1 = branch_ir n1 and ir2 = branch_ir n2 in
                      let node =
                        Sim.Par_ir.Spawn2 ((fun () -> ir1), fun () -> ir2)
                      in
                      let jm, tm, nc, sc =
                        go st merged_joins comb0 [] 0
                      in
                      (jm, tm, nc @ (node :: flush st nodes leaf), sc)))))

(** [lower ?options ~cpi p] evaluates [p] (empty initial registers) and
    returns the final configuration together with the [Par_ir] image of
    its execution.  Raises {!Stuck} on a machine error or when the
    top-level derivation ends blocked. *)
let lower ?(options = Eval.default_options) ~(cpi : int) (p : Ast.program) :
    result_t =
  let st =
    { opts = options; cpi; steps = 0; forks = 0; fuel = options.fuel }
  in
  let task0 = ok (Task.initial p) in
  let _, task, nodes, stop = go st Join.empty task0 [] 0 in
  match stop with
  | Blocked j ->
      raise
        (Stuck
           (Machine_error.Join_misuse
              { join = j; reason = "top-level derivation ended blocked" }))
  | Halted ->
      { task; ir = branch_ir nodes; steps = st.steps; forks = st.forks }
