(** The TPAL-on-a-real-scheduler interpreter core, shared by
    {!Hb_exec} (the single-domain effects runtime) and {!Par_exec}
    (the multi-domain runtime).

    Interprets a TPAL program with the abstract machine's rules
    ({!Tpal.Step.step} for sequential transitions, the evaluator's
    promotion rule for handler diversion), but runs each fork's two
    branches through the scheduler's [fork2]: the child branch is a
    {e latent} task that stays serial unless a real (wall-clock)
    heartbeat promotes it.

    Promotion of TPAL-level prppt handlers stays deterministic (driven
    by the ⋄ > ♥ rule with the given [options]), while the scheduling
    of the resulting forks is at the mercy of real time — which is the
    point: whatever interleaving and promotion schedule the runtime
    picks, the final register file must match the sequential
    evaluator's.  Both branches are complete when [fork2] returns, so
    the join/combine logic below is timing-independent.

    Under the multi-domain scheduler the two branches may really run
    concurrently, so the only shared mutable state — the fuel budget —
    is an [Atomic]; everything else the branches touch (task state,
    join maps, heaps) is functional and flows through the per-branch
    results. *)

open Tpal

exception Stuck of Machine_error.t

let ok = function Ok v -> v | Error e -> raise (Stuck e)

type stop = Halted | Blocked of int

module type FORK = sig
  val fork2 : (unit -> unit) -> (unit -> unit) -> unit
end

module Make (F : FORK) = struct
  let enter_fresh (t : Task.t) (label : Ast.label) : Task.t =
    let block = ok (Heap.find label t.heap) in
    Task.enter label block ~cycles:0 ~heap:t.heap ~regs:t.regs

  let join_id (jr : Ast.reg) (regs : Regfile.t) ~(context : string) : int =
    match ok (Regfile.find jr regs) with
    | Value.Vjoin j -> j
    | other ->
        raise
          (Stuck
             (Machine_error.Type_error
                { expected = "join-record"; got = Value.kind other; context }))

  (** [interpret ~options p] runs [p] from its entry block with an
      empty register file, forking through [F.fork2].  Must be called
      from inside the scheduler's session; raises {!Stuck} on any
      machine error (including a blocked top-level derivation). *)
  let interpret ~(options : Eval.options) (p : Ast.program) : Task.t =
    let fuel = Atomic.make options.fuel in
    let rec drive (joins : Join.t) (task : Task.t) : Join.t * Task.t * stop =
      if Atomic.fetch_and_add fuel (-1) <= 0 then
        raise (Stuck (Machine_error.Fuel_exhausted { budget = options.fuel }));
      match Eval.promotion_ready options task with
      | Some handler -> drive joins (enter_fresh task handler)
      | None -> (
          match ok (Step.step task) with
          | Step.Stepped task' -> drive joins task'
          | Step.Halted task' -> (joins, task', Halted)
          | Step.Parallel (req, task) -> (
              match req with
              | Step.Req_jralloc { dst; cont } ->
                  let id, joins' = Join.alloc cont joins in
                  let rest = List.tl task.code.rest in
                  let task' =
                    { task with
                      pc = { task.pc with offset = task.pc.offset + 1 };
                      cycles = task.cycles + 1;
                      regs = Regfile.set dst (Value.Vjoin id) task.regs;
                      code = { task.code with rest } }
                  in
                  drive joins' task'
              | Step.Req_join { jr } -> (
                  let j = join_id jr task.regs ~context:("join " ^ jr) in
                  let record = ok (Join.find j joins) in
                  match record.status with
                  | Join.Open -> (joins, task, Blocked j)
                  | Join.Closed ->
                      let joins' = Join.remove j joins in
                      let block = ok (Heap.find record.cont task.heap) in
                      drive joins'
                        (Task.enter record.cont block ~cycles:task.cycles
                           ~heap:task.heap ~regs:task.regs))
              | Step.Req_fork { jr; target } -> (
                  let j = join_id jr task.regs ~context:("fork " ^ jr) in
                  let record = ok (Join.find j joins) in
                  let joins0 =
                    Join.set j { record with status = Join.Open } joins
                  in
                  let rest = List.tl task.code.rest in
                  let parent0 =
                    { task with
                      pc = { task.pc with offset = task.pc.offset + 1 };
                      cycles = 0;
                      code = { task.code with rest } }
                  in
                  let child_label, child_block =
                    ok (Heap.resolve task.heap task.regs target)
                  in
                  let child0 =
                    Task.enter child_label child_block ~cycles:0
                      ~heap:task.heap ~regs:task.regs
                  in
                  (* the real fork: the child thunk is advertised to
                     the heartbeat scheduler; both refs are filled by
                     the time fork2 returns, whether or not it was
                     promoted *)
                  let r1 = ref None and r2 = ref None in
                  F.fork2
                    (fun () -> r1 := Some (drive joins0 parent0))
                    (fun () -> r2 := Some (drive joins0 child0));
                  let j1, t1, s1 = Option.get !r1 in
                  match s1 with
                  | Halted -> (j1, t1, Halted)
                  | Blocked jb1 -> (
                      if jb1 <> j then
                        raise
                          (Stuck
                             (Machine_error.Join_misuse
                                { join = j;
                                  reason =
                                    Printf.sprintf
                                      "parent branch joined on j%d instead"
                                      jb1 }));
                      let j2, t2, s2 = Option.get !r2 in
                      match s2 with
                      | Halted -> (j2, t2, Halted)
                      | Blocked jb2 ->
                          if jb2 <> j then
                            raise
                              (Stuck
                                 (Machine_error.Join_misuse
                                    { join = j;
                                      reason =
                                        Printf.sprintf
                                          "child branch joined on j%d instead"
                                          jb2 }));
                          let dr =
                            match Heap.find_opt record.cont task.heap with
                            | Some { annot = Ast.Jtppt (_, dr, _); _ } -> dr
                            | Some _ ->
                                raise
                                  (Stuck
                                     (Machine_error.Join_misuse
                                        { join = j;
                                          reason =
                                            "join continuation " ^ record.cont
                                            ^ " is not a join-target (jtppt) \
                                               block" }))
                            | None ->
                                raise
                                  (Stuck
                                     (Machine_error.Unbound_label record.cont))
                          in
                          let comb_label =
                            match Heap.find_opt record.cont task.heap with
                            | Some { annot = Ast.Jtppt (_, _, l); _ } -> l
                            | _ -> assert false
                          in
                          let merged_regs = Regfile.merge t1.regs t2.regs dr in
                          let merged_heap = Heap.merge t1.heap t2.heap in
                          let merged_joins =
                            Join.set j record (Join.remove j (Join.merge j1 j2))
                          in
                          let comb_block =
                            ok (Heap.find comb_label merged_heap)
                          in
                          drive merged_joins
                            (Task.enter comb_label comb_block ~cycles:0
                               ~heap:merged_heap ~regs:merged_regs)))))
    in
    let task0 = ok (Task.initial p) in
    match drive Join.empty task0 with
    | _, task, Halted -> task
    | _, _, Blocked j ->
        raise
          (Stuck
             (Machine_error.Join_misuse
                { join = j; reason = "top-level derivation ended blocked" }))
end
