(** Differential oracle battery.

    [check] runs one program through every executor in the repo and
    returns the list of divergences (empty = all oracles hold):

    - {b eval-ref}: the sequential evaluator (♥ off) halts cleanly —
      the reference semantics everything else is compared against.
    - {b eval-heart}: evaluation with promotion enabled at several
      heartbeat thresholds produces identical outputs (promotion is a
      pure performance mechanism).
    - {b eval-swap}: [swap_joins] (the Assoc_comm role-swap freedom)
      leaves outputs unchanged on swap-safe programs.
    - {b eval-cost}: the cost summary obeys [work = instructions +
      τ·forks] and [span ≤ work].
    - {b round-trip}: [parse (print p) = p].
    - {b lower-*}: the {!Lower} shadow interpreter agrees with the
      evaluator on outputs, step counts, and the work/span of its
      [Par_ir] image matches the evaluator's cost summary.
    - {b sim-*}: the discrete-event simulator run on the lowered
      [Par_ir], across core counts and all three interrupt mechanisms:
      conservation of work, exact serial makespan, span/work lower
      bounds, a Brent-style upper bound, and bit-identical metrics on
      repeated runs (seed determinism).
    - {b fault-*}: the same simulations under injected beat faults
      (drops, duplicates, extra jitter) and spurious steal failures
      still complete, conserve work, and respect the lower bounds.
    - {b chaos-*}: simulations under a random crash/stall/slow-core
      schedule ({!Sim.Interrupts.random_schedule}): the run completes
      (no livelock) as long as one core survives, every IR cycle is
      executed at least once (re-execution may add more), the span and
      W/P lower bounds hold, the makespan stays within a Brent-style
      bound at the {e surviving} core count with an allowance for the
      lease-detection latency of each recovery, and repeated runs are
      bit-identical (seed determinism of the recovery machinery).
    - {b hb-*}: the program executed on the real heartbeat runtime
      (OCaml effects, wall-clock beats) matches the reference
      outputs.
    - {b par-*}: the program executed on the multi-domain runtime
      ({!Par_exec}) at each configured domain count matches the
      reference outputs — forks really run concurrently here, so this
      oracle is the battery's only check of cross-domain promotion,
      stealing, and join resolution. *)

open Tpal

type divergence = { oracle : string; detail : string }

type cfg = {
  cores : int list;
  mechs : Sim.Interrupts.mech list;
  faults : bool;
  chaos : bool;
      (** run the crash/stall/slow-core schedule battery (the recovery
          layer's oracle); off by default — it roughly doubles the
          simulator share of the battery *)
  hb : bool;
  par : int list;
      (** domain counts for the multi-domain runtime oracle; [[]]
          switches it off *)
  chaos_par : bool;
      (** run the {e real} runtime under a seeded {!Par.Chaos} fault
          plan (stalls / slow beats / dropped beats / injected raises)
          at 1/2/4 domains: timing faults must leave outputs
          bit-identical to the reference, an injected raise must
          surface as the typed {!Par.Chaos.Injected} — never a hang,
          a livelock, or a torn register file.  Off by default. *)
}

let default_cfg =
  {
    cores = [ 1; 4; 15 ];
    mechs = [ Sim.Interrupts.Ping_thread; Papi; Nautilus_ipi ];
    faults = true;
    chaos = false;
    hb = true;
    par = [ 1; 2; 4 ];
    chaos_par = false;
  }

(** Simulator cycles charged per TPAL instruction when lowering.
    Chosen so that typical generated programs (hundreds to thousands
    of TPAL steps) span several heartbeat periods in the simulator. *)
let cpi = 300

(** Simulated ♥ for the battery.  Must comfortably exceed the most
    expensive interrupt handler (Papi's 8 100 cycles): a beat period
    shorter than the handler cost is a pathological regime in which
    cores can do nothing but service their growing beat backlog and
    tasks starve — a property of the configuration, not a scheduler
    bug, so the harness stays out of it. *)
let sim_heart_us = 8.0

let hearts = [ 5; 17; 101 ]

let ref_options : Eval.options =
  { heart = None; tau = 1; fuel = 5_000_000; swap_joins = false }

let with_heart h = { ref_options with heart = Some h }

(* ------------------------------------------------------------------ *)

let snapshot (outputs : Ast.reg list) (regs : Regfile.t) :
    (Ast.reg * Value.t option) list =
  List.map (fun r -> (r, Regfile.find_opt r regs)) outputs

let pp_value_opt ppf = function
  | None -> Fmt.string ppf "unbound"
  | Some v -> Value.pp ppf v

let compare_outputs ~(oracle : string) ~(what : string)
    (expected : (Ast.reg * Value.t option) list)
    (got : (Ast.reg * Value.t option) list) : divergence list =
  List.concat_map
    (fun ((r, ve), (_, vg)) ->
      let same =
        match (ve, vg) with
        | None, None -> true
        | Some a, Some b -> Value.equal a b
        | _ -> false
      in
      if same then []
      else
        [ { oracle;
            detail =
              Fmt.str "%s: %s = %a, expected %a" what r pp_value_opt vg
                pp_value_opt ve } ])
    (List.combine expected got)

let div oracle fmt = Fmt.kstr (fun detail -> { oracle; detail }) fmt

(* ------------------------------------------------------------------ *)
(* Simulator oracles for one configuration. *)

let sim_run ~(params : Sim.Params.t) ~(mech : Sim.Interrupts.mech)
    ~(faults : Sim.Interrupts.faults) ~(horizon : int) (ir : Sim.Par_ir.t) :
    (Sim.Metrics.t, divergence) result =
  let rcfg = Sim.Runnable.make_cfg Sim.Runnable.Tpal params in
  let config = Sim.Engine.make_config ~mech ~mem_intensity:0.3 ~faults rcfg in
  match Sim.Engine.run ~horizon config ir with
  | m -> Ok m
  | exception Sim.Engine.Horizon_exceeded t ->
      Error
        (div "sim-livelock" "P=%d %s: no completion by t=%d" params.procs
           (Sim.Interrupts.mech_name mech) t)

let check_sim_config ~(tag : string) ~(params : Sim.Params.t)
    ~(mech : Sim.Interrupts.mech) ~(faults : Sim.Interrupts.faults)
    ~(check_upper : bool) (ir : Sim.Par_ir.t) ~(work : int) ~(span : int) :
    divergence list =
  let p = max 1 params.procs in
  let horizon = (60 * work) + 50_000_000 in
  match sim_run ~params ~mech ~faults ~horizon ir with
  | Error d -> [ d ]
  | Ok m ->
      let where =
        Fmt.str "%sP=%d %s" tag params.procs (Sim.Interrupts.mech_name mech)
      in
      let ds = ref [] in
      let fail oracle fmt =
        Fmt.kstr (fun detail -> ds := { oracle; detail } :: !ds) fmt
      in
      if m.work <> work then
        fail (tag ^ "sim-work") "%s: work %d, IR work %d" where m.work work;
      if m.makespan * p < work then
        fail (tag ^ "sim-lower-bound") "%s: makespan %d < W/P = %d/%d" where
          m.makespan work p;
      if m.makespan < span then
        fail (tag ^ "sim-lower-bound") "%s: makespan %d < span %d" where
          m.makespan span;
      if check_upper then begin
        (* Brent-style bound with allowances for beat-granularity and
           per-beat scheduling costs; validated empirically over large
           fuzz batteries, it catches livelocks and gross scheduling
           anomalies rather than modest constant drift. *)
        let heart = Sim.Params.heart_cycles params in
        let per_beat =
          params.tau_promote + params.steal_cost + params.signal_handle
          + params.papi_handle
        in
        let beats = 2 + (m.makespan / max 1 heart) in
        let upper =
          (4 * ((work / p) + span)) + (4 * heart) + (beats * per_beat)
          + (64 * params.steal_retry)
        in
        if m.makespan > upper then
          fail (tag ^ "sim-upper-bound") "%s: makespan %d > bound %d (W=%d S=%d)"
            where m.makespan upper work span
      end;
      (* seed determinism: an identical second run *)
      (match sim_run ~params ~mech ~faults ~horizon ir with
      | Error d -> ds := d :: !ds
      | Ok m' ->
          if m <> m' then
            fail (tag ^ "sim-determinism") "%s: two runs with one seed differ"
              where);
      List.rev !ds

(* ------------------------------------------------------------------ *)
(* Chaos battery: a random crash/stall/slow-core schedule, checked with
   the recovery layer's oracles. *)

let check_chaos ~(params : Sim.Params.t) ~(mech : Sim.Interrupts.mech)
    (ir : Sim.Par_ir.t) ~(work : int) ~(span : int) : divergence list =
  let p = max 1 params.procs in
  let horizon = (60 * work) + 50_000_000 in
  (* the fault-free run fixes the time window the schedule is drawn
     over, so faults land while the program is actually running *)
  match sim_run ~params ~mech ~faults:Sim.Interrupts.no_faults ~horizon ir with
  | Error d -> [ d ]
  | Ok m0 ->
      let schedule =
        Sim.Interrupts.random_schedule ~seed:params.seed ~procs:p
          ~horizon:(max 1 m0.makespan)
      in
      let faults = { Sim.Interrupts.no_faults with schedule } in
      let heart = max 1 (Sim.Params.heart_cycles params) in
      (* mirrors the engine's lease TTL (lease_beats·♥ + two segment
         lengths) and sweep period *)
      let ttl = (max 1 params.lease_beats * heart) + 500_000 in
      let sweep = max 1 (max 1 params.sweep_beats * heart) in
      let stall_total =
        List.fold_left
          (fun acc (f : Sim.Interrupts.core_fault) ->
            match f.kind with Sim.Interrupts.Stall n -> acc + n | _ -> acc)
          0 schedule
      in
      let n_faults = List.length schedule in
      (* every injected fault may cost one lease-detection latency plus
         a full re-execution before the run can finish *)
      let chaos_horizon =
        horizon + stall_total + (n_faults * (ttl + (2 * sweep) + work))
      in
      let where =
        Fmt.str "chaos P=%d %s (%d faults)" p (Sim.Interrupts.mech_name mech)
          n_faults
      in
      (match sim_run ~params ~mech ~faults ~horizon:chaos_horizon ir with
      | Error d -> [ { d with oracle = "chaos-livelock" } ]
      | Ok m ->
          let ds = ref [] in
          let fail oracle fmt =
            Fmt.kstr (fun detail -> ds := { oracle; detail } :: !ds) fmt
          in
          (* conservation, weakened to ≥: re-execution legitimately
             repeats the cycles since a lost task's checkpoint, but
             nothing may be silently lost *)
          if m.work < work then
            fail "chaos-work-lost" "%s: work %d < IR work %d" where m.work
              work;
          if m.makespan * p < work then
            fail "chaos-lower-bound" "%s: makespan %d < W/P = %d/%d" where
              m.makespan work p;
          if m.makespan < span then
            fail "chaos-lower-bound" "%s: makespan %d < span %d" where
              m.makespan span;
          (* Brent-style upper bound at the surviving core count, with
             an allowance per recovery event: detection latency (TTL +
             sweeps) plus a serial re-execution of the lost task *)
          let surv = Sim.Metrics.surviving ~procs:p m in
          let per_beat =
            params.tau_promote + params.steal_cost + params.signal_handle
            + params.papi_handle
          in
          let beats = 2 + (m.makespan / heart) in
          let upper =
            (8 * ((work / surv) + span))
            + (4 * heart) + (beats * per_beat)
            + (64 * params.steal_retry)
            + stall_total
            + (m.tasks_reexecuted * (ttl + (2 * sweep) + work))
            + (m.cores_lost * (ttl + (2 * sweep)))
          in
          if m.makespan > upper then
            fail "chaos-upper-bound"
              "%s: makespan %d > bound %d (W=%d S=%d surv=%d reexec=%d)"
              where m.makespan upper work span surv m.tasks_reexecuted;
          (* the recovery machinery itself must be deterministic *)
          (match sim_run ~params ~mech ~faults ~horizon:chaos_horizon ir with
          | Error d -> ds := { d with oracle = "chaos-livelock" } :: !ds
          | Ok m' ->
              if m <> m' then
                fail "chaos-determinism"
                  "%s: two runs with one seed differ" where);
          List.rev !ds)

(* ------------------------------------------------------------------ *)
(* Chaos on the real runtime: a seeded Par.Chaos fault plan against the
   multi-domain executor, with the sequential evaluator as reference. *)

(** [check_chaos_par ~seed ~domains prog expected ~outputs]: for each
    domain count, draw a fault plan from [seed] and run [prog] on the
    real runtime under it.  Timing-only faults (stall / slow / drop)
    must leave the outputs bit-identical to the reference; a plan
    containing a [Raise] may legally surface the typed
    {!Par.Chaos.Injected} instead.  Anything else — a stuck machine
    ([chaos-par-stuck]), an unexpected exception ([chaos-par-abort]),
    or divergent outputs ([chaos-par-outputs]) — is a robustness bug
    in the runtime's unwinding or promotion machinery. *)
let check_chaos_par ~(seed : int) ~(domains : int list)
    ~(options : Eval.options) (prog : Ast.program)
    (expected : (Ast.reg * Value.t option) list) ~(outputs : Ast.reg list) :
    divergence list =
  List.concat_map
    (fun d ->
      let plan = Par.Chaos.random_plan ~seed ~domains:d () in
      let raising = Par.Chaos.has_raise plan in
      match
        (* a short beat period so the plan's beat-indexed faults
           actually land inside these tiny generated programs *)
        Par_exec.run ~options ~domains:d ~heart_us:20. ~chaos:plan prog
      with
      | Ok (task, _stats) ->
          compare_outputs ~oracle:"chaos-par-outputs"
            ~what:(Fmt.str "chaos par domains=%d seed=%d" d seed)
            expected
            (snapshot outputs task.regs)
      | Error e ->
          [ div "chaos-par-stuck" "domains=%d seed=%d: %a" d seed
              Machine_error.pp e ]
      | exception Par.Chaos.Injected _ when raising ->
          (* the typed fault escaped through the fork tree: the legal
             outcome of a raising plan *)
          []
      | exception e ->
          [ div "chaos-par-abort" "domains=%d seed=%d: %s" d seed
              (Printexc.to_string e) ])
    domains

(* ------------------------------------------------------------------ *)

(** [check ?cfg ?seed prog ~outputs] runs the whole battery; returns
    all divergences found (empty list = program agrees everywhere).
    [seed] feeds the [chaos-par-*] fault plans (and nothing else) —
    pass the generator's seed so a reproducer file pins the plan. *)
let check ?(cfg = default_cfg) ?(seed = 0) (prog : Ast.program)
    ~(outputs : Ast.reg list) : divergence list =
  match Check.errors prog with
  | _ :: _ as ds ->
      [ div "check" "static errors: %a" (Fmt.list Check.pp_diagnostic) ds ]
  | [] -> (
      match Eval.run ~options:ref_options prog with
      | Error e -> [ div "eval-ref" "%a" Machine_error.pp e ]
      | Ok { stop = Eval.Blocked j; _ } ->
          [ div "eval-ref" "reference run blocked on j%d" j ]
      | Ok refr ->
          let expected = snapshot outputs refr.task.regs in
          let ds = ref [] in
          let add d = ds := !ds @ d in
          (* --- eval at several heartbeat thresholds --- *)
          let fins =
            List.filter_map
              (fun h ->
                match Eval.run ~options:(with_heart h) prog with
                | Error e ->
                    add [ div "eval-heart" "♥=%d: %a" h Machine_error.pp e ];
                    None
                | Ok { stop = Eval.Blocked j; _ } ->
                    add [ div "eval-heart" "♥=%d: blocked on j%d" h j ];
                    None
                | Ok fin ->
                    add
                      (compare_outputs ~oracle:"eval-heart"
                         ~what:(Fmt.str "♥=%d" h) expected
                         (snapshot outputs fin.task.regs));
                    let c = fin.cost and s = fin.stats in
                    if c.work <> s.instructions + (ref_options.tau * s.forks)
                    then
                      add
                        [ div "eval-cost"
                            "♥=%d: work %d ≠ instructions %d + τ·forks %d" h
                            c.work s.instructions s.forks ];
                    if c.span > c.work then
                      add [ div "eval-cost" "♥=%d: span %d > work %d" h c.span c.work ];
                    Some (h, fin))
              hearts
          in
          (* --- swap_joins freedom --- *)
          (match
             Eval.run ~options:{ (with_heart 17) with swap_joins = true } prog
           with
          | Error e -> add [ div "eval-swap" "%a" Machine_error.pp e ]
          | Ok { stop = Eval.Blocked j; _ } ->
              add [ div "eval-swap" "blocked on j%d" j ]
          | Ok fin ->
              add
                (compare_outputs ~oracle:"eval-swap" ~what:"swap_joins" expected
                   (snapshot outputs fin.task.regs)));
          (* --- printer/parser round trip --- *)
          (match Parser.parse_result (Printer.program_to_string prog) with
          | Error e -> add [ div "round-trip" "reparse failed: %s" e ]
          | Ok p' ->
              if not (Ast.equal_program prog p') then
                add [ div "round-trip" "reparsed program differs" ]);
          (* --- lowering: independent interpreter + Par_ir image --- *)
          let lowered =
            match Lower.lower ~options:(with_heart 17) ~cpi prog with
            | lw ->
                add
                  (compare_outputs ~oracle:"lower-outputs" ~what:"lowered"
                     expected (snapshot outputs lw.task.regs));
                (match List.assoc_opt 17 fins with
                | None -> ()
                | Some fin ->
                    if lw.steps <> fin.stats.instructions then
                      add
                        [ div "lower-steps" "lowered %d steps, eval %d" lw.steps
                            fin.stats.instructions ];
                    if lw.forks <> fin.stats.forks then
                      add
                        [ div "lower-steps" "lowered %d forks, eval %d" lw.forks
                            fin.stats.forks ];
                    let w_ir = Sim.Par_ir.work lw.ir
                    and s_ir = Sim.Par_ir.span lw.ir in
                    let tau = ref_options.tau in
                    if w_ir <> cpi * (fin.cost.work - (tau * fin.stats.forks))
                    then
                      add
                        [ div "lower-work" "IR work %d ≠ cpi·(work %d − τ·forks %d)"
                            w_ir fin.cost.work fin.stats.forks ];
                    if
                      s_ir > cpi * fin.cost.span
                      || s_ir < cpi * (fin.cost.span - (tau * fin.stats.forks))
                    then
                      add
                        [ div "lower-span" "IR span %d outside cpi·[%d−τ·forks, %d]"
                            s_ir fin.cost.span fin.cost.span ]);
                Some lw
            | exception Lower.Stuck e ->
                add [ div "lower-stuck" "%a" Machine_error.pp e ];
                None
          in
          (* --- simulator battery on the lowered IR --- *)
          (match lowered with
          | None -> ()
          | Some lw ->
              let work = Sim.Par_ir.work lw.ir
              and span = Sim.Par_ir.span lw.ir in
              let base = Sim.Params.(default |> with_heart_us sim_heart_us) in
              List.iter
                (fun procs ->
                  let params = Sim.Params.with_procs procs base in
                  (* exact serial accounting, promotion off *)
                  (if procs = 1 then
                     let horizon = (60 * work) + 50_000_000 in
                     match
                       sim_run ~params ~mech:Sim.Interrupts.Off
                         ~faults:Sim.Interrupts.no_faults ~horizon lw.ir
                     with
                     | Error d -> add [ d ]
                     | Ok m ->
                         if m.makespan <> m.work + m.overhead || m.idle <> 0
                         then
                           add
                             [ div "sim-serial-exact"
                                 "P=1 off: makespan %d ≠ work %d + overhead %d \
                                  (idle %d)"
                                 m.makespan m.work m.overhead m.idle ]);
                  List.iter
                    (fun mech ->
                      add
                        (check_sim_config ~tag:"" ~params ~mech
                           ~faults:Sim.Interrupts.no_faults ~check_upper:true
                           lw.ir ~work ~span))
                    cfg.mechs)
                cfg.cores;
              (* --- fault injection: timing may drift, results and
                 conservation may not --- *)
              if cfg.faults then begin
                let params = Sim.Params.with_procs 4 base in
                let faults =
                  { Sim.Interrupts.drop = 0.3; dup = 0.25;
                    fault_jitter = Sim.Params.heart_cycles params / 2;
                    steal_fail = 0.3; schedule = [] }
                in
                List.iter
                  (fun mech ->
                    add
                      (check_sim_config ~tag:"fault-" ~params ~mech ~faults
                         ~check_upper:false lw.ir ~work ~span))
                  (List.filter (fun m -> m <> Sim.Interrupts.Off) cfg.mechs)
              end;
              (* --- chaos: crash/stall/slow cores + recovery --- *)
              if cfg.chaos then begin
                let params = Sim.Params.with_procs 4 base in
                let mech =
                  match
                    List.filter (fun m -> m <> Sim.Interrupts.Off) cfg.mechs
                  with
                  | m :: _ -> m
                  | [] -> Sim.Interrupts.Nautilus_ipi
                in
                add (check_chaos ~params ~mech lw.ir ~work ~span)
              end);
          (* --- the real heartbeat runtime --- *)
          (if cfg.hb then
             match Hb_exec.run ~options:(with_heart 17) prog with
             | Error e -> add [ div "hb-stuck" "%a" Machine_error.pp e ]
             | Ok (task, _stats) ->
                 add
                   (compare_outputs ~oracle:"hb-outputs" ~what:"hb runtime"
                      expected (snapshot outputs task.regs)));
          (* --- the multi-domain runtime, per domain count --- *)
          List.iter
            (fun domains ->
              match Par_exec.run ~options:(with_heart 17) ~domains prog with
              | Error e ->
                  add [ div "par-stuck" "domains=%d: %a" domains
                          Machine_error.pp e ]
              | Ok (task, _stats) ->
                  add
                    (compare_outputs ~oracle:"par-outputs"
                       ~what:(Fmt.str "par runtime domains=%d" domains)
                       expected (snapshot outputs task.regs)))
            cfg.par;
          (* --- the multi-domain runtime under injected faults --- *)
          if cfg.chaos_par then
            add
              (check_chaos_par ~seed
                 ~domains:(if cfg.par = [] then [ 1; 2; 4 ] else cfg.par)
                 ~options:(with_heart 17) prog expected ~outputs);
          !ds)

(** [check_gen ?cfg g] = [check ~seed:g.seed g.prog ~outputs:g.outputs]. *)
let check_gen ?cfg (g : Gen.t) : divergence list =
  check ?cfg ~seed:g.seed g.prog ~outputs:g.outputs
