(** Delta-debugging shrinker for divergent fuzz programs.

    Given a failing program and a predicate that re-runs the oracle,
    [minimize] greedily applies reduction passes — remove an
    instruction, drop a whole block, neutralize an annotation, shrink
    integer literals toward zero — keeping a candidate only when it is
    still statically well-formed ({!Tpal.Check} reports no errors),
    its reference evaluation still terminates, and the oracle still
    fails.  Passes repeat to a fixpoint (bounded), so committed
    reproducers are locally minimal: removing any single instruction
    or block makes the divergence disappear. *)

open Tpal

(* A candidate is admissible when it is well-formed and the reference
   (♥ off) evaluation halts — shrinking must preserve "this is a valid
   terminating program", otherwise we'd minimize into a different bug.
   The fuel is deliberately tight: many reductions make a loop
   non-terminating (e.g. deleting its decrement), and each such
   candidate costs its whole fuel budget, so a generous budget makes
   shrinking quadratically slow.  Programs in the fuzzer's size range
   halt within a small fraction of this. *)
let admissible (p : Ast.program) : bool =
  Check.errors p = []
  &&
  match
    Eval.run
      ~options:{ Eval.default_options with heart = None; fuel = 200_000 }
      p
  with
  | Ok { stop = Eval.Halted; _ } -> true
  | Ok _ | Error _ -> false

(* ------------------------------------------------------------------ *)
(* Candidate streams, cheapest-to-try first. *)

let map_block (p : Ast.program) (l : Ast.label) (f : Ast.block -> Ast.block) :
    Ast.program =
  { p with
    blocks = List.map (fun (l', b) -> if l' = l then (l', f b) else (l', b)) p.blocks }

(* every program with one instruction deleted *)
let drop_instr_candidates (p : Ast.program) : Ast.program list =
  List.concat_map
    (fun (l, (b : Ast.block)) ->
      List.mapi
        (fun i _ ->
          map_block p l (fun b ->
              { b with body = List.filteri (fun j _ -> j <> i) b.body }))
        b.body)
    p.blocks

(* every program with one non-entry block removed *)
let drop_block_candidates (p : Ast.program) : Ast.program list =
  List.filter_map
    (fun (l, _) ->
      if l = p.entry then None
      else Some { p with blocks = List.remove_assoc l p.blocks })
    p.blocks

(* every program with one annotation neutralized to Plain *)
let drop_annot_candidates (p : Ast.program) : Ast.program list =
  List.filter_map
    (fun (l, (b : Ast.block)) ->
      match b.annot with
      | Ast.Plain -> None
      | _ -> Some (map_block p l (fun b -> { b with annot = Ast.Plain })))
    p.blocks

(* one pass of literal halving over all integer operands *)
let shrink_int (n : int) : int option = if n = 0 then None else Some (n / 2)

let shrink_operand (v : Ast.operand) : Ast.operand option =
  match v with
  | Ast.Int n -> Option.map (fun n -> Ast.Int n) (shrink_int n)
  | Ast.Reg _ | Ast.Lab _ -> None

let shrink_instr (i : Ast.instr) : Ast.instr option =
  match i with
  | Ast.Mov (r, v) -> Option.map (fun v -> Ast.Mov (r, v)) (shrink_operand v)
  | Ast.Binop (r, op, v1, v2) -> (
      match (shrink_operand v1, shrink_operand v2) with
      | Some v1', _ -> Some (Ast.Binop (r, op, v1', v2))
      | None, Some v2' -> Some (Ast.Binop (r, op, v1, v2'))
      | None, None -> None)
  | Ast.Store (r, n, v) ->
      Option.map (fun v -> Ast.Store (r, n, v)) (shrink_operand v)
  | _ -> None

let shrink_literal_candidates (p : Ast.program) : Ast.program list =
  List.concat_map
    (fun (l, (b : Ast.block)) ->
      List.concat
        (List.mapi
           (fun i instr ->
             match shrink_instr instr with
             | None -> []
             | Some instr' ->
                 [ map_block p l (fun b ->
                       { b with
                         body =
                           List.mapi (fun j x -> if j = i then instr' else x)
                             b.body }) ])
           b.body))
    p.blocks

(* ------------------------------------------------------------------ *)

let size (p : Ast.program) : int =
  List.fold_left (fun acc (_, b) -> acc + Ast.block_length b) 0 p.blocks

(** [minimize ~still_fails p] returns a locally-minimal program on
    which [still_fails] holds (assuming it holds on [p]; otherwise [p]
    is returned unchanged).  [max_rounds] bounds the greedy fixpoint. *)
let minimize ?(max_rounds = 40) ~(still_fails : Ast.program -> bool)
    (p : Ast.program) : Ast.program =
  let try_candidates (cands : Ast.program list) : Ast.program option =
    List.find_opt (fun c -> admissible c && still_fails c) cands
  in
  let rec loop p rounds =
    if rounds <= 0 then p
    else
      let cands =
        drop_block_candidates p @ drop_instr_candidates p
        @ drop_annot_candidates p @ shrink_literal_candidates p
      in
      match try_candidates cands with
      | Some c -> loop c (rounds - 1)
      | None -> p
  in
  if still_fails p then loop p max_rounds else p
