(** Regeneration of every figure of the paper's evaluation (§4, §5,
    Appendix A).  Each [figNN] builds the same rows/series the paper
    plots, as a text table (plus a CSV block), with the paper's
    reported value alongside where it is legible.

    Absolute cycle counts are from the simulated testbed (DESIGN.md
    §2) — the claim under test is the {e shape}: who wins, by roughly
    what factor, where the crossovers fall. *)

open Workloads

let f2 = Stats.Table.fmt_float ~decimals:2
let f1 = Stats.Table.fmt_float ~decimals:1

let suite () = Workload.all

let geomean_over (ws : Workload.t list) (f : Workload.t -> float) : float =
  Stats.geomean (List.map f ws)

(* Rows for all workloads plus per-group geomean rows, where [cols w]
   yields the numeric columns for one workload and [geo ws] the
   geomean columns over a group. *)
let table_with_geomeans ~(cols : Workload.t -> float list) : string list list =
  let row (w : Workload.t) = w.name :: List.map f2 (cols w) in
  let geo label ws =
    let n = List.length (cols (List.hd ws)) in
    label
    :: List.init n (fun i ->
           f2 (geomean_over ws (fun w -> List.nth (cols w) i)))
  in
  List.map row Workload.iterative
  @ [ geo "geomean (iterative)" Workload.iterative ]
  @ List.map row Workload.recursive
  @ [ geo "geomean (recursive)" Workload.recursive ]

let print_table (t : Stats.Table.t) : unit =
  print_newline ();
  Stats.Table.print t;
  print_newline ();
  print_endline "CSV:";
  print_endline (Stats.Table.to_csv t);
  print_newline ()

(* ------------------------------------------------------------------ *)

(** Figure 6 — task-creation overheads: single-core execution time of
    Cilk and TPAL (Linux and Nautilus signals, ♥ = 100 µs) normalized
    to Serial/Linux. *)
let fig6 () : Stats.Table.t =
  let cols (w : Workload.t) =
    [
      Runner.normalized_1core Runner.Cilk_sys w;
      Runner.normalized_1core Runner.Tpal_linux w;
      Runner.normalized_1core Runner.Tpal_nautilus w;
      Option.value ~default:nan (Paper_values.lookup Paper_values.fig6_cilk w.name);
    ]
  in
  Stats.Table.make
    ~title:
      "Figure 6: single-core execution time normalized to Serial (task \
       creation overheads), heart=100us"
    ~header:
      [ "benchmark"; "Cilk/Linux"; "TPAL/Linux"; "TPAL/Nautilus";
        "paper Cilk" ]
    (table_with_geomeans ~cols)

(** Figure 7 — speedup over Serial/Linux on 15 cores, Cilk vs
    TPAL/Linux. *)
let fig7 () : Stats.Table.t =
  let cols (w : Workload.t) =
    [
      Runner.speedup Runner.Cilk_sys w;
      Runner.speedup Runner.Tpal_linux w;
    ]
  in
  Stats.Table.make
    ~title:"Figure 7: speedup over Serial/Linux, 15 cores, heart=100us"
    ~header:[ "benchmark"; "Cilk/Linux"; "TPAL 100us/Linux" ]
    (table_with_geomeans ~cols)

(** Figure 8 — TPAL binaries with the heartbeat mechanism off: pure
    compilation overhead, single core. *)
let fig8 () : Stats.Table.t =
  let cols (w : Workload.t) =
    [
      Runner.normalized_1core ~interrupts:false Runner.Tpal_linux w;
      Option.value ~default:nan (Paper_values.lookup Paper_values.fig8_tpal w.name);
    ]
  in
  Stats.Table.make
    ~title:
      "Figure 8: TPAL sans heartbeat interrupts, single core, normalized to \
       Serial"
    ~header:[ "benchmark"; "TPAL (no beats)"; "paper" ]
    (table_with_geomeans ~cols)

(* Interrupt-overhead figure shared by Figures 9 (Linux) and 13
   (Nautilus): serial + interrupts only, and TPAL with interrupts +
   promotions, at 100 µs and 20 µs, single core. *)
let interrupt_overheads ~(system : Runner.system) ~(title : string) () :
    Stats.Table.t =
  let serial_with_beats heart_us (w : Workload.t) =
    (* the serial program with the interrupt mechanism running: beats
       cost their handler time but promote nothing *)
    let m =
      Runner.measure
        (Runner.spec ~procs:1 ~heart_us ~promotions:false
           (match system with
           | Runner.Tpal_nautilus -> Runner.Tpal_nautilus
           | _ -> Runner.Tpal_linux)
           w)
    in
    (* normalize against the undilated serial baseline: use the Serial
       system's own dilation by measuring mode Serial? The paper's
       "Serial, interrupts" bars run the serial binary, so exclude
       TPAL's compile dilation: divide out the TPAL dilation. *)
    let tpal_dil = float_of_int w.tpal_dilation_pct /. 100. in
    float_of_int m.makespan
    /. tpal_dil
    /. float_of_int (Runner.serial_time w)
  in
  let tpal_with_promotions heart_us (w : Workload.t) =
    Runner.normalized_1core ~heart_us system w
  in
  let cols (w : Workload.t) =
    [
      serial_with_beats 100. w;
      tpal_with_promotions 100. w;
      serial_with_beats 20. w;
      tpal_with_promotions 20. w;
    ]
  in
  Stats.Table.make ~title
    ~header:
      [ "benchmark"; "Serial,100us ints"; "TPAL 100us,ints+promo";
        "Serial,20us ints"; "TPAL 20us,ints+promo" ]
    (table_with_geomeans ~cols)

(** Figure 9 — overheads of interrupts only, and interrupts plus
    promotions, on Linux, single core. *)
let fig9 () =
  interrupt_overheads ~system:Runner.Tpal_linux
    ~title:
      "Figure 9: interrupt & promotion overheads on Linux, single core, \
       normalized to Serial"
    ()

(** Figure 13 — the same on Nautilus. *)
let fig13 () =
  interrupt_overheads ~system:Runner.Tpal_nautilus
    ~title:
      "Figure 13: interrupt & promotion overheads on Nautilus, single core, \
       normalized to Serial"
    ()

(** Figure 10 — achieved vs target fleet-wide heartbeat rate, 15
    cores, Linux vs Nautilus, at (a) 100 µs and (b) 20 µs. *)
let fig10 ~(heart_us : float) () : Stats.Table.t =
  let params = { Sim.Params.default with heart_us } in
  let target = Sim.Params.target_rate params in
  let achieved system (w : Workload.t) =
    let m = Runner.measure (Runner.spec ~heart_us system w) in
    Sim.Metrics.achieved_rate params m
  in
  let rows =
    List.map
      (fun (w : Workload.t) ->
        [
          w.name;
          Stats.Table.fmt_int_grouped (int_of_float target);
          Stats.Table.fmt_int_grouped
            (int_of_float (achieved Runner.Tpal_linux w));
          Stats.Table.fmt_int_grouped
            (int_of_float (achieved Runner.Tpal_nautilus w));
        ])
      (suite ())
  in
  Stats.Table.make
    ~title:
      (Printf.sprintf
         "Figure 10%s: achieved vs target heartbeat rate (beats/s, 15 \
          cores), heart=%.0fus"
         (if heart_us = 100. then "a" else "b")
         heart_us)
    ~header:[ "benchmark"; "target"; "TPAL/Linux"; "TPAL/Nautilus" ]
    rows

(** Figure 11 — speedup curves over core counts, Cilk vs TPAL/Linux.
    One table per benchmark, cores on rows. *)
let fig11 ?(cores = [ 1; 3; 5; 7; 9; 11; 13; 15 ]) () : Stats.Table.t list =
  List.map
    (fun (w : Workload.t) ->
      let rows =
        List.map
          (fun p ->
            [
              string_of_int p;
              f2 (Runner.speedup ~procs:p Runner.Cilk_sys w);
              f2 (Runner.speedup ~procs:p Runner.Tpal_linux w);
            ])
          cores
      in
      Stats.Table.make
        ~title:
          (Printf.sprintf "Figure 11 (%s, %s): speedup vs cores" w.name
             w.descr)
        ~header:[ "cores"; "Cilk/Linux"; "TPAL 100us/Linux" ]
        rows)
    (suite ())

(** Figure 14 — speedups at scale for all three systems, with the
    paper's geomeans alongside. *)
let fig14 () : Stats.Table.t =
  let cols (w : Workload.t) =
    [
      Runner.speedup Runner.Cilk_sys w;
      Runner.speedup Runner.Tpal_linux w;
      Runner.speedup Runner.Tpal_nautilus w;
    ]
  in
  Stats.Table.make
    ~title:
      "Figure 14: speedup over Serial/Linux, 15 cores: Cilk vs TPAL/Linux \
       vs TPAL/Nautilus (paper geomeans: Cilk 1.9/2.4, TPAL/Linux 4.0/3.2, \
       TPAL/Nautilus 4.4/3.6 for iterative/recursive)"
    ~header:[ "benchmark"; "Cilk/Linux"; "TPAL/Linux"; "TPAL/Nautilus" ]
    (table_with_geomeans ~cols)

(** Figure 15a — number of created tasks (promotions for TPAL), and
    15b — utilization, on 15 cores. *)
let fig15 () : Stats.Table.t =
  let rows =
    List.map
      (fun (w : Workload.t) ->
        let mc = Runner.measure (Runner.spec Runner.Cilk_sys w) in
        let mt = Runner.measure (Runner.spec Runner.Tpal_linux w) in
        [
          w.name;
          Stats.Table.fmt_int_grouped mc.tasks_created;
          Stats.Table.fmt_int_grouped mt.tasks_created;
          f2 (100. *. Sim.Metrics.utilization ~procs:15 mc);
          f2 (100. *. Sim.Metrics.utilization ~procs:15 mt);
        ])
      (suite ())
  in
  Stats.Table.make
    ~title:
      "Figure 15: tasks created (15a) and utilization % (15b), 15 cores"
    ~header:
      [ "benchmark"; "tasks Cilk"; "tasks TPAL"; "util% Cilk"; "util% TPAL" ]
    rows

(** §1/§4.3 headline numbers: the task-overhead advantage, and the
    speedup over Cilk split by amenability to recurrent decomposition. *)
let headline () : Stats.Table.t =
  let ws = suite () in
  (* 1-core task-creation overhead (time beyond serial), floored to
     0.5 % to keep the ratio meaningful on benchmarks with ~zero TPAL
     overhead *)
  let overhead sys w =
    Float.max 0.005 (Runner.normalized_1core sys w -. 1.)
  in
  let ratio =
    Stats.geomean
      (List.map
         (fun w -> overhead Runner.Cilk_sys w /. overhead Runner.Tpal_linux w)
         ws)
  in
  let vs_cilk w =
    Runner.speedup Runner.Tpal_linux w /. Runner.speedup Runner.Cilk_sys w
  in
  let amenable, not_amenable =
    List.partition (fun w -> vs_cilk w >= 1.) ws
  in
  let speedup_pct =
    (Stats.geomean (List.map vs_cilk amenable) -. 1.) *. 100.
  in
  let slowdown_pct =
    match not_amenable with
    | [] -> 0.
    | ws -> (1. -. Stats.geomean (List.map vs_cilk ws)) *. 100.
  in
  Stats.Table.make ~title:"Headline numbers (vs the paper's §1/§4.3)"
    ~header:[ "metric"; "measured"; "paper" ]
    [
      [ "task-creation overhead, Cilk/TPAL (geomean)"; f1 ratio;
        f1 Paper_values.headline_task_overhead_ratio ^ "x" ];
      [ Printf.sprintf
          "TPAL speedup over Cilk, amenable benchmarks (%d/%d), %%"
          (List.length amenable) (List.length ws);
        f1 speedup_pct;
        f1 Paper_values.headline_speedup_over_cilk_pct ];
      [ "TPAL slowdown vs Cilk, others, %"; f1 slowdown_pct;
        f1 Paper_values.headline_slowdown_pct ];
    ]

(** The heartbeat tuner (§2.2): sweep ♥ on one benchmark and report
    single-core overhead vs 15-core speedup — the two sides of the
    amortisation trade-off the one-time tuning process balances. *)
let tuner ?(workload = "spmv-random")
    ?(hearts = [ 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. ]) () :
    Stats.Table.t =
  let w = Option.get (Workload.find workload) in
  let rows =
    List.map
      (fun h ->
        [
          f1 h;
          f2 (Runner.normalized_1core ~heart_us:h Runner.Tpal_nautilus w);
          f2 (Runner.speedup ~heart_us:h Runner.Tpal_nautilus w);
        ])
      hearts
  in
  Stats.Table.make
    ~title:
      (Printf.sprintf
         "Heartbeat tuner (%s, Nautilus): 1-core overhead vs 15-core \
          speedup across heart values"
         workload)
    ~header:[ "heart (us)"; "1-core normalized"; "15-core speedup" ]
    rows

(** Ablation: outermost-first vs innermost-first promotion on the
    nested-loop benchmarks (§2.3's policy requirement). *)
let ablation_policy () : Stats.Table.t =
  let nested = [ "spmv-random"; "spmv-powerlaw"; "spmv-arrowhead"; "mandelbrot" ] in
  let speedup_with ~innermost (w : Workload.t) =
    let params = { Sim.Params.default with procs = 15 } in
    let cfg =
      Sim.Runnable.make_cfg ~dilation_pct:w.tpal_dilation_pct
        ~promote_innermost:innermost Sim.Runnable.Tpal params
    in
    let config =
      Sim.Engine.make_config ~mech:Sim.Interrupts.Nautilus_ipi
        ~mem_intensity:w.mem_intensity ~bw_cap:w.bw_cap cfg
    in
    let m = Sim.Engine.run config (Lazy.force w.ir) in
    float_of_int (Runner.serial_time w) /. float_of_int m.makespan
  in
  let rows =
    List.filter_map
      (fun name ->
        Option.map
          (fun (w : Workload.t) ->
            [
              w.name;
              f2 (speedup_with ~innermost:false w);
              f2 (speedup_with ~innermost:true w);
            ])
          (Workload.find name))
      nested
  in
  Stats.Table.make
    ~title:
      "Ablation: outermost-first vs innermost-first promotion, 15 cores, \
       Nautilus (the paper's policy requirement, S2.3)"
    ~header:[ "benchmark"; "outermost-first"; "innermost-first" ]
    rows

(** Ablation: expanded vs reduced block style (Appendix D.5) on the
    abstract machine's prod program — the serial-path instruction tax
    and the behaviour under promotion. *)
let ablation_style () : Stats.Table.t =
  let run p heart a =
    let options =
      { Tpal.Eval.default_options with heart; fuel = 50_000_000 }
    in
    match
      Tpal.Eval.run_seeded ~options p
        [ ("a", Tpal.Value.Vint a); ("b", Tpal.Value.Vint 3) ]
    with
    | Ok fin -> fin
    | Error e ->
        invalid_arg ("ablation_style: " ^ Tpal.Machine_error.show e)
  in
  let row name p =
    let serial = run p None 5_000 in
    let beating = run p (Some 200) 5_000 in
    [
      name;
      string_of_int serial.stats.instructions;
      string_of_int beating.stats.instructions;
      string_of_int beating.stats.forks;
      string_of_int beating.cost.span;
    ]
  in
  Stats.Table.make
    ~title:
      "Ablation: expanded vs reduced block style (Appendix D.5), prod with        a=5000, heart=200 cycles on the abstract machine"
    ~header:
      [ "style"; "serial instrs"; "beating instrs"; "forks"; "span (tau=1)" ]
    [ row "expanded (Fig 2)" Tpal.Programs.prod;
      row "reduced (D.5)" Tpal.Programs.prod_reduced ]

(* ------------------------------------------------------------------ *)
(* Tracing                                                            *)

let find_w (name : string) : Workload.t =
  match Workload.find name with
  | Some w -> w
  | None -> invalid_arg ("Figures: unknown workload " ^ name)

(** A representative simulator configuration to trace for a figure id
    (the workload/system pair whose scheduling behaviour dominates
    that figure's story) — what [repro_cli --trace] records. *)
let trace_spec (name : string) : Runner.spec option =
  match name with
  | "fig6" ->
      (* Cilk's eager decomposition overhead, 1 core *)
      Some (Runner.spec ~procs:1 Runner.Cilk_sys (find_w "kmeans"))
  | "fig8" ->
      (* TPAL's compile-time-only overhead: no beats at all *)
      Some
        (Runner.spec ~procs:1 ~interrupts:false Runner.Tpal_linux
           (find_w "knapsack"))
  | "fig9" ->
      Some
        (Runner.spec ~procs:1 ~heart_us:20. Runner.Tpal_linux
           (find_w "spmv-random"))
  | "fig10" ->
      (* the saturating ping-thread sweep at the stress heart *)
      Some (Runner.spec ~heart_us:20. Runner.Tpal_linux (find_w "mandelbrot"))
  | "fig13" ->
      Some
        (Runner.spec ~procs:1 ~heart_us:20. Runner.Tpal_nautilus
           (find_w "spmv-random"))
  | "fig7" | "fig11" | "fig14" | "fig15" | "fig15a" | "fig15b" | "headline"
  | "tuner" | "ablation" | "all" | "trace" ->
      (* the multicore steady state: stealing + promotions at 15 cores *)
      Some (Runner.spec Runner.Tpal_linux (find_w "spmv-random"))
  | _ -> None

(** Trace sanity driver (figure id ["trace"]): run representative
    configurations with the recorder attached and cross-check the
    traced per-core accounting against the engine's own {!Sim.Metrics}
    — the observability layer validating itself. *)
let trace_sanity () : Stats.Table.t list =
  let specs =
    [
      Runner.spec Runner.Tpal_linux (find_w "spmv-random");
      Runner.spec ~heart_us:20. Runner.Tpal_nautilus (find_w "mandelbrot");
      Runner.spec Runner.Cilk_sys (find_w "kmeans");
    ]
  in
  let measured = List.map (fun s -> (s, Runner.measure_traced s)) specs in
  let label (s : Runner.spec) =
    Printf.sprintf "%s %s P=%d" s.workload (Runner.system_name s.system)
      s.procs
  in
  let gi = Stats.Table.fmt_int_grouped in
  let recon =
    List.map
      (fun ((s : Runner.spec), ((m : Sim.Metrics.t), tr)) ->
        let tot = Sim.Sim_trace.totals tr in
        let exact =
          tot.Sim.Sim_trace.work = m.work
          && tot.Sim.Sim_trace.overhead = m.overhead
          && tot.Sim.Sim_trace.idle = m.idle
        in
        [
          label s;
          gi m.work;
          gi tot.Sim.Sim_trace.work;
          gi m.overhead;
          gi tot.Sim.Sim_trace.overhead;
          gi m.idle;
          gi tot.Sim.Sim_trace.idle;
          (if exact then "yes" else "NO");
        ])
      measured
  in
  let dists =
    List.map
      (fun ((s : Runner.spec), ((m : Sim.Metrics.t), tr)) ->
        let lat =
          List.map float_of_int (Sim.Sim_trace.steal_latencies tr)
        in
        let inter =
          List.map float_of_int (Sim.Sim_trace.promotion_interarrivals tr)
        in
        let util =
          Sim.Sim_trace.utilization_histogram tr ~makespan:m.makespan
        in
        [
          label s;
          Printf.sprintf "%d/%d" (Sim.Sim_trace.beats tr) m.beats_delivered;
          string_of_int (Sim.Sim_trace.beats_lost tr);
          string_of_int (Sim.Sim_trace.promotions tr);
          f1 (Stats.mean inter);
          string_of_int (Sim.Sim_trace.steals tr);
          f1 (Stats.mean lat);
          String.concat "."
            (Array.to_list (Array.map string_of_int util));
        ])
      measured
  in
  [
    Stats.Table.make
      ~title:
        "Trace sanity: traced per-core cycle totals vs engine Metrics \
         (must reconcile exactly)"
      ~header:
        [ "configuration"; "work"; "work(tr)"; "ovh"; "ovh(tr)"; "idle";
          "idle(tr)"; "exact" ]
      recon;
    Stats.Table.make
      ~title:
        "Trace sanity: derived distributions (beats traced/delivered, \
         promotion inter-arrival, steal latency, utilization histogram \
         0..100%)"
      ~header:
        [ "configuration"; "beats"; "lost"; "promos"; "inter-arr";
          "steals"; "steal-lat"; "util-hist" ]
      dists;
  ]

(** Everything, in paper order. *)
let all () : Stats.Table.t list =
  [ fig6 (); fig7 (); fig8 (); fig9 () ]
  @ [ fig10 ~heart_us:100. (); fig10 ~heart_us:20. () ]
  @ fig11 ()
  @ [ fig13 (); fig14 (); fig15 (); headline (); tuner (); ablation_policy ();
      ablation_style () ]

let by_name (name : string) : Stats.Table.t list option =
  match name with
  | "fig6" -> Some [ fig6 () ]
  | "fig7" -> Some [ fig7 () ]
  | "fig8" -> Some [ fig8 () ]
  | "fig9" -> Some [ fig9 () ]
  | "fig10" -> Some [ fig10 ~heart_us:100. (); fig10 ~heart_us:20. () ]
  | "fig11" -> Some (fig11 ())
  | "fig13" -> Some [ fig13 () ]
  | "fig14" -> Some [ fig14 () ]
  | "fig15" | "fig15a" | "fig15b" -> Some [ fig15 () ]
  | "headline" -> Some [ headline () ]
  | "tuner" -> Some [ tuner () ]
  | "ablation" -> Some [ ablation_policy (); ablation_style () ]
  | "trace" -> Some (trace_sanity ())
  | "all" -> Some (all ())
  | _ -> None
