(** Shared experiment runner: maps the paper's system configurations
    onto simulator configurations and caches run results, since many
    figures reuse the same (workload, system, P, ♥) measurement. *)

(** The systems compared in the evaluation. *)
type system =
  | Serial_sys  (** the Serial/Linux baseline *)
  | Cilk_sys  (** Cilk Plus/Linux (interrupt-free) *)
  | Tpal_linux  (** TPAL with the Linux ping-thread signals *)
  | Tpal_papi  (** TPAL with Linux PAPI counter interrupts *)
  | Tpal_nautilus  (** TPAL with Nautilus Nemo IPIs *)

let system_name = function
  | Serial_sys -> "Serial/Linux"
  | Cilk_sys -> "Cilk/Linux"
  | Tpal_linux -> "TPAL/Linux"
  | Tpal_papi -> "TPAL-PAPI/Linux"
  | Tpal_nautilus -> "TPAL/Nautilus"

type spec = {
  workload : string;
  system : system;
  procs : int;
  heart_us : float;
  interrupts : bool;
      (** heartbeat interrupts delivered (irrelevant for Serial_sys /
          Cilk_sys unless explicitly measuring interrupt overhead) *)
  promotions : bool;  (** promotions serviced on beats *)
}

let spec ?(procs = 15) ?(heart_us = 100.) ?(interrupts = true)
    ?(promotions = true) (system : system) (workload : Workloads.Workload.t) :
    spec =
  { workload = workload.name; system; procs; heart_us; interrupts; promotions }

let mech_of (s : spec) : Sim.Interrupts.mech =
  if not s.interrupts then Sim.Interrupts.Off
  else
    match s.system with
    | Serial_sys -> Sim.Interrupts.Ping_thread
    | Cilk_sys -> Sim.Interrupts.Off
    | Tpal_linux -> Sim.Interrupts.Ping_thread
    | Tpal_papi -> Sim.Interrupts.Papi
    | Tpal_nautilus -> Sim.Interrupts.Nautilus_ipi

let config_of (s : spec) (w : Workloads.Workload.t) : Sim.Engine.config =
  let params =
    { Sim.Params.default with procs = s.procs; heart_us = s.heart_us }
  in
  let mode, dilation, bw =
    match s.system with
    | Serial_sys -> (Sim.Runnable.Serial, 100, w.bw_cap)
    | Cilk_sys -> (Sim.Runnable.Cilk, w.cilk_dilation_pct, w.cilk_bw_cap)
    | Tpal_linux | Tpal_papi | Tpal_nautilus ->
        (Sim.Runnable.Tpal, w.tpal_dilation_pct, w.bw_cap)
  in
  let cfg = Sim.Runnable.make_cfg ~dilation_pct:dilation mode params in
  Sim.Engine.make_config ~mech:(mech_of s) ~promote:s.promotions
    ~mem_intensity:w.mem_intensity ~bw_cap:bw cfg

let cache : (spec, Sim.Metrics.t) Hashtbl.t = Hashtbl.create 256

(** [measure spec] simulates (or retrieves) the execution described by
    [spec]; results are memoized for the lifetime of the process. *)
let measure (s : spec) : Sim.Metrics.t =
  match Hashtbl.find_opt cache s with
  | Some m -> m
  | None ->
      let w =
        match Workloads.Workload.find s.workload with
        | Some w -> w
        | None -> invalid_arg ("Runner.measure: unknown workload " ^ s.workload)
      in
      let m = Sim.Engine.run (config_of s w) (Lazy.force w.ir) in
      Hashtbl.replace cache s m;
      m

(** [measure_traced spec] simulates [spec] with a fresh {!Sim.Sim_trace}
    recorder attached and returns the metrics together with the trace.
    Never cached: the trace is the point. *)
let measure_traced (s : spec) : Sim.Metrics.t * Sim.Sim_trace.t =
  let w =
    match Workloads.Workload.find s.workload with
    | Some w -> w
    | None ->
        invalid_arg ("Runner.measure_traced: unknown workload " ^ s.workload)
  in
  let trace = Sim.Sim_trace.create () in
  let m = Sim.Engine.run ~trace (config_of s w) (Lazy.force w.ir) in
  (m, trace)

(** Serial baseline time in cycles (engine-measured, one core, no
    interrupts). *)
let serial_time (w : Workloads.Workload.t) : int =
  (measure (spec ~procs:1 ~interrupts:false Serial_sys w)).makespan

(** Normalized 1-core execution time (Figures 6, 8, 9, 13). *)
let normalized_1core ?(heart_us = 100.) ?(interrupts = true)
    ?(promotions = true) (system : system) (w : Workloads.Workload.t) : float =
  let m =
    measure (spec ~procs:1 ~heart_us ~interrupts ~promotions system w)
  in
  float_of_int m.makespan /. float_of_int (serial_time w)

(** Speedup over the serial baseline at [procs] cores (Figures 7, 11,
    14). *)
let speedup ?(procs = 15) ?(heart_us = 100.) (system : system)
    (w : Workloads.Workload.t) : float =
  let m = measure (spec ~procs ~heart_us system w) in
  float_of_int (serial_time w) /. float_of_int m.makespan
