(** The multicore discrete-event engine — the substitute for the
    paper's 16-core testbed.

    P simulated worker cores execute {!Runnable} tasks under one of the
    three scheduling modes, with randomized work stealing between their
    deques and heartbeat interrupts delivered by an {!Interrupts}
    mechanism.  Virtual time is in CPU cycles; all scheduling costs
    come from {!Params}.

    Event-ordering invariant: a core's running segment never spans an
    {e effective} heartbeat delivery.  Segment budgets are capped at
    the next known delivery time, but an atomic action (one loop
    iteration, one leaf chunk) can overshoot the cap by its own
    granularity — exactly as real TPAL code only honours an interrupt
    at the next promotion-ready point (rollforward, §3.3).  A beat
    whose nominal arrival falls strictly inside a running segment is
    therefore delivered {e effectively} at the segment's end, which is
    the next promotion-ready point; ties at the same instant resolve
    in insertion order, which places the beat first (it was scheduled
    when the previous beat fired, strictly earlier than any racing
    resume).

    Pass [?trace] to {!run} to record every scheduling decision as a
    {!Sim_trace} event stream; recording off costs one match per
    emission site. *)

type config = {
  cfg : Runnable.cfg;
  mech : Interrupts.mech;
  promote : bool;
      (** promotions enabled on beats; with [false] beats only pay
          their handler cost (the "Serial, interrupts only" bars of
          Figures 9 and 13) *)
  mem_intensity : float;
      (** workload memory-boundedness ∈ [0,1]; degrades Linux signal
          delivery (see {!Interrupts}) *)
  bw_cap : float;
      (** memory-bandwidth ceiling: the maximum aggregate rate (in
          multiples of one core's serial rate) at which the workload's
          cycles can be retired fleet-wide.  With [k] cores active and
          [k > bw_cap], every core's progress dilates by [k / bw_cap] —
          the saturation that bounds streaming benchmarks (mergesort,
          plus-reduce) on the paper's one-NUMA-node testbed.
          [infinity] = compute-bound. *)
  faults : Interrupts.faults;
      (** injected beat faults (see {!Interrupts.faults}); the
          [steal_fail] component makes steal probes spuriously report
          an empty deque — without touching the victim, so no task is
          ever lost.  Used by the fuzzer's fault-injection oracle. *)
}

let make_config ?(mech = Interrupts.Off) ?(promote = true)
    ?(mem_intensity = 0.3) ?(bw_cap = infinity)
    ?(faults = Interrupts.no_faults) (cfg : Runnable.cfg) : config =
  { cfg; mech; promote; mem_intensity; bw_cap; faults }

(** Raised by {!run} when simulated time passes the caller-supplied
    horizon — the watchdog that turns a scheduler livelock (e.g. a lost
    task leaving idle cores spinning forever) into a reportable failure
    instead of a hang.  Carries the simulated time at which the guard
    tripped. *)
exception Horizon_exceeded of int

type ev = Resume of int | Beat of Interrupts.delivery

type core = {
  id : int;
  deque : Runnable.task Wsdeque.t;
  mutable current : Runnable.task option;
  mutable pending_handler : int;  (** handler cycles to charge at resume *)
  mutable pending_beats : int;  (** beats awaiting service at resume *)
  mutable work : int;
  mutable overhead : int;
  mutable idle : int;
  mutable last_active : int;
  mutable parked : bool;  (** no further events scheduled for this core *)
  mutable busy : bool;  (** a work segment is in flight until the next
                            resume (virtual busy interval) *)
  mutable seg_start : int;  (** start of the last scheduled segment *)
  mutable seg_end : int;
      (** scheduling frontier: end of the last scheduled segment (of
          any class) — the core's next promotion-ready point *)
  mutable steal_fails : int;  (** consecutive failed steal scans, for
                                  exponential back-off *)
}

(* Segment length bound: spawned work must become stealable, and the
   bandwidth model samples the active-core count, at this granularity
   (run_for additionally stops early whenever it spawns). *)
let max_chunk = 250_000

let run ?(trace : Sim_trace.t option) ?(horizon : int option)
    (config : config) (ir : Par_ir.t) : Metrics.t =
  let params = config.cfg.params in
  let procs = max 1 params.procs in
  let rng = Prng.create ~seed:params.seed in
  (* steal-fail fault draws come from their own split stream so that
     enabling faults does not perturb victim sampling *)
  let fault_rng = Prng.split (Prng.create ~seed:(params.seed lxor 0x5FA1)) in
  let steal_faulty () =
    config.faults.steal_fail > 0.
    && Prng.float fault_rng < config.faults.steal_fail
  in
  (* per-run deterministic task ids, so traces are reproducible *)
  Runnable.reset_ids ();
  let emit ~at ~core ?task kind =
    match trace with
    | None -> ()
    | Some tr -> Sim_trace.emit tr ~at ~core ?task kind
  in
  let cores =
    Array.init procs (fun id ->
        {
          id;
          deque = Wsdeque.create ();
          current = None;
          pending_handler = 0;
          pending_beats = 0;
          work = 0;
          overhead = 0;
          idle = 0;
          last_active = 0;
          parked = false;
          busy = false;
          seg_start = 0;
          seg_end = 0;
          steal_fails = 0;
        })
  in
  let q = Eventq.create ~dummy:(Resume 0) in
  let interrupts =
    Interrupts.create ?trace ~faults:config.faults params config.mech
      ~mem_intensity:config.mem_intensity
  in
  let next_beat_time = ref max_int in
  let schedule_beat () =
    match Interrupts.next interrupts with
    | None -> next_beat_time := max_int
    | Some d ->
        next_beat_time := d.at;
        Eventq.add q ~time:d.at (Beat d)
  in
  (* counters *)
  let remaining = ref 1 in
  let tasks_created = ref 0 in
  let promotions = ref 0 in
  let promotion_attempts = ref 0 in
  let steals = ref 0 in
  let beats_delivered = ref 0 in
  let makespan = ref 0 in
  (* number of cores with a work segment in flight, for the bandwidth
     model: a core counts as active from the event that starts its
     segment until the resume event that ends it *)
  let active = ref 0 in
  let slowdown () =
    let k = float_of_int (max 1 !active) in
    if k > config.bw_cap then k /. config.bw_cap else 1.
  in
  (* initial state: the whole program on core 0 *)
  cores.(0).current <- Some (Runnable.of_ir config.cfg ir);
  for c = 0 to procs - 1 do
    Eventq.add q ~time:0 (Resume c)
  done;
  schedule_beat ();
  let push_tasks (core : core) (ts : Runnable.task list) =
    List.iter
      (fun t ->
        incr tasks_created;
        incr remaining;
        Wsdeque.push_bottom core.deque t)
      ts
  in
  (* A task completed: signal its parent's join; the last child to
     arrive resumes the waiting parent on this core (continuations run
     where the final strand ran, as in Cilk). *)
  let finish_task (core : core) (task : Runnable.task) (t : int) =
    decr remaining;
    core.last_active <- t;
    if t > !makespan then makespan := t;
    match task.on_finish with
    | None -> ()
    | Some s ->
        s.pending <- s.pending - 1;
        if s.pending = 0 then (
          match s.waiter with
          | None -> ()
          | Some w ->
              s.waiter <- None;
              emit ~at:t ~core:core.id ~task:task.id
                (Sim_trace.Join_resume { waiter = w.id });
              Wsdeque.push_bottom core.deque w)
  in
  (* Service pending heartbeats on a running core: handler cost plus
     (in TPAL mode with promotion enabled) one promotion attempt per
     beat, outermost-first.  Returns the cycles consumed. *)
  let service_beats (core : core) (t : int) : int =
    let cost = ref core.pending_handler in
    let beats = core.pending_beats in
    core.pending_handler <- 0;
    core.pending_beats <- 0;
    let tid =
      match core.current with Some task -> task.id | None -> -1
    in
    if
      config.promote
      && config.cfg.mode = Runnable.Tpal
      && Option.is_some core.current
    then begin
      let task = Option.get core.current in
      for _ = 1 to beats do
        incr promotion_attempts;
        emit ~at:t ~core:core.id ~task:tid Sim_trace.Promote_attempt;
        match Runnable.try_promote config.cfg task with
        | Some child ->
            incr promotions;
            cost := !cost + params.tau_promote + params.join_cost;
            emit ~at:t ~core:core.id ~task:tid
              (Sim_trace.Promote_success { child = child.id });
            push_tasks core [ child ]
        | None -> ()
      done
    end;
    core.overhead <- core.overhead + !cost;
    core.seg_start <- t;
    core.seg_end <- t + !cost;
    emit ~at:t ~core:core.id ~task:tid (Sim_trace.Seg_start Service);
    emit ~at:(t + !cost) ~core:core.id ~task:tid
      (Sim_trace.Seg_end
         { cls = Service; work = 0; overhead = !cost; idle = 0 });
    !cost
  in
  (* Acquire work: own deque first, then a scan over up to P random
     victims — each probe targeting one of the {e other} P−1 cores
     (probing oneself would silently burn 1/P of the budget).  Returns
    the cycles the acquisition occupied. *)
  let try_acquire (core : core) (t : int) : int option =
    let acquired cost =
      core.seg_start <- t;
      core.seg_end <- t + cost;
      emit ~at:t ~core:core.id
        ~task:(match core.current with Some w -> w.id | None -> -1)
        (Sim_trace.Seg_start Acquire);
      emit ~at:(t + cost) ~core:core.id
        ~task:(match core.current with Some w -> w.id | None -> -1)
        (Sim_trace.Seg_end
           { cls = Acquire; work = 0; overhead = cost; idle = 0 })
    in
    match Wsdeque.pop_bottom core.deque with
    | Some task ->
        core.current <- Some task;
        core.steal_fails <- 0;
        core.overhead <- core.overhead + params.pop_cost;
        acquired params.pop_cost;
        Some params.pop_cost
    | None ->
        if procs = 1 then None
        else begin
          let found = ref None in
          let tries = ref 0 in
          while !found = None && !tries < procs do
            incr tries;
            let v = Prng.int rng (procs - 1) in
            let victim = if v >= core.id then v + 1 else v in
            emit ~at:t ~core:core.id (Sim_trace.Steal_attempt { victim });
            (* an injected steal fault makes the probe report empty
               without inspecting the victim — the task stays put *)
            if not (steal_faulty ()) then
              match Wsdeque.steal_top cores.(victim).deque with
              | Some task -> found := Some (victim, task)
              | None -> ()
          done;
          match !found with
          | Some (victim, task) ->
              incr steals;
              core.overhead <- core.overhead + params.steal_cost;
              core.current <- Some task;
              core.steal_fails <- 0;
              emit ~at:t ~core:core.id ~task:task.id
                (Sim_trace.Steal_success { victim });
              acquired params.steal_cost;
              Some params.steal_cost
          | None ->
              core.steal_fails <- core.steal_fails + 1;
              None
        end
  in
  let handle_resume (core : core) (t : int) =
    core.parked <- false;
    if core.busy then begin
      (* the segment scheduled by the previous resume has ended *)
      core.busy <- false;
      decr active
    end;
    let beat_cost =
      if core.pending_beats > 0 then service_beats core t else 0
    in
    let t = t + beat_cost in
    match core.current with
    | Some task ->
        core.busy <- true;
        incr active;
        let dilate = slowdown () in
        let budget =
          let cap =
            if !next_beat_time = max_int then max_chunk
            else max 1 (!next_beat_time - t)
          in
          (* the segment's wall-clock extent is capped at [cap]; when
             the workload is bandwidth-bound beyond its compute
             dilation, correspondingly fewer cycles retire per unit of
             wall-clock *)
          let compute_dilation =
            float_of_int config.cfg.dilation_pct /. 100.
          in
          let stretch = Float.max 1. (dilate /. compute_dilation) in
          max 1 (int_of_float (float_of_int (min cap max_chunk) /. stretch))
        in
        let out = Runnable.run_for config.cfg task ~budget in
        core.work <- core.work + out.work_done;
        core.overhead <- core.overhead + out.overhead_done;
        push_tasks core out.spawned;
        (* wall-clock: the larger of compute time (dilated work +
           scheduling) and memory time (raw traffic through the
           saturated bus) *)
        let mem_time =
          out.overhead_done
          + int_of_float (float_of_int out.raw_done *. dilate)
        in
        let elapsed = max 1 (max out.consumed mem_time) in
        let t2 = t + elapsed in
        core.seg_start <- t;
        core.seg_end <- t2;
        emit ~at:t ~core:core.id ~task:task.id (Sim_trace.Seg_start Run);
        emit ~at:t2 ~core:core.id ~task:task.id
          (Sim_trace.Seg_end
             {
               cls = Run;
               work = out.work_done;
               overhead = out.overhead_done;
               idle = 0;
             });
        core.last_active <- t2;
        (if out.finished then begin
           core.current <- None;
           finish_task core task t2
         end
         else
           match out.blocked with
           | Some s ->
               (* the join: park the task until its last child signals *)
               core.current <- None;
               s.waiter <- Some task;
               emit ~at:t2 ~core:core.id ~task:task.id Sim_trace.Join_block
           | None -> ());
        Eventq.add q ~time:t2 (Resume core.id)
    | None -> (
        match try_acquire core t with
        | Some cost -> Eventq.add q ~time:(t + max 1 cost) (Resume core.id)
        | None ->
            if !remaining > 0 then begin
              (* exponential back-off bounds the probing traffic (and
                 the simulator's event count) during work droughts *)
              let wait =
                min 20_000
                  (params.steal_retry * (1 lsl min 6 core.steal_fails))
              in
              core.idle <- core.idle + wait;
              core.seg_start <- t;
              core.seg_end <- t + wait;
              emit ~at:t ~core:core.id (Sim_trace.Seg_start Idle);
              emit ~at:(t + wait) ~core:core.id
                (Sim_trace.Seg_end
                   { cls = Idle; work = 0; overhead = 0; idle = wait });
              Eventq.add q ~time:(t + wait) (Resume core.id)
            end
            else begin
              core.parked <- true;
              emit ~at:t ~core:core.id Sim_trace.Park
            end)
  in
  let handle_beat (d : Interrupts.delivery) =
    if !remaining > 0 then begin
      incr beats_delivered;
      if d.core < procs then begin
        let core = cores.(d.core) in
        core.pending_handler <- core.pending_handler + d.handler_cost;
        core.pending_beats <- core.pending_beats + 1;
        (* effective delivery point: the core's next promotion-ready
           point at or after the nominal arrival (rollforward).  The
           frontier also absorbs jittered ping deliveries whose
           timestamps run slightly behind the sweep — they take effect
           where the core actually is, never inside an already-traced
           segment. *)
        let eff = max d.at core.seg_end in
        emit ~at:eff ~core:core.id
          ~task:(match core.current with Some w -> w.id | None -> -1)
          (Sim_trace.Beat_delivered
             { arrived = d.at; handler_cost = d.handler_cost });
        (* wake a parked core so the handler cost is accounted (it may
           also find freshly promoted work from others) *)
        if core.parked then begin
          core.parked <- false;
          emit ~at:d.at ~core:core.id Sim_trace.Unpark;
          Eventq.add q ~time:d.at (Resume core.id)
        end
      end;
      schedule_beat ()
    end
    else next_beat_time := max_int
  in
  let guard t =
    match horizon with
    | Some h when t > h -> raise (Horizon_exceeded t)
    | _ -> ()
  in
  let running = ref true in
  while !running do
    match Eventq.pop q with
    | None -> running := false
    | Some (t, Resume c) ->
        guard t;
        handle_resume cores.(c) t
    | Some (t, Beat d) ->
        guard t;
        handle_beat d
  done;
  let work = Array.fold_left (fun acc c -> acc + c.work) 0 cores in
  let overhead = Array.fold_left (fun acc c -> acc + c.overhead) 0 cores in
  let idle = Array.fold_left (fun acc c -> acc + c.idle) 0 cores in
  {
    Metrics.makespan = !makespan;
    work;
    overhead;
    idle;
    tasks_created = !tasks_created;
    promotions = !promotions;
    promotion_attempts = !promotion_attempts;
    steals = !steals;
    beats_delivered = !beats_delivered;
    beats_emitted = Interrupts.delivered interrupts;
    beats_target = Interrupts.target_count interrupts ~horizon:!makespan;
    beats_lost = Interrupts.lost interrupts;
  }

(** [serial_time params ir] — the Serial baseline: pure algorithm work
    on one core, no scheduler, no interrupts. *)
let serial_time (params : Params.t) (ir : Par_ir.t) : int =
  ignore params;
  Par_ir.work ir
