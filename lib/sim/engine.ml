(** The multicore discrete-event engine — the substitute for the
    paper's 16-core testbed.

    P simulated worker cores execute {!Runnable} tasks under one of the
    three scheduling modes, with randomized work stealing between their
    deques and heartbeat interrupts delivered by an {!Interrupts}
    mechanism.  Virtual time is in CPU cycles; all scheduling costs
    come from {!Params}.

    Event-ordering invariant: a core's running segment never spans an
    {e effective} heartbeat delivery.  Segment budgets are capped at
    the next known delivery time, but an atomic action (one loop
    iteration, one leaf chunk) can overshoot the cap by its own
    granularity — exactly as real TPAL code only honours an interrupt
    at the next promotion-ready point (rollforward, §3.3).  A beat
    whose nominal arrival falls strictly inside a running segment is
    therefore delivered {e effectively} at the segment's end, which is
    the next promotion-ready point; ties at the same instant resolve
    in insertion order, which places the beat first (it was scheduled
    when the previous beat fired, strictly earlier than any racing
    resume).

    {2 Crash faults and recovery}

    A fault {e schedule} ({!Interrupts.faults.schedule}) subjects
    individual cores to crash / stall / slow-down events.  The recovery
    layer keeps the run live as long as one core survives:

    - {e task leases}: a core holding an in-flight task renews its
      lease at every promotion-ready point (segment start); renewal
      also refreshes a {e checkpoint} — a {!Runnable.snapshot} of the
      task taken at safe points (acquisition, after beat service, after
      spawning), i.e. points where all of the task's children are
      registered in shared join records;
    - {e supervisor sweep}: a periodic sweep (every
      [sweep_beats · ♥]) requeues the checkpoint of any task whose
      lease expired — the cycles since the checkpoint are genuinely
      re-executed — and drains dead cores' deques into the survivors;
    - {e idempotent joins}: a stalled core revives and {e races} the
      re-executed copy; the first incarnation to complete flips the
      task's shared {!Runnable.task.completed} latch and a duplicate
      completion is a no-op rather than a double-join;
    - {e quarantine}: dead cores leave the steal domain (thieves only
      probe live cores once a core has died).

    The whole layer is pay-for-use: with an empty schedule no fault or
    sweep event is created, no snapshot is taken, and victim sampling
    draws exactly the same stream — metrics are bit-identical to a
    build without the layer.

    Pass [?trace] to {!run} to record every scheduling decision as a
    {!Sim_trace} event stream; recording off costs one match per
    emission site. *)

type config = {
  cfg : Runnable.cfg;
  mech : Interrupts.mech;
  promote : bool;
      (** promotions enabled on beats; with [false] beats only pay
          their handler cost (the "Serial, interrupts only" bars of
          Figures 9 and 13) *)
  mem_intensity : float;
      (** workload memory-boundedness ∈ [0,1]; degrades Linux signal
          delivery (see {!Interrupts}) *)
  bw_cap : float;
      (** memory-bandwidth ceiling: the maximum aggregate rate (in
          multiples of one core's serial rate) at which the workload's
          cycles can be retired fleet-wide.  With [k] cores active and
          [k > bw_cap], every core's progress dilates by [k / bw_cap] —
          the saturation that bounds streaming benchmarks (mergesort,
          plus-reduce) on the paper's one-NUMA-node testbed.
          [infinity] = compute-bound. *)
  faults : Interrupts.faults;
      (** injected faults (see {!Interrupts.faults}): the beat
          components are consumed by the interrupt mechanism, while
          [steal_fail] (spuriously empty steal probes — the task stays
          put, nothing is lost) and [schedule] (core crash/stall/slow
          events, recovered via task leases) are consumed here. *)
}

let make_config ?(mech = Interrupts.Off) ?(promote = true)
    ?(mem_intensity = 0.3) ?(bw_cap = infinity)
    ?(faults = Interrupts.no_faults) (cfg : Runnable.cfg) : config =
  { cfg; mech; promote; mem_intensity; bw_cap; faults }

(** Raised by {!run} when simulated time passes the caller-supplied
    horizon — the watchdog that turns a scheduler livelock (e.g. a lost
    task leaving idle cores spinning forever) into a reportable failure
    instead of a hang.  Carries the simulated time at which the guard
    tripped. *)
exception Horizon_exceeded of int

type ev =
  | Resume of int
  | Beat of Interrupts.delivery
  | Fault of Interrupts.core_fault
  | Sweep  (** supervisor lease sweep (only with a fault schedule) *)

type core_status = Alive | Stalled of int  (** revival time *) | Dead

type core = {
  id : int;
  deque : Runnable.task Wsdeque.t;
  mutable current : Runnable.task option;
  mutable pending_handler : int;  (** handler cycles to charge at resume *)
  mutable pending_beats : int;  (** beats awaiting service at resume *)
  mutable work : int;
  mutable overhead : int;
  mutable idle : int;
  mutable last_active : int;
  mutable parked : bool;  (** no further events scheduled for this core *)
  mutable busy : bool;  (** a work segment is in flight until the next
                            resume (virtual busy interval) *)
  mutable seg_start : int;  (** start of the last scheduled segment *)
  mutable seg_end : int;
      (** scheduling frontier: end of the last scheduled segment (of
          any class) — the core's next promotion-ready point *)
  mutable steal_fails : int;  (** consecutive failed steal scans, for
                                  exponential back-off *)
  (* crash-fault state (quiescent unless a fault schedule is set) *)
  mutable status : core_status;
  mutable slow : float;  (** wall-clock dilation of run segments, 1 = nominal *)
  mutable lease : int;  (** expiry cycle of the in-flight task's lease;
                            [max_int] = no lease outstanding *)
  mutable ckpt : Runnable.task option;
      (** checkpoint of the in-flight task: a snapshot from the last
          safe point, never executed directly (requeues re-snapshot it) *)
  mutable died_at : int;  (** when the core last lost liveness *)
  mutable buried : bool;  (** dead core's deque already drained *)
  mutable defer : bool;  (** a revival resume is already scheduled *)
}

(* Segment length bound: spawned work must become stealable, and the
   bandwidth model samples the active-core count, at this granularity
   (run_for additionally stops early whenever it spawns). *)
let max_chunk = 250_000

let run ?(trace : Sim_trace.t option) ?(horizon : int option)
    (config : config) (ir : Par_ir.t) : Metrics.t =
  let params = config.cfg.params in
  let procs = max 1 params.procs in
  let rng = Prng.create ~seed:params.seed in
  (* steal-fail fault draws come from their own split stream so that
     enabling faults does not perturb victim sampling *)
  let fault_rng = Prng.split (Prng.create ~seed:(params.seed lxor 0x5FA1)) in
  let steal_faulty () =
    config.faults.steal_fail > 0.
    && Prng.float fault_rng < config.faults.steal_fail
  in
  (* crash-fault recovery is active only when a schedule is present:
     otherwise no fault/sweep event exists, no snapshot is taken and
     the victim-sampling stream is untouched (pay-for-use) *)
  let recovery = config.faults.schedule <> [] in
  let heart = max 1 (Params.heart_cycles params) in
  (* lease TTL: a few beats of slack plus a two-segment allowance, so
     a healthy core renewing at every segment start can never be
     falsely expired (a slowed core can — it is then re-executed
     elsewhere while it limps on, which the join latch makes safe) *)
  let lease_ttl = (max 1 params.lease_beats * heart) + (2 * max_chunk) in
  let sweep_period = max 1 (max 1 params.sweep_beats * heart) in
  (* per-run deterministic task ids, so traces are reproducible *)
  Runnable.reset_ids ();
  let emit ~at ~core ?task kind =
    match trace with
    | None -> ()
    | Some tr -> Sim_trace.emit tr ~at ~core ?task kind
  in
  let cores =
    Array.init procs (fun id ->
        {
          id;
          deque = Wsdeque.create ();
          current = None;
          pending_handler = 0;
          pending_beats = 0;
          work = 0;
          overhead = 0;
          idle = 0;
          last_active = 0;
          parked = false;
          busy = false;
          seg_start = 0;
          seg_end = 0;
          steal_fails = 0;
          status = Alive;
          slow = 1.;
          lease = max_int;
          ckpt = None;
          died_at = 0;
          buried = false;
          defer = false;
        })
  in
  let q = Eventq.create ~dummy:(Resume 0) in
  let interrupts =
    Interrupts.create ?trace ~faults:config.faults params config.mech
      ~mem_intensity:config.mem_intensity
  in
  let next_beat_time = ref max_int in
  let schedule_beat () =
    match Interrupts.next interrupts with
    | None -> next_beat_time := max_int
    | Some d ->
        next_beat_time := d.at;
        Eventq.add q ~time:d.at (Beat d)
  in
  (* counters *)
  let remaining = ref 1 in
  let tasks_created = ref 0 in
  let promotions = ref 0 in
  let promotion_attempts = ref 0 in
  let steals = ref 0 in
  let beats_delivered = ref 0 in
  let makespan = ref 0 in
  let cores_lost = ref 0 in
  let leases_expired = ref 0 in
  let tasks_reexecuted = ref 0 in
  let recovery_cycles = ref 0 in
  (* number of cores with a work segment in flight, for the bandwidth
     model: a core counts as active from the event that starts its
     segment until the resume event that ends it *)
  let active = ref 0 in
  let slowdown () =
    let k = float_of_int (max 1 !active) in
    if k > config.bw_cap then k /. config.bw_cap else 1.
  in
  let renew_lease (core : core) (t : int) =
    if recovery then core.lease <- t + lease_ttl
  in
  let checkpoint (core : core) =
    if recovery then
      core.ckpt <-
        (match core.current with
        | Some task -> Some (Runnable.snapshot task)
        | None -> None)
  in
  let drop_lease (core : core) =
    if recovery then begin
      core.lease <- max_int;
      core.ckpt <- None
    end
  in
  (* initial state: the whole program on core 0 *)
  cores.(0).current <- Some (Runnable.of_ir config.cfg ir);
  renew_lease cores.(0) 0;
  checkpoint cores.(0);
  for c = 0 to procs - 1 do
    Eventq.add q ~time:0 (Resume c)
  done;
  schedule_beat ();
  if recovery then begin
    List.iter
      (fun (f : Interrupts.core_fault) ->
        if f.victim >= 0 && f.victim < procs then
          Eventq.add q ~time:(max 0 f.at) (Fault f))
      config.faults.schedule;
    Eventq.add q ~time:sweep_period Sweep
  end;
  let push_tasks (core : core) (ts : Runnable.task list) =
    List.iter
      (fun t ->
        incr tasks_created;
        incr remaining;
        Wsdeque.push_bottom core.deque t)
      ts
  in
  (* A task completed: signal its parent's join; the last child to
     arrive resumes the waiting parent on this core (continuations run
     where the final strand ran, as in Cilk).  The completion latch is
     shared by every incarnation of the logical task, so a second
     completion — a stalled-then-revived core racing the supervisor's
     re-execution — is a no-op instead of a double-join. *)
  let finish_task (core : core) (task : Runnable.task) (t : int) =
    core.last_active <- t;
    if !(task.completed) then
      emit ~at:t ~core:core.id ~task:task.id Sim_trace.Duplicate_finish
    else begin
      task.completed := true;
      decr remaining;
      if t > !makespan then makespan := t;
      match task.on_finish with
      | None -> ()
      | Some s ->
          s.pending <- s.pending - 1;
          if s.pending = 0 then (
            match s.waiter with
            | None -> ()
            | Some w ->
                s.waiter <- None;
                emit ~at:t ~core:core.id ~task:task.id
                  (Sim_trace.Join_resume { waiter = w.id });
                Wsdeque.push_bottom core.deque w)
    end
  in
  (* Service pending heartbeats on a running core: handler cost plus
     (in TPAL mode with promotion enabled) one promotion attempt per
     beat, outermost-first.  Returns the cycles consumed. *)
  let service_beats (core : core) (t : int) : int =
    let cost = ref core.pending_handler in
    let beats = core.pending_beats in
    core.pending_handler <- 0;
    core.pending_beats <- 0;
    let tid =
      match core.current with Some task -> task.id | None -> -1
    in
    if
      config.promote
      && config.cfg.mode = Runnable.Tpal
      && Option.is_some core.current
      (* a logically completed task (this incarnation lost a duplicate
         race) must not create new work; in a fault-free run the latch
         of a current task is never set, so this costs one read *)
      && not !((Option.get core.current).Runnable.completed)
    then begin
      let task = Option.get core.current in
      for _ = 1 to beats do
        incr promotion_attempts;
        emit ~at:t ~core:core.id ~task:tid Sim_trace.Promote_attempt;
        match Runnable.try_promote config.cfg task with
        | Some child ->
            incr promotions;
            cost := !cost + params.tau_promote + params.join_cost;
            emit ~at:t ~core:core.id ~task:tid
              (Sim_trace.Promote_success { child = child.id });
            push_tasks core [ child ]
        | None -> ()
      done
    end;
    core.overhead <- core.overhead + !cost;
    core.seg_start <- t;
    core.seg_end <- t + !cost;
    emit ~at:t ~core:core.id ~task:tid (Sim_trace.Seg_start Service);
    emit ~at:(t + !cost) ~core:core.id ~task:tid
      (Sim_trace.Seg_end
         { cls = Service; work = 0; overhead = !cost; idle = 0 });
    !cost
  in
  (* Acquire work: own deque first, then a scan over up to P random
     victims — each probe targeting one of the {e other} cores still in
     the steal domain (dead cores are quarantined out; probing oneself
     would silently burn 1/P of the budget).  Returns the cycles the
     acquisition occupied. *)
  let any_dead () =
    recovery && Array.exists (fun c -> c.status = Dead) cores
  in
  let try_acquire (core : core) (t : int) : int option =
    let acquired cost =
      renew_lease core t;
      checkpoint core;
      core.seg_start <- t;
      core.seg_end <- t + cost;
      emit ~at:t ~core:core.id
        ~task:(match core.current with Some w -> w.id | None -> -1)
        (Sim_trace.Seg_start Acquire);
      emit ~at:(t + cost) ~core:core.id
        ~task:(match core.current with Some w -> w.id | None -> -1)
        (Sim_trace.Seg_end
           { cls = Acquire; work = 0; overhead = cost; idle = 0 })
    in
    match Wsdeque.pop_bottom core.deque with
    | Some task ->
        core.current <- Some task;
        core.steal_fails <- 0;
        core.overhead <- core.overhead + params.pop_cost;
        acquired params.pop_cost;
        Some params.pop_cost
    | None ->
        if procs = 1 then None
        else begin
          let found = ref None in
          if not (any_dead ()) then begin
            (* the fault-free sampling path: bit-identical draws *)
            let tries = ref 0 in
            while !found = None && !tries < procs do
              incr tries;
              let v = Prng.int rng (procs - 1) in
              let victim = if v >= core.id then v + 1 else v in
              emit ~at:t ~core:core.id (Sim_trace.Steal_attempt { victim });
              (* an injected steal fault makes the probe report empty
                 without inspecting the victim — the task stays put *)
              if not (steal_faulty ()) then
                match Wsdeque.steal_top cores.(victim).deque with
                | Some task -> found := Some (victim, task)
                | None -> ()
            done
          end
          else begin
            (* degraded mode: sample only the surviving victims *)
            let candidates =
              Array.of_seq
                (Seq.filter_map
                   (fun c ->
                     if c.id <> core.id && c.status <> Dead then Some c.id
                     else None)
                   (Array.to_seq cores))
            in
            let n = Array.length candidates in
            let tries = ref 0 in
            while !found = None && n > 0 && !tries < procs do
              incr tries;
              let victim = candidates.(Prng.int rng n) in
              emit ~at:t ~core:core.id (Sim_trace.Steal_attempt { victim });
              if not (steal_faulty ()) then
                match Wsdeque.steal_top cores.(victim).deque with
                | Some task -> found := Some (victim, task)
                | None -> ()
            done
          end;
          match !found with
          | Some (victim, task) ->
              incr steals;
              core.overhead <- core.overhead + params.steal_cost;
              core.current <- Some task;
              core.steal_fails <- 0;
              emit ~at:t ~core:core.id ~task:task.id
                (Sim_trace.Steal_success { victim });
              acquired params.steal_cost;
              Some params.steal_cost
          | None ->
              core.steal_fails <- core.steal_fails + 1;
              None
        end
  in
  let close_segment (core : core) =
    if core.busy then begin
      (* the segment scheduled by the previous resume has ended *)
      core.busy <- false;
      decr active
    end
  in
  let run_body (core : core) (t : int) =
    core.parked <- false;
    close_segment core;
    renew_lease core t;
    let beat_cost =
      if core.pending_beats > 0 then begin
        let c = service_beats core t in
        (* safe point: any promoted child is now registered in the
           shared join records, so a re-execution from this snapshot
           cannot re-give work away inconsistently *)
        checkpoint core;
        c
      end
      else 0
    in
    let t = t + beat_cost in
    match core.current with
    | Some task ->
        core.busy <- true;
        incr active;
        let dilate = slowdown () in
        let budget =
          let cap =
            if !next_beat_time = max_int then max_chunk
            else max 1 (!next_beat_time - t)
          in
          (* the segment's wall-clock extent is capped at [cap]; when
             the workload is bandwidth-bound beyond its compute
             dilation, correspondingly fewer cycles retire per unit of
             wall-clock — and a slow-faulted core retires [slow]×
             fewer still *)
          let compute_dilation =
            float_of_int config.cfg.dilation_pct /. 100.
          in
          let stretch =
            Float.max 1. (dilate /. compute_dilation) *. core.slow
          in
          max 1 (int_of_float (float_of_int (min cap max_chunk) /. stretch))
        in
        let out = Runnable.run_for config.cfg task ~budget in
        core.work <- core.work + out.work_done;
        core.overhead <- core.overhead + out.overhead_done;
        push_tasks core out.spawned;
        if
          recovery && out.spawned <> []
          && (not out.finished)
          && out.blocked = None
        then
          (* safe point: the spawned children are registered *)
          checkpoint core;
        (* wall-clock: the larger of compute time (dilated work +
           scheduling) and memory time (raw traffic through the
           saturated bus), both stretched by a slow-core fault *)
        let mem_time =
          out.overhead_done
          + int_of_float (float_of_int out.raw_done *. dilate)
        in
        let elapsed =
          let e = max 1 (max out.consumed mem_time) in
          if core.slow = 1. then e
          else max 1 (int_of_float (float_of_int e *. core.slow))
        in
        let t2 = t + elapsed in
        core.seg_start <- t;
        core.seg_end <- t2;
        emit ~at:t ~core:core.id ~task:task.id (Sim_trace.Seg_start Run);
        emit ~at:t2 ~core:core.id ~task:task.id
          (Sim_trace.Seg_end
             {
               cls = Run;
               work = out.work_done;
               overhead = out.overhead_done;
               idle = 0;
             });
        core.last_active <- t2;
        (if out.finished then begin
           core.current <- None;
           drop_lease core;
           finish_task core task t2
         end
         else
           match out.blocked with
           | Some s ->
               (* the join: park the task until its last child signals *)
               core.current <- None;
               drop_lease core;
               s.waiter <- Some task;
               emit ~at:t2 ~core:core.id ~task:task.id Sim_trace.Join_block
           | None -> ());
        Eventq.add q ~time:t2 (Resume core.id)
    | None -> (
        if recovery && !remaining = 0 then begin
          (* nothing logical remains; don't resurrect requeued
             duplicates that lost their race *)
          core.parked <- true;
          emit ~at:t ~core:core.id Sim_trace.Park
        end
        else
          match try_acquire core t with
          | Some cost -> Eventq.add q ~time:(t + max 1 cost) (Resume core.id)
          | None ->
              if !remaining > 0 then begin
                (* exponential back-off bounds the probing traffic (and
                   the simulator's event count) during work droughts *)
                let wait =
                  min 20_000
                    (params.steal_retry * (1 lsl min 6 core.steal_fails))
                in
                core.idle <- core.idle + wait;
                core.seg_start <- t;
                core.seg_end <- t + wait;
                emit ~at:t ~core:core.id (Sim_trace.Seg_start Idle);
                emit ~at:(t + wait) ~core:core.id
                  (Sim_trace.Seg_end
                     { cls = Idle; work = 0; overhead = 0; idle = wait });
                Eventq.add q ~time:(t + wait) (Resume core.id)
              end
              else begin
                core.parked <- true;
                emit ~at:t ~core:core.id Sim_trace.Park
              end)
  in
  let handle_resume (core : core) (t : int) =
    match core.status with
    | Dead ->
        (* the burial: close the in-flight segment's accounting; the
           core schedules nothing further *)
        close_segment core
    | Stalled until when t < until ->
        close_segment core;
        if not core.defer then begin
          core.defer <- true;
          (* the frozen gap is idle time; the frontier moves to the
             revival point so beats land after it (a frozen core
             cannot service its handler) *)
          core.idle <- core.idle + (until - t);
          core.seg_start <- t;
          core.seg_end <- until;
          emit ~at:t ~core:core.id (Sim_trace.Seg_start Idle);
          emit ~at:until ~core:core.id
            (Sim_trace.Seg_end
               { cls = Idle; work = 0; overhead = 0; idle = until - t });
          Eventq.add q ~time:until (Resume core.id)
        end
    | Stalled _ ->
        core.status <- Alive;
        core.defer <- false;
        emit ~at:t ~core:core.id
          ~task:(match core.current with Some w -> w.id | None -> -1)
          Sim_trace.Core_recover;
        run_body core t
    | Alive -> run_body core t
  in
  let handle_beat (d : Interrupts.delivery) =
    if !remaining > 0 then begin
      incr beats_delivered;
      if d.core < procs then begin
        let core = cores.(d.core) in
        core.pending_handler <- core.pending_handler + d.handler_cost;
        core.pending_beats <- core.pending_beats + 1;
        (* effective delivery point: the core's next promotion-ready
           point at or after the nominal arrival (rollforward).  The
           frontier also absorbs jittered ping deliveries whose
           timestamps run slightly behind the sweep — they take effect
           where the core actually is, never inside an already-traced
           segment. *)
        let eff = max d.at core.seg_end in
        emit ~at:eff ~core:core.id
          ~task:(match core.current with Some w -> w.id | None -> -1)
          (Sim_trace.Beat_delivered
             { arrived = d.at; handler_cost = d.handler_cost });
        (* wake a parked core so the handler cost is accounted (it may
           also find freshly promoted work from others) — unless it is
           dead, in which case the beat fires into the void *)
        if core.parked && core.status <> Dead then begin
          core.parked <- false;
          emit ~at:d.at ~core:core.id Sim_trace.Unpark;
          Eventq.add q ~time:d.at (Resume core.id)
        end
      end;
      schedule_beat ()
    end
    else next_beat_time := max_int
  in
  let handle_fault (f : Interrupts.core_fault) (t : int) =
    if !remaining > 0 then begin
      let core = cores.(f.victim) in
      match (core.status, f.kind) with
      | Dead, _ -> () (* already gone *)
      | _, Interrupts.Crash ->
          (* effective at the frontier: the in-flight atomic segment
             completes (its state mutations are already applied), then
             the core is gone — exactly the granularity at which beats
             take effect *)
          let eff = max t core.seg_end in
          core.status <- Dead;
          core.died_at <- eff;
          core.parked <- false;
          incr cores_lost;
          emit ~at:eff ~core:core.id
            ~task:(match core.current with Some w -> w.id | None -> -1)
            Sim_trace.Core_crash
      | Alive, Interrupts.Stall n ->
          let eff = max t core.seg_end in
          let until = eff + max 1 n in
          core.status <- Stalled until;
          core.died_at <- eff;
          emit ~at:eff ~core:core.id
            ~task:(match core.current with Some w -> w.id | None -> -1)
            (Sim_trace.Core_stall { until });
          if core.parked then begin
            (* push the parked core through the defer path so the
               revival is scheduled *)
            core.parked <- false;
            Eventq.add q ~time:eff (Resume core.id)
          end
      | Stalled _, Interrupts.Stall _ ->
          () (* already frozen; overlapping stalls coalesce *)
      | (Alive | Stalled _), Interrupts.Slow x ->
          core.slow <- Float.max core.slow (Float.max 1. x);
          emit ~at:t ~core:core.id (Sim_trace.Core_slow { factor = core.slow })
    end
  in
  (* The supervisor sweep: requeue tasks whose lease expired (their
     holder is dead, frozen, or too slow to trust) and drain dead
     cores' deques into the survivors.  Requeue destinations rotate
     over live cores, preferring ones that are actually running. *)
  let rr = ref 0 in
  let dest_core () : core =
    let n = Array.length cores in
    let pick pred =
      let found = ref None in
      for k = 0 to n - 1 do
        let c = cores.((!rr + k) mod n) in
        if !found = None && pred c then begin
          found := Some c;
          rr := (!rr + k + 1) mod n
        end
      done;
      !found
    in
    match pick (fun c -> c.status = Alive) with
    | Some c -> c
    | None -> (
        match pick (fun c -> c.status <> Dead) with
        | Some c -> c
        | None -> cores.(0) (* unreachable: schedules keep a survivor *))
  in
  let requeue ~(at : int) ~(from_ : int) (task : Runnable.task) =
    let dest = dest_core () in
    Wsdeque.push_bottom dest.deque task;
    emit ~at ~core:dest.id ~task:task.id (Sim_trace.Task_requeue { from_ });
    if dest.parked then begin
      dest.parked <- false;
      emit ~at ~core:dest.id Sim_trace.Unpark;
      Eventq.add q ~time:at (Resume dest.id)
    end
  in
  let handle_sweep (t : int) =
    if !remaining > 0 then begin
      Array.iter
        (fun core ->
          (* quarantine: a dead core's deque is shared memory — the
             supervisor drains it into the survivors *)
          if core.status = Dead && not core.buried then begin
            core.buried <- true;
            List.iter
              (fun task -> requeue ~at:t ~from_:core.id task)
              (Wsdeque.to_list core.deque);
            Wsdeque.clear core.deque
          end;
          (* expired lease: requeue a fresh snapshot of the last
             checkpoint — the cycles since it are re-executed *)
          match core.current with
          | Some task when t > core.lease ->
              incr leases_expired;
              emit ~at:t ~core:core.id ~task:task.id Sim_trace.Lease_expired;
              let ckpt =
                match core.ckpt with Some c -> c | None -> task
              in
              let clone = Runnable.snapshot ckpt in
              incr tasks_reexecuted;
              recovery_cycles :=
                !recovery_cycles + (t - (core.lease - lease_ttl));
              requeue ~at:t ~from_:core.id clone;
              if core.status = Dead then begin
                core.current <- None;
                core.ckpt <- None;
                core.lease <- max_int
              end
              else
                (* the holder may yet revive and race the clone; don't
                   expire it again until it renews *)
                core.lease <- max_int
          | _ -> ())
        cores;
      Eventq.add q ~time:(t + sweep_period) Sweep
    end
  in
  let guard t =
    match horizon with
    | Some h when t > h && !remaining > 0 -> raise (Horizon_exceeded t)
    | _ -> ()
  in
  let running = ref true in
  while !running do
    match Eventq.pop q with
    | None -> running := false
    | Some (t, Resume c) ->
        guard t;
        handle_resume cores.(c) t
    | Some (t, Beat d) ->
        guard t;
        handle_beat d
    | Some (t, Fault f) ->
        guard t;
        handle_fault f t
    | Some (t, Sweep) ->
        guard t;
        handle_sweep t
  done;
  let work = Array.fold_left (fun acc c -> acc + c.work) 0 cores in
  let overhead = Array.fold_left (fun acc c -> acc + c.overhead) 0 cores in
  let idle = Array.fold_left (fun acc c -> acc + c.idle) 0 cores in
  {
    Metrics.makespan = !makespan;
    work;
    overhead;
    idle;
    tasks_created = !tasks_created;
    promotions = !promotions;
    promotion_attempts = !promotion_attempts;
    steals = !steals;
    beats_delivered = !beats_delivered;
    beats_emitted = Interrupts.delivered interrupts;
    beats_target = Interrupts.target_count interrupts ~horizon:!makespan;
    beats_lost = Interrupts.lost interrupts;
    cores_lost = !cores_lost;
    leases_expired = !leases_expired;
    tasks_reexecuted = !tasks_reexecuted;
    recovery_cycles = !recovery_cycles;
  }

(** [serial_time params ir] — the Serial baseline: pure algorithm work
    on one core, no scheduler, no interrupts. *)
let serial_time (params : Params.t) (ir : Par_ir.t) : int =
  ignore params;
  Par_ir.work ir
