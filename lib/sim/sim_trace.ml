(** Structured event recorder for the discrete-event engine — the
    observability layer behind every figure's cycle accounting.

    The engine's end-of-run {!Metrics} are aggregates; when a figure
    comes out wrong they say nothing about {e where} the cycles went.
    This recorder captures the engine's scheduling decisions as a
    stream of timestamped events (virtual cycle, core id, task id):
    segment starts/ends with their exact work/overhead/idle cycle
    breakdown, steal probes and successes, promotion attempts and
    successes, heartbeat deliveries and losses, join blocks/resumes,
    parks and wake-ups.

    Recording is strictly opt-in: {!Engine.run} takes an optional
    recorder and pays only a single match per emission site when it is
    absent.  Consumers:

    - {!to_chrome} exports the stream in Chrome [trace_event] JSON
      (via the generic {!Stats.Chrome_trace}), loadable in
      [chrome://tracing] or Perfetto;
    - {!report} renders a plain-text per-core timeline and cycle
      breakdown;
    - {!per_core_totals}, {!utilization_histogram},
      {!steal_latencies} and {!promotion_interarrivals} derive
      validation metrics that the test suite asserts invariants
      against (traced cycles must reconcile {e exactly} with
      {!Metrics}; no running segment may span a beat delivery). *)

type seg_class = Run | Service | Acquire | Idle

let seg_name = function
  | Run -> "run"
  | Service -> "beat-service"
  | Acquire -> "acquire"
  | Idle -> "idle"

type kind =
  | Seg_start of seg_class
  | Seg_end of { cls : seg_class; work : int; overhead : int; idle : int }
      (** cycle breakdown of the segment that just ended; the segment's
          start is the matching {!Seg_start} on the same core *)
  | Steal_attempt of { victim : int }
  | Steal_success of { victim : int }
  | Promote_attempt
  | Promote_success of { child : int }
  | Beat_delivered of { arrived : int; handler_cost : int }
      (** [at] is the {e effective} delivery time — the promotion-ready
          point where the handler can run; [arrived] is when the
          interrupt mechanism fired it *)
  | Beat_lost
  | Join_block
  | Join_resume of { waiter : int }
  | Park
  | Unpark
  (* crash-fault recovery (emitted only when a fault schedule is set) *)
  | Core_crash  (** the core halted permanently at [at] *)
  | Core_stall of { until : int }  (** frozen until [until], then revives *)
  | Core_slow of { factor : float }  (** retiring cycles [factor]× slower *)
  | Core_recover  (** a stalled core resumed execution *)
  | Lease_expired  (** the supervisor found this core's task lease expired *)
  | Task_requeue of { from_ : int }
      (** [task] re-enqueued on core [core] for re-execution after
          being lost on core [from_] (lease expiry or deque drain) *)
  | Duplicate_finish
      (** a second incarnation of [task] completed; the join latch
          made it a no-op *)

type event = {
  at : int;  (** virtual cycle *)
  core : int;
  task : int;  (** task id, [-1] when no task is involved *)
  kind : kind;
}

type t = { mutable buf : event array; mutable len : int }

let create () : t = { buf = [||]; len = 0 }

let dummy = { at = 0; core = 0; task = -1; kind = Park }

(** [emit t ~at ~core ?task kind] appends one event (amortized O(1)). *)
let emit (t : t) ~(at : int) ~(core : int) ?(task = -1) (kind : kind) : unit =
  if t.len = Array.length t.buf then begin
    let cap = max 1024 (2 * Array.length t.buf) in
    let buf = Array.make cap dummy in
    Array.blit t.buf 0 buf 0 t.len;
    t.buf <- buf
  end;
  t.buf.(t.len) <- { at; core; task; kind };
  t.len <- t.len + 1

let length (t : t) : int = t.len
let iter (f : event -> unit) (t : t) : unit =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done

(** Events in emission order (per core this is chronological; across
    cores segment ends are recorded when the segment is scheduled). *)
let events (t : t) : event list = List.init t.len (fun i -> t.buf.(i))

(** Number of cores that emitted at least one event. *)
let procs (t : t) : int =
  let m = ref (-1) in
  iter (fun e -> if e.core > !m then m := e.core) t;
  !m + 1

(** Last timestamp in the trace (the traced horizon). *)
let horizon (t : t) : int =
  let m = ref 0 in
  iter (fun e -> if e.at > !m then m := e.at) t;
  !m

(* ------------------------------------------------------------------ *)
(* Derived validation metrics                                         *)
(* ------------------------------------------------------------------ *)

type core_totals = { work : int; overhead : int; idle : int }

(** Per-core cycle totals summed from the traced segment breakdowns;
    by construction these must reconcile exactly with
    [Metrics.{work,overhead,idle}]. *)
let per_core_totals (t : t) : core_totals array
    =
  let n = max 1 (procs t) in
  let w = Array.make n 0 and o = Array.make n 0 and i = Array.make n 0 in
  iter
    (fun e ->
      match e.kind with
      | Seg_end s ->
          w.(e.core) <- w.(e.core) + s.work;
          o.(e.core) <- o.(e.core) + s.overhead;
          i.(e.core) <- i.(e.core) + s.idle
      | _ -> ())
    t;
  Array.init n (fun c -> { work = w.(c); overhead = o.(c); idle = i.(c) })

(** Fleet-wide traced totals. *)
let totals (t : t) : core_totals =
  Array.fold_left
    (fun acc c ->
      { work = acc.work + c.work;
        overhead = acc.overhead + c.overhead;
        idle = acc.idle + c.idle })
    { work = 0; overhead = 0; idle = 0 }
    (per_core_totals t)

let count (p : event -> bool) (t : t) : int =
  let n = ref 0 in
  iter (fun e -> if p e then incr n) t;
  !n

(** Heartbeats delivered (effective deliveries recorded by the engine). *)
let beats (t : t) : int =
  count (fun e -> match e.kind with Beat_delivered _ -> true | _ -> false) t

(** Heartbeats lost inside the interrupt mechanism. *)
let beats_lost (t : t) : int =
  count (fun e -> match e.kind with Beat_lost -> true | _ -> false) t

let steals (t : t) : int =
  count (fun e -> match e.kind with Steal_success _ -> true | _ -> false) t

let promotions (t : t) : int =
  count
    (fun e -> match e.kind with Promote_success _ -> true | _ -> false)
    t

(** Cores that crashed permanently during the traced run. *)
let crashes (t : t) : int =
  count (fun e -> match e.kind with Core_crash -> true | _ -> false) t

(** Tasks requeued for re-execution (lease expiries and deque drains). *)
let requeues (t : t) : int =
  count (fun e -> match e.kind with Task_requeue _ -> true | _ -> false) t

(** Duplicate completions absorbed by the idempotent-join latch. *)
let duplicate_finishes (t : t) : int =
  count (fun e -> match e.kind with Duplicate_finish -> true | _ -> false) t

(** Per-core utilization (work cycles / makespan) bucketed into
    [bins] equal-width bins over [0,1] — the traced counterpart of
    Figure 15b's utilization bars. *)
let utilization_histogram ?(bins = 10) (t : t) ~(makespan : int) : int array
    =
  let h = Array.make bins 0 in
  if makespan > 0 then
    Array.iter
      (fun c ->
        let u = float_of_int c.work /. float_of_int makespan in
        let b = min (bins - 1) (max 0 (int_of_float (u *. float_of_int bins))) in
        h.(b) <- h.(b) + 1)
      (per_core_totals t);
  h

(** Steal latencies: for every successful steal, the cycles between
    the core's first probe of the current work drought and the
    success (includes the exponential back-off the engine inserts). *)
let steal_latencies (t : t) : int list =
  let n = max 1 (procs t) in
  let hunt = Array.make n (-1) in
  let acc = ref [] in
  iter
    (fun e ->
      match e.kind with
      | Steal_attempt _ -> if hunt.(e.core) < 0 then hunt.(e.core) <- e.at
      | Steal_success _ ->
          if hunt.(e.core) >= 0 then begin
            acc := (e.at - hunt.(e.core)) :: !acc;
            hunt.(e.core) <- -1
          end
      | Seg_start Acquire ->
          (* the drought ended without a steal (own-deque pop) *)
          hunt.(e.core) <- -1
      | _ -> ())
    t;
  List.rev !acc

(** Inter-arrival times between consecutive successful promotions,
    fleet-wide — the pacing heartbeat scheduling is supposed to
    impose. *)
let promotion_interarrivals (t : t) : int list =
  let times = ref [] in
  iter
    (fun e ->
      match e.kind with
      | Promote_success _ -> times := e.at :: !times
      | _ -> ())
    t;
  let sorted = List.sort compare (List.rev !times) in
  match sorted with
  | [] | [ _ ] -> []
  | first :: rest ->
      let _, diffs =
        List.fold_left
          (fun (prev, acc) t -> (t, (t - prev) :: acc))
          (first, []) rest
      in
      List.rev diffs

(** Matched [(class, start, stop, work, overhead, idle)] segments of
    one core, in time order. *)
let segments_of_core (t : t) (core : int) :
    (seg_class * int * int * int * int * int) list =
  let open_start = ref None in
  let acc = ref [] in
  iter
    (fun e ->
      if e.core = core then
        match e.kind with
        | Seg_start cls -> open_start := Some (cls, e.at)
        | Seg_end s -> (
            match !open_start with
            | Some (cls, start) when cls = s.cls ->
                open_start := None;
                acc := (cls, start, e.at, s.work, s.overhead, s.idle) :: !acc
            | _ -> ())
        | _ -> ())
    t;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Plain-text per-core timeline & breakdown report                    *)
(* ------------------------------------------------------------------ *)

(* One character per time bucket: the class holding the most cycles in
   the bucket ('W' work, 'o' overhead, '.' idle / nothing). *)
let timeline_strip (t : t) (core : int) ~(horizon : int) ~(width : int) :
    string =
  let w = Array.make width 0. and o = Array.make width 0. in
  let i = Array.make width 0. in
  let bucket_len = float_of_int (max 1 horizon) /. float_of_int width in
  let spread (start : int) (stop : int) (cycles : int) (dst : float array) =
    if stop > start && cycles > 0 then begin
      let density =
        float_of_int cycles /. float_of_int (stop - start)
      in
      let b0 = min (width - 1) (int_of_float (float_of_int start /. bucket_len))
      and b1 =
        min (width - 1) (int_of_float (float_of_int (stop - 1) /. bucket_len))
      in
      for b = b0 to b1 do
        let lo = Float.max (float_of_int start) (float_of_int b *. bucket_len)
        and hi =
          Float.min (float_of_int stop) (float_of_int (b + 1) *. bucket_len)
        in
        if hi > lo then dst.(b) <- dst.(b) +. (density *. (hi -. lo))
      done
    end
  in
  List.iter
    (fun (_, start, stop, sw, so, si) ->
      spread start stop sw w;
      spread start stop so o;
      spread start stop si i)
    (segments_of_core t core);
  String.init width (fun b ->
      if w.(b) = 0. && o.(b) = 0. then '.'
      else if w.(b) >= o.(b) then 'W'
      else 'o')

(** [report t] — a plain-text observability report: per-core cycle
    breakdown table, per-core timeline strips ('W' work-dominant, 'o'
    overhead-dominant, '.' idle), and the derived distributions. *)
let report ?(width = 64) (t : t) : string =
  let n = max 1 (procs t) in
  let hz = horizon t in
  let per = per_core_totals t in
  let fleet = totals t in
  let f1 = Stats.Table.fmt_float ~decimals:1 in
  let util (c : core_totals) =
    if hz = 0 then 0. else 100. *. float_of_int c.work /. float_of_int hz
  in
  let row c (ct : core_totals) =
    [
      Printf.sprintf "core %d" c;
      Stats.Table.fmt_int_grouped ct.work;
      Stats.Table.fmt_int_grouped ct.overhead;
      Stats.Table.fmt_int_grouped ct.idle;
      f1 (util ct);
    ]
  in
  let table =
    Stats.Table.make ~title:"Per-core cycle breakdown (traced)"
      ~header:[ "core"; "work"; "overhead"; "idle"; "util%" ]
      (List.init n (fun c -> row c per.(c))
      @ [
          [
            "total";
            Stats.Table.fmt_int_grouped fleet.work;
            Stats.Table.fmt_int_grouped fleet.overhead;
            Stats.Table.fmt_int_grouped fleet.idle;
            f1
              (if hz = 0 then 0.
               else
                 100. *. float_of_int fleet.work
                 /. float_of_int (n * hz));
          ];
        ])
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf "\n\nTimeline (";
  Buffer.add_string buf (Stats.Table.fmt_int_grouped hz);
  Buffer.add_string buf " cycles, W=work o=overhead .=idle):\n";
  for c = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  core %2d |%s|\n" c (timeline_strip t c ~horizon:hz ~width))
  done;
  let lat = List.map float_of_int (steal_latencies t) in
  let inter = List.map float_of_int (promotion_interarrivals t) in
  (* empty distributions (zero completed steals, zero beats) render as
     "-" instead of the nan a bare mean would produce *)
  let stat f xs = match xs with [] -> "-" | _ -> f1 (f xs) in
  Buffer.add_string buf
    (Printf.sprintf
       "\nbeats delivered=%d lost=%d | promotions=%d (inter-arrival mean %s \
        cycles) | steals=%d (latency mean %s max %s cycles)\n"
       (beats t) (beats_lost t) (promotions t)
       (stat Stats.mean inter)
       (steals t)
       (stat Stats.mean lat)
       (stat Stats.max_l lat));
  let nc = crashes t and nr = requeues t and nd = duplicate_finishes t in
  let nstall =
    count (fun e -> match e.kind with Core_stall _ -> true | _ -> false) t
  in
  if nc > 0 || nr > 0 || nd > 0 || nstall > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "DEGRADED: crashes=%d stalls=%d requeues=%d duplicate-finishes=%d\n"
         nc nstall nr nd);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                          *)
(* ------------------------------------------------------------------ *)

(** [to_chrome ~cycles_per_us t] maps the stream onto Chrome
    trace-event JSON objects: one thread per core, complete spans for
    segments, thread-scoped instants for the point events. *)
let to_chrome ?(cycles_per_us = Params.default.cycles_per_us) (t : t) :
    Stats.Chrome_trace.event list =
  let module C = Stats.Chrome_trace in
  let us cycles = float_of_int cycles /. float_of_int cycles_per_us in
  let n = max 1 (procs t) in
  let meta =
    C.process_name ~pid:0 "tpal-sim"
    :: List.init n (fun c ->
           C.thread_name ~pid:0 ~tid:c (Printf.sprintf "core %d" c))
  in
  let spans =
    List.concat
      (List.init n (fun c ->
           List.map
             (fun (cls, start, stop, w, o, i) ->
               C.complete ~cat:"segment"
                 ~args:
                   [ ("work", C.Int w); ("overhead", C.Int o);
                     ("idle", C.Int i) ]
                 ~name:(seg_name cls) ~pid:0 ~tid:c ~ts:(us start)
                 ~dur:(us (stop - start))
                 ())
             (segments_of_core t c)))
  in
  let instants = ref [] in
  iter
    (fun e ->
      let add ?(args = []) name cat =
        instants :=
          C.instant ~cat
            ~args:(("task", C.Int e.task) :: args)
            ~name ~pid:0 ~tid:e.core ~ts:(us e.at) ()
          :: !instants
      in
      match e.kind with
      | Seg_start _ | Seg_end _ -> ()
      | Steal_attempt { victim } ->
          add ~args:[ ("victim", C.Int victim) ] "steal-attempt" "steal"
      | Steal_success { victim } ->
          add ~args:[ ("victim", C.Int victim) ] "steal" "steal"
      | Promote_attempt -> add "promote-attempt" "promotion"
      | Promote_success { child } ->
          add ~args:[ ("child", C.Int child) ] "promote" "promotion"
      | Beat_delivered { arrived; handler_cost } ->
          add
            ~args:
              [ ("arrived", C.Int arrived);
                ("handler_cost", C.Int handler_cost) ]
            "beat" "heartbeat"
      | Beat_lost -> add "beat-lost" "heartbeat"
      | Join_block -> add "join-block" "join"
      | Join_resume { waiter } ->
          add ~args:[ ("waiter", C.Int waiter) ] "join-resume" "join"
      | Park -> add "park" "scheduler"
      | Unpark -> add "unpark" "scheduler"
      | Core_crash -> add "crash" "fault"
      | Core_stall { until } ->
          add ~args:[ ("until", C.Int until) ] "stall" "fault"
      | Core_slow { factor } ->
          add ~args:[ ("factor", C.Float factor) ] "slow" "fault"
      | Core_recover -> add "recover" "fault"
      | Lease_expired -> add "lease-expired" "recovery"
      | Task_requeue { from_ } ->
          add ~args:[ ("from", C.Int from_) ] "requeue" "recovery"
      | Duplicate_finish -> add "duplicate-finish" "recovery")
    t;
  meta @ spans @ List.rev !instants

(** Chrome trace JSON for the whole recording. *)
let to_chrome_string ?cycles_per_us (t : t) : string =
  Stats.Chrome_trace.to_string (to_chrome ?cycles_per_us t)
