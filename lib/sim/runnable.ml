(** Executable task state over {!Par_ir} programs, shared by the three
    scheduling modes:

    - {!mode.Serial}: run everything in place; no decomposition.
    - {!mode.Cilk}: {e eager initial decomposition} — every [Spawn2]
      immediately creates a task (paying [tau_cilk]), and every loop is
      lazily binary-split down to Cilk Plus's [8·P]-chunk grain
      (capped at 2048 iterations), each split creating a task.
    - {!mode.Tpal}: {e serial by default, recurrent decomposition} —
      nothing splits on its own; the engine calls {!try_promote} on
      heartbeats, which splits the {e outermost} promotable construct
      (half the remaining iterations of the outermost loop, or the
      oldest advertised [Spawn2] branch), paying [tau_promote].

    A task's pending computation is a stack of frames, innermost first;
    this mirrors the TPAL call stack with its promotion-ready marks.

    Fork-join dependencies are tracked precisely: every frame that has
    given work away carries a {!sync} counting outstanding children,
    and a task reaching such a frame with children outstanding
    {e blocks} (the join) until the last child signals it — so phase
    barriers (e.g. floyd-warshall's sequential [k] phases) and nested
    joins have faithful timing. *)

type mode = Serial | Cilk | Tpal

let mode_name = function Serial -> "serial" | Cilk -> "cilk" | Tpal -> "tpal"

(** Join bookkeeping for a frame that spawned or promoted children. *)
type sync = { mutable pending : int; mutable waiter : task option }

and frame =
  | F_leaf of { mutable remaining : int }
  | F_for of {
      mutable i : int;
      mutable hi : int;
      cost : Par_ir.cost;
      grain : int;  (** Cilk split grain; ignored by Serial/Tpal *)
      mutable sync : sync option;
    }
  | F_nest of {
      mutable i : int;
      mutable hi : int;
      body : int -> Par_ir.t;
      grain : int;
      mutable sync : sync option;
    }
  | F_seq of { mutable rest : Par_ir.t list }
  | F_spawn of {
      mutable second : (unit -> Par_ir.t) option;
          (** the advertised (promotable) second branch; [None] once
              taken inline or given to a child task *)
      mutable sync : sync option;
    }

and task = {
  id : int;  (** stable identity, for tracing and diagnostics *)
  mutable stack : frame list;
  mutable on_finish : sync option;
      (** the parent frame's join to signal when this task completes *)
  completed : bool ref;
      (** one-shot completion latch {e shared by every incarnation} of
          the same logical task: after a crash or stall the supervisor
          may re-execute a task from its last checkpoint while a
          revived core races the original copy to completion — the
          first incarnation to finish flips the latch, and a duplicate
          completion is a no-op instead of a double-join *)
}

(* Task ids are allocated from a global counter so every task created
   during a run — eager Cilk spawns, heartbeat promotions, the root —
   is distinguishable in traces.  [Engine.run] resets the counter per
   run, keeping ids (and hence traces) deterministic. *)
let id_counter = ref 0

let fresh_id () : int =
  let id = !id_counter in
  incr id_counter;
  id

let reset_ids () : unit = id_counter := 0

type cfg = {
  mode : mode;
  params : Params.t;
  promote_innermost : bool;
      (** ablation switch: promote the innermost (most recent)
          promotable construct instead of the outermost — violating
          the policy heartbeat scheduling's bounds require (§2.3) *)
  dilation_pct : int;
      (** dilation of useful work, percent (100 = none), modelling the
          scheduler-specific cost of the loop body itself: reducer
          accesses and blocked optimisations for Cilk (Figure 6),
          nop padding / auxiliary accumulators for TPAL (Figure 8).
          The Serial baseline always runs undilated. *)
}

let make_cfg ?(dilation_pct = 100) ?(promote_innermost = false) (mode : mode)
    (params : Params.t) : cfg =
  { mode; params; promote_innermost; dilation_pct }

(* Cilk Plus's documented cilk_for grain: min(2048, max(1, n / (8P))). *)
let cilk_grain (cfg : cfg) (n : int) : int =
  min 2048 (max 1 (n / (8 * max 1 cfg.params.procs)))

let scale_cost (cfg : cfg) (c : int) : int =
  if cfg.mode <> Serial && cfg.dilation_pct <> 100 then
    max 1 (c * cfg.dilation_pct / 100)
  else max 1 c

(** The result of running a task for (about) a budget of cycles. *)
type outcome = {
  consumed : int;  (** total cycles spent (work + overhead) *)
  work_done : int;  (** dilated (as-executed) work cycles *)
  raw_done : int;
      (** undilated work cycles — the algorithm's memory traffic, which
          the engine's bandwidth ceiling binds (dilation is extra
          compute, not extra traffic) *)
  overhead_done : int;
  finished : bool;
  blocked : sync option;
      (** the task reached a join with children outstanding; it must
          be parked until the sync's last child signals it *)
  spawned : task list;  (** tasks created by Cilk decomposition *)
}

(* Obtain (creating if necessary) the sync of a frame about to give
   work to a child. *)
let frame_sync (f : frame) : sync =
  let get s set =
    match s with
    | Some s -> s
    | None ->
        let s = { pending = 0; waiter = None } in
        set (Some s);
        s
  in
  match f with
  | F_for r -> get r.sync (fun s -> r.sync <- s)
  | F_nest r -> get r.sync (fun s -> r.sync <- s)
  | F_spawn r -> get r.sync (fun s -> r.sync <- s)
  | F_leaf _ | F_seq _ -> invalid_arg "frame_sync: frame cannot fork"

let child_of (f : frame) (stack : frame list) : task =
  let s = frame_sync f in
  s.pending <- s.pending + 1;
  { id = fresh_id (); stack; on_finish = Some s; completed = ref false }

(* Push the frames for an IR node on [task], charging mode-specific
   costs via [charge] and emitting eagerly spawned tasks via [emit]. *)
let rec expand (cfg : cfg) (task : task) (emit : task -> unit)
    (charge : int -> unit) (t : Par_ir.t) : unit =
  match t with
  | Par_ir.Leaf c ->
      task.stack <- F_leaf { remaining = scale_cost cfg c } :: task.stack
  | Par_ir.Seq l -> task.stack <- F_seq { rest = l } :: task.stack
  | Par_ir.For { n; cost } ->
      if n > 0 then
        task.stack <-
          F_for { i = 0; hi = n; cost; grain = cilk_grain cfg n; sync = None }
          :: task.stack
  | Par_ir.For_nested { n; body } ->
      if n > 0 then
        task.stack <-
          F_nest { i = 0; hi = n; body; grain = cilk_grain cfg n; sync = None }
          :: task.stack
  | Par_ir.Spawn2 (a, b) -> (
      match cfg.mode with
      | Cilk ->
          (* eager decomposition: the second branch becomes a task
             immediately (forced one level only — its own spawns unfold
             when it runs); the parent will join at this frame *)
          charge (cfg.params.tau_cilk + cfg.params.join_cost);
          let f = F_spawn { second = None; sync = None } in
          task.stack <- f :: task.stack;
          emit (child_of f [ F_seq { rest = [ b () ] } ]);
          expand cfg task emit charge (a ())
      | Serial ->
          task.stack <- F_spawn { second = Some b; sync = None } :: task.stack;
          expand cfg task emit charge (a ())
      | Tpal ->
          (* serial by default: advertise the second branch with a
             promotion-ready mark (push/pop cost, §4.4) *)
          charge cfg.params.mark_cost;
          task.stack <- F_spawn { second = Some b; sync = None } :: task.stack;
          expand cfg task emit charge (a ()))

(** [of_ir cfg ir] is a fresh root task poised to run [ir]; expansion
    is deferred to the first {!run_for} so its costs are accounted. *)
let of_ir (_cfg : cfg) (ir : Par_ir.t) : task =
  { id = fresh_id ();
    stack = [ F_seq { rest = [ ir ] } ];
    on_finish = None;
    completed = ref false }

(** [snapshot task] — a lease checkpoint: a deep copy of the task's
    frame stack whose mutable per-frame state (loop indices, leaf
    budgets, advertised branches) is private to the copy, while the
    fork-join plumbing stays {e shared}: every [sync] field aliases the
    original record (children spawned by either incarnation signal the
    same join), [on_finish] aliases the parent's sync, and [completed]
    is the same latch, so the logical task completes exactly once no
    matter how many incarnations run.  The copy keeps the original's
    [id] — it is the same logical task, and reusing the id keeps task
    numbering identical between faulted and fault-free runs. *)
let snapshot (task : task) : task =
  let copy_frame = function
    | F_leaf f -> F_leaf { remaining = f.remaining }
    | F_for f ->
        F_for { i = f.i; hi = f.hi; cost = f.cost; grain = f.grain;
                sync = f.sync }
    | F_nest f ->
        F_nest { i = f.i; hi = f.hi; body = f.body; grain = f.grain;
                 sync = f.sync }
    | F_seq f -> F_seq { rest = f.rest }
    | F_spawn f -> F_spawn { second = f.second; sync = f.sync }
  in
  { id = task.id;
    stack = List.map copy_frame task.stack;
    on_finish = task.on_finish;
    completed = task.completed }

let is_finished (task : task) : bool = task.stack = []

(* A frame is exhausted but may still have outstanding children. *)
let join_state (s : sync option) : [ `Free | `Must_wait of sync ] =
  match s with
  | Some s when s.pending > 0 -> `Must_wait s
  | Some _ | None -> `Free

(** [run_for cfg task ~budget] advances [task] by roughly [budget]
    cycles (it may overshoot by one action).  It stops early when it
    spawns tasks (they must become stealable immediately) or blocks at
    a join.  Always makes progress when the task is runnable. *)
let run_for (cfg : cfg) (task : task) ~(budget : int) : outcome =
  let work_done = ref 0 in
  let raw_done = ref 0 in
  let overhead_done = ref 0 in
  let unscale c = c * 100 / cfg.dilation_pct in
  let spawned = ref [] in
  let blocked = ref None in
  let emit t = spawned := t :: !spawned in
  let charge c = overhead_done := !overhead_done + c in
  let consumed () = !work_done + !overhead_done in
  let continue = ref true in
  while
    !continue && consumed () < budget && !spawned = [] && !blocked = None
  do
    match task.stack with
    | [] -> continue := false
    | F_leaf f :: rest ->
        let take = min f.remaining (max 1 (budget - consumed ())) in
        f.remaining <- f.remaining - take;
        work_done := !work_done + take;
        raw_done := !raw_done + (if cfg.mode = Serial then take else unscale take);
        if f.remaining = 0 then task.stack <- rest
    | F_seq f :: rest -> (
        match f.rest with
        | [] -> task.stack <- rest
        | t :: more ->
            f.rest <- more;
            expand cfg task emit charge t)
    | (F_for f as fr) :: rest ->
        if f.i >= f.hi then begin
          match join_state f.sync with
          | `Must_wait s -> blocked := Some s
          | `Free -> task.stack <- rest
        end
        else if cfg.mode = Cilk && f.hi - f.i > f.grain then begin
          (* lazy binary splitting: the upper half becomes a task *)
          let mid = f.i + ((f.hi - f.i + 1) / 2) in
          charge cfg.params.tau_cilk;
          emit
            (child_of fr
               [ F_for
                   { i = mid; hi = f.hi; cost = f.cost; grain = f.grain;
                     sync = None } ]);
          f.hi <- mid
        end
        else begin
          match f.cost with
          | Par_ir.Const k ->
              let raw = max 1 k in
              let k = scale_cost cfg k in
              let want = max 1 ((budget - consumed () + k - 1) / k) in
              let iters = min (f.hi - f.i) want in
              f.i <- f.i + iters;
              work_done := !work_done + (iters * k);
              raw_done := !raw_done + (iters * raw)
          | Par_ir.Fn cost_fn ->
              let raw = max 1 (cost_fn f.i) in
              let c = scale_cost cfg (cost_fn f.i) in
              f.i <- f.i + 1;
              work_done := !work_done + c;
              raw_done := !raw_done + raw
        end
    | (F_nest f as fr) :: rest ->
        if f.i >= f.hi then begin
          match join_state f.sync with
          | `Must_wait s -> blocked := Some s
          | `Free -> task.stack <- rest
        end
        else if cfg.mode = Cilk && f.hi - f.i > f.grain then begin
          let mid = f.i + ((f.hi - f.i + 1) / 2) in
          charge cfg.params.tau_cilk;
          emit
            (child_of fr
               [ F_nest
                   { i = mid; hi = f.hi; body = f.body; grain = f.grain;
                     sync = None } ]);
          f.hi <- mid
        end
        else begin
          let body = f.body f.i in
          f.i <- f.i + 1;
          expand cfg task emit charge body
        end
    | F_spawn f :: rest -> (
        (* reached only after the first branch finished *)
        match f.second with
        | Some b ->
            f.second <- None;
            expand cfg task emit charge (b ())
        | None -> (
            match join_state f.sync with
            | `Must_wait s -> blocked := Some s
            | `Free -> task.stack <- rest))
  done;
  {
    consumed = consumed ();
    work_done = !work_done;
    raw_done = !raw_done;
    overhead_done = !overhead_done;
    finished = is_finished task;
    blocked = !blocked;
    spawned = List.rev !spawned;
  }

(** [try_promote cfg task] implements TPAL's heartbeat promotion: find
    the {e outermost} promotable construct on the task's stack and
    split it once.  Returns the newly created task, or [None] when the
    task holds no latent parallelism (the handler aborts). *)
let try_promote (cfg : cfg) (task : task) : task option =
  (* Scan from the bottom of the stack (outermost context first) —
     heartbeat scheduling's outermost-first policy — unless the
     innermost-first ablation is on. *)
  let rec scan (frames : frame list) : task option =
    match frames with
    | [] -> None
    | f :: above -> (
        match f with
        | F_for r when r.hi - r.i >= 2 ->
            let mid = r.i + ((r.hi - r.i + 1) / 2) in
            let child =
              child_of f
                [ F_for
                    { i = mid; hi = r.hi; cost = r.cost; grain = r.grain;
                      sync = None } ]
            in
            r.hi <- mid;
            Some child
        | F_nest r when r.hi - r.i >= 2 ->
            let mid = r.i + ((r.hi - r.i + 1) / 2) in
            let child =
              child_of f
                [ F_nest
                    { i = mid; hi = r.hi; body = r.body; grain = r.grain;
                      sync = None } ]
            in
            r.hi <- mid;
            Some child
        | F_spawn r when r.second <> None ->
            let b = Option.get r.second in
            r.second <- None;
            Some (child_of f [ F_seq { rest = [ b () ] } ])
        | F_leaf _ | F_for _ | F_nest _ | F_seq _ | F_spawn _ -> scan above)
  in
  scan
    (if cfg.promote_innermost then task.stack else List.rev task.stack)

(** Does the task hold any promotable parallelism?  (Diagnostics and
    tests; promotion itself uses {!try_promote}.) *)
let has_latent (task : task) : bool =
  List.exists
    (function
      | F_for r -> r.hi - r.i >= 2
      | F_nest r -> r.hi - r.i >= 2
      | F_spawn r -> r.second <> None
      | F_leaf _ | F_seq _ -> false)
    task.stack
