(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic choice in the simulator — steal victims, signal
    jitter, fault injection, workload and fuzz-program generation —
    draws from an explicitly seeded generator so that simulated
    experiments are exactly reproducible run-to-run (a property the
    test suite relies on).

    Streams are {e splittable} in the SplittableRandom sense: each
    stream carries its own odd increment (gamma), and {!split} derives
    a child whose (state, gamma) pair is drawn — and mixed — from the
    parent.  Consumers that interleave draws from several concerns
    (steal-victim sampling, beat jitter, fault injection, program
    generation) give each concern its own split stream, so adding
    draws to one concern cannot perturb another. *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~(seed : int) : t =
  { state = Int64.of_int seed; gamma = golden_gamma }

(* Stafford variant-13 mixer — the splitmix64 output function. *)
let mix64 (z : int64) : int64 =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let popcount64 (x : int64) : int =
  let n = ref 0 in
  for i = 0 to 63 do
    if Int64.logand (Int64.shift_right_logical x i) 1L = 1L then incr n
  done;
  !n

(* Murmur3-style mixer with different constants than [mix64] (the
   mixGamma of SplittableRandom) — child gammas must come from a
   different function family than the outputs. *)
let mix_gamma (z : int64) : int64 =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  let z = Int64.logor z 1L (* gammas must be odd *) in
  (* avoid gammas with too-regular bit structure (few 01/10 pairs) *)
  let pairs = Int64.logxor z (Int64.shift_right_logical z 1) in
  if popcount64 pairs < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let next_int64 (t : t) : int64 =
  t.state <- Int64.add t.state t.gamma;
  mix64 t.state

(** Independent stream derived from [t], advancing [t] by two draws.
    The child's state and gamma are both freshly mixed, so parent and
    child sequences are statistically independent — in particular the
    child does {e not} replay the parent's future outputs (the defect
    of the previous implementation, which derived the child's state
    from the parent's next state with the same increment). *)
let split (t : t) : t =
  t.state <- Int64.add t.state t.gamma;
  let state = mix64 t.state in
  t.state <- Int64.add t.state t.gamma;
  let gamma = mix_gamma t.state in
  { state; gamma }

(** Uniform integer in [0, bound) for [bound > 0]. *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* mask to the native 62-bit non-negative range before reducing *)
  let x = Int64.to_int (next_int64 t) land max_int in
  x mod bound

(** Uniform float in [0, 1). *)
let float (t : t) : float =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x /. 9007199254740992. (* 2^53 *)

(** Uniform float in [0, hi). *)
let float_range (t : t) (hi : float) : float = float t *. hi

let bool (t : t) : bool = Int64.logand (next_int64 t) 1L = 1L

(** Exponentially distributed float with the given mean. *)
let exponential (t : t) ~(mean : float) : float =
  let u = Float.max 1e-12 (float t) in
  -.mean *. log u

(** Zipf-like draw over [1..n] with exponent [s]: probability ∝ 1/kˢ.
    Used by the power-law sparse-matrix generator. *)
let zipf (t : t) ~(n : int) ~(s : float) : int =
  (* Inverse-CDF on a precomputation-free approximation: rejection via
     the standard Zipf rejection-inversion is overkill here; a simple
     inverse transform on the harmonic CDF is adequate for workload
     generation and keeps the generator allocation-free. *)
  let u = float t in
  (* approximate inverse of the generalized harmonic CDF *)
  if s = 1.0 then
    let hn = log (float_of_int n +. 1.) in
    let k = exp (u *. hn) in
    max 1 (min n (int_of_float k))
  else
    let p = 1. -. s in
    let hn = ((float_of_int n ** p) -. 1.) /. p in
    let k = ((u *. hn *. p) +. 1.) ** (1. /. p) in
    max 1 (min n (int_of_float k))
