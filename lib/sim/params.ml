(** Machine and runtime cost parameters of the simulated testbed.

    The defaults model the paper's test bench: a 2.7 GHz 16-core AMD
    EPYC 7281 running Linux 5.8 (one core reserved for the ping thread
    or left idle; up to [procs = 15] workers).  All times are in CPU
    {e cycles} of virtual time.

    Calibration sources (paper section / figure in brackets):
    - ♥ = 100 µs default and 20 µs stress value [§4.2, §4.4]
      → 270_000 and 54_000 cycles at 2.7 GHz.
    - Cilk spawn cost: Cilk Plus's clone-optimised spawn plus reducer
      access; tens to ~hundred cycles per spawn, which combined with
      its [8·P]-chunk loop decomposition reproduces the 1-core
      overheads of Figure 6 (up to 16× on fine-grained inner loops).
    - TPAL promotion cost: join-record allocation + task reification +
      deque push [§4.4 "Promotion overhead is low", ≲11 % at 100 µs].
    - Linux signal delivery: the ping thread sends signals one worker
      at a time; per-signal send ~3 µs and handler ~1 µs of combined
      software overhead reproduce both the interrupt-only overheads of
      Figure 9 and the saturation of the achieved heartbeat rate of
      Figure 10 (max ≈ 280 K signals/s fleet-wide, vs the 750 K/s
      target at 20 µs).
    - Nautilus Nemo IPIs: "within a few thousand cycles, most of which
      is interrupt handling on the receive side" [§5.1]. *)

type t = {
  procs : int;  (** worker cores P (the paper uses 15 of 16) *)
  cycles_per_us : int;  (** clock: 2700 cycles per µs at 2.7 GHz *)
  heart_us : float;  (** ♥ in microseconds *)
  (* scheduling costs *)
  tau_cilk : int;  (** per-spawn cost of the Cilk baseline, cycles *)
  tau_promote : int;  (** TPAL promotion (jralloc + fork + push), cycles *)
  mark_cost : int;
      (** TPAL per-call-site cost of pushing/popping a promotion-ready
          stack mark (§4.4: visible on [knapsack], 4–6 % on mergesort) *)
  join_cost : int;  (** join-resolution cost paid at task completion *)
  steal_cost : int;  (** successful steal, cycles *)
  pop_cost : int;  (** popping one's own deque, cycles *)
  steal_retry : int;  (** idle back-off between failed steal attempts *)
  (* interrupt mechanism costs *)
  signal_send : int;  (** ping thread: per-worker signal send, cycles *)
  signal_handle : int;  (** Linux: signal handler entry/exit, cycles *)
  papi_handle : int;  (** Linux PAPI: counter-interrupt handler, cycles *)
  ipi_latency : int;  (** Nautilus: IPI delivery latency, cycles *)
  ipi_handle : int;  (** Nautilus: receive-side handler, cycles *)
  signal_jitter : int;  (** Linux: max random delivery jitter, cycles *)
  (* crash-fault recovery (active only when a fault schedule is set) *)
  lease_beats : int;
      (** task-lease time-to-live in heartbeat periods; a core that
          has not renewed the lease on its in-flight task for this
          many beats (plus a segment-length allowance) is presumed
          dead and the task is re-executed elsewhere *)
  sweep_beats : int;
      (** supervisor sweep period in heartbeat periods: how often
          expired leases are collected and dead cores' deques drained *)
  seed : int;  (** PRNG seed for steals/jitter *)
}

let default : t =
  {
    procs = 15;
    cycles_per_us = 2_700;
    heart_us = 100.;
    tau_cilk = 55;
    tau_promote = 900;
    mark_cost = 52;
    join_cost = 45;
    steal_cost = 700;
    pop_cost = 20;
    steal_retry = 300;
    signal_send = 8_100 (* ≈3 µs: syscall + kernel signal dispatch *);
    signal_handle = 2_700 (* ≈1 µs: frame setup, ucontext inspection *);
    papi_handle = 8_100 (* ≈3 µs: perf-counter interrupt path *);
    ipi_latency = 1_500;
    ipi_handle = 900;
    signal_jitter = 27_000 (* up to 10 µs of OS-induced delay *);
    lease_beats = 3;
    sweep_beats = 1;
    seed = 0x7541;
  }

(** ♥ in cycles. *)
let heart_cycles (p : t) : int =
  int_of_float (p.heart_us *. float_of_int p.cycles_per_us)

(** Target fleet-wide heartbeat rate, beats per second across all
    [procs] workers (the horizontal line of Figure 10). *)
let target_rate (p : t) : float = float_of_int p.procs /. (p.heart_us *. 1e-6)

let with_heart_us (heart_us : float) (p : t) : t = { p with heart_us }
let with_procs (procs : int) (p : t) : t = { p with procs }

(** [us_of_cycles p c] converts virtual cycles to microseconds. *)
let us_of_cycles (p : t) (c : int) : float =
  float_of_int c /. float_of_int p.cycles_per_us

(** [seconds_of_cycles p c] converts virtual cycles to seconds. *)
let seconds_of_cycles (p : t) (c : int) : float = us_of_cycles p c *. 1e-6
