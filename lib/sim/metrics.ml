(** Aggregate measurements of one simulated execution — the quantities
    the paper's figures report. *)

type t = {
  makespan : int;  (** virtual cycles from start to last task completion *)
  work : int;  (** useful (algorithm) cycles executed, summed over cores *)
  overhead : int;
      (** scheduling cycles: spawns, promotions, marks, joins, steals,
          interrupt handlers *)
  idle : int;  (** cycles cores spent without work *)
  tasks_created : int;  (** tasks spawned (Cilk) or promoted (TPAL) —
                            the y-axis of Figure 15a *)
  promotions : int;  (** successful heartbeat promotions *)
  promotion_attempts : int;  (** handler entries (incl. aborted attempts) *)
  steals : int;  (** successful steals *)
  beats_delivered : int;  (** heartbeat interrupts delivered to cores *)
  beats_emitted : int;
      (** beats the interrupt mechanism generated; at most one more
          than [beats_delivered] (a delivery generated just before the
          run ended may never fire) *)
  beats_target : int;  (** nominal beats for the elapsed makespan *)
  beats_lost : int;  (** Linux signals lost/coalesced *)
}

let zero =
  {
    makespan = 0;
    work = 0;
    overhead = 0;
    idle = 0;
    tasks_created = 0;
    promotions = 0;
    promotion_attempts = 0;
    steals = 0;
    beats_delivered = 0;
    beats_emitted = 0;
    beats_target = 0;
    beats_lost = 0;
  }

(** Fraction of total core-time spent on useful work — Figure 15b. *)
let utilization ~(procs : int) (m : t) : float =
  if m.makespan = 0 then 0.
  else float_of_int m.work /. (float_of_int procs *. float_of_int m.makespan)

(** Achieved fleet-wide heartbeat rate in beats per second. *)
let achieved_rate (params : Params.t) (m : t) : float =
  let secs = Params.seconds_of_cycles params m.makespan in
  if secs <= 0. then 0. else float_of_int m.beats_delivered /. secs

let pp ppf (m : t) =
  Fmt.pf ppf
    "makespan=%d work=%d overhead=%d idle=%d tasks=%d promotions=%d \
     steals=%d beats=%d/%d"
    m.makespan m.work m.overhead m.idle m.tasks_created m.promotions m.steals
    m.beats_delivered m.beats_target
