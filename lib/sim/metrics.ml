(** Aggregate measurements of one simulated execution — the quantities
    the paper's figures report. *)

type t = {
  makespan : int;  (** virtual cycles from start to last task completion *)
  work : int;  (** useful (algorithm) cycles executed, summed over cores *)
  overhead : int;
      (** scheduling cycles: spawns, promotions, marks, joins, steals,
          interrupt handlers *)
  idle : int;  (** cycles cores spent without work *)
  tasks_created : int;  (** tasks spawned (Cilk) or promoted (TPAL) —
                            the y-axis of Figure 15a *)
  promotions : int;  (** successful heartbeat promotions *)
  promotion_attempts : int;  (** handler entries (incl. aborted attempts) *)
  steals : int;  (** successful steals *)
  beats_delivered : int;  (** heartbeat interrupts delivered to cores *)
  beats_emitted : int;
      (** beats the interrupt mechanism generated; at most one more
          than [beats_delivered] (a delivery generated just before the
          run ended may never fire) *)
  beats_target : int;  (** nominal beats for the elapsed makespan *)
  beats_lost : int;  (** Linux signals lost/coalesced *)
  (* crash-fault recovery (all zero when no fault schedule is set) *)
  cores_lost : int;  (** cores permanently crashed during the run *)
  leases_expired : int;
      (** task leases the supervisor found expired (dead, stalled or
          suspiciously slow cores) *)
  tasks_reexecuted : int;
      (** tasks requeued for re-execution from their last checkpoint
          after a lease expiry *)
  recovery_cycles : int;
      (** cycles between a victim core's last sign of progress and the
          supervisor requeueing its task, summed over recoveries — the
          detection latency of the lease protocol *)
}

let zero =
  {
    makespan = 0;
    work = 0;
    overhead = 0;
    idle = 0;
    tasks_created = 0;
    promotions = 0;
    promotion_attempts = 0;
    steals = 0;
    beats_delivered = 0;
    beats_emitted = 0;
    beats_target = 0;
    beats_lost = 0;
    cores_lost = 0;
    leases_expired = 0;
    tasks_reexecuted = 0;
    recovery_cycles = 0;
  }

(** Did the run lose cores or re-execute tasks?  Distinguishes a
    degraded-mode run at a glance. *)
let degraded (m : t) : bool =
  m.cores_lost > 0 || m.leases_expired > 0 || m.tasks_reexecuted > 0

(** Worker cores still alive at the end of the run (never reported
    below 1: the recovery invariant requires one survivor). *)
let surviving ~(procs : int) (m : t) : int = max 1 (procs - m.cores_lost)

(** Fraction of total core-time spent on useful work — Figure 15b.
    Guarded against both a zero makespan and a non-positive core
    count (a degenerate [procs − cores_lost] a caller might pass). *)
let utilization ~(procs : int) (m : t) : float =
  if m.makespan = 0 || procs <= 0 then 0.
  else float_of_int m.work /. (float_of_int procs *. float_of_int m.makespan)

(** Achieved fleet-wide heartbeat rate in beats per second. *)
let achieved_rate (params : Params.t) (m : t) : float =
  let secs = Params.seconds_of_cycles params m.makespan in
  if secs <= 0. then 0. else float_of_int m.beats_delivered /. secs

(** Per-core average of [total] over the cores that survived the run —
    the division the [cores_lost] path makes hazardous.  Returns 0
    rather than dividing by zero on an empty fleet. *)
let per_surviving_core ~(procs : int) (m : t) (total : int) : float =
  let s = surviving ~procs m in
  if s <= 0 then 0. else float_of_int total /. float_of_int s

(** Mean recovery latency per re-executed task; 0 when nothing was
    re-executed (the divide-by-zero guard for fault-free runs). *)
let mean_recovery_cycles (m : t) : float =
  if m.tasks_reexecuted = 0 then 0.
  else float_of_int m.recovery_cycles /. float_of_int m.tasks_reexecuted

let pp ppf (m : t) =
  Fmt.pf ppf
    "makespan=%d work=%d overhead=%d idle=%d tasks=%d promotions=%d \
     steals=%d beats=%d/%d"
    m.makespan m.work m.overhead m.idle m.tasks_created m.promotions m.steals
    m.beats_delivered m.beats_target;
  if degraded m then
    Fmt.pf ppf " cores_lost=%d leases_expired=%d reexecuted=%d recovery=%d"
      m.cores_lost m.leases_expired m.tasks_reexecuted m.recovery_cycles
