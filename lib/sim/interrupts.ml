(** Heartbeat interrupt delivery mechanisms (§3.4, §5).

    Each mechanism turns the nominal beat schedule (every ♥ µs on every
    worker) into a stream of {e deliveries} — (time, core, handler
    cost) triples — reproducing the characteristic behaviour the paper
    measures:

    - {!constructor:Ping_thread} (Linux): a dedicated thread sends
      per-worker signals {e sequentially}.  Each send occupies the ping
      thread for [signal_send] cycles, so one sweep over P workers
      takes [P · signal_send]; when that exceeds ♥ the next sweep
      starts late and the achieved rate saturates well below target
      (Figure 10, 20 µs: 83–281 K beats/s of a 750 K target).
      Deliveries also suffer random jitter and, on memory-intensive
      workloads, outright losses — signals arriving while the target
      sits in uninterruptible kernel paths get coalesced; the paper
      notes Linux "largely misses its target heartbeat rate" even at
      100 µs.
    - {!constructor:Papi} (Linux): per-core performance-counter
      interrupts; no sweep serialisation, but a much costlier handler
      path ("always incurs much higher overheads", §4.4).
    - {!constructor:Nautilus_ipi}: a local-APIC timer on core 0
      broadcasts Nemo IPIs; delivery within a few thousand cycles,
      negligible jitter, no losses — Nautilus "practically always
      achieves the heartbeat rate" (§5.2).
    - {!constructor:Off}: no heartbeats (the sequential-baseline and
      Figure 8 configurations). *)

type mech = Off | Ping_thread | Papi | Nautilus_ipi

let mech_name = function
  | Off -> "off"
  | Ping_thread -> "INT-PingThread"
  | Papi -> "INT-Papi"
  | Nautilus_ipi -> "Nautilus-IPI"

type delivery = { at : int; core : int; handler_cost : int }

(** Crash-fault events against individual cores — the hard failure
    modes the benign beat faults below cannot express.  Each event
    names a victim core and the virtual cycle at which it strikes;
    the engine applies it at the core's next promotion-ready point
    (segment boundary), mirroring how beats take effect under
    rollforward.

    - [Crash]: the core halts permanently.  Its deque is drained into
      the survivors by the supervisor sweep and its in-flight task is
      re-executed from its last lease checkpoint.
    - [Stall n]: the core freezes for [n] cycles, then revives and
      {e continues} its in-flight task — racing any re-execution the
      supervisor started in the meantime (the idempotent-join case).
    - [Slow f]: from the fault time on, the core retires cycles [f]×
      slower (wall-clock dilation of its run segments). *)
type core_fault_kind = Crash | Stall of int | Slow of float

type core_fault = { victim : int; at : int; kind : core_fault_kind }

let pp_core_fault ppf (f : core_fault) =
  match f.kind with
  | Crash -> Fmt.pf ppf "core %d: crash at %d" f.victim f.at
  | Stall n -> Fmt.pf ppf "core %d: stall at %d for %d" f.victim f.at n
  | Slow x -> Fmt.pf ppf "core %d: slow at %d factor %g" f.victim f.at x

(** Fault-injection knobs for torture testing (differential fuzzing):
    beats may be dropped, duplicated, or arbitrarily delayed beyond the
    mechanism's native jitter, steal probes may spuriously fail
    ([steal_fail] is consumed by the engine, not here), and whole cores
    may crash, stall or slow down ([schedule], also consumed by the
    engine).  Heartbeat promotion is a pure performance mechanism, so
    under any fault schedule results must stay semantically identical —
    only timing and metrics may drift.  All fault draws come from a
    dedicated split stream so enabling faults never perturbs the
    mechanism's native loss/jitter sequences. *)
type faults = {
  drop : float;  (** extra probability a beat is dropped, any mechanism *)
  dup : float;  (** probability a delivered beat is delivered twice *)
  fault_jitter : int;  (** extra uniform delay in cycles added per beat *)
  steal_fail : float;  (** probability a steal probe spuriously misses *)
  schedule : core_fault list;
      (** crash/stall/slow events; [[]] = no core faults, and the
          engine's whole recovery layer stays off (pay-for-use) *)
}

let no_faults =
  { drop = 0.; dup = 0.; fault_jitter = 0; steal_fail = 0.; schedule = [] }

let faults_active (f : faults) : bool =
  f.drop > 0. || f.dup > 0. || f.fault_jitter > 0 || f.steal_fail > 0.
  || f.schedule <> []

(** [random_schedule ~seed ~procs ~horizon] draws a crash/stall/slow
    schedule for a [procs]-core run expected to span about [horizon]
    cycles.  At least one core always survives every drawn schedule
    (crashes hit at most [procs − 1] distinct victims), so recovery can
    always make progress.  Draws come from a dedicated split stream
    derived from [seed] alone — generating a schedule never perturbs
    any other randomized choice. *)
let random_schedule ~(seed : int) ~(procs : int) ~(horizon : int) :
    core_fault list =
  if procs <= 1 then []
  else begin
    let rng = Prng.split (Prng.create ~seed:(seed lxor 0xC4A5)) in
    let horizon = max 1 horizon in
    let n_events = 1 + Prng.int rng (max 1 (procs / 2)) in
    let crashed = Array.make procs false in
    let crashes = ref 0 in
    let rec draw (k : int) (acc : core_fault list) : core_fault list =
      if k = 0 then List.rev acc
      else begin
        let victim = Prng.int rng procs in
        let at = Prng.int rng horizon in
        let kind =
          match Prng.int rng 3 with
          | 0 when !crashes < procs - 1 && not crashed.(victim) ->
              crashed.(victim) <- true;
              incr crashes;
              Crash
          | 1 -> Stall (1 + Prng.int rng horizon)
          | _ -> Slow (1.5 +. Prng.float_range rng 6.5)
        in
        draw (k - 1) ({ victim; at; kind } :: acc)
      end
    in
    draw n_events []
  end

type t = {
  params : Params.t;
  mech : mech;
  heart : int;  (** ♥ in cycles *)
  loss_prob : float;
      (** probability a Linux signal is lost/coalesced; derived from
          the workload's memory intensity *)
  rng : Prng.t;
  (* ping-thread sweep state *)
  mutable sweep_start : int;  (** when the current sweep began *)
  mutable sweep_pos : int;  (** next worker in the current sweep *)
  (* per-core nominal schedules (Papi, Nautilus) *)
  mutable per_core_next : int array;
  (* fault injection *)
  faults : faults;
  fault_rng : Prng.t;
  mutable pending_dup : delivery option;
  (* accounting *)
  mutable delivered : int;
  mutable lost : int;
  mutable dropped : int;  (** beats removed by fault injection *)
  mutable duplicated : int;  (** extra beats added by fault injection *)
  trace : Sim_trace.t option;  (** loss events are recorded here *)
}

(** [create ?trace ?faults params mech ~mem_intensity] instantiates a
    delivery stream.  [mem_intensity ∈ [0,1]] models how often the
    workload sits in memory-stall / kernel paths that defer Linux
    signal delivery; it has no effect on Nautilus IPIs.  [faults]
    layers injected drops / duplicates / delays on top of the
    mechanism's native behaviour (default: none).  [trace] records each
    lost beat (the delivered ones are recorded by the engine, at their
    effective delivery point). *)
let create ?(trace : Sim_trace.t option) ?(faults = no_faults)
    (params : Params.t) (mech : mech) ~(mem_intensity : float) : t =
  let heart = Params.heart_cycles params in
  {
    params;
    mech;
    heart;
    loss_prob = 0.08 +. (0.45 *. mem_intensity);
    rng = Prng.create ~seed:(params.seed lxor 0x1E77);
    sweep_start = heart;
    sweep_pos = 0;
    per_core_next = Array.make (max 1 params.procs) heart;
    faults;
    fault_rng = Prng.split (Prng.create ~seed:(params.seed lxor 0xFA17));
    pending_dup = None;
    delivered = 0;
    lost = 0;
    dropped = 0;
    duplicated = 0;
    trace;
  }

let trace_loss (t : t) ~(at : int) ~(core : int) : unit =
  match t.trace with
  | None -> ()
  | Some tr -> Sim_trace.emit tr ~at ~core Sim_trace.Beat_lost

let jitter (t : t) : int =
  if t.params.signal_jitter = 0 then 0
  else Prng.int t.rng t.params.signal_jitter

(* One candidate delivery from the ping-thread sweep model; loses the
   signal with probability [loss_prob] but still consumes the send
   slot (the ping thread paid for it either way). *)
let rec next_ping (t : t) : delivery option =
  let p = t.params in
  if p.procs = 0 then None
  else begin
    if t.sweep_pos >= p.procs then begin
      (* sweep finished: the next one starts at the later of its
         nominal time and now (the ping thread may be running late) *)
      let sweep_end = t.sweep_start + (p.procs * p.signal_send) in
      let nominal = t.sweep_start + t.heart in
      t.sweep_start <- max nominal sweep_end;
      t.sweep_pos <- 0
    end;
    let core = t.sweep_pos in
    let send_done = t.sweep_start + ((core + 1) * p.signal_send) in
    t.sweep_pos <- t.sweep_pos + 1;
    if Prng.float t.rng < t.loss_prob then begin
      t.lost <- t.lost + 1;
      trace_loss t ~at:send_done ~core;
      next_ping t
    end
    else begin
      t.delivered <- t.delivered + 1;
      Some { at = send_done + jitter t; core; handler_cost = p.signal_handle }
    end
  end

(* Per-core independent schedules: emit the globally earliest pending
   delivery and advance that core's clock by ♥. *)
let rec next_percore (t : t) ~(handler_cost : int) ~(latency : int)
    ~(jittered : bool) ~(lossy : bool) : delivery option =
  let p = t.params in
  if p.procs = 0 then None
  else begin
    let core = ref 0 in
    for c = 1 to p.procs - 1 do
      if t.per_core_next.(c) < t.per_core_next.(!core) then core := c
    done;
    let nominal = t.per_core_next.(!core) in
    t.per_core_next.(!core) <- nominal + t.heart;
    if lossy && Prng.float t.rng < t.loss_prob then begin
      t.lost <- t.lost + 1;
      trace_loss t ~at:nominal ~core:!core;
      next_percore t ~handler_cost ~latency ~jittered ~lossy
    end
    else begin
      t.delivered <- t.delivered + 1;
      let j = if jittered then jitter t else 0 in
      Some { at = nominal + latency + j; core = !core; handler_cost }
    end
  end

let next_native (t : t) : delivery option =
  match t.mech with
  | Off -> None
  | Ping_thread -> next_ping t
  | Papi ->
      next_percore t ~handler_cost:t.params.papi_handle ~latency:0
        ~jittered:true ~lossy:true
  | Nautilus_ipi ->
      next_percore t ~handler_cost:t.params.ipi_handle
        ~latency:t.params.ipi_latency ~jittered:false ~lossy:false

(** [next t] is the next delivery in time order, advancing the
    mechanism's internal state; [None] when the mechanism is off.
    Injected faults are applied here, on top of the native stream:
    dropped beats are re-counted from [delivered] into [lost],
    duplicates are queued one fault-jitter quantum later (so delivery
    order is preserved), and extra delay is drawn per beat from the
    dedicated fault stream. *)
let rec next (t : t) : delivery option =
  match t.pending_dup with
  | Some d ->
      t.pending_dup <- None;
      Some d
  | None -> (
      match next_native t with
      | None -> None
      | Some d ->
          let f = t.faults in
          if f.drop > 0. && Prng.float t.fault_rng < f.drop then begin
            (* the native layer already counted this beat as delivered *)
            t.delivered <- t.delivered - 1;
            t.lost <- t.lost + 1;
            t.dropped <- t.dropped + 1;
            trace_loss t ~at:d.at ~core:d.core;
            next t
          end
          else begin
            let d =
              if f.fault_jitter > 0 then
                { d with at = d.at + Prng.int t.fault_rng f.fault_jitter }
              else d
            in
            if f.dup > 0. && Prng.float t.fault_rng < f.dup then begin
              t.delivered <- t.delivered + 1;
              t.duplicated <- t.duplicated + 1;
              t.pending_dup <-
                Some { d with at = d.at + max 1 f.fault_jitter }
            end;
            Some d
          end)

(** Beats actually delivered so far. *)
let delivered (t : t) : int = t.delivered

(** Beats lost so far (Linux signal coalescing plus injected drops). *)
let lost (t : t) : int = t.lost

(** Beats removed by fault injection (subset of [lost]). *)
let dropped (t : t) : int = t.dropped

(** Extra beats added by fault injection (subset of [delivered]). *)
let duplicated (t : t) : int = t.duplicated

(** Fleet-wide target beat count for a run of [horizon] cycles — the
    denominator of Figure 10's achieved-rate ratios.  Uses the same
    worker count the engine simulates ([max 1 procs]). *)
let target_count (t : t) ~(horizon : int) : int =
  if t.mech = Off || t.heart = 0 then 0
  else max 1 t.params.procs * (horizon / t.heart)
