(** Mutex-protected string interning: region names and tenant names
    become small ints so ring slots and hot-path comparisons never
    touch a string.  Interning is the slow path (a hashtable hit under
    a mutex, once per [with_region]/[submit] call, not per event);
    [name] is for exporters and reports after the fact. *)

type t = {
  m : Mutex.t;
  tbl : (string, int) Hashtbl.t;
  mutable arr : string array;
  mutable n : int;
}

let create () : t =
  { m = Mutex.create (); tbl = Hashtbl.create 64; arr = Array.make 16 ""; n = 0 }

let locked (t : t) (f : unit -> 'a) : 'a =
  Mutex.lock t.m;
  Fun.protect f ~finally:(fun () -> Mutex.unlock t.m)

let intern (t : t) (s : string) : int =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl s with
      | Some id -> id
      | None ->
          let id = t.n in
          if id = Array.length t.arr then begin
            let bigger = Array.make (2 * id) "" in
            Array.blit t.arr 0 bigger 0 id;
            t.arr <- bigger
          end;
          t.arr.(id) <- s;
          Hashtbl.add t.tbl s id;
          t.n <- id + 1;
          id)

(** The interned string, or ["?<id>"] for an unknown id (e.g. region 0
    of an untraced run). *)
let name (t : t) (id : int) : string =
  locked t (fun () ->
      if id >= 0 && id < t.n then t.arr.(id) else Printf.sprintf "?%d" id)

let count (t : t) : int = locked t (fun () -> t.n)
