(** Cache-line padding for hot shared heap objects.

    OCaml's allocator packs small blocks densely: two [Atomic.t]s (or
    two adjacent worker records) allocated together usually share a
    64-byte cache line, so a thief CASing one deque's [top] invalidates
    the line holding its neighbour's — classic false sharing, and one
    of the measured single-domain overheads in BENCH_par.json.

    [copy_as_padded] re-allocates a block into one whose size is
    rounded up past a whole cache-line multiple (128 bytes — adjacent
    lines, because the hardware prefetcher pulls line pairs), so the
    hot fields at its front are, with overwhelming likelihood, the
    only actively-written words on their line.  The padding fields are
    immediate ints, invisible to both the GC and the block's users:
    every [Atomic], record and array primitive addresses fields by
    index from the front, so the padded copy is observationally
    identical to the original.  (OCaml 5.2's [Atomic.make_contended]
    does the same thing in the runtime; this repository pins 5.1.)

    Pad an object {e before} it is shared — the copy, not the
    original, is the canonical object. *)

let line_words = 16
(* 128 bytes on a 64-bit host: one line pair, covering the adjacent-
   line prefetcher. *)

let copy_as_padded (x : 'a) : 'a =
  let o = Obj.repr x in
  if (not (Obj.is_block o)) || Obj.tag o >= Obj.no_scan_tag then x
  else begin
    let n = Obj.size o in
    let padded = ((n / line_words) + 1) * line_words in
    let b = Obj.new_block (Obj.tag o) padded in
    for i = 0 to n - 1 do
      Obj.set_field b i (Obj.field o i)
    done;
    for i = n to padded - 1 do
      Obj.set_field b i (Obj.repr 0)
    done;
    Obj.obj b
  end

let atomic (v : 'a) : 'a Atomic.t = copy_as_padded (Atomic.make v)
(** A freshly allocated atomic alone on its cache-line pair. *)
