(** What-if span profiling (first cut of ROADMAP item 4, after
    TASKPROF): attribute work and span to source regions, then answer
    "how much faster would this run be were region [r] N× more
    parallel?" by shrinking [r]'s span contribution N× and re-applying
    Brent's bound.

    Two sources:

    - {!of_eval} replays a TPAL program under {!Tpal.Eval}'s hook and
      rebuilds the series–parallel cost graph of Figure 28 {e with
      per-region attribution}: every sequential tick is charged to the
      basic block it executes in, every τ to the forking block, and a
      parallel composition's span map is the longer branch's.  The
      unattributed totals coincide exactly with the evaluator's own
      {!Tpal.Cost.summary} — a reconciliation the test suite checks on
      fuzz-generated programs.  Units: instructions.
    - {!of_trace} reads a real (or simulated) {!Trace}: region work is
      the summed wall-time of its task spans, region span its
      {e serialized} time — wall-time during which that region's tasks
      were the only ones running anywhere, i.e. time no amount of
      extra parallelism elsewhere could hide.  Units: nanoseconds.

    Prediction model, either way: for region [r] with span share
    [s_r], the N×-parallel variant has [span' = S - s_r + s_r/N], and
    on [P] processors Brent gives [T'(P) = W/P + span'], so the
    predicted speedup is [T(P)/T'(P)] (with [P = ∞], [S/span']). *)

module Smap = Map.Make (String)

(* The attributed cost monoid: Figure 28's (work, span) summary carrying
   per-region decompositions.  Invariants: Σ rwork = work and
   Σ rspan = span — [par] keeps them by charging τ to the fork site and
   taking the whole span map of the longer branch. *)
type attr = {
  work : int;
  span : int;
  forks : int;
  rwork : int Smap.t;
  rspan : int Smap.t;
}

let azero =
  { work = 0; span = 0; forks = 0; rwork = Smap.empty; rspan = Smap.empty }

let radd (region : string) (v : int) (m : int Smap.t) : int Smap.t =
  if v = 0 then m
  else
    Smap.update region
      (fun prev -> Some (Option.value prev ~default:0 + v))
      m

let runion (a : int Smap.t) (b : int Smap.t) : int Smap.t =
  Smap.union (fun _ x y -> Some (x + y)) a b

let atick ~(region : string) (a : attr) : attr =
  {
    a with
    work = a.work + 1;
    span = a.span + 1;
    rwork = radd region 1 a.rwork;
    rspan = radd region 1 a.rspan;
  }

let aseq (a : attr) (b : attr) : attr =
  {
    work = a.work + b.work;
    span = a.span + b.span;
    forks = a.forks + b.forks;
    rwork = runion a.rwork b.rwork;
    rspan = runion a.rspan b.rspan;
  }

let apar ~(tau : int) ~(region : string) (a : attr) (b : attr) : attr =
  let winner = if a.span >= b.span then a else b in
  {
    work = tau + a.work + b.work;
    span = tau + max a.span b.span;
    forks = 1 + a.forks + b.forks;
    rwork = radd region tau (runion a.rwork b.rwork);
    rspan = radd region tau winner.rspan;
  }

(* ------------------------------------------------------------------ *)

type region = { name : string; work : int; span : int }

type t = {
  source : string;  (** ["eval"] or ["trace"] *)
  unit_ : string;  (** ["instr"] or ["ns"] *)
  total_work : int;
  total_span : int;
  forks : int;
  regions : region list;  (** descending by span *)
}

let of_attr ~(source : string) ~(unit_ : string) (a : attr) : t =
  let regions =
    Smap.fold
      (fun name work acc ->
        { name; work; span = Option.value (Smap.find_opt name a.rspan) ~default:0 }
        :: acc)
      a.rwork []
  in
  (* span-only regions (possible for of_trace) still deserve a row *)
  let regions =
    Smap.fold
      (fun name span acc ->
        if Smap.mem name a.rwork then acc
        else { name; work = 0; span } :: acc)
      a.rspan regions
  in
  {
    source;
    unit_;
    total_work = a.work;
    total_span = a.span;
    forks = a.forks;
    regions =
      List.sort (fun a b -> compare (b.span, b.work) (a.span, a.work)) regions;
  }

(* ------------------------------------------------------------------ *)
(* Source 1: the evaluator's hook stream.  We rebuild the derivation
   tree with an explicit frame stack keyed by join ids: E_fork pushes a
   frame (saving the accumulator), the parent's E_join_block banks the
   parent branch, E_combine pops and composes parent ∥ child at the
   fork site's τ, and E_halt unwinds any frames an abrupt halt cut
   through — mirroring Eval.eval's own cost composition case by
   case. *)

type frame = {
  join : int;
  fork_region : string;
  outer : attr;
  mutable parent : attr option;
}

type builder = { mutable acc : attr; mutable stack : frame list }

let hook_of_builder (st : builder) ~(tau : int) : Tpal.Eval.event -> unit =
  let region (task : Tpal.Task.t) = task.pc.label in
  fun ev ->
    match (ev : Tpal.Eval.event) with
    | E_step task
    | E_promote { task; _ }
    | E_jralloc { task; _ }
    | E_join_continue { task; _ } ->
        st.acc <- atick ~region:(region task) st.acc
    | E_fork { task; join; _ } ->
        st.stack <-
          { join; fork_region = region task; outer = st.acc; parent = None }
          :: st.stack;
        st.acc <- azero
    | E_join_block { task; join } -> (
        st.acc <- atick ~region:(region task) st.acc;
        match st.stack with
        | f :: _ when f.join = join && f.parent = None ->
            (* the parent branch of the innermost fork just finished *)
            f.parent <- Some st.acc;
            st.acc <- azero
        | _ ->
            (* the child branch (composed at E_combine), or a terminal
               top-level block *)
            ())
    | E_combine { join; _ } -> (
        match st.stack with
        | f :: rest when f.join = join ->
            st.stack <- rest;
            let parent = Option.value f.parent ~default:azero in
            st.acc <-
              aseq f.outer
                (apar ~tau ~region:f.fork_region parent st.acc)
        | _ -> () (* unbalanced stream: only possible on machine errors *))
    | E_halt _ ->
        (* halt stops the whole machine: unwind open forks exactly as
           Eval composes Halted branches (the missing branch is 0) *)
        List.iter
          (fun f ->
            let composed =
              match f.parent with
              | None -> apar ~tau ~region:f.fork_region st.acc azero
              | Some p -> apar ~tau ~region:f.fork_region p st.acc
            in
            st.acc <- aseq f.outer composed)
          st.stack;
        st.stack <- []

(** [of_eval program] — run [program] under the evaluator and return
    the region-attributed profile next to the evaluator's own result.
    [t.total_work]/[t.total_span] equal [finished.cost.work]/[.span]
    exactly. *)
let of_eval ?(options = Tpal.Eval.default_options)
    ?(bindings : (Tpal.Ast.reg * Tpal.Value.t) list = [])
    (program : Tpal.Ast.program) :
    (t * Tpal.Eval.finished, Tpal.Machine_error.t) result =
  let st = { acc = azero; stack = [] } in
  let hook = hook_of_builder st ~tau:options.tau in
  match Tpal.Eval.run_seeded ~hook ~options program bindings with
  | Error err -> Error err
  | Ok fin -> Ok (of_attr ~source:"eval" ~unit_:"instr" st.acc, fin)

(* ------------------------------------------------------------------ *)
(* Source 2: task intervals of a real (or sim) trace. *)

let intervals_of_trace (tr : Trace.t) : (int * int * string) list =
  let out = ref [] in
  List.iter
    (fun ((_, events) : string * (int * Event.t) list) ->
      let open_tasks = ref [] in
      let last_ts = ref 0 in
      List.iter
        (fun (at_ns, e) ->
          last_ts := max !last_ts at_ns;
          match (e : Event.t) with
          | Task_start { region } -> open_tasks := (at_ns, region) :: !open_tasks
          | Task_finish _ -> (
              match !open_tasks with
              | (t0, region) :: rest ->
                  open_tasks := rest;
                  if at_ns > t0 then
                    out := (t0, at_ns, Trace.label tr region) :: !out
              | [] -> ())
          | _ -> ())
        events;
      List.iter
        (fun (t0, region) ->
          if !last_ts > t0 then out := (t0, !last_ts, Trace.label tr region) :: !out)
        !open_tasks)
    (Trace.events tr);
  !out

(** [of_trace tr]: wall-clock attribution from task spans.  Work per
    region is its total task time; span per region is its serialized
    time (exactly one task running anywhere); totals are the summed
    task time and the makespan. *)
let of_trace (tr : Trace.t) : t =
  let ivs = intervals_of_trace tr in
  match ivs with
  | [] ->
      { source = "trace"; unit_ = "ns"; total_work = 0; total_span = 0;
        forks = 0; regions = [] }
  | _ ->
      let rwork =
        List.fold_left
          (fun m (t0, t1, r) -> radd r (t1 - t0) m)
          Smap.empty ivs
      in
      let total_work = Smap.fold (fun _ v n -> n + v) rwork 0 in
      let t_min = List.fold_left (fun m (t0, _, _) -> min m t0) max_int ivs in
      let t_max = List.fold_left (fun m (_, t1, _) -> max m t1) 0 ivs in
      (* serialized time: sweep interval boundaries, attribute stretches
         where exactly one task is live to its region *)
      let bounds =
        List.concat_map (fun (t0, t1, r) -> [ (t0, 1, r); (t1, -1, r) ]) ivs
        |> List.sort compare
      in
      let active : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let live = ref 0 in
      let prev_t = ref t_min in
      let rspan = ref Smap.empty in
      List.iter
        (fun (t, delta, r) ->
          if !live = 1 && t > !prev_t then begin
            (* the single live region *)
            Hashtbl.iter
              (fun r' n -> if n > 0 then rspan := radd r' (t - !prev_t) !rspan)
              active
          end;
          prev_t := t;
          live := !live + delta;
          Hashtbl.replace active r
            (Option.value (Hashtbl.find_opt active r) ~default:0 + delta))
        bounds;
      of_attr ~source:"trace" ~unit_:"ns"
        {
          work = total_work;
          span = t_max - t_min;
          forks = 0;
          rwork;
          rspan = !rspan;
        }

(* ------------------------------------------------------------------ *)
(* What-if predictions. *)

type prediction = {
  region : string;
  work : int;
  span : int;
  work_pct : float;  (** share of total work *)
  span_pct : float;  (** share of total span *)
  predicted_span : int;  (** total span were this region [factor]× more parallel *)
  predicted_speedup : float;  (** T(P)/T'(P), Brent *)
}

let pct (part : int) (whole : int) : float =
  if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole

(* Brent completion time at [procs] processors (0 = infinitely many). *)
let btime ~(procs : int) ~(work : int) (span : int) : float =
  let s = float_of_int span in
  if procs <= 0 then s else (float_of_int work /. float_of_int procs) +. s

let predict ~(procs : int) ~(factor : float) (p : t) (r : region) : prediction
    =
  let factor = Float.max 1. factor in
  let shrunk =
    int_of_float (ceil (float_of_int r.span /. factor))
  in
  let predicted_span = p.total_span - r.span + shrunk in
  let t0 = btime ~procs ~work:p.total_work p.total_span in
  let t1 = btime ~procs ~work:p.total_work predicted_span in
  {
    region = r.name;
    work = r.work;
    span = r.span;
    work_pct = pct r.work p.total_work;
    span_pct = pct r.span p.total_span;
    predicted_span;
    predicted_speedup = (if t1 <= 0. then 1. else t0 /. t1);
  }

(** [what_if ~factor p name]: the prediction for one region, [None] if
    the profile has no such region. *)
let what_if ?(procs = 0) ~(factor : float) (p : t) (name : string) :
    prediction option =
  List.find_opt (fun (r : region) -> r.name = name) p.regions
  |> Option.map (predict ~procs ~factor p)

(** [rank p]: every region's prediction, best speedup first. *)
let rank ?(procs = 0) ?(factor = 8.) (p : t) : prediction list =
  List.map (predict ~procs ~factor p) p.regions
  |> List.sort (fun a b ->
         compare (b.predicted_speedup, b.span) (a.predicted_speedup, a.span))

(** Human-readable bottleneck report. *)
let report ?(procs = 0) ?(factor = 8.) ?(top = 0) (p : t) : string =
  let module T = Stats.Table in
  let fmt_units (n : int) : string =
    if p.unit_ = "ns" then Printf.sprintf "%.3f" (float_of_int n /. 1e6)
    else T.fmt_int_grouped n
  in
  let unit_name = if p.unit_ = "ns" then "ms" else "instr" in
  let preds = rank ~procs ~factor p in
  let preds =
    if top > 0 && List.length preds > top then List.filteri (fun i _ -> i < top) preds
    else preds
  in
  let rows =
    List.map
      (fun (pr : prediction) ->
        [
          pr.region;
          fmt_units pr.work;
          fmt_units pr.span;
          Printf.sprintf "%.1f%%" pr.work_pct;
          Printf.sprintf "%.1f%%" pr.span_pct;
          fmt_units pr.predicted_span;
          Printf.sprintf "%.3fx" pr.predicted_speedup;
        ])
      preds
  in
  let tbl =
    T.make
      ~title:
        (Printf.sprintf "what-if profile (%s): regions were %gx more parallel"
           p.source factor)
      ~header:
        [
          "region";
          "work (" ^ unit_name ^ ")";
          "span (" ^ unit_name ^ ")";
          "work%";
          "span%";
          "span' (" ^ unit_name ^ ")";
          (if procs <= 0 then "speedup@P=inf"
           else Printf.sprintf "speedup@P=%d" procs);
        ]
      rows
  in
  let parallelism =
    if p.total_span = 0 then 0.
    else float_of_int p.total_work /. float_of_int p.total_span
  in
  Printf.sprintf
    "total work %s %s, span %s %s, parallelism %.2f%s\n\n%s"
    (fmt_units p.total_work) unit_name (fmt_units p.total_span) unit_name
    parallelism
    (if p.forks > 0 then Printf.sprintf ", forks %d" p.forks else "")
    (T.render tbl)
