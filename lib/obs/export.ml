(** Chrome [trace_event] export of a real-runtime {!Trace} — the same
    format, category vocabulary and event names as
    {!Sim.Sim_trace.to_chrome}, so a real 4-domain run and a simulated
    run of the same kernel sit side by side in Perfetto as two
    processes: spans for task executions and idle naps, thread-scoped
    instants for beats ("heartbeat"), steals ("steal"), promotions
    ("promotion"), join suspend/resume ("join") and scheduler noise
    ("scheduler"); serving-layer decisions get their own "serve"
    category on the pool's track. *)

module C = Stats.Chrome_trace

let us_of_ns (ns : int) : float = float_of_int ns /. 1e3

let outcome_str = function
  | `Met -> "met"
  | `Missed -> "missed"
  | `Failed -> "failed"
  | `Cancelled -> "cancelled"

(** [to_chrome tr] — one thread per track under process [pid]. *)
let to_chrome ?(pid = 0) ?(process = "tpal-par") (tr : Trace.t) :
    C.event list =
  let tracks = Trace.events tr in
  let meta =
    C.process_name ~pid process
    :: List.mapi (fun tid (name, _) -> C.thread_name ~pid ~tid name) tracks
  in
  let out = ref [] in
  let push e = out := e :: !out in
  List.iteri
    (fun tid (_, events) ->
      (* open Task_start spans awaiting their finish, innermost first *)
      let open_tasks = ref [] in
      let last_ts = ref 0 in
      let close_task ~(at_ns : int) =
        match !open_tasks with
        | [] -> ()
        | (t0, region) :: rest ->
            open_tasks := rest;
            push
              (C.complete ~cat:"task"
                 ~args:[ ("region", C.Str (Trace.label tr region)) ]
                 ~name:(Trace.label tr region) ~pid ~tid ~ts:(us_of_ns t0)
                 ~dur:(us_of_ns (max 0 (at_ns - t0)))
                 ())
      in
      List.iter
        (fun (at_ns, e) ->
          last_ts := max !last_ts at_ns;
          let ts = us_of_ns at_ns in
          let instant ?(cat = "scheduler") ?(args = []) name =
            push (C.instant ~cat ~args ~name ~pid ~tid ~ts ())
          in
          match (e : Event.t) with
          | Task_start { region } -> open_tasks := (at_ns, region) :: !open_tasks
          | Task_finish _ -> close_task ~at_ns
          | Nap { ns } ->
              (* the nap is recorded as it ends; place the span where
                 the sleep actually was *)
              push
                (C.complete ~cat:"scheduler" ~name:"nap" ~pid ~tid
                   ~ts:(us_of_ns (max 0 (at_ns - ns)))
                   ~dur:(us_of_ns ns) ())
          | Beat -> instant ~cat:"heartbeat" "beat"
          | Promote { kind } ->
              instant ~cat:"promotion"
                ~args:
                  [ ("kind", C.Str (match kind with `Loop -> "loop" | `Branch -> "branch")) ]
                "promote"
          | Steal { ok; victim } ->
              instant ~cat:"steal"
                ~args:[ ("victim", C.Int victim) ]
                (if ok then "steal" else "steal-attempt")
          | Join_suspend -> instant ~cat:"join" "join-block"
          | Join_resume -> instant ~cat:"join" "join-resume"
          | Callback_error -> instant "callback-error"
          | Admit { tenant } ->
              instant ~cat:"serve"
                ~args:[ ("tenant", C.Str (Trace.label tr tenant)) ]
                "admit"
          | Reject { shed } ->
              instant ~cat:"serve" (if shed then "shed" else "reject")
          | Dispatch { tenant; urgency } ->
              instant ~cat:"serve"
                ~args:
                  [ ("tenant", C.Str (Trace.label tr tenant));
                    ("urgency", C.Int urgency) ]
                "dispatch"
          | Complete { tenant; outcome; sojourn_ns } ->
              instant ~cat:"serve"
                ~args:
                  [ ("tenant", C.Str (Trace.label tr tenant));
                    ("outcome", C.Str (outcome_str outcome));
                    ("sojourn_ms", C.Float (float_of_int sojourn_ns /. 1e6)) ]
                "complete"
          | Degraded { on } ->
              instant ~cat:"serve" (if on then "degraded" else "recovered")
          | Chaos { arg; _ } as e ->
              instant ~cat:"chaos" ~args:[ ("arg", C.Int arg) ] (Event.name e)
          | Cancel _ as e -> instant ~cat:"cancel" (Event.name e)
          | Retry { tenant; attempt } ->
              instant ~cat:"serve"
                ~args:
                  [ ("tenant", C.Str (Trace.label tr tenant));
                    ("attempt", C.Int attempt) ]
                "retry"
          | Restart { attempt } ->
              instant ~cat:"serve"
                ~args:[ ("attempt", C.Int attempt) ]
                "restart"
          | Conn { up } -> instant ~cat:"net" (if up then "conn-open" else "conn-close")
          | Frame { rx; kind; bytes } ->
              instant ~cat:"net"
                ~args:[ ("tag", C.Int kind); ("bytes", C.Int bytes) ]
                (if rx then "frame-rx" else "frame-tx")
          | Route { shard; size } ->
              instant ~cat:"net"
                ~args:[ ("shard", C.Int shard); ("size", C.Int size) ]
                "route"
          | Batch { n; wait_us } ->
              instant ~cat:"net"
                ~args:[ ("n", C.Int n); ("wait_us", C.Int wait_us) ]
                "batch"
          | Drain { pending } ->
              instant ~cat:"net"
                ~args:[ ("pending", C.Int pending) ]
                "drain")
        events;
      (* tasks still open when the trace ended (or whose finish was
         dropped): close them at the last timestamp seen *)
      while !open_tasks <> [] do
        close_task ~at_ns:!last_ts
      done)
    tracks;
  (* drop accounting is part of the trace: one instant per lossy track *)
  List.iteri
    (fun tid (_, ring) ->
      let d = Ring.dropped ring in
      if d > 0 then
        push
          (C.instant ~cat:"scheduler"
             ~args:[ ("dropped", C.Int d) ]
             ~name:"ring-dropped" ~pid ~tid ~ts:0. ()))
    (Trace.tracks tr);
  meta @ List.rev !out

let to_chrome_string ?pid ?process (tr : Trace.t) : string =
  C.to_string (to_chrome ?pid ?process tr)

(** Several sessions in one document, each as its own named process —
    how [bench --par-bench --trace] lays one traced run per kernel
    side by side. *)
let many_to_chrome_string (traces : (string * Trace.t) list) : string =
  C.to_string
    (List.concat
       (List.mapi
          (fun pid (process, tr) -> to_chrome ~pid ~process tr)
          traces))
