(** The unified trace vocabulary of the production side: everything a
    {!Par.Runtime} worker or the {!Serve.Pool} dispatcher can drop into
    a {!Ring}, with a fixed integer codec so a ring slot is four plain
    ints ([code; t_ns; a; b]).

    Runtime events mirror {!Par.Runtime.event} (plus the promotion
    kind and the steal outcome folded in); serve events cover the
    admission / DRR–EDF dispatch / completion / degradation decisions
    of {!Serve.Pool}.  Region and tenant identifiers are
    {!Labels}-interned ints — resolve them through the owning
    {!Trace.t}. *)

type t =
  | Beat  (** a heartbeat observed at a promotion-ready poll *)
  | Promote of { kind : [ `Loop | `Branch ] }
  | Steal of { ok : bool; victim : int }
      (** one steal probe; failed probes are recorded only for the
          first sweep of an idle drought (see {!Par.Runtime.event}) *)
  | Join_suspend
  | Join_resume
  | Task_start of { region : int }
  | Task_finish of { region : int }
  | Nap of { ns : int }  (** an idle-backoff sleep that just ended *)
  | Callback_error  (** a user [on_event] callback raised *)
  | Admit of { tenant : int }
  | Reject of { shed : bool }
      (** admission refused: queue bound ([shed = false]) or
          degradation shedding ([shed = true]) *)
  | Dispatch of { tenant : int; urgency : int }
      (** the DRR/EDF scheduler picked this tenant's head request;
          [urgency] is the deadline-driven promotion hint installed *)
  | Complete of {
      tenant : int;
      outcome : [ `Met | `Missed | `Failed | `Cancelled ];
      sojourn_ns : int;
    }
  | Degraded of { on : bool }  (** watchdog entered / left degradation *)
  | Chaos of { kind : [ `Stall | `Slow | `Drop | `Raise ]; arg : int }
      (** an injected fault fired at a beat boundary; [arg] is the
          kind-specific magnitude (beats stalled / slowed / dropped) *)
  | Cancel of { reason : [ `Explicit | `Deadline | `Lease ] }
      (** a cancel token was set (pool side) or observed at a poll
          (runtime side) *)
  | Retry of { tenant : int; attempt : int }
      (** a failed request was re-admitted for attempt [attempt] *)
  | Restart of { attempt : int }
      (** the pool warm-restarted its runtime session *)
  | Conn of { up : bool }
      (** a {!Net.Server} client connection opened ([up]) or closed *)
  | Frame of { rx : bool; kind : int; bytes : int }
      (** one wire frame crossed a connection; [kind] is the frame's
          wire tag, [rx] its direction (received vs sent) *)
  | Route of { shard : int; size : int }
      (** the {!Net.Router} placed a request on [shard] *)
  | Batch of { n : int; wait_us : int }
      (** a micro-batch of [n] small requests flushed after the oldest
          member waited [wait_us] *)
  | Drain of { pending : int }
      (** graceful shutdown began with [pending] requests in flight *)

let bool_bit b = if b then 1 else 0

let chaos_kind_code = function `Stall -> 0 | `Slow -> 1 | `Drop -> 2 | `Raise -> 3
let cancel_reason_code = function `Explicit -> 0 | `Deadline -> 1 | `Lease -> 2

let outcome_code = function
  | `Met -> 0
  | `Missed -> 1
  | `Failed -> 2
  | `Cancelled -> 3

(** [encode e] is [(code, a, b)] — the non-timestamp words of a ring
    slot. *)
let encode : t -> int * int * int = function
  | Beat -> (1, 0, 0)
  | Promote { kind = `Loop } -> (2, 0, 0)
  | Promote { kind = `Branch } -> (2, 1, 0)
  | Steal { ok; victim } -> (3, bool_bit ok, victim)
  | Join_suspend -> (4, 0, 0)
  | Join_resume -> (5, 0, 0)
  | Task_start { region } -> (6, region, 0)
  | Task_finish { region } -> (7, region, 0)
  | Nap { ns } -> (8, ns, 0)
  | Callback_error -> (9, 0, 0)
  | Admit { tenant } -> (10, tenant, 0)
  | Reject { shed } -> (11, bool_bit shed, 0)
  | Dispatch { tenant; urgency } -> (12, tenant, urgency)
  | Complete { tenant; outcome; sojourn_ns } ->
      (13, (tenant lsl 2) lor outcome_code outcome, sojourn_ns)
  | Degraded { on } -> (14, bool_bit on, 0)
  | Chaos { kind; arg } -> (15, chaos_kind_code kind, arg)
  | Cancel { reason } -> (16, cancel_reason_code reason, 0)
  | Retry { tenant; attempt } -> (17, tenant, attempt)
  | Restart { attempt } -> (18, attempt, 0)
  | Conn { up } -> (19, bool_bit up, 0)
  | Frame { rx; kind; bytes } -> (20, (kind lsl 1) lor bool_bit rx, bytes)
  | Route { shard; size } -> (21, shard, size)
  | Batch { n; wait_us } -> (22, n, wait_us)
  | Drain { pending } -> (23, pending, 0)

let decode ~(code : int) ~(a : int) ~(b : int) : t option =
  match code with
  | 1 -> Some Beat
  | 2 -> Some (Promote { kind = (if a = 0 then `Loop else `Branch) })
  | 3 -> Some (Steal { ok = a = 1; victim = b })
  | 4 -> Some Join_suspend
  | 5 -> Some Join_resume
  | 6 -> Some (Task_start { region = a })
  | 7 -> Some (Task_finish { region = a })
  | 8 -> Some (Nap { ns = a })
  | 9 -> Some Callback_error
  | 10 -> Some (Admit { tenant = a })
  | 11 -> Some (Reject { shed = a = 1 })
  | 12 -> Some (Dispatch { tenant = a; urgency = b })
  | 13 ->
      let outcome =
        match a land 3 with
        | 0 -> `Met
        | 1 -> `Missed
        | 2 -> `Failed
        | _ -> `Cancelled
      in
      Some (Complete { tenant = a asr 2; outcome; sojourn_ns = b })
  | 14 -> Some (Degraded { on = a = 1 })
  | 15 ->
      let kind =
        match a with 0 -> `Stall | 1 -> `Slow | 2 -> `Drop | _ -> `Raise
      in
      Some (Chaos { kind; arg = b })
  | 16 ->
      let reason =
        match a with 0 -> `Explicit | 1 -> `Deadline | _ -> `Lease
      in
      Some (Cancel { reason })
  | 17 -> Some (Retry { tenant = a; attempt = b })
  | 18 -> Some (Restart { attempt = a })
  | 19 -> Some (Conn { up = a = 1 })
  | 20 -> Some (Frame { rx = a land 1 = 1; kind = a asr 1; bytes = b })
  | 21 -> Some (Route { shard = a; size = b })
  | 22 -> Some (Batch { n = a; wait_us = b })
  | 23 -> Some (Drain { pending = a })
  | _ -> None

let name : t -> string = function
  | Beat -> "beat"
  | Promote _ -> "promote"
  | Steal { ok = true; _ } -> "steal"
  | Steal { ok = false; _ } -> "steal-attempt"
  | Join_suspend -> "join-block"
  | Join_resume -> "join-resume"
  | Task_start _ -> "task-start"
  | Task_finish _ -> "task-finish"
  | Nap _ -> "nap"
  | Callback_error -> "callback-error"
  | Admit _ -> "admit"
  | Reject { shed = false } -> "reject"
  | Reject { shed = true } -> "shed"
  | Dispatch _ -> "dispatch"
  | Complete _ -> "complete"
  | Degraded { on = true } -> "degraded"
  | Degraded { on = false } -> "recovered"
  | Chaos { kind = `Stall; _ } -> "chaos-stall"
  | Chaos { kind = `Slow; _ } -> "chaos-slow"
  | Chaos { kind = `Drop; _ } -> "chaos-drop"
  | Chaos { kind = `Raise; _ } -> "chaos-raise"
  | Cancel { reason = `Explicit } -> "cancel"
  | Cancel { reason = `Deadline } -> "cancel-deadline"
  | Cancel { reason = `Lease } -> "cancel-lease"
  | Retry _ -> "retry"
  | Restart _ -> "restart"
  | Conn { up = true } -> "conn-open"
  | Conn { up = false } -> "conn-close"
  | Frame { rx = true; _ } -> "frame-rx"
  | Frame { rx = false; _ } -> "frame-tx"
  | Route _ -> "route"
  | Batch _ -> "batch"
  | Drain _ -> "drain"
