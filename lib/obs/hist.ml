(** Log₂-bucketed latency histograms (nanosecond domain): constant
    space, constant-time insert, percentile estimates good to the
    bucket's factor-of-two resolution with linear interpolation inside
    a bucket — what per-tenant p50/p95/p99 needs without recording
    every sojourn.

    Not thread-safe; owners (the serve pool under its mutex, a bench
    thread) serialize access. *)

let nbuckets = 63

type t = {
  buckets : int array;  (** bucket [i] counts values with [i] significant bits *)
  mutable count : int;
  mutable sum_ns : float;
  mutable min_ns : int;
  mutable max_ns : int;
}

let create () : t =
  {
    buckets = Array.make nbuckets 0;
    count = 0;
    sum_ns = 0.;
    min_ns = max_int;
    max_ns = 0;
  }

(* Number of significant bits of a non-negative int: 0 → 0, 1 → 1,
   [2,4) → 2, [4,8) → 3, ... — the bucket index. *)
let bits (v : int) : int =
  let rec go v n = if v = 0 then n else go (v lsr 1) (n + 1) in
  go v 0

let add_ns (t : t) (v : int) : unit =
  let v = max 0 v in
  let b = min (nbuckets - 1) (bits v) in
  t.buckets.(b) <- t.buckets.(b) + 1;
  t.count <- t.count + 1;
  t.sum_ns <- t.sum_ns +. float_of_int v;
  if v < t.min_ns then t.min_ns <- v;
  if v > t.max_ns then t.max_ns <- v

let add_s (t : t) (seconds : float) : unit =
  add_ns t (int_of_float (Float.max 0. seconds *. 1e9))

let count (t : t) : int = t.count

let merge_into ~(into : t) (t : t) : unit =
  Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n) t.buckets;
  into.count <- into.count + t.count;
  into.sum_ns <- into.sum_ns +. t.sum_ns;
  if t.count > 0 then begin
    if t.min_ns < into.min_ns then into.min_ns <- t.min_ns;
    if t.max_ns > into.max_ns then into.max_ns <- t.max_ns
  end

(* Bucket [i] spans values [2^(i-1), 2^i - 1] (bucket 0 is exactly 0). *)
let bucket_lo (i : int) : float = if i = 0 then 0. else float_of_int (1 lsl (i - 1))
let bucket_hi (i : int) : float = if i = 0 then 0. else float_of_int ((1 lsl i) - 1)

(** [percentile_ns t p] for [p] in [0, 100]: rank-based with linear
    interpolation inside the landing bucket, clamped to the exact
    observed [min, max]. *)
let percentile_ns (t : t) (p : float) : float =
  if t.count = 0 then Float.nan
  else begin
    let rank =
      Float.max 1. (Float.round (Float.min 100. (Float.max 0. p) /. 100. *. float_of_int t.count))
    in
    let rank = int_of_float rank in
    let i = ref 0 and seen = ref 0 in
    while !seen + t.buckets.(!i) < rank && !i < nbuckets - 1 do
      seen := !seen + t.buckets.(!i);
      incr i
    done;
    let in_bucket = t.buckets.(!i) in
    let est =
      if in_bucket = 0 then bucket_lo !i
      else
        let frac = float_of_int (rank - !seen) /. float_of_int in_bucket in
        bucket_lo !i +. ((bucket_hi !i -. bucket_lo !i) *. frac)
    in
    Float.min (float_of_int t.max_ns) (Float.max (float_of_int t.min_ns) est)
  end

(** Millisecond digest for reports and JSON. *)
type summary = {
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

let empty_summary =
  { count = 0; mean_ms = Float.nan; p50_ms = Float.nan; p95_ms = Float.nan;
    p99_ms = Float.nan; max_ms = Float.nan }

let summary (t : t) : summary =
  if t.count = 0 then empty_summary
  else
    let ms x = x /. 1e6 in
    {
      count = t.count;
      mean_ms = ms (t.sum_ns /. float_of_int t.count);
      p50_ms = ms (percentile_ns t 50.);
      p95_ms = ms (percentile_ns t 95.);
      p99_ms = ms (percentile_ns t 99.);
      max_ms = ms (float_of_int t.max_ns);
    }

let pp_summary ppf (s : summary) =
  if s.count = 0 then Fmt.string ppf "no samples"
  else
    Fmt.pf ppf "n=%d mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms"
      s.count s.mean_ms s.p50_ms s.p95_ms s.p99_ms s.max_ms

(* JSON numbers must not be NaN. *)
let num (x : float) : string =
  if Float.is_nan x || Float.abs x = infinity then "0" else Printf.sprintf "%.4f" x

(** The summary as a JSON object (used by bench output). *)
let summary_json (s : summary) : string =
  Printf.sprintf
    "{\"count\": %d, \"mean_ms\": %s, \"p50_ms\": %s, \"p95_ms\": %s, \
     \"p99_ms\": %s, \"max_ms\": %s}"
    s.count (num s.mean_ms) (num s.p50_ms) (num s.p95_ms) (num s.p99_ms)
    (num s.max_ms)
