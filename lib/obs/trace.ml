(** A trace session: shared label interning, a common monotonic time
    origin, and one {!Ring} per producer ("track" — a worker domain,
    or the serving layer).

    Construction and track registration take a mutex (they happen a
    handful of times, at pool construction); {!emit} is the production
    hot path and touches only the caller-owned ring plus
    {!Mclock.now_ns} — no locks, no allocation. *)

type t = {
  labels : Labels.t;
  t0_ns : int;  (** monotonic origin; event stamps are relative *)
  capacity : int;  (** per-track ring capacity (slots) *)
  m : Mutex.t;
  mutable tracks : (string * Ring.t) list;  (** reverse registration order *)
}

(** [create ()] — [capacity] is the per-track ring size in events
    (default 32768 ≈ 1 MiB per track). *)
let create ?(capacity = 32768) () : t =
  {
    labels = Labels.create ();
    t0_ns = Mclock.now_ns ();
    capacity;
    m = Mutex.create ();
    tracks = [];
  }

(** [track t name] registers a new producer and returns its ring.
    Call once per producer, at setup time; the returned ring must only
    ever be written by that producer. *)
let track (t : t) (name : string) : Ring.t =
  let r = Ring.create ~capacity:t.capacity () in
  Mutex.lock t.m;
  t.tracks <- (name, r) :: t.tracks;
  Mutex.unlock t.m;
  r

(** Registered tracks, in registration order. *)
let tracks (t : t) : (string * Ring.t) list =
  Mutex.lock t.m;
  let l = List.rev t.tracks in
  Mutex.unlock t.m;
  l

let intern (t : t) (s : string) : int = Labels.intern t.labels s
let label (t : t) (id : int) : string = Labels.name t.labels id

(** [emit t ring e]: stamp [e] with the session-relative monotonic
    time and push it onto [ring].  Owner-only, like {!Ring.emit}. *)
let emit (t : t) (ring : Ring.t) (e : Event.t) : unit =
  let code, a, b = Event.encode e in
  Ring.emit ring ~code ~at_ns:(Mclock.now_ns () - t.t0_ns) ~a ~b

(** Decoded resident events per track, oldest first. *)
let events (t : t) : (string * (int * Event.t) list) list =
  List.map
    (fun (name, ring) ->
      let acc = ref [] in
      Ring.iter ring ~f:(fun ~code ~at_ns ~a ~b ->
          match Event.decode ~code ~a ~b with
          | Some e -> acc := (at_ns, e) :: !acc
          | None -> ());
      (name, List.rev !acc))
    (tracks t)

let total_written (t : t) : int =
  List.fold_left (fun n (_, r) -> n + Ring.written r) 0 (tracks t)

let total_dropped (t : t) : int =
  List.fold_left (fun n (_, r) -> n + Ring.dropped r) 0 (tracks t)
