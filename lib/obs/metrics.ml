(** A production-metrics snapshot: worker counters and ring accounting
    folded into one record with the derived rates operators actually
    watch (steal-failure rate, promotions per beat, idle share).

    The record is plain data — {!Par.Runtime.metrics} fills it from a
    session's stats, the serve pool from its own counters — so this
    module stays dependency-free below [par]/[serve]. *)

type t = {
  domains : int;
  elapsed_s : float;
  beats : int;
  promotions : int;
  loop_promotions : int;
  branch_promotions : int;
  joins : int;
  resumes : int;
  steals : int;
  steal_attempts : int;
  tasks : int;
  max_deque : int;
  idle_ns : int;  (** total nanoseconds workers slept in idle backoff *)
  callback_errors : int;  (** user [on_event] callbacks that raised *)
  faults_injected : int;  (** chaos-schedule faults that actually fired *)
  cancels : int;  (** cooperative cancellations observed at polls *)
  retries : int;  (** failed requests re-admitted by the pool *)
  restarts : int;  (** warm session restarts after a runtime death *)
  stalls : int;  (** watchdog / lease stall detections *)
  traced : int;  (** events emitted into rings (0 when tracing is off) *)
  dropped : int;  (** ring events lost to drop-oldest overflow *)
}

let zero =
  {
    domains = 0;
    elapsed_s = 0.;
    beats = 0;
    promotions = 0;
    loop_promotions = 0;
    branch_promotions = 0;
    joins = 0;
    resumes = 0;
    steals = 0;
    steal_attempts = 0;
    tasks = 0;
    max_deque = 0;
    idle_ns = 0;
    callback_errors = 0;
    faults_injected = 0;
    cancels = 0;
    retries = 0;
    restarts = 0;
    stalls = 0;
    traced = 0;
    dropped = 0;
  }

(** Fraction of steal probes that came up empty. *)
let steal_failure_rate (m : t) : float =
  if m.steal_attempts = 0 then 0.
  else 1. -. (float_of_int m.steals /. float_of_int m.steal_attempts)

let promotions_per_beat (m : t) : float =
  if m.beats = 0 then 0.
  else float_of_int m.promotions /. float_of_int m.beats

(** Idle-sleep share of total worker-seconds. *)
let idle_frac (m : t) : float =
  if m.elapsed_s <= 0. || m.domains = 0 then 0.
  else
    float_of_int m.idle_ns /. 1e9
    /. (m.elapsed_s *. float_of_int m.domains)

let pp ppf (m : t) =
  Fmt.pf ppf
    "@[<v>domains            %d@,elapsed            %.6f s@,\
     beats              %d@,promotions         %d (%d loop, %d branch; \
     %.2f/beat)@,joins/resumes      %d/%d@,steals             %d/%d attempts \
     (%.1f%% failed)@,tasks              %d@,max deque depth    %d@,\
     idle sleep         %.3f ms (%.1f%% of worker-time)@,callback errors    \
     %d@,faults injected    %d@,cancels/retries    %d/%d@,\
     restarts/stalls    %d/%d@,traced events      %d (%d dropped)@]"
    m.domains m.elapsed_s m.beats m.promotions m.loop_promotions
    m.branch_promotions (promotions_per_beat m) m.joins m.resumes m.steals
    m.steal_attempts
    (100. *. steal_failure_rate m)
    m.tasks m.max_deque
    (float_of_int m.idle_ns /. 1e6)
    (100. *. idle_frac m)
    m.callback_errors m.faults_injected m.cancels m.retries m.restarts
    m.stalls m.traced m.dropped

let num (x : float) : string =
  if Float.is_nan x || Float.abs x = infinity then "0"
  else Printf.sprintf "%.4f" x

(** The snapshot as JSON object fields (no enclosing braces, so
    callers can splice extra fields alongside). *)
let to_json_fields (m : t) : string =
  Printf.sprintf
    "\"domains\": %d, \"elapsed_s\": %s, \"beats\": %d, \"promotions\": %d, \
     \"steals\": %d, \"steal_attempts\": %d, \"steal_failure_rate\": %s, \
     \"promotions_per_beat\": %s, \"joins\": %d, \"resumes\": %d, \
     \"tasks\": %d, \"max_deque\": %d, \"idle_ns\": %d, \
     \"callback_errors\": %d, \"faults_injected\": %d, \"cancels\": %d, \
     \"retries\": %d, \"restarts\": %d, \"stalls\": %d, \
     \"traced\": %d, \"dropped\": %d"
    m.domains (num m.elapsed_s) m.beats m.promotions m.steals m.steal_attempts
    (num (steal_failure_rate m))
    (num (promotions_per_beat m))
    m.joins m.resumes m.tasks m.max_deque m.idle_ns m.callback_errors
    m.faults_injected m.cancels m.retries m.restarts m.stalls m.traced
    m.dropped

let to_json (m : t) : string = "{" ^ to_json_fields m ^ "}"
