(** Fixed-capacity, drop-oldest event ring — the per-domain trace sink
    that is safe to leave on in production.

    One ring has exactly one writer: the domain that owns it (a
    {!Par.Runtime} worker, or the serving layer under its pool mutex).
    [emit] is a handful of int stores into a preallocated flat array —
    no allocation, no locks, no atomics — so the instrumented hot paths
    pay a few nanoseconds whether or not anybody ever reads the trace.

    Overflow never blocks and never grows: the ring wraps and the
    oldest slots are overwritten.  [written] counts every emission, so
    [dropped = written - capacity] (clamped at 0) is exact drop
    accounting even though the dropped slots themselves are gone.

    Readers are expected to run after the writer quiesced (after
    {!Par.Runtime.run} joined its domains, or under the serve pool's
    mutex).  Racy reads while the writer is live are permitted by the
    OCaml memory model (no tearing of immediate ints) and yield an
    approximate snapshot — good enough for live metrics, not for span
    pairing.

    The record itself is {!Padding.copy_as_padded}-padded: [written]
    is written on the owner's hot path, and adjacent rings allocated
    together must not share its cache line. *)

(* Slot layout: [code; t_ns; a; b] — see {!Event.encode}. *)
let slot_words = 4

type t = {
  data : int array;
  cap : int;  (** slot capacity, a power of two *)
  mask : int;
  mutable written : int;  (** total emissions ever, monotone *)
}

let rec pow2_at_least (n : int) (c : int) = if c >= n then c else pow2_at_least n (c * 2)

(** [create ~capacity ()] — capacity is rounded up to a power of two,
    with a floor of 16 slots. *)
let create ?(capacity = 32768) () : t =
  let cap = pow2_at_least (max 16 capacity) 16 in
  Padding.copy_as_padded
    { data = Array.make (cap * slot_words) 0; cap; mask = cap - 1; written = 0 }

let emit (t : t) ~(code : int) ~(at_ns : int) ~(a : int) ~(b : int) : unit =
  let i = (t.written land t.mask) * slot_words in
  let d = t.data in
  Array.unsafe_set d i code;
  Array.unsafe_set d (i + 1) at_ns;
  Array.unsafe_set d (i + 2) a;
  Array.unsafe_set d (i + 3) b;
  t.written <- t.written + 1

let capacity (t : t) : int = t.cap
let written (t : t) : int = t.written

(** Events still resident (≤ capacity). *)
let length (t : t) : int = min t.written t.cap

(** Events lost to drop-oldest overwriting. *)
let dropped (t : t) : int = max 0 (t.written - t.cap)

(** [iter t ~f]: the resident events, oldest retained first. *)
let iter (t : t) ~(f : code:int -> at_ns:int -> a:int -> b:int -> unit) : unit
    =
  let first = max 0 (t.written - t.cap) in
  for k = first to t.written - 1 do
    let i = (k land t.mask) * slot_words in
    f ~code:t.data.(i) ~at_ns:t.data.(i + 1) ~a:t.data.(i + 2)
      ~b:t.data.(i + 3)
  done
