(** Monotonic time for the heartbeat runtimes.

    [Unix.gettimeofday] is wall-clock time: an NTP step moves it
    arbitrarily in either direction, which turns a clock-polled beat
    source into one that fires continuously (forward step) or never
    (backward step) until the clock catches up.  Every scheduler
    deadline in this repository — beat cadence, lease watchdogs,
    kernel timing — therefore reads [CLOCK_MONOTONIC] through this
    module instead. *)

external now_ns : unit -> int = "tpal_mclock_now_ns" [@@noalloc]
(** Nanoseconds since an unspecified fixed origin; never decreases. *)

let now_s () : float = float_of_int (now_ns ()) *. 1e-9
(** Seconds on the same clock, for callers that report floats. *)
