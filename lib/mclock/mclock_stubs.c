/* Monotonic clock for the heartbeat runtimes.
 *
 * The beat sources and lease watchdogs must never observe time moving
 * backwards (or jumping forward) when NTP steps the wall clock:
 * CLOCK_MONOTONIC is immune to both.  Returned as a tagged OCaml int
 * of nanoseconds since an unspecified epoch — 62 bits of nanoseconds
 * is ~146 years of uptime, so the subtraction callers perform cannot
 * overflow in practice.
 */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value tpal_mclock_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
