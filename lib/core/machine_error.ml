(** Run-time faults of the TPAL abstract machine.

    The formal semantics is partial: configurations with no applicable
    rule are stuck.  The implementation classifies every stuck state so
    that tests can assert on the precise failure mode (failure injection)
    and so that the CLI can print actionable diagnostics. *)

type t =
  | Unbound_register of Ast.reg
  | Unbound_label of Ast.label
  | Type_error of { expected : string; got : string; context : string }
  | Division_by_zero of { op : string }
  | Stack_bounds of { context : string; offset : int; depth : int }
  | Stack_type of { context : string; offset : int; got : string }
  | No_mark of { context : string }
  | Mark_corruption of { context : string; expected : string; got : string }
      (** the promotion-ready mark discipline was violated: the mark
          being removed is not the innermost live one ([expected] is
          the mark the runtime tried to pop, [got] the actual top of
          the mark list).  Reaching this state means a scheduler bug —
          marks obey strict LIFO nesting by construction — so the
          runtime surfaces the offending state instead of asserting. *)
  | Unbound_join of int
  | Join_misuse of { join : int; reason : string }
  | Fork_target_not_block of string
  | Pc_out_of_range of { label : Ast.label; offset : int }
  | Fuel_exhausted of { budget : int }
  | Halted  (** stepping a machine that already halted *)

let pp ppf = function
  | Unbound_register r -> Fmt.pf ppf "unbound register %s" r
  | Unbound_label l -> Fmt.pf ppf "unbound label %s" l
  | Type_error { expected; got; context } ->
      Fmt.pf ppf "type error in %s: expected %s, got %s" context expected got
  | Division_by_zero { op } -> Fmt.pf ppf "%s by zero" op
  | Stack_bounds { context; offset; depth } ->
      Fmt.pf ppf "stack access out of bounds in %s: offset %d, depth %d"
        context offset depth
  | Stack_type { context; offset; got } ->
      Fmt.pf ppf "unexpected %s at stack offset %d in %s" got offset context
  | No_mark { context } ->
      Fmt.pf ppf "no promotion-ready mark available in %s" context
  | Mark_corruption { context; expected; got } ->
      Fmt.pf ppf "mark-list corruption in %s: popping %s but top is %s"
        context expected got
  | Unbound_join j -> Fmt.pf ppf "unbound join record j%d" j
  | Join_misuse { join; reason } -> Fmt.pf ppf "join j%d misuse: %s" join reason
  | Fork_target_not_block s -> Fmt.pf ppf "fork target is not a block: %s" s
  | Pc_out_of_range { label; offset } ->
      Fmt.pf ppf "program counter %s[%d] out of range" label offset
  | Fuel_exhausted { budget } ->
      Fmt.pf ppf "evaluation fuel exhausted (budget %d)" budget
  | Halted -> Fmt.string ppf "machine already halted"

let show e = Fmt.str "%a" pp e
let equal (a : t) (b : t) = a = b
