(** Recursive-descent parser for TPAL assembly.

    Grammar (one block per labeled section; instructions separated by
    newlines or semicolons):

    {v
    program   ::= block+
    block     ::= IDENT ':' '[' annot ']' NL instrs
    annot     ::= '.' | 'prppt' IDENT
                | 'jtppt' policy ';' '{' renaming '}' ';' IDENT
    policy    ::= 'assoc' | 'assoc-comm'
    renaming  ::= (IDENT '->' IDENT (',' IDENT '->' IDENT)* )?
    instr     ::= 'jump' operand | 'halt' | 'join' IDENT
                | 'if-jump' IDENT ',' operand
                | 'fork' IDENT ',' operand
                | 'salloc' IDENT ',' INT | 'sfree' IDENT ',' INT
                | 'prmpush' addr | 'prmpop' addr
                | 'prmsplit' IDENT ',' IDENT
                | addr ':=' operand
                | IDENT ':=' rhs
    rhs       ::= 'jralloc' IDENT | 'snew' | 'prmempty' IDENT
                | addr | operand (binop operand)?
    addr      ::= 'mem' '[' IDENT '+' INT ']'
    operand   ::= IDENT | INT | '-' INT
    v}

    Bare identifiers in operand position are ambiguous between
    registers and labels (the paper writes both bare); a resolution
    pass after parsing turns every identifier that names a block into
    {!Ast.Lab} and every other into {!Ast.Reg}. *)

exception Error of { line : int; col : int; message : string }

let error (t : Lexer.located) fmt =
  Format.kasprintf
    (fun message -> raise (Error { line = t.line; col = t.col; message }))
    fmt

type state = { mutable toks : Lexer.located list }

let peek (st : state) : Lexer.located =
  match st.toks with [] -> assert false | t :: _ -> t

let advance (st : state) : unit =
  match st.toks with
  | [] -> assert false
  | [ _ ] -> () (* EOF stays *)
  | _ :: rest -> st.toks <- rest

let next (st : state) : Lexer.located =
  let t = peek st in
  advance st;
  t

let expect (st : state) (tok : Lexer.token) ~(what : string) : unit =
  let t = next st in
  if t.tok <> tok then error t "expected %s, found %a" what Lexer.pp_token t.tok

let expect_ident (st : state) ~(what : string) : string =
  let t = next st in
  match t.tok with
  | Lexer.IDENT s -> s
  | other -> error t "expected %s, found %a" what Lexer.pp_token other

let expect_int (st : state) ~(what : string) : int =
  let t = next st in
  match t.tok with
  | Lexer.INT n -> n
  | Lexer.OP Ast.Sub -> (
      let t2 = next st in
      match t2.tok with
      | Lexer.INT n -> -n
      | other -> error t2 "expected %s, found %a" what Lexer.pp_token other)
  | other -> error t "expected %s, found %a" what Lexer.pp_token other

let skip_newlines (st : state) : unit =
  while (peek st).tok = Lexer.NEWLINE do advance st done

(* During parsing every bare identifier operand is provisionally a
   register; [resolve_labels] fixes them up. *)
let parse_operand (st : state) : Ast.operand =
  let t = next st in
  match t.tok with
  | Lexer.IDENT s -> Ast.Reg s
  | Lexer.INT n -> Ast.Int n
  | Lexer.OP Ast.Sub -> (
      let t2 = next st in
      match t2.tok with
      | Lexer.INT n -> Ast.Int (-n)
      | other -> error t2 "expected integer after '-', found %a" Lexer.pp_token other)
  | other -> error t "expected operand, found %a" Lexer.pp_token other

(* addr ::= 'mem' '[' IDENT '+' INT ']' — returns (base register, offset) *)
let parse_addr_rest (st : state) : Ast.reg * int =
  expect st Lexer.LBRACKET ~what:"'[' after mem";
  let base = expect_ident st ~what:"base register" in
  expect st Lexer.PLUS ~what:"'+' in address";
  let off = expect_int st ~what:"address offset" in
  expect st Lexer.RBRACKET ~what:"']' closing address";
  (base, off)

let binop_of_token (t : Lexer.token) : Ast.binop option =
  match t with
  | Lexer.OP op -> Some op
  | Lexer.PLUS -> Some Ast.Add
  | _ -> None

(* rhs of `r := ...` *)
let parse_rhs (st : state) (dst : Ast.reg) : Ast.instr =
  (* [jralloc l] and [prmempty r] take an identifier argument; a bare
     keyword with nothing after it is an ordinary register read
     ([snew] takes no argument, so that name stays reserved) *)
  let next_is_ident =
    match st.toks with
    | _ :: { tok = Lexer.IDENT _; _ } :: _ -> true
    | _ -> false
  in
  match (peek st).tok with
  | Lexer.IDENT "jralloc" when next_is_ident ->
      advance st;
      let l = expect_ident st ~what:"join continuation label" in
      Ast.Jralloc (dst, l)
  | Lexer.IDENT "snew" ->
      advance st;
      Ast.Snew dst
  | Lexer.IDENT "prmempty" when next_is_ident ->
      advance st;
      let r = expect_ident st ~what:"stack register" in
      Ast.Prmempty (dst, r)
  | Lexer.IDENT "mem"
    when (match st.toks with
         | _ :: { tok = Lexer.LBRACKET; _ } :: _ -> true
         | _ -> false) ->
      (* one-token lookahead: bare [mem] not followed by '[' is an
         ordinary register named "mem", not a load *)
      advance st;
      let base, off = parse_addr_rest st in
      Ast.Load (dst, base, off)
  | _ -> (
      let v1 = parse_operand st in
      match binop_of_token (peek st).tok with
      | Some op ->
          advance st;
          let v2 = parse_operand st in
          Ast.Binop (dst, op, v1, v2)
      | None -> Ast.Mov (dst, v1))

type raw_instr = Instr of Ast.instr | Term of Ast.terminator

let parse_instr (st : state) : raw_instr =
  let t = peek st in
  let next_is_assign =
    match st.toks with
    | _ :: { tok = Lexer.ASSIGN; _ } :: _ -> true
    | _ -> false
  in
  match t.tok with
  (* an identifier directly followed by ':=' is always an assignment
     target, even when it collides with an instruction keyword — this
     keeps registers named [mem], [fork], [halt], … round-trippable *)
  | Lexer.IDENT dst when next_is_assign ->
      advance st;
      advance st;
      Instr (parse_rhs st dst)
  | Lexer.IDENT "jump" ->
      advance st;
      Term (Ast.Jump (parse_operand st))
  | Lexer.IDENT "halt" ->
      advance st;
      Term Ast.Halt
  | Lexer.IDENT "join" ->
      advance st;
      Term (Ast.Join (expect_ident st ~what:"join register"))
  | Lexer.IDENT "if-jump" ->
      advance st;
      let r = expect_ident st ~what:"branch register" in
      expect st Lexer.COMMA ~what:"',' in if-jump";
      Instr (Ast.If_jump (r, parse_operand st))
  | Lexer.IDENT "fork" ->
      advance st;
      let jr = expect_ident st ~what:"join register" in
      expect st Lexer.COMMA ~what:"',' in fork";
      Instr (Ast.Fork (jr, parse_operand st))
  | Lexer.IDENT "salloc" ->
      advance st;
      let r = expect_ident st ~what:"stack register" in
      expect st Lexer.COMMA ~what:"',' in salloc";
      Instr (Ast.Salloc (r, expect_int st ~what:"cell count"))
  | Lexer.IDENT "sfree" ->
      advance st;
      let r = expect_ident st ~what:"stack register" in
      expect st Lexer.COMMA ~what:"',' in sfree";
      Instr (Ast.Sfree (r, expect_int st ~what:"cell count"))
  | Lexer.IDENT "prmpush" ->
      advance st;
      expect st (Lexer.IDENT "mem") ~what:"'mem' after prmpush";
      let base, off = parse_addr_rest st in
      Instr (Ast.Prmpush (base, off))
  | Lexer.IDENT "prmpop" ->
      advance st;
      expect st (Lexer.IDENT "mem") ~what:"'mem' after prmpop";
      let base, off = parse_addr_rest st in
      Instr (Ast.Prmpop (base, off))
  | Lexer.IDENT "prmsplit" ->
      advance st;
      let rs = expect_ident st ~what:"stack register" in
      expect st Lexer.COMMA ~what:"',' in prmsplit";
      Instr (Ast.Prmsplit (rs, expect_ident st ~what:"destination register"))
  | Lexer.IDENT "mem" ->
      advance st;
      let base, off = parse_addr_rest st in
      expect st Lexer.ASSIGN ~what:"':=' in store";
      Instr (Ast.Store (base, off, parse_operand st))
  | Lexer.IDENT dst -> (
      advance st;
      match (peek st).tok with
      | Lexer.ASSIGN ->
          advance st;
          Instr (parse_rhs st dst)
      | other -> error t "expected ':=' after %S, found %a" dst Lexer.pp_token other)
  | other -> error t "expected instruction, found %a" Lexer.pp_token other

let parse_annot (st : state) : Ast.annot =
  expect st Lexer.LBRACKET ~what:"'[' opening annotation";
  let annot =
    match (peek st).tok with
    | Lexer.DOT ->
        advance st;
        Ast.Plain
    | Lexer.IDENT "prppt" ->
        advance st;
        Ast.Prppt (expect_ident st ~what:"handler label")
    | Lexer.IDENT "jtppt" ->
        advance st;
        let policy =
          match (next st).tok with
          | Lexer.IDENT "assoc" -> Ast.Assoc
          | Lexer.IDENT "assoc-comm" -> Ast.Assoc_comm
          | other ->
              error (peek st) "expected join policy, found %a" Lexer.pp_token
                other
        in
        expect st Lexer.SEMI ~what:"';' after join policy";
        expect st Lexer.LBRACE ~what:"'{' opening renaming";
        let renaming = ref [] in
        (if (peek st).tok <> Lexer.RBRACE then
           let rec pairs () =
             let src = expect_ident st ~what:"source register" in
             expect st Lexer.ARROW ~what:"'->' in renaming";
             let dstr = expect_ident st ~what:"target register" in
             renaming := (src, dstr) :: !renaming;
             if (peek st).tok = Lexer.COMMA then begin
               advance st;
               pairs ()
             end
           in
           pairs ());
        expect st Lexer.RBRACE ~what:"'}' closing renaming";
        expect st Lexer.SEMI ~what:"';' after renaming";
        let comb = expect_ident st ~what:"combining block label" in
        Ast.Jtppt (policy, List.rev !renaming, comb)
    | other -> error (peek st) "expected annotation, found %a" Lexer.pp_token other
  in
  expect st Lexer.RBRACKET ~what:"']' closing annotation";
  annot

let parse_block_body (st : state) ~(label : string) : Ast.block =
  let annot = parse_annot st in
  let instrs = ref [] in
  let term = ref None in
  let rec loop () =
    skip_newlines st;
    match (peek st).tok with
    | Lexer.EOF -> ()
    | Lexer.IDENT _ when !term <> None -> ()
    | _ -> (
        (* A new block starts with `IDENT :` — look ahead one token. *)
        match st.toks with
        | { tok = Lexer.IDENT _; _ } :: { tok = Lexer.COLON; _ } :: _ -> ()
        | _ ->
            (match parse_instr st with
            | Instr i ->
                if !term <> None then
                  error (peek st)
                    "instruction after block terminator in block %S" label
                else instrs := i :: !instrs
            | Term t ->
                if !term <> None then
                  error (peek st) "two terminators in block %S" label
                else term := Some t);
            (* instruction separators: newline or ';' *)
            (match (peek st).tok with
            | Lexer.SEMI | Lexer.NEWLINE -> advance st
            | Lexer.EOF -> ()
            | other ->
                error (peek st) "expected end of instruction, found %a"
                  Lexer.pp_token other);
            loop ())
  in
  loop ();
  match !term with
  | None -> error (peek st) "block %S has no terminator (jump/halt/join)" label
  | Some term -> { Ast.annot; body = List.rev !instrs; term }

let parse_program_tokens (st : state) : Ast.program =
  skip_newlines st;
  let blocks = ref [] in
  let rec loop () =
    skip_newlines st;
    match (peek st).tok with
    | Lexer.EOF -> ()
    | _ ->
        let label = expect_ident st ~what:"block label" in
        expect st Lexer.COLON ~what:"':' after block label";
        let block = parse_block_body st ~label in
        blocks := (label, block) :: !blocks;
        loop ()
  in
  loop ();
  match List.rev !blocks with
  | [] -> error (peek st) "empty program"
  | (entry, _) :: _ as blocks -> { Ast.entry; blocks }

(* Fix up the register/label ambiguity: identifiers naming blocks are
   labels. *)
let resolve_labels (p : Ast.program) : Ast.program =
  let is_label l = List.mem_assoc l p.blocks in
  let operand = function
    | Ast.Reg r when is_label r -> Ast.Lab r
    | v -> v
  in
  let instr = function
    | Ast.Mov (r, v) -> Ast.Mov (r, operand v)
    | Ast.Binop (r, op, v1, v2) -> Ast.Binop (r, op, operand v1, operand v2)
    | Ast.If_jump (r, v) -> Ast.If_jump (r, operand v)
    | Ast.Fork (jr, v) -> Ast.Fork (jr, operand v)
    | Ast.Store (r, n, v) -> Ast.Store (r, n, operand v)
    | (Ast.Jralloc _ | Ast.Snew _ | Ast.Salloc _ | Ast.Sfree _ | Ast.Load _
      | Ast.Prmpush _ | Ast.Prmpop _ | Ast.Prmempty _ | Ast.Prmsplit _) as i ->
        i
  in
  let term = function
    | Ast.Jump v -> Ast.Jump (operand v)
    | (Ast.Halt | Ast.Join _) as t -> t
  in
  let block (b : Ast.block) =
    { b with Ast.body = List.map instr b.body; term = term b.term }
  in
  { p with Ast.blocks = List.map (fun (l, b) -> (l, block b)) p.blocks }

(** [parse src] parses a complete program from source text.  The entry
    point is the first block.  Raises {!Error} or {!Lexer.Error}. *)
let parse (src : string) : Ast.program =
  let st = { toks = Lexer.tokens src } in
  resolve_labels (parse_program_tokens st)

(** [parse_result src] is {!parse} with errors reified as a
    human-readable message. *)
let parse_result (src : string) : (Ast.program, string) result =
  match parse src with
  | p -> Ok p
  | exception Error { line; col; message } ->
      Result.Error (Printf.sprintf "parse error at %d:%d: %s" line col message)
  | exception Lexer.Error { line; col; message } ->
      Result.Error (Printf.sprintf "lex error at %d:%d: %s" line col message)
