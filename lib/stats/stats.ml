(** Summary statistics used throughout the benchmark harness: means,
    geometric means (the paper reports geomeans for every figure),
    normalisation and speedup helpers. *)

let mean (xs : float list) : float =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(** Geometric mean; requires strictly positive inputs (returns [nan]
    otherwise, mirroring how a log would fail). *)
let geomean (xs : float list) : float =
  match xs with
  | [] -> nan
  | _ ->
      if List.exists (fun x -> x <= 0.) xs then nan
      else
        exp
          (List.fold_left (fun acc x -> acc +. log x) 0. xs
          /. float_of_int (List.length xs))

(* Like [mean]/[geomean], the extrema of an empty sample are [nan]
   (not ±infinity, which would silently poison downstream ratios). *)
let min_l (xs : float list) : float =
  match xs with [] -> nan | _ -> List.fold_left min infinity xs

let max_l (xs : float list) : float =
  match xs with [] -> nan | _ -> List.fold_left max neg_infinity xs

let stddev (xs : float list) : float =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

(** [speedup ~baseline t] — how many times faster than [baseline] a
    time [t] is. *)
let speedup ~(baseline : float) (t : float) : float =
  if t = 0. then nan else baseline /. t

(** [normalized ~baseline t] — execution time normalized to a baseline
    (the y-axis of Figures 6, 8, 9 and 13). *)
let normalized ~(baseline : float) (t : float) : float =
  if baseline = 0. then nan else t /. baseline

(** Percentage change of [b] relative to [a]: positive = [b] larger. *)
let percent_change ~(from_ : float) (to_ : float) : float =
  if from_ = 0. then nan else (to_ -. from_) /. from_ *. 100.

let clamp ~lo ~hi (x : float) : float = Float.min hi (Float.max lo x)

(** Re-exports of the sibling modules, so that [Stats] is the single
    entry point of the library ([stats.ml] is the library interface
    module; without these aliases [Table] and [Chrome_trace] would be
    hidden). *)
module Table = Table

module Chrome_trace = Chrome_trace
