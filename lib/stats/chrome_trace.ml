(** Chrome [trace_event]-format JSON emitter (the "JSON Array Format"
    of the Trace Event spec), loadable in [chrome://tracing] and
    Perfetto ([https://ui.perfetto.dev]).

    This module is generic: it knows nothing about any producer.  A
    trace is a list of {!event}s; producers map their own timelines
    onto processes ([pid]), threads ([tid]) and timestamps (µs, as the
    viewers expect).  Only the event phases the viewers actually render
    are supported: complete spans ([ph:"X"]), thread-scoped instants
    ([ph:"i"]), counters ([ph:"C"]) and the metadata records that name
    processes and threads ([ph:"M"]). *)

type arg = Int of int | Float of float | Str of string

type event = {
  ph : string;
  name : string;
  cat : string;
  pid : int;
  tid : int;
  ts : float;  (** microseconds *)
  dur : float option;  (** microseconds; complete events only *)
  scope : string option;  (** instant events: "t" = thread *)
  args : (string * arg) list;
}

let complete ?(cat = "") ?(args = []) ~(name : string) ~(pid : int)
    ~(tid : int) ~(ts : float) ~(dur : float) () : event =
  { ph = "X"; name; cat; pid; tid; ts; dur = Some dur; scope = None; args }

let instant ?(cat = "") ?(args = []) ~(name : string) ~(pid : int)
    ~(tid : int) ~(ts : float) () : event =
  { ph = "i"; name; cat; pid; tid; ts; dur = None; scope = Some "t"; args }

let counter ?(cat = "") ~(name : string) ~(pid : int) ~(ts : float)
    (series : (string * float) list) : event =
  { ph = "C"; name; cat; pid; tid = 0; ts; dur = None; scope = None;
    args = List.map (fun (k, v) -> (k, Float v)) series }

let thread_name ~(pid : int) ~(tid : int) (name : string) : event =
  { ph = "M"; name = "thread_name"; cat = ""; pid; tid; ts = 0.; dur = None;
    scope = None; args = [ ("name", Str name) ] }

let process_name ~(pid : int) (name : string) : event =
  { ph = "M"; name = "process_name"; cat = ""; pid; tid = 0; ts = 0.;
    dur = None; scope = None; args = [ ("name", Str name) ] }

(* JSON string escaping: quotes, backslashes, and control characters
   (the spec is plain JSON, so U+0000–U+001F must be \u-escaped). *)
let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON numbers: no NaN/infinity; clamp to 0 rather than emit invalid
   output. *)
let number (x : float) : string =
  if Float.is_nan x || Float.abs x = infinity then "0"
  else Printf.sprintf "%.3f" x

let arg_to_json = function
  | Int n -> string_of_int n
  | Float x -> number x
  | Str s -> "\"" ^ escape s ^ "\""

let event_to_json (e : event) : string =
  let buf = Buffer.create 128 in
  let field k v = Buffer.add_string buf (Printf.sprintf ",\"%s\":%s" k v) in
  Buffer.add_string buf (Printf.sprintf "{\"ph\":\"%s\"" (escape e.ph));
  field "name" ("\"" ^ escape e.name ^ "\"");
  if e.cat <> "" then field "cat" ("\"" ^ escape e.cat ^ "\"");
  field "pid" (string_of_int e.pid);
  field "tid" (string_of_int e.tid);
  field "ts" (number e.ts);
  Option.iter (fun d -> field "dur" (number d)) e.dur;
  Option.iter (fun s -> field "s" ("\"" ^ escape s ^ "\"")) e.scope;
  if e.args <> [] then
    field "args"
      ("{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "\"%s\":%s" (escape k) (arg_to_json v))
             e.args)
      ^ "}");
  Buffer.add_char buf '}';
  Buffer.contents buf

(** [to_string events] renders a complete trace document:
    [{"traceEvents":[...]}]. *)
let to_string (events : event list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (event_to_json e))
    events;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ns\"}";
  Buffer.contents buf

(** [write oc events] writes the trace document to [oc]. *)
let write (oc : out_channel) (events : event list) : unit =
  output_string oc (to_string events)
