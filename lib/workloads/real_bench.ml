(** Named registry of real workload kernels with deterministic inputs
    and integer checksums — the shared vocabulary of the benchmark
    pipeline ([bench/main.ml --par-bench]), the repro CLI
    ([repro_cli --workload NAME --domains N]), and the multi-domain
    equality tests: every consumer runs the same kernel on the same
    input through any {!Exec.S} executor and compares checksums.

    Every entry is {e schedule-deterministic}: its checksum is
    identical under the serial executor, the single-domain heartbeat
    runtime, and the multi-domain runtime at any domain count.  That
    is by construction — fixed reduction trees (plus_reduce, spmv),
    disjoint index writes with a join between dependent sweeps
    (mergesort, mandelbrot, kmeans, srad), a benign self-row race
    with a zero diagonal (floyd_warshall) — except for knapsack, whose
    node count is schedule-dependent; its checksum is the optimum
    only, which the monotone atomic incumbent makes exact under any
    schedule.

    Inputs are regenerated per run from fixed PRNG seeds; kernels
    that mutate their input copy the pristine array first, so a
    registry entry can be executed any number of times in any
    order. *)

type t = {
  name : string;
  descr : string;
  base_items : scale:int -> int;
      (** nominal input size at a given scale, for reporting *)
  run : (module Exec.S) -> scale:int -> int;
      (** build the deterministic input, run the kernel, return the
          checksum *)
}

(* Fold a float into a checksum exactly: schedule-determinism above is
   bit-level, so no tolerance is needed or wanted. *)
let float_bits (x : float) : int =
  Int64.to_int (Int64.bits_of_float x) land max_int

let seed = 0xBEA7

let plus_reduce =
  let n ~scale = 400_000 * scale in
  {
    name = "plus_reduce";
    descr = "sum of a large float array (fixed reduction tree)";
    base_items = (fun ~scale -> n ~scale);
    run =
      (fun (module E : Exec.S) ~scale ->
        let rng = Sim.Prng.create ~seed in
        let a = Plus_reduce.input ~rng ~n:(n ~scale) in
        float_bits (Plus_reduce.sum (module E) a));
  }

let mergesort =
  let n ~scale = 200_000 * scale in
  {
    name = "mergesort";
    descr = "parallel mergesort with parallel merge";
    base_items = (fun ~scale -> n ~scale);
    run =
      (fun (module E : Exec.S) ~scale ->
        let rng = Sim.Prng.create ~seed in
        let a = Mergesort.uniform_input ~rng ~n:(n ~scale) in
        Mergesort.sort (module E) a;
        if not (Mergesort.sorted a) then
          failwith "real_bench: mergesort produced an unsorted array";
        Mergesort.checksum a);
  }

let mandelbrot =
  let height ~scale = 120 * scale in
  let width = 400 in
  {
    name = "mandelbrot";
    descr = "escape-time fractal render (irregular rows)";
    base_items = (fun ~scale -> width * height ~scale);
    run =
      (fun (module E : Exec.S) ~scale ->
        let img =
          Mandelbrot.render (module E) ~width ~height:(height ~scale) ()
        in
        Mandelbrot.checksum img);
  }

let spmv =
  let nrows ~scale = 30_000 * scale in
  {
    name = "spmv";
    descr = "sparse matrix-vector product, power-law rows";
    base_items = (fun ~scale -> nrows ~scale);
    run =
      (fun (module E : Exec.S) ~scale ->
        let rng = Sim.Prng.create ~seed in
        let nrows = nrows ~scale in
        let m = Csr.powerlaw ~rng ~nrows ~ncols:nrows ~max_row_len:64 () in
        let x =
          Array.init nrows (fun i -> 1.0 +. (float_of_int (i mod 13) /. 13.))
        in
        let y = Array.make nrows 0. in
        Csr.spmv (module E) m x y;
        Array.fold_left (fun acc v -> acc lxor float_bits v) 0 y);
  }

let kmeans =
  let n ~scale = 12_000 * scale in
  {
    name = "kmeans";
    descr = "Lloyd iterations, 8-d points, k=12";
    base_items = (fun ~scale -> n ~scale);
    run =
      (fun (module E : Exec.S) ~scale ->
        let rng = Sim.Prng.create ~seed in
        let st = Kmeans.create ~rng ~n:(n ~scale) ~dims:8 ~k:12 in
        let (_ : int) = Kmeans.run (module E) st ~rounds:5 in
        Kmeans.checksum st);
  }

let srad =
  let rows ~scale = 120 * scale in
  {
    name = "srad";
    descr = "speckle-reducing anisotropic diffusion, 2 sweeps/iter";
    base_items = (fun ~scale -> rows ~scale * 160);
    run =
      (fun (module E : Exec.S) ~scale ->
        let rng = Sim.Prng.create ~seed in
        let st = Srad.create ~rng ~rows:(rows ~scale) ~cols:160 in
        Srad.run (module E) st ~iterations:4;
        float_bits (Srad.checksum st));
  }

let floyd_warshall =
  (* cubic kernel: scale the vertex count sub-linearly *)
  let n ~scale = 96 + (32 * (scale - 1)) in
  {
    name = "floyd_warshall";
    descr = "all-pairs shortest paths (benign zero-diagonal race)";
    base_items = (fun ~scale -> n ~scale);
    run =
      (fun (module E : Exec.S) ~scale ->
        let rng = Sim.Prng.create ~seed in
        let dist = Floyd_warshall.random_graph ~rng ~n:(n ~scale) () in
        Floyd_warshall.run (module E) dist;
        Floyd_warshall.checksum dist);
  }

let knapsack =
  (* exponential kernel: fixed item count; the checksum is the optimum
     only (node counts are schedule-dependent under parallel pruning) *)
  let items = 26 in
  {
    name = "knapsack";
    descr = "branch-and-bound 0/1 knapsack (optimum checksummed)";
    base_items = (fun ~scale:_ -> items);
    run =
      (fun (module E : Exec.S) ~scale:_ ->
        let rng = Sim.Prng.create ~seed in
        let inst = Knapsack.instance ~rng ~n:items in
        let r = Knapsack.search (module E) inst in
        r.best);
  }

let all : t list =
  [
    plus_reduce;
    mergesort;
    mandelbrot;
    spmv;
    kmeans;
    srad;
    floyd_warshall;
    knapsack;
  ]

let names : string list = List.map (fun b -> b.name) all

let find (name : string) : t option =
  List.find_opt (fun b -> b.name = name) all

(** [run_serial b ~scale] — the reference executor, for checksum and
    wall-clock baselines. *)
let run_serial (b : t) ~(scale : int) : int =
  b.run (module Exec.Serial) ~scale
