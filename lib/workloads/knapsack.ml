(** knapsack: the branch-and-bound 0/1 knapsack search ported from the
    Cilk benchmark suite (the paper's 36-item input).

    The search tree forks at every item (take / leave) and prunes with
    the fractional-relaxation upper bound against the best value seen
    so far.  It is the paper's only non-deterministic benchmark: the
    amount of work depends on how quickly good incumbents propagate,
    i.e. on the schedule.  Under a shared incumbent this implementation
    is deterministic for the serial executor and near-deterministic in
    simulation (the simulator does not model incumbent races; the
    workload registry scales parallel work by a documented speculation
    factor instead). *)

type item = { value : int; weight : int }

type instance = { items : item array; capacity : int }

(** Deterministic instance in the style of the Cilk suite inputs:
    weights and values correlated with noise, capacity at about half
    the total weight.  Items are pre-sorted by value density, as the
    bound requires. *)
let instance ~(rng : Sim.Prng.t) ~(n : int) : instance =
  let items =
    Array.init n (fun _ ->
        let weight = 1 + Sim.Prng.int rng 100 in
        let value = weight + Sim.Prng.int rng 50 in
        { value; weight })
  in
  Array.sort
    (fun a b ->
      compare
        (float_of_int b.value /. float_of_int b.weight)
        (float_of_int a.value /. float_of_int a.weight))
    items;
  let total = Array.fold_left (fun acc it -> acc + it.weight) 0 items in
  { items; capacity = total * 2 / 5 }

(* Fractional-relaxation upper bound from item [i] with [cap] budget. *)
let bound (inst : instance) (i : int) (cap : int) (value : int) : float =
  let n = Array.length inst.items in
  let rec go i cap acc =
    if i >= n || cap = 0 then acc
    else
      let it = inst.items.(i) in
      if it.weight <= cap then go (i + 1) (cap - it.weight) (acc +. float_of_int it.value)
      else
        acc
        +. (float_of_int it.value *. float_of_int cap /. float_of_int it.weight)
  in
  go i cap (float_of_int value)

type result = { best : int; nodes : int }

(* Monotone CAS-max: a racing writer can only lose to a *larger*
   incumbent, so the optimum is never overwritten by a stale lower
   value (the plain read-check-write it replaces could do exactly
   that under real domains). *)
let rec raise_to (best : int Atomic.t) (value : int) : unit =
  let cur = Atomic.get best in
  if value > cur && not (Atomic.compare_and_set best cur value) then
    raise_to best value

(** Exhaustive branch-and-bound search.  The incumbent is shared
    through a monotone atomic, so parallel executors racing on it only
    prune more or less — never produce a wrong optimum.  [nodes] is
    schedule-dependent under parallel pruning; [best] is the
    deterministic part of the result. *)
let search (module E : Exec.S) (inst : instance) : result =
  let best = Atomic.make 0 in
  let nodes = Atomic.make 0 in
  let n = Array.length inst.items in
  let rec go i cap value =
    ignore (Atomic.fetch_and_add nodes 1);
    raise_to best value;
    if i < n && bound inst i cap value > float_of_int (Atomic.get best)
    then begin
      let it = inst.items.(i) in
      if it.weight <= cap then
        E.fork2
          (fun () -> go (i + 1) (cap - it.weight) (value + it.value))
          (fun () -> go (i + 1) cap value)
      else go (i + 1) cap value
    end
  in
  go 0 inst.capacity 0;
  { best = Atomic.get best; nodes = Atomic.get nodes }

let search_serial (inst : instance) : result =
  search (module Exec.Serial) inst

(** Serial dynamic-programming reference for validating the optimum
    on moderate capacities. *)
let dp_optimum (inst : instance) : int =
  let cap = inst.capacity in
  let table = Array.make (cap + 1) 0 in
  Array.iter
    (fun it ->
      for c = cap downto it.weight do
        table.(c) <- max table.(c) (table.(c - it.weight) + it.value)
      done)
    inst.items;
  table.(cap)
