(** Multi-pool sharding: N {!Serve.Pool}s, each owning its own warm
    {!Par.Runtime} session over a disjoint domain set, behind a
    {!Router} placement policy and a per-shard micro-{!Batch}er — the
    space-sharing layer ROADMAP item 2 asks for.  One pool runs one
    request at a time (the heartbeat's outermost-first discipline is
    per-session); the shard layer restores concurrency {e between}
    requests by partitioning the hardware, so a small request routed
    to the small shard never waits behind a large request grinding on
    another shard's domains.

    Tickets are shard-level: the caller never sees which pool served
    a request.  Resolution is push-based end to end — each pool
    submission carries an [on_resolve] hook, and batched members are
    fanned back out when their batch's single pool ticket resolves —
    so the socket front-end ({!Server}) needs no await-thread per
    in-flight request.

    Lock order is strictly [shard.m -> pool.m]; pool callbacks run
    with no pool lock held and take [shard.m], and everything the
    shard stages for user callbacks runs after [shard.m] drops
    (mirroring the pool's own [run_cbs] discipline). *)

type config = {
  shards : int;  (** pool count; 1 = the single-pool FIFO baseline *)
  pool : Serve.Pool.config;  (** per-shard pool template (domain count
                                 here is {e per shard}) *)
  policy : Router.policy;
  batch_max : int;  (** members per micro-batch; <= 1 disables batching *)
  batch_delay_us : float;  (** max wait for a partial batch to fill *)
  batch_size_max : int;
      (** only requests with [size <=] this are batched (small
          requests — the same units as the router's [small_max]) *)
  on_route : (shard:int -> size:int -> unit) option;
      (** observability hook, fired per placement decision under the
          shard lock — must be cheap and must not call back in *)
  on_batch : (n:int -> wait_us:int -> unit) option;
      (** observability hook, fired per batch flush under the shard
          lock *)
}

let default_config =
  {
    shards = 2;
    pool = Serve.Pool.default_config;
    policy = Router.Size_aware { small_max = 4 };
    batch_max = 1;
    batch_delay_us = 200.;
    batch_size_max = 4;
    on_route = None;
    on_batch = None;
  }

type ticket = int

(* A small request parked for batching: everything needed to submit it
   later and to resolve it per-member afterwards. *)
type member = {
  ticket : ticket;
  work : Serve.Pool.work;
  deadline_abs : float;
  size : int;
  enqueued : float;
}

type target =
  | Parked of int  (** shard index; still in that shard's batcher *)
  | Submitted of { shard : int; pt : Serve.Pool.ticket }
  | Batched of { shard : int }
      (** flushed as part of a batch; no longer individually
          cancellable *)

type shard_stats = {
  routed : int;  (** placement decisions that picked this shard *)
  depth : int;  (** instantaneous pool backlog *)
  batch : Batch.stats;
  pool : Serve.Pool.stats;
}

type stats = {
  policy : string;
  submitted : int;
  batched_members : int;  (** requests that travelled inside a batch *)
  per_shard : shard_stats array;
}

type t = {
  cfg : config;
  pools : Serve.Pool.t array;
  m : Mutex.t;
  cv : Condition.t;
  results :
    (ticket, (Serve.Pool.completion, Serve.Pool.error) result) Hashtbl.t;
  cbs :
    ( ticket,
      (Serve.Pool.completion, Serve.Pool.error) result -> unit )
    Hashtbl.t;
  mutable pending_cbs : (unit -> unit) list;
  targets : (ticket, target) Hashtbl.t;
  batchers : member Batch.t array;
  mutable next : int;
  mutable submitted : int;
  routed : int array;
  mutable batched_members : int;
  mutable closing : bool;
  mutable final : Serve.Pool.stats array option;  (** set once closed *)
  mutable flusher : Thread.t option;
  flusher_stop : bool Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* Resolution plumbing (the pool's run_cbs discipline, one level up). *)

let resolve_locked (t : t) (id : ticket)
    (res : (Serve.Pool.completion, Serve.Pool.error) result) : unit =
  Hashtbl.remove t.targets id;
  Hashtbl.replace t.results id res;
  (match Hashtbl.find_opt t.cbs id with
  | Some cb ->
      Hashtbl.remove t.cbs id;
      t.pending_cbs <- (fun () -> cb res) :: t.pending_cbs
  | None -> ());
  Condition.broadcast t.cv

let run_cbs (t : t) : unit =
  Mutex.lock t.m;
  let cbs = t.pending_cbs in
  t.pending_cbs <- [];
  Mutex.unlock t.m;
  List.iter (fun f -> try f () with _ -> ()) (List.rev cbs)

(* ------------------------------------------------------------------ *)
(* Batched execution. *)

let batchable : Serve.Pool.work -> bool = function
  | Serve.Pool.Tpal _ -> false  (* result shape is per-program, not a
                                   checksum — always a direct submit *)
  | Serve.Pool.Kernel _ | Serve.Pool.Thunk _ -> true

let exec_member (e : (module Workloads.Exec.S)) : Serve.Pool.work -> int =
  function
  | Serve.Pool.Kernel { bench; scale } -> bench.run e ~scale
  | Serve.Pool.Thunk f -> f e
  | Serve.Pool.Tpal _ -> assert false (* excluded by [batchable] *)

(* Fan a resolved batch back out to its members.  Runs on a
   pool-internal thread with no locks held. *)
let resolve_batch (t : t) (members : member array) (slots : int array)
    (res : (Serve.Pool.completion, Serve.Pool.error) result) : unit =
  Mutex.lock t.m;
  let now = Mclock.now_s () in
  Array.iteri
    (fun i m ->
      let r =
        match res with
        | Ok (_ : Serve.Pool.completion) ->
            (* per-member verdicts: the member's own checksum slot and
               its own deadline, not the batch's folded ones *)
            Ok
              {
                Serve.Pool.outcome = Serve.Pool.Checksum slots.(i);
                sojourn_s = now -. m.enqueued;
                met_deadline = now <= m.deadline_abs;
              }
        | Error e -> Error e
      in
      resolve_locked t m.ticket r)
    members;
  Mutex.unlock t.m;
  run_cbs t

(* Submit [members] as one session entry.  Called with [t.m] held. *)
let submit_batch_locked (t : t) (shard : int) (members : member list) : unit =
  match members with
  | [] -> ()
  | _ ->
      let arr = Array.of_list members in
      let k = Array.length arr in
      let slots = Array.make k 0 in
      let now = Mclock.now_s () in
      let dl_abs =
        Array.fold_left (fun a m -> Float.min a m.deadline_abs) infinity arr
      in
      let oldest =
        Array.fold_left (fun a m -> Float.min a m.enqueued) now arr
      in
      let deadline_s = Float.max 1e-4 (dl_abs -. now) in
      let size = Array.fold_left (fun a m -> a + m.size) 0 arr in
      let work =
        Serve.Pool.Thunk
          (fun e ->
            Array.iteri (fun i m -> slots.(i) <- exec_member e m.work) arr;
            Array.fold_left ( + ) 0 slots)
      in
      t.batched_members <- t.batched_members + k;
      (match t.cfg.on_batch with
      | Some f -> f ~n:k ~wait_us:(int_of_float ((now -. oldest) *. 1e6))
      | None -> ());
      (* batches are attributed to a synthetic tenant: DRR fairness
         already ran per-member at routing time; inside a shard the
         batch competes as one unit *)
      let submit_res =
        Serve.Pool.submit t.pools.(shard) ~tenant:"_batch" ~deadline_s ~size
          ~on_resolve:(fun res -> resolve_batch t arr slots res)
          work
      in
      (match submit_res with
      | Ok (_ : Serve.Pool.ticket) ->
          Array.iter
            (fun m -> Hashtbl.replace t.targets m.ticket (Batched { shard }))
            arr
      | Error e ->
          (* backpressure (or a closing pool) applies to every member *)
          Array.iter (fun m -> resolve_locked t m.ticket (Error e)) arr)

(* ------------------------------------------------------------------ *)

let flusher_loop (t : t) : unit =
  let tick =
    Float.min 0.005 (Float.max 5e-5 (t.cfg.batch_delay_us /. 2e6))
  in
  while not (Atomic.get t.flusher_stop) do
    Thread.delay tick;
    Mutex.lock t.m;
    if not t.closing then begin
      let now = Mclock.now_s () in
      Array.iteri
        (fun s b ->
          match Batch.poll b ~now with
          | Some ms -> submit_batch_locked t s ms
          | None -> ())
        t.batchers
    end;
    Mutex.unlock t.m;
    run_cbs t
  done

(** [create ?config ()] boots [config.shards] pools — each its own
    warm session with [config.pool.runtime.domains] worker domains —
    and, when batching is enabled, the batch flusher thread. *)
let create ?(config = default_config) () : t =
  if config.shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  if config.batch_max > 1 && config.batch_delay_us < 0. then
    invalid_arg "Shard.create: negative batch delay";
  let pools =
    Array.init config.shards (fun _ -> Serve.Pool.create ~config:config.pool ())
  in
  let t =
    {
      cfg = config;
      pools;
      m = Mutex.create ();
      cv = Condition.create ();
      results = Hashtbl.create 256;
      cbs = Hashtbl.create 256;
      pending_cbs = [];
      targets = Hashtbl.create 256;
      batchers =
        Array.init config.shards (fun _ ->
            Batch.create
              ~max:(max 1 config.batch_max)
              ~delay_s:(config.batch_delay_us /. 1e6));
      next = 0;
      submitted = 0;
      routed = Array.make config.shards 0;
      batched_members = 0;
      closing = false;
      final = None;
      flusher = None;
      flusher_stop = Atomic.make false;
    }
  in
  if config.batch_max > 1 then t.flusher <- Some (Thread.create flusher_loop t);
  t

let shard_count (t : t) : int = t.cfg.shards

(** Instantaneous per-shard backlog (the router's own input; exposed
    for tests and metrics). *)
let depths (t : t) : int array = Array.map Serve.Pool.depth t.pools

(** [submit t ~tenant ?deadline_s ?size ?on_resolve w]: route, then
    either park for micro-batching (small, batchable work when
    batching is on) or submit directly to the chosen shard's pool.
    Returns a shard-level ticket; [on_resolve] fires exactly once,
    with no shard lock held, when it resolves. *)
let submit (t : t) ~(tenant : string) ?deadline_s ?(size = 1)
    ?(on_resolve :
       ((Serve.Pool.completion, Serve.Pool.error) result -> unit) option)
    (w : Serve.Pool.work) : (ticket, Serve.Pool.error) result =
  (* depth probes take each pool's lock; do them before taking ours
     only if unneeded... they are needed under our routing decision,
     and [shard.m -> pool.m] is the sanctioned order, so probe inside *)
  Mutex.lock t.m;
  let r =
    if t.closing then Error Serve.Pool.Pool_closed
    else begin
      t.submitted <- t.submitted + 1;
      let id = t.next in
      t.next <- id + 1;
      let now = Mclock.now_s () in
      let dl_rel =
        match deadline_s with
        | Some d -> d
        | None -> t.cfg.pool.default_slo_s
      in
      let depths = Array.map Serve.Pool.depth t.pools in
      let shard = Router.route t.cfg.policy ~depths ~tenant ~size in
      t.routed.(shard) <- t.routed.(shard) + 1;
      (match t.cfg.on_route with Some f -> f ~shard ~size | None -> ());
      (match on_resolve with
      | Some cb -> Hashtbl.replace t.cbs id cb
      | None -> ());
      if t.cfg.batch_max > 1 && size <= t.cfg.batch_size_max && batchable w
      then begin
        let m =
          {
            ticket = id;
            work = w;
            deadline_abs = now +. dl_rel;
            size;
            enqueued = now;
          }
        in
        Hashtbl.replace t.targets id (Parked shard);
        (match Batch.add t.batchers.(shard) ~now m with
        | `Hold -> ()
        | `Flush ms -> submit_batch_locked t shard ms);
        Ok id
      end
      else begin
        match
          Serve.Pool.submit t.pools.(shard) ~tenant ~deadline_s:dl_rel ~size
            ~on_resolve:(fun res ->
              Mutex.lock t.m;
              resolve_locked t id res;
              Mutex.unlock t.m;
              run_cbs t)
            w
        with
        | Ok pt ->
            Hashtbl.replace t.targets id (Submitted { shard; pt });
            Ok id
        | Error e ->
            Hashtbl.remove t.cbs id;
            Error e
      end
    end
  in
  Mutex.unlock t.m;
  run_cbs t;
  r

(** [await ?timeout_s t ticket]: block until the ticket resolves
    (polling when a timeout is given, like {!Serve.Pool.await}). *)
let await ?timeout_s (t : t) (ticket : ticket) :
    (Serve.Pool.completion, Serve.Pool.error) result =
  let deadline = Option.map (fun s -> Mclock.now_s () +. s) timeout_s in
  Mutex.lock t.m;
  let rec wait () =
    match Hashtbl.find_opt t.results ticket with
    | Some r ->
        Mutex.unlock t.m;
        r
    | None -> (
        match deadline with
        | None ->
            Condition.wait t.cv t.m;
            wait ()
        | Some d ->
            if Mclock.now_s () > d then begin
              Mutex.unlock t.m;
              Error Serve.Pool.Timed_out
            end
            else begin
              Mutex.unlock t.m;
              Thread.delay 0.001;
              Mutex.lock t.m;
              wait ()
            end)
  in
  wait ()

let try_result (t : t) (ticket : ticket) :
    (Serve.Pool.completion, Serve.Pool.error) result option =
  Mutex.lock t.m;
  let r = Hashtbl.find_opt t.results ticket in
  Mutex.unlock t.m;
  r

(** [cancel t ticket]: parked members resolve immediately; directly
    submitted requests delegate to their pool's cooperative cancel.
    Members already flushed inside a batch are not individually
    cancellable ([false]) — the batch is one session entry. *)
let cancel ?(reason : Par.Runtime.cancel_reason = `Explicit) (t : t)
    (ticket : ticket) : bool =
  Mutex.lock t.m;
  let action =
    if Hashtbl.mem t.results ticket then `Miss
    else
      match Hashtbl.find_opt t.targets ticket with
      | Some (Parked shard) -> (
          match
            Batch.remove t.batchers.(shard) ~f:(fun m -> m.ticket = ticket)
          with
          | Some _ ->
              resolve_locked t ticket
                (Error (Serve.Pool.Cancelled reason));
              `Hit
          | None -> `Miss)
      | Some (Submitted { shard; pt }) -> `Pool (t.pools.(shard), pt)
      | Some (Batched _) | None -> `Miss
  in
  Mutex.unlock t.m;
  run_cbs t;
  match action with
  | `Hit -> true
  | `Miss -> false
  | `Pool (pool, pt) -> Serve.Pool.cancel ~reason pool pt

let stats_of (t : t) (pool_stats : Serve.Pool.stats array) : stats =
  {
    policy = Router.policy_name t.cfg.policy;
    submitted = t.submitted;
    batched_members = t.batched_members;
    per_shard =
      Array.init t.cfg.shards (fun i ->
          {
            routed = t.routed.(i);
            depth = Serve.Pool.depth t.pools.(i);
            batch = Batch.stats t.batchers.(i);
            pool = pool_stats.(i);
          });
  }

(** Live statistics (pools still running). *)
let stats (t : t) : stats =
  let pool_stats =
    match t.final with
    | Some s -> s
    | None -> Array.map Serve.Pool.stats t.pools
  in
  Mutex.lock t.m;
  let s = stats_of t pool_stats in
  Mutex.unlock t.m;
  s

(** [close t]: stop admission, flush every parked batch into its pool
    (so parked work gets the pools' typed drain semantics rather than
    silently vanishing), close the pools — in-flight work finishes,
    queued work resolves [Pool_closed] and flows back through the
    resolution hooks — and return final statistics.  Idempotent. *)
let close (t : t) : stats =
  Mutex.lock t.m;
  let first = not t.closing in
  t.closing <- true;
  if first then
    Array.iteri
      (fun s b -> submit_batch_locked t s (Batch.drain b))
      t.batchers;
  Mutex.unlock t.m;
  run_cbs t;
  if first then begin
    Atomic.set t.flusher_stop true;
    Option.iter Thread.join t.flusher;
    let pool_stats = Array.map Serve.Pool.close t.pools in
    Mutex.lock t.m;
    t.final <- Some pool_stats;
    Condition.broadcast t.cv;
    Mutex.unlock t.m;
    run_cbs t
  end
  else begin
    Mutex.lock t.m;
    while t.final = None do
      Condition.wait t.cv t.m
    done;
    Mutex.unlock t.m
  end;
  stats t
