(** The serving fabric's wire protocol: a versioned, length-prefixed
    binary framing, pure on both sides — {!encode} is a function to
    [string], {!Decoder} is a resumable push parser over byte chunks —
    so the whole codec is unit-testable without a socket in sight.

    Frame layout (all integers big-endian):

    {v
      +--------+---------+-----+----------------+
      | u32 len| u8 vers | u8 tag | body ...    |
      +--------+---------+-----+----------------+
    v}

    [len] counts everything after the length word (version byte, tag
    byte, body).  Design points, each pinned by a test in
    {!Suite_net}:

    - {b Partial reads}: the decoder buffers arbitrary chunk
      boundaries — a frame split at any byte position decodes
      identically to one delivered whole ([`Await] until complete).
    - {b Resync}: a frame whose {e body} is malformed (bad tag,
      truncated field, version mismatch) is consumed in full — the
      length prefix tells us where it ends — and reported as a typed
      [`Skip]; the stream stays decodable from the next frame on.
    - {b Oversized frames}: a length above [max_frame] means either a
      hostile peer or lost framing; there is no trustworthy resync
      point, so the decoder latches [`Dead] and the connection must be
      dropped.
    - {b Version mismatch}: a typed [Bad_version] skip, never an
      exception escape — old clients get a clean refusal, not a
      crash. *)

let version = 1

let default_max_frame = 1 lsl 20
(** 1 MiB: comfortably above any control frame; a [Prog] submission
    carrying a larger program than this is refused at encode time. *)

(** What a [Submit] asks the fabric to run. *)
type payload =
  | Synth of { n : int }
      (** the synthetic fill-and-fold kernel over [n] slots
          ({!Serve.Load.kernel}) — the load generator's workhorse; its
          checksum is a pure function of [n], so the client can audit
          the response *)
  | Kernel of { name : string; scale : int }
      (** a {!Workloads.Real_bench} registry kernel *)
  | Prog of { src : string }  (** TPAL program source, parsed server-side *)

(** Terminal status of a request, mirrored from {!Serve.Pool.error}
    plus the fabric's own refusals. *)
type status =
  | Done of { met : bool }  (** completed; [met] = within its deadline *)
  | Rejected_full  (** admission cap backpressure *)
  | Rejected_shed  (** degraded-mode shedding *)
  | Rejected_draining  (** server is shutting down gracefully *)
  | Cancelled of [ `Explicit | `Deadline | `Lease ]
  | Failed  (** request raised / machine stuck; detail in [info] *)
  | Closed  (** pool closed while the request was queued *)

type frame =
  | Hello of { client : string }
      (** first frame on a connection; [client] is a free-form id *)
  | Hello_ok of { shards : int }
      (** server accepts; advertises its shard count *)
  | Submit of {
      ticket : int;  (** client-chosen id, echoed on the response *)
      tenant : string;
      deadline_us : int;  (** relative deadline; 0 = server default *)
      size : int;  (** DRR service-size estimate, >= 1 *)
      payload : payload;
    }
  | Cancel of { ticket : int }
  | Response of {
      ticket : int;
      status : status;
      value : int;  (** checksum for [Done] on Synth/Kernel *)
      sojourn_us : int;  (** server-side admission -> completion *)
      info : string;  (** error detail / auxiliary text *)
    }
  | Metrics_request
  | Metrics of { body : string }
  | Drain of { pending : int }
      (** server notice: draining has begun; [pending] responses are
          still owed on this connection *)
  | Bye  (** client is done submitting; server may close after flush *)

type error =
  | Oversized of { len : int; max : int }
  | Bad_version of { got : int }
  | Bad_tag of { tag : int }
  | Bad_body of { tag : int; reason : string }

let pp_error ppf = function
  | Oversized { len; max } -> Fmt.pf ppf "oversized frame (%d > max %d)" len max
  | Bad_version { got } ->
      Fmt.pf ppf "protocol version mismatch (got %d, want %d)" got version
  | Bad_tag { tag } -> Fmt.pf ppf "unknown frame tag %d" tag
  | Bad_body { tag; reason } -> Fmt.pf ppf "malformed frame (tag %d): %s" tag reason

(* ------------------------------------------------------------------ *)
(* Encoding. *)

let tag_of : frame -> int = function
  | Hello _ -> 1
  | Hello_ok _ -> 2
  | Submit _ -> 3
  | Cancel _ -> 4
  | Response _ -> 5
  | Metrics_request -> 6
  | Metrics _ -> 7
  | Drain _ -> 8
  | Bye -> 9

let frame_name : frame -> string = function
  | Hello _ -> "hello"
  | Hello_ok _ -> "hello-ok"
  | Submit _ -> "submit"
  | Cancel _ -> "cancel"
  | Response _ -> "response"
  | Metrics_request -> "metrics-request"
  | Metrics _ -> "metrics"
  | Drain _ -> "drain"
  | Bye -> "bye"

let status_code : status -> int = function
  | Done { met = true } -> 0
  | Done { met = false } -> 1
  | Rejected_full -> 2
  | Rejected_shed -> 3
  | Rejected_draining -> 4
  | Cancelled `Explicit -> 5
  | Cancelled `Deadline -> 6
  | Cancelled `Lease -> 7
  | Failed -> 8
  | Closed -> 9

let status_of_code : int -> status option = function
  | 0 -> Some (Done { met = true })
  | 1 -> Some (Done { met = false })
  | 2 -> Some Rejected_full
  | 3 -> Some Rejected_shed
  | 4 -> Some Rejected_draining
  | 5 -> Some (Cancelled `Explicit)
  | 6 -> Some (Cancelled `Deadline)
  | 7 -> Some (Cancelled `Lease)
  | 8 -> Some Failed
  | 9 -> Some Closed
  | _ -> None

let put_u8 b v = Buffer.add_uint8 b (v land 0xFF)
let put_u16 b v = Buffer.add_uint16_be b (v land 0xFFFF)
let put_u32 b v = Buffer.add_int32_be b (Int32.of_int (v land 0xFFFFFFFF))
let put_i64 b v = Buffer.add_int64_be b (Int64.of_int v)

(* short string: u16 length (tenants, kernel names, client ids) *)
let put_str16 b s =
  if String.length s > 0xFFFF then invalid_arg "Wire: string exceeds u16";
  put_u16 b (String.length s);
  Buffer.add_string b s

(* long string: u32 length (program sources, metrics bodies) *)
let put_str32 b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_payload b = function
  | Synth { n } ->
      put_u8 b 0;
      put_u32 b n
  | Kernel { name; scale } ->
      put_u8 b 1;
      put_str16 b name;
      put_u16 b scale
  | Prog { src } ->
      put_u8 b 2;
      put_str32 b src

(** [encode f] is the full wire image of [f], length prefix included.
    Raises [Invalid_argument] only on caller errors the protocol
    cannot represent (a string over its length field's range, a frame
    over [max_frame]). *)
let encode ?(max_frame = default_max_frame) (f : frame) : string =
  let b = Buffer.create 64 in
  put_u32 b 0;
  (* placeholder length *)
  put_u8 b version;
  put_u8 b (tag_of f);
  (match f with
  | Hello { client } -> put_str16 b client
  | Hello_ok { shards } -> put_u16 b shards
  | Submit { ticket; tenant; deadline_us; size; payload } ->
      put_u32 b ticket;
      put_str16 b tenant;
      put_u32 b deadline_us;
      put_u16 b size;
      put_payload b payload
  | Cancel { ticket } -> put_u32 b ticket
  | Response { ticket; status; value; sojourn_us; info } ->
      put_u32 b ticket;
      put_u8 b (status_code status);
      put_i64 b value;
      put_u32 b sojourn_us;
      put_str16 b info
  | Metrics_request -> ()
  | Metrics { body } -> put_str32 b body
  | Drain { pending } -> put_u32 b pending
  | Bye -> ());
  let s = Buffer.to_bytes b in
  let body_len = Bytes.length s - 4 in
  if body_len > max_frame then
    invalid_arg
      (Printf.sprintf "Wire.encode: frame body %d exceeds max_frame %d"
         body_len max_frame);
  Bytes.set_int32_be s 0 (Int32.of_int body_len);
  Bytes.unsafe_to_string s

(* ------------------------------------------------------------------ *)
(* Decoding: a resumable cursor over one frame body. *)

exception Short of string

module Cur = struct
  type t = { buf : Bytes.t; mutable pos : int; stop : int }

  let make buf pos len = { buf; pos; stop = pos + len }

  let need (c : t) (n : int) (what : string) =
    if c.pos + n > c.stop then raise (Short what)

  let u8 c what =
    need c 1 what;
    let v = Bytes.get_uint8 c.buf c.pos in
    c.pos <- c.pos + 1;
    v

  let u16 c what =
    need c 2 what;
    let v = Bytes.get_uint16_be c.buf c.pos in
    c.pos <- c.pos + 2;
    v

  let u32 c what =
    need c 4 what;
    let v = Int32.to_int (Bytes.get_int32_be c.buf c.pos) land 0xFFFFFFFF in
    c.pos <- c.pos + 4;
    v

  let i64 c what =
    need c 8 what;
    let v = Int64.to_int (Bytes.get_int64_be c.buf c.pos) in
    c.pos <- c.pos + 8;
    v

  let str16 c what =
    let n = u16 c what in
    need c n what;
    let s = Bytes.sub_string c.buf c.pos n in
    c.pos <- c.pos + n;
    s

  let str32 c what =
    let n = u32 c what in
    need c n what;
    let s = Bytes.sub_string c.buf c.pos n in
    c.pos <- c.pos + n;
    s

  let leftover c = c.stop - c.pos
end

let decode_body ~(tag : int) (c : Cur.t) : (frame, error) result =
  let frame =
    try
      match tag with
      | 1 -> Ok (Hello { client = Cur.str16 c "hello.client" })
      | 2 -> Ok (Hello_ok { shards = Cur.u16 c "hello_ok.shards" })
      | 3 ->
          let ticket = Cur.u32 c "submit.ticket" in
          let tenant = Cur.str16 c "submit.tenant" in
          let deadline_us = Cur.u32 c "submit.deadline" in
          let size = Cur.u16 c "submit.size" in
          let payload =
            match Cur.u8 c "submit.payload.kind" with
            | 0 -> Synth { n = Cur.u32 c "synth.n" }
            | 1 ->
                let name = Cur.str16 c "kernel.name" in
                let scale = Cur.u16 c "kernel.scale" in
                Kernel { name; scale }
            | 2 -> Prog { src = Cur.str32 c "prog.src" }
            | k -> raise (Short (Printf.sprintf "payload kind %d" k))
          in
          Ok (Submit { ticket; tenant; deadline_us; size; payload })
      | 4 -> Ok (Cancel { ticket = Cur.u32 c "cancel.ticket" })
      | 5 ->
          let ticket = Cur.u32 c "response.ticket" in
          let sc = Cur.u8 c "response.status" in
          let value = Cur.i64 c "response.value" in
          let sojourn_us = Cur.u32 c "response.sojourn" in
          let info = Cur.str16 c "response.info" in
          (match status_of_code sc with
          | Some status ->
              Ok (Response { ticket; status; value; sojourn_us; info })
          | None -> raise (Short (Printf.sprintf "status code %d" sc)))
      | 6 -> Ok Metrics_request
      | 7 -> Ok (Metrics { body = Cur.str32 c "metrics.body" })
      | 8 -> Ok (Drain { pending = Cur.u32 c "drain.pending" })
      | 9 -> Ok Bye
      | _ -> Error (Bad_tag { tag })
    with Short what -> Error (Bad_body { tag; reason = what })
  in
  match frame with
  | Ok _ when Cur.leftover c > 0 ->
      (* trailing garbage inside a framed body is a malformed frame,
         not an extension point — reject it loudly *)
      Error
        (Bad_body
           { tag; reason = Printf.sprintf "%d trailing bytes" (Cur.leftover c) })
  | r -> r

(* ------------------------------------------------------------------ *)

(** A resumable frame decoder: feed it byte chunks of any size, pull
    frames until [`Await].  Single-consumer; not thread-safe. *)
module Decoder = struct
  type t = {
    mutable buf : Bytes.t;
    mutable start : int;  (** first unconsumed byte *)
    mutable len : int;  (** buffered bytes from [start] *)
    max_frame : int;
    mutable dead : error option;
    mutable frames : int;  (** well-formed frames decoded *)
    mutable skipped : int;  (** malformed frames skipped *)
  }

  let create ?(max_frame = default_max_frame) () : t =
    {
      buf = Bytes.create 4096;
      start = 0;
      len = 0;
      max_frame;
      dead = None;
      frames = 0;
      skipped = 0;
    }

  let buffered (d : t) : int = d.len
  let frames (d : t) : int = d.frames
  let skipped (d : t) : int = d.skipped

  (* slide/grow so [n] more bytes fit after start+len *)
  let reserve (d : t) (n : int) : unit =
    let cap = Bytes.length d.buf in
    if d.start + d.len + n > cap then
      if d.len + n <= cap then begin
        Bytes.blit d.buf d.start d.buf 0 d.len;
        d.start <- 0
      end
      else begin
        let cap' = max (d.len + n) (2 * cap) in
        let nb = Bytes.create cap' in
        Bytes.blit d.buf d.start nb 0 d.len;
        d.buf <- nb;
        d.start <- 0
      end

  let feed (d : t) (src : Bytes.t) (off : int) (n : int) : unit =
    if n < 0 || off < 0 || off + n > Bytes.length src then
      invalid_arg "Wire.Decoder.feed: bad range";
    reserve d n;
    Bytes.blit src off d.buf (d.start + d.len) n;
    d.len <- d.len + n

  let feed_string (d : t) (s : string) : unit =
    feed d (Bytes.unsafe_of_string s) 0 (String.length s)

  (** [next d] pulls the next event from the buffered stream:
      [`Frame f] a well-formed frame; [`Skip e] a malformed frame,
      consumed and typed, stream continues; [`Await] need more bytes;
      [`Dead e] framing integrity is gone (oversized length) — the
      connection should be dropped.  [`Dead] latches. *)
  let next (d : t) : [ `Frame of frame | `Skip of error | `Await | `Dead of error ]
      =
    match d.dead with
    | Some e -> `Dead e
    | None ->
        if d.len < 4 then `Await
        else begin
          let body_len =
            Int32.to_int (Bytes.get_int32_be d.buf d.start) land 0xFFFFFFFF
          in
          if body_len > d.max_frame || body_len < 2 then begin
            let e = Oversized { len = body_len; max = d.max_frame } in
            d.dead <- Some e;
            `Dead e
          end
          else if d.len < 4 + body_len then `Await
          else begin
            let vers = Bytes.get_uint8 d.buf (d.start + 4) in
            let tag = Bytes.get_uint8 d.buf (d.start + 5) in
            let body = Cur.make d.buf (d.start + 6) (body_len - 2) in
            let consume () =
              d.start <- d.start + 4 + body_len;
              d.len <- d.len - 4 - body_len;
              if d.len = 0 then d.start <- 0
            in
            if vers <> version then begin
              consume ();
              d.skipped <- d.skipped + 1;
              `Skip (Bad_version { got = vers })
            end
            else begin
              let r = decode_body ~tag body in
              consume ();
              match r with
              | Ok f ->
                  d.frames <- d.frames + 1;
                  `Frame f
              | Error e ->
                  d.skipped <- d.skipped + 1;
                  `Skip e
            end
          end
        end
end
