(** Micro-batching of small requests: a pure accumulation buffer with
    two flush triggers — a count bound ([max]) and an age bound
    ([delay_s]) — over an {e explicit} clock, so batching semantics
    are virtual-clock-testable like the rest of the policy layer.

    The TREES-style amortization argument: one {!Serve.Pool} dispatch
    (mutex round-trip, DRR/EDF decision, urgency install, condition
    broadcast) costs about as much as a small request's whole kernel,
    so entering the session once per {e batch} instead of once per
    {e request} multiplies small-request throughput by up to the batch
    width.  The price is bounded, knowable latency: a request waits at
    most [delay_s] for its batch to fill — the batch-delay knob.

    Holds items in arrival order; never reorders. *)

type 'a t = {
  max : int;  (** flush when this many items are pending *)
  delay_s : float;  (** flush when the oldest pending item is this old *)
  mutable items : 'a list;  (** newest first *)
  mutable n : int;
  mutable oldest : float;  (** arrival stamp of the head item *)
  (* accounting *)
  mutable flushes : int;
  mutable flushed_items : int;
  mutable full_flushes : int;  (** flushes triggered by the count bound *)
}

let create ~(max : int) ~(delay_s : float) : 'a t =
  if max < 1 then invalid_arg "Batch.create: max must be >= 1";
  {
    max;
    delay_s = Float.max 0. delay_s;
    items = [];
    n = 0;
    oldest = 0.;
    flushes = 0;
    flushed_items = 0;
    full_flushes = 0;
  }

let pending (b : 'a t) : int = b.n

(** Age of the oldest pending item, 0 when empty. *)
let age_s (b : 'a t) ~(now : float) : float =
  if b.n = 0 then 0. else now -. b.oldest

let take (b : 'a t) : 'a list =
  let items = List.rev b.items in
  b.flushes <- b.flushes + 1;
  b.flushed_items <- b.flushed_items + b.n;
  b.items <- [];
  b.n <- 0;
  items

(** [add b ~now x]: buffer [x]; [`Flush batch] when [x] completes a
    full batch (the batch includes [x], in arrival order), [`Hold]
    otherwise. *)
let add (b : 'a t) ~(now : float) (x : 'a) : [ `Hold | `Flush of 'a list ] =
  if b.n = 0 then b.oldest <- now;
  b.items <- x :: b.items;
  b.n <- b.n + 1;
  if b.n >= b.max then begin
    b.full_flushes <- b.full_flushes + 1;
    `Flush (take b)
  end
  else `Hold

(** [poll b ~now]: [Some batch] when the age bound has expired for the
    pending items, [None] otherwise — the flusher tick. *)
let poll (b : 'a t) ~(now : float) : 'a list option =
  if b.n > 0 && now -. b.oldest >= b.delay_s then Some (take b) else None

(** [drain b]: whatever is pending, unconditionally (shutdown path). *)
let drain (b : 'a t) : 'a list = if b.n = 0 then [] else take b

(** [remove b ~f]: delete the first pending item satisfying [f]
    (cancellation of a still-parked request); [Some x] if found. *)
let remove (b : 'a t) ~(f : 'a -> bool) : 'a option =
  (* scan oldest-first so "first" means arrival order; [acc] holds the
     scanned prefix newest-first, [rest] the unscanned tail
     oldest-first, so the newest-first invariant of [items] is
     [rev rest @ acc].  The [oldest] stamp is left as-is after a head
     removal — at worst the next age-triggered flush fires early,
     never late. *)
  let rec go acc = function
    | [] -> None
    | x :: rest when f x ->
        b.items <- List.rev_append rest acc;
        b.n <- b.n - 1;
        Some x
    | x :: rest -> go (x :: acc) rest
  in
  go [] (List.rev b.items)

type stats = { flushes : int; flushed_items : int; full_flushes : int }

let stats (b : _ t) : stats =
  {
    flushes = b.flushes;
    flushed_items = b.flushed_items;
    full_flushes = b.full_flushes;
  }
