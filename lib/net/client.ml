(** A thin, thread-safe client for the {!Server} wire protocol: one
    socket, one reader thread demultiplexing responses into a ticket
    store, writes serialized by a mutex.  Used by the load generator
    ({!Netload}), the CLI client mode, and the loopback tests.

    The client is also the audit's witness: it counts {e duplicate}
    responses (two responses for one ticket — an exactly-once breach
    observed at the protocol level) and stamps each response's arrival
    time, so round-trip latency is measured where a real caller would
    feel it. *)

type response = {
  status : Wire.status;
  value : int;
  sojourn_us : int;  (** server-side sojourn, from the response frame *)
  info : string;
  at : float;  (** client-side arrival stamp ({!Mclock.now_s}) *)
}

type t = {
  fd : Unix.file_descr;
  w_m : Mutex.t;
  m : Mutex.t;
  cv : Condition.t;
  results : (int, response) Hashtbl.t;
  mutable next : int;
  mutable duplicates : int;
  mutable shards : int option;  (** from [Hello_ok] *)
  mutable drain_pending : int option;  (** last [Drain] notice seen *)
  mutable eof : bool;  (** server closed (or framing died) *)
  mutable dead : Wire.error option;
  mutable reader : Thread.t option;
}

let reader_loop (t : t) : unit =
  let dec = Wire.Decoder.create () in
  let buf = Bytes.create 65536 in
  let on_frame = function
    | Wire.Response { ticket; status; value; sojourn_us; info } ->
        Mutex.lock t.m;
        if Hashtbl.mem t.results ticket then t.duplicates <- t.duplicates + 1
        else
          Hashtbl.replace t.results ticket
            { status; value; sojourn_us; info; at = Mclock.now_s () };
        Condition.broadcast t.cv;
        Mutex.unlock t.m
    | Wire.Hello_ok { shards } ->
        Mutex.lock t.m;
        t.shards <- Some shards;
        Condition.broadcast t.cv;
        Mutex.unlock t.m
    | Wire.Drain { pending } ->
        Mutex.lock t.m;
        t.drain_pending <- Some pending;
        Condition.broadcast t.cv;
        Mutex.unlock t.m
    | Wire.Metrics _ | Wire.Hello _ | Wire.Submit _ | Wire.Cancel _
    | Wire.Metrics_request | Wire.Bye ->
        ()
  in
  let rec drain () =
    match Wire.Decoder.next dec with
    | `Frame f ->
        on_frame f;
        drain ()
    | `Skip _ -> drain ()
    | `Await -> true
    | `Dead e ->
        Mutex.lock t.m;
        t.dead <- Some e;
        Mutex.unlock t.m;
        false
  in
  let rec loop () =
    match Unix.read t.fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
        Wire.Decoder.feed dec buf 0 n;
        if drain () then loop ()
    | exception Unix.Unix_error ((EINTR | EAGAIN), _, _) -> loop ()
    | exception _ -> ()
  in
  loop ();
  Mutex.lock t.m;
  t.eof <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m

let send (t : t) (f : Wire.frame) : unit =
  let s = Wire.encode f in
  let b = Bytes.unsafe_of_string s in
  Mutex.lock t.w_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.w_m)
    (fun () ->
      let off = ref 0 in
      let n = Bytes.length b in
      while !off < n do
        let w = Unix.write t.fd b !off (n - !off) in
        if w <= 0 then failwith "Net.Client: short write";
        off := !off + w
      done)

(** [connect ?client addr] dials, sends [Hello], and waits for
    [Hello_ok] (raising [Failure] if the server hangs up first). *)
let connect ?(client = "tpal-client") (addr : Server.addr) : t =
  let fd =
    match addr with
    | Server.Unix_path p ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX p);
        fd
    | Server.Tcp { host; port } ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        let inet =
          match Unix.inet_addr_of_string host with
          | a -> a
          | exception _ -> (
              try (Unix.gethostbyname host).Unix.h_addr_list.(0)
              with _ -> Unix.inet_addr_loopback)
        in
        Unix.connect fd (Unix.ADDR_INET (inet, port));
        fd
  in
  let t =
    {
      fd;
      w_m = Mutex.create ();
      m = Mutex.create ();
      cv = Condition.create ();
      results = Hashtbl.create 1024;
      next = 0;
      duplicates = 0;
      shards = None;
      drain_pending = None;
      eof = false;
      dead = None;
      reader = None;
    }
  in
  t.reader <- Some (Thread.create reader_loop t);
  send t (Wire.Hello { client });
  Mutex.lock t.m;
  while t.shards = None && not t.eof do
    Condition.wait t.cv t.m
  done;
  let ok = t.shards <> None in
  Mutex.unlock t.m;
  if not ok then failwith "Net.Client.connect: no Hello_ok (server closed)";
  t

let shards (t : t) : int =
  Mutex.lock t.m;
  let s = Option.value t.shards ~default:0 in
  Mutex.unlock t.m;
  s

(** [submit t ~tenant ?deadline_us ?size payload] sends a [Submit]
    under a fresh client ticket and returns that ticket. *)
let submit (t : t) ~(tenant : string) ?(deadline_us = 0) ?(size = 1)
    (payload : Wire.payload) : int =
  Mutex.lock t.m;
  let ticket = t.next in
  t.next <- ticket + 1;
  Mutex.unlock t.m;
  send t (Wire.Submit { ticket; tenant; deadline_us; size; payload });
  ticket

let cancel (t : t) (ticket : int) : unit = send t (Wire.Cancel { ticket })
let bye (t : t) : unit = try send t Wire.Bye with _ -> ()

let try_response (t : t) (ticket : int) : response option =
  Mutex.lock t.m;
  let r = Hashtbl.find_opt t.results ticket in
  Mutex.unlock t.m;
  r

(** Responses received so far. *)
let received (t : t) : int =
  Mutex.lock t.m;
  let n = Hashtbl.length t.results in
  Mutex.unlock t.m;
  n

let duplicates (t : t) : int =
  Mutex.lock t.m;
  let d = t.duplicates in
  Mutex.unlock t.m;
  d

(** [await t ticket]: block until the ticket's response arrives;
    [None] if the connection dies first (a lost request). *)
let await ?timeout_s (t : t) (ticket : int) : response option =
  let deadline = Option.map (fun s -> Mclock.now_s () +. s) timeout_s in
  Mutex.lock t.m;
  let rec wait () =
    match Hashtbl.find_opt t.results ticket with
    | Some r ->
        Mutex.unlock t.m;
        Some r
    | None ->
        if t.eof then begin
          Mutex.unlock t.m;
          None
        end
        else begin
          (match deadline with
          | None -> Condition.wait t.cv t.m
          | Some d ->
              if Mclock.now_s () > d then raise Exit
              else begin
                Mutex.unlock t.m;
                Thread.delay 0.001;
                Mutex.lock t.m
              end);
          wait ()
        end
  in
  try wait () with
  | Exit ->
      Mutex.unlock t.m;
      None

(** [wait_received t ~fewer_than] blocks until fewer than
    [fewer_than] submitted tickets are unresponded — the windowed
    closed-loop gate. *)
let wait_inflight_below (t : t) ~(submitted : int) ~(window : int) : unit =
  Mutex.lock t.m;
  while submitted - Hashtbl.length t.results >= window && not t.eof do
    Condition.wait t.cv t.m
  done;
  Mutex.unlock t.m

(** [drain t ~submitted ~timeout_s] waits until every submitted ticket
    has a response, the server hangs up, or the timeout passes. *)
let drain (t : t) ~(submitted : int) ~(timeout_s : float) : unit =
  let deadline = Mclock.now_s () +. timeout_s in
  Mutex.lock t.m;
  while
    Hashtbl.length t.results < submitted
    && (not t.eof)
    && Mclock.now_s () < deadline
  do
    Mutex.unlock t.m;
    Thread.delay 0.002;
    Mutex.lock t.m
  done;
  Mutex.unlock t.m

let close (t : t) : unit =
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with _ -> ());
  Option.iter Thread.join t.reader;
  try Unix.close t.fd with _ -> ()
