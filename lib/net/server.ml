(** The socket front-end: accepts many client connections on a Unix
    path or TCP endpoint, decodes {!Wire} frames off each, feeds
    {!Shard} (which routes, batches, and pools), and pushes typed
    responses back as work resolves — no thread parked per in-flight
    request; the resolution hooks carry everything.

    Threading: one accept thread (select-with-timeout so shutdown
    never races a blocked [accept]), plus a reader and a writer thread
    per connection.  Readers own their connection's decoder; writers
    own its socket for output; the only cross-connection state is the
    shard handle, a few atomic counters, and the trace ring (guarded —
    the ring is single-writer, so the server serializes emission).

    Graceful drain ({!stop}): stop admitting (new submits get a typed
    [Rejected_draining]), tell every client how many responses it is
    still owed ([Drain]), wait for in-flight work to resolve (bounded
    by [drain_timeout_s]), then close the shard — anything still
    queued resolves [Pool_closed] and flushes as typed [Closed]
    responses before the sockets come down. *)

type addr = Unix_path of string | Tcp of { host : string; port : int }

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp { host; port } -> Printf.sprintf "%s:%d" host port

(** ["unix:/path"] or a bare path → [Unix_path]; ["host:port"] →
    [Tcp]. *)
let addr_of_string (s : string) : addr option =
  match String.index_opt s ':' with
  | None -> if s = "" then None else Some (Unix_path s)
  | Some i -> (
      let pre = String.sub s 0 i in
      let post = String.sub s (i + 1) (String.length s - i - 1) in
      if pre = "unix" then if post = "" then None else Some (Unix_path post)
      else
        match int_of_string_opt post with
        | Some port when port >= 0 && port < 65536 ->
            Some (Tcp { host = (if pre = "" then "127.0.0.1" else pre); port })
        | _ -> if s.[0] = '/' || s.[0] = '.' then Some (Unix_path s) else None)

type config = {
  shard : Shard.config;
  max_frame : int;
  drain_timeout_s : float;  (** bound on the in-flight drain in {!stop} *)
  tracer : Obs.Trace.t option;  (** net events land on a "net" track *)
}

let default_config =
  {
    shard = Shard.default_config;
    max_frame = Wire.default_max_frame;
    drain_timeout_s = 30.;
    tracer = None;
  }

type conn = {
  cid : int;
  fd : Unix.file_descr;
  peer : string;
  out_m : Mutex.t;
  out_cv : Condition.t;
  mutable out_q : string list;  (** newest first *)
  mutable out_stop : bool;  (** writer: flush what's queued, then exit *)
  mutable closed : bool;  (** fd has been shut down *)
  tickets : (int, Shard.ticket) Hashtbl.t;
      (** client ticket → shard ticket, for [Cancel]; guarded by
          [out_m] *)
  mutable outstanding : int;  (** admitted, response not yet queued;
                                  guarded by [out_m] *)
  mutable reader : Thread.t option;
  mutable writer : Thread.t option;
}

type stats = {
  conns : int;  (** connections accepted over the server's lifetime *)
  frames_rx : int;
  frames_tx : int;
  skipped : int;  (** malformed frames skipped across all decoders *)
  dead_conns : int;  (** connections dropped for framing loss *)
  submits : int;
  responses : int;
  shard : Shard.stats;
}

type t = {
  cfg : config;
  shard : Shard.t;
  listen_fd : Unix.file_descr;
  addr : addr;  (** actual bound address (TCP port resolved) *)
  m : Mutex.t;  (** guards [conns] *)
  mutable conns : conn list;
  mutable next_cid : int;
  mutable draining : bool;
  stop_flag : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  outstanding : int Atomic.t;  (** in-flight across all connections *)
  (* counters *)
  conns_total : int Atomic.t;
  frames_rx : int Atomic.t;
  frames_tx : int Atomic.t;
  skipped : int Atomic.t;
  dead_conns : int Atomic.t;
  submits : int Atomic.t;
  responses : int Atomic.t;
  (* tracing: the ring is single-writer; [ring_m] makes the server's
     many threads one logical writer *)
  ring : Obs.Ring.t option;
  ring_m : Mutex.t;
}

let emit (t : t) (e : Obs.Event.t) : unit =
  match (t.ring, t.cfg.tracer) with
  | Some ring, Some tr ->
      Mutex.lock t.ring_m;
      Obs.Trace.emit tr ring e;
      Mutex.unlock t.ring_m
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Per-connection output. *)

let enqueue (t : t) (c : conn) (f : Wire.frame) : unit =
  let s = Wire.encode ~max_frame:t.cfg.max_frame f in
  Mutex.lock c.out_m;
  let live = not c.out_stop && not c.closed in
  if live then begin
    c.out_q <- s :: c.out_q;
    Condition.signal c.out_cv
  end;
  Mutex.unlock c.out_m;
  if live then begin
    Atomic.incr t.frames_tx;
    emit t (Obs.Event.Frame { rx = false; kind = Wire.tag_of f; bytes = String.length s })
  end

let write_all (fd : Unix.file_descr) (s : string) : unit =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd b !off (n - !off) in
    if w <= 0 then raise Exit;
    off := !off + w
  done

let writer_loop (_t : t) (c : conn) : unit =
  let rec loop () =
    Mutex.lock c.out_m;
    while c.out_q = [] && not c.out_stop do
      Condition.wait c.out_cv c.out_m
    done;
    let batch = List.rev c.out_q in
    c.out_q <- [];
    let stop = c.out_stop in
    Mutex.unlock c.out_m;
    (match batch with
    | [] -> ()
    | _ -> ( try List.iter (write_all c.fd) batch with _ -> ()));
    if not stop then loop ()
  in
  (try loop () with _ -> ())

(* Shut the socket down (idempotent); the reader unblocks on EOF and
   the writer is told to flush and exit. *)
let hang_up (t : t) (c : conn) : unit =
  Mutex.lock c.out_m;
  let first = not c.closed in
  c.closed <- true;
  c.out_stop <- true;
  Condition.broadcast c.out_cv;
  Mutex.unlock c.out_m;
  if first then begin
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with _ -> ());
    emit t (Obs.Event.Conn { up = false })
  end

(* ------------------------------------------------------------------ *)
(* Request handling. *)

let status_of_error : Serve.Pool.error -> Wire.status * string = function
  | Serve.Pool.Rejected `Queue_full -> (Wire.Rejected_full, "")
  | Serve.Pool.Rejected `Shedding -> (Wire.Rejected_shed, "")
  | Serve.Pool.Pool_closed -> (Wire.Closed, "")
  | Serve.Pool.Cancelled r -> (Wire.Cancelled r, "")
  | Serve.Pool.Timed_out -> (Wire.Failed, "await timed out")
  | Serve.Pool.Retry_exhausted { attempts } ->
      (Wire.Failed, Printf.sprintf "retry budget exhausted (%d attempts)" attempts)
  | Serve.Pool.Failed e -> (Wire.Failed, Printexc.to_string e)

let response_of (ticket : int)
    (res : (Serve.Pool.completion, Serve.Pool.error) result) : Wire.frame =
  match res with
  | Ok { outcome; sojourn_s; met_deadline } ->
      let sojourn_us = int_of_float (sojourn_s *. 1e6) in
      let value, info =
        match outcome with
        | Serve.Pool.Checksum c -> (c, "")
        | Serve.Pool.Tpal_result (Ok task) ->
            (0, Fmt.str "%a" Tpal.Task.pp task)
        | Serve.Pool.Tpal_result (Error e) ->
            (0, Fmt.str "stuck: %a" Tpal.Machine_error.pp e)
      in
      Wire.Response
        { ticket; status = Wire.Done { met = met_deadline }; value; sojourn_us; info }
  | Error e ->
      let status, info = status_of_error e in
      Wire.Response { ticket; status; value = 0; sojourn_us = 0; info }

let work_of_payload (p : Wire.payload) : (Serve.Pool.work, string) result =
  match p with
  | Wire.Synth { n } ->
      if n < 0 || n > 1 lsl 24 then Error "synth size out of range"
      else Ok (Serve.Pool.Thunk (Serve.Load.kernel n))
  | Wire.Kernel { name; scale } -> (
      match Workloads.Real_bench.find name with
      | Some bench -> Ok (Serve.Pool.Kernel { bench; scale = max 1 scale })
      | None -> Error (Printf.sprintf "unknown kernel %S" name))
  | Wire.Prog { src } -> (
      match Tpal.Parser.parse_result src with
      | Ok prog ->
          Ok (Serve.Pool.Tpal { prog; options = Tpal.Eval.default_options })
      | Error msg -> Error ("parse: " ^ msg))

let handle_submit (t : t) (c : conn) ~(ticket : int) ~(tenant : string)
    ~(deadline_us : int) ~(size : int) (payload : Wire.payload) : unit =
  Atomic.incr t.submits;
  if t.draining then
    enqueue t c
      (Wire.Response
         { ticket; status = Wire.Rejected_draining; value = 0; sojourn_us = 0; info = "" })
  else
    match work_of_payload payload with
    | Error info ->
        enqueue t c
          (Wire.Response
             { ticket; status = Wire.Failed; value = 0; sojourn_us = 0; info })
    | Ok work -> (
        let deadline_s =
          if deadline_us <= 0 then None else Some (float_of_int deadline_us /. 1e6)
        in
        Mutex.lock c.out_m;
        c.outstanding <- c.outstanding + 1;
        Mutex.unlock c.out_m;
        Atomic.incr t.outstanding;
        let resolve res =
          Atomic.incr t.responses;
          Mutex.lock c.out_m;
          c.outstanding <- c.outstanding - 1;
          Hashtbl.remove c.tickets ticket;
          Mutex.unlock c.out_m;
          Atomic.decr t.outstanding;
          enqueue t c (response_of ticket res)
        in
        match
          Shard.submit t.shard ~tenant ?deadline_s ~size:(max 1 size)
            ~on_resolve:resolve work
        with
        | Ok st ->
            Mutex.lock c.out_m;
            Hashtbl.replace c.tickets ticket st;
            Mutex.unlock c.out_m
        | Error e -> resolve (Error e))

let metrics_body (t : t) : string =
  let s = Shard.stats t.shard in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "policy %s\nsubmitted %d\nbatched_members %d\n" s.policy
       s.submitted s.batched_members);
  Array.iteri
    (fun i (ss : Shard.shard_stats) ->
      Buffer.add_string b
        (Printf.sprintf
           "shard %d: routed %d depth %d batches %d submitted %d served %d\n"
           i ss.routed ss.depth ss.batch.flushes ss.pool.submitted
           ss.pool.served))
    s.per_shard;
  Buffer.contents b

let handle_frame (t : t) (c : conn) (f : Wire.frame) : unit =
  match f with
  | Wire.Hello { client = _ } ->
      enqueue t c (Wire.Hello_ok { shards = Shard.shard_count t.shard })
  | Wire.Submit { ticket; tenant; deadline_us; size; payload } ->
      handle_submit t c ~ticket ~tenant ~deadline_us ~size payload
  | Wire.Cancel { ticket } -> (
      Mutex.lock c.out_m;
      let st = Hashtbl.find_opt c.tickets ticket in
      Mutex.unlock c.out_m;
      match st with
      | Some st -> ignore (Shard.cancel t.shard st : bool)
      | None -> ())
  | Wire.Metrics_request -> enqueue t c (Wire.Metrics { body = metrics_body t })
  | Wire.Bye -> ()  (* client will close after collecting its responses *)
  | Wire.Hello_ok _ | Wire.Response _ | Wire.Metrics _ | Wire.Drain _ ->
      ()  (* server-to-client frames arriving here are ignored noise *)

let reader_loop (t : t) (c : conn) : unit =
  let dec = Wire.Decoder.create ~max_frame:t.cfg.max_frame () in
  let buf = Bytes.create 65536 in
  let rec drain_frames () =
    match Wire.Decoder.next dec with
    | `Frame f ->
        Atomic.incr t.frames_rx;
        emit t (Obs.Event.Frame { rx = true; kind = Wire.tag_of f; bytes = 0 });
        handle_frame t c f;
        drain_frames ()
    | `Skip _ ->
        Atomic.incr t.skipped;
        drain_frames ()
    | `Await -> true
    | `Dead _ ->
        Atomic.incr t.dead_conns;
        false
  in
  let rec loop () =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
        Wire.Decoder.feed dec buf 0 n;
        if drain_frames () then loop ()
    | exception Unix.Unix_error ((EINTR | EAGAIN), _, _) -> loop ()
    | exception _ -> ()
  in
  loop ();
  hang_up t c;
  Mutex.lock t.m;
  t.conns <- List.filter (fun c' -> c'.cid <> c.cid) t.conns;
  Mutex.unlock t.m

(* ------------------------------------------------------------------ *)
(* Accept loop and lifecycle. *)

let accept_loop (t : t) : unit =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ when Atomic.get t.stop_flag -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | exception _ -> ()
        | fd, peer_sa ->
            let peer =
              match peer_sa with
              | Unix.ADDR_UNIX p -> "unix:" ^ p
              | Unix.ADDR_INET (h, p) ->
                  Printf.sprintf "%s:%d" (Unix.string_of_inet_addr h) p
            in
            Mutex.lock t.m;
            let cid = t.next_cid in
            t.next_cid <- cid + 1;
            let c =
              {
                cid;
                fd;
                peer;
                out_m = Mutex.create ();
                out_cv = Condition.create ();
                out_q = [];
                out_stop = false;
                closed = false;
                tickets = Hashtbl.create 64;
                outstanding = 0;
                reader = None;
                writer = None;
              }
            in
            t.conns <- c :: t.conns;
            Mutex.unlock t.m;
            Atomic.incr t.conns_total;
            emit t (Obs.Event.Conn { up = true });
            c.writer <- Some (Thread.create (writer_loop t) c);
            c.reader <- Some (Thread.create (reader_loop t) c))
    | exception _ -> ()
  done

(** [create ?config addr ()] binds and listens on [addr] (a Unix path
    is unlinked first; TCP port 0 picks a free port — read the real
    one back with {!bound_addr}), boots the shard fabric, and starts
    accepting. *)
let create ?(config = default_config) (addr : addr) () : t =
  let listen_fd, bound =
    match addr with
    | Unix_path p ->
        (try Unix.unlink p with _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX p);
        Unix.listen fd 64;
        (fd, addr)
    | Tcp { host; port } ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        let inet =
          match Unix.inet_addr_of_string host with
          | a -> a
          | exception _ -> (
              try (Unix.gethostbyname host).Unix.h_addr_list.(0)
              with _ -> Unix.inet_addr_loopback)
        in
        Unix.bind fd (Unix.ADDR_INET (inet, port));
        Unix.listen fd 64;
        let port =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        (fd, Tcp { host; port })
  in
  (* thread the server's trace emission through the shard layer's
     route/batch hooks; the forward ref breaks the creation cycle
     (the shard exists before the server record does) *)
  let emit_ref = ref (fun (_ : Obs.Event.t) -> ()) in
  let shard_cfg =
    {
      config.shard with
      Shard.on_route =
        Some (fun ~shard ~size -> !emit_ref (Obs.Event.Route { shard; size }));
      on_batch =
        Some (fun ~n ~wait_us -> !emit_ref (Obs.Event.Batch { n; wait_us }));
    }
  in
  let t =
    {
      cfg = config;
      shard = Shard.create ~config:shard_cfg ();
      listen_fd;
      addr = bound;
      m = Mutex.create ();
      conns = [];
      next_cid = 0;
      draining = false;
      stop_flag = Atomic.make false;
      accept_thread = None;
      outstanding = Atomic.make 0;
      conns_total = Atomic.make 0;
      frames_rx = Atomic.make 0;
      frames_tx = Atomic.make 0;
      skipped = Atomic.make 0;
      dead_conns = Atomic.make 0;
      submits = Atomic.make 0;
      responses = Atomic.make 0;
      ring = Option.map (fun tr -> Obs.Trace.track tr "net") config.tracer;
      ring_m = Mutex.create ();
    }
  in
  emit_ref := emit t;
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let bound_addr (t : t) : addr = t.addr

let stats_now (t : t) : stats =
  {
    conns = Atomic.get t.conns_total;
    frames_rx = Atomic.get t.frames_rx;
    frames_tx = Atomic.get t.frames_tx;
    skipped = Atomic.get t.skipped;
    dead_conns = Atomic.get t.dead_conns;
    submits = Atomic.get t.submits;
    responses = Atomic.get t.responses;
    shard = Shard.stats t.shard;
  }

(** [stop t] is the graceful drain: refuse new submits (typed
    [Rejected_draining]), notify clients ([Drain] with the responses
    still owed on that connection), wait — bounded — for in-flight
    work, close the shard (queued work flushes as typed [Closed]
    responses), flush writers, drop sockets, and return final
    statistics.  Idempotent enough for a signal handler path: a second
    call finds everything closed and just reports. *)
let stop (t : t) : stats =
  t.draining <- true;
  emit t (Obs.Event.Drain { pending = Atomic.get t.outstanding });
  Mutex.lock t.m;
  let conns = t.conns in
  Mutex.unlock t.m;
  List.iter
    (fun c ->
      Mutex.lock c.out_m;
      let pending = c.outstanding in
      Mutex.unlock c.out_m;
      enqueue t c (Wire.Drain { pending }))
    conns;
  (* bounded in-flight drain *)
  let deadline = Mclock.now_s () +. t.cfg.drain_timeout_s in
  while Atomic.get t.outstanding > 0 && Mclock.now_s () < deadline do
    Thread.delay 0.005
  done;
  (* stop accepting *)
  Atomic.set t.stop_flag true;
  Option.iter Thread.join t.accept_thread;
  t.accept_thread <- None;
  (try Unix.close t.listen_fd with _ -> ());
  (match t.addr with
  | Unix_path p -> ( try Unix.unlink p with _ -> ())
  | Tcp _ -> ());
  (* close the fabric: queued work resolves typed and the resolution
     hooks enqueue the final responses before writers flush *)
  let shard_stats = Shard.close t.shard in
  (* flush and drop every connection *)
  Mutex.lock t.m;
  let conns = t.conns in
  t.conns <- [];
  Mutex.unlock t.m;
  List.iter
    (fun c ->
      Mutex.lock c.out_m;
      c.out_stop <- true;
      Condition.broadcast c.out_cv;
      Mutex.unlock c.out_m;
      Option.iter Thread.join c.writer;
      hang_up t c;
      (try Unix.close c.fd with _ -> ());
      Option.iter Thread.join c.reader)
    conns;
  { (stats_now t) with shard = shard_stats }
