(** Pluggable request placement over the shard set — a pure function
    from (policy, backlog snapshot, tenant, size) to a shard index, so
    every policy is deterministic and table-testable ({!Suite_net}),
    exactly like the {!Serve.Sched} core.

    Policies (McKenney's partitioning guidance: shard first,
    communicate narrowly — the router is the {e only} cross-shard
    decision point, and it reads one int per shard):

    - {b Tenant_hash}: stable FNV-1a affinity — a tenant always lands
      on the same shard, so per-tenant state (DRR deficit, retry
      budgets, latency histograms) never splits across pools.
    - {b Jsq}: join-shortest-queue over the instantaneous backlog
      ({!Serve.Pool.depth}); ties break toward the lowest index, so
      placement is a pure function of the snapshot.
    - {b Size_aware}: shard 0 is reserved for small requests
      ([size <= small_max]) and {e only} small requests route there —
      a small request can never queue behind a large one (the
      space-sharing answer to ROADMAP item 2's head-of-line problem).
      Large requests go join-shortest-queue over shards [1..n-1].
      With a single shard the policy degenerates to FIFO, which is
      what the bench's baseline leg measures. *)

type policy =
  | Tenant_hash
  | Jsq
  | Size_aware of { small_max : int }
      (** [small_max] in the same service-size units as
          {!Serve.Sched.req.size} *)

let policy_name : policy -> string = function
  | Tenant_hash -> "tenant-hash"
  | Jsq -> "jsq"
  | Size_aware _ -> "size-aware"

let policy_of_string ?(small_max = 4) : string -> policy option = function
  | "hash" | "tenant-hash" -> Some Tenant_hash
  | "jsq" | "shortest" -> Some Jsq
  | "size" | "size-aware" -> Some (Size_aware { small_max })
  | _ -> None

(** 64-bit FNV-1a, truncated to OCaml's 63-bit int — stable across
    runs and processes (unlike [Hashtbl.hash], which is documented to
    vary), which is what makes tenant affinity testable. *)
let fnv1a (s : string) : int =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int !h land max_int

let argmin (depths : int array) (lo : int) : int =
  let best = ref lo in
  for i = lo + 1 to Array.length depths - 1 do
    if depths.(i) < depths.(!best) then best := i
  done;
  !best

(** [route policy ~depths ~tenant ~size] picks a shard index in
    [0, Array.length depths).  [depths] is the per-shard backlog
    snapshot (ignored by [Tenant_hash]).  Raises on an empty shard
    set. *)
let route (policy : policy) ~(depths : int array) ~(tenant : string)
    ~(size : int) : int =
  let n = Array.length depths in
  if n = 0 then invalid_arg "Router.route: no shards";
  if n = 1 then 0
  else
    match policy with
    | Tenant_hash -> fnv1a tenant mod n
    | Jsq -> argmin depths 0
    | Size_aware { small_max } ->
        if size <= small_max then 0 else argmin depths 1
